//===- bench/bench_fig12_twophase_timid.cpp - Figure 12 ---------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 12: speedup (minus 1) of the two-phase contention manager over
// the timid one, both in SwissTM, on the three STMBench7 workloads.
// Paper shape: up to ~16% in the write-dominated workload, little
// effect in the read-dominated one (few write/write conflicts there).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (Workload7 W : {Workload7::ReadDominated, Workload7::ReadWrite,
                      Workload7::WriteDominated}) {
    for (unsigned Threads : threadSweep()) {
      stm::StmConfig TwoPhase;
      TwoPhase.Cm = stm::CmKind::TwoPhase;
      double TP = bench7Throughput<stm::StmRuntime>(
                      rtConfig(stm::rt::BackendKind::SwissTm, TwoPhase), Threads, W)
                      .Value;
      stm::StmConfig Timid;
      Timid.Cm = stm::CmKind::Timid;
      double TI = bench7Throughput<stm::StmRuntime>(
                      rtConfig(stm::rt::BackendKind::SwissTm, Timid), Threads, W)
                      .Value;
      Report::instance().add("fig12", workloads::sb7::workload7Name(W),
                             "two-phase-vs-timid", Threads,
                             "speedup_minus_1", TP / TI - 1.0);
    }
  }
  Report::instance().print(
      "12", "two-phase vs timid CM speedup (SwissTM), STMBench7");
  return 0;
}
