//===- stm/RetiredPool.h - process-wide retired-block pool ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// When a transactional thread shuts down it may still hold retired
// blocks whose quiescence horizon has not passed (other threads can be
// mid-transaction). Those blocks are handed to this global pool and
// released once safe, or at the latest at STM global shutdown.
//
// Division of labour with stm/EpochManager.h: this pool reclaims
// transactionally freed *data* blocks by commit-timestamp quiescence
// (ThreadRegistry::minActiveStart), while the EpochManager reclaims
// exited threads' *descriptors* (and their write logs) by epoch grace
// periods.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RETIREDPOOL_H
#define STM_RETIREDPOOL_H

#include "stm/core/SharedArena.h"
#include "support/ThreadRegistry.h"

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace stm {

/// Thread-safe pool of (block, retire-timestamp) pairs.
class RetiredPool {
public:
  /// Singleton shared by all STMs in the process.
  static RetiredPool &instance() {
    static RetiredPool Pool;
    return Pool;
  }

  void add(void *Ptr, uint64_t RetireTs) {
    std::lock_guard<std::mutex> Guard(Lock);
    Blocks.push_back(Block{Ptr, RetireTs});
  }

  /// Frees every block older than the current quiescence horizon.
  std::size_t collect() {
    uint64_t Horizon = repro::ThreadRegistry::minActiveStart();
    std::lock_guard<std::mutex> Guard(Lock);
    std::size_t Released = 0;
    std::deque<Block> Keep;
    for (const Block &B : Blocks) {
      if (B.RetireTs < Horizon) {
        sharedDispatchFree(B.Ptr);
        ++Released;
      } else {
        Keep.push_back(B);
      }
    }
    Blocks.swap(Keep);
    return Released;
  }

  /// Frees everything. Only safe when no transaction can be in flight.
  void releaseAll() {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const Block &B : Blocks)
      sharedDispatchFree(B.Ptr);
    Blocks.clear();
  }

  std::size_t size() {
    std::lock_guard<std::mutex> Guard(Lock);
    return Blocks.size();
  }

private:
  struct Block {
    void *Ptr;
    uint64_t RetireTs;
  };

  std::mutex Lock;
  std::deque<Block> Blocks;
};

} // namespace stm

#endif // STM_RETIREDPOOL_H
