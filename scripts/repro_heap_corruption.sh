#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Repro handle for the ROADMAP heap-corruption item: a native
# bench_extra_clock-shaped run (rbtree cells cycling backend x the full
# commit-clock grid — owned by the bench via stm::allClockKinds(), ask
# `bench_extra_clock --list-clocks`; a few threads, seconds per cell)
# was reported to die roughly 1 run in 5-10 with glibc "unaligned
# fastbin chunk" / "corrupted size vs. prev_size". Detection can land
# cells after the
# corrupting write, so this script:
#
#   * pins STM_TEST_SEED, so every iteration offers identical work and
#     a caught failure replays from the same stream;
#   * arms glibc's heap tripwires (MALLOC_CHECK_=3 aborts at the first
#     inconsistent chunk, MALLOC_PERTURB_ poisons freed memory so
#     use-after-free reads surface as wrong values instead of luck);
#   * runs the grid with STM_BENCH_PROGRESS=1 and tees stderr, so the
#     log's last "extra-clock: cell <name>@<threads>t" line names the
#     cell that was executing when the abort hit;
#   * with --record (requires a -DSTM_DIAG=ON build of the bench),
#     records every iteration's interleaving into a ring buffer whose
#     tail is dumped to a trace file by the bench's SIGABRT/SIGSEGV
#     handler — so the abort leaves the schedule behind, replayable via
#     the diag Schedule engine (see README "Diagnostics").
#
# Usage: scripts/repro_heap_corruption.sh [--record] [build-dir] [iterations]
#   build-dir   defaults to ./build (must contain bench_extra_clock)
#   iterations  defaults to 20
#
# Environment overrides (forwarded to the bench):
#   STM_TEST_SEED     fixed work stream   (default 427431439693)
#   REPRO_MAX_THREADS grid thread ceiling (default 4)
#   REPRO_BENCH_MS    millis per cell     (default 2000)
#   STM_DIAG_RING     ring capacity in events under --record (bench
#                     default 65536)
#
# Exit status: 1 as soon as an iteration dies (log + any trace kept),
# 0 if all iterations survive — which does NOT prove the bug gone, only
# that this seed/grid escaped it.
#
#===------------------------------------------------------------------------===#

set -euo pipefail

RECORD=0
if [[ "${1:-}" == "--record" ]]; then
  RECORD=1
  shift
fi

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-20}"
BENCH="${BUILD_DIR}/bench_extra_clock"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found or not executable." >&2
  echo "Build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 2
fi

: "${STM_TEST_SEED:=427431439693}"
: "${REPRO_MAX_THREADS:=4}"
: "${REPRO_BENCH_MS:=2000}"
export STM_TEST_SEED REPRO_MAX_THREADS REPRO_BENCH_MS

# Heap tripwires. MALLOC_CHECK_=3 makes glibc verify chunk metadata on
# every malloc/free and abort on the first inconsistency (moving
# detection closer to the corrupting write); MALLOC_PERTURB_ fills
# freed memory with a poison byte so stale reads return garbage
# deterministically. Neither reproduces under ASan (see ROADMAP), so
# native glibc checking is the tool of record here.
export MALLOC_CHECK_=3
export MALLOC_PERTURB_=165
export STM_BENCH_PROGRESS=1

LOG_DIR="${TMPDIR:-/tmp}/stm-heap-repro.$$"
mkdir -p "${LOG_DIR}"

# A surviving grid leaves nothing worth keeping; a failing one exits
# through the FAILURE branch below, which disarms this trap first.
KEEP_LOGS=0
cleanup() {
  if [[ "${KEEP_LOGS}" -eq 0 ]]; then
    rm -rf "${LOG_DIR}"
  fi
}
trap cleanup EXIT
trap 'KEEP_LOGS=1; echo "interrupted; logs kept in ${LOG_DIR}" >&2' INT TERM

# The clock grid belongs to the bench (stm::allClockKinds()); query it
# instead of keeping a second hand-written copy that goes stale when a
# policy is added.
CLOCK_GRID=$("${BENCH}" --list-clocks | paste -sd, -)

echo "repro_heap_corruption: ${ITERATIONS} iterations of ${BENCH}"
echo "  grid: backend x {${CLOCK_GRID}}, threads 1..${REPRO_MAX_THREADS}"
echo "  STM_TEST_SEED=${STM_TEST_SEED} REPRO_MAX_THREADS=${REPRO_MAX_THREADS}" \
     "REPRO_BENCH_MS=${REPRO_BENCH_MS} MALLOC_CHECK_=3 record=${RECORD}"
echo "  logs: ${LOG_DIR}"

for ((I = 1; I <= ITERATIONS; ++I)); do
  LOG="${LOG_DIR}/iter-${I}.log"
  TRACE="${LOG_DIR}/iter-${I}.trace"
  echo "--- iteration ${I}/${ITERATIONS}"
  if [[ "${RECORD}" -eq 1 ]]; then
    export STM_DIAG_RECORD=1
    export STM_DIAG_TRACE="${TRACE}"
  fi
  # set -e must not kill the loop on the exact exit we are hunting:
  # `|| STATUS=$?` keeps the real exit code and reaches the report.
  STATUS=0
  "${BENCH}" --json="${LOG_DIR}/iter-${I}.json" >"${LOG}" 2>&1 || STATUS=$?
  if [[ ${STATUS} -ne 0 ]]; then
    KEEP_LOGS=1
    echo "FAILURE: iteration ${I} exited ${STATUS}" | tee -a "${LOG}"
    LAST_CELL=$(grep -o 'extra-clock: cell .*' "${LOG}" | tail -1 || true)
    echo "  last cell entered: ${LAST_CELL:-<none — died before first cell>}"
    echo "  full log: ${LOG}"
    if [[ -s "${TRACE}" ]]; then
      echo "  interleaving trace (ring tail at the abort): ${TRACE}"
      echo "  replay it with the diag Schedule engine (README Diagnostics)"
    elif [[ "${RECORD}" -eq 1 ]]; then
      echo "  no trace captured (bench built without -DSTM_DIAG=ON?)"
    else
      echo "  re-run with --record and a -DSTM_DIAG=ON build to capture" \
           "the interleaving"
    fi
    echo "  replay:   STM_TEST_SEED=${STM_TEST_SEED} ${BENCH}"
    exit 1
  fi
done

echo "all ${ITERATIONS} iterations survived (bug NOT disproved; try more" \
     "iterations or a longer REPRO_BENCH_MS)"
exit 0
