//===- support/ThreadRegistry.cpp - global thread slot registry ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadRegistry.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace repro;

Padded<std::atomic<uint64_t>> ThreadRegistry::ActiveSince[MaxThreads];
std::atomic<uint64_t> ThreadRegistry::SlotMask{0};
std::atomic<Padded<std::atomic<uint64_t>> *> ThreadRegistry::ActiveP{
    ThreadRegistry::ActiveSince};
std::atomic<std::atomic<uint64_t> *> ThreadRegistry::MaskP{
    &ThreadRegistry::SlotMask};

unsigned ThreadRegistry::acquireSlot() {
  uint64_t Mask = mask().load(std::memory_order_relaxed);
  while (true) {
    if (Mask == ~0ull) {
      std::fprintf(stderr,
                   "ThreadRegistry: more than %u transactional threads\n",
                   MaxThreads);
      std::abort();
    }
    unsigned Slot = static_cast<unsigned>(__builtin_ctzll(~Mask));
    if (mask().compare_exchange_weak(Mask, Mask | (1ull << Slot),
                                     std::memory_order_acq_rel)) {
      active()[Slot].value().store(IdleTimestamp, std::memory_order_release);
      return Slot;
    }
  }
}

void ThreadRegistry::releaseSlot(unsigned Slot) {
  assert(Slot < MaxThreads && "slot out of range");
  assert(active()[Slot].value().load(std::memory_order_acquire) ==
             IdleTimestamp &&
         "releasing a slot with a transaction in flight");
  mask().fetch_and(~(1ull << Slot), std::memory_order_acq_rel);
}

uint64_t ThreadRegistry::minActiveStart() {
  uint64_t Min = IdleTimestamp;
  uint64_t Mask = activeMask();
  while (Mask != 0) {
    unsigned Slot = static_cast<unsigned>(__builtin_ctzll(Mask));
    Mask &= Mask - 1;
    uint64_t Ts = active()[Slot].value().load(std::memory_order_acquire);
    if (Ts < Min)
      Min = Ts;
  }
  return Min;
}

unsigned ThreadRegistry::highWaterMark() {
  uint64_t Mask = mask().load(std::memory_order_acquire);
  return Mask == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(Mask));
}

void ThreadRegistry::placeStorage(Padded<std::atomic<uint64_t>> *Active,
                                  std::atomic<uint64_t> *NewMask,
                                  bool CopyCurrent) {
  if (CopyCurrent) {
    for (unsigned Slot = 0; Slot < MaxThreads; ++Slot)
      Active[Slot].value().store(
          active()[Slot].value().load(std::memory_order_acquire),
          std::memory_order_release);
    NewMask->store(mask().load(std::memory_order_acquire),
                   std::memory_order_release);
  }
  ActiveP.store(Active, std::memory_order_release);
  MaskP.store(NewMask, std::memory_order_release);
}

void ThreadRegistry::resetStorage(uint64_t KeepMask) {
  if (ActiveP.load(std::memory_order_relaxed) == ActiveSince)
    return;
  for (unsigned Slot = 0; Slot < MaxThreads; ++Slot)
    ActiveSince[Slot].value().store(
        (KeepMask >> Slot) & 1
            ? active()[Slot].value().load(std::memory_order_acquire)
            : IdleTimestamp,
        std::memory_order_release);
  SlotMask.store(mask().load(std::memory_order_acquire) & KeepMask,
                 std::memory_order_release);
  ActiveP.store(ActiveSince, std::memory_order_release);
  MaskP.store(&SlotMask, std::memory_order_release);
}
