//===- tests/RbTreeTest.cpp - red-black tree workload tests ---------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Property-style validation of the transactional red-black tree: random
// operation sequences are mirrored against std::set and the tree's
// structural invariants (BST order, red-red, black height) are checked
// after every batch, single-threaded and under concurrency, across all
// four STMs.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/rbtree/RbTree.h"

#include <gtest/gtest.h>

#include <set>

using namespace stm;
using namespace workloads;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class RbTreeTest : public repro_test::RuntimeSuite {};

TEST_P(RbTreeTest, InsertLookupRemoveSingle) {
  RbTree<repro_test::Rt> Tree;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Ok = false;
    bool *OkPtr = &Ok;
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = Tree.insert(T, 10, 100); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = Tree.insert(T, 10, 200); });
    EXPECT_FALSE(Ok) << "duplicate insert must fail";
    uint64_t Value = 0;
    uint64_t *ValuePtr = &Value;
    atomically(Tx, [&, OkPtr, ValuePtr](auto &T) {
      *OkPtr = Tree.lookup(T, 10, ValuePtr);
    });
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Value, 100u);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = Tree.remove(T, 10); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = Tree.lookup(T, 10); });
    EXPECT_FALSE(Ok);
  });
  EXPECT_EQ(Tree.size(), 0u);
  EXPECT_TRUE(Tree.verify());
}

TEST_P(RbTreeTest, AscendingInsertionStaysBalancedish) {
  RbTree<repro_test::Rt> Tree;
  constexpr unsigned N = 512;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (unsigned I = 0; I < N; ++I)
      atomically(Tx, [&](auto &T) { Tree.insert(T, I, I); });
  });
  EXPECT_EQ(Tree.size(), N);
  EXPECT_TRUE(Tree.verify());
}

TEST_P(RbTreeTest, RandomOpsMatchStdSet) {
  RbTree<repro_test::Rt> Tree;
  std::set<uint64_t> Model;
  repro::Xorshift Rng(repro::testSeed(12345));
  constexpr unsigned Ops = 4000;
  constexpr uint64_t Range = 256;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (unsigned I = 0; I < Ops; ++I) {
      uint64_t Key = Rng.nextBounded(Range);
      unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
      bool Got = false;
      bool *GotPtr = &Got;
      switch (Kind) {
      case 0: {
        atomically(Tx, [&, GotPtr](auto &T) {
          *GotPtr = Tree.insert(T, Key, Key * 2);
        });
        bool Expected = Model.insert(Key).second;
        ASSERT_EQ(Got, Expected) << "insert mismatch at op " << I;
        break;
      }
      case 1: {
        atomically(Tx,
                   [&, GotPtr](auto &T) { *GotPtr = Tree.remove(T, Key); });
        bool Expected = Model.erase(Key) > 0;
        ASSERT_EQ(Got, Expected) << "remove mismatch at op " << I;
        break;
      }
      default: {
        atomically(Tx,
                   [&, GotPtr](auto &T) { *GotPtr = Tree.lookup(T, Key); });
        ASSERT_EQ(Got, Model.count(Key) == 1) << "lookup mismatch at " << I;
        break;
      }
      }
      if (I % 512 == 0) {
        ASSERT_TRUE(Tree.verify()) << "invariant broken at op " << I;
      }
    }
  });
  EXPECT_EQ(Tree.size(), Model.size());
  EXPECT_TRUE(Tree.verify());
}

TEST_P(RbTreeTest, ConcurrentMixedOpsKeepInvariants) {
  RbTree<repro_test::Rt> Tree;
  constexpr unsigned Threads = 4;
  constexpr unsigned OpsPerThread = 1500;
  constexpr uint64_t Range = 512;
  // Pre-populate half the range.
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (uint64_t K = 0; K < Range; K += 2)
      atomically(Tx, [&](auto &T) { Tree.insert(T, K, K); });
  });
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 7919 + 13));
    for (unsigned I = 0; I < OpsPerThread; ++I) {
      uint64_t Key = Rng.nextBounded(Range);
      unsigned Pct = static_cast<unsigned>(Rng.nextBounded(100));
      if (Pct < 10)
        atomically(Tx, [&](auto &T) { Tree.insert(T, Key, Key); });
      else if (Pct < 20)
        atomically(Tx, [&](auto &T) { Tree.remove(T, Key); });
      else
        atomically(Tx, [&](auto &T) { Tree.lookup(T, Key); });
    }
  });
  EXPECT_TRUE(Tree.verify());
}

TEST_P(RbTreeTest, ConcurrentInsertersProduceExactSet) {
  RbTree<repro_test::Rt> Tree;
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 300;
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (uint64_t K = 0; K < PerThread; ++K) {
      uint64_t Key = Id * PerThread + K;
      atomically(Tx, [&](auto &T) { Tree.insert(T, Key, Key + 1); });
    }
  });
  EXPECT_EQ(Tree.size(), Threads * PerThread);
  EXPECT_TRUE(Tree.verify());
  // Every key present with its value.
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (uint64_t Key = 0; Key < Threads * PerThread; ++Key) {
      uint64_t Value = 0;
      bool Found = false;
      bool *FoundPtr = &Found;
      uint64_t *ValuePtr = &Value;
      atomically(Tx, [&, FoundPtr, ValuePtr](auto &T) {
        *FoundPtr = Tree.lookup(T, Key, ValuePtr);
      });
      ASSERT_TRUE(Found) << "missing key " << Key;
      ASSERT_EQ(Value, Key + 1);
    }
  });
}

TEST_P(RbTreeTest, ConcurrentDisjointRemovals) {
  RbTree<repro_test::Rt> Tree;
  constexpr unsigned Threads = 4;
  constexpr uint64_t Keys = 800;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (uint64_t K = 0; K < Keys; ++K)
      atomically(Tx, [&](auto &T) { Tree.insert(T, K, K); });
  });
  std::atomic<uint64_t> Removed{0};
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    uint64_t Count = 0;
    for (uint64_t K = Id; K < Keys; K += Threads) {
      bool Got = false;
      bool *GotPtr = &Got;
      atomically(Tx, [&, GotPtr, K](auto &T) { *GotPtr = Tree.remove(T, K); });
      Count += Got;
    }
    Removed.fetch_add(Count);
  });
  EXPECT_EQ(Removed.load(), Keys);
  EXPECT_EQ(Tree.size(), 0u);
  EXPECT_TRUE(Tree.verify());
}

STM_INSTANTIATE_RUNTIME_SUITE(RbTreeTest);

} // namespace
