//===- workloads/containers/TxList.h - transactional linked list -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Singly-linked sorted list of (key, value) pairs accessed through the
// word-based STM API. Used as the bucket structure of TxHashMap, by the
// STMBench7-lite object graph, and directly by tests.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_CONTAINERS_TXLIST_H
#define WORKLOADS_CONTAINERS_TXLIST_H

#include "stm/Stm.h"

#include <cstdint>
#include <cstdlib>

namespace workloads {

/// Sorted transactional list; keys unique.
template <typename STM> class TxList {
public:
  using Tx = typename STM::Tx;

  struct Node {
    stm::Word Key;
    stm::Word Value;
    stm::Word Next; // Node*
  };

  TxList() : HeadCell(0) {}

  ~TxList() {
    Node *N = headRaw();
    while (N != nullptr) {
      Node *Next = reinterpret_cast<Node *>(N->Next);
      std::free(N);
      N = Next;
    }
  }

  TxList(const TxList &) = delete;
  TxList &operator=(const TxList &) = delete;

  /// Inserts (\p Key, \p Value) keeping the list sorted; returns false
  /// if the key is already present.
  bool insert(Tx &T, uint64_t Key, stm::Word Value) {
    stm::Word *Link = &HeadCell;
    Node *Cur = next(T, Link);
    while (Cur != nullptr && T.load(&Cur->Key) < Key) {
      Link = &Cur->Next;
      Cur = next(T, Link);
    }
    if (Cur != nullptr && T.load(&Cur->Key) == Key)
      return false;
    auto *N = static_cast<Node *>(T.txMalloc(sizeof(Node)));
    T.store(&N->Key, Key);
    T.store(&N->Value, Value);
    T.store(&N->Next, reinterpret_cast<stm::Word>(Cur));
    T.store(Link, reinterpret_cast<stm::Word>(N));
    return true;
  }

  /// Removes \p Key; returns false if absent.
  bool remove(Tx &T, uint64_t Key) {
    stm::Word *Link = &HeadCell;
    Node *Cur = next(T, Link);
    while (Cur != nullptr && T.load(&Cur->Key) < Key) {
      Link = &Cur->Next;
      Cur = next(T, Link);
    }
    if (Cur == nullptr || T.load(&Cur->Key) != Key)
      return false;
    T.store(Link, T.load(&Cur->Next));
    T.txFree(Cur);
    return true;
  }

  /// Looks up \p Key; fills \p Value when found.
  bool lookup(Tx &T, uint64_t Key, stm::Word *Value = nullptr) {
    Node *Cur = next(T, &HeadCell);
    while (Cur != nullptr) {
      uint64_t K = T.load(&Cur->Key);
      if (K == Key) {
        if (Value != nullptr)
          *Value = T.load(&Cur->Value);
        return true;
      }
      if (K > Key)
        return false;
      Cur = next(T, &Cur->Next);
    }
    return false;
  }

  /// Overwrites the value of \p Key; returns false if absent.
  bool update(Tx &T, uint64_t Key, stm::Word Value) {
    Node *Cur = next(T, &HeadCell);
    while (Cur != nullptr) {
      uint64_t K = T.load(&Cur->Key);
      if (K == Key) {
        T.store(&Cur->Value, Value);
        return true;
      }
      if (K > Key)
        return false;
      Cur = next(T, &Cur->Next);
    }
    return false;
  }

  /// Transactionally visits every (key, value); \p Visit may perform
  /// further transactional work.
  template <typename Fn> void forEach(Tx &T, Fn &&Visit) {
    Node *Cur = next(T, &HeadCell);
    while (Cur != nullptr) {
      Visit(T.load(&Cur->Key), T.load(&Cur->Value), Cur);
      Cur = next(T, &Cur->Next);
    }
  }

  /// Transactional length.
  uint64_t size(Tx &T) {
    uint64_t N = 0;
    forEach(T, [&N](uint64_t, stm::Word, Node *) { ++N; });
    return N;
  }

  /// Non-transactional length (quiesced use only).
  uint64_t sizeRaw() const {
    uint64_t N = 0;
    for (Node *Cur = headRaw(); Cur != nullptr;
         Cur = reinterpret_cast<Node *>(Cur->Next))
      ++N;
    return N;
  }

  /// Non-transactional iteration (quiesced use only).
  template <typename Fn> void forEachRaw(Fn &&Visit) const {
    for (Node *Cur = headRaw(); Cur != nullptr;
         Cur = reinterpret_cast<Node *>(Cur->Next))
      Visit(static_cast<uint64_t>(Cur->Key), Cur->Value);
  }

  /// Non-transactional sortedness/uniqueness check (quiesced use only).
  bool verifySorted() const {
    Node *Cur = headRaw();
    while (Cur != nullptr) {
      Node *Next = reinterpret_cast<Node *>(Cur->Next);
      if (Next != nullptr && Next->Key <= Cur->Key)
        return false;
      Cur = Next;
    }
    return true;
  }

private:
  Node *headRaw() const { return reinterpret_cast<Node *>(HeadCell); }

  Node *next(Tx &T, stm::Word *Link) {
    return reinterpret_cast<Node *>(T.load(Link));
  }

  alignas(64) stm::Word HeadCell;
};

} // namespace workloads

#endif // WORKLOADS_CONTAINERS_TXLIST_H
