//===- stm/core/Clock.h - global version clocks -----------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The time-based validation scheme of SwissTM, TL2 and TinySTM rests on a
// single global counter ("commit-ts" in Algorithm 1) incremented by every
// updating transaction at commit. SwissTM's second contention-management
// phase uses a second counter ("greedy-ts"), and RSTM's invisible-read
// heuristic a third ("commit counter"). All are instances of GlobalClock,
// the first policy point of the shared core: a backend's Globals struct
// declares one clock per logical time base it needs.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_CLOCK_H
#define STM_CORE_CLOCK_H

#include "support/Platform.h"

#include <atomic>
#include <cstdint>

namespace stm {

/// A monotonically increasing global counter on its own cache line.
class alignas(repro::CacheLineSize) GlobalClock {
public:
  /// Resets to zero (tests and global re-init only).
  void reset() { Value.store(0, std::memory_order_relaxed); }

  /// Current value.
  uint64_t load() const { return Value.load(std::memory_order_acquire); }

  /// Atomically increments and returns the new value
  /// ("increment&get" in Algorithm 1, line 37).
  uint64_t incrementAndGet() {
    return Value.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

private:
  std::atomic<uint64_t> Value{0};
};

} // namespace stm

#endif // STM_CORE_CLOCK_H
