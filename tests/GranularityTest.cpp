//===- tests/GranularityTest.cpp - lock-granularity sweeps -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Correctness must hold at every lock granularity the paper sweeps
// (2^2..2^8 bytes per stripe): coarse stripes introduce false conflicts
// but may never break atomicity. Value-parameterized over granularity,
// exercised on the contended-counter and bank workloads for each STM.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/rbtree/RbTree.h"

#include <gtest/gtest.h>

using namespace stm;
using repro_test::runThreads;

namespace {

class GranularitySweep : public ::testing::TestWithParam<unsigned> {};

template <typename STM> void bankAtGranularity(unsigned Gran) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 14;
  Config.GranularityLog2 = Gran;
  STM::globalInit(Config);
  {
    // Adjacent accounts intentionally share stripes at coarse
    // granularities.
    static std::vector<Word> Bank;
    Bank.assign(64, 100);
    runThreads<STM>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id * 5 + 1));
      for (int I = 0; I < 600; ++I) {
        unsigned From = Rng.nextBounded(64), To = Rng.nextBounded(64);
        atomically(Tx, [&](auto &T) {
          Word B = T.load(&Bank[From]);
          if (B == 0)
            return;
          T.store(&Bank[From], B - 1);
          T.store(&Bank[To], T.load(&Bank[To]) + 1);
        });
      }
    });
    uint64_t Total = 0;
    for (Word B : Bank)
      Total += B;
    EXPECT_EQ(Total, 64u * 100u) << "granularity 2^" << Gran;
  }
  STM::globalShutdown();
}

TEST_P(GranularitySweep, SwissBankInvariant) {
  bankAtGranularity<SwissTm>(GetParam());
}
TEST_P(GranularitySweep, Tl2BankInvariant) {
  bankAtGranularity<Tl2>(GetParam());
}
TEST_P(GranularitySweep, TinyBankInvariant) {
  bankAtGranularity<TinyStm>(GetParam());
}
TEST_P(GranularitySweep, RstmBankInvariant) {
  bankAtGranularity<Rstm>(GetParam());
}

TEST_P(GranularitySweep, RbTreeInvariantsAtCoarseStripes) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 14;
  Config.GranularityLog2 = GetParam();
  SwissTm::globalInit(Config);
  {
    workloads::RbTree<SwissTm> Tree;
    runThreads<SwissTm>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id * 11 + 2));
      for (int I = 0; I < 400; ++I) {
        uint64_t Key = Rng.nextBounded(128);
        unsigned P = static_cast<unsigned>(Rng.nextBounded(3));
        if (P == 0)
          atomically(Tx, [&](auto &T) { Tree.insert(T, Key, Key); });
        else if (P == 1)
          atomically(Tx, [&](auto &T) { Tree.remove(T, Key); });
        else
          atomically(Tx, [&](auto &T) { Tree.lookup(T, Key); });
      }
    });
    EXPECT_TRUE(Tree.verify()) << "granularity 2^" << GetParam();
  }
  SwissTm::globalShutdown();
}

TEST_P(GranularitySweep, TinyLockTableStressesCollisions) {
  // A deliberately tiny lock table maximizes stripe collisions (many
  // unrelated addresses share an entry); atomicity must survive.
  StmConfig Config;
  Config.LockTableSizeLog2 = 4; // 16 entries only
  Config.GranularityLog2 = GetParam();
  SwissTm::globalInit(Config);
  {
    static std::vector<Word> Cells;
    Cells.assign(256, 0);
    runThreads<SwissTm>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id + 1));
      for (int I = 0; I < 500; ++I) {
        unsigned A = Rng.nextBounded(256);
        atomically(Tx, [&, A](auto &T) {
          T.store(&Cells[A], T.load(&Cells[A]) + 1);
        });
      }
    });
    uint64_t Total = 0;
    for (Word C : Cells)
      Total += C;
    EXPECT_EQ(Total, 4u * 500u);
  }
  SwissTm::globalShutdown();
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, GranularitySweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto &Info) {
                           return "G" + std::to_string(1u << Info.param) +
                                  "Bytes";
                         });

} // namespace
