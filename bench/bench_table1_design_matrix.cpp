//===- bench/bench_table1_design_matrix.cpp - Table 1 ------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Table 1: effectiveness of STM design-choice combinations on mixed
// workloads. The paper's rows are three axes — acquire strategy x read
// visibility x contention manager — and with the policy-based core every
// cell is just a backend type plus an StmConfig, so the whole table is
// one declarative grid below instead of four bespoke code paths. Adding
// a row (a new CM, a new backend) is one line.
//
// The printed score is throughput on the STMBench7 read-write workload
// at the top thread count (the "mixed workload" regime the table
// summarizes), plus the red-black tree as the short-transaction sanity
// check.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

namespace {

using stm::rt::BackendKind;

void row(const char *Name, const stm::StmConfig &Config) {
  unsigned Threads = maxThreads();
  double Mixed = bench7Throughput<stm::StmRuntime>(Config, Threads,
                                                   Workload7::ReadWrite)
                     .Value;
  double Short = rbTreeThroughput<stm::StmRuntime>(Config, Threads).Value;
  Report::instance().add("table1", "stmbench7-read-write", Name, Threads,
                         "tx_per_s", Mixed);
  Report::instance().add("table1", "rbtree", Name, Threads, "tx_per_s",
                         Short);
}

/// SwissTM's mixed acquire with the given contention manager.
stm::StmConfig mixed(stm::CmKind Cm) {
  stm::StmConfig C = rtConfig(BackendKind::SwissTm);
  C.Cm = Cm;
  return C;
}

/// An RSTM variant cell: acquire x visibility x CM.
stm::StmConfig rstmCell(bool Eager, bool Visible, stm::CmKind Cm) {
  stm::StmConfig C = rtConfig(BackendKind::Rstm);
  C.RstmEagerAcquire = Eager;
  C.RstmVisibleReads = Visible;
  C.Cm = Cm;
  return C;
}

/// One Table 1 cell: pure data now that the backend is part of the
/// configuration — no per-backend template instantiation.
struct Cell {
  const char *Name;
  stm::StmConfig Config;
};

/// The design-choice grid, in the paper's row order.
const Cell Table1[] = {
    {"lazy-invisible-timid", rstmCell(false, false, stm::CmKind::Timid)},
    {"eager-visible-timid", rstmCell(true, true, stm::CmKind::Timid)},
    {"eager-invisible-polka", rstmCell(true, false, stm::CmKind::Polka)},
    {"eager-invisible-timid", rtConfig(BackendKind::TinyStm)},
    {"eager-invisible-greedy", rstmCell(true, false, stm::CmKind::Greedy)},
    // The undo-log point of the eager column: in-place speculative
    // writes instead of TinySTM's redo write-back, same invisible
    // reads, the two-phase CM shared with SwissTM.
    {"eager-undo-two-phase", rtConfig(BackendKind::Orec)},
    {"mixed-invisible-timid", mixed(stm::CmKind::Timid)},
    {"mixed-invisible-greedy", mixed(stm::CmKind::Greedy)},
    {"mixed-invisible-two-phase", mixed(stm::CmKind::TwoPhase)},
};

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (const Cell &C : Table1)
    row(C.Name, C.Config);

  Report::instance().print(
      "table1", "design-choice matrix: acquire x reads x CM");
  return 0;
}
