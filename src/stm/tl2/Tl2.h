//===- stm/tl2/Tl2.h - TL2 baseline (Dice/Shalev/Shavit) --------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Reimplementation of Transactional Locking II (DISC 2006), the paper's
// lazy-acquire baseline: commit-time locking, invisible reads against a
// global version clock, write-back redo logging, and the timid
// contention policy (abort the attacker, no waiting). The clock's
// advance scheme is the shared policy point StmConfig::Clock — TL2's
// own GV1/GV4/GV5 family (see stm/core/Clock.h). TL2 has no timestamp
// extension -- reading a location newer than the transaction's read
// version aborts immediately (advancing a deferred clock first), which
// is one of the behaviours the paper contrasts with SwissTM.
//
// Built from the shared policy core: lock table and clock from
// stm/core; core::TimeValidation tracks the read version ("rv") and
// counts validations, with extension permanently unused.
//
// Versioned lock word per stripe:
//   version << 1          when free,
//   descriptor-ptr | 1    while locked at commit time.
//
//
// INTERNAL HEADER — deprecated as an application include. The public
// surface is stm/Stm.h (stm::Runtime + stm::atomically); select this
// backend at runtime via StmConfig::Backend / STM_BACKEND instead of
// including it directly. Direct includes outside src/stm/ and tests
// of backend internals are scheduled for removal.
//===----------------------------------------------------------------------===//

#ifndef STM_TL2_TL2_H
#define STM_TL2_TL2_H

#include "stm/Config.h"
#include "stm/RacyAccess.h"
#include "stm/TxBase.h"
#include "stm/WriteMap.h"
#include "stm/core/Clock.h"
#include "stm/core/LockTable.h"
#include "stm/core/Validation.h"
#include "stm/core/VersionedLock.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace stm::tl2 {

/// One versioned write-lock per stripe.
struct VLock {
  std::atomic<Word> L{0};
};

/// Lock encoding: one tag bit (see core/VersionedLock.h).
using VLockOps = core::VersionedLockOps<1>;
inline bool vlockIsLocked(Word V) { return VLockOps::isLocked(V); }
inline uint64_t vlockVersion(Word V) { return VLockOps::version(V); }
inline Word vlockMake(uint64_t Version) { return VLockOps::make(Version); }

struct Tl2Globals {
  core::LockTable<VLock> Table;
  GlobalClock Clock; ///< advances under StmConfig::Clock
  StmConfig Config;
  /// Cached SharedArena::sharedActive(): commit locks carry slot
  /// handles instead of descriptor pointers. Set once in globalInit.
  bool SharedWords = false;
};

Tl2Globals &tl2Globals();

/// TL2 transaction descriptor.
class Tl2Tx : public TxBase, public core::TimeValidation<Tl2Tx> {
public:
  explicit Tl2Tx(unsigned Slot) : TxBase(Slot) {}

  void onStart();
  Word load(const Word *Addr);
  void store(Word *Addr, Word Value);
  void commit();
  [[noreturn]] void restart() { rollback(); }

private:
  friend class core::TimeValidation<Tl2Tx>;

  struct WriteEntry {
    Word *Addr;
    Word Value;
  };

  struct Acquired {
    VLock *Lock;
    Word OldValue;
  };

  [[noreturn]] void rollback();
  [[noreturn]] void rollbackReleasing();
  bool acquireWriteSet();
  bool validateReadSet();
  /// Tail of commit() for single-fence mode (STM_SINGLE_FENCE); out of
  /// line so the off-by-default ordering variant does not sit in the
  /// default commit path's I-cache footprint.
  void commitSingleFence();

  /// Number of CAS attempts per lock before giving up and aborting.
  static constexpr unsigned AcquireSpinLimit = 32;

  /// The value this descriptor installs in acquired lock words. TL2
  /// never dereferences it (locks are only compared), so multi-process
  /// mode just substitutes a slot handle for the tagged pointer.
  Word selfWord() const {
    if (REPRO_UNLIKELY(tl2Globals().SharedWords))
      return SharedArena::makeHandle(0, Slot);
    return reinterpret_cast<Word>(this) | 1;
  }

  std::vector<VLock *> ReadLog;
  std::vector<WriteEntry> WriteLog;
  std::vector<Acquired> AcquiredLocks;
  WriteMap WSetMap;
};

/// STM facade.
class Tl2 {
public:
  using Tx = Tl2Tx;

  static constexpr const char *name() { return "tl2"; }

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();
  static Tl2Globals &globals() { return tl2Globals(); }
};

} // namespace stm::tl2

namespace stm {
using Tl2 = tl2::Tl2;
} // namespace stm

#endif // STM_TL2_TL2_H
