//===- stm/diag/Diag.cpp - schedule control + conflict profiler -----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Implementation of the diag layer declared in Hooks.h / Schedule.h /
// Profiler.h. One mutex+condvar serializer drives both replay and
// enumerate mode; record mode only appends under the same mutex. The
// profiler is lock-free (per-slot notes + an open-addressed atomic
// shadow map) so it can stay enabled under full-concurrency benches.
//
//===----------------------------------------------------------------------===//

#include "stm/diag/Schedule.h"

#include "stm/diag/Profiler.h"
#include "support/Platform.h"
#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <map>
#include <set>
#include <unistd.h>

namespace stm::diag {

//===----------------------------------------------------------------------===//
// Hook kind names
//===----------------------------------------------------------------------===//

static const char *const KindNames[NumHookKinds] = {
    "begin",  "read",   "validate", "acquire", "writeback",
    "commit-stamp", "retire", "commit", "abort",   "switch",
};

const char *hookKindName(HookKind Kind) {
  unsigned I = static_cast<unsigned>(Kind);
  return I < NumHookKinds ? KindNames[I] : "?";
}

bool parseHookKind(const char *Name, HookKind &Out) {
  for (unsigned I = 0; I < NumHookKinds; ++I) {
    if (std::strcmp(Name, KindNames[I]) == 0) {
      Out = static_cast<HookKind>(I);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Injection knobs
//===----------------------------------------------------------------------===//

static std::atomic<bool> InjectFlags[static_cast<unsigned>(Inject::Count_)];

bool injected(Inject Knob) {
  return InjectFlags[static_cast<unsigned>(Knob)].load(
      std::memory_order_relaxed);
}

void setInjected(Inject Knob, bool On) {
  InjectFlags[static_cast<unsigned>(Knob)].store(On,
                                                 std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Schedule engine
//===----------------------------------------------------------------------===//

namespace {

enum class Mode : uint8_t { Off, Record, Replay, Enumerate };

constexpr uint32_t NoTid = ~0u;

thread_local uint32_t TlTid = NoTid;

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool stepMatches(const Step &S, const Event &E) {
  if (S.Tid != E.Tid)
    return false;
  if (!S.AnyKind && S.Kind != E.Kind)
    return false;
  if (S.Stripe != NoStripe && S.Stripe != E.Stripe)
    return false;
  return true;
}

} // namespace

struct Schedule::Impl {
  std::mutex Mu;
  std::condition_variable Cv;
  /// Fast-path gate: hooks check this relaxed before touching Mu.
  std::atomic<Mode> M{Mode::Off};

  uint64_t Seq = 0;

  // Record state. With RingCap > 0 the vector is a circular buffer of
  // RingCap events; RingCount is the total ever recorded.
  std::vector<Event> Trace;
  std::size_t RingCap = 0;
  uint64_t RingCount = 0;

  // Serializer state (replay + enumerate). Threads is keyed by logical
  // tid so iteration order — and hence every engine choice — is
  // deterministic.
  enum class TS : uint8_t { Running, Parked, Done };
  struct TInfo {
    TS State = TS::Running;
    Event Pending{};
  };
  std::map<uint32_t, TInfo> Threads;
  std::set<uint32_t> BoundEver;
  uint32_t GrantedTid = NoTid;
  unsigned RequiredBinds = 0;
  uint64_t TimeoutMs = 10000;
  uint64_t LastProgressMs = 0;
  bool FreeRun = false;
  std::atomic<bool> StalledFlag{false};

  // Replay state.
  std::vector<Step> Steps;
  std::size_t Cursor = 0;
  std::size_t Consumed = 0;
  std::size_t Diverged = 0;
  bool SerializeTail = true;

  // Enumerate state.
  std::vector<unsigned> Prefix;
  std::vector<EnumChoice> Choices;
  unsigned MaxChoicePoints = 64;
  uint64_t RoundRobin = 0;

  void resetSerializer() {
    Threads.clear();
    BoundEver.clear();
    GrantedTid = NoTid;
    FreeRun = false;
    StalledFlag.store(false, std::memory_order_relaxed);
    Cursor = Consumed = Diverged = 0;
    Choices.clear();
    RoundRobin = 0;
    Seq = 0;
    Trace.clear();
    RingCap = 0;
    RingCount = 0;
  }

  void logEvent(Event E) {
    E.Seq = Seq++;
    if (RingCap == 0) {
      Trace.push_back(E);
      return;
    }
    if (Trace.size() < RingCap)
      Trace.push_back(E);
    else
      Trace[RingCount % RingCap] = E;
    ++RingCount;
  }

  bool anyRunning() const {
    for (const auto &KV : Threads)
      if (KV.second.State == TS::Running)
        return true;
    return false;
  }

  /// Replay-mode grant: walk the step list past unmatchable steps,
  /// grant the thread matching the first live step; past the list,
  /// round-robin the parked threads (SerializeTail) or release all.
  void tryGrantReplay() {
    if (GrantedTid != NoTid || FreeRun)
      return;
    if (BoundEver.size() < RequiredBinds)
      return;
    if (anyRunning())
      return;
    while (Cursor < Steps.size()) {
      const Step &S = Steps[Cursor];
      auto It = Threads.find(S.Tid);
      if (It == Threads.end() || It->second.State == TS::Done) {
        ++Cursor;
        ++Diverged;
        continue;
      }
      TInfo &TI = It->second;
      assert(TI.State == TS::Parked && "anyRunning() was checked");
      if (S.Until) {
        // Barrier step: the thread advances segment by segment until it
        // parks AT a matching hook; the match consumes the step without
        // a grant, leaving the hook pending for later steps to schedule
        // around. (A thread that finishes first hits the Done branch
        // above and the step is skipped as a divergence.)
        if (stepMatches(S, TI.Pending)) {
          ++Cursor;
          ++Consumed;
          continue;
        }
        grant(S.Tid);
        return;
      }
      if (stepMatches(S, TI.Pending)) {
        ++Cursor;
        ++Consumed;
        grant(S.Tid);
        return;
      }
      // The thread this step names is parked at a *different* event.
      // Its pending event cannot change until granted, so the step can
      // never match again: skip it deterministically.
      ++Cursor;
      ++Diverged;
      continue;
    }
    if (!SerializeTail) {
      FreeRun = true;
      Cv.notify_all();
      return;
    }
    grantRoundRobin();
  }

  /// Enumerate-mode grant: at >= 2 parked threads this is a decision
  /// point — follow the prefix, then first-choice, then (past the
  /// recorded-choice cap) round-robin so spin loops terminate.
  void tryGrantEnumerate() {
    if (GrantedTid != NoTid || FreeRun)
      return;
    if (BoundEver.size() < RequiredBinds)
      return;
    if (anyRunning())
      return;
    std::vector<uint32_t> Parked;
    for (const auto &KV : Threads)
      if (KV.second.State == TS::Parked)
        Parked.push_back(KV.first);
    if (Parked.empty())
      return;
    unsigned Pick = 0;
    if (Parked.size() >= 2) {
      unsigned K = static_cast<unsigned>(Parked.size());
      if (Choices.size() < Prefix.size()) {
        Pick = std::min(Prefix[Choices.size()], K - 1);
        Choices.push_back({Pick, K});
      } else if (Choices.size() < MaxChoicePoints) {
        Pick = 0;
        Choices.push_back({0, K});
      } else {
        Pick = static_cast<unsigned>(RoundRobin++ % K);
      }
    }
    grant(Parked[Pick]);
  }

  // The deterministic tail must also stay *live*: always granting the
  // lowest parked tid can spin a lock-waiting thread forever while the
  // parked lock holder never runs. Rotating through the parked set
  // keeps the tail deterministic (the rotation counter is engine state,
  // reset per mode) and guarantees every parked thread keeps running.
  void grantRoundRobin() {
    std::vector<uint32_t> Parked;
    for (auto &KV : Threads)
      if (KV.second.State == TS::Parked)
        Parked.push_back(KV.first);
    if (Parked.empty())
      return;
    grant(Parked[RoundRobin++ % Parked.size()]);
  }

  void grant(uint32_t Tid) {
    GrantedTid = Tid;
    LastProgressMs = nowMs();
    Cv.notify_all();
  }

  void tryGrant() {
    Mode Cur = M.load(std::memory_order_relaxed);
    if (Cur == Mode::Replay)
      tryGrantReplay();
    else if (Cur == Mode::Enumerate)
      tryGrantEnumerate();
  }

  /// Serialized arrival: park, kick the granter, wait for our grant.
  /// The wedge detector releases everyone to free-run rather than
  /// hanging the test on an infeasible schedule.
  void serializedArrive(std::unique_lock<std::mutex> &Lk, const Event &E) {
    auto It = Threads.find(E.Tid);
    if (It == Threads.end()) {
      // Unbound thread (e.g. the test's main thread): pass through
      // unscheduled but keep its events in the log.
      logEvent(E);
      return;
    }
    TInfo &TI = It->second;
    TI.State = TS::Parked;
    TI.Pending = E;
    tryGrant();
    while (true) {
      if (FreeRun) {
        TI.State = TS::Running;
        logEvent(E);
        return;
      }
      if (GrantedTid == E.Tid) {
        GrantedTid = NoTid;
        TI.State = TS::Running;
        LastProgressMs = nowMs();
        logEvent(E);
        return;
      }
      if (Cv.wait_for(Lk, std::chrono::milliseconds(50)) ==
          std::cv_status::timeout) {
        if (!FreeRun && GrantedTid == NoTid &&
            nowMs() - LastProgressMs > TimeoutMs) {
          StalledFlag.store(true, std::memory_order_relaxed);
          FreeRun = true;
          Cv.notify_all();
        }
      }
    }
  }

  void bind(uint32_t Tid) {
    std::unique_lock<std::mutex> Lk(Mu);
    TlTid = Tid;
    Mode Cur = M.load(std::memory_order_relaxed);
    if (Cur != Mode::Replay && Cur != Mode::Enumerate)
      return;
    Threads[Tid].State = TS::Running;
    BoundEver.insert(Tid);
    tryGrant();
    Cv.notify_all();
  }

  void unbind() {
    std::unique_lock<std::mutex> Lk(Mu);
    uint32_t Tid = TlTid;
    TlTid = NoTid;
    if (Tid == NoTid)
      return;
    auto It = Threads.find(Tid);
    if (It != Threads.end()) {
      It->second.State = TS::Done;
      tryGrant();
      Cv.notify_all();
    }
  }

  void onEvent(uint32_t Slot, HookKind Kind, uint64_t Stripe, uint64_t Aux) {
    std::unique_lock<std::mutex> Lk(Mu);
    Mode Cur = M.load(std::memory_order_relaxed);
    if (Cur == Mode::Off)
      return;
    Event E;
    E.Seq = 0;
    E.Tid = TlTid != NoTid ? TlTid : Slot;
    E.Slot = Slot;
    E.Kind = Kind;
    E.Stripe = Stripe;
    E.Aux = Aux;
    if (Cur == Mode::Record) {
      logEvent(E);
      return;
    }
    serializedArrive(Lk, E);
  }

  std::vector<Event> takeTrace() {
    if (RingCap == 0 || RingCount <= RingCap)
      return std::move(Trace);
    // The ring wrapped: rotate so the oldest surviving event is first.
    std::vector<Event> Out;
    Out.reserve(RingCap);
    std::size_t Start = RingCount % RingCap;
    for (std::size_t I = 0; I < RingCap; ++I)
      Out.push_back(Trace[(Start + I) % RingCap]);
    return Out;
  }
};

Schedule &Schedule::instance() {
  static Schedule S;
  return S;
}

Schedule::Impl &Schedule::impl() {
  static Impl I;
  return I;
}

void Schedule::bindThread(uint32_t Tid) { instance().impl().bind(Tid); }

void Schedule::unbindThread() { instance().impl().unbind(); }

void Schedule::startRecord(std::size_t RingCapacity) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.resetSerializer();
  I.RingCap = RingCapacity;
  if (RingCapacity)
    I.Trace.reserve(RingCapacity);
  I.M.store(Mode::Record, std::memory_order_release);
}

std::vector<Event> Schedule::stopRecord() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.M.store(Mode::Off, std::memory_order_release);
  return I.takeTrace();
}

void Schedule::startReplay(std::vector<Step> Steps, ReplayOptions Opts) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.resetSerializer();
  I.Steps = std::move(Steps);
  I.TimeoutMs = Opts.TimeoutMs;
  I.SerializeTail = Opts.SerializeTail;
  if (Opts.ExpectedThreads) {
    I.RequiredBinds = Opts.ExpectedThreads;
  } else {
    std::set<uint32_t> Tids;
    for (const Step &S : I.Steps)
      Tids.insert(S.Tid);
    I.RequiredBinds = static_cast<unsigned>(Tids.size());
  }
  I.LastProgressMs = nowMs();
  I.M.store(Mode::Replay, std::memory_order_release);
}

std::vector<Event> Schedule::stopReplay() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.M.store(Mode::Off, std::memory_order_release);
  I.FreeRun = true;
  I.Cv.notify_all();
  return I.takeTrace();
}

bool Schedule::stalled() const {
  return const_cast<Schedule *>(this)->impl().StalledFlag.load(
      std::memory_order_relaxed);
}

std::size_t Schedule::stepsConsumed() const {
  Impl &I = const_cast<Schedule *>(this)->impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  return I.Consumed;
}

std::size_t Schedule::divergences() const {
  Impl &I = const_cast<Schedule *>(this)->impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  return I.Diverged;
}

void Schedule::startEnumerate(std::vector<unsigned> ChoicePrefix,
                              unsigned ExpectedThreads,
                              unsigned MaxChoicePoints, uint64_t TimeoutMs) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.resetSerializer();
  I.Prefix = std::move(ChoicePrefix);
  I.RequiredBinds = ExpectedThreads;
  I.MaxChoicePoints = MaxChoicePoints;
  I.TimeoutMs = TimeoutMs;
  I.LastProgressMs = nowMs();
  I.M.store(Mode::Enumerate, std::memory_order_release);
}

std::vector<EnumChoice> Schedule::stopEnumerate() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lk(I.Mu);
  I.M.store(Mode::Off, std::memory_order_release);
  I.FreeRun = true;
  I.Cv.notify_all();
  return std::move(I.Choices);
}

void Schedule::onEvent(uint32_t Slot, HookKind Kind, uint64_t Stripe,
                       uint64_t Aux) {
  impl().onEvent(Slot, Kind, Stripe, Aux);
}

bool Schedule::active() const {
  return const_cast<Schedule *>(this)->impl().M.load(
             std::memory_order_relaxed) != Mode::Off;
}

//===----------------------------------------------------------------------===//
// Trace I/O
//===----------------------------------------------------------------------===//

bool Schedule::dumpTrace(const std::vector<Event> &Trace, const char *Path) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F, "# stm-diag-trace v1\n");
  for (const Event &E : Trace) {
    if (E.Stripe == NoStripe)
      std::fprintf(F, "%llu %u %u %s - %llu\n",
                   (unsigned long long)E.Seq, E.Tid, E.Slot,
                   hookKindName(E.Kind), (unsigned long long)E.Aux);
    else
      std::fprintf(F, "%llu %u %u %s %llu %llu\n",
                   (unsigned long long)E.Seq, E.Tid, E.Slot,
                   hookKindName(E.Kind), (unsigned long long)E.Stripe,
                   (unsigned long long)E.Aux);
  }
  bool Ok = std::fclose(F) == 0;
  return Ok;
}

bool Schedule::loadTrace(const char *Path, std::vector<Event> &Out) {
  std::FILE *F = std::fopen(Path, "r");
  if (!F)
    return false;
  Out.clear();
  char Line[256];
  bool Ok = true;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (Line[0] == '#' || Line[0] == '\n')
      continue;
    unsigned long long S, St, A;
    unsigned T, Sl;
    char KindBuf[32], StripeBuf[32];
    if (std::sscanf(Line, "%llu %u %u %31s %31s %llu", &S, &T, &Sl, KindBuf,
                    StripeBuf, &A) != 6) {
      Ok = false;
      break;
    }
    Event E;
    E.Seq = S;
    E.Tid = T;
    E.Slot = Sl;
    if (!parseHookKind(KindBuf, E.Kind)) {
      Ok = false;
      break;
    }
    if (StripeBuf[0] == '-' && StripeBuf[1] == '\0') {
      E.Stripe = NoStripe;
    } else if (std::sscanf(StripeBuf, "%llu", &St) == 1) {
      E.Stripe = St;
    } else {
      Ok = false;
      break;
    }
    E.Aux = A;
    Out.push_back(E);
  }
  std::fclose(F);
  return Ok;
}

std::vector<Step> Schedule::stepsFromEvents(const std::vector<Event> &Trace) {
  std::vector<Step> Steps;
  Steps.reserve(Trace.size());
  for (const Event &E : Trace) {
    Step S;
    S.Tid = E.Tid;
    S.Kind = E.Kind;
    S.AnyKind = false;
    S.Stripe = E.Stripe;
    Steps.push_back(S);
  }
  return Steps;
}

void Schedule::dumpRingToFd(int Fd) {
  // Async-signal path: no locking (the crashing thread may hold Mu),
  // no allocation. Reads of a vector being concurrently appended are
  // best-effort — the snapshot below bounds the damage.
  Impl &I = impl();
  std::size_t N = I.Trace.size();
  const Event *Base = I.Trace.data();
  if (!Base || N == 0)
    return;
  char Buf[160];
  int Len = std::snprintf(Buf, sizeof(Buf), "# stm-diag-trace v1\n");
  (void)!write(Fd, Buf, (size_t)Len);
  std::size_t Start =
      (I.RingCap && I.RingCount > I.RingCap) ? I.RingCount % I.RingCap : 0;
  for (std::size_t K = 0; K < N; ++K) {
    const Event &E = Base[(Start + K) % N];
    if (E.Stripe == NoStripe)
      Len = std::snprintf(Buf, sizeof(Buf), "%llu %u %u %s - %llu\n",
                          (unsigned long long)E.Seq, E.Tid, E.Slot,
                          hookKindName(E.Kind), (unsigned long long)E.Aux);
    else
      Len = std::snprintf(Buf, sizeof(Buf), "%llu %u %u %s %llu %llu\n",
                          (unsigned long long)E.Seq, E.Tid, E.Slot,
                          hookKindName(E.Kind), (unsigned long long)E.Stripe,
                          (unsigned long long)E.Aux);
    if (Len > 0)
      (void)!write(Fd, Buf, (size_t)Len);
  }
}

//===----------------------------------------------------------------------===//
// Enumeration driver
//===----------------------------------------------------------------------===//

EnumStats enumerateSchedules(unsigned ExpectedThreads, uint64_t MaxRuns,
                             const std::function<void()> &RunOnce,
                             unsigned MaxChoicePoints) {
  // Work-list order matters under a MaxRuns budget: schedules that
  // diverge at the *earliest* choice points differ most from what
  // already ran, so they are explored first. The old driver walked the
  // tree depth-first by bumping the *deepest* untried alternative,
  // which under truncation spent the whole budget on near-identical
  // tail permutations and never reached the divergent prefixes. Each
  // run seeds one pending prefix per untried alternative at every new
  // choice point it discovered; a prefix is enqueued exactly once (by
  // the unique run that first walked its parent path with Alt's
  // predecessor), so every distinct schedule still runs exactly once.
  EnumStats Stats;
  Schedule &S = Schedule::instance();
  std::deque<std::vector<unsigned>> Pending;
  Pending.emplace_back();
  while (!Pending.empty() && Stats.Runs < MaxRuns) {
    std::vector<unsigned> Prefix = std::move(Pending.front());
    Pending.pop_front();
    S.startEnumerate(Prefix, ExpectedThreads, MaxChoicePoints);
    RunOnce();
    std::vector<EnumChoice> Choices = S.stopEnumerate();
    ++Stats.Runs;
    for (std::size_t I = Prefix.size(); I < Choices.size(); ++I)
      for (unsigned Alt = 0; Alt < Choices[I].Enabled; ++Alt) {
        if (Alt == Choices[I].Chosen)
          continue;
        std::vector<unsigned> Next;
        Next.reserve(I + 1);
        for (std::size_t J = 0; J < I; ++J)
          Next.push_back(Choices[J].Chosen);
        Next.push_back(Alt);
        Pending.push_back(std::move(Next));
      }
  }
  if (Pending.empty()) {
    Stats.Exhausted = true;
  } else {
    // Loud truncation: a bounded enumeration that silently stops reads
    // as "walked every schedule" when it did not.
    Stats.Truncated = true;
    std::fprintf(stderr,
                 "stm-diag: enumerateSchedules truncated at %llu runs "
                 "(%zu schedule subtrees unexplored)\n",
                 (unsigned long long)Stats.Runs, Pending.size());
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64-style mix spreads adjacent stripe indices across the
/// table (adjacent stripes are exactly the hot case under benches).
uint64_t mixStripe(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

struct Profiler::Impl {
  static constexpr std::size_t Size = std::size_t{1} << Profiler::TableLog2;
  static constexpr std::size_t MaxProbe = 64;

  struct Entry {
    std::atomic<uint64_t> Key{0}; ///< Stripe + 1; 0 = empty
    std::atomic<uint64_t> Conflicts{0};
    std::atomic<uint64_t> Aborts{0};
    std::atomic<uint64_t> AddrA{0};
    std::atomic<uint64_t> AddrB{0};
  };

  struct alignas(repro::CacheLineSize) SlotNote {
    std::atomic<uint64_t> Stripe{NoStripe};
    std::atomic<uint64_t> Addr{0};
    std::atomic<uint64_t> Lock{0};
    std::atomic<uint32_t> Armed{0};
  };

  std::atomic<bool> Enabled{false};
  std::vector<Entry> Table{Size};
  SlotNote Notes[repro::MaxThreads];
  std::atomic<uint64_t> ConflictNotes{0};
  std::atomic<uint64_t> Attributed{0};
  std::atomic<uint64_t> Unattributed{0};
  std::atomic<uint64_t> Dropped{0};

  Entry *find(uint64_t Stripe) {
    uint64_t Key = Stripe + 1;
    std::size_t H = mixStripe(Stripe) & (Size - 1);
    for (std::size_t P = 0; P < MaxProbe; ++P) {
      Entry &E = Table[(H + P) & (Size - 1)];
      uint64_t K = E.Key.load(std::memory_order_acquire);
      if (K == Key)
        return &E;
      if (K == 0) {
        uint64_t Expected = 0;
        if (E.Key.compare_exchange_strong(Expected, Key,
                                          std::memory_order_acq_rel))
          return &E;
        if (Expected == Key)
          return &E;
      }
    }
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  void recordAddr(Entry &E, uint64_t Addr) {
    if (!Addr)
      return;
    uint64_t A = E.AddrA.load(std::memory_order_relaxed);
    if (A == 0) {
      uint64_t Expected = 0;
      if (E.AddrA.compare_exchange_strong(Expected, Addr,
                                          std::memory_order_relaxed))
        return;
      A = Expected;
    }
    if (A == Addr)
      return;
    uint64_t B = E.AddrB.load(std::memory_order_relaxed);
    if (B == 0) {
      uint64_t Expected = 0;
      E.AddrB.compare_exchange_strong(Expected, Addr,
                                      std::memory_order_relaxed);
    }
  }
};

Profiler &Profiler::instance() {
  static Profiler P;
  return P;
}

Profiler::Profiler() : P(new Impl) {}

void Profiler::enable() { P->Enabled.store(true, std::memory_order_release); }

void Profiler::disable() {
  P->Enabled.store(false, std::memory_order_release);
}

bool Profiler::enabled() const {
  return P->Enabled.load(std::memory_order_acquire);
}

void Profiler::reset() {
  for (Impl::Entry &E : P->Table) {
    E.Key.store(0, std::memory_order_relaxed);
    E.Conflicts.store(0, std::memory_order_relaxed);
    E.Aborts.store(0, std::memory_order_relaxed);
    E.AddrA.store(0, std::memory_order_relaxed);
    E.AddrB.store(0, std::memory_order_relaxed);
  }
  for (Impl::SlotNote &N : P->Notes) {
    N.Stripe.store(NoStripe, std::memory_order_relaxed);
    N.Addr.store(0, std::memory_order_relaxed);
    N.Lock.store(0, std::memory_order_relaxed);
    N.Armed.store(0, std::memory_order_relaxed);
  }
  P->ConflictNotes.store(0, std::memory_order_relaxed);
  P->Attributed.store(0, std::memory_order_relaxed);
  P->Unattributed.store(0, std::memory_order_relaxed);
  P->Dropped.store(0, std::memory_order_relaxed);
}

void Profiler::noteConflict(unsigned Slot, const void *Addr, uint64_t Stripe,
                            uint64_t LockWord) {
  if (!P->Enabled.load(std::memory_order_relaxed))
    return;
  P->ConflictNotes.fetch_add(1, std::memory_order_relaxed);
  uint64_t A = reinterpret_cast<uint64_t>(Addr);
  if (Slot < repro::MaxThreads) {
    // Arm the slot's last-conflict note. The slot may be a *victim's*
    // (an attacker noting the contended stripe before a kill) — last
    // writer wins, which is the conflict closest to the abort.
    Impl::SlotNote &N = P->Notes[Slot];
    N.Stripe.store(Stripe, std::memory_order_relaxed);
    N.Addr.store(A, std::memory_order_relaxed);
    N.Lock.store(LockWord, std::memory_order_relaxed);
    N.Armed.store(1, std::memory_order_release);
  }
  if (Stripe == NoStripe)
    return;
  if (Impl::Entry *E = P->find(Stripe)) {
    E->Conflicts.fetch_add(1, std::memory_order_relaxed);
    P->recordAddr(*E, A);
  }
}

void Profiler::noteBegin(unsigned Slot) {
  if (!P->Enabled.load(std::memory_order_relaxed))
    return;
  if (Slot < repro::MaxThreads)
    P->Notes[Slot].Armed.store(0, std::memory_order_relaxed);
}

void Profiler::noteAbort(unsigned Slot, repro::TxStats &Stats) {
  if (!P->Enabled.load(std::memory_order_relaxed))
    return;
  if (Slot >= repro::MaxThreads)
    return;
  Impl::SlotNote &N = P->Notes[Slot];
  if (!N.Armed.load(std::memory_order_acquire)) {
    P->Unattributed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  N.Armed.store(0, std::memory_order_relaxed);
  uint64_t Stripe = N.Stripe.load(std::memory_order_relaxed);
  P->Attributed.fetch_add(1, std::memory_order_relaxed);
  Stats.AbortsAttributed += 1;
  if (Stripe == NoStripe)
    return;
  if (Impl::Entry *E = P->find(Stripe))
    E->Aborts.fetch_add(1, std::memory_order_relaxed);
}

ProfileReport Profiler::report() const {
  ProfileReport R;
  for (const Impl::Entry &E : P->Table) {
    uint64_t K = E.Key.load(std::memory_order_acquire);
    if (K == 0)
      continue;
    StripeProfile S;
    S.Stripe = K - 1;
    S.Conflicts = E.Conflicts.load(std::memory_order_relaxed);
    S.Aborts = E.Aborts.load(std::memory_order_relaxed);
    S.AddrA = E.AddrA.load(std::memory_order_relaxed);
    S.AddrB = E.AddrB.load(std::memory_order_relaxed);
    S.FalseSharing = S.AddrB != 0 && S.AddrB != S.AddrA;
    if (S.FalseSharing)
      ++R.FalseSharingStripes;
    R.Stripes.push_back(S);
  }
  std::sort(R.Stripes.begin(), R.Stripes.end(),
            [](const StripeProfile &A, const StripeProfile &B) {
              if (A.Aborts != B.Aborts)
                return A.Aborts > B.Aborts;
              if (A.Conflicts != B.Conflicts)
                return A.Conflicts > B.Conflicts;
              return A.Stripe < B.Stripe;
            });
  R.ConflictNotes = P->ConflictNotes.load(std::memory_order_relaxed);
  R.AttributedAborts = P->Attributed.load(std::memory_order_relaxed);
  R.UnattributedAborts = P->Unattributed.load(std::memory_order_relaxed);
  R.DroppedStripes = P->Dropped.load(std::memory_order_relaxed);
  return R;
}

//===----------------------------------------------------------------------===//
// Hook entry points
//===----------------------------------------------------------------------===//

void hookPoint(unsigned Slot, HookKind Kind, uint64_t Stripe, uint64_t Aux) {
  Schedule &S = Schedule::instance();
  if (S.active())
    S.onEvent(Slot, Kind, Stripe, Aux);
}

void txBegin(unsigned Slot, uint64_t StartTs) {
  Profiler::instance().noteBegin(Slot);
  hookPoint(Slot, HookKind::Begin, NoStripe, StartTs);
}

void txCommit(unsigned Slot, uint64_t CommitTs) {
  hookPoint(Slot, HookKind::Commit, NoStripe, CommitTs);
}

void txAbort(unsigned Slot, repro::TxStats &Stats) {
  hookPoint(Slot, HookKind::Abort, NoStripe, 0);
  Profiler::instance().noteAbort(Slot, Stats);
}

void noteConflict(unsigned Slot, const void *Addr, uint64_t Stripe,
                  uint64_t LockWord) {
  Profiler::instance().noteConflict(Slot, Addr, Stripe, LockWord);
}

//===----------------------------------------------------------------------===//
// Bench wiring: env-driven recording + crash-dump handlers
//===----------------------------------------------------------------------===//

namespace {

char CrashTracePath[512] = "stm-diag-crash.trace";
struct sigaction OldAbrt, OldSegv, OldBus;

void crashDump(int Sig, siginfo_t *Info, void *Ctx) {
  int Fd = open(CrashTracePath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd >= 0) {
    Schedule::instance().dumpRingToFd(Fd);
    close(Fd);
  }
  // Chain to the previous disposition (MALLOC_CHECK_ diagnostics,
  // default core dump, ...).
  struct sigaction *Old = Sig == SIGABRT  ? &OldAbrt
                          : Sig == SIGSEGV ? &OldSegv
                                           : &OldBus;
  if (Old->sa_flags & SA_SIGINFO) {
    if (Old->sa_sigaction)
      Old->sa_sigaction(Sig, Info, Ctx);
    return;
  }
  if (Old->sa_handler == SIG_IGN)
    return;
  if (Old->sa_handler != SIG_DFL) {
    Old->sa_handler(Sig);
    return;
  }
  signal(Sig, SIG_DFL);
  raise(Sig);
}

void installCrashHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_sigaction = crashDump;
  SA.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGABRT, &SA, &OldAbrt);
  sigaction(SIGSEGV, &SA, &OldSegv);
  sigaction(SIGBUS, &SA, &OldBus);
}

} // namespace

void initFromEnv() {
  if (const char *V = std::getenv("STM_DIAG_PROFILE")) {
    if (*V && *V != '0')
      Profiler::instance().enable();
  }
  const char *Rec = std::getenv("STM_DIAG_RECORD");
  if (!Rec || !*Rec || *Rec == '0')
    return;
  std::size_t Ring = 1u << 16;
  if (const char *R = std::getenv("STM_DIAG_RING")) {
    long long N = std::atoll(R);
    if (N > 0)
      Ring = static_cast<std::size_t>(N);
  }
  if (const char *T = std::getenv("STM_DIAG_TRACE")) {
    std::strncpy(CrashTracePath, T, sizeof(CrashTracePath) - 1);
    CrashTracePath[sizeof(CrashTracePath) - 1] = '\0';
  }
  Schedule::instance().startRecord(Ring);
  installCrashHandlers();
}

void maybePrintProfile(const char *Label) {
  Profiler &Prof = Profiler::instance();
  if (!Prof.enabled())
    return;
  ProfileReport R = Prof.report();
  uint64_t TotalAborts = R.AttributedAborts + R.UnattributedAborts;
  if (R.ConflictNotes == 0 && TotalAborts == 0)
    return;
  std::fprintf(stderr,
               "# diag-profile %s: notes=%llu attributed=%llu/%llu "
               "false-sharing-stripes=%llu dropped=%llu\n",
               Label, (unsigned long long)R.ConflictNotes,
               (unsigned long long)R.AttributedAborts,
               (unsigned long long)TotalAborts,
               (unsigned long long)R.FalseSharingStripes,
               (unsigned long long)R.DroppedStripes);
  std::size_t N = std::min<std::size_t>(R.Stripes.size(), 10);
  for (std::size_t I = 0; I < N; ++I) {
    const StripeProfile &S = R.Stripes[I];
    std::fprintf(stderr, "#   stripe %llu: aborts=%llu conflicts=%llu",
                 (unsigned long long)S.Stripe, (unsigned long long)S.Aborts,
                 (unsigned long long)S.Conflicts);
    if (S.AddrA)
      std::fprintf(stderr, " addr=0x%llx", (unsigned long long)S.AddrA);
    if (S.FalseSharing)
      std::fprintf(stderr, " FALSE-SHARING addr2=0x%llx",
                   (unsigned long long)S.AddrB);
    std::fprintf(stderr, "\n");
  }
  // Per-run reports: the next measured cell starts from a clean map.
  Prof.reset();
}

} // namespace stm::diag
