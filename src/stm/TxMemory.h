//===- stm/TxMemory.h - transactional malloc/free ---------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Dynamic-structure benchmarks (red-black tree, vacation, genome, ...)
// allocate and free inside transactions. The contract implemented here:
//
//   * txMalloc: allocation is immediate; if the transaction aborts the
//     block is returned to the allocator (it was never visible).
//   * txFree: the free is deferred to commit; if the transaction aborts
//     the block stays live.
//   * After commit, a freed block is *retired*, not released: invisible
//     readers in doomed transactions may still dereference it. A block
//     retired at commit timestamp T is handed back to malloc only once
//     every in-flight transaction started after T (quiescence via
//     ThreadRegistry::minActiveStart).
//
//===----------------------------------------------------------------------===//

#ifndef STM_TXMEMORY_H
#define STM_TXMEMORY_H

#include "stm/core/SharedArena.h"
#include "support/ThreadRegistry.h"

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <vector>

namespace stm {

/// Per-thread transactional allocator. Owned by one descriptor; not
/// thread-safe (it never needs to be).
class TxMemory {
public:
  ~TxMemory() { releaseAll(); }

  /// Allocates \p Size bytes inside the current transaction. Served
  /// from the shared segment's heap in multi-process mode so peers can
  /// read the block; the free side dispatches by address range.
  void *txMalloc(std::size_t Size) {
    void *Ptr = sharedAlloc(Size);
    Allocs.push_back(Ptr);
    return Ptr;
  }

  /// Schedules \p Ptr to be freed if the current transaction commits.
  void txFree(void *Ptr) {
    if (Ptr != nullptr)
      Frees.push_back(Ptr);
  }

  /// Deferred frees pending for the current transaction (the blocks a
  /// commit would retire); feeds the diag Retire hook.
  std::size_t pendingFrees() const { return Frees.size(); }

  /// Commit hook: deferred frees become retired blocks stamped with the
  /// committing transaction's timestamp; speculative allocations become
  /// permanent.
  void onCommit(uint64_t CommitTs) {
    for (void *Ptr : Frees)
      Retired.push_back(Block{Ptr, CommitTs});
    Frees.clear();
    Allocs.clear();
    if (Retired.size() >= CollectThreshold)
      collect();
  }

  /// Abort hook: speculative allocations are rolled back; deferred frees
  /// are forgotten.
  void onAbort() {
    for (void *Ptr : Allocs)
      sharedDispatchFree(Ptr);
    Allocs.clear();
    Frees.clear();
  }

  /// Releases every retired block whose retirement timestamp precedes
  /// all in-flight transactions. Returns the number of blocks released.
  std::size_t collect() {
    uint64_t Horizon = repro::ThreadRegistry::minActiveStart();
    std::size_t Released = 0;
    while (!Retired.empty() && Retired.front().RetireTs < Horizon) {
      sharedDispatchFree(Retired.front().Ptr);
      Retired.pop_front();
      ++Released;
    }
    return Released;
  }

  /// Unconditionally releases all retired blocks. Only safe once no
  /// transaction can be in flight (thread shutdown / tests).
  void releaseAll() {
    for (const Block &B : Retired)
      sharedDispatchFree(B.Ptr);
    Retired.clear();
    onAbort(); // also drop any speculative state
  }

  std::size_t retiredCount() const { return Retired.size(); }

  /// Hands every still-retired block to \p Sink (a callable taking
  /// (void *Ptr, uint64_t RetireTs)). Used at thread shutdown to move
  /// blocks into the process-global retired pool.
  template <typename Fn> void drainTo(Fn &&Sink) {
    for (const Block &B : Retired)
      Sink(B.Ptr, B.RetireTs);
    Retired.clear();
  }

private:
  struct Block {
    void *Ptr;
    uint64_t RetireTs;
  };

  static constexpr std::size_t CollectThreshold = 1024;

  std::vector<void *> Allocs;
  std::vector<void *> Frees;
  std::deque<Block> Retired;
};

} // namespace stm

#endif // STM_TXMEMORY_H
