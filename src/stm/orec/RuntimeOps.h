//===- stm/orec/RuntimeOps.h - orec runtime adapter -------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Registers the eager orec/undo-log backend with the type-erased
// runtime (see stm/runtime/BackendOps.h).
//
//===----------------------------------------------------------------------===//

#ifndef STM_OREC_RUNTIMEOPS_H
#define STM_OREC_RUNTIMEOPS_H

#include "stm/orec/Orec.h"
#include "stm/runtime/BackendOps.h"

namespace stm::orec {

inline const rt::BackendOps &runtimeOps() {
  static constexpr rt::BackendOps Ops = rt::makeBackendOps<OrecStm>();
  return Ops;
}

} // namespace stm::orec

#endif // STM_OREC_RUNTIMEOPS_H
