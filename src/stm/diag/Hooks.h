//===- stm/diag/Hooks.h - schedule-control hook points ----------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Named hook points in every backend's hot path (read / validate /
// acquire-lock / write-back / commit-stamp / retire, plus the
// transaction-lifecycle and backend-switch events), compiled to
// nothing unless the build defines STM_DIAG. The hooks feed two
// consumers, both in this directory:
//
//   * diag::Schedule — records a live run's interleaving to a
//     replayable trace, replays a recorded or hand-written schedule
//     deterministically, or exhaustively enumerates small schedules
//     (Schedule.h);
//   * diag::Profiler — a shadow-map conflict profiler attributing
//     every abort to the address/stripe/lock-word that caused it
//     (Profiler.h).
//
// Hook placement contract (what the replay engine relies on):
//
//   * every unbounded spin loop in a backend fires a hook each
//     iteration, so a thread parked by the scheduler inside a spin
//     cannot wedge a serialized replay — the spinning thread yields at
//     the hook and the lock holder gets scheduled;
//   * hooks fire while holding no diag-internal locks across any STM
//     operation, and only ever return normally (rollback's longjmp
//     happens after the Abort hook returns).
//
// The macros, not the functions, are the hot-path interface: with
// STM_DIAG undefined they expand to ((void)0) and their arguments are
// never evaluated, so an instrumented backend compiles to exactly the
// code it had before instrumentation. The functions themselves are
// always declared (and defined in Diag.cpp) so tests can drive the
// machinery directly in any build.
//
//===----------------------------------------------------------------------===//

#ifndef STM_DIAG_HOOKS_H
#define STM_DIAG_HOOKS_H

#include <cstdint>

namespace repro {
struct TxStats;
}

namespace stm::diag {

/// The named hook points. Read/Validate/Acquire/WriteBack/CommitStamp/
/// Retire are the per-backend hot-path points; Begin/Commit/Abort are
/// the lifecycle events fired from the shared TxBase/TimeValidation
/// code; Switch marks an adaptive-runtime backend switch.
enum class HookKind : uint8_t {
  Begin,       ///< beginEpoch: Aux = the attempt's start timestamp
  Read,        ///< before each lock/value snapshot attempt; Aux = lock word
  Validate,    ///< before a whole-read-set validation pass
  Acquire,     ///< each write-lock acquisition attempt; Aux = lock word
  WriteBack,   ///< before a stripe's write-back/release; Aux = commit ts
  CommitStamp, ///< after minting the commit timestamp; Aux = the stamp
  Retire,      ///< commit with deferred frees; Aux = the retire tag
  Commit,      ///< baseCommit; Aux = commit timestamp
  Abort,       ///< baseAbort (fires before the longjmp)
  Switch,      ///< adaptive backend switch; Aux = target backend kind
};

inline constexpr unsigned NumHookKinds = 10;

/// Stable lower-case name ("begin", "read", ...); used by the trace
/// format and the bench/profiler reports.
const char *hookKindName(HookKind Kind);

/// Parses a hookKindName back; returns false on unknown names.
bool parseHookKind(const char *Name, HookKind &Out);

/// "No stripe" sentinel for hooks not scoped to a lock-table entry.
inline constexpr uint64_t NoStripe = ~0ull;

/// Slot sentinel for events fired outside any descriptor (the switch
/// gate owner when requestSwitch is called from a non-worker thread).
inline constexpr unsigned NoSlot = 0xFFFFu;

/// Fault-injection knobs for the regression-schedule tests: each
/// resurrects a previously-fixed bug's code path so a replayed or
/// enumerated schedule can demonstrate it still catches the race.
/// All default off; only ever toggled by tests.
enum class Inject : unsigned {
  /// Commit/extension validation blindly passes (the injected bug the
  /// enumeration-mode test must catch as a lost update).
  ValidationSkip,
  /// PR 1 TinySTM/TL2 bug: a self-locked stripe skips the
  /// pre-acquisition version check during validation, letting a stale
  /// read survive an interleaved commit.
  SelfLockedSkip,
  /// PR 5 RSTM bug: the retire tag is the commit stamp instead of a
  /// post-release counter sample, re-opening the reclamation UAF
  /// window against invisible readers of an owned stripe's old value.
  RstmStampRetireTag,
  /// orec bug class: rollback releases the orecs without unwinding the
  /// undo log, leaving an aborted writer's in-place speculative values
  /// in memory — the dirty-read exposure the undo-log-aware opacity
  /// checker must catch.
  OrecSkipUndo,
  /// Unsound fence elision (the single-fence commit's guard rail): the
  /// TL2 read path re-loads the data word *after* the post-read lock
  /// recheck, modelling the weak-memory reorder a relaxed recheck
  /// would permit without the commit-after-write-back protocol — the
  /// returned value can be torn against the validated version, the
  /// non-opaque snapshot the history checker must flag.
  Tl2UnsoundFenceElision,
  /// Multi-process kill-point: a committing SwissTM transaction parks
  /// in an endless spin right after taking its commit stamp — r-locks
  /// and w-locks held, write-back not yet begun — so the
  /// process-recovery test can SIGKILL it at the worst lazy-commit
  /// moment and assert the survivors break the locks cleanly.
  ParkAtCommitStamp,
  Count_,
};

bool injected(Inject Knob);
void setInjected(Inject Knob, bool On);

/// The hot-path entry: forwards to the active Schedule mode (record /
/// replay / enumerate); near-free when no mode is active.
void hookPoint(unsigned Slot, HookKind Kind, uint64_t Stripe, uint64_t Aux);

/// Lifecycle events: hookPoint plus the profiler's per-attempt
/// bookkeeping (Begin clears the slot's pending conflict note; Abort
/// consumes it to attribute the abort and bumps Stats.AbortsAttributed
/// when a note was armed).
void txBegin(unsigned Slot, uint64_t StartTs);
void txCommit(unsigned Slot, uint64_t CommitTs);
void txAbort(unsigned Slot, repro::TxStats &Stats);

/// Conflict attribution: called at every conflict-detection site with
/// the faulting address (null when only the stripe is known, e.g. a
/// failed read-set entry), the lock-table stripe index and the lock
/// word observed. Arms the slot's last-conflict note and feeds the
/// shadow-map profiler. \p Slot may be another transaction's slot: an
/// attacker about to kill a victim notes the contended stripe into the
/// victim's slot so the victim's kill-triggered abort stays attributed.
void noteConflict(unsigned Slot, const void *Addr, uint64_t Stripe,
                  uint64_t LockWord);

/// Bench wiring (called from bench::parseStmFlags): STM_DIAG_RECORD=1
/// starts a ring-buffer recording (STM_DIAG_RING events, default 2^16)
/// and installs SIGABRT/SIGSEGV handlers that dump the ring's tail to
/// STM_DIAG_TRACE (default "stm-diag-crash.trace") — so a heap-
/// corruption abort mid-grid always leaves the interleaving behind.
/// STM_DIAG_PROFILE=1 enables the conflict profiler.
void initFromEnv();

/// Prints the profiler's per-stripe report to stderr if the profiler
/// is enabled and saw any conflicts, then resets the profiler so each
/// measured run reports its own hot set; no-op otherwise. Benches call
/// this after each measured run.
void maybePrintProfile(const char *Label);

} // namespace stm::diag

//===----------------------------------------------------------------------===//
// Hot-path macros: the only spelling backend code uses. Arguments are
// not evaluated when STM_DIAG is off.
//===----------------------------------------------------------------------===//

#ifdef STM_DIAG

#define STM_DIAG_HOOK(Slot, Kind, Stripe, Aux)                                 \
  ::stm::diag::hookPoint((Slot), ::stm::diag::HookKind::Kind, (Stripe), (Aux))
#define STM_DIAG_TX_BEGIN(Slot, StartTs)                                       \
  ::stm::diag::txBegin((Slot), (StartTs))
#define STM_DIAG_TX_COMMIT(Slot, CommitTs)                                     \
  ::stm::diag::txCommit((Slot), (CommitTs))
#define STM_DIAG_TX_ABORT(Slot, Stats) ::stm::diag::txAbort((Slot), (Stats))
#define STM_DIAG_RETIRE(Slot, Ts, PendingFrees)                                \
  do {                                                                         \
    if ((PendingFrees) != 0)                                                   \
      ::stm::diag::hookPoint((Slot), ::stm::diag::HookKind::Retire,            \
                             ::stm::diag::NoStripe, (Ts));                     \
  } while (0)
#define STM_DIAG_NOTE_CONFLICT(Slot, Addr, Stripe, LockWord)                   \
  ::stm::diag::noteConflict((Slot), (Addr), (Stripe), (LockWord))
#define STM_DIAG_INJECTED(Knob)                                                \
  (::stm::diag::injected(::stm::diag::Inject::Knob))

#else

#define STM_DIAG_HOOK(Slot, Kind, Stripe, Aux) ((void)0)
#define STM_DIAG_TX_BEGIN(Slot, StartTs) ((void)0)
#define STM_DIAG_TX_COMMIT(Slot, CommitTs) ((void)0)
#define STM_DIAG_TX_ABORT(Slot, Stats) ((void)0)
#define STM_DIAG_RETIRE(Slot, Ts, PendingFrees) ((void)0)
#define STM_DIAG_NOTE_CONFLICT(Slot, Addr, Stripe, LockWord) ((void)0)
#define STM_DIAG_INJECTED(Knob) (false)

#endif // STM_DIAG

#endif // STM_DIAG_HOOKS_H
