//===- examples/quickstart.cpp - SwissTM in five minutes --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The smallest complete program: a shared bank with word-based
// transactional accesses. Shows global init, per-thread attachment,
// atomically(), typed accessors and statistics.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"

#include <cstdio>
#include <thread>
#include <vector>

// The examples run on the type-erased runtime: pick the backend at
// launch time with STM_BACKEND=swisstm|tl2|tinystm|rstm (and
// STM_ADAPTIVE=1 for the mode switcher) instead of recompiling.
using Stm = stm::StmRuntime;

namespace {

constexpr unsigned NumAccounts = 32;
constexpr unsigned NumThreads = 4;
constexpr unsigned TransfersPerThread = 20000;
constexpr stm::Word InitialBalance = 1000;

struct alignas(8) Account {
  stm::Word Balance;
};

} // namespace

int main() {
  // 1. Initialize the STM once per process (RAII guard).
  stm::GlobalInit<Stm> Guard(stm::configFromEnv());

  std::vector<Account> Bank(NumAccounts, Account{InitialBalance});

  // 2. Each thread attaches with a ThreadScope and runs transactions.
  std::vector<std::thread> Threads;
  for (unsigned Id = 0; Id < NumThreads; ++Id) {
    Threads.emplace_back([&Bank, Id] {
      stm::ThreadScope<Stm> Scope;
      auto &Tx = Scope.tx();
      repro::Xorshift Rng(Id + 1);
      for (unsigned I = 0; I < TransfersPerThread; ++I) {
        unsigned From = Rng.nextBounded(NumAccounts);
        unsigned To = Rng.nextBounded(NumAccounts);
        // 3. atomically() retries the body until it commits.
        stm::atomically(Tx, [&](Stm::Tx &T) {
          stm::Word B = T.load(&Bank[From].Balance);
          if (B == 0)
            return; // nothing to move; commits as read-only
          T.store(&Bank[From].Balance, B - 1);
          T.store(&Bank[To].Balance, T.load(&Bank[To].Balance) + 1);
        });
      }
      std::printf("thread %u: %llu commits, %llu aborts\n", Id,
                  (unsigned long long)Tx.stats().Commits,
                  (unsigned long long)Tx.stats().Aborts);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // 4. Money is conserved: the defining invariant of atomicity.
  stm::Word Total = 0;
  for (const Account &A : Bank)
    Total += A.Balance;
  std::printf("total balance: %llu (expected %llu) -> %s\n",
              (unsigned long long)Total,
              (unsigned long long)(NumAccounts * InitialBalance),
              Total == NumAccounts * InitialBalance ? "OK" : "BROKEN");
  return Total == NumAccounts * InitialBalance ? 0 : 1;
}
