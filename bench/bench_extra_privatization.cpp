//===- bench/bench_extra_privatization.cpp - extra ablation ------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Section 6 of the paper predicts that quiescence-based privatization
// safety "would probably significantly impact performance". This bench
// measures that prediction with our implementation of exactly that
// mechanism: SwissTM with PrivatizationSafe on vs off, on the
// red-black tree (short transactions; frequent quiescence waits) and
// STMBench7-lite read-write (long readers block committers for longer).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

static void sweep(bool Safe, const char *Name) {
  stm::StmConfig Config;
  Config.PrivatizationSafe = Safe;
  for (unsigned Threads : threadSweep()) {
    double Rb = rbTreeThroughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads)
                    .Value;
    Report::instance().add("extra-privatization", "rbtree", Name, Threads,
                           "tx_per_s", Rb);
    double B7 = bench7Throughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads,
                                               Workload7::ReadWrite)
                    .Value;
    Report::instance().add("extra-privatization", "stmbench7-read-write",
                           Name, Threads, "tx_per_s", B7);
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  sweep(false, "unsafe-default");
  sweep(true, "privatization-safe");
  Report::instance().print(
      "extra", "quiescence privatization safety cost (SwissTM)");
  return 0;
}
