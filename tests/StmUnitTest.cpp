//===- tests/StmUnitTest.cpp - STM substrate unit tests --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Unit tests for the shared STM substrate: the lock-table mapping of
// Figure 1, global clocks, pointer-stable logs, the lazy-write-set map,
// transactional memory management and the word/field helpers.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/RetiredPool.h"
#include "stm/StableLog.h"
#include "stm/TxMemory.h"
#include "stm/Word.h"
#include "stm/WriteMap.h"
#include "stm/core/Clock.h"
#include "stm/core/LockTable.h"
#include "stm/swisstm/SwissTm.h"
#include "stm/tinystm/TinyStm.h"
#include "stm/tl2/Tl2.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace stm;

namespace {

//===----------------------------------------------------------------------===//
// Word helpers
//===----------------------------------------------------------------------===//

TEST(WordTest, AlignmentHelpers) {
  alignas(8) unsigned char Buf[16] = {};
  EXPECT_TRUE(isWordAligned(Buf));
  EXPECT_FALSE(isWordAligned(Buf + 1));
  EXPECT_EQ(alignToWord(Buf + 3), reinterpret_cast<Word *>(Buf));
  EXPECT_EQ(alignToWord(Buf + 8), reinterpret_cast<Word *>(Buf + 8));
}

TEST(WordTest, ToFromWordRoundTrip) {
  EXPECT_EQ(fromWord<double>(toWord(2.5)), 2.5);
  EXPECT_EQ(fromWord<int32_t>(toWord(int32_t{-7})), -7);
  EXPECT_EQ(fromWord<uint8_t>(toWord(uint8_t{255})), 255);
  float F = 1.25f;
  EXPECT_EQ(fromWord<float>(toWord(F)), F);
}

//===----------------------------------------------------------------------===//
// Lock table (Figure 1)
//===----------------------------------------------------------------------===//

struct DummyEntry {
  std::uint64_t Tag = 0;
};

class LockTableGranularity : public ::testing::TestWithParam<unsigned> {};

TEST_P(LockTableGranularity, StripeNeighborsShareEntry) {
  unsigned Gran = GetParam();
  LockTable<DummyEntry> Table;
  Table.init(/*SizeLog2=*/10, Gran);
  alignas(4096) static unsigned char Arena[8192];
  uint64_t Stripe = uint64_t(1) << Gran;
  // All bytes inside one stripe map to the same entry...
  for (uint64_t Base = 0; Base + Stripe <= sizeof(Arena); Base += Stripe) {
    uint64_t First = Table.indexFor(Arena + Base);
    for (uint64_t Off = 1; Off < Stripe; ++Off)
      ASSERT_EQ(Table.indexFor(Arena + Base + Off), First);
  }
  // ...and adjacent stripes map to different entries (no collision for
  // adjacent addresses while the table is big enough).
  for (uint64_t Base = 0; Base + 2 * Stripe <= sizeof(Arena); Base += Stripe)
    ASSERT_NE(Table.indexFor(Arena + Base),
              Table.indexFor(Arena + Base + Stripe));
}

INSTANTIATE_TEST_SUITE_P(AllGranularities, LockTableGranularity,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(LockTableTest, IndexStaysInRange) {
  LockTable<DummyEntry> Table;
  Table.init(6, 4);
  repro::Xorshift Rng(repro::testSeed(3));
  for (int I = 0; I < 10000; ++I) {
    auto Addr = reinterpret_cast<const void *>(Rng.next());
    EXPECT_LT(Table.indexFor(Addr), Table.size());
  }
}

TEST(LockTableTest, SizeAndStripeBytes) {
  LockTable<DummyEntry> Table;
  Table.init(8, 5);
  EXPECT_EQ(Table.size(), 256u);
  EXPECT_EQ(Table.stripeBytes(), 32u);
  EXPECT_TRUE(Table.isInitialized());
  Table.destroy();
  EXPECT_FALSE(Table.isInitialized());
}

//===----------------------------------------------------------------------===//
// Clocks
//===----------------------------------------------------------------------===//

TEST(ClockTest, IncrementAndGetIsSequential) {
  GlobalClock Clock;
  EXPECT_EQ(Clock.load(), 0u);
  EXPECT_EQ(Clock.incrementAndGet(), 1u);
  EXPECT_EQ(Clock.incrementAndGet(), 2u);
  EXPECT_EQ(Clock.load(), 2u);
  Clock.reset();
  EXPECT_EQ(Clock.load(), 0u);
}

TEST(ClockTest, ConcurrentIncrementsAreUnique) {
  GlobalClock Clock;
  constexpr unsigned Threads = 8, PerThread = 2000;
  std::vector<std::vector<uint64_t>> Seen(Threads);
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([&, I] {
      for (unsigned K = 0; K < PerThread; ++K)
        Seen[I].push_back(Clock.incrementAndGet());
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint64_t> All;
  for (auto &V : Seen)
    All.insert(V.begin(), V.end());
  EXPECT_EQ(All.size(), Threads * PerThread);
  EXPECT_EQ(*All.rbegin(), Threads * PerThread);
}

//===----------------------------------------------------------------------===//
// StableLog
//===----------------------------------------------------------------------===//

TEST(StableLogTest, AddressesStableAcrossGrowth) {
  StableLog<int, 4> Log; // tiny chunks force many allocations
  std::vector<int *> Ptrs;
  for (int I = 0; I < 100; ++I)
    Ptrs.push_back(Log.push(I));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(*Ptrs[I], I) << "entry moved during growth";
  EXPECT_EQ(Log.size(), 100u);
}

TEST(StableLogTest, ClearKeepsCapacityAndResets) {
  StableLog<int, 8> Log;
  for (int I = 0; I < 20; ++I)
    Log.push(I);
  Log.clear();
  EXPECT_TRUE(Log.empty());
  int *P = Log.push(42);
  EXPECT_EQ(*P, 42);
  EXPECT_EQ(Log.size(), 1u);
}

TEST(StableLogTest, PopBackWithdrawsLastEntry) {
  StableLog<int, 8> Log;
  Log.push(1);
  Log.push(2);
  Log.popBack();
  EXPECT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0], 1);
}

TEST(StableLogTest, ForEachVisitsInsertionOrder) {
  StableLog<int, 4> Log;
  for (int I = 0; I < 10; ++I)
    Log.push(I);
  int Expect = 0;
  Log.forEach([&](int V) { EXPECT_EQ(V, Expect++); });
  EXPECT_EQ(Expect, 10);
  Log.forEachReverse([&](int V) { EXPECT_EQ(V, --Expect); });
}

//===----------------------------------------------------------------------===//
// WriteMap
//===----------------------------------------------------------------------===//

TEST(WriteMapTest, InsertLookupOverwrite) {
  WriteMap Map;
  alignas(8) Word Cells[8] = {};
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
  Map.insert(&Cells[0], 7);
  EXPECT_EQ(Map.lookup(&Cells[0]), 7u);
  Map.insert(&Cells[0], 9);
  EXPECT_EQ(Map.lookup(&Cells[0]), 9u);
  EXPECT_EQ(Map.size(), 1u);
}

TEST(WriteMapTest, ClearThenReuse) {
  // Regression test: clear() must reset slots to the empty (null-key)
  // state; a bad fill pattern once made every post-clear lookup spin.
  WriteMap Map;
  alignas(8) Word Cells[4] = {};
  Map.insert(&Cells[0], 1);
  Map.clear();
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
  Map.insert(&Cells[1], 2); // must terminate and work after clear
  EXPECT_EQ(Map.lookup(&Cells[1]), 2u);
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
}

TEST(WriteMapTest, GrowsPastInitialCapacity) {
  WriteMap Map;
  std::vector<Word> Cells(4096, 0);
  for (uint32_t I = 0; I < 4096; ++I)
    Map.insert(&Cells[I], I);
  EXPECT_EQ(Map.size(), 4096u);
  for (uint32_t I = 0; I < 4096; ++I)
    ASSERT_EQ(Map.lookup(&Cells[I]), I);
}

TEST(WriteMapTest, BloomNegativeFastPath) {
  WriteMap Map;
  alignas(8) Word A = 0;
  EXPECT_FALSE(Map.mayContain(&A));
  Map.insert(&A, 1);
  EXPECT_TRUE(Map.mayContain(&A));
}

//===----------------------------------------------------------------------===//
// TxMemory + RetiredPool (quiescence-based reclamation)
//===----------------------------------------------------------------------===//

TEST(TxMemoryTest, AbortFreesAllocations) {
  TxMemory Mem;
  void *P = Mem.txMalloc(64);
  EXPECT_NE(P, nullptr);
  Mem.onAbort(); // must free P (checked under ASan); no crash here
}

TEST(TxMemoryTest, CommitRetiresFreesAndHonorsHorizon) {
  unsigned Slot = repro::ThreadRegistry::acquireSlot();
  TxMemory Mem;
  void *P = std::malloc(32);
  Mem.txFree(P);
  // A transaction "older" than the retirement blocks reclamation.
  repro::ThreadRegistry::publishStart(Slot, 5);
  Mem.onCommit(/*CommitTs=*/10);
  EXPECT_EQ(Mem.retiredCount(), 1u);
  EXPECT_EQ(Mem.collect(), 0u) << "active tx at ts 5 blocks block@10";
  // Once the old transaction finishes and a newer one starts, the
  // horizon passes the retirement timestamp.
  repro::ThreadRegistry::publishStart(Slot, 11);
  EXPECT_EQ(Mem.collect(), 1u);
  EXPECT_EQ(Mem.retiredCount(), 0u);
  repro::ThreadRegistry::publishIdle(Slot);
  repro::ThreadRegistry::releaseSlot(Slot);
}

TEST(TxMemoryTest, AbortForgetsDeferredFrees) {
  TxMemory Mem;
  void *P = std::malloc(16);
  Mem.txFree(P);
  Mem.onAbort();
  EXPECT_EQ(Mem.retiredCount(), 0u) << "aborted tx must not free";
  std::free(P); // still ours
}

TEST(RetiredPoolTest, CollectRespectsHorizon) {
  unsigned Slot = repro::ThreadRegistry::acquireSlot();
  RetiredPool &Pool = RetiredPool::instance();
  Pool.releaseAll();
  Pool.add(std::malloc(8), /*RetireTs=*/100);
  repro::ThreadRegistry::publishStart(Slot, 50);
  EXPECT_EQ(Pool.collect(), 0u);
  EXPECT_EQ(Pool.size(), 1u);
  repro::ThreadRegistry::publishStart(Slot, 200);
  EXPECT_EQ(Pool.collect(), 1u);
  EXPECT_EQ(Pool.size(), 0u);
  repro::ThreadRegistry::publishIdle(Slot);
  repro::ThreadRegistry::releaseSlot(Slot);
}

//===----------------------------------------------------------------------===//
// Lock-word encodings
//===----------------------------------------------------------------------===//

TEST(SwissLockTest, RLockEncoding) {
  using namespace stm::swiss;
  EXPECT_FALSE(rlockIsLocked(rlockMake(0)));
  EXPECT_FALSE(rlockIsLocked(rlockMake(123456)));
  EXPECT_TRUE(rlockIsLocked(RLockLocked));
  EXPECT_EQ(rlockVersion(rlockMake(987)), 987u);
}

TEST(Tl2LockTest, VersionedLockEncoding) {
  using namespace stm::tl2;
  EXPECT_FALSE(vlockIsLocked(vlockMake(0)));
  EXPECT_FALSE(vlockIsLocked(vlockMake(42)));
  EXPECT_EQ(vlockVersion(vlockMake(42)), 42u);
  alignas(8) int Dummy;
  Word Locked = reinterpret_cast<Word>(&Dummy) | 1;
  EXPECT_TRUE(vlockIsLocked(Locked));
}

TEST(TinyLockTest, EntryPointerRoundTrip) {
  using namespace stm::tiny;
  alignas(8) StripeWrite Entry;
  Word Locked = reinterpret_cast<Word>(&Entry) | 1;
  EXPECT_TRUE(vlockIsLocked(Locked));
  EXPECT_EQ(vlockEntry(Locked), &Entry);
}

TEST(ConfigTest, CmKindNamesStable) {
  EXPECT_STREQ(cmKindName(CmKind::TwoPhase), "two-phase");
  EXPECT_STREQ(cmKindName(CmKind::Timid), "timid");
  EXPECT_STREQ(cmKindName(CmKind::Greedy), "greedy");
  EXPECT_STREQ(cmKindName(CmKind::Serializer), "serializer");
  EXPECT_STREQ(cmKindName(CmKind::Polka), "polka");
}

} // namespace
