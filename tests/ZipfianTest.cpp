//===- tests/ZipfianTest.cpp - Zipfian generator shape tests ----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Distribution-shape coverage of the serving workload's Zipfian key
// generator (workloads/server/Zipfian.h): empirical rank frequencies
// against the closed-form probabilities, hot-rank dominance, scramble
// dispersion, and determinism under repro::testSeed.
//
//===----------------------------------------------------------------------===//

#include "tests/TestHarness.h"
#include "workloads/server/Zipfian.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

using workloads::server::Zipfian;

namespace {

TEST(ZipfianTest, RankFrequenciesMatchTheory) {
  // 200k draws over 1000 ranks at theta 0.99: the hot ranks' empirical
  // frequencies must match 1/(r+1)^theta / zeta within sampling noise.
  constexpr uint64_t N = 1000;
  constexpr int Draws = 200000;
  Zipfian Z(N, 0.99, repro::testSeed());
  std::vector<uint64_t> Freq(N, 0);
  for (int I = 0; I < Draws; ++I) {
    uint64_t R = Z.nextRank();
    ASSERT_LT(R, N);
    ++Freq[R];
  }
  for (uint64_t Rank : {0ull, 1ull, 2ull, 5ull, 10ull}) {
    double Expected = Z.rankProbability(Rank) * Draws;
    // 5 sigma of a binomial, plus systematic slack for the inversion
    // formula: ranks 0 and 1 are special-cased (exact), but the
    // continuous approximation overdraws low ranks >= 2 by up to ~20%
    // (the same bias YCSB's generator exhibits).
    double Systematic = Rank < 2 ? 0.02 : 0.25;
    double Tol = 5.0 * std::sqrt(Expected) + Systematic * Expected;
    EXPECT_NEAR(static_cast<double>(Freq[Rank]), Expected, Tol)
        << "rank " << Rank;
  }
  // Zipf's defining property: rank 0 beats rank 1 by roughly 2^theta.
  EXPECT_GT(Freq[0], Freq[1]);
  EXPECT_GT(Freq[1], Freq[10]);
}

TEST(ZipfianTest, HotRanksDominate) {
  // At theta 0.99 over 10^4 keys, the hottest ~1% of ranks should draw
  // well over a third of the traffic (the skew the serving workload
  // relies on for its hot-key classes).
  constexpr uint64_t N = 10000;
  constexpr int Draws = 100000;
  Zipfian Z(N, 0.99, repro::testSeed(3));
  uint64_t Hot = 0;
  for (int I = 0; I < Draws; ++I)
    if (Z.nextRank() < N / 100)
      ++Hot;
  EXPECT_GT(Hot, static_cast<uint64_t>(Draws) / 3);
}

TEST(ZipfianTest, FlatterThetaIsLessSkewed) {
  constexpr uint64_t N = 1000;
  constexpr int Draws = 50000;
  auto HotMass = [&](double Theta) {
    Zipfian Z(N, Theta, repro::testSeed(4));
    uint64_t Hot = 0;
    for (int I = 0; I < Draws; ++I)
      if (Z.nextRank() < 10)
        ++Hot;
    return Hot;
  };
  EXPECT_GT(HotMass(0.99), HotMass(0.50));
}

TEST(ZipfianTest, ScrambleSpreadsHotKeys) {
  // next() must scatter the hot ranks across the key space instead of
  // clustering them at the low end: over 64 draws of the ~16 hottest
  // ranks, the scrambled keys should span most of [0, N).
  constexpr uint64_t N = 1 << 16;
  std::set<uint64_t> HotKeys;
  uint64_t MaxKey = 0, MinKey = ~0ull;
  for (uint64_t Rank = 0; Rank < 64; ++Rank) {
    uint64_t Key = Zipfian::scramble(Rank) % N;
    HotKeys.insert(Key);
    MaxKey = Key > MaxKey ? Key : MaxKey;
    MinKey = Key < MinKey ? Key : MinKey;
  }
  EXPECT_EQ(HotKeys.size(), 64u) << "scramble collided on adjacent ranks";
  EXPECT_GT(MaxKey - MinKey, N / 2) << "hot keys clustered";
}

TEST(ZipfianTest, DrawsStayInRange) {
  Zipfian Z(37, 0.7, repro::testSeed(5));
  for (int I = 0; I < 10000; ++I)
    ASSERT_LT(Z.next(), 37u);
}

TEST(ZipfianTest, DeterministicUnderSeed) {
  Zipfian A(5000, 0.99, 12345);
  Zipfian B(5000, 0.99, 12345);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
  // And a different seed must diverge somewhere early.
  Zipfian C(5000, 0.99, 54321);
  Zipfian D(5000, 0.99, 12345);
  bool Diverged = false;
  for (int I = 0; I < 100 && !Diverged; ++I)
    Diverged = C.next() != D.next();
  EXPECT_TRUE(Diverged);
}

} // namespace
