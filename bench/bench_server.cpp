//===- bench/bench_server.cpp - open-loop serving workload -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's figures measure closed-loop microbenchmarks: each thread
// issues its next transaction the moment the previous one finishes, so
// latency is invisible and overload cannot happen. This bench runs the
// complementary experiment the "stretching" claim implies: a sharded
// transactional key-value store under open-loop Poisson request traffic
// (workloads/server/ServerHarness.h) with a mixed op profile — point
// reads, range scans, cross-shard transfers, hot-key auction bids —
// over Zipfian keys, bounded per-worker queues with shed-on-full
// backpressure, and batched transaction admission (TxBatch).
//
// The grid is {5 fixed backends + adaptive} x stm::allClockKinds()
// (gv1, gv4, gv5, gvshard). Per cell it reports goodput, shed count and
// p50/p99/p999 end-to-end latency per op class from an HDR-style
// histogram, and writes the whole grid as JSON (default
// BENCH_server.json; --json=PATH) with the detected machine topology
// recorded in the config block.
//
// Flags (besides the common --stm-* overrides, see bench/BenchUtil.h):
//   --json=PATH     JSON output path (default BENCH_server.json)
//   --cell=STM:CLK  run a single cell, e.g. swisstm:gv1 or adaptive:gv5
//                   (the CI matrix leg runs one cell per job)
//   --processes=N   multi-process mode: the store lives in a POSIX shm
//                   segment (SharedArena), the offered load is split
//                   over N forked worker processes, and the parent
//                   audits conservation across all of them. Restricted
//                   to the fixed non-rstm backends (the runtime refuses
//                   the rest in shared mode).
//   --sweep-load=LO:HI:STEPS
//                   saturation sweep: run each selected cell at STEPS
//                   geometrically spaced offered loads in [LO, HI]
//                   ops/s and report the knee where goodput stops
//                   tracking the offered rate. Output goes to a "sweep"
//                   array in the JSON instead of the "cells" grid.
//
// The exit code gates validity, not speed: any cell with zero
// completed requests, a latency-histogram invariant violation, or a
// failed transfer-conservation audit fails the run.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bench/Topology.h"
#include "stm/core/SharedArena.h"
#include "workloads/server/ServerHarness.h"

#include <cmath>
#include <cstdarg>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace bench;
using namespace workloads::server;

namespace {

/// One grid cell: a fixed backend, or the adaptive runtime.
struct Cell {
  bool Adaptive = false;
  stm::rt::BackendKind Backend = stm::rt::BackendKind::SwissTm;
  stm::ClockKind Clock = stm::ClockKind::Gv1;

  std::string stmName() const {
    return Adaptive ? "adaptive" : stm::rt::backendName(Backend);
  }
  std::string label() const {
    return stmName() + ":" + stm::clockKindName(Clock);
  }
};

std::vector<Cell> fullGrid() {
  std::vector<Cell> Grid;
  for (stm::ClockKind Clock : stm::allClockKinds()) {
    for (stm::rt::BackendKind Backend : stm::rt::allBackendKinds())
      Grid.push_back(Cell{false, Backend, Clock});
    Grid.push_back(Cell{true, stm::rt::BackendKind::SwissTm, Clock});
  }
  return Grid;
}

ServerConfig serverConfig() {
  ServerConfig C;
  if (smokeMode()) {
    C.Workers = 2;
    C.Clients = 1;
    C.Shards = 2;
    C.KeySpace = 1 << 12;
    C.OfferedOpsPerSec = 40000.0;
    C.DurationMs = 60;
    C.QueueCapacity = 512;
  } else {
    C.Workers = 4;
    C.Clients = 2;
    C.Shards = 4;
    C.KeySpace = 1 << 14;
    C.OfferedOpsPerSec = 200000.0;
    C.DurationMs = static_cast<unsigned>(benchMillis() > 150 ? benchMillis()
                                                             : 1000);
  }
  if (C.Workers > maxThreads())
    C.Workers = maxThreads();
  return C;
}

ServerResult runCell(const Cell &C, const ServerConfig &SC) {
  stm::StmConfig Config;
  if (C.Adaptive) {
    Config = clockConfig(C.Clock);
    Config.Adaptive = true;
  } else {
    Config = clockConfig(C.Clock, rtConfig(C.Backend));
  }
  stm::Runtime R(Config);
  return runServer(R, SC);
}

/// Per-process result block in the shared segment: everything a child
/// measured, as plain copyable data (the histograms are flat bucket
/// arrays, so they merge exactly across processes).
struct ProcBlock {
  LatencyHistogram Hist[NumOpClasses];
  uint64_t Completed[NumOpClasses];
  uint64_t Offered;
  uint64_t Shed;
  repro::TxStats Stats;
  uint32_t HistViolations;
  uint32_t Ok;
};

/// Multi-process cell: the parent creates the shm-backed runtime,
/// populates the segment-resident store, forks \p Procs workers that
/// each drive 1/Procs of the offered load, then merges their result
/// blocks and audits conservation over the whole segment.
ServerResult runCellMultiProcess(const Cell &C, const ServerConfig &SC,
                                 unsigned Procs) {
  stm::StmConfig Config = clockConfig(C.Clock, rtConfig(C.Backend));
  std::snprintf(Config.SharedSegment, sizeof(Config.SharedSegment),
                "swisstm-bench-%d", static_cast<int>(getpid()));
  stm::SharedArena::unlinkSegment(Config.SharedSegment);
  stm::Runtime R(Config);

  auto *Store = new ShardedStore(SC.Shards, SC.KeySpace, SC.Auctions);
  Store->populate(R);
  auto *Blocks =
      static_cast<ProcBlock *>(stm::sharedAlloc(sizeof(ProcBlock) * Procs));
  std::memset(static_cast<void *>(Blocks), 0, sizeof(ProcBlock) * Procs);
  stm::SharedArena::instance().userRoot(0).store(
      reinterpret_cast<stm::Word>(Blocks), std::memory_order_release);

  const uint64_t BaseSeed = SC.Seed ? SC.Seed : repro::testSeed();
  repro::Stopwatch Wall;
  std::vector<pid_t> Kids;
  for (unsigned P = 0; P < Procs; ++P) {
    pid_t Pid = fork();
    if (Pid == 0) {
      ServerConfig Mine = SC;
      Mine.OfferedOpsPerSec = SC.OfferedOpsPerSec / Procs;
      Mine.Seed = BaseSeed ^ (0x9E3779B97F4A7C15ull * (P + 1));
      ServerResult Rr = runServerOn(R, Mine, *Store, /*Audit=*/false);
      auto *Mirror = reinterpret_cast<ProcBlock *>(
          stm::SharedArena::instance().userRoot(0).load(
              std::memory_order_acquire));
      ProcBlock &B = Mirror[P];
      for (unsigned Op = 0; Op < NumOpClasses; ++Op) {
        B.Hist[Op] = Rr.Hist[Op];
        B.Completed[Op] = Rr.Completed[Op];
      }
      B.Offered = Rr.Offered;
      B.Shed = Rr.Shed;
      B.Stats = Rr.Stats;
      B.HistViolations = Rr.HistogramViolations;
      B.Ok = Rr.totalCompleted() > 0 ? 1 : 0;
      std::fflush(nullptr);
      // Skip destructors: the parent owns the runtime and the segment.
      _exit(0);
    }
    Kids.push_back(Pid);
  }

  bool ChildrenOk = true;
  for (pid_t Pid : Kids) {
    int St = 0;
    if (waitpid(Pid, &St, 0) != Pid || !WIFEXITED(St) ||
        WEXITSTATUS(St) != 0)
      ChildrenOk = false;
  }

  ServerResult Out;
  Out.ElapsedSeconds = Wall.elapsedSeconds();
  for (unsigned P = 0; P < Procs; ++P) {
    const ProcBlock &B = Blocks[P];
    for (unsigned Op = 0; Op < NumOpClasses; ++Op) {
      Out.Hist[Op].merge(B.Hist[Op]);
      Out.Completed[Op] += B.Completed[Op];
    }
    Out.Offered += B.Offered;
    Out.Shed += B.Shed;
    Out.Stats += B.Stats;
    Out.HistogramViolations += B.HistViolations;
    if (B.Ok == 0)
      ChildrenOk = false;
  }
  Out.GoodputOpsPerSec =
      Out.ElapsedSeconds > 0.0
          ? static_cast<double>(Out.totalCompleted()) / Out.ElapsedSeconds
          : 0.0;
  Out.ConservationOk = Store->checkConservation(R) && ChildrenOk;
  stm::SharedArena::instance().userRoot(0).store(0,
                                                 std::memory_order_release);
  delete Store;
  return Out;
}

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

void appendCellJson(std::string &Json, const Cell &C, const ServerResult &R,
                    bool Last) {
  appendf(Json,
          "  {\n"
          "   \"stm\": \"%s\", \"clock\": \"%s\", \"adaptive\": %s,\n"
          "   \"goodput_ops_per_sec\": %.1f, \"offered\": %llu, "
          "\"completed\": %llu, \"shed\": %llu,\n"
          "   \"commits\": %llu, \"aborts\": %llu, \"batches\": %llu, "
          "\"backend_switches\": %llu,\n"
          "   \"conservation_ok\": %s, \"histogram_violations\": %u,\n"
          "   \"op_classes\": {\n",
          C.stmName().c_str(), stm::clockKindName(C.Clock),
          C.Adaptive ? "true" : "false", R.GoodputOpsPerSec,
          (unsigned long long)R.Offered, (unsigned long long)R.totalCompleted(),
          (unsigned long long)R.Shed, (unsigned long long)R.Stats.Commits,
          (unsigned long long)R.Stats.Aborts,
          (unsigned long long)R.Stats.Batches,
          (unsigned long long)R.BackendSwitches,
          R.ConservationOk ? "true" : "false", R.HistogramViolations);
  for (unsigned Op = 0; Op < NumOpClasses; ++Op) {
    const LatencyHistogram &H = R.Hist[Op];
    appendf(Json,
            "    \"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
            "\"p99_ns\": %llu, \"p999_ns\": %llu, \"max_ns\": %llu}%s\n",
            opClassName(static_cast<OpClass>(Op)),
            (unsigned long long)H.count(),
            (unsigned long long)H.valueAtQuantile(0.50),
            (unsigned long long)H.valueAtQuantile(0.99),
            (unsigned long long)H.valueAtQuantile(0.999),
            (unsigned long long)H.maxValue(),
            Op + 1 < NumOpClasses ? "," : "");
  }
  appendf(Json, "   }\n  }%s\n", Last ? "" : ",");
}

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  std::string JsonPath = "BENCH_server.json";
  std::string OnlyCell;
  unsigned Processes = 1;
  double SweepLo = 0.0, SweepHi = 0.0;
  unsigned SweepSteps = 0;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--json=", 7) == 0)
      JsonPath = Arg + 7;
    else if (std::strncmp(Arg, "--cell=", 7) == 0)
      OnlyCell = Arg + 7;
    else if (std::strncmp(Arg, "--processes=", 12) == 0) {
      Processes = static_cast<unsigned>(std::atoi(Arg + 12));
      if (Processes < 1 || Processes > 16) {
        std::fprintf(stderr, "bench_server: --processes wants 1..16\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--sweep-load=", 13) == 0) {
      if (std::sscanf(Arg + 13, "%lf:%lf:%u", &SweepLo, &SweepHi,
                      &SweepSteps) != 3 ||
          SweepLo <= 0.0 || SweepHi < SweepLo || SweepSteps < 2 ||
          SweepSteps > 64) {
        std::fprintf(stderr,
                     "bench_server: --sweep-load wants LO:HI:STEPS with "
                     "0 < LO <= HI and 2 <= STEPS <= 64\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--stm-", 6) != 0) {
      std::fprintf(stderr,
                   "bench_server: unknown argument '%s' "
                   "(--json=PATH, --cell=STM:CLOCK, --processes=N, "
                   "--sweep-load=LO:HI:STEPS, --stm-*)\n",
                   Arg);
      return 2;
    }
  }

  ServerConfig SC = serverConfig();
  bench::warnIfOversubscribed("bench_server", SC.Workers * Processes);
  std::vector<Cell> Grid = fullGrid();
  if (Processes > 1) {
    // The runtime refuses adaptive and rstm in shared mode; drop those
    // cells rather than aborting mid-grid.
    std::vector<Cell> Keep;
    for (const Cell &C : Grid)
      if (!C.Adaptive && C.Backend != stm::rt::BackendKind::Rstm)
        Keep.push_back(C);
    Grid = Keep;
  }
  if (!OnlyCell.empty()) {
    std::vector<Cell> Filtered;
    for (const Cell &C : Grid)
      if (C.label() == OnlyCell)
        Filtered.push_back(C);
    if (Filtered.empty()) {
      std::fprintf(stderr, "bench_server: unknown cell '%s'%s\n",
                   OnlyCell.c_str(),
                   Processes > 1 ? " (adaptive/rstm are unavailable with "
                                   "--processes)"
                                 : "");
      return 2;
    }
    Grid = Filtered;
  }
  auto runOne = [&](const Cell &C, const ServerConfig &Cfg) {
    return Processes > 1 ? runCellMultiProcess(C, Cfg, Processes)
                         : runCell(C, Cfg);
  };

  std::string Json;
  appendf(Json,
          "{\n \"bench\": \"bench_server\",\n"
          " \"config\": {\n"
          "  \"workers\": %u, \"clients\": %u, \"shards\": %u,\n"
          "  \"key_space\": %llu, \"auctions\": %llu, \"theta\": %.2f,\n"
          "  \"offered_ops_per_sec\": %.0f, \"queue_capacity\": %u,\n"
          "  \"batch_size\": %u, \"duration_ms\": %u,\n"
          "  \"mix_percent\": {\"point_read\": %u, \"range_scan\": %u, "
          "\"transfer\": %u, \"auction_bid\": %u},\n"
          "  \"processes\": %u,\n",
          SC.Workers, SC.Clients, SC.Shards, (unsigned long long)SC.KeySpace,
          (unsigned long long)SC.Auctions, SC.Theta, SC.OfferedOpsPerSec,
          SC.QueueCapacity, SC.BatchSize, SC.DurationMs, SC.MixPercent[0],
          SC.MixPercent[1], SC.MixPercent[2], SC.MixPercent[3], Processes);
  Json += "  \"topology\": " + bench::topologyJson() + "\n },\n";

  bool Valid = true;

  if (SweepSteps != 0) {
    // Saturation sweep: geometric load ladder per cell; the knee is the
    // first offered rate whose goodput falls short by >10%.
    Json += " \"cells\": [],\n \"sweep\": [\n";
    const double Ratio =
        std::pow(SweepHi / SweepLo, 1.0 / static_cast<double>(SweepSteps - 1));
    for (std::size_t I = 0; I < Grid.size(); ++I) {
      const Cell &C = Grid[I];
      double Knee = 0.0;
      for (unsigned S = 0; S < SweepSteps; ++S) {
        ServerConfig Step = SC;
        Step.OfferedOpsPerSec = SweepLo * std::pow(Ratio, S);
        if (std::getenv("STM_BENCH_PROGRESS") != nullptr)
          std::fprintf(stderr, "bench_server: sweep %s @ %.0f ops/s\n",
                       C.label().c_str(), Step.OfferedOpsPerSec);
        ServerResult R = runOne(C, Step);
        bool Saturated = R.GoodputOpsPerSec < 0.9 * Step.OfferedOpsPerSec;
        if (Saturated && Knee == 0.0)
          Knee = Step.OfferedOpsPerSec;
        appendf(Json,
                "  {\"stm\": \"%s\", \"clock\": \"%s\", "
                "\"offered_ops_per_sec\": %.0f, "
                "\"goodput_ops_per_sec\": %.1f, \"shed\": %llu, "
                "\"p99_read_ns\": %llu, \"p99_transfer_ns\": %llu, "
                "\"conservation_ok\": %s}%s\n",
                C.stmName().c_str(), stm::clockKindName(C.Clock),
                Step.OfferedOpsPerSec, R.GoodputOpsPerSec,
                (unsigned long long)R.Shed,
                (unsigned long long)R.Hist[0].valueAtQuantile(0.99),
                (unsigned long long)R.Hist[2].valueAtQuantile(0.99),
                R.ConservationOk ? "true" : "false",
                I + 1 == Grid.size() && S + 1 == SweepSteps ? "" : ",");
        std::printf("%-14s offered %10.0f  goodput %10.0f ops/s  "
                    "shed %8llu%s%s\n",
                    C.label().c_str(), Step.OfferedOpsPerSec,
                    R.GoodputOpsPerSec, (unsigned long long)R.Shed,
                    Saturated ? "  SATURATED" : "",
                    R.ConservationOk ? "" : "  CONSERVATION-VIOLATED");
        std::fflush(stdout);
        if (R.totalCompleted() == 0 || R.HistogramViolations != 0 ||
            !R.ConservationOk)
          Valid = false;
      }
      if (Knee > 0.0)
        std::printf("%-14s saturation knee ~ %.0f ops/s offered\n",
                    C.label().c_str(), Knee);
      else
        std::printf("%-14s no knee up to %.0f ops/s offered\n",
                    C.label().c_str(), SweepHi);
    }
    appendf(Json, " ]\n}\n");

    if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
      std::fputs(Json.c_str(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "bench_server: cannot write %s\n",
                   JsonPath.c_str());
      Valid = false;
    }
    return Valid ? 0 : 1;
  }

  Json += " \"cells\": [\n";
  for (std::size_t I = 0; I < Grid.size(); ++I) {
    const Cell &C = Grid[I];
    if (std::getenv("STM_BENCH_PROGRESS") != nullptr)
      std::fprintf(stderr, "bench_server: cell %s\n", C.label().c_str());
    ServerResult R = runOne(C, SC);

    std::printf("%-14s goodput %10.0f ops/s  shed %8llu  "
                "p99(read/scan/xfer/bid) %llu/%llu/%llu/%llu us%s%s\n",
                C.label().c_str(), R.GoodputOpsPerSec,
                (unsigned long long)R.Shed,
                (unsigned long long)(R.Hist[0].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[1].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[2].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[3].valueAtQuantile(0.99) / 1000),
                R.ConservationOk ? "" : "  CONSERVATION-VIOLATED",
                R.HistogramViolations == 0 ? "" : "  HISTOGRAM-BROKEN");
    std::fflush(stdout);

    Report::instance().add("server", "mixed", C.label(), SC.Workers,
                           "goodput_ops_per_s", R.GoodputOpsPerSec);
    Report::instance().add("server", "mixed", C.label(), SC.Workers,
                           "shed", static_cast<double>(R.Shed));
    Report::instance().add(
        "server", "mixed", C.label(), SC.Workers, "p99_read_ns",
        static_cast<double>(R.Hist[0].valueAtQuantile(0.99)));
    appendCellJson(Json, C, R, I + 1 == Grid.size());

    if (R.totalCompleted() == 0 || R.HistogramViolations != 0 ||
        !R.ConservationOk)
      Valid = false;
  }
  appendf(Json, " ]\n}\n");

  if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "bench_server: cannot write %s\n", JsonPath.c_str());
    Valid = false;
  }

  Report::instance().print(
      "server", "open-loop Poisson serving workload (point reads, range "
                "scans, transfers, auction bids) over the backend x clock "
                "grid; latency from scheduled arrival to completion");
  return Valid ? 0 : 1;
}
