//===- stm/core/SharedArena.h - shared-state placement layer ----*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every piece of process-global STM state — the commit clock's shard
// counters, the lock table, the ThreadRegistry/EpochManager slot
// arrays, and the orec irrevocability token — is *placed* through this
// layer instead of living in fixed statics or backend-private heap
// allocations. Two backings exist:
//
//   * Private (default): process-private anonymous mmap for the lock
//     table (lazily-committed zero pages, preserving the historical
//     calloc property: a 2^28-entry table costs address space, not
//     RSS), and the in-image fallback statics for the slot arrays.
//     Behaviour is unchanged from the pre-placement-layer library.
//   * Shared: a POSIX shm segment named by StmConfig::SharedSegment /
//     STM_SHM_NAME. The segment starts with a versioned header (magic,
//     layout hash over every protocol-relevant geometry knob, recorded
//     base address) so a process attaching with a mismatched
//     configuration aborts loudly instead of silently corrupting its
//     peers. The clock shards, lock table, slot arrays, per-slot crash
//     records and a transactional data heap are carved out of the
//     segment by a deterministic layout both sides recompute.
//
// Multi-process mode (shared backing) additionally changes the lock
// word encoding: descriptors stay in per-process arenas and are never
// dereferenced cross-process. A held lock word instead carries a
// handle — (write-log index << 7) | (registry slot << 1) | 1 — odd so
// it can never collide with a free SwissTM WLock (0) or an even
// version number, self-resolvable in O(1) through the owner's own
// write log, and attributable to a registry slot (slots are globally
// unique across the segment's processes because the slot mask itself
// lives in the segment).
//
// Process-death recovery: every slot record in the segment carries the
// owning pid, a heartbeat, a commit-phase word and an intent log of
// {lock-word offset, pre-lock value, held value} entries pushed before
// each lock acquisition. When a survivor conflicts with a handle whose
// slot's pid no longer exists (kill(pid, 0) == ESRCH), it takes the
// segment's recovery lock, replays the corpse's intent log in LIFO
// order (restore iff the word still holds the recorded held value),
// and retires the slot — unpinning its epoch, idling its registry
// entry, releasing the orec token — so reclamation and irrevocability
// drains cannot wedge on it. A process that dies inside write-back
// (lazy backends) or holding eagerly-written stripes (orec) is
// unrecoverable: the recovery path then poisons the whole segment and
// every surviving process aborts loudly at its next transaction begin.
// Recovery is therefore guaranteed only for the lazy backends up to
// the start of write-back; see README "Multi-process mode".
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_SHAREDARENA_H
#define STM_CORE_SHAREDARENA_H

#include "stm/Word.h"
#include "support/Platform.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace stm {

struct StmConfig;

class SharedArena {
public:
  enum class Backing : uint8_t {
    Unplaced, ///< before setup(): fallback statics, no mappings
    Private,  ///< per-process memory, no cross-process visibility
    Shared    ///< POSIX shm segment, multi-process mode
  };

  /// Per-slot commit-phase word. None is the only recoverable state: a
  /// dead slot whose phase is WriteBack (lazy backend mid write-back)
  /// or Eager (orec holding in-place-written stripes) poisons the
  /// segment.
  enum Phase : uint64_t { PhaseNone = 0, PhaseWriteBack = 1, PhaseEager = 2 };

  /// Intent-log capacity per slot; a transaction overflowing it keeps
  /// running (its own release path needs no intents) but marks the
  /// slot, and a death with the mark set poisons the segment.
  static constexpr unsigned IntentCapacity = 4096;

  struct Intent {
    uint64_t WordOffset; ///< lock word's byte offset within the segment
    Word OldValue;       ///< value to restore
    Word HeldValue;      ///< value the dead owner had installed
  };

  static SharedArena &instance();

  //===--------------------------------------------------------------===//
  // Lifecycle (driven by StmRuntime::globalInit / globalShutdown)
  //===--------------------------------------------------------------===//

  /// Creates or attaches the segment named by \p Config (or selects the
  /// private backing when no name is configured) and, in shared mode,
  /// redirects the ThreadRegistry/EpochManager storage into it. Aborts
  /// loudly on any header/layout mismatch.
  void setup(const StmConfig &Config);

  /// Unmaps everything, restores fallback storage, and (creator only)
  /// unlinks the segment name.
  void teardown();

  /// Removes a stale segment name; ENOENT is not an error. For test and
  /// bench drivers that want a deterministic creator role.
  static void unlinkSegment(const char *Name);

  Backing backing() const { return Mode; }
  bool isShared() const { return Mode == Backing::Shared; }
  /// True when this process created the segment (or in private mode,
  /// always: there is nobody else). Attachers must bind live state
  /// without resetting it.
  bool isCreator() const { return Creator; }

  /// Process-global "multi-process lock words are live" flag, readable
  /// without the instance (TxBase/TxMemory hot paths). Relaxed: it only
  /// changes inside globalInit/globalShutdown, never mid-transaction.
  static bool sharedActive() {
    return SharedFlag.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------===//
  // Region placement
  //===--------------------------------------------------------------===//

  /// Lazily-committed zero-filled private mapping (the lock table's
  /// private backing; replaces calloc with identical semantics).
  static void *mapPrivate(std::size_t Bytes);
  static void unmapPrivate(void *P, std::size_t Bytes);

  /// Shared mode: the lock-table region carved from the segment.
  /// \p Bytes must match the layout the header hash was computed over.
  void *tableRegion(uint64_t Bytes);

  /// Shared mode: the clock-shard region (GlobalClock::MaxShards cache
  /// lines).
  void *clockRegion();

  /// Shared mode: redirected ThreadRegistry/EpochManager storage plus
  /// the orec irrevocability token word. The token accessor works in
  /// every mode (falls back to a process-local word) so the orec
  /// backend has a single slot+1 encoding everywhere.
  std::atomic<Word> &orecToken();

  //===--------------------------------------------------------------===//
  // Shared data heap
  //===--------------------------------------------------------------===//

  /// Cache-line-granular allocator over the segment's heap region:
  /// size-class free lists with ABA-tagged heads under a bump floor.
  /// Crash mid-operation leaks at worst — the lists are never left
  /// structurally corrupt. Returns null only in private mode.
  void *heapAlloc(std::size_t Bytes);
  void heapFree(void *P);
  /// True iff \p P lies inside the shared segment (so frees of
  /// transactional memory can dispatch between heapFree and std::free).
  bool contains(const void *P) const {
    auto A = reinterpret_cast<uintptr_t>(P);
    return A - reinterpret_cast<uintptr_t>(Base) < MappedBytes;
  }

  /// Small directory of segment-resident root words (index < 16) for
  /// applications to publish shared data structures (the bench store,
  /// the kill-test account array) to attached peers.
  std::atomic<Word> &userRoot(unsigned I);

  //===--------------------------------------------------------------===//
  // Lock-word handles (shared mode encoding)
  //===--------------------------------------------------------------===//

  static constexpr unsigned HandleSlotShift = 1;
  static constexpr unsigned HandleIndexShift = 7;
  static constexpr Word HandleSlotMask = repro::MaxThreads - 1;

  static Word makeHandle(uint64_t LogIndex, unsigned Slot) {
    return (Word(LogIndex) << HandleIndexShift) |
           (Word(Slot) << HandleSlotShift) | 1;
  }
  static unsigned handleSlot(Word H) {
    return unsigned((H >> HandleSlotShift) & HandleSlotMask);
  }
  static uint64_t handleIndex(Word H) { return H >> HandleIndexShift; }

  //===--------------------------------------------------------------===//
  // Per-slot crash records (shared mode; no-ops otherwise)
  //===--------------------------------------------------------------===//

  /// Binds \p Slot to this process in the segment's slot records.
  /// Called when a thread acquires a registry slot in shared mode.
  void bindSlot(unsigned Slot);
  /// Clears the binding on a clean slot release.
  void unbindSlot(unsigned Slot);
  void publishHeartbeat(unsigned Slot);
  void setPhase(unsigned Slot, uint64_t P);
  void pushIntent(unsigned Slot, const void *LockWordAddr, Word OldValue,
                  Word HeldValue);
  /// Drops the newest intent (a failed CAS never installed HeldValue).
  void popIntent(unsigned Slot);
  void clearIntents(unsigned Slot);

  //===--------------------------------------------------------------===//
  // Death detection and recovery
  //===--------------------------------------------------------------===//

  bool poisoned() const;
  /// Prints the poison diagnostic and aborts. Called from transaction
  /// begin when the segment is poisoned.
  [[noreturn]] void poisonFatal();

  /// Conflict-path trigger: \p H is a remote handle just observed in a
  /// lock word. Throttled pid-liveness check; recovers the owning
  /// process if it is gone. Returns true when a recovery ran (the
  /// caller should re-read the lock word).
  bool maybeRecoverRemote(Word H);

  /// Scans every bound slot for dead owners and recovers them. Called
  /// from long spin loops and periodically from transaction begin.
  void sweepDeadProcesses();

  /// Test hook: the number of slot recoveries this process performed.
  uint64_t recoveriesPerformed() const;

private:
  SharedArena() = default;

  void setupShared(const StmConfig &Config);
  void createSegment(const StmConfig &Config, int Fd, uint64_t Hash);
  void attachSegment(const StmConfig &Config, int Fd, uint64_t Hash);
  void bindRegions(bool Creator);
  void recoverProcess(uint64_t DeadPid);
  void recoverSlot(unsigned Slot);
  void setPoison(const char *Why, uint64_t Pid, unsigned Slot);

  Backing Mode = Backing::Unplaced;
  bool Creator = false;
  void *Base = nullptr;     ///< segment base (shared mode)
  uint64_t MappedBytes = 0; ///< segment length (0 in private mode)
  uint64_t TableBytes = 0;
  void *SlotRecs = nullptr;
  void *IntentsBase = nullptr;
  void *ClockMem = nullptr;
  void *TableMem = nullptr;
  char *HeapBase = nullptr;
  uint64_t HeapBytes = 0;
  std::atomic<Word> *OrecTokenP = nullptr;
  char SegName[72] = {}; ///< "/name" as passed to shm_open
  static std::atomic<bool> SharedFlag;
};

/// Allocates transactional memory from the shared segment's heap when
/// multi-process mode is active, else from the process heap. The
/// matching free is sharedDispatchFree.
void *sharedAlloc(std::size_t Bytes);

/// Routes \p P to the shared heap or std::free by address range.
void sharedDispatchFree(void *P);

} // namespace stm

#endif // STM_CORE_SHAREDARENA_H
