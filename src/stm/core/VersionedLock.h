//===- stm/core/VersionedLock.h - version-in-word lock encoding -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every backend encodes a stripe's version number and its lock state in
// one machine word: the low bit(s) tag the lock state, the remaining
// bits carry the version (the commit timestamp of the last writer) or a
// descriptor pointer. The tag width is the only difference between the
// backends' encodings:
//
//   SwissTM r-lock   1 tag bit   version<<1 free, 1 locked
//   TL2 / TinySTM    1 tag bit   version<<1 free, descriptor|1 locked
//   RSTM orec        2 tag bits  version<<2 free, descriptor|1 owned,
//                                descriptor|3 owner committing
//
// VersionedLockOps centralizes the shifts and masks so a backend states
// its tag width once instead of hand-rolling three helpers.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_VERSIONEDLOCK_H
#define STM_CORE_VERSIONEDLOCK_H

#include "stm/Word.h"

#include <cstdint>

namespace stm::core {

/// Encoding helpers for a versioned lock word with \p TagBits low tag
/// bits. Bit 0 is always the "locked/owned" bit; what the other tag bits
/// mean (RSTM's "committing") is backend-specific.
template <unsigned TagBits> struct VersionedLockOps {
  static_assert(TagBits >= 1 && TagBits < 8, "unreasonable tag width");

  static constexpr Word TagMask = (Word(1) << TagBits) - 1;

  /// True when the word carries a descriptor pointer, not a version.
  static bool isLocked(Word V) { return (V & 1) != 0; }

  /// The version of a free lock word.
  static uint64_t version(Word V) { return V >> TagBits; }

  /// A free lock word carrying \p Version.
  static Word make(uint64_t Version) {
    return static_cast<Word>(Version << TagBits);
  }

  /// The descriptor pointer of a locked word, tag bits stripped.
  template <typename T> static T *pointer(Word V) {
    return reinterpret_cast<T *>(V & ~TagMask);
  }
};

} // namespace stm::core

#endif // STM_CORE_VERSIONEDLOCK_H
