//===- tests/ConfigMatrixTest.cpp - config boundary sweeps -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper sweeps lock-table geometry (Figure 13); these tests pin the
// supported envelope down at its corners: the smallest and largest
// lock table (LockTableSizeLog2 4 and 28) crossed with the finest and
// coarsest granularity (GranularityLog2 2 and 12), on every backend.
// The 2^4-entry table drowns in false conflicts and the 2^12-byte
// stripes serialize almost everything — correctness must hold anyway.
// The 2^28-entry corner doubles as a regression test for the lock
// table's lazily-committed storage: with padded 64-byte entries that
// is 16 GiB of address space, which must not become 16 GiB of memory.
//
// Out-of-range geometry must die in *every* build mode — a table sized
// from a corrupted config coming up half-valid in a Release build is
// how silent data corruption starts — so LockTable::init enforces its
// bounds itself and the death tests below run the Release binary too.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/core/LockTable.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

using namespace stm;
using repro_test::runThreads;

namespace {

// Sanitizers pay real (shadow) memory for the table's lazily-committed
// address space, so the large corner shrinks under them: the product
// still sweeps the same code paths, just with a 2^24-entry ceiling.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STM_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define STM_TEST_UNDER_SANITIZER 1
#endif
#endif

inline unsigned maxSweepSizeLog2() {
#ifdef STM_TEST_UNDER_SANITIZER
  return 24;
#else
  return core::LockTable<int>::MaxSizeLog2;
#endif
}

/// Balanced-transfer workload: two threads move value between cells of
/// a small array inside transactions while a third scans for a torn
/// sum. Cheap enough to run at every corner of the matrix.
template <typename STM> void runCornerWorkload() {
  constexpr unsigned Cells = 16;
  constexpr uint64_t Total = 1600;
  static std::vector<Word> Data;
  Data.assign(Cells, 0);
  Data[0] = Total;
  std::atomic<bool> Violation{false};

  runThreads<STM>(3, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 7 + 1));
    for (int I = 0; I < 400; ++I) {
      if (Id < 2) {
        unsigned From = Rng.nextBounded(Cells), To = Rng.nextBounded(Cells);
        atomically(Tx, [&, From, To](auto &T) {
          Word B = T.load(&Data[From]);
          if (B == 0)
            return;
          T.store(&Data[From], B - 1);
          T.store(&Data[To], T.load(&Data[To]) + 1);
        });
      } else {
        atomically(Tx, [&](auto &T) {
          uint64_t Sum = 0;
          for (unsigned C = 0; C < Cells; ++C)
            Sum += T.load(&Data[C]);
          if (Sum != Total)
            Violation.store(true);
        });
      }
    }
  });

  EXPECT_FALSE(Violation.load()) << STM::name() << ": torn sum";
  uint64_t Sum = 0;
  for (Word W : Data)
    Sum += W;
  EXPECT_EQ(Sum, Total) << STM::name() << ": lost transfer";
}

/// Parameterized over the runtime backends; each corner re-inits the
/// runtime itself, so the no-init fixture base applies.
class ConfigMatrixTest : public repro_test::RuntimeSuiteNoInit {};

TEST_P(ConfigMatrixTest, BoundaryGeometryCorners) {
  using Table = core::LockTable<int>;
  for (unsigned SizeLog2 : {Table::MinSizeLog2, maxSweepSizeLog2()}) {
    for (unsigned GranLog2 :
         {Table::MinGranularityLog2, Table::MaxGranularityLog2}) {
      SCOPED_TRACE(::testing::Message() << "SizeLog2=" << SizeLog2
                                        << " GranLog2=" << GranLog2);
      StmConfig Config;
      Config.LockTableSizeLog2 = SizeLog2;
      Config.GranularityLog2 = GranLog2;
      repro_test::Rt::globalInit(applyMode(Config));
      runCornerWorkload<repro_test::Rt>();
      repro_test::Rt::globalShutdown();
    }
  }
}

STM_INSTANTIATE_RUNTIME_SUITE(ConfigMatrixTest);

//===----------------------------------------------------------------------===//
// Death tests: out-of-range geometry must abort in every build mode.
//===----------------------------------------------------------------------===//

class ConfigMatrixDeathTest : public repro_test::RuntimeSuiteNoInit {};

TEST_P(ConfigMatrixDeathTest, RejectsOutOfRangeGeometry) {
  StmConfig TooSmall;
  TooSmall.LockTableSizeLog2 = 3;
  EXPECT_DEATH(repro_test::Rt::globalInit(applyMode(TooSmall)),
               "out of range");

  StmConfig TooBig;
  TooBig.LockTableSizeLog2 = 29;
  EXPECT_DEATH(repro_test::Rt::globalInit(applyMode(TooBig)),
               "out of range");

  StmConfig TooFine;
  TooFine.GranularityLog2 = 1;
  EXPECT_DEATH(repro_test::Rt::globalInit(applyMode(TooFine)),
               "out of range");

  StmConfig TooCoarse;
  TooCoarse.GranularityLog2 = 13;
  EXPECT_DEATH(repro_test::Rt::globalInit(applyMode(TooCoarse)),
               "out of range");
}

STM_INSTANTIATE_RUNTIME_SUITE(ConfigMatrixDeathTest);

//===----------------------------------------------------------------------===//
// Env parsing: unknown values must die with a diagnostic, not fall
// back to a default (an env typo silently measuring the wrong backend
// would invalidate a whole run). setenv happens inside EXPECT_DEATH's
// forked child, so the parent environment stays clean.
//===----------------------------------------------------------------------===//

TEST(ConfigEnvDeathTest, RejectsUnknownBackend) {
  EXPECT_DEATH(
      {
        setenv("STM_BACKEND", "swisstm2", 1);
        stm::configFromEnv();
      },
      "invalid STM_BACKEND value 'swisstm2'");
  EXPECT_DEATH(
      {
        setenv("STM_BACKEND", "", 1);
        stm::configFromEnv();
      },
      "invalid STM_BACKEND");
}

TEST(ConfigEnvDeathTest, RejectsUnknownClock) {
  EXPECT_DEATH(
      {
        setenv("STM_CLOCK", "gv2", 1);
        stm::configFromEnv();
      },
      "invalid STM_CLOCK value 'gv2' \\(expected gv1\\|gv4\\|gv5\\|gvshard\\)");
  EXPECT_DEATH(
      {
        setenv("STM_CLOCK", "GV4", 1); // case-sensitive, like STM_BACKEND
        stm::configFromEnv();
      },
      "invalid STM_CLOCK value 'GV4'");
}

TEST(ConfigEnvTest, ParsesEveryClockKind) {
  // Mutates the live environment, so restore whatever the CI clock leg
  // exported (repro_test::envClockKind() caches its first read and is
  // unaffected either way).
  const char *Old = getenv("STM_CLOCK");
  const std::string Saved = Old == nullptr ? "" : Old;
  for (stm::ClockKind Kind : stm::allClockKinds()) {
    setenv("STM_CLOCK", stm::clockKindName(Kind), 1);
    EXPECT_EQ(stm::configFromEnv().Clock, Kind);
  }
  if (Old == nullptr) {
    unsetenv("STM_CLOCK");
    EXPECT_EQ(stm::configFromEnv().Clock, stm::ClockKind::Gv1);
  } else {
    setenv("STM_CLOCK", Saved.c_str(), 1);
  }
}

TEST(ConfigEnvDeathTest, RejectsNonBooleanAdaptive) {
  EXPECT_DEATH(
      {
        setenv("STM_ADAPTIVE", "yes", 1);
        stm::configFromEnv();
      },
      "invalid STM_ADAPTIVE value 'yes'");
}

TEST(ConfigEnvDeathTest, RejectsNonNumericGeometry) {
  EXPECT_DEATH(
      {
        setenv("STM_LOCK_TABLE_LOG2", "big", 1);
        stm::configFromEnv();
      },
      "invalid STM_LOCK_TABLE_LOG2 value 'big'");
  EXPECT_DEATH(
      {
        setenv("STM_GRANULARITY_LOG2", "-4", 1);
        stm::configFromEnv();
      },
      "invalid STM_GRANULARITY_LOG2 value '-4'");
  // Overflow must die too, not alias into the valid range (2^32+16
  // wraps to 16 under naive decimal accumulation).
  EXPECT_DEATH(
      {
        setenv("STM_LOCK_TABLE_LOG2", "4294967312", 1);
        stm::configFromEnv();
      },
      "invalid STM_LOCK_TABLE_LOG2 value '4294967312'");
}

TEST(ConfigEnvDeathTest, OutOfRangeEnvGeometryDiesAtInit) {
  // Parsing accepts any decimal; the lock table owns the range check
  // and must still catch env-sourced geometry at init time.
  EXPECT_DEATH(
      {
        setenv("STM_LOCK_TABLE_LOG2", "63", 1);
        stm::StmRuntime::globalInit(stm::configFromEnv());
      },
      "out of range");
}

TEST(ConfigEnvTest, ParsesValidValues) {
  // In-process (no fork): clears the touched variables afterwards. The
  // parameterized suites are unaffected — runtimeModes() memoizes the
  // env-derived mode list before any test body runs.
  auto WithEnv = [](const char *Backend, const char *Adaptive,
                    const char *Table, const char *Gran) {
    setenv("STM_BACKEND", Backend, 1);
    setenv("STM_ADAPTIVE", Adaptive, 1);
    setenv("STM_LOCK_TABLE_LOG2", Table, 1);
    setenv("STM_GRANULARITY_LOG2", Gran, 1);
    StmConfig Config = stm::configFromEnv();
    unsetenv("STM_BACKEND");
    unsetenv("STM_ADAPTIVE");
    unsetenv("STM_LOCK_TABLE_LOG2");
    unsetenv("STM_GRANULARITY_LOG2");
    return Config;
  };
  StmConfig Config = WithEnv("tl2", "1", "18", "6");
  EXPECT_EQ(Config.Backend, stm::rt::BackendKind::Tl2);
  EXPECT_TRUE(Config.Adaptive);
  EXPECT_EQ(Config.LockTableSizeLog2, 18u);
  EXPECT_EQ(Config.GranularityLog2, 6u);

  Config = WithEnv("rstm", "0", "16", "4");
  EXPECT_EQ(Config.Backend, stm::rt::BackendKind::Rstm);
  EXPECT_FALSE(Config.Adaptive);

  Config = WithEnv("orec", "0", "16", "4");
  EXPECT_EQ(Config.Backend, stm::rt::BackendKind::Orec);
}

TEST(ConfigEnvTest, ParsesOrecIrrevocabilityKnobs) {
  setenv("STM_BACKEND", "orec", 1);
  setenv("STM_OREC_IRREVOCABLE_ABORTS", "3", 1);
  setenv("STM_OREC_IRREVOCABLE_ALLOCS", "9", 1);
  StmConfig Config = stm::configFromEnv();
  unsetenv("STM_BACKEND");
  unsetenv("STM_OREC_IRREVOCABLE_ABORTS");
  unsetenv("STM_OREC_IRREVOCABLE_ALLOCS");
  EXPECT_EQ(Config.Backend, stm::rt::BackendKind::Orec);
  EXPECT_EQ(Config.OrecIrrevocableAborts, 3u);
  EXPECT_EQ(Config.OrecIrrevocableAllocs, 9u);
}

TEST(ConfigEnvTest, ParsesScalingKnobs) {
  // The CI clock leg may have exported STM_CLOCK; save and restore it
  // like ParsesEveryClockKind does.
  const char *OldClock = getenv("STM_CLOCK");
  const std::string SavedClock = OldClock == nullptr ? "" : OldClock;
  setenv("STM_CLOCK", "gvshard", 1);
  setenv("STM_CLOCK_SHARDS", "4", 1);
  setenv("STM_LOCK_SHARDS", "8", 1);
  setenv("STM_SINGLE_FENCE", "1", 1);
  StmConfig Config = stm::configFromEnv();
  EXPECT_EQ(Config.Clock, stm::ClockKind::GvShard);
  EXPECT_EQ(Config.ClockShards, 4u);
  EXPECT_EQ(Config.LockShards, 8u);
  EXPECT_TRUE(Config.SingleFence);

  // 0 stays accepted as "derive from topology".
  setenv("STM_CLOCK_SHARDS", "0", 1);
  setenv("STM_LOCK_SHARDS", "0", 1);
  setenv("STM_SINGLE_FENCE", "0", 1);
  Config = stm::configFromEnv();
  EXPECT_EQ(Config.ClockShards, 0u);
  EXPECT_EQ(Config.LockShards, 0u);
  EXPECT_FALSE(Config.SingleFence);

  unsetenv("STM_CLOCK_SHARDS");
  unsetenv("STM_LOCK_SHARDS");
  unsetenv("STM_SINGLE_FENCE");
  if (OldClock == nullptr)
    unsetenv("STM_CLOCK");
  else
    setenv("STM_CLOCK", SavedClock.c_str(), 1);

  // The auto resolution itself: non-gvshard clocks are single-counter
  // by construction; gvshard derives a power of two from the topology.
  StmConfig Gv1Config;
  EXPECT_EQ(stm::resolvedClockShards(Gv1Config), 1u);
  StmConfig ShardConfig;
  ShardConfig.Clock = stm::ClockKind::GvShard;
  unsigned Auto = stm::resolvedClockShards(ShardConfig);
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, stm::GlobalClock::MaxShards);
  EXPECT_EQ(Auto & (Auto - 1), 0u);
}

TEST(ConfigEnvDeathTest, RejectsBadScalingKnobs) {
  // Non-power-of-two and over-limit shard counts must die at parse
  // time, not surface later as a half-initialized clock or table.
  EXPECT_DEATH(
      {
        setenv("STM_CLOCK_SHARDS", "3", 1);
        stm::configFromEnv();
      },
      "invalid STM_CLOCK_SHARDS value '3'");
  EXPECT_DEATH(
      {
        setenv("STM_CLOCK_SHARDS", "32", 1); // > GlobalClock::MaxShards
        stm::configFromEnv();
      },
      "invalid STM_CLOCK_SHARDS value '32'");
  EXPECT_DEATH(
      {
        setenv("STM_LOCK_SHARDS", "6", 1);
        stm::configFromEnv();
      },
      "invalid STM_LOCK_SHARDS value '6'");
  EXPECT_DEATH(
      {
        setenv("STM_LOCK_SHARDS", "512", 1); // > LockTable MaxShards
        stm::configFromEnv();
      },
      "invalid STM_LOCK_SHARDS value '512'");
  EXPECT_DEATH(
      {
        setenv("STM_SINGLE_FENCE", "yes", 1);
        stm::configFromEnv();
      },
      "invalid STM_SINGLE_FENCE value 'yes'");
}

TEST(LockTableDeathTest, InitEnforcesBoundsDirectly) {
  core::LockTable<int> Table;
  EXPECT_DEATH(Table.init(0, 4), "out of range");
  EXPECT_DEATH(Table.init(64, 4), "out of range");
  EXPECT_DEATH(Table.init(20, 0), "out of range");
  EXPECT_DEATH(Table.init(20, 32), "out of range");
}

TEST(LockTableDeathTest, InitEnforcesShardBounds) {
  core::LockTable<int> Table;
  EXPECT_DEATH(Table.init(20, 4, 0), "shard count");
  EXPECT_DEATH(Table.init(20, 4, 3), "shard count");
  EXPECT_DEATH(Table.init(20, 4, 512), "shard count");
  // Power of two and under the global cap, but more shards than the
  // table has entries.
  EXPECT_DEATH(Table.init(4, 4, 32), "shard count");
}

/// The interleave must be a bijection (no two stripes share an entry
/// that wouldn't have shared one anyway) and must place stripe k in
/// contiguous region k mod shards.
TEST(LockTableTest, ShardInterleaveIsBijectiveRoundRobin) {
  core::LockTable<int> Table;
  constexpr unsigned SizeLog2 = 8;
  constexpr unsigned Shards = 4;
  Table.init(SizeLog2, /*GranLog2=*/2, Shards);
  ASSERT_EQ(Table.shards(), Shards);
  const uint64_t Size = Table.size();
  const uint64_t Region = Size / Shards;
  std::vector<bool> Hit(Size, false);
  for (uint64_t Stripe = 0; Stripe < Size; ++Stripe) {
    uint64_t Idx = Table.indexFor(reinterpret_cast<void *>(Stripe << 2));
    ASSERT_LT(Idx, Size);
    EXPECT_FALSE(Hit[Idx]) << "stripe " << Stripe << " collides at " << Idx;
    Hit[Idx] = true;
    EXPECT_EQ(Idx / Region, Stripe % Shards)
        << "stripe " << Stripe << " left its round-robin region";
  }
  Table.destroy();

  // One shard is the identity mapping — byte-compatible with the
  // pre-sharding table.
  Table.init(SizeLog2, /*GranLog2=*/2, 1);
  for (uint64_t Stripe = 0; Stripe < Size; ++Stripe)
    EXPECT_EQ(Table.indexFor(reinterpret_cast<void *>(Stripe << 2)), Stripe);
  Table.destroy();
}

/// The padded entries are the false-sharing fix: adjacent stripes must
/// land on different cache lines.
TEST(LockTableTest, AdjacentStripesDoNotShareCacheLines) {
  core::LockTable<int> Table;
  Table.init(/*SizeLog2=*/10, /*GranLog2=*/4);
  alignas(64) static unsigned char Arena[1024];
  int *E0 = &Table.entryFor(Arena);
  int *E1 = &Table.entryFor(Arena + 16);
  ASSERT_NE(E0, E1);
  EXPECT_GE(std::abs(reinterpret_cast<intptr_t>(E1) -
                     reinterpret_cast<intptr_t>(E0)),
            intptr_t(repro::CacheLineSize));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(E0) % repro::CacheLineSize, 0u);
  Table.destroy();
}

} // namespace
