//===- bench/bench_server.cpp - open-loop serving workload -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's figures measure closed-loop microbenchmarks: each thread
// issues its next transaction the moment the previous one finishes, so
// latency is invisible and overload cannot happen. This bench runs the
// complementary experiment the "stretching" claim implies: a sharded
// transactional key-value store under open-loop Poisson request traffic
// (workloads/server/ServerHarness.h) with a mixed op profile — point
// reads, range scans, cross-shard transfers, hot-key auction bids —
// over Zipfian keys, bounded per-worker queues with shed-on-full
// backpressure, and batched transaction admission (TxBatch).
//
// The grid is {5 fixed backends + adaptive} x stm::allClockKinds()
// (gv1, gv4, gv5, gvshard). Per cell it reports goodput, shed count and
// p50/p99/p999 end-to-end latency per op class from an HDR-style
// histogram, and writes the whole grid as JSON (default
// BENCH_server.json; --json=PATH) with the detected machine topology
// recorded in the config block.
//
// Flags (besides the common --stm-* overrides, see bench/BenchUtil.h):
//   --json=PATH     JSON output path (default BENCH_server.json)
//   --cell=STM:CLK  run a single cell, e.g. swisstm:gv1 or adaptive:gv5
//                   (the CI matrix leg runs one cell per job)
//
// The exit code gates validity, not speed: any cell with zero
// completed requests, a latency-histogram invariant violation, or a
// failed transfer-conservation audit fails the run.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bench/Topology.h"
#include "workloads/server/ServerHarness.h"

#include <cstdarg>
#include <string>
#include <vector>

using namespace bench;
using namespace workloads::server;

namespace {

/// One grid cell: a fixed backend, or the adaptive runtime.
struct Cell {
  bool Adaptive = false;
  stm::rt::BackendKind Backend = stm::rt::BackendKind::SwissTm;
  stm::ClockKind Clock = stm::ClockKind::Gv1;

  std::string stmName() const {
    return Adaptive ? "adaptive" : stm::rt::backendName(Backend);
  }
  std::string label() const {
    return stmName() + ":" + stm::clockKindName(Clock);
  }
};

std::vector<Cell> fullGrid() {
  std::vector<Cell> Grid;
  for (stm::ClockKind Clock : stm::allClockKinds()) {
    for (stm::rt::BackendKind Backend : stm::rt::allBackendKinds())
      Grid.push_back(Cell{false, Backend, Clock});
    Grid.push_back(Cell{true, stm::rt::BackendKind::SwissTm, Clock});
  }
  return Grid;
}

ServerConfig serverConfig() {
  ServerConfig C;
  if (smokeMode()) {
    C.Workers = 2;
    C.Clients = 1;
    C.Shards = 2;
    C.KeySpace = 1 << 12;
    C.OfferedOpsPerSec = 40000.0;
    C.DurationMs = 60;
    C.QueueCapacity = 512;
  } else {
    C.Workers = 4;
    C.Clients = 2;
    C.Shards = 4;
    C.KeySpace = 1 << 14;
    C.OfferedOpsPerSec = 200000.0;
    C.DurationMs = static_cast<unsigned>(benchMillis() > 150 ? benchMillis()
                                                             : 1000);
  }
  if (C.Workers > maxThreads())
    C.Workers = maxThreads();
  return C;
}

ServerResult runCell(const Cell &C, const ServerConfig &SC) {
  stm::StmConfig Config;
  if (C.Adaptive) {
    Config = clockConfig(C.Clock);
    Config.Adaptive = true;
  } else {
    Config = clockConfig(C.Clock, rtConfig(C.Backend));
  }
  stm::Runtime R(Config);
  return runServer(R, SC);
}

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

void appendCellJson(std::string &Json, const Cell &C, const ServerResult &R,
                    bool Last) {
  appendf(Json,
          "  {\n"
          "   \"stm\": \"%s\", \"clock\": \"%s\", \"adaptive\": %s,\n"
          "   \"goodput_ops_per_sec\": %.1f, \"offered\": %llu, "
          "\"completed\": %llu, \"shed\": %llu,\n"
          "   \"commits\": %llu, \"aborts\": %llu, \"batches\": %llu, "
          "\"backend_switches\": %llu,\n"
          "   \"conservation_ok\": %s, \"histogram_violations\": %u,\n"
          "   \"op_classes\": {\n",
          C.stmName().c_str(), stm::clockKindName(C.Clock),
          C.Adaptive ? "true" : "false", R.GoodputOpsPerSec,
          (unsigned long long)R.Offered, (unsigned long long)R.totalCompleted(),
          (unsigned long long)R.Shed, (unsigned long long)R.Stats.Commits,
          (unsigned long long)R.Stats.Aborts,
          (unsigned long long)R.Stats.Batches,
          (unsigned long long)R.BackendSwitches,
          R.ConservationOk ? "true" : "false", R.HistogramViolations);
  for (unsigned Op = 0; Op < NumOpClasses; ++Op) {
    const LatencyHistogram &H = R.Hist[Op];
    appendf(Json,
            "    \"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
            "\"p99_ns\": %llu, \"p999_ns\": %llu, \"max_ns\": %llu}%s\n",
            opClassName(static_cast<OpClass>(Op)),
            (unsigned long long)H.count(),
            (unsigned long long)H.valueAtQuantile(0.50),
            (unsigned long long)H.valueAtQuantile(0.99),
            (unsigned long long)H.valueAtQuantile(0.999),
            (unsigned long long)H.maxValue(),
            Op + 1 < NumOpClasses ? "," : "");
  }
  appendf(Json, "   }\n  }%s\n", Last ? "" : ",");
}

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  std::string JsonPath = "BENCH_server.json";
  std::string OnlyCell;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--json=", 7) == 0)
      JsonPath = Arg + 7;
    else if (std::strncmp(Arg, "--cell=", 7) == 0)
      OnlyCell = Arg + 7;
    else if (std::strncmp(Arg, "--stm-", 6) != 0) {
      std::fprintf(stderr,
                   "bench_server: unknown argument '%s' "
                   "(--json=PATH, --cell=STM:CLOCK, --stm-*)\n",
                   Arg);
      return 2;
    }
  }

  ServerConfig SC = serverConfig();
  bench::warnIfOversubscribed("bench_server", SC.Workers);
  std::vector<Cell> Grid = fullGrid();
  if (!OnlyCell.empty()) {
    std::vector<Cell> Filtered;
    for (const Cell &C : Grid)
      if (C.label() == OnlyCell)
        Filtered.push_back(C);
    if (Filtered.empty()) {
      std::fprintf(stderr, "bench_server: unknown cell '%s'\n",
                   OnlyCell.c_str());
      return 2;
    }
    Grid = Filtered;
  }

  std::string Json;
  appendf(Json,
          "{\n \"bench\": \"bench_server\",\n"
          " \"config\": {\n"
          "  \"workers\": %u, \"clients\": %u, \"shards\": %u,\n"
          "  \"key_space\": %llu, \"auctions\": %llu, \"theta\": %.2f,\n"
          "  \"offered_ops_per_sec\": %.0f, \"queue_capacity\": %u,\n"
          "  \"batch_size\": %u, \"duration_ms\": %u,\n"
          "  \"mix_percent\": {\"point_read\": %u, \"range_scan\": %u, "
          "\"transfer\": %u, \"auction_bid\": %u},\n",
          SC.Workers, SC.Clients, SC.Shards, (unsigned long long)SC.KeySpace,
          (unsigned long long)SC.Auctions, SC.Theta, SC.OfferedOpsPerSec,
          SC.QueueCapacity, SC.BatchSize, SC.DurationMs, SC.MixPercent[0],
          SC.MixPercent[1], SC.MixPercent[2], SC.MixPercent[3]);
  Json += "  \"topology\": " + bench::topologyJson() + "\n },\n \"cells\": [\n";

  bool Valid = true;
  for (std::size_t I = 0; I < Grid.size(); ++I) {
    const Cell &C = Grid[I];
    if (std::getenv("STM_BENCH_PROGRESS") != nullptr)
      std::fprintf(stderr, "bench_server: cell %s\n", C.label().c_str());
    ServerResult R = runCell(C, SC);

    std::printf("%-14s goodput %10.0f ops/s  shed %8llu  "
                "p99(read/scan/xfer/bid) %llu/%llu/%llu/%llu us%s%s\n",
                C.label().c_str(), R.GoodputOpsPerSec,
                (unsigned long long)R.Shed,
                (unsigned long long)(R.Hist[0].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[1].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[2].valueAtQuantile(0.99) / 1000),
                (unsigned long long)(R.Hist[3].valueAtQuantile(0.99) / 1000),
                R.ConservationOk ? "" : "  CONSERVATION-VIOLATED",
                R.HistogramViolations == 0 ? "" : "  HISTOGRAM-BROKEN");
    std::fflush(stdout);

    Report::instance().add("server", "mixed", C.label(), SC.Workers,
                           "goodput_ops_per_s", R.GoodputOpsPerSec);
    Report::instance().add("server", "mixed", C.label(), SC.Workers,
                           "shed", static_cast<double>(R.Shed));
    Report::instance().add(
        "server", "mixed", C.label(), SC.Workers, "p99_read_ns",
        static_cast<double>(R.Hist[0].valueAtQuantile(0.99)));
    appendCellJson(Json, C, R, I + 1 == Grid.size());

    if (R.totalCompleted() == 0 || R.HistogramViolations != 0 ||
        !R.ConservationOk)
      Valid = false;
  }
  appendf(Json, " ]\n}\n");

  if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "bench_server: cannot write %s\n", JsonPath.c_str());
    Valid = false;
  }

  Report::instance().print(
      "server", "open-loop Poisson serving workload (point reads, range "
                "scans, transfers, auction bids) over the backend x clock "
                "grid; latency from scheduled arrival to completion");
  return Valid ? 0 : 1;
}
