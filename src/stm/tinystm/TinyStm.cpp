//===- stm/tinystm/TinyStm.cpp - TinySTM baseline --------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "stm/tinystm/TinyStm.h"

#include "support/Platform.h"

using namespace stm;
using namespace stm::tiny;

static TinyGlobals GlobalState;

TinyGlobals &stm::tiny::tinyGlobals() { return GlobalState; }

void TinyStm::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.SharedWords = SharedArena::sharedActive();
  if (GlobalState.SharedWords) {
    // Multi-process mode: table and clock live in the shm segment; an
    // attacher adopts the live values instead of resetting them.
    SharedArena &A = SharedArena::instance();
    GlobalState.Table.bindAt(
        A.tableRegion(
            core::LockTable<VLock>::bytesFor(Config.LockTableSizeLog2)),
        Config.LockTableSizeLog2, Config.GranularityLog2,
        resolvedLockShards(Config));
    GlobalState.Clock.placeShards(A.clockRegion());
    GlobalState.Clock.adopt(Config.Clock, resolvedClockShards(Config));
  } else {
    GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                           resolvedLockShards(Config));
    GlobalState.Clock.placeShards(nullptr);
    GlobalState.Clock.reset(Config.Clock, resolvedClockShards(Config));
  }
}

void TinyStm::globalShutdown() {
  globalTeardown(GlobalState.Table);
  GlobalState.Clock.placeShards(nullptr);
  GlobalState.SharedWords = false;
}

void TinyTx::onStart() {
  baseStart();
  ReadLog.clear();
  WriteLog.clear();
  WordLog.clear();
  beginEpoch(GlobalState.Clock);
}

StripeWrite *TinyTx::ownedEntry(Word V) {
  if (REPRO_UNLIKELY(GlobalState.SharedWords)) {
    if (SharedArena::handleSlot(V) != Slot)
      return nullptr;
    return &WriteLog[SharedArena::handleIndex(V)];
  }
  StripeWrite *Entry = vlockEntry(V);
  return Entry->Owner.load(std::memory_order_relaxed) == this ? Entry
                                                              : nullptr;
}

Word TinyTx::load(const Word *Addr) {
  ++Stats.Reads;
  VLock &Lock = GlobalState.Table.entryFor(Addr);

  Word V = Lock.L.load(std::memory_order_acquire);
  while (true) {
    STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Lock), V);
    if (vlockIsLocked(V)) {
      if (StripeWrite *Entry = ownedEntry(V)) {
        // Read-after-write through the encounter-time lock.
        for (WordWrite *W = Entry->Head; W; W = W->Next)
          if (W->Addr == Addr)
            return W->Value;
        return racyLoad(Addr);
      }
      // Encounter-time read/write conflict: the timid policy aborts the
      // reader immediately. This is precisely the early-abort behaviour
      // the paper contrasts with SwissTM's lazy read/write detection.
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      // A dead owner's lock would turn the timid abort into an abort
      // loop; break it (throttled) before rolling back.
      if (REPRO_UNLIKELY(GlobalState.SharedWords) &&
          SharedArena::instance().maybeRecoverRemote(V)) {
        V = Lock.L.load(std::memory_order_acquire);
        continue;
      }
      rollback();
    }
    Word Value = racyLoad(Addr);
    // Single-fence mode: the recheck drops its acquire ordering, same
    // rationale as TL2's (the commit path publishes the clock only
    // after write-back, see TinyTx::commitSingleFence). Where acquire
    // loads are free (x86) the mode test folds away and the recheck
    // keeps the stronger order at zero cost.
    Word V2 = repro::AcquireLoadIsFree || !GlobalState.Config.SingleFence
                  ? Lock.L.load(std::memory_order_acquire)
                  : Lock.L.load(std::memory_order_relaxed);
    if (V == V2) {
      ReadLog.push_back(ReadEntry{&Lock, V});
      if (vlockVersion(V) > ValidTs &&
          !extendEpoch(GlobalState.Clock,
                       GlobalState.Config.EnableExtension,
                       vlockVersion(V))) {
        STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                               GlobalState.Table.indexOfEntry(&Lock), V);
        rollback();
      }
      return Value;
    }
    // Retry: a relaxed recheck value is good enough to detect the
    // mismatch, but the next iteration dereferences lock-carried state,
    // so re-sample with acquire (a no-op when V2 was already acquire).
    V = !repro::AcquireLoadIsFree && GlobalState.Config.SingleFence
            ? Lock.L.load(std::memory_order_acquire)
            : V2;
  }
}

void TinyTx::store(Word *Addr, Word Value) {
  ++Stats.Writes;
  VLock &Lock = GlobalState.Table.entryFor(Addr);

  StripeWrite *Mine = nullptr;
  const bool Shared = GlobalState.SharedWords;
  while (true) {
    Word V = Lock.L.load(std::memory_order_acquire);
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Lock), V);
    if (vlockIsLocked(V)) {
      if (StripeWrite *Entry = ownedEntry(V)) {
        if (Mine != nullptr)
          WriteLog.popBack();
        addWordWrite(Entry, Addr, Value);
        return;
      }
      // Write/write conflict: timid, abort self (after breaking a dead
      // peer's lock in multi-process mode).
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      if (REPRO_UNLIKELY(Shared) &&
          SharedArena::instance().maybeRecoverRemote(V))
        continue;
      rollback();
    }
    if (Mine == nullptr) {
      Mine = WriteLog.pushDefault();
      Mine->Owner.store(this, std::memory_order_relaxed);
      Mine->Lock = &Lock;
      Mine->Head = nullptr;
      Mine->Self = Shared
                       ? SharedArena::makeHandle(WriteLog.size() - 1, Slot)
                       : (reinterpret_cast<Word>(Mine) | 1);
    }
    Mine->OldValue = V;
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().pushIntent(Slot, &Lock.L, V, Mine->Self);
    if (Lock.L.compare_exchange_weak(V, Mine->Self,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      break;
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().popIntent(Slot);
  }

  if (vlockVersion(Mine->OldValue) > ValidTs &&
      !extendEpoch(GlobalState.Clock, GlobalState.Config.EnableExtension,
                   vlockVersion(Mine->OldValue))) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Lock),
                           Mine->OldValue);
    rollback();
  }
  addWordWrite(Mine, Addr, Value);
}

void TinyTx::addWordWrite(StripeWrite *Entry, Word *Addr, Word Value) {
  for (WordWrite *W = Entry->Head; W; W = W->Next) {
    if (W->Addr == Addr) {
      W->Value = Value;
      return;
    }
  }
  WordWrite *W = WordLog.pushDefault();
  W->Addr = Addr;
  W->Value = Value;
  W->Next = Entry->Head;
  Entry->Head = W;
}

void TinyTx::commit() {
  assert(Depth > 0 && "commit outside a transaction");

  if (WriteLog.empty()) {
    ++Stats.ReadOnlyCommits;
    baseCommit(GlobalState.Clock.load());
    return;
  }

  if (REPRO_UNLIKELY(GlobalState.Config.SingleFence)) {
    commitSingleFence();
    return;
  }

  // Commit timestamp under the configured clock policy; the shortcut
  // rules live in core::TimeValidation.
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    WriteLog.forEach([&Max](StripeWrite &E) {
      if (vlockVersion(E.OldValue) > Max)
        Max = vlockVersion(E.OldValue);
    });
    return Max;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  if (mustValidateCommit(Stamp) && !revalidate())
    rollback();

  // Write back and release each stripe with the commit timestamp.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool Shared = GlobalState.SharedWords;
  if (REPRO_UNLIKELY(Shared))
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseWriteBack);
  Word Release = vlockMake(Ts);
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(E.Lock),
                  Ts);
    for (WordWrite *W = E.Head; W; W = W->Next)
      racyStore(W->Addr, W->Value);
    E.Lock->L.store(Release, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(Shared)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }

  baseCommit(Ts);
}

// SINGLEFENCEOPT ordering (see Tl2Tx::commitSingleFence): validate
// first (write-back is irreversible — the word log keeps no old data),
// write every stripe back while all locks stay held, and only then
// mint and publish the timestamp and release. The stamp is shared by
// construction, so validation can never be skipped. Out of line to
// keep the off-by-default variant out of the hot commit path.
REPRO_NOINLINE void TinyTx::commitSingleFence() {
  if (!revalidate())
    rollback();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool Shared = GlobalState.SharedWords;
  if (REPRO_UNLIKELY(Shared))
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseWriteBack);
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(E.Lock),
                  0);
    for (WordWrite *W = E.Head; W; W = W->Next)
      racyStore(W->Addr, W->Value);
  });
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    WriteLog.forEach([&Max](StripeWrite &E) {
      if (vlockVersion(E.OldValue) > Max)
        Max = vlockVersion(E.OldValue);
    });
    return Max;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  Word Release = vlockMake(Ts);
  WriteLog.forEach([&](StripeWrite &E) {
    E.Lock->L.store(Release, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(Shared)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }
  baseCommit(Ts);
}

void TinyTx::rollback() {
  // Release owned stripes back to their pre-acquisition versions. The
  // last entry may be speculative (its CAS never succeeded before the
  // abort), so only touch locks that actually hold our entry's word.
  WriteLog.forEach([](StripeWrite &E) {
    if (E.Lock != nullptr &&
        E.Lock->L.load(std::memory_order_relaxed) == E.Self)
      E.Lock->L.store(E.OldValue, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(GlobalState.SharedWords))
    SharedArena::instance().clearIntents(Slot);
  baseAbort();
  std::longjmp(*EnvTarget, 1);
}

bool TinyTx::validateReadSet() {
  for (const ReadEntry &R : ReadLog) {
    Word Cur = R.Lock->L.load(std::memory_order_acquire);
    if (Cur == R.Seen)
      continue;
    if (vlockIsLocked(Cur)) {
      // Stripe we read and then acquired ourselves: valid only if no
      // other transaction committed into it between our read and our
      // acquisition, i.e. the version observed when the lock was taken
      // is still the version we read.
      StripeWrite *Entry = ownedEntry(Cur);
      if (Entry != nullptr &&
          // The PR 1 regression knob resurrects the original bug:
          // trusting any self-locked stripe without checking that the
          // pre-acquisition version is still the version we read.
          (Entry->OldValue == R.Seen || STM_DIAG_INJECTED(SelfLockedSkip)))
        continue;
    }
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(R.Lock), Cur);
    return false;
  }
  return true;
}
