//===- workloads/rbtree/RbTree.h - transactional red-black tree -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The classic STM microbenchmark (Section 2.2, Figure 5): a red-black
// tree whose insert / remove / lookup operations each run as one short
// transaction. The implementation follows CLRS with a shared sentinel
// NIL node (as in the STAMP/RSTM trees); every field access goes through
// the word-based STM API, so the tree is correct under any of the four
// STMs.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_RBTREE_RBTREE_H
#define WORKLOADS_RBTREE_RBTREE_H

#include "stm/Stm.h"
#include "stm/core/SharedArena.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace workloads {

/// Transactional red-black tree mapping uint64 keys to uint64 values.
template <typename STM> class RbTree {
public:
  using Tx = typename STM::Tx;

  enum Color : stm::Word { Red = 0, Black = 1 };

  struct Node {
    stm::Word Key;
    stm::Word Value;
    stm::Word Col;
    stm::Word Left;   // Node*
    stm::Word Right;  // Node*
    stm::Word Parent; // Node*
  };

  /// In multi-process mode the tree header (RootCell) and sentinel are
  /// written transactionally, so a heap-allocated tree must land in the
  /// shared segment — fork'd peers otherwise diverge on COW pages.
  static void *operator new(std::size_t Bytes) {
    return stm::sharedAlloc(Bytes);
  }
  static void operator delete(void *P) { stm::sharedDispatchFree(P); }

  RbTree() {
    Nil = static_cast<Node *>(stm::sharedAlloc(sizeof(Node)));
    Nil->Key = 0;
    Nil->Value = 0;
    Nil->Col = Black;
    Nil->Left = reinterpret_cast<stm::Word>(Nil);
    Nil->Right = reinterpret_cast<stm::Word>(Nil);
    Nil->Parent = reinterpret_cast<stm::Word>(Nil);
    RootCell = reinterpret_cast<stm::Word>(Nil);
  }

  ~RbTree() {
    destroySubtree(rootRaw());
    stm::sharedDispatchFree(Nil);
  }

  RbTree(const RbTree &) = delete;
  RbTree &operator=(const RbTree &) = delete;

  /// Transactionally inserts (\p Key, \p Value); returns false if the
  /// key was already present.
  bool insert(Tx &T, uint64_t Key, uint64_t Value) {
    Node *Y = Nil;
    Node *X = root(T);
    while (X != Nil) {
      Y = X;
      uint64_t XK = key(T, X);
      if (Key == XK)
        return false;
      X = Key < XK ? left(T, X) : right(T, X);
    }
    auto *Z = static_cast<Node *>(T.txMalloc(sizeof(Node)));
    // Freshly allocated: initialize transactionally so an abort that
    // frees Z never exposes garbage (writes are buffered anyway).
    T.store(&Z->Key, Key);
    T.store(&Z->Value, Value);
    T.store(&Z->Col, Red);
    T.store(&Z->Left, asWord(Nil));
    T.store(&Z->Right, asWord(Nil));
    T.store(&Z->Parent, asWord(Y));
    if (Y == Nil)
      setRoot(T, Z);
    else if (Key < key(T, Y))
      T.store(&Y->Left, asWord(Z));
    else
      T.store(&Y->Right, asWord(Z));
    insertFixup(T, Z);
    return true;
  }

  /// Transactionally removes \p Key; returns false if absent.
  bool remove(Tx &T, uint64_t Key) {
    Node *Z = findNode(T, Key);
    if (Z == nullptr)
      return false;

    // CLRS delete with sentinel parent tracking.
    Node *Y = (left(T, Z) == Nil || right(T, Z) == Nil)
                  ? Z
                  : minimum(T, right(T, Z));
    Node *X = left(T, Y) != Nil ? left(T, Y) : right(T, Y);
    Node *YParent = parent(T, Y);
    T.store(&X->Parent, asWord(YParent)); // may write the sentinel
    if (YParent == Nil)
      setRoot(T, X);
    else if (Y == left(T, YParent))
      T.store(&YParent->Left, asWord(X));
    else
      T.store(&YParent->Right, asWord(X));
    if (Y != Z) {
      T.store(&Z->Key, key(T, Y));
      T.store(&Z->Value, T.load(&Y->Value));
    }
    if (color(T, Y) == Black)
      deleteFixup(T, X);
    T.txFree(Y);
    return true;
  }

  /// Transactionally looks up \p Key; returns true and fills \p Value
  /// when present.
  bool lookup(Tx &T, uint64_t Key, uint64_t *Value = nullptr) {
    Node *N = findNode(T, Key);
    if (N == nullptr)
      return false;
    if (Value != nullptr)
      *Value = T.load(&N->Value);
    return true;
  }

  /// Transactionally updates the value of \p Key if present.
  bool update(Tx &T, uint64_t Key, uint64_t Value) {
    Node *N = findNode(T, Key);
    if (N == nullptr)
      return false;
    T.store(&N->Value, Value);
    return true;
  }

  /// Transactionally visits every (key, value) pair with Lo <= key <=
  /// Hi in ascending key order; \p Visit is called as Visit(Key, Value)
  /// and returns the number of keys visited. The read set grows with
  /// the subtrees overlapping the range, so wide scans conflict with
  /// any concurrent writer in the range — exactly the long-reader
  /// pattern the serving workload's range-scan op class measures.
  template <typename VisitFn>
  std::size_t scanRange(Tx &T, uint64_t Lo, uint64_t Hi, VisitFn &&Visit) {
    std::size_t Count = 0;
    scanSubtree(T, root(T), Lo, Hi, Visit, Count);
    return Count;
  }

  //===--------------------------------------------------------------===//
  // Non-transactional inspection (single-threaded / quiesced use only)
  //===--------------------------------------------------------------===//

  /// Number of keys in the tree.
  std::size_t size() const { return countSubtree(rootRaw()); }

  /// Checks every red-black tree invariant; returns false on any
  /// violation. Call only while no transaction is in flight.
  bool verify() const {
    Node *Root = rootRaw();
    if (Root == Nil)
      return true;
    if (Root->Col != Black)
      return false;
    return blackHeight(Root, 0, ~0ull) >= 0;
  }

private:
  static stm::Word asWord(Node *N) { return reinterpret_cast<stm::Word>(N); }

  Node *root(Tx &T) const {
    return reinterpret_cast<Node *>(
        T.load(const_cast<stm::Word *>(&RootCell)));
  }
  void setRoot(Tx &T, Node *N) { T.store(&RootCell, asWord(N)); }
  Node *rootRaw() const { return reinterpret_cast<Node *>(RootCell); }

  Node *left(Tx &T, Node *N) const {
    return reinterpret_cast<Node *>(T.load(&N->Left));
  }
  Node *right(Tx &T, Node *N) const {
    return reinterpret_cast<Node *>(T.load(&N->Right));
  }
  Node *parent(Tx &T, Node *N) const {
    return reinterpret_cast<Node *>(T.load(&N->Parent));
  }
  uint64_t key(Tx &T, Node *N) const { return T.load(&N->Key); }
  stm::Word color(Tx &T, Node *N) const { return T.load(&N->Col); }

  Node *findNode(Tx &T, uint64_t Key) {
    Node *X = root(T);
    while (X != Nil) {
      uint64_t XK = key(T, X);
      if (Key == XK)
        return X;
      X = Key < XK ? left(T, X) : right(T, X);
    }
    return nullptr;
  }

  Node *minimum(Tx &T, Node *X) {
    while (left(T, X) != Nil)
      X = left(T, X);
    return X;
  }

  template <typename VisitFn>
  void scanSubtree(Tx &T, Node *N, uint64_t Lo, uint64_t Hi, VisitFn &Visit,
                   std::size_t &Count) {
    if (N == Nil)
      return;
    uint64_t K = key(T, N);
    // Prune subtrees wholly outside the range (BST order).
    if (K > Lo)
      scanSubtree(T, left(T, N), Lo, Hi, Visit, Count);
    if (K >= Lo && K <= Hi) {
      Visit(K, static_cast<uint64_t>(T.load(&N->Value)));
      ++Count;
    }
    if (K < Hi)
      scanSubtree(T, right(T, N), Lo, Hi, Visit, Count);
  }

  void rotateLeft(Tx &T, Node *X) {
    Node *Y = right(T, X);
    Node *YL = left(T, Y);
    T.store(&X->Right, asWord(YL));
    if (YL != Nil)
      T.store(&YL->Parent, asWord(X));
    Node *XP = parent(T, X);
    T.store(&Y->Parent, asWord(XP));
    if (XP == Nil)
      setRoot(T, Y);
    else if (X == left(T, XP))
      T.store(&XP->Left, asWord(Y));
    else
      T.store(&XP->Right, asWord(Y));
    T.store(&Y->Left, asWord(X));
    T.store(&X->Parent, asWord(Y));
  }

  void rotateRight(Tx &T, Node *X) {
    Node *Y = left(T, X);
    Node *YR = right(T, Y);
    T.store(&X->Left, asWord(YR));
    if (YR != Nil)
      T.store(&YR->Parent, asWord(X));
    Node *XP = parent(T, X);
    T.store(&Y->Parent, asWord(XP));
    if (XP == Nil)
      setRoot(T, Y);
    else if (X == right(T, XP))
      T.store(&XP->Right, asWord(Y));
    else
      T.store(&XP->Left, asWord(Y));
    T.store(&Y->Right, asWord(X));
    T.store(&X->Parent, asWord(Y));
  }

  void insertFixup(Tx &T, Node *Z) {
    while (color(T, parent(T, Z)) == Red) {
      Node *ZP = parent(T, Z);
      Node *ZPP = parent(T, ZP);
      if (ZP == left(T, ZPP)) {
        Node *Uncle = right(T, ZPP);
        if (color(T, Uncle) == Red) {
          T.store(&ZP->Col, Black);
          T.store(&Uncle->Col, Black);
          T.store(&ZPP->Col, Red);
          Z = ZPP;
        } else {
          if (Z == right(T, ZP)) {
            Z = ZP;
            rotateLeft(T, Z);
            ZP = parent(T, Z);
            ZPP = parent(T, ZP);
          }
          T.store(&ZP->Col, Black);
          T.store(&ZPP->Col, Red);
          rotateRight(T, ZPP);
        }
      } else {
        Node *Uncle = left(T, ZPP);
        if (color(T, Uncle) == Red) {
          T.store(&ZP->Col, Black);
          T.store(&Uncle->Col, Black);
          T.store(&ZPP->Col, Red);
          Z = ZPP;
        } else {
          if (Z == left(T, ZP)) {
            Z = ZP;
            rotateRight(T, Z);
            ZP = parent(T, Z);
            ZPP = parent(T, ZP);
          }
          T.store(&ZP->Col, Black);
          T.store(&ZPP->Col, Red);
          rotateLeft(T, ZPP);
        }
      }
    }
    T.store(&root(T)->Col, Black);
  }

  void deleteFixup(Tx &T, Node *X) {
    while (X != root(T) && color(T, X) == Black) {
      Node *XP = parent(T, X);
      if (X == left(T, XP)) {
        Node *W = right(T, XP);
        if (color(T, W) == Red) {
          T.store(&W->Col, Black);
          T.store(&XP->Col, Red);
          rotateLeft(T, XP);
          XP = parent(T, X);
          W = right(T, XP);
        }
        if (color(T, left(T, W)) == Black &&
            color(T, right(T, W)) == Black) {
          T.store(&W->Col, Red);
          X = XP;
        } else {
          if (color(T, right(T, W)) == Black) {
            T.store(&left(T, W)->Col, Black);
            T.store(&W->Col, Red);
            rotateRight(T, W);
            XP = parent(T, X);
            W = right(T, XP);
          }
          T.store(&W->Col, color(T, XP));
          T.store(&XP->Col, Black);
          T.store(&right(T, W)->Col, Black);
          rotateLeft(T, XP);
          X = root(T);
        }
      } else {
        Node *W = left(T, XP);
        if (color(T, W) == Red) {
          T.store(&W->Col, Black);
          T.store(&XP->Col, Red);
          rotateRight(T, XP);
          XP = parent(T, X);
          W = left(T, XP);
        }
        if (color(T, right(T, W)) == Black &&
            color(T, left(T, W)) == Black) {
          T.store(&W->Col, Red);
          X = XP;
        } else {
          if (color(T, left(T, W)) == Black) {
            T.store(&right(T, W)->Col, Black);
            T.store(&W->Col, Red);
            rotateLeft(T, W);
            XP = parent(T, X);
            W = left(T, XP);
          }
          T.store(&W->Col, color(T, XP));
          T.store(&XP->Col, Black);
          T.store(&left(T, W)->Col, Black);
          rotateRight(T, XP);
          X = root(T);
        }
      }
    }
    T.store(&X->Col, Black);
  }

  //===--------------------------------------------------------------===//
  // Non-transactional helpers
  //===--------------------------------------------------------------===//

  void destroySubtree(Node *N) {
    if (N == Nil)
      return;
    destroySubtree(reinterpret_cast<Node *>(N->Left));
    destroySubtree(reinterpret_cast<Node *>(N->Right));
    stm::sharedDispatchFree(N); // nodes come from txMalloc's dispatcher
  }

  std::size_t countSubtree(Node *N) const {
    if (N == Nil)
      return 0;
    return 1 + countSubtree(reinterpret_cast<Node *>(N->Left)) +
           countSubtree(reinterpret_cast<Node *>(N->Right));
  }

  /// Returns the black height of \p N's subtree or -1 on violation of
  /// red-red, black-height or BST-order constraints.
  int blackHeight(Node *N, uint64_t Min, uint64_t Max) const {
    if (N == Nil)
      return 1;
    uint64_t K = N->Key;
    if (K < Min || K > Max)
      return -1;
    auto *L = reinterpret_cast<Node *>(N->Left);
    auto *R = reinterpret_cast<Node *>(N->Right);
    if (N->Col == Red &&
        (L->Col == Red || R->Col == Red))
      return -1;
    int LH = blackHeight(L, Min, K == 0 ? 0 : K - 1);
    int RH = blackHeight(R, K + 1, Max);
    if (LH < 0 || RH < 0 || LH != RH)
      return -1;
    return LH + (N->Col == Black ? 1 : 0);
  }

  Node *Nil;
  alignas(64) stm::Word RootCell;
};

} // namespace workloads

#endif // WORKLOADS_RBTREE_RBTREE_H
