//===- stm/tl2/Tl2.cpp - TL2 baseline -------------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "stm/tl2/Tl2.h"

#include "support/Platform.h"

#include <thread>

using namespace stm;
using namespace stm::tl2;

static Tl2Globals GlobalState;

Tl2Globals &stm::tl2::tl2Globals() { return GlobalState; }

void Tl2::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.SharedWords = SharedArena::sharedActive();
  if (GlobalState.SharedWords) {
    // Multi-process mode: table and clock live in the shm segment; an
    // attacher adopts the live values instead of resetting them.
    SharedArena &A = SharedArena::instance();
    GlobalState.Table.bindAt(
        A.tableRegion(
            core::LockTable<VLock>::bytesFor(Config.LockTableSizeLog2)),
        Config.LockTableSizeLog2, Config.GranularityLog2,
        resolvedLockShards(Config));
    GlobalState.Clock.placeShards(A.clockRegion());
    GlobalState.Clock.adopt(Config.Clock, resolvedClockShards(Config));
  } else {
    GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                           resolvedLockShards(Config));
    GlobalState.Clock.placeShards(nullptr);
    GlobalState.Clock.reset(Config.Clock, resolvedClockShards(Config));
  }
}

void Tl2::globalShutdown() {
  globalTeardown(GlobalState.Table);
  GlobalState.Clock.placeShards(nullptr);
  GlobalState.SharedWords = false;
}

void Tl2Tx::onStart() {
  baseStart();
  ReadLog.clear();
  WriteLog.clear();
  AcquiredLocks.clear();
  WSetMap.clear();
  beginEpoch(GlobalState.Clock); // "rv" -- clock sample at start
}

Word Tl2Tx::load(const Word *Addr) {
  ++Stats.Reads;

  // Read-after-write from the redo log.
  if (!WriteLog.empty()) {
    uint32_t Idx = WSetMap.lookup(Addr);
    if (Idx != ~0u)
      return WriteLog[Idx].Value;
  }

  VLock &Lock = GlobalState.Table.entryFor(Addr);
  STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Lock), 0);
  Word V1 = Lock.L.load(std::memory_order_acquire);
  Word Value = racyLoad(Addr);
  // Single-fence mode (SINGLEFENCEOPT): the post-read recheck drops its
  // acquire ordering. Sound only because the commit path then publishes
  // the clock *after* write-back while the stripes stay locked — the
  // begin-time clock acquire plus the release-store at the new version
  // already order any version <= rv before the data this read can
  // observe, so the recheck only needs the value, not the fence. Where
  // acquire loads are free (x86) the mode test folds away and the
  // recheck keeps the stronger order at zero cost.
  Word V2 = repro::AcquireLoadIsFree || !GlobalState.Config.SingleFence
                ? Lock.L.load(std::memory_order_acquire)
                : Lock.L.load(std::memory_order_relaxed);

  // TL2 post-read check: the lock must be free, unchanged across the
  // data read, and no newer than the transaction's read version. Any
  // violation aborts -- TL2 has no extension mechanism. A too-new
  // version still advances a deferred (GV5/GvShard) clock before the
  // abort, or the retry would sample the same stale read version and
  // livelock on this very read.
  if (vlockIsLocked(V1) || V1 != V2) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Lock),
                           V1);
    // A committer that died holding this stripe would turn the timid
    // abort into an abort loop; the throttled liveness probe breaks it.
    if (REPRO_UNLIKELY(GlobalState.SharedWords) && vlockIsLocked(V1))
      SharedArena::instance().maybeRecoverRemote(V1);
    rollback();
  }
  if (vlockVersion(V1) > ValidTs) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Lock),
                           V1);
    GlobalState.Clock.noteStaleRead(vlockVersion(V1), Slot);
    rollback();
  }

  // Injected guard-rail bug (tests only): model the data load sinking
  // below the relaxed recheck — the reorder an *unsound* fence elision
  // (one without the commit-after-write-back protocol) would allow on
  // weakly-ordered hardware. The yield widens the window so a
  // concurrent commit can tear the returned value away from the
  // version the checks above validated.
  if (STM_DIAG_INJECTED(Tl2UnsoundFenceElision)) {
    std::this_thread::yield();
    Value = racyLoad(Addr);
  }

  ReadLog.push_back(&Lock);
  return Value;
}

void Tl2Tx::store(Word *Addr, Word Value) {
  ++Stats.Writes;
  // Lazy acquire: just buffer the write.
  uint32_t Idx = WSetMap.lookup(Addr);
  if (Idx != ~0u) {
    WriteLog[Idx].Value = Value;
    return;
  }
  WSetMap.insert(Addr, static_cast<uint32_t>(WriteLog.size()));
  WriteLog.push_back(WriteEntry{Addr, Value});
}

bool Tl2Tx::acquireWriteSet() {
  const bool Shared = GlobalState.SharedWords;
  Word Self = selfWord();
  for (const WriteEntry &W : WriteLog) {
    VLock &Lock = GlobalState.Table.entryFor(W.Addr);
    unsigned Spins = 0;
    while (true) {
      Word V = Lock.L.load(std::memory_order_acquire);
      STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Lock), V);
      if (V == Self)
        break; // another word of an already-acquired stripe
      if (!vlockIsLocked(V)) {
        if (REPRO_UNLIKELY(Shared))
          SharedArena::instance().pushIntent(Slot, &Lock.L, V, Self);
        if (Lock.L.compare_exchange_weak(V, Self,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          AcquiredLocks.push_back(Acquired{&Lock, V});
          break;
        }
        if (REPRO_UNLIKELY(Shared))
          SharedArena::instance().popIntent(Slot);
        continue;
      }
      // Locked by another committer: timid policy with a short bounded
      // spin, then abort self. A dead peer's lock is broken instead of
      // waited on.
      if (REPRO_UNLIKELY(Shared) &&
          SharedArena::instance().maybeRecoverRemote(V))
        continue;
      if (++Spins > AcquireSpinLimit) {
        STM_DIAG_NOTE_CONFLICT(Slot, W.Addr,
                               GlobalState.Table.indexOfEntry(&Lock), V);
        return false;
      }
      repro::cpuRelax();
    }
  }
  return true;
}

bool Tl2Tx::validateReadSet() {
  Word Self = selfWord();
  for (VLock *Lock : ReadLog) {
    Word V = Lock->L.load(std::memory_order_acquire);
    if (V == Self) {
      // Stripe we both read and locked for writing: the lock word now
      // carries our descriptor, so validate against the version
      // observed when the lock was acquired. A commit that interleaved
      // between our read and our acquisition bumped it past
      // the read version and must fail validation.
      for (const Acquired &A : AcquiredLocks) {
        if (A.Lock == Lock) {
          // The PR 1 regression knob resurrects the original bug:
          // trusting a self-locked stripe without the pre-acquisition
          // version check.
          if (!STM_DIAG_INJECTED(SelfLockedSkip) &&
              vlockVersion(A.OldValue) > ValidTs) {
            STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                                   GlobalState.Table.indexOfEntry(Lock),
                                   A.OldValue);
            return false;
          }
          break;
        }
      }
      continue;
    }
    if (vlockIsLocked(V) || vlockVersion(V) > ValidTs) {
      STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                             GlobalState.Table.indexOfEntry(Lock), V);
      return false;
    }
  }
  return true;
}

void Tl2Tx::commit() {
  assert(Depth > 0 && "commit outside a transaction");

  if (WriteLog.empty()) {
    // Read-only transactions validated each read in place; commit is a
    // no-op (TL2's read-only fast path).
    ++Stats.ReadOnlyCommits;
    baseCommit(GlobalState.Clock.load());
    return;
  }

  if (!acquireWriteSet())
    rollbackReleasing();

  // Order lock acquisition before the data write-back for readers.
  // In single-fence mode this is the *only* commit fence — the read
  // path's recheck relies on the stamp being published after
  // write-back below.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  if (REPRO_UNLIKELY(GlobalState.Config.SingleFence)) {
    commitSingleFence();
    return;
  }

  // Commit timestamp under the configured clock policy; the shortcut
  // rules live in core::TimeValidation.
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    for (const Acquired &A : AcquiredLocks)
      if (vlockVersion(A.OldValue) > Max)
        Max = vlockVersion(A.OldValue);
    return Max;
  });
  uint64_t WriteVersion = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, WriteVersion);
  if (mustValidateCommit(Stamp) && !revalidate())
    rollbackReleasing();

  const bool Shared = GlobalState.SharedWords;
  if (REPRO_UNLIKELY(Shared))
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseWriteBack);
  for (const WriteEntry &W : WriteLog) {
    STM_DIAG_HOOK(Slot, WriteBack,
                  GlobalState.Table.indexFor(W.Addr), WriteVersion);
    racyStore(W.Addr, W.Value);
  }

  Word Release = vlockMake(WriteVersion);
  for (const Acquired &A : AcquiredLocks)
    A.Lock->L.store(Release, std::memory_order_release);
  if (REPRO_UNLIKELY(Shared)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }

  baseCommit(WriteVersion);
}

// SINGLEFENCEOPT ordering: validate, write back, and only then mint
// and publish the commit timestamp (stripes stay locked throughout, so
// nobody can observe the new data at the old version). Validation must
// run before write-back — a redo log has no old values to restore —
// and can never be skipped: the stamp does not exist yet when the
// decision is due, and a post-write-back stamp is shared by
// construction. Runs with the write set acquired and the commit fence
// already issued (see commit()).
REPRO_NOINLINE void Tl2Tx::commitSingleFence() {
  if (!revalidate())
    rollbackReleasing();
  const bool Shared = GlobalState.SharedWords;
  if (REPRO_UNLIKELY(Shared))
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseWriteBack);
  for (const WriteEntry &W : WriteLog) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexFor(W.Addr), 0);
    racyStore(W.Addr, W.Value);
  }
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    for (const Acquired &A : AcquiredLocks)
      if (vlockVersion(A.OldValue) > Max)
        Max = vlockVersion(A.OldValue);
    return Max;
  });
  uint64_t WriteVersion = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, WriteVersion);
  Word Release = vlockMake(WriteVersion);
  for (const Acquired &A : AcquiredLocks)
    A.Lock->L.store(Release, std::memory_order_release);
  if (REPRO_UNLIKELY(Shared)) {
    SharedArena &Arena = SharedArena::instance();
    Arena.setPhase(Slot, SharedArena::PhaseNone);
    Arena.clearIntents(Slot);
  }
  baseCommit(WriteVersion);
}

void Tl2Tx::rollback() {
  if (REPRO_UNLIKELY(GlobalState.SharedWords))
    SharedArena::instance().clearIntents(Slot);
  baseAbort();
  std::longjmp(*EnvTarget, 1);
}

void Tl2Tx::rollbackReleasing() {
  for (const Acquired &A : AcquiredLocks)
    A.Lock->L.store(A.OldValue, std::memory_order_release);
  rollback();
}
