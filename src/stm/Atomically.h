//===- stm/Atomically.h - transaction boundary harness ----------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Like the C STM libraries this repository models, aborts restart the
// transaction with longjmp back to the setjmp captured at the boundary.
// Consequence (documented in the README): a transaction body must not
// hold objects with non-trivial destructors across transactional
// operations, because an abort will not run them.
//
// Nesting is flattened ("closed nesting ... no clear advantage",
// Section 6): an inner atomically() merges into the enclosing
// transaction, and an inner abort restarts the outermost boundary.
//
//===----------------------------------------------------------------------===//

#ifndef STM_ATOMICALLY_H
#define STM_ATOMICALLY_H

#include "stm/Word.h"

#include <csetjmp>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace stm {

/// Runs \p Body as one transaction on descriptor \p Tx, retrying on
/// abort until it commits. \p Body receives the descriptor and performs
/// accesses through Tx.load / Tx.store / loadField / storeField.
///
/// noinline is load-bearing: setjmp must live in this function's own
/// frame, not the caller's. If the call were inlined, the caller's
/// locals modified between setjmp and an abort's longjmp would be
/// clobbered on restart (C11 7.13.2.1p3); keeping the frame separate
/// means only Tx and Body -- both unmodified -- live with the setjmp.
template <typename TxT, typename Fn>
__attribute__((noinline)) void atomically(TxT &Tx, Fn &&Body) {
  if (Tx.inTransaction()) {
    Body(Tx); // flat nesting: run inside the enclosing transaction
    return;
  }
  // Returns 0 when first armed; rollback() longjmps back here with 1 and
  // execution falls through into onStart() for the retry.
  setjmp(Tx.jumpEnv());
  Tx.onStart();
  Body(Tx);
  Tx.commit();
}

/// Transactionally reads a POD field of any size/alignment by loading
/// the containing word(s). \p Field must point into transactional memory.
template <typename T, typename TxT> T loadField(TxT &Tx, const T *Field) {
  static_assert(std::is_trivially_copyable_v<T>, "need a POD field");
  if constexpr (sizeof(T) == sizeof(Word)) {
    if (isWordAligned(Field))
      return fromWord<T>(
          Tx.load(reinterpret_cast<const Word *>(Field)));
  }
  // Slow path: gather from containing words.
  unsigned char Bytes[sizeof(T)];
  const unsigned char *Src = reinterpret_cast<const unsigned char *>(Field);
  for (std::size_t I = 0; I < sizeof(T);) {
    const Word *Cell = alignToWord(Src + I);
    std::size_t Offset =
        (Src + I) - reinterpret_cast<const unsigned char *>(Cell);
    std::size_t Chunk = WordSize - Offset;
    if (Chunk > sizeof(T) - I)
      Chunk = sizeof(T) - I;
    Word W = Tx.load(Cell);
    std::memcpy(Bytes + I, reinterpret_cast<unsigned char *>(&W) + Offset,
                Chunk);
    I += Chunk;
  }
  T Value;
  std::memcpy(&Value, Bytes, sizeof(T));
  return Value;
}

/// Transactionally writes a POD field of any size/alignment by
/// read-modify-writing the containing word(s).
template <typename T, typename TxT>
void storeField(TxT &Tx, T *Field, T Value) {
  static_assert(std::is_trivially_copyable_v<T>, "need a POD field");
  if constexpr (sizeof(T) == sizeof(Word)) {
    if (isWordAligned(Field)) {
      Tx.store(reinterpret_cast<Word *>(Field), toWord(Value));
      return;
    }
  }
  const unsigned char *Src = reinterpret_cast<const unsigned char *>(&Value);
  unsigned char *Dst = reinterpret_cast<unsigned char *>(Field);
  for (std::size_t I = 0; I < sizeof(T);) {
    Word *Cell = alignToWord(Dst + I);
    std::size_t Offset = (Dst + I) - reinterpret_cast<unsigned char *>(Cell);
    std::size_t Chunk = WordSize - Offset;
    if (Chunk > sizeof(T) - I)
      Chunk = sizeof(T) - I;
    Word W = Tx.load(Cell);
    std::memcpy(reinterpret_cast<unsigned char *>(&W) + Offset, Src + I,
                Chunk);
    Tx.store(Cell, W);
    I += Chunk;
  }
}

/// Transactionally loads a pointer field.
template <typename T, typename TxT>
T *loadPtr(TxT &Tx, T *const *Field) {
  return reinterpret_cast<T *>(
      Tx.load(reinterpret_cast<const Word *>(Field)));
}

/// Transactionally stores a pointer field.
template <typename T, typename TxT>
void storePtr(TxT &Tx, T **Field, T *Value) {
  Tx.store(reinterpret_cast<Word *>(Field),
           reinterpret_cast<Word>(Value));
}

/// RAII helper: initializes an STM's global state on construction and
/// tears it down on destruction.
template <typename STM> class GlobalInit {
public:
  GlobalInit() { STM::globalInit({}); }
  explicit GlobalInit(const struct StmConfig &Config) {
    STM::globalInit(Config);
  }
  ~GlobalInit() { STM::globalShutdown(); }

  GlobalInit(const GlobalInit &) = delete;
  GlobalInit &operator=(const GlobalInit &) = delete;
};

} // namespace stm

#endif // STM_ATOMICALLY_H
