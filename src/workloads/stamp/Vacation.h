//===- workloads/stamp/Vacation.h - STAMP vacation --------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's vacation: an in-memory travel reservation system. Three
// resource tables (cars, rooms, flights) and a customer table, all
// transactional red-black trees. Client transactions:
//
//   * MakeReservation: query up to Q random resources across the three
//     tables, reserve the cheapest available one for a customer;
//   * DeleteCustomer: cancel a customer and release every reservation;
//   * UpdateTables: add/remove resources or change prices.
//
// STAMP's high/low contention variants differ in how much of the table
// each query may touch and the mix of operation types; here
// vacation-high queries a wide id range with more updates, vacation-low
// a narrow range with mostly reservations.
//
// Invariant checked by tests: for every resource,
//   free seats + booked seats == initial capacity,
// and every booking is owned by exactly one live customer.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_VACATION_H
#define WORKLOADS_STAMP_VACATION_H

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/rbtree/RbTree.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace workloads::stamp {

struct VacationConfig {
  unsigned Relations = 256;   ///< resources per table and customers
  unsigned QueriesPerTx = 4;  ///< resources examined per reservation
  unsigned QueryRangePct = 90; ///< % of table a tx may touch (high) / 60 (low)
  unsigned UpdateRatePct = 30; ///< table-update transactions (high) / 10 (low)
};

/// High/low contention presets per STAMP's run recipes.
inline VacationConfig vacationHigh() {
  return VacationConfig{256, 4, 90, 30};
}
inline VacationConfig vacationLow() {
  return VacationConfig{256, 4, 60, 10};
}

template <typename STM> class Vacation {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  enum Table { Cars = 0, Rooms = 1, Flights = 2, NumTables = 3 };

  /// Packed resource state stored as the tree value: free and booked
  /// counts plus price.
  struct Resource {
    Word Free;
    Word Booked;
    Word Price;
  };

  explicit Vacation(const VacationConfig &Config) : Cfg(Config) {
    repro::Xorshift Rng(0xaca710);
    stm::ThreadScope<STM> Scope;
    Tx &T = Scope.tx();
    for (unsigned Tab = 0; Tab < NumTables; ++Tab) {
      for (unsigned Id = 0; Id < Cfg.Relations; ++Id) {
        auto *R = static_cast<Resource *>(std::malloc(sizeof(Resource)));
        R->Free = InitialCapacity;
        R->Booked = 0;
        R->Price = 50 + Rng.nextBounded(450);
        InitialResources.push_back(R);
        stm::atomically(T, [&](Tx &X) {
          Tables[Tab].insert(X, Id, reinterpret_cast<uint64_t>(R));
        });
      }
    }
    // Customer table: value = packed booking count per table is held in
    // dedicated counters; a customer is just a booking vector.
    for (unsigned Id = 0; Id < Cfg.Relations; ++Id) {
      auto *C = newCustomer();
      stm::atomically(T, [&](Tx &X) {
        Customers.insert(X, Id, reinterpret_cast<uint64_t>(C));
      });
    }
  }

  ~Vacation() {
    for (Resource *R : InitialResources)
      std::free(R);
    for (void *C : AllCustomers)
      std::free(C);
  }

  Vacation(const Vacation &) = delete;
  Vacation &operator=(const Vacation &) = delete;

  static constexpr uint64_t InitialCapacity = 100;

  /// A customer's bookings: one slot per table holding the booked
  /// resource id + 1 (0 = no booking).
  struct Customer {
    Word Booking[NumTables];
  };

  /// Runs one client transaction; returns true if it made a change.
  bool clientOp(Tx &T, repro::Xorshift &Rng) {
    unsigned R = static_cast<unsigned>(Rng.nextBounded(100));
    if (R < Cfg.UpdateRatePct)
      return opUpdateTables(T, Rng);
    if (R < Cfg.UpdateRatePct + 5)
      return opDeleteCustomer(T, Rng);
    return opMakeReservation(T, Rng);
  }

  /// Reserve the cheapest available resource of a random table for a
  /// random customer.
  bool opMakeReservation(Tx &T, repro::Xorshift &Rng) {
    unsigned Tab = static_cast<unsigned>(Rng.nextBounded(NumTables));
    uint64_t CustId = randomId(Rng);
    bool Changed = false;
    bool *ChangedPtr = &Changed;
    // Pre-draw query ids outside the transaction body so a retry uses
    // the same ids (no RNG state mutation inside the body).
    uint64_t Ids[16];
    unsigned NumQ = Cfg.QueriesPerTx < 16 ? Cfg.QueriesPerTx : 16;
    for (unsigned I = 0; I < NumQ; ++I)
      Ids[I] = randomId(Rng);
    stm::atomically(T, [&, ChangedPtr](Tx &X) {
      *ChangedPtr = false;
      Resource *Best = nullptr;
      uint64_t BestId = 0, BestPrice = ~0ull;
      for (unsigned I = 0; I < NumQ; ++I) {
        uint64_t Val = 0;
        if (!Tables[Tab].lookup(X, Ids[I], &Val))
          continue;
        auto *Res = reinterpret_cast<Resource *>(Val);
        uint64_t Free = X.load(&Res->Free);
        uint64_t Price = X.load(&Res->Price);
        if (Free > 0 && Price < BestPrice) {
          Best = Res;
          BestId = Ids[I];
          BestPrice = Price;
        }
      }
      if (Best == nullptr)
        return;
      uint64_t CustVal = 0;
      if (!Customers.lookup(X, CustId, &CustVal))
        return;
      auto *Cust = reinterpret_cast<Customer *>(CustVal);
      if (X.load(&Cust->Booking[Tab]) != 0)
        return; // already holds a booking in this table
      X.store(&Best->Free, X.load(&Best->Free) - 1);
      X.store(&Best->Booked, X.load(&Best->Booked) + 1);
      X.store(&Cust->Booking[Tab], BestId + 1);
      *ChangedPtr = true;
    });
    return Changed;
  }

  /// Cancels a random customer's bookings (customer stays, bookings
  /// released) -- the shape of STAMP's delete-customer.
  bool opDeleteCustomer(Tx &T, repro::Xorshift &Rng) {
    uint64_t CustId = randomId(Rng);
    bool Changed = false;
    bool *ChangedPtr = &Changed;
    stm::atomically(T, [&, ChangedPtr](Tx &X) {
      *ChangedPtr = false;
      uint64_t CustVal = 0;
      if (!Customers.lookup(X, CustId, &CustVal))
        return;
      auto *Cust = reinterpret_cast<Customer *>(CustVal);
      for (unsigned Tab = 0; Tab < NumTables; ++Tab) {
        uint64_t B = X.load(&Cust->Booking[Tab]);
        if (B == 0)
          continue;
        uint64_t Val = 0;
        if (Tables[Tab].lookup(X, B - 1, &Val)) {
          auto *Res = reinterpret_cast<Resource *>(Val);
          X.store(&Res->Free, X.load(&Res->Free) + 1);
          X.store(&Res->Booked, X.load(&Res->Booked) - 1);
        }
        X.store(&Cust->Booking[Tab], 0);
        *ChangedPtr = true;
      }
    });
    return Changed;
  }

  /// Price updates on a random sample of resources (STAMP's
  /// update-tables).
  bool opUpdateTables(Tx &T, repro::Xorshift &Rng) {
    unsigned Tab = static_cast<unsigned>(Rng.nextBounded(NumTables));
    uint64_t Ids[8];
    unsigned NumQ = Cfg.QueriesPerTx < 8 ? Cfg.QueriesPerTx : 8;
    for (unsigned I = 0; I < NumQ; ++I)
      Ids[I] = randomId(Rng);
    uint64_t NewPrice = 50 + Rng.nextBounded(450);
    bool Changed = false;
    bool *ChangedPtr = &Changed;
    stm::atomically(T, [&, ChangedPtr](Tx &X) {
      *ChangedPtr = false;
      for (unsigned I = 0; I < NumQ; ++I) {
        uint64_t Val = 0;
        if (!Tables[Tab].lookup(X, Ids[I], &Val))
          continue;
        auto *Res = reinterpret_cast<Resource *>(Val);
        X.store(&Res->Price, NewPrice);
        *ChangedPtr = true;
      }
    });
    return Changed;
  }

  //===--------------------------------------------------------------===//
  // Non-transactional validation (quiesced use only)
  //===--------------------------------------------------------------===//

  /// Capacity conservation: free + booked == initial for every
  /// resource, and booked equals the number of customers holding it.
  bool verify() {
    std::vector<uint64_t> BookedByCustomers(
        static_cast<std::size_t>(NumTables) * Cfg.Relations, 0);
    stm::ThreadScope<STM> Scope;
    Tx &T = Scope.tx();
    bool Ok = true;
    bool *OkPtr = &Ok;
    stm::atomically(T, [&, OkPtr](Tx &X) {
      // Reset all body-mutated state: an aborted attempt reruns the
      // body, and counts carried over from the torn attempt would
      // report a phantom capacity violation. (Under the gv1 clock the
      // post-join verify transaction never aborts, which long masked
      // this; a deferred gv5 clock aborts the first attempt whenever
      // the final worker commits outran the counter.)
      *OkPtr = true;
      std::fill(BookedByCustomers.begin(), BookedByCustomers.end(), 0);
      for (unsigned Id = 0; Id < Cfg.Relations; ++Id) {
        uint64_t CustVal = 0;
        if (!Customers.lookup(X, Id, &CustVal))
          continue;
        auto *Cust = reinterpret_cast<Customer *>(CustVal);
        for (unsigned Tab = 0; Tab < NumTables; ++Tab) {
          uint64_t B = X.load(&Cust->Booking[Tab]);
          if (B != 0)
            ++BookedByCustomers[Tab * Cfg.Relations + (B - 1)];
        }
      }
      for (unsigned Tab = 0; Tab < NumTables && *OkPtr; ++Tab) {
        for (unsigned Id = 0; Id < Cfg.Relations; ++Id) {
          uint64_t Val = 0;
          if (!Tables[Tab].lookup(X, Id, &Val))
            continue;
          auto *Res = reinterpret_cast<Resource *>(Val);
          uint64_t Free = X.load(&Res->Free);
          uint64_t Booked = X.load(&Res->Booked);
          if (Free + Booked != InitialCapacity ||
              Booked != BookedByCustomers[Tab * Cfg.Relations + Id]) {
            *OkPtr = false;
            break;
          }
        }
      }
    });
    return Ok;
  }

private:
  uint64_t randomId(repro::Xorshift &Rng) {
    uint64_t Range =
        std::max<uint64_t>(1, uint64_t(Cfg.Relations) * Cfg.QueryRangePct / 100);
    return Rng.nextBounded(Range);
  }

  Customer *newCustomer() {
    auto *C = static_cast<Customer *>(std::malloc(sizeof(Customer)));
    for (unsigned Tab = 0; Tab < NumTables; ++Tab)
      C->Booking[Tab] = 0;
    AllCustomers.push_back(C);
    return C;
  }

  VacationConfig Cfg;
  workloads::RbTree<STM> Tables[NumTables];
  workloads::RbTree<STM> Customers;
  std::vector<Resource *> InitialResources;
  std::vector<void *> AllCustomers;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_VACATION_H
