//===- bench/bench_extra_extension.cpp - extra ablation ----------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Extra ablation (called out in DESIGN.md, not a paper figure):
// timestamp extension on/off in SwissTM. Without extension a read of a
// too-new version always aborts (TL2-style); with extension the
// transaction revalidates and continues. Expected shape: extension
// matters most for long transactions (STMBench7), little for the
// red-black tree.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

static void sweep(bool Extension, const char *Name) {
  stm::StmConfig Config;
  Config.EnableExtension = Extension;
  for (unsigned Threads : threadSweep()) {
    double B7 = bench7Throughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads,
                                               Workload7::ReadWrite)
                    .Value;
    Report::instance().add("extra-extension", "stmbench7-read-write", Name,
                           Threads, "tx_per_s", B7);
    double Rb = rbTreeThroughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads)
                    .Value;
    Report::instance().add("extra-extension", "rbtree", Name, Threads,
                           "tx_per_s", Rb);
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  sweep(true, "extension-on");
  sweep(false, "extension-off");
  Report::instance().print(
      "extra", "timestamp extension on/off (SwissTM)");
  return 0;
}
