//===- stm/rstm/Rstm.cpp - RSTM-like baseline ------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009). The contention managers
// live in stm/core/ContentionManager.h, instantiated in AsPolka mode.
//
//===----------------------------------------------------------------------===//

#include "stm/rstm/Rstm.h"

#include "support/Backoff.h"

using namespace stm;
using namespace stm::rstm;

static RstmGlobals GlobalState;

RstmGlobals &stm::rstm::rstmGlobals() { return GlobalState; }

void Rstm::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                         resolvedLockShards(Config));
  // The commit counter advances under the configured clock policy; the
  // greedy-ts always increments (the CM needs unique timestamps).
  GlobalState.CommitCounter.reset(Config.Clock, resolvedClockShards(Config));
  GlobalState.GreedyTs.reset();
}

void Rstm::globalShutdown() { globalTeardown(GlobalState.Table); }

RstmTx::RstmTx(unsigned Slot) : TxBase(Slot) {
  GlobalState.Descriptors[Slot].store(this, std::memory_order_release);
}

RstmTx::~RstmTx() {
  // Normally a no-op: ThreadScope runs threadShutdown() (which
  // unpublishes) before retiring, and the slot may meanwhile carry a
  // successor. The CAS keeps constructor/destructor symmetry for
  // descriptors constructed without a ThreadScope.
  RstmTx *Self = this;
  GlobalState.Descriptors[Slot].compare_exchange_strong(
      Self, nullptr, std::memory_order_acq_rel);
}

void RstmTx::onStart() {
  baseStart();
  ReadLog.clear();
  VisibleReads.clear();
  WriteLog.clear();
  Acquired.clear();
  WSetMap.clear();
  beginEpoch(GlobalState.CommitCounter);
  Cm.onStart(GlobalState.Config, GlobalState.GreedyTs, FreshStart);
}

void RstmTx::maybeValidate() {
  if (GlobalState.Config.RstmVisibleReads)
    return; // visible readers are protected by their reader bits
  uint64_t Counter = GlobalState.CommitCounter.load();
  // The commit-counter heuristic requires every committer to uniquely
  // advance the counter: only then does "counter unmoved" imply
  // "nothing committed since the last check". Under gv4 a committer can
  // adopt an already-published value and under gv5 commits never move
  // the counter at all, so both degrade to unconditional revalidation —
  // RSTM's pre-heuristic behaviour, correct but O(read set) per read.
  if (GlobalState.CommitCounter.kind() == ClockKind::Gv1 &&
      Counter == ValidTs)
    return; // commit-counter heuristic: nothing committed, still valid
  if (!revalidate())
    rollback();
  ValidTs = Counter;
  repro::ThreadRegistry::publishStart(Slot, ValidTs);
}

bool RstmTx::validateReadSet() {
  for (const ReadEntry &R : ReadLog) {
    Word Cur = R.Rec->Owner.load(std::memory_order_acquire);
    if (Cur == R.Seen)
      continue;
    if (orecIsOwned(Cur) && orecOwner(Cur) == this) {
      // We acquired this stripe after reading it: valid iff nothing
      // committed in between, i.e. the pre-acquisition version matches
      // what we read.
      bool Ok = false;
      for (const AcquiredOrec &A : Acquired) {
        if (A.Rec == R.Rec) {
          Ok = A.OldValue == R.Seen;
          break;
        }
      }
      if (Ok)
        continue;
    }
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(R.Rec), Cur);
    return false;
  }
  return true;
}

Word RstmTx::load(const Word *Addr) {
  checkKill();
  ++Stats.Reads;
  Cm.noteAccess();

  // Read-after-write from the redo log.
  if (!WriteLog.empty()) {
    uint32_t Idx = WSetMap.lookup(Addr);
    if (Idx != ~0u)
      return WriteLog[Idx].Value;
  }

  Orec &Rec = GlobalState.Table.entryFor(Addr);

  if (GlobalState.Config.RstmVisibleReads) {
    uint64_t MyBit = uint64_t(1) << Slot;
    bool Held =
        (Rec.Readers.load(std::memory_order_relaxed) & MyBit) != 0;
    if (!Held) {
      while (true) {
        STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Rec),
                      MyBit);
        Rec.Readers.fetch_or(MyBit, std::memory_order_acq_rel);
        Word V = Rec.Owner.load(std::memory_order_acquire);
        if (!orecIsCommitting(V) || orecOwner(V) == this)
          break;
        // A writer is in write-back: retreat and wait for it to finish.
        Rec.Readers.fetch_and(~MyBit, std::memory_order_acq_rel);
        unsigned SpinStep = 0;
        while (orecIsCommitting(
            Rec.Owner.load(std::memory_order_acquire))) {
          STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Rec), V);
          checkKill();
          repro::spinWait(SpinStep);
        }
      }
      VisibleReads.push_back(&Rec);
    }
    // With the reader bit held, no writer can reach write-back, so the
    // memory word is stable and consistent.
    return racyLoad(Addr);
  }

  // Invisible read: consistent (orec, value, orec) snapshot; an owned
  // but not-yet-committing stripe still holds the old (committed)
  // values in memory, so it may be read -- this mirrors RSTM's reads
  // of an object's old clone.
  Word V1 = Rec.Owner.load(std::memory_order_acquire);
  Word Value;
  unsigned SpinStep = 0;
  while (true) {
    STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Rec), V1);
    if (orecIsCommitting(V1) && orecOwner(V1) != this) {
      checkKill();
      repro::spinWait(SpinStep);
      V1 = Rec.Owner.load(std::memory_order_acquire);
      continue;
    }
    Value = racyLoad(Addr);
    Word V2 = Rec.Owner.load(std::memory_order_acquire);
    if (V1 == V2)
      break;
    V1 = V2;
  }

  ReadLog.push_back(ReadEntry{&Rec, V1});
  maybeValidate();
  return Value;
}

void RstmTx::store(Word *Addr, Word Value) {
  checkKill();
  ++Stats.Writes;
  Cm.noteAccess();

  uint32_t Idx = WSetMap.lookup(Addr);
  if (Idx != ~0u) {
    WriteLog[Idx].Value = Value;
    return;
  }
  WSetMap.insert(Addr, static_cast<uint32_t>(WriteLog.size()));
  WriteLog.push_back(WriteEntry{Addr, Value});

  if (GlobalState.Config.RstmEagerAcquire)
    acquireOrec(GlobalState.Table.entryFor(Addr));
}

void RstmTx::acquireOrec(Orec &Rec) {
  Word Mine = reinterpret_cast<Word>(this) | 1;
  unsigned Attempts = 0;
  while (true) {
    Word V = Rec.Owner.load(std::memory_order_acquire);
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Rec), V);
    if (orecIsOwned(V)) {
      if (orecOwner(V) == this)
        return; // stripe already ours (another word, or re-acquire)
      // Note the contended stripe for both parties before the CM can
      // kill either; the victim's abort stays attributed.
      RstmTx *Owner = orecOwner(V);
      STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                             GlobalState.Table.indexOfEntry(&Rec), V);
      if (Owner != nullptr)
        STM_DIAG_NOTE_CONFLICT(Owner->threadSlot(), nullptr,
                               GlobalState.Table.indexOfEntry(&Rec), V);
      if (Cm.shouldAbort(GlobalState.Config, Owner, this, Attempts, Rng))
        rollback();
      checkKill();
      repro::spinWait(Attempts);
      continue;
    }
    if (Rec.Owner.compare_exchange_weak(V, Mine, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      Acquired.push_back(AcquiredOrec{&Rec, V});
      break;
    }
  }
  resolveVisibleReaders(Rec);
  maybeValidate();
}

void RstmTx::resolveVisibleReaders(Orec &Rec) {
  if (!GlobalState.Config.RstmVisibleReads)
    return;
  uint64_t MyBit = uint64_t(1) << Slot;
  unsigned Attempts = 0;
  while (true) {
    uint64_t Bits = Rec.Readers.load(std::memory_order_acquire) & ~MyBit;
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Rec), Bits);
    if (Bits == 0)
      return;
    unsigned VictimSlot = static_cast<unsigned>(__builtin_ctzll(Bits));
    RstmTx *Victim =
        GlobalState.Descriptors[VictimSlot].load(std::memory_order_acquire);
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(&Rec), Bits);
    STM_DIAG_NOTE_CONFLICT(VictimSlot, nullptr,
                           GlobalState.Table.indexOfEntry(&Rec), Bits);
    if (Cm.shouldAbort(GlobalState.Config, Victim, this, Attempts, Rng))
      rollback();
    checkKill();
    repro::spinWait(Attempts);
  }
}

void RstmTx::commit() {
  assert(Depth > 0 && "commit outside a transaction");
  checkKill();

  uint64_t MyBit = uint64_t(1) << Slot;
  auto ClearReaderBits = [&] {
    for (Orec *Rec : VisibleReads)
      Rec->Readers.fetch_and(~MyBit, std::memory_order_acq_rel);
  };

  if (WriteLog.empty()) {
    ClearReaderBits();
    ++Stats.ReadOnlyCommits;
    baseCommit(GlobalState.CommitCounter.load());
    return;
  }

  // Lazy acquire: take every stripe now (duplicates collapse inside
  // acquireOrec via the owner==this check).
  if (!GlobalState.Config.RstmEagerAcquire)
    for (const WriteEntry &W : WriteLog)
      acquireOrec(GlobalState.Table.entryFor(W.Addr));

  // Commit timestamp under the configured clock policy.
  CommitStamp Stamp = takeCommitStamp(GlobalState.CommitCounter, [this] {
    uint64_t MaxOverwritten = 0;
    for (const AcquiredOrec &A : Acquired)
      if (orecVersion(A.OldValue) > MaxOverwritten)
        MaxOverwritten = orecVersion(A.OldValue);
    return MaxOverwritten;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  // The "counter still follows my valid-ts" shortcut is gv1-only here —
  // stronger than core::TimeValidation::mustValidateCommit. RSTM readers
  // may take an owned-but-not-yet-committing stripe's *old* value, so a
  // gv4 adopter sharing my valid-ts can write back a stripe I read
  // without my adoption-time validation ever seeing a lock transition;
  // only unique counter increments order such commits observably.
  if (!GlobalState.Config.RstmVisibleReads &&
      (GlobalState.CommitCounter.kind() != ClockKind::Gv1 ||
       Ts != ValidTs + 1) &&
      !revalidate())
    rollback();

  // Enter write-back: flag every owned stripe as committing, then make
  // sure no visible reader still depends on the old values.
  Word Committing = reinterpret_cast<Word>(this) | 3;
  for (const AcquiredOrec &A : Acquired)
    A.Rec->Owner.store(Committing, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const AcquiredOrec &A : Acquired)
    resolveVisibleReaders(*A.Rec);

  for (const WriteEntry &W : WriteLog) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexFor(W.Addr), Ts);
    racyStore(W.Addr, W.Value);
  }

  Word Release = orecMake(Ts);
  for (const AcquiredOrec &A : Acquired)
    A.Rec->Owner.store(Release, std::memory_order_release);

  // Under gv5 RSTM must publish its stamp itself: the other backends'
  // readers drag a deferred counter forward on version-comparison
  // misses, but RSTM validates by equality and never calls observe —
  // with a forever-zero counter every transaction would publish
  // start-ts 0 and the timestamp-quiescence reclaimers (TxMemory /
  // RetiredPool) could never free a retired block while the thread
  // lives. One CAS-max per update commit keeps the deferred policy's
  // sharing semantics (same-ts commits still occur) and bounds memory.
  if (GlobalState.CommitCounter.kind() == ClockKind::Gv5)
    GlobalState.CommitCounter.advanceTo(Ts);

  ClearReaderBits();

  // Retire tag: a counter sample from *after* the release, not the
  // stamp. Unlike the other backends, an RSTM invisible reader may take
  // an owned-but-not-yet-committing stripe's old value — including a
  // pointer this commit is about to unlink and txFree — so a
  // transaction that began after our stamp was minted (its start
  // timestamp exceeds Ts once the counter outruns a still-committing
  // writer, routine under gv5 and a narrow increment-to-write-back
  // window under gv1) can still hold the old pointer. Any transaction
  // whose published start exceeds this post-release sample either began
  // after the unlink was visible or revalidated past it (equality check
  // fails on the released orec), so the quiescence horizon is sound.
  uint64_t RetireTag = GlobalState.CommitCounter.load();
  // The PR 5 regression knob resurrects the original bug: tagging
  // retired blocks with the commit stamp instead of the post-release
  // counter sample, re-opening the reclamation window above.
  if (STM_DIAG_INJECTED(RstmStampRetireTag))
    RetireTag = Ts;
  baseCommit(RetireTag);
}

void RstmTx::rollback() {
  for (const AcquiredOrec &A : Acquired)
    A.Rec->Owner.store(A.OldValue, std::memory_order_release);
  uint64_t MyBit = uint64_t(1) << Slot;
  for (Orec *Rec : VisibleReads)
    Rec->Readers.fetch_and(~MyBit, std::memory_order_acq_rel);
  baseAbort();
  Cm.onRollback(GlobalState.Config, Rng, SuccessiveAborts);
  std::longjmp(*EnvTarget, 1);
}
