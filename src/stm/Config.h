//===- stm/Config.h - runtime configuration of the STMs --------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every knob the paper's sensitivity analyses touch (lock granularity,
// the two-phase promotion threshold Wn, back-off, timestamp extension,
// contention-manager choice, RSTM's acquire/visibility variants) is
// runtime-configurable so the ablation benches can sweep them without
// rebuilding.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CONFIG_H
#define STM_CONFIG_H

namespace stm {

/// Contention-management policies. TwoPhase is the paper's contribution
/// (Algorithm 2); the others are the baselines of Sections 2.1 and 5.
enum class CmKind {
  TwoPhase,   ///< timid until Wn writes, then Greedy (SwissTM default)
  Timid,      ///< always abort the attacker
  Greedy,     ///< global start timestamp, older transaction wins
  Serializer, ///< Greedy with a fresh timestamp on every restart
  Polka       ///< priority = accesses, exponential back-off waits
};

/// Returns a stable human-readable name for \p Kind.
inline const char *cmKindName(CmKind Kind) {
  switch (Kind) {
  case CmKind::TwoPhase:
    return "two-phase";
  case CmKind::Timid:
    return "timid";
  case CmKind::Greedy:
    return "greedy";
  case CmKind::Serializer:
    return "serializer";
  case CmKind::Polka:
    return "polka";
  }
  return "unknown";
}

/// Global configuration applied at STM::globalInit time.
struct StmConfig {
  /// log2 of the number of lock-table entries. The paper uses 2^22; we
  /// default to 2^20 to keep four STM instances resident in one test
  /// process. Power of two so the index is a mask (Figure 1).
  unsigned LockTableSizeLog2 = 20;

  /// log2 of the number of bytes that map to one lock-table entry. The
  /// paper's sensitivity analysis (Figure 13) selects 2^4 = 16 bytes.
  unsigned GranularityLog2 = 4;

  /// Number of writes after which a transaction enters the second
  /// (Greedy) phase of the two-phase contention manager (paper: Wn = 10).
  unsigned WnThreshold = 10;

  /// Randomized linear back-off after rollback (Figure 11 ablation).
  bool EnableRollbackBackoff = true;

  /// Timestamp extension on read/validation (SwissTM/TinySTM); when off,
  /// a too-new version always aborts, as in TL2.
  bool EnableExtension = true;

  /// Contention manager (SwissTM and RSTM honour this; TL2/TinySTM are
  /// timid by design, matching their published defaults).
  CmKind Cm = CmKind::TwoPhase;

  /// Quiescence-based privatization safety (the paper's Section 6
  /// future-work item, implemented here for SwissTM): every committing
  /// update transaction waits until all in-flight transactions have
  /// validated past its commit timestamp, so memory made private by the
  /// commit can immediately be accessed non-transactionally. Off by
  /// default (the paper's configuration).
  bool PrivatizationSafe = false;

  /// RSTM variant: eager (encounter-time) vs lazy (commit-time) acquire.
  bool RstmEagerAcquire = true;

  /// RSTM variant: visible vs invisible reads.
  bool RstmVisibleReads = false;
};

} // namespace stm

#endif // STM_CONFIG_H
