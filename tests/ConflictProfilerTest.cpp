//===- tests/ConflictProfilerTest.cpp - shadow-map conflict profiler -----===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Unit coverage for the diag conflict profiler (stm/diag/Profiler.h):
// direct-API attribution accounting, note arming/disarming across
// attempts, false-sharing detection, reset — all runnable in any
// build. The STM_DIAG-gated half drives the real hook sites: a forced
// read/write conflict must leave every abort attributed to the hot
// stripe (the >= 95% coverage criterion, met here at 100%), and two
// variables sharing one two-word granularity stripe must surface in
// the false-sharing report.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/diag/Hooks.h"
#include "stm/diag/Profiler.h"

#include <array>
#include <atomic>
#include <thread>
#include <vector>

namespace {

using stm::diag::Profiler;

/// Enables the profiler for one test body and restores the disabled
/// default afterwards, so profiler state never leaks across tests.
class ProfilerScope {
public:
  ProfilerScope() {
    Profiler::instance().enable();
    Profiler::instance().reset();
  }
  ~ProfilerScope() {
    Profiler::instance().reset();
    Profiler::instance().disable();
  }
};

//===----------------------------------------------------------------------===//
// Direct-API unit tests (any build)
//===----------------------------------------------------------------------===//

TEST(ConflictProfilerTest, AttributesAbortToNotedStripe) {
  ProfilerScope Scope;
  Profiler &P = Profiler::instance();
  repro::TxStats Stats;
  stm::Word Cell = 0;

  P.noteBegin(1);
  P.noteConflict(1, &Cell, /*Stripe=*/42, /*LockWord=*/7);
  P.noteAbort(1, Stats);

  EXPECT_EQ(1u, Stats.AbortsAttributed);
  stm::diag::ProfileReport R = P.report();
  EXPECT_EQ(1u, R.ConflictNotes);
  EXPECT_EQ(1u, R.AttributedAborts);
  EXPECT_EQ(0u, R.UnattributedAborts);
  ASSERT_EQ(1u, R.Stripes.size());
  EXPECT_EQ(42u, R.Stripes[0].Stripe);
  EXPECT_EQ(1u, R.Stripes[0].Conflicts);
  EXPECT_EQ(1u, R.Stripes[0].Aborts);
  EXPECT_EQ(reinterpret_cast<uint64_t>(&Cell), R.Stripes[0].AddrA);
  EXPECT_FALSE(R.Stripes[0].FalseSharing);
}

TEST(ConflictProfilerTest, AbortWithoutNoteIsUnattributed) {
  ProfilerScope Scope;
  Profiler &P = Profiler::instance();
  repro::TxStats Stats;

  P.noteBegin(2);
  P.noteAbort(2, Stats);

  EXPECT_EQ(0u, Stats.AbortsAttributed);
  stm::diag::ProfileReport R = P.report();
  EXPECT_EQ(0u, R.AttributedAborts);
  EXPECT_EQ(1u, R.UnattributedAborts);
}

// A note may only attribute an abort of the attempt that recorded it:
// Begin disarms whatever the previous attempt left behind.
TEST(ConflictProfilerTest, BeginDisarmsStaleNote) {
  ProfilerScope Scope;
  Profiler &P = Profiler::instance();
  repro::TxStats Stats;
  stm::Word Cell = 0;

  P.noteBegin(3);
  P.noteConflict(3, &Cell, 9, 0);
  P.noteBegin(3); // next attempt: the stale note must not stick
  P.noteAbort(3, Stats);

  EXPECT_EQ(0u, Stats.AbortsAttributed);
  EXPECT_EQ(1u, P.report().UnattributedAborts);
}

TEST(ConflictProfilerTest, DetectsFalseSharingOnOneStripe) {
  ProfilerScope Scope;
  Profiler &P = Profiler::instance();
  stm::Word CellA = 0;
  stm::Word CellB = 0;

  // Same stripe, same address twice: not false sharing.
  P.noteConflict(0, &CellA, 5, 0);
  P.noteConflict(0, &CellA, 5, 0);
  stm::diag::ProfileReport R = P.report();
  EXPECT_EQ(0u, R.FalseSharingStripes);

  // A second distinct address through the same stripe entry is.
  P.noteConflict(1, &CellB, 5, 0);
  R = P.report();
  EXPECT_EQ(1u, R.FalseSharingStripes);
  ASSERT_EQ(1u, R.Stripes.size());
  EXPECT_TRUE(R.Stripes[0].FalseSharing);
  EXPECT_EQ(reinterpret_cast<uint64_t>(&CellA), R.Stripes[0].AddrA);
  EXPECT_EQ(reinterpret_cast<uint64_t>(&CellB), R.Stripes[0].AddrB);

  // Null addresses (validation-only sites) never pollute the pair.
  P.noteConflict(2, nullptr, 6, 0);
  R = P.report();
  EXPECT_EQ(1u, R.FalseSharingStripes);
}

TEST(ConflictProfilerTest, ResetClearsEverything) {
  ProfilerScope Scope;
  Profiler &P = Profiler::instance();
  repro::TxStats Stats;
  stm::Word Cell = 0;

  P.noteConflict(0, &Cell, 11, 0);
  P.noteAbort(0, Stats);
  P.reset();

  stm::diag::ProfileReport R = P.report();
  EXPECT_TRUE(R.Stripes.empty());
  EXPECT_EQ(0u, R.ConflictNotes);
  EXPECT_EQ(0u, R.AttributedAborts);
  EXPECT_EQ(0u, R.UnattributedAborts);
  EXPECT_EQ(0u, R.DroppedStripes);
}

TEST(ConflictProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler &P = Profiler::instance();
  P.reset();
  P.disable();
  repro::TxStats Stats;
  stm::Word Cell = 0;

  P.noteConflict(0, &Cell, 13, 0);
  P.noteAbort(0, Stats);

  EXPECT_EQ(0u, Stats.AbortsAttributed);
  stm::diag::ProfileReport R = P.report();
  EXPECT_EQ(0u, R.ConflictNotes);
  EXPECT_TRUE(R.Stripes.empty());
}

#ifdef STM_DIAG

//===----------------------------------------------------------------------===//
// Hook-site integration (STM_DIAG builds)
//===----------------------------------------------------------------------===//

/// Forces a deterministic read/write invalidation on every backend:
/// T1 reads X inside a transaction, parks on an application flag while
/// T0 commits a new version of X, then writes Y and tries to commit —
/// the first attempt must abort on validation with X's stripe noted,
/// and the flag state makes the retry succeed. The scenario never
/// depends on preemption timing, so the expected abort count is exact.
class ProfilerAttributionTest : public repro_test::RuntimeSuite {};

TEST_P(ProfilerAttributionTest, ForcedConflictIsFullyAttributed) {
  ProfilerScope Scope;
  alignas(64) static stm::Word X;
  alignas(64) static stm::Word Y;
  X = Y = 0;

  std::atomic<bool> ReadDone{false};
  std::atomic<bool> WriteDone{false};
  std::vector<repro::TxStats> Stats(2);

  repro_test::runThreads<repro_test::Rt>(2, [&](unsigned I, auto &Tx) {
    if (I == 0) {
      while (!ReadDone.load(std::memory_order_acquire))
        std::this_thread::yield();
      stm::atomically(Tx, [&](auto &T) { T.store(&X, T.load(&X) + 1); });
      WriteDone.store(true, std::memory_order_release);
    } else {
      stm::atomically(Tx, [&](auto &T) {
        stm::Word V = T.load(&X);
        ReadDone.store(true, std::memory_order_release);
        while (!WriteDone.load(std::memory_order_acquire))
          std::this_thread::yield();
        T.store(&Y, V + 1);
      });
    }
    Stats[I] = Tx.stats();
  });

  repro::TxStats Total;
  for (const repro::TxStats &S : Stats)
    Total += S;

  // T1's first attempt read the pre-commit X and must have aborted;
  // every abort must carry an attribution (the >= 95% acceptance
  // criterion, met at 100% in this deterministic scenario).
  EXPECT_GE(Total.Aborts, 1u);
  EXPECT_EQ(Total.Aborts, Total.AbortsAttributed);

  stm::diag::ProfileReport R = Profiler::instance().report();
  EXPECT_EQ(Total.Aborts, R.AttributedAborts);
  EXPECT_EQ(0u, R.UnattributedAborts);
  ASSERT_FALSE(R.Stripes.empty());
  // The report's hottest stripe carries the aborts.
  EXPECT_GE(R.Stripes[0].Aborts, 1u);
}

STM_INSTANTIATE_RUNTIME_SUITE(ProfilerAttributionTest);

// Lock-table false sharing made visible: with 2^4-byte granularity two
// adjacent words share one stripe. Conflicting on each of them in turn
// through TinySTM's encounter-time R/W detection (which notes the
// faulting *address*) must flag the stripe as falsely shared with both
// addresses recorded.
TEST(ProfilerFalseSharingTest, TwoWordGranularityStripeIsFlagged) {
  stm::StmConfig Config;
  Config.LockTableSizeLog2 = 12;
  Config.GranularityLog2 = 4; // 16 bytes = two words per stripe
  stm::TinyStm::globalInit(Config);
  ProfilerScope Scope;

  alignas(16) static std::array<stm::Word, 2> Pair;
  Pair = {0, 0};

  for (unsigned K = 0; K < 2; ++K) {
    std::atomic<bool> Locked{false};
    std::atomic<bool> ReaderRan{false};
    repro_test::runThreads<stm::TinyStm>(2, [&](unsigned I, auto &Tx) {
      if (I == 0) {
        // Holds the encounter-time write lock on Pair[K] until the
        // reader has taken (and aborted on) it at least once; the
        // flags are armed from inside the transaction body so the
        // reader is guaranteed to meet the held lock.
        stm::atomically(Tx, [&](auto &T) {
          T.store(&Pair[K], K + 1);
          Locked.store(true, std::memory_order_release);
          while (!ReaderRan.load(std::memory_order_acquire))
            std::this_thread::yield();
        });
      } else {
        while (!Locked.load(std::memory_order_acquire))
          std::this_thread::yield();
        stm::atomically(Tx, [&](auto &T) {
          ReaderRan.store(true, std::memory_order_release);
          (void)T.load(&Pair[K]);
        });
      }
    });
  }

  stm::TinyStm::globalShutdown();

  stm::diag::ProfileReport R = Profiler::instance().report();
  EXPECT_GE(R.FalseSharingStripes, 1u);
  bool Found = false;
  uint64_t A0 = reinterpret_cast<uint64_t>(&Pair[0]);
  uint64_t A1 = reinterpret_cast<uint64_t>(&Pair[1]);
  for (const stm::diag::StripeProfile &S : R.Stripes)
    if (S.FalseSharing && ((S.AddrA == A0 && S.AddrB == A1) ||
                           (S.AddrA == A1 && S.AddrB == A0)))
      Found = true;
  EXPECT_TRUE(Found)
      << "the two-word stripe was not reported as falsely shared";
}

#else // !STM_DIAG

TEST(ProfilerIntegrationTest, SkippedWithoutStmDiag) {
  GTEST_SKIP() << "hook-site integration tests need -DSTM_DIAG=ON";
}

#endif // STM_DIAG

} // namespace
