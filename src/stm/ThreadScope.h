//===- stm/ThreadScope.h - per-thread STM attachment ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef STM_THREADSCOPE_H
#define STM_THREADSCOPE_H

#include "stm/EpochManager.h"
#include "stm/core/SharedArena.h"
#include "support/ThreadRegistry.h"

namespace stm {

/// RAII attachment of the current thread to an STM: claims a registry
/// slot and constructs the descriptor. Create exactly one per worker
/// thread.
///
/// The descriptor is heap-allocated and NOT destroyed when the scope
/// dies: a concurrent transaction that observed a stripe lock word may
/// still dereference the descriptor's write-log entries (or, for RSTM,
/// the descriptor itself) after this thread has exited. Destruction
/// therefore runs threadShutdown() — which unlinks the descriptor from
/// all globally visible state and drains its retired memory — and then
/// parks the descriptor on the EpochManager's limbo list, where it is
/// destroyed only after every transaction that could have observed it
/// has finished (grace period).
template <typename STM> class ThreadScope {
public:
  ThreadScope()
      : Slot(repro::ThreadRegistry::acquireSlot()),
        Descriptor(new typename STM::Tx(Slot)) {
    if (SharedArena::sharedActive())
      SharedArena::instance().bindSlot(Slot);
  }

  ~ThreadScope() {
    Descriptor->threadShutdown();
    EpochManager::retireObject(Descriptor);
    if (SharedArena::sharedActive())
      SharedArena::instance().unbindSlot(Slot);
    repro::ThreadRegistry::releaseSlot(Slot);
  }

  ThreadScope(const ThreadScope &) = delete;
  ThreadScope &operator=(const ThreadScope &) = delete;

  typename STM::Tx &tx() { return *Descriptor; }

private:
  unsigned Slot;
  typename STM::Tx *Descriptor;
};

} // namespace stm

#endif // STM_THREADSCOPE_H
