//===- stm/core/SharedArena.cpp - shared-state placement layer ------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "stm/core/SharedArena.h"

#include "stm/Config.h"
#include "stm/EpochManager.h"
#include "stm/core/Clock.h"
#include "support/ThreadRegistry.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace stm;

std::atomic<bool> SharedArena::SharedFlag{false};

namespace {

constexpr uint64_t SegmentMagic = 0x53575453484d3231ull; // "SWTSHM21"
constexpr uint32_t SegmentVersion = 1;
constexpr uint64_t HeaderBytes = 4096;
constexpr unsigned NumUserRoots = 16;
constexpr unsigned NumHeapClasses = 16; // 64..1024 bytes in line steps

/// Segment header at offset 0. Plain fields are written only by the
/// creator before InitComplete is released; the atomics are the live
/// cross-process words.
struct SegmentHeader {
  uint64_t Magic;
  uint32_t Version;
  uint32_t Pad0;
  uint64_t LayoutHash;
  uint64_t BaseAddr;
  uint64_t TotalBytes;
  std::atomic<uint64_t> InitComplete;
  std::atomic<uint64_t> Poison;
  char PoisonWhy[128];
  std::atomic<uint64_t> RecoveryLock; ///< holder pid, 0 = free
  std::atomic<uint64_t> HeapBump;     ///< bytes handed out of the heap region
  std::atomic<uint64_t> HeapHeads[NumHeapClasses]; ///< {tag:32, unit+1:32}
  std::atomic<Word> UserRoots[NumUserRoots];
  std::atomic<Word> OrecToken; ///< slot+1 of the irrevocable tx, 0 = free
  // Geometry echo so a mismatch diagnostic can name both sides.
  uint32_t SizeLog2, GranLog2, LockShards, ClockKindV, ClockShardsV,
      BackendV, SingleFenceV, DataMb;
};
static_assert(sizeof(SegmentHeader) <= HeaderBytes,
              "header must fit its reserved page");

/// Per-slot crash record, one cache line each.
struct alignas(repro::CacheLineSize) SlotRecord {
  std::atomic<uint64_t> Pid;
  std::atomic<uint64_t> Heartbeat;
  std::atomic<uint64_t> Phase;
  std::atomic<uint64_t> IntentCount;
  std::atomic<uint64_t> Overflow;
};
static_assert(sizeof(SlotRecord) == repro::CacheLineSize, "one line per slot");

/// Byte counts of each segment region, in layout order after the header.
struct Layout {
  uint64_t Epochs, GlobalEpoch, ActiveSince, SlotMask, Records, Intents,
      Clock, Table, Heap;
  uint64_t total() const {
    return HeaderBytes + Epochs + GlobalEpoch + ActiveSince + SlotMask +
           Records + Intents + Clock + Table + Heap;
  }
};

Layout layoutFor(const StmConfig &Config) {
  Layout L;
  L.Epochs = uint64_t(repro::MaxThreads) * repro::CacheLineSize;
  L.GlobalEpoch = repro::CacheLineSize;
  L.ActiveSince = uint64_t(repro::MaxThreads) * repro::CacheLineSize;
  L.SlotMask = repro::CacheLineSize;
  L.Records = uint64_t(repro::MaxThreads) * sizeof(SlotRecord);
  L.Intents = uint64_t(repro::MaxThreads) * SharedArena::IntentCapacity *
              sizeof(SharedArena::Intent);
  L.Clock = uint64_t(GlobalClock::MaxShards) * repro::CacheLineSize;
  // One spare padded entry of slack, mirroring LockTable's private
  // allocation, and every backend pads an entry to one cache line.
  L.Table = ((uint64_t(1) << Config.LockTableSizeLog2) + 1) *
            repro::CacheLineSize;
  L.Heap = uint64_t(Config.SharedDataMb) << 20;
  return L;
}

/// FNV-1a over every knob two processes must agree on before they may
/// share lock words. A mismatch on any of these is memory corruption
/// waiting to happen, so it must fail the attach, loudly.
uint64_t layoutHash(const StmConfig &Config) {
  uint64_t Fields[] = {SegmentVersion,
                       uint64_t(Config.Backend),
                       Config.LockTableSizeLog2,
                       Config.GranularityLog2,
                       resolvedLockShards(Config),
                       uint64_t(Config.Clock),
                       resolvedClockShards(Config),
                       Config.SingleFence ? 1u : 0u,
                       repro::MaxThreads,
                       SharedArena::IntentCapacity,
                       Config.SharedDataMb};
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint64_t F : Fields) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (F >> (B * 8)) & 0xff;
      H *= 0x100000001b3ull;
    }
  }
  return H;
}

[[noreturn]] void arenaFatal(const char *Msg, const char *Arg, int Err) {
  std::fprintf(stderr, "stm: shared arena: %s%s%s%s%s\n", Msg,
               Arg[0] != '\0' ? " " : "", Arg, Err != 0 ? ": " : "",
               Err != 0 ? std::strerror(Err) : "");
  std::abort();
}

void normalizeName(const char *In, char *Out, std::size_t OutLen) {
  if (In[0] == '\0')
    arenaFatal("empty segment name", "", 0);
  std::size_t Off = 0;
  if (In[0] != '/')
    Out[Off++] = '/';
  std::size_t Len = std::strlen(In);
  if (Off + Len + 1 > OutLen)
    arenaFatal("segment name too long:", In, 0);
  std::memcpy(Out + Off, In, Len + 1);
}

bool pidDead(uint64_t Pid) {
  return kill(pid_t(Pid), 0) == -1 && errno == ESRCH;
}

/// Fallback storage so the orec token and user roots work in private
/// mode through the same accessors.
std::atomic<Word> FallbackOrecToken{0};
std::atomic<Word> FallbackUserRoots[NumUserRoots];

std::atomic<uint64_t> RecoveryCount{0};

} // namespace

SharedArena &SharedArena::instance() {
  static SharedArena A;
  return A;
}

//===----------------------------------------------------------------------===//
// Private backing
//===----------------------------------------------------------------------===//

void *SharedArena::mapPrivate(std::size_t Bytes) {
  void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  return P == MAP_FAILED ? nullptr : P;
}

void SharedArena::unmapPrivate(void *P, std::size_t Bytes) {
  if (P != nullptr)
    munmap(P, Bytes);
}

//===----------------------------------------------------------------------===//
// Setup / teardown
//===----------------------------------------------------------------------===//

void SharedArena::setup(const StmConfig &Config) {
  if (Mode != Backing::Unplaced)
    teardown();
  if (Config.SharedSegment[0] == '\0') {
    Mode = Backing::Private;
    Creator = true;
    return;
  }
  setupShared(Config);
}

void SharedArena::setupShared(const StmConfig &Config) {
  normalizeName(Config.SharedSegment, SegName, sizeof(SegName));
  Layout L = layoutFor(Config);
  uint64_t Hash = layoutHash(Config);
  MappedBytes = L.total();
  TableBytes = L.Table;

  int Fd = shm_open(SegName, O_CREAT | O_EXCL | O_RDWR, 0600);
  if (Fd >= 0) {
    createSegment(Config, Fd, Hash);
  } else if (errno == EEXIST) {
    Fd = shm_open(SegName, O_RDWR, 0600);
    if (Fd < 0)
      arenaFatal("cannot open existing segment", SegName, errno);
    attachSegment(Config, Fd, Hash);
  } else {
    arenaFatal("shm_open failed for", SegName, errno);
  }
  close(Fd);
  Mode = Backing::Shared;
  SharedFlag.store(true, std::memory_order_release);
}

void SharedArena::createSegment(const StmConfig &Config, int Fd,
                                uint64_t Hash) {
  if (ftruncate(Fd, off_t(MappedBytes)) != 0)
    arenaFatal("ftruncate failed for", SegName, errno);
  void *Map = mmap(nullptr, MappedBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   Fd, 0);
  if (Map == MAP_FAILED)
    arenaFatal("mmap failed for", SegName, errno);
  Base = Map;
  Creator = true;

  auto *H = new (Base) SegmentHeader{};
  H->Magic = SegmentMagic;
  H->Version = SegmentVersion;
  H->LayoutHash = Hash;
  H->BaseAddr = reinterpret_cast<uint64_t>(Base);
  H->TotalBytes = MappedBytes;
  H->SizeLog2 = Config.LockTableSizeLog2;
  H->GranLog2 = Config.GranularityLog2;
  H->LockShards = resolvedLockShards(Config);
  H->ClockKindV = uint32_t(Config.Clock);
  H->ClockShardsV = resolvedClockShards(Config);
  H->BackendV = uint32_t(Config.Backend);
  H->SingleFenceV = Config.SingleFence ? 1 : 0;
  H->DataMb = Config.SharedDataMb;

  bindRegions(/*AsCreator=*/true);
  // Publish only after the registry/epoch redirection carried the
  // creator's live values in: an attacher synchronizes on this flag.
  H->InitComplete.store(1, std::memory_order_release);
}

void SharedArena::attachSegment(const StmConfig &Config, int Fd,
                                uint64_t Hash) {
  (void)Config;
  // The creator may still be between shm_open and ftruncate/init;
  // bounded spin until the header page exists and is initialized.
  struct timespec Nap = {0, 2 * 1000 * 1000};
  struct stat St;
  for (unsigned Tries = 0;; ++Tries) {
    if (fstat(Fd, &St) != 0)
      arenaFatal("fstat failed for", SegName, errno);
    if (uint64_t(St.st_size) >= HeaderBytes)
      break;
    if (Tries > 5000)
      arenaFatal("no header ever appeared in segment (creator died?)", SegName, 0);
    nanosleep(&Nap, nullptr);
  }
  auto *Peek = static_cast<SegmentHeader *>(
      mmap(nullptr, HeaderBytes, PROT_READ, MAP_SHARED, Fd, 0));
  if (Peek == MAP_FAILED)
    arenaFatal("mmap of header page failed for", SegName, errno);
  for (unsigned Tries = 0;
       Peek->InitComplete.load(std::memory_order_acquire) == 0; ++Tries) {
    if (Tries > 5000)
      arenaFatal("segment never finished init (creator died?)", SegName, 0);
    nanosleep(&Nap, nullptr);
  }
  if (Peek->Magic != SegmentMagic || Peek->Version != SegmentVersion)
    arenaFatal("not a compatible STM segment:", SegName, 0);
  if (Peek->LayoutHash != Hash || Peek->TotalBytes != MappedBytes) {
    std::fprintf(stderr,
                 "stm: shared arena: layout mismatch attaching %s\n"
                 "  segment: backend=%u table=2^%u gran=2^%u lockshards=%u "
                 "clock=%u/%u singlefence=%u heap=%uMB\n"
                 "  refusing to attach: a mismatched process would corrupt "
                 "its peers\n",
                 SegName, Peek->BackendV, Peek->SizeLog2, Peek->GranLog2,
                 Peek->LockShards, Peek->ClockKindV, Peek->ClockShardsV,
                 Peek->SingleFenceV, Peek->DataMb);
    std::abort();
  }
  void *WantBase = reinterpret_cast<void *>(Peek->BaseAddr);
  munmap(Peek, HeaderBytes);
  // Raw pointers (descriptor handles aside, the shared heap holds real
  // data-structure pointers) only make sense at one address: map at the
  // creator's base or not at all.
  void *Map = mmap(WantBase, MappedBytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_FIXED_NOREPLACE, Fd, 0);
  if (Map == MAP_FAILED || Map != WantBase)
    arenaFatal("cannot map segment at the creator's base address "
               "(address-space collision):",
               SegName, Map == MAP_FAILED ? errno : 0);
  Base = Map;
  Creator = false;
  bindRegions(/*AsCreator=*/false);
}

void SharedArena::bindRegions(bool AsCreator) {
  auto *H = static_cast<SegmentHeader *>(Base);
  char *P = static_cast<char *>(Base) + HeaderBytes;
  auto *Epochs = reinterpret_cast<repro::Padded<std::atomic<uint64_t>> *>(P);
  P += uint64_t(repro::MaxThreads) * repro::CacheLineSize;
  auto *GlobalEpoch = reinterpret_cast<std::atomic<uint64_t> *>(P);
  P += repro::CacheLineSize;
  auto *Active = reinterpret_cast<repro::Padded<std::atomic<uint64_t>> *>(P);
  P += uint64_t(repro::MaxThreads) * repro::CacheLineSize;
  auto *Mask = reinterpret_cast<std::atomic<uint64_t> *>(P);
  P += repro::CacheLineSize;
  SlotRecs = P;
  P += uint64_t(repro::MaxThreads) * sizeof(SlotRecord);
  IntentsBase = P;
  P += uint64_t(repro::MaxThreads) * IntentCapacity * sizeof(Intent);
  ClockMem = P;
  P += uint64_t(GlobalClock::MaxShards) * repro::CacheLineSize;
  TableMem = P;
  P += TableBytes;
  HeapBase = P;
  HeapBytes = H->TotalBytes - uint64_t(HeapBase - static_cast<char *>(Base));
  OrecTokenP = &H->OrecToken;

  repro::ThreadRegistry::placeStorage(Active, Mask, AsCreator);
  EpochManager::placeStorage(Epochs, GlobalEpoch, AsCreator);
}

void SharedArena::teardown() {
  if (Mode == Backing::Shared) {
    SharedFlag.store(false, std::memory_order_release);
    // Carry back only the slots this process owns: ones bound to our
    // pid, plus (creator only) ones carried into the segment before any
    // bindSlot ran, whose records still read pid 0. Remote slots must
    // not survive as phantom local registrations.
    uint64_t MyPid = uint64_t(getpid());
    uint64_t Keep = 0;
    uint64_t Mask = repro::ThreadRegistry::activeMask();
    while (Mask != 0) {
      unsigned Slot = unsigned(__builtin_ctzll(Mask));
      Mask &= Mask - 1;
      uint64_t Pid = static_cast<SlotRecord *>(SlotRecs)[Slot].Pid.load(
          std::memory_order_acquire);
      if (Pid == MyPid || (Pid == 0 && Creator))
        Keep |= 1ull << Slot;
    }
    repro::ThreadRegistry::resetStorage(Keep);
    EpochManager::resetStorage(Keep);
    munmap(Base, MappedBytes);
    if (Creator)
      shm_unlink(SegName);
  }
  Mode = Backing::Unplaced;
  Creator = false;
  Base = nullptr;
  MappedBytes = 0;
  TableBytes = 0;
  SlotRecs = nullptr;
  IntentsBase = nullptr;
  ClockMem = nullptr;
  TableMem = nullptr;
  HeapBase = nullptr;
  HeapBytes = 0;
  OrecTokenP = nullptr;
  SegName[0] = '\0';
}

void SharedArena::unlinkSegment(const char *Name) {
  char Buf[72];
  normalizeName(Name, Buf, sizeof(Buf));
  shm_unlink(Buf);
}

//===----------------------------------------------------------------------===//
// Region accessors
//===----------------------------------------------------------------------===//

void *SharedArena::tableRegion(uint64_t Bytes) {
  if (Bytes != TableBytes)
    arenaFatal("lock-table size disagrees with the segment layout", "", 0);
  return TableMem;
}

void *SharedArena::clockRegion() { return ClockMem; }

std::atomic<Word> &SharedArena::orecToken() {
  return OrecTokenP != nullptr ? *OrecTokenP : FallbackOrecToken;
}

std::atomic<Word> &SharedArena::userRoot(unsigned I) {
  if (I >= NumUserRoots)
    arenaFatal("user root index out of range", "", 0);
  if (Mode != Backing::Shared)
    return FallbackUserRoots[I];
  return static_cast<SegmentHeader *>(Base)->UserRoots[I];
}

//===----------------------------------------------------------------------===//
// Shared data heap
//===----------------------------------------------------------------------===//

namespace {
/// Each heap block starts with one allocator-owned cache line: word 0
/// is the size class (0 = bump-only oversize), word 1 the freelist
/// next link (unit+1 encoding, 0 = end). The link lives in the header
/// line, never the payload, so a popped block's new owner can scribble
/// its payload without racing a concurrent popper's next read — the
/// ABA-tagged head CAS rejects such stale pops.
std::atomic<uint64_t> &blockNext(char *Block) {
  return *reinterpret_cast<std::atomic<uint64_t> *>(Block + 8);
}
} // namespace

void *SharedArena::heapAlloc(std::size_t Bytes) {
  if (Mode != Backing::Shared)
    return nullptr;
  auto *H = static_cast<SegmentHeader *>(Base);
  uint64_t Rounded = (uint64_t(Bytes) + repro::CacheLineSize - 1) &
                     ~uint64_t(repro::CacheLineSize - 1);
  if (Rounded == 0)
    Rounded = repro::CacheLineSize;
  unsigned Cls = unsigned(Rounded / repro::CacheLineSize); // 1..16 reusable
  if (Cls <= NumHeapClasses) {
    std::atomic<uint64_t> &Head = H->HeapHeads[Cls - 1];
    uint64_t Old = Head.load(std::memory_order_acquire);
    while ((Old & 0xffffffffull) != 0) {
      char *Block =
          HeapBase + ((Old & 0xffffffffull) - 1) * repro::CacheLineSize;
      uint64_t Next = blockNext(Block).load(std::memory_order_relaxed);
      uint64_t New = ((Old >> 32) + 1) << 32 | (Next & 0xffffffffull);
      if (Head.compare_exchange_weak(Old, New, std::memory_order_acq_rel))
        return Block + repro::CacheLineSize;
    }
  }
  uint64_t Total = Rounded + repro::CacheLineSize; // header line + payload
  uint64_t Off = H->HeapBump.fetch_add(Total, std::memory_order_relaxed);
  if (Off + Total > HeapBytes)
    arenaFatal("shared data heap exhausted (raise STM_SHM_DATA_MB)", "", 0);
  char *Block = HeapBase + Off;
  *reinterpret_cast<uint64_t *>(Block) = Cls <= NumHeapClasses ? Cls : 0;
  return Block + repro::CacheLineSize;
}

void SharedArena::heapFree(void *Ptr) {
  if (Ptr == nullptr)
    return;
  auto *H = static_cast<SegmentHeader *>(Base);
  char *Block = static_cast<char *>(Ptr) - repro::CacheLineSize;
  uint64_t Cls = *reinterpret_cast<uint64_t *>(Block);
  if (Cls == 0 || Cls > NumHeapClasses)
    return; // oversized blocks are bump-only; a leak, never corruption
  std::atomic<uint64_t> &Head = H->HeapHeads[Cls - 1];
  uint64_t Unit = uint64_t(Block - HeapBase) / repro::CacheLineSize + 1;
  uint64_t Old = Head.load(std::memory_order_acquire);
  do {
    blockNext(Block).store(Old & 0xffffffffull, std::memory_order_relaxed);
  } while (!Head.compare_exchange_weak(Old, ((Old >> 32) + 1) << 32 | Unit,
                                       std::memory_order_acq_rel));
}

namespace stm {

void *sharedAlloc(std::size_t Bytes) {
  if (SharedArena::sharedActive())
    return SharedArena::instance().heapAlloc(Bytes);
  return std::malloc(Bytes);
}

void sharedDispatchFree(void *P) {
  if (P != nullptr && SharedArena::instance().contains(P))
    SharedArena::instance().heapFree(P);
  else
    std::free(P);
}

} // namespace stm

//===----------------------------------------------------------------------===//
// Per-slot crash records
//===----------------------------------------------------------------------===//

namespace {
SlotRecord &recordOf(void *SlotRecs, unsigned Slot) {
  return static_cast<SlotRecord *>(SlotRecs)[Slot];
}
} // namespace

void SharedArena::bindSlot(unsigned Slot) {
  if (SlotRecs == nullptr)
    return;
  SlotRecord &R = recordOf(SlotRecs, Slot);
  R.Phase.store(PhaseNone, std::memory_order_relaxed);
  R.IntentCount.store(0, std::memory_order_relaxed);
  R.Overflow.store(0, std::memory_order_relaxed);
  R.Heartbeat.store(1, std::memory_order_relaxed);
  R.Pid.store(uint64_t(getpid()), std::memory_order_release);
}

void SharedArena::unbindSlot(unsigned Slot) {
  if (SlotRecs == nullptr)
    return;
  recordOf(SlotRecs, Slot).Pid.store(0, std::memory_order_release);
}

void SharedArena::publishHeartbeat(unsigned Slot) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  R.Heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void SharedArena::setPhase(unsigned Slot, uint64_t P) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  // Release so a recovering peer that reads the phase also sees every
  // write-back store that preceded a later phase transition; and the
  // phase must be visible before the first in-place/write-back store,
  // which the subsequent release/seq_cst lock operations guarantee on
  // the store side while the x86-TSO/acq-rel data path covers reads.
  R.Phase.store(P, std::memory_order_release);
}

void SharedArena::pushIntent(unsigned Slot, const void *LockWordAddr,
                             Word OldValue, Word HeldValue) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  uint64_t N = R.IntentCount.load(std::memory_order_relaxed);
  if (N >= IntentCapacity) {
    R.Overflow.store(1, std::memory_order_release);
    return;
  }
  auto *Log = static_cast<Intent *>(IntentsBase) + uint64_t(Slot) *
                                                       IntentCapacity;
  Log[N].WordOffset =
      uint64_t(static_cast<const char *>(LockWordAddr) -
               static_cast<const char *>(Base));
  Log[N].OldValue = OldValue;
  Log[N].HeldValue = HeldValue;
  // Count release-published before the caller's lock CAS: a recovery
  // that observes the installed lock word also observes the intent.
  R.IntentCount.store(N + 1, std::memory_order_release);
}

void SharedArena::popIntent(unsigned Slot) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  uint64_t N = R.IntentCount.load(std::memory_order_relaxed);
  if (N > 0 && R.Overflow.load(std::memory_order_relaxed) == 0)
    R.IntentCount.store(N - 1, std::memory_order_release);
}

void SharedArena::clearIntents(unsigned Slot) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  R.IntentCount.store(0, std::memory_order_release);
  R.Overflow.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Death detection and recovery
//===----------------------------------------------------------------------===//

bool SharedArena::poisoned() const {
  if (Mode != Backing::Shared)
    return false;
  return static_cast<SegmentHeader *>(Base)->Poison.load(
             std::memory_order_acquire) != 0;
}

void SharedArena::poisonFatal() {
  auto *H = static_cast<SegmentHeader *>(Base);
  std::fprintf(stderr,
               "stm: shared segment %s is poisoned: %s\n"
               "stm: a process died in an unrecoverable commit phase; the "
               "segment must be discarded\n",
               SegName, H->PoisonWhy);
  std::abort();
}

void SharedArena::setPoison(const char *Why, uint64_t Pid, unsigned Slot) {
  auto *H = static_cast<SegmentHeader *>(Base);
  // First poisoner wins; later writers would only repeat the story.
  // Serialized by the recovery lock, which every poisoning path holds.
  if (H->Poison.load(std::memory_order_acquire) == 0)
    std::snprintf(H->PoisonWhy, sizeof(H->PoisonWhy),
                  "pid %" PRIu64 " (slot %u) died: %s", Pid, Slot, Why);
  H->Poison.store(1, std::memory_order_release);
  std::fprintf(stderr, "stm: shared arena: poisoning segment %s: %s\n",
               SegName, H->PoisonWhy);
}

uint64_t SharedArena::recoveriesPerformed() const {
  return RecoveryCount.load(std::memory_order_relaxed);
}

bool SharedArena::maybeRecoverRemote(Word H) {
  if (Mode != Backing::Shared)
    return false;
  unsigned Slot = handleSlot(H);
  SlotRecord &R = recordOf(SlotRecs, Slot);
  uint64_t Pid = R.Pid.load(std::memory_order_acquire);
  if (Pid == 0 || Pid == uint64_t(getpid()))
    return false;
  // Throttle the liveness syscall: the conflict path can be hot under
  // live cross-process contention. The first conflict with a slot
  // always checks, so test-sized workloads detect death immediately.
  static thread_local uint8_t Skip[repro::MaxThreads];
  if ((Skip[Slot]++ & 31) != 0)
    return false;
  if (!pidDead(Pid))
    return false;
  recoverProcess(Pid);
  return true;
}

void SharedArena::sweepDeadProcesses() {
  if (Mode != Backing::Shared)
    return;
  uint64_t MyPid = uint64_t(getpid());
  uint64_t Mask = repro::ThreadRegistry::activeMask();
  uint64_t Checked = 0; // dedupe pids within one sweep
  while (Mask != 0) {
    unsigned Slot = unsigned(__builtin_ctzll(Mask));
    Mask &= Mask - 1;
    uint64_t Pid = recordOf(SlotRecs, Slot).Pid.load(std::memory_order_acquire);
    if (Pid == 0 || Pid == MyPid)
      continue;
    uint64_t Bit = 1ull << (Pid % 64);
    if ((Checked & Bit) != 0)
      continue;
    Checked |= Bit;
    if (pidDead(Pid))
      recoverProcess(Pid);
  }
}

void SharedArena::recoverProcess(uint64_t DeadPid) {
  auto *H = static_cast<SegmentHeader *>(Base);
  uint64_t MyPid = uint64_t(getpid());
  uint64_t Holder = H->RecoveryLock.load(std::memory_order_acquire);
  while (true) {
    if (Holder == MyPid)
      return; // re-entered from a recovery-path conflict; already on it
    if (Holder == 0) {
      if (H->RecoveryLock.compare_exchange_weak(Holder, MyPid,
                                                std::memory_order_acq_rel))
        break;
    } else if (pidDead(Holder)) {
      // The previous recoverer died mid-recovery; steal the lock. Slot
      // recovery is idempotent (CAS from the recorded held value), so
      // re-running a half-done recovery is safe.
      if (H->RecoveryLock.compare_exchange_weak(Holder, MyPid,
                                                std::memory_order_acq_rel))
        break;
    } else {
      return; // a live peer is recovering; let it finish
    }
  }

  if (pidDead(DeadPid)) {
    uint64_t Mask = repro::ThreadRegistry::activeMask();
    while (Mask != 0) {
      unsigned Slot = unsigned(__builtin_ctzll(Mask));
      Mask &= Mask - 1;
      if (recordOf(SlotRecs, Slot).Pid.load(std::memory_order_acquire) ==
          DeadPid)
        recoverSlot(Slot);
    }
    // The dead recoverer case: its own recovery-lock steal above plus
    // this pass covers it; nothing else to do.
  }
  H->RecoveryLock.store(0, std::memory_order_release);
}

void SharedArena::recoverSlot(unsigned Slot) {
  SlotRecord &R = recordOf(SlotRecs, Slot);
  uint64_t Pid = R.Pid.load(std::memory_order_acquire);
  uint64_t Phase = R.Phase.load(std::memory_order_acquire);
  if (Phase != PhaseNone) {
    setPoison(Phase == PhaseEager
                  ? "eager backend holding in-place-written stripes"
                  : "lazy backend mid write-back",
              Pid, Slot);
  } else if (R.Overflow.load(std::memory_order_acquire) != 0) {
    setPoison("intent log overflowed; held locks unknown", Pid, Slot);
  } else {
    // Replay the intent log newest-first: SwissTM pushes WLock intents
    // at encounter time and RLock intents at commit time, and the
    // RLocks must come back before their WLocks so a new writer never
    // reads a locked RLock as a version.
    uint64_t N = R.IntentCount.load(std::memory_order_acquire);
    auto *Log = static_cast<Intent *>(IntentsBase) +
                uint64_t(Slot) * IntentCapacity;
    for (uint64_t I = N; I > 0; --I) {
      const Intent &E = Log[I - 1];
      auto *WordP = reinterpret_cast<std::atomic<Word> *>(
          static_cast<char *>(Base) + E.WordOffset);
      Word Expect = E.HeldValue;
      WordP->compare_exchange_strong(Expect, E.OldValue,
                                     std::memory_order_acq_rel);
    }
    std::fprintf(stderr,
                 "stm: shared arena: recovered slot %u of dead pid %" PRIu64
                 " (%" PRIu64 " lock intents replayed)\n",
                 Slot, Pid, N);
  }
  clearIntents(Slot);
  // Retire the corpse's slot so epoch reclamation, irrevocability
  // drains and privatization quiescence can no longer wedge on it.
  EpochManager::unpin(Slot);
  Word ExpectTok = Word(Slot) + 1;
  orecToken().compare_exchange_strong(ExpectTok, Word(0),
                                      std::memory_order_acq_rel);
  repro::ThreadRegistry::publishIdle(Slot);
  R.Pid.store(0, std::memory_order_release);
  R.Heartbeat.store(0, std::memory_order_relaxed);
  repro::ThreadRegistry::releaseSlot(Slot);
  RecoveryCount.fetch_add(1, std::memory_order_relaxed);
}
