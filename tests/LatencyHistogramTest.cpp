//===- tests/LatencyHistogramTest.cpp - histogram unit tests ----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Unit coverage of the serving workload's HDR-style latency histogram
// (workloads/server/LatencyHistogram.h): bucket boundary arithmetic
// over the whole 64-bit range, bounded relative quantization error,
// percentile interpolation against exactly known populations, the
// cross-thread merge, and the invariant checker the server bench gates
// its exit code on.
//
//===----------------------------------------------------------------------===//

#include "tests/TestHarness.h"
#include "workloads/server/LatencyHistogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using workloads::server::LatencyHistogram;

namespace {

TEST(LatencyHistogramTest, SmallValuesGetExactBuckets) {
  // Below 2^SubBits every value has its own width-1 bucket.
  for (uint64_t V = 0; V < LatencyHistogram::SubCount; ++V) {
    EXPECT_EQ(LatencyHistogram::bucketIndex(V), V);
    EXPECT_EQ(LatencyHistogram::bucketLow(V), V);
    EXPECT_EQ(LatencyHistogram::bucketHigh(V), V + 1);
  }
}

TEST(LatencyHistogramTest, BucketBoundariesPartitionTheRange) {
  // Buckets tile [0, 2^64) without gaps or overlaps: each bucket's
  // High is the next bucket's Low, and boundary values map to the
  // bucket whose [Low, High) contains them.
  for (std::size_t I = 0; I + 1 < LatencyHistogram::NumBuckets; ++I) {
    uint64_t High = LatencyHistogram::bucketHigh(I);
    ASSERT_EQ(High, LatencyHistogram::bucketLow(I + 1)) << "bucket " << I;
    ASSERT_EQ(LatencyHistogram::bucketIndex(High - 1), I);
    ASSERT_EQ(LatencyHistogram::bucketIndex(High), I + 1);
  }
  // The last bucket saturates at the top of the range.
  EXPECT_EQ(LatencyHistogram::bucketHigh(LatencyHistogram::NumBuckets - 1),
            ~0ull);
  EXPECT_EQ(LatencyHistogram::bucketIndex(~0ull),
            LatencyHistogram::NumBuckets - 1);
}

TEST(LatencyHistogramTest, RelativeErrorBounded) {
  // The bucket containing V is never wider than V / 2^(SubBits-1), so
  // any in-bucket estimate is within ~2 * 2^-SubBits relative error.
  repro::Xorshift Rng(repro::testSeed());
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = Rng.next() >> (Rng.next() % 40); // spread the magnitudes
    std::size_t B = LatencyHistogram::bucketIndex(V);
    uint64_t Low = LatencyHistogram::bucketLow(B);
    uint64_t High = LatencyHistogram::bucketHigh(B);
    ASSERT_LE(Low, V);
    ASSERT_LT(V, High);
    if (V >= LatencyHistogram::SubCount) {
      ASSERT_LE(High - Low, V / (LatencyHistogram::SubCount / 2))
          << "bucket too wide for " << V;
    }
  }
}

TEST(LatencyHistogramTest, PercentilesOfKnownPopulation) {
  // 1..1000 recorded once each: quantile q must come back within one
  // bucket width of 1000q.
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 1000u);
  EXPECT_EQ(H.minValue(), 1u);
  EXPECT_EQ(H.maxValue(), 1000u);
  for (double Q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    uint64_t Got = H.valueAtQuantile(Q);
    double Exact = 1000.0 * Q;
    EXPECT_NEAR(static_cast<double>(Got), Exact, Exact * 0.07 + 1.0)
        << "quantile " << Q;
  }
  EXPECT_EQ(H.valueAtQuantile(1.0), 1000u);
  EXPECT_EQ(H.invariantViolations(), 0u);
}

TEST(LatencyHistogramTest, ExactPercentilesBelowSubCount) {
  // Small values have width-1 buckets, so percentiles are exact there.
  LatencyHistogram H;
  for (uint64_t V = 0; V < LatencyHistogram::SubCount; ++V)
    H.record(V);
  EXPECT_EQ(H.valueAtQuantile(0.0), 0u);
  EXPECT_EQ(H.valueAtQuantile(0.5), LatencyHistogram::SubCount / 2 - 1);
  EXPECT_EQ(H.valueAtQuantile(1.0), LatencyHistogram::SubCount - 1);
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.minValue(), 0u);
  EXPECT_EQ(H.maxValue(), 0u);
  EXPECT_EQ(H.valueAtQuantile(0.5), 0u);
  EXPECT_EQ(H.invariantViolations(), 0u);
}

TEST(LatencyHistogramTest, MergeMatchesSingleRecorder) {
  // Split one sample stream across four "threads"; merging their
  // histograms must reproduce the single-recorder histogram exactly
  // (bucket counts, totals, min/max, and therefore every percentile).
  repro::Xorshift Rng(repro::testSeed(1));
  LatencyHistogram Single, Parts[4];
  for (int I = 0; I < 40000; ++I) {
    uint64_t V = Rng.next() >> (Rng.next() % 32);
    Single.record(V);
    Parts[I % 4].record(V);
  }
  LatencyHistogram Merged;
  for (LatencyHistogram &P : Parts)
    Merged.merge(P);
  EXPECT_EQ(Merged.count(), Single.count());
  EXPECT_EQ(Merged.minValue(), Single.minValue());
  EXPECT_EQ(Merged.maxValue(), Single.maxValue());
  for (double Q : {0.01, 0.25, 0.50, 0.75, 0.99, 0.999})
    EXPECT_EQ(Merged.valueAtQuantile(Q), Single.valueAtQuantile(Q))
        << "quantile " << Q;
  EXPECT_EQ(Merged.invariantViolations(), 0u);
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  repro::Xorshift Rng(repro::testSeed(2));
  LatencyHistogram H;
  for (int I = 0; I < 5000; ++I)
    H.record(Rng.next() >> (Rng.next() % 48));
  uint64_t Prev = 0;
  for (double Q = 0.0; Q <= 1.0; Q += 0.01) {
    uint64_t V = H.valueAtQuantile(Q);
    EXPECT_GE(V, Prev) << "quantile " << Q;
    Prev = V;
  }
  EXPECT_LE(Prev, H.maxValue());
  EXPECT_EQ(H.invariantViolations(), 0u);
}

} // namespace
