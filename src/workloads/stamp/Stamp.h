//===- workloads/stamp/Stamp.h - STAMP-lite umbrella ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009). Pulls in all eight
// STAMP-lite applications (ten workloads with the kmeans and vacation
// high/low-contention variants), the suite behind Figure 3.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_STAMP_H
#define WORKLOADS_STAMP_STAMP_H

#include "workloads/stamp/Bayes.h"
#include "workloads/stamp/Genome.h"
#include "workloads/stamp/Intruder.h"
#include "workloads/stamp/KMeans.h"
#include "workloads/stamp/Labyrinth.h"
#include "workloads/stamp/Ssca2.h"
#include "workloads/stamp/Vacation.h"
#include "workloads/stamp/Yada.h"

#endif // WORKLOADS_STAMP_STAMP_H
