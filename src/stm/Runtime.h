//===- stm/Runtime.h - stable public STM entry point ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The one public way in. Everything an application needs is:
//
//   stm::Runtime Runtime;                        // once per process
//   stm::atomically(Runtime, [&](auto &Tx) {     // from any thread
//     stm::Word V = Tx.load(&Cell);
//     Tx.store(&Cell, V + 1);
//   });
//
// Runtime wraps the type-erased runtime (stm/runtime/StmRuntime.h):
// construction initializes the backend selected by StmConfig (by
// default StmConfig::fromEnv(), so STM_BACKEND / STM_ADAPTIVE /
// STM_CLOCK pick the algorithm at launch), destruction shuts it down.
// Threads attach lazily on their first atomically(): there is no
// per-thread ceremony, and a thread's descriptor is reclaimed through
// the usual epoch grace period when the thread exits.
//
// Contract: at most one Runtime may be live at a time (the STM's
// global state — lock table, clocks, epoch manager — is process-wide),
// and every thread that ran transactions must have exited, or stopped
// issuing transactions, before the Runtime is destroyed. The
// destroying thread's own attachment is detached automatically.
//
// The templated per-backend facades (stm::SwissTm and friends) and the
// explicit ThreadScope/GlobalInit plumbing remain available for tests
// and ablation benches, but they are an internal surface: new code
// should target Runtime and atomically(Runtime&, fn) only.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RUNTIME_H
#define STM_RUNTIME_H

#include "stm/Atomically.h"
#include "stm/Config.h"
#include "stm/runtime/StmRuntime.h"

#include <cstdint>
#include <utility>

namespace stm {

/// Process-wide STM instance with lazy per-thread attachment.
class Runtime {
public:
  /// The transaction descriptor type transaction bodies receive.
  using Tx = rt::TxHandle;

  /// Initializes the STM. The default reads the STM_* environment
  /// (StmConfig::fromEnv); pass an explicit config to override.
  /// Aborts if another Runtime is already live.
  explicit Runtime(const StmConfig &Config = StmConfig::fromEnv());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// The calling thread's transaction descriptor, attaching the thread
  /// to this runtime on first use. Valid until the thread exits or the
  /// Runtime is destroyed, whichever comes first.
  Tx &threadTx();

  /// Name of the configured backend ("swisstm", ..., or "adaptive").
  const char *name() const { return StmRuntime::name(); }

  /// Backend currently executing transactions (adaptive mode switches
  /// it at runtime).
  rt::BackendKind activeBackend() const {
    return StmRuntime::activeBackend();
  }

  /// Total adaptive/manual backend switches since construction.
  uint64_t switchCount() const { return StmRuntime::switchCount(); }

  /// Manually drains and switches backends; adaptive mode only. See
  /// StmRuntime::requestSwitch.
  bool requestSwitch(rt::BackendKind Target) {
    return StmRuntime::requestSwitch(Target);
  }

private:
  uint64_t Gen; ///< unique liveness token for thread attachments
};

/// Runs \p Body as one transaction on the calling thread, attaching the
/// thread to \p R on first use. Retries until commit; see
/// atomically(Tx&, Fn&&) for the restart-semantics fine print (no
/// non-trivial destructors across transactional ops; flat nesting).
template <typename Fn> void atomically(Runtime &R, Fn &&Body) {
  atomically(R.threadTx(), std::forward<Fn>(Body));
}

} // namespace stm

#endif // STM_RUNTIME_H
