//===- bench/bench_fig4_leetm.cpp - Figure 4 --------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 4: Lee-TM execution time on the memory (top) and main (bottom)
// boards for SwissTM, TinySTM and RSTM, threads 1..8. (The paper could
// not run TL2 on Lee-TM; our port can, so TL2 is reported as an extra
// series.)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::lee::Board;

template <typename STM> static void sweep(Board B) {
  stm::StmConfig Config;
  for (unsigned Threads : threadSweep()) {
    RunResult R = leeTimed<STM>(Config, Threads, B, /*Scale=*/0.8);
    Report::instance().add("fig4", workloads::lee::boardName(B),
                           STM::name(), Threads, "seconds", R.Value);
    Report::instance().add("fig4", workloads::lee::boardName(B),
                           STM::name(), Threads, "abort_ratio",
                           R.Stats.abortRatio());
  }
}

int main() {
  for (Board B : {Board::Memory, Board::Main}) {
    sweep<stm::SwissTm>(B);
    sweep<stm::TinyStm>(B);
    sweep<stm::Rstm>(B);
    sweep<stm::Tl2>(B); // extra series, see header comment
  }
  Report::instance().print("4", "Lee-TM execution time, memory + main");
  return 0;
}
