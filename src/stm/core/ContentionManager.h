//===- stm/core/ContentionManager.h - unified contention policy -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// One implementation of every contention-management variant the paper
// ablates (Section 5): two-phase (Algorithm 2), Greedy, Serializer,
// Polka and timid. SwissTM and RSTM previously each carried their own
// copy; they differ only in what CmKind::TwoPhase means, captured by the
// TwoPhaseMode policy parameter:
//
//   Native   SwissTM: timid until Wn buffered writes, then a Greedy
//            timestamp (the paper's contribution);
//   AsPolka  RSTM: no write-count phase exists, the kind degrades to
//            Polka (matching the original RSTM default).
//
// The manager owns the per-descriptor CM state other transactions read
// when they attack: the Greedy timestamp (infinity while in the first
// phase) and the Polka priority (accesses so far). Victims are generic:
// any descriptor exposing cm() and requestKill() works, so the policy is
// shared across backends with unrelated descriptor types.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_CONTENTIONMANAGER_H
#define STM_CORE_CONTENTIONMANAGER_H

#include "stm/Config.h"
#include "stm/core/Clock.h"
#include "support/Backoff.h"
#include "support/Random.h"

#include <atomic>
#include <cstdint>

namespace stm::core {

/// "No timestamp yet": first phase of two-phase, or a kind that never
/// takes one. An infinite timestamp loses every older-wins comparison.
inline constexpr uint64_t CmInfinity = ~0ull;

/// How a backend interprets CmKind::TwoPhase (see file comment).
enum class TwoPhaseMode { Native, AsPolka };

/// Per-descriptor contention-manager state and decisions. Embedded in a
/// descriptor; the atomics are read by concurrent attackers.
template <TwoPhaseMode Mode> class ContentionManager {
public:
  static constexpr unsigned PolkaMaxAttempts = 8;

  /// cm-start (Algorithm 2): assigns or keeps the Greedy timestamp and
  /// resets the Polka priority for the new attempt. A restart
  /// (!FreshStart) keeps its timestamp so long transactions eventually
  /// win.
  void onStart(const StmConfig &Config, GlobalClock &GreedyTs,
               bool FreshStart) {
    AccessCount = 0;
    PubPriority.store(0, std::memory_order_relaxed);
    switch (Config.Cm) {
    case CmKind::TwoPhase:
      if (Mode == TwoPhaseMode::AsPolka || FreshStart)
        CmTs.store(CmInfinity, std::memory_order_relaxed);
      break;
    case CmKind::Greedy:
      // Unique timestamp at first start, kept across restarts; every
      // transaction pays the shared-counter increment (the cost
      // Figure 10 highlights).
      if (FreshStart)
        CmTs.store(GreedyTs.incrementAndGet(), std::memory_order_relaxed);
      break;
    case CmKind::Serializer:
      // Fresh timestamp on every (re)start: no starvation protection.
      CmTs.store(GreedyTs.incrementAndGet(), std::memory_order_relaxed);
      break;
    case CmKind::Timid:
    case CmKind::Polka:
      CmTs.store(CmInfinity, std::memory_order_relaxed);
      break;
    }
  }

  /// cm-on-write (Algorithm 2): on the Wn-th buffered write a native
  /// two-phase transaction enters the second (Greedy) phase.
  void onWrite(const StmConfig &Config, GlobalClock &GreedyTs,
               unsigned WriteCount) {
    if (Mode != TwoPhaseMode::Native || Config.Cm != CmKind::TwoPhase)
      return;
    if (CmTs.load(std::memory_order_relaxed) == CmInfinity &&
        WriteCount >= Config.WnThreshold)
      CmTs.store(GreedyTs.incrementAndGet(), std::memory_order_relaxed);
  }

  /// Bumps the published Polka priority (one per transactional access).
  void noteAccess() {
    PubPriority.store(++AccessCount, std::memory_order_relaxed);
  }

  /// cm-should-abort (Algorithm 2 plus the ablation variants): decides a
  /// conflict with \p Victim. Returns true if the caller must abort
  /// itself; false means retry (the victim was killed, raced away, or a
  /// back-off wait elapsed). \p Attempts paces Polka's patience and the
  /// caller's spin.
  template <typename TxT>
  bool shouldAbort(const StmConfig &Config, TxT *Victim, const TxT *Self,
                   unsigned &Attempts, repro::Xorshift &Rng) {
    ++Attempts;
    // RSTM resolves conflicts against *descriptors* (reader bits, orec
    // owners) that can vanish mid-conflict when their thread exits; a
    // null or self victim means the conflict already resolved — retry.
    // SwissTM's w-lock conflicts keep the per-kind handling below
    // (timid aborts self regardless; first-phase two-phase aborts self
    // even when the owner raced away).
    if (Mode == TwoPhaseMode::AsPolka &&
        (Victim == nullptr || Victim == Self))
      return false;
    switch (Config.Cm) {
    case CmKind::Timid:
      return true; // always abort the attacker

    case CmKind::TwoPhase:
    case CmKind::Greedy:
    case CmKind::Serializer: {
      if (Mode == TwoPhaseMode::AsPolka && Config.Cm == CmKind::TwoPhase)
        return polkaResolve(Victim, Self, Attempts, Rng);
      uint64_t MyTs = CmTs.load(std::memory_order_relaxed);
      if (MyTs == CmInfinity)
        return true; // first phase: abort self immediately
      if (Victim == nullptr || Victim == Self)
        return false; // owner raced away; retry
      uint64_t VictimTs = Victim->cm().timestamp();
      if (VictimTs < MyTs)
        return true; // older transaction wins; abort self
      Victim->requestKill(); // abort(lock-owner)
      return false;          // and retry until the lock is released
    }

    case CmKind::Polka:
      return polkaResolve(Victim, Self, Attempts, Rng);
    }
    return true;
  }

  /// cm-on-rollback (Algorithm 2): randomized linear back-off in the
  /// number of successive aborts (ablated in Figure 11).
  void onRollback(const StmConfig &Config, repro::Xorshift &Rng,
                  unsigned SuccessiveAborts) {
    if (Config.EnableRollbackBackoff)
      repro::randomLinearBackoff(Rng, SuccessiveAborts);
  }

  /// Greedy timestamp; CmInfinity while in the first phase.
  uint64_t timestamp() const {
    return CmTs.load(std::memory_order_relaxed);
  }

  /// Priority visible to Polka attackers (accesses this attempt).
  uint64_t priority() const {
    return PubPriority.load(std::memory_order_relaxed);
  }

private:
  /// Polka: wait with exponential back-off while the victim has higher
  /// priority; once we out-prioritize it (or patience runs out), abort
  /// the victim.
  template <typename TxT>
  bool polkaResolve(TxT *Victim, const TxT *Self, unsigned Attempts,
                    repro::Xorshift &Rng) {
    if (Victim == nullptr || Victim == Self)
      return false;
    uint64_t MyPrio = PubPriority.load(std::memory_order_relaxed);
    uint64_t VictimPrio = Victim->cm().priority();
    if (MyPrio < VictimPrio && Attempts <= PolkaMaxAttempts) {
      repro::randomExponentialBackoff(Rng, Attempts);
      return false;
    }
    Victim->requestKill();
    return false;
  }

  std::atomic<uint64_t> CmTs{CmInfinity};
  std::atomic<uint64_t> PubPriority{0};
  uint64_t AccessCount = 0;
};

} // namespace stm::core

#endif // STM_CORE_CONTENTIONMANAGER_H
