//===- stm/swisstm/RuntimeOps.h - SwissTM runtime adapter -------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Registers SwissTM with the type-erased runtime (see
// stm/runtime/BackendOps.h). The table is built entirely from the
// public facade; the algorithm itself is untouched.
//
//===----------------------------------------------------------------------===//

#ifndef STM_SWISSTM_RUNTIMEOPS_H
#define STM_SWISSTM_RUNTIMEOPS_H

#include "stm/runtime/BackendOps.h"
#include "stm/swisstm/SwissTm.h"

namespace stm::swiss {

inline const rt::BackendOps &runtimeOps() {
  static constexpr rt::BackendOps Ops = rt::makeBackendOps<SwissTm>();
  return Ops;
}

} // namespace stm::swiss

#endif // STM_SWISSTM_RUNTIMEOPS_H
