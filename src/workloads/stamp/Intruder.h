//===- workloads/stamp/Intruder.h - STAMP intruder --------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's intruder: network intrusion detection in three stages.
// Packet fragments of many flows arrive interleaved in one shared queue
// (the "memory hot spot" of Figure 11); workers transactionally
//
//   1. capture: dequeue a fragment,
//   2. reassemble: file it in the flow table; when a flow completes,
//      claim it,
//
// and then scan the assembled payload for attack signatures outside any
// transaction. A known fraction of flows carries a planted signature,
// so detection counts are exactly checkable.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_INTRUDER_H
#define WORKLOADS_STAMP_INTRUDER_H

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/containers/TxHashMap.h"
#include "workloads/containers/TxQueue.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace workloads::stamp {

struct IntruderConfig {
  unsigned Flows = 256;
  unsigned MaxFragsPerFlow = 6;
  unsigned PayloadChunk = 24;   ///< bytes per fragment
  unsigned AttackPercent = 10; ///< flows carrying a signature
};

template <typename STM> class Intruder {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  struct Fragment {
    uint32_t FlowId;
    uint32_t FragIdx;
    uint32_t NumFrags;
    std::string Payload;
  };

  /// Per-flow reassembly state, allocated transactionally on first
  /// fragment.
  struct FlowState {
    Word Received;
    Word NumFrags;
    Word Frags[8]; // Fragment*
  };

  explicit Intruder(const IntruderConfig &Config, uint64_t Seed = 0x1917ull)
      : Cfg(Config), FlowTable(10), Assembled(0), Detected(0) {
    generate(Seed);
    // Load the shared queue (single-threaded bootstrap).
    stm::ThreadScope<STM> Scope;
    Tx &T = Scope.tx();
    for (Fragment &F : Fragments)
      stm::atomically(T, [&](Tx &X) {
        Queue.enqueue(X, reinterpret_cast<Word>(&F));
      });
  }

  Intruder(const Intruder &) = delete;
  Intruder &operator=(const Intruder &) = delete;

  unsigned flowCount() const { return Cfg.Flows; }
  unsigned plantedAttacks() const { return Planted; }
  uint64_t assembledCount() const { return Assembled.load(); }
  uint64_t detectedCount() const { return Detected.load(); }

  /// Worker loop: processes fragments until the queue drains. Returns
  /// the number of flows this thread fully assembled.
  uint64_t work(Tx &T) {
    uint64_t MyFlows = 0;
    while (true) {
      // Stage 1: capture.
      Fragment *Frag = nullptr;
      Fragment **FragPtr = &Frag;
      stm::atomically(T, [&, FragPtr](Tx &X) {
        Word Item = 0;
        *FragPtr = Queue.dequeue(X, &Item)
                       ? reinterpret_cast<Fragment *>(Item)
                       : nullptr;
      });
      if (Frag == nullptr)
        break;

      // Stage 2: reassembly; claims the flow when complete.
      FlowState *Complete = nullptr;
      FlowState **CompletePtr = &Complete;
      stm::atomically(T, [&, CompletePtr](Tx &X) {
        *CompletePtr = nullptr;
        Word Val = 0;
        FlowState *FS;
        if (FlowTable.lookup(X, Frag->FlowId, &Val)) {
          FS = reinterpret_cast<FlowState *>(Val);
        } else {
          FS = static_cast<FlowState *>(X.txMalloc(sizeof(FlowState)));
          X.store(&FS->Received, 0);
          X.store(&FS->NumFrags, Frag->NumFrags);
          for (unsigned I = 0; I < 8; ++I)
            X.store(&FS->Frags[I], 0);
          FlowTable.insert(X, Frag->FlowId, reinterpret_cast<Word>(FS));
        }
        X.store(&FS->Frags[Frag->FragIdx], reinterpret_cast<Word>(Frag));
        Word Received = X.load(&FS->Received) + 1;
        X.store(&FS->Received, Received);
        if (Received == X.load(&FS->NumFrags)) {
          FlowTable.remove(X, Frag->FlowId);
          *CompletePtr = FS; // claimed by this thread
        }
      });

      // Stage 3: detection, outside any transaction (the flow is now
      // thread-private).
      if (Complete != nullptr) {
        ++MyFlows;
        Assembled.fetch_add(1, std::memory_order_relaxed);
        std::string Payload;
        uint64_t N = Complete->NumFrags;
        for (uint64_t I = 0; I < N; ++I)
          Payload +=
              reinterpret_cast<Fragment *>(Complete->Frags[I])->Payload;
        if (Payload.find(Signature) != std::string::npos)
          Detected.fetch_add(1, std::memory_order_relaxed);
        // Doomed concurrent transactions may still hold the table's old
        // pointer to this state: release through quiescent reclamation.
        stm::atomically(T, [&](Tx &X) { X.txFree(Complete); });
      }
    }
    return MyFlows;
  }

  /// Non-transactional: true when the flow table is empty (all flows
  /// fully assembled).
  bool tableDrained() const { return FlowTable.sizeRaw() == 0; }

private:
  void generate(uint64_t Seed) {
    repro::Xorshift Rng(Seed);
    static const char Chars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    for (uint32_t Flow = 0; Flow < Cfg.Flows; ++Flow) {
      unsigned NumFrags =
          2 + static_cast<unsigned>(Rng.nextBounded(Cfg.MaxFragsPerFlow - 1));
      bool Attack = Rng.nextPercent(Cfg.AttackPercent);
      Planted += Attack;
      std::string Payload;
      for (unsigned I = 0; I < NumFrags * Cfg.PayloadChunk; ++I)
        Payload.push_back(Chars[Rng.nextBounded(sizeof(Chars) - 1)]);
      if (Attack) {
        std::size_t Pos =
            Rng.nextBounded(Payload.size() - Signature.size());
        Payload.replace(Pos, Signature.size(), Signature);
      }
      for (unsigned I = 0; I < NumFrags; ++I)
        Fragments.push_back(
            Fragment{Flow, I, NumFrags,
                     Payload.substr(std::size_t(I) * Cfg.PayloadChunk,
                                    Cfg.PayloadChunk)});
    }
    // Shuffle fragments so flows interleave in the queue.
    for (std::size_t I = Fragments.size(); I > 1; --I)
      std::swap(Fragments[I - 1], Fragments[Rng.nextBounded(I)]);
  }

  IntruderConfig Cfg;
  unsigned Planted = 0;
  const std::string Signature = "x!attack!x";
  std::vector<Fragment> Fragments;
  TxQueue<STM> Queue;
  TxHashMap<STM> FlowTable;
  std::atomic<uint64_t> Assembled;
  std::atomic<uint64_t> Detected;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_INTRUDER_H
