//===- tests/SupportTest.cpp - support-library unit tests ------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "support/Backoff.h"
#include "support/Padded.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/ThreadRegistry.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace repro;

TEST(RandomTest, DeterministicForSeed) {
  Xorshift A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xorshift A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I < 1000; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5u);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Xorshift Rng(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.nextBounded(17), 17u);
}

TEST(RandomTest, RangeInclusive) {
  Xorshift Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = Rng.nextRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, PercentZeroAndHundred) {
  Xorshift Rng(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.nextPercent(0));
    EXPECT_TRUE(Rng.nextPercent(100));
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Xorshift Rng(13);
  for (int I = 0; I < 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, RoughlyUniformPercent) {
  Xorshift Rng(17);
  unsigned Hits = 0;
  const unsigned N = 100000;
  for (unsigned I = 0; I < N; ++I)
    Hits += Rng.nextPercent(30);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.30, 0.02);
}

TEST(TestSeedTest, BaseIsStableWithinProcess) {
  EXPECT_EQ(testSeedBase(), testSeedBase());
  EXPECT_EQ(testSeed(7), testSeed(7));
}

TEST(TestSeedTest, StreamsAreDecorrelated) {
  EXPECT_NE(testSeed(0), testSeed(1));
  Xorshift A(testSeed(0)), B(testSeed(1));
  unsigned Same = 0;
  for (int I = 0; I < 1000; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5u);
}

TEST(PaddedTest, OneCacheLineEach) {
  Padded<uint64_t> Arr[4];
  auto Base = reinterpret_cast<uintptr_t>(&Arr[0]);
  auto Next = reinterpret_cast<uintptr_t>(&Arr[1]);
  EXPECT_EQ(Next - Base, CacheLineSize);
}

TEST(StatsTest, AccumulateAndRatio) {
  TxStats A, B;
  A.Commits = 10;
  A.Aborts = 5;
  B.Commits = 20;
  B.Aborts = 5;
  A += B;
  EXPECT_EQ(A.Commits, 30u);
  EXPECT_EQ(A.Aborts, 10u);
  EXPECT_DOUBLE_EQ(A.abortRatio(), 0.25);
}

TEST(StatsTest, EmptyRatioIsZero) {
  TxStats S;
  EXPECT_DOUBLE_EQ(S.abortRatio(), 0.0);
}

TEST(TimingTest, StopwatchMonotone) {
  Stopwatch W;
  spinFor(1000);
  uint64_t T1 = W.elapsedNanos();
  spinFor(1000);
  uint64_t T2 = W.elapsedNanos();
  EXPECT_GE(T2, T1);
  W.reset();
  EXPECT_LE(W.elapsedNanos(), T2);
}

TEST(BackoffTest, ZeroAbortsNoWait) {
  Xorshift Rng(1);
  randomLinearBackoff(Rng, 0); // must not hang or crash
}

TEST(BackoffTest, ExponentialCapRespected) {
  Xorshift Rng(2);
  // Attempts far above the cap must still terminate quickly.
  randomExponentialBackoff(Rng, 1000, /*Unit=*/1, /*Cap=*/4);
}

TEST(ThreadRegistryTest, SlotsAreDense) {
  unsigned A = ThreadRegistry::acquireSlot();
  unsigned B = ThreadRegistry::acquireSlot();
  EXPECT_NE(A, B);
  EXPECT_NE(ThreadRegistry::activeMask() & (1ull << A), 0u);
  EXPECT_NE(ThreadRegistry::activeMask() & (1ull << B), 0u);
  ThreadRegistry::releaseSlot(B);
  unsigned C = ThreadRegistry::acquireSlot();
  EXPECT_EQ(B, C); // lowest free slot is reused
  ThreadRegistry::releaseSlot(C);
  ThreadRegistry::releaseSlot(A);
}

TEST(ThreadRegistryTest, MinActiveStartTracksOldest) {
  unsigned A = ThreadRegistry::acquireSlot();
  unsigned B = ThreadRegistry::acquireSlot();
  EXPECT_EQ(ThreadRegistry::minActiveStart(), IdleTimestamp);
  ThreadRegistry::publishStart(A, 100);
  ThreadRegistry::publishStart(B, 50);
  EXPECT_EQ(ThreadRegistry::minActiveStart(), 50u);
  ThreadRegistry::publishIdle(B);
  EXPECT_EQ(ThreadRegistry::minActiveStart(), 100u);
  ThreadRegistry::publishIdle(A);
  EXPECT_EQ(ThreadRegistry::minActiveStart(), IdleTimestamp);
  ThreadRegistry::releaseSlot(A);
  ThreadRegistry::releaseSlot(B);
}

TEST(ThreadRegistryTest, ConcurrentAcquireUnique) {
  constexpr unsigned N = 16;
  std::vector<std::thread> Threads;
  std::vector<unsigned> Slots(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] { Slots[I] = ThreadRegistry::acquireSlot(); });
  for (auto &T : Threads)
    T.join();
  std::set<unsigned> Unique(Slots.begin(), Slots.end());
  EXPECT_EQ(Unique.size(), N);
  for (unsigned S : Slots)
    ThreadRegistry::releaseSlot(S);
}
