//===- stm/Clock.h - global version clocks (forwarding) ---------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// GlobalClock moved into the shared policy core; this forwarding header
// keeps existing includes working.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CLOCK_H
#define STM_CLOCK_H

#include "stm/core/Clock.h"

#endif // STM_CLOCK_H
