//===- support/Platform.h - low-level platform primitives ------*- C++ -*-===//
//
// Part of the SwissTM reproduction ("Stretching Transactional Memory",
// PLDI 2009). Platform constants and tiny helpers shared by every module.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PLATFORM_H
#define SUPPORT_PLATFORM_H

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace repro {

/// Size of a cache line on every platform we target. Used for padding
/// shared counters so unrelated hot words do not false-share.
inline constexpr std::size_t CacheLineSize = 64;

/// Maximum number of concurrently registered transactional threads.
/// Visible-reader bitmaps (RSTM) use one bit per slot, so this is capped
/// at the word width.
inline constexpr unsigned MaxThreads = 64;

/// Keeps a cold policy branch (an off-by-default mode, a rare
/// slow path) from being inlined into the transactional fast paths.
/// load()/store()/commit() are compiled once per backend and shared by
/// every runtime mode, so cold-mode code inlined there bloats the
/// I-cache footprint of configurations that never take the branch.
#if defined(__GNUC__) || defined(__clang__)
#define REPRO_NOINLINE __attribute__((noinline))
#define REPRO_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define REPRO_NOINLINE
#define REPRO_UNLIKELY(x) (x)
#endif

/// True when every aligned load already carries acquire semantics
/// (x86 TSO): an acquire load compiles to the same plain MOV as a
/// relaxed one, so eliding the read-path "fence" saves nothing and a
/// runtime mode test deciding between the two orders would be pure
/// overhead on the hottest path. On weakly-ordered targets (ARM,
/// POWER) the orders compile differently and the elision is real.
inline constexpr bool AcquireLoadIsFree =
#if defined(__x86_64__) || defined(__i386__)
    true;
#else
    false;
#endif

/// Pause the CPU briefly inside a spin loop (PAUSE on x86, no-op
/// elsewhere). Reduces the cost of busy-waiting on hyperthreads.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

} // namespace repro

#endif // SUPPORT_PLATFORM_H
