//===- stm/TxBase.h - shared transaction-descriptor state -------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// State common to all four STM descriptors: the setjmp environment used
// for abort-restart, flat-nesting depth, per-thread statistics, the
// transactional allocator, the kill flag used by aggressive contention
// managers, and the successive-abort counter feeding back-off.
//
//===----------------------------------------------------------------------===//

#ifndef STM_TXBASE_H
#define STM_TXBASE_H

#include "stm/EpochManager.h"
#include "stm/RetiredPool.h"
#include "stm/TxMemory.h"
#include "stm/Word.h"
#include "stm/core/SharedArena.h"
#include "stm/diag/Hooks.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/ThreadRegistry.h"

#include <atomic>
#include <csetjmp>
#include <cstddef>
#include <cstdint>

namespace stm {

/// Non-template base of every transaction descriptor.
class TxBase {
public:
  explicit TxBase(unsigned Slot)
      : Slot(Slot), Rng(0x5bd1e995u * (Slot + 1)) {}

  TxBase(const TxBase &) = delete;
  TxBase &operator=(const TxBase &) = delete;

  /// setjmp target armed by stm::atomically; rollback longjmps here.
  std::jmp_buf &jumpEnv() { return *EnvTarget; }

  /// Redirects abort-restart to a jmp_buf owned by someone else. The
  /// type-erased runtime points every backend descriptor it wraps at the
  /// TxHandle's single jmp_buf: the boundary arms that one buffer, and a
  /// retry that switches backends mid-transaction (adaptive mode) still
  /// lands on an armed target — the fresh descriptor's own Env never is.
  void redirectJumpEnv(std::jmp_buf *Target) { EnvTarget = Target; }

  /// True while a transaction (at any nesting depth) is executing.
  bool inTransaction() const { return Depth > 0; }

  repro::TxStats &stats() { return Stats; }
  const repro::TxStats &stats() const { return Stats; }

  unsigned threadSlot() const { return Slot; }

  /// Transactional allocation: rolled back if the transaction aborts.
  void *txMalloc(std::size_t Size) { return Mem.txMalloc(Size); }

  /// Transactional free: performed only if the transaction commits, and
  /// physically released only after all concurrent transactions finish.
  void txFree(void *Ptr) { Mem.txFree(Ptr); }

  /// Batch-admission hook (stm/runtime TxHandle::batchBegin/batchEnd):
  /// while set, this descriptor's attempts neither pin nor unpin the
  /// reclamation epoch themselves — the batch owner pinned the slot once
  /// for the whole batch, amortizing the pin's seq_cst fence and the
  /// commit-side unpin/publishIdle stores across every transaction in
  /// the batch. The caller owns the pin: it must hold the slot pinned
  /// for the batch's whole lifetime and unpin at batch end. Keeping one
  /// (older) epoch pinned across a short batch is safe — reclamation
  /// only becomes more conservative — but the flag must never be set
  /// while gate-spinning machinery could wait on this slot's quiescence
  /// (the adaptive runtime's switch drain), so TxHandle refuses batch
  /// mode when the runtime is dynamic.
  void setBatchPinned(bool Pinned) { BatchPin = Pinned; }

  /// Requests this descriptor's current transaction to abort; checked
  /// cooperatively at every transactional operation.
  void requestKill() { KillFlag.store(true, std::memory_order_release); }

  bool killRequested() const {
    return KillFlag.load(std::memory_order_relaxed);
  }

  /// Thread-exit hook, called by ThreadScope before the descriptor is
  /// retired to the EpochManager: drains unreclaimed retired blocks into
  /// the global pool so other threads' in-flight transactions stay safe.
  /// A backend that publishes extra global pointers to its descriptor
  /// (RSTM's slot table) shadows this to unlink them first.
  void threadShutdown() { baseShutdown(); }

protected:
  /// Resets per-attempt base state. Called from each STM's onStart.
  /// Pins the reclamation epoch before the attempt reads any lock word,
  /// so descriptors reachable through stripe locks stay alive for the
  /// whole attempt (see EpochManager.h).
  void baseStart() {
    if (REPRO_UNLIKELY(SharedArena::sharedActive()))
      sharedBaseStart();
    if (!BatchPin)
      EpochManager::pin(Slot);
    ++Stats.Starts;
    Depth = 1;
    KillFlag.store(false, std::memory_order_relaxed);
  }

  /// Multi-process begin duties, out of line of the private-mode path:
  /// refuse to run against a poisoned segment, prove liveness to peers,
  /// and periodically look for dead ones (a process whose locks nobody
  /// happens to conflict with would otherwise never be noticed).
  void sharedBaseStart() {
    SharedArena &A = SharedArena::instance();
    if (A.poisoned())
      A.poisonFatal();
    A.publishHeartbeat(Slot);
    if ((Stats.Starts & 255) == 255)
      A.sweepDeadProcesses();
  }

  /// Bookkeeping shared by all commit paths.
  void baseCommit(uint64_t CommitTs) {
    STM_DIAG_TX_COMMIT(Slot, CommitTs);
    STM_DIAG_RETIRE(Slot, CommitTs, Mem.pendingFrees());
    ++Stats.Commits;
    SuccessiveAborts = 0;
    FreshStart = true;
    Depth = 0;
    Mem.onCommit(CommitTs);
    if (!BatchPin) {
      repro::ThreadRegistry::publishIdle(Slot);
      EpochManager::unpin(Slot);
    }
  }

  /// Bookkeeping shared by all abort paths (does not longjmp).
  void baseAbort() {
    STM_DIAG_TX_ABORT(Slot, Stats);
    ++Stats.Aborts;
    ++SuccessiveAborts;
    FreshStart = false;
    Depth = 0;
    Mem.onAbort();
    if (!BatchPin) {
      repro::ThreadRegistry::publishIdle(Slot);
      EpochManager::unpin(Slot);
    }
  }

  /// Shared tail of threadShutdown().
  void baseShutdown() {
    Mem.collect();
    Mem.drainTo([](void *Ptr, uint64_t Ts) {
      RetiredPool::instance().add(Ptr, Ts);
    });
  }

  std::jmp_buf Env;
  std::jmp_buf *EnvTarget = &Env;
  unsigned Depth = 0;
  unsigned Slot;
  /// False when this attempt is a restart of an aborted transaction; the
  /// two-phase manager keeps its Greedy timestamp across restarts.
  bool FreshStart = true;
  /// True while a TxHandle batch owns this slot's epoch pin.
  bool BatchPin = false;
  unsigned SuccessiveAborts = 0;
  std::atomic<bool> KillFlag{false};
  repro::TxStats Stats;
  TxMemory Mem;
  repro::Xorshift Rng;
};

/// Shared tail of every backend's globalShutdown(): drains the
/// process-wide reclamation pools — safe because no transaction can be
/// in flight at global shutdown — and releases the lock table.
template <typename TableT> void globalTeardown(TableT &Table) {
  EpochManager::releaseAll();
  RetiredPool::instance().releaseAll();
  Table.destroy();
}

} // namespace stm

#endif // STM_TXBASE_H
