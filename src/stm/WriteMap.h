//===- stm/WriteMap.h - address -> write-log index lookup ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Lazy-acquire STMs (TL2, RSTM-lazy) buffer writes until commit, so every
// transactional read must first check the transaction's own write set
// ("read-after-write"). This open-addressing map plus a one-word Bloom
// filter makes the common miss case a single AND + branch, mirroring
// TL2's design.
//
//===----------------------------------------------------------------------===//

#ifndef STM_WRITEMAP_H
#define STM_WRITEMAP_H

#include "stm/Word.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace stm {

/// Maps word addresses to 32-bit payloads (typically write-log indices).
class WriteMap {
public:
  WriteMap() { rehash(InitialSlotsLog2); }

  /// Removes all entries; keeps capacity. Empty slots are identified by
  /// a null key, so zero-fill is the correct reset.
  void clear() {
    if (Count != 0)
      std::memset(Slots.data(), 0, Slots.size() * sizeof(Slot));
    Count = 0;
    Bloom = 0;
  }

  bool empty() const { return Count == 0; }
  std::size_t size() const { return Count; }

  /// Current slot-array capacity (tests assert rehash discipline).
  std::size_t capacity() const { return Slots.size(); }

  /// One-word Bloom test: definitely-absent fast path.
  bool mayContain(const Word *Addr) const {
    return (Bloom & bloomBit(Addr)) != 0;
  }

  /// Inserts or overwrites the payload for \p Addr. Probes first and
  /// grows only on a genuine insertion: checking the load factor before
  /// the probe counted overwrites of existing keys as new entries and
  /// could trigger a spurious rehash of a map that was not growing.
  void insert(const Word *Addr, uint32_t Payload) {
    Bloom |= bloomBit(Addr);
    Slot *S = findSlot(Addr);
    if (S->Key == nullptr) {
      if ((Count + 1) * 4 >= Slots.size() * 3) {
        rehash(SlotsLog2 + 1);
        S = findSlot(Addr); // the grow moved every slot
      }
      ++Count;
    }
    S->Key = Addr;
    S->Payload = Payload;
  }

  /// Returns the payload for \p Addr, or ~0u if absent.
  uint32_t lookup(const Word *Addr) const {
    if (!mayContain(Addr))
      return ~0u;
    const Slot *S = findSlot(Addr);
    return S->Key == nullptr ? ~0u : S->Payload;
  }

private:
  struct Slot {
    const Word *Key;
    uint32_t Payload;
  };

  static uint64_t hashAddr(const Word *Addr) {
    uint64_t H = reinterpret_cast<uintptr_t>(Addr) >> WordSizeLog2;
    H *= 0x9e3779b97f4a7c15ull;
    return H ^ (H >> 32);
  }

  static uint64_t bloomBit(const Word *Addr) {
    return uint64_t(1) << (hashAddr(Addr) & 63);
  }

  Slot *findSlot(const Word *Addr) const {
    uint64_t Mask = (uint64_t(1) << SlotsLog2) - 1;
    uint64_t I = hashAddr(Addr) & Mask;
    while (true) {
      Slot *S = const_cast<Slot *>(&Slots[I]);
      if (S->Key == Addr || S->Key == nullptr)
        return S;
      I = (I + 1) & Mask;
    }
  }

  void rehash(unsigned NewLog2) {
    std::vector<Slot> Old = std::move(Slots);
    SlotsLog2 = NewLog2;
    Slots.assign(std::size_t(1) << SlotsLog2, Slot{nullptr, 0});
    Count = 0;
    for (const Slot &S : Old)
      if (S.Key != nullptr) {
        Slot *N = findSlot(S.Key);
        *N = S;
        ++Count;
      }
  }

  static constexpr unsigned InitialSlotsLog2 = 6;

  std::vector<Slot> Slots;
  unsigned SlotsLog2 = InitialSlotsLog2;
  std::size_t Count = 0;
  uint64_t Bloom = 0;
};

} // namespace stm

#endif // STM_WRITEMAP_H
