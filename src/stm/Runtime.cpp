//===- stm/Runtime.cpp - stable public STM entry point --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009). Implements the lazy
// per-thread attachment behind stm::Runtime::threadTx(): one
// thread_local holder per thread, torn down through the same
// epoch-grace-period path ThreadScope uses, guarded by a liveness
// generation so teardown never touches a runtime that has already shut
// down (main-thread thread_locals outlive main()).
//
//===----------------------------------------------------------------------===//

#include "stm/Runtime.h"

#include "stm/EpochManager.h"
#include "stm/core/SharedArena.h"
#include "support/ThreadRegistry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include <pthread.h>

namespace stm {

namespace {

/// Generation of the currently live Runtime, 0 when none is.
std::atomic<uint64_t> LiveGen{0};
std::atomic<uint64_t> NextGen{1};

/// One per thread: the slot + handle this thread runs transactions on.
struct ThreadAttachment {
  uint64_t Gen = 0;
  unsigned Slot = 0;
  rt::TxHandle *Handle = nullptr;

  /// Full teardown, mirroring ~ThreadScope: unlink the descriptor from
  /// global state, park it for the grace period, free the slot. Only
  /// legal while the runtime of \p Gen is still live.
  void detach() {
    Handle->threadShutdown();
    EpochManager::retireObject(Handle);
    if (SharedArena::sharedActive())
      SharedArena::instance().unbindSlot(Slot);
    repro::ThreadRegistry::releaseSlot(Slot);
    Handle = nullptr;
    Gen = 0;
  }

  ~ThreadAttachment() {
    if (Handle == nullptr)
      return;
    if (Gen == LiveGen.load(std::memory_order_acquire)) {
      detach();
      return;
    }
    // The runtime this attachment belonged to is gone: its shutdown
    // already reclaimed everything a detach would touch. Return the
    // slot (the registry is process-wide and outlives runtimes) and
    // leak the handle shell — paying a few hundred bytes at thread
    // exit beats dereferencing torn-down backend globals.
    repro::ThreadRegistry::releaseSlot(Slot);
    Handle = nullptr;
  }
};

thread_local ThreadAttachment Attachment;

/// Fork-child fixup for multi-process mode: the forking thread's
/// attachment (slot + handle) still belongs to the *parent* — the slot
/// registry lives in the shared segment, so reusing the inherited slot
/// would collide with the parent's live binding. Drop the attachment
/// (leaking the handle shell, same trade as the stale-runtime path);
/// the child's first threadTx() then acquires a fresh slot bound to its
/// own pid. Private mode keeps classic fork semantics untouched.
void atForkChild() {
  if (!SharedArena::sharedActive())
    return;
  ThreadAttachment &A = Attachment;
  A.Handle = nullptr;
  A.Gen = 0;
}

std::once_flag AtForkOnce;

} // namespace

Runtime::Runtime(const StmConfig &Config) {
  Gen = NextGen.fetch_add(1, std::memory_order_relaxed);
  uint64_t Expected = 0;
  if (!LiveGen.compare_exchange_strong(Expected, Gen,
                                       std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "stm: only one stm::Runtime may be live per process\n");
    std::abort();
  }
  std::call_once(AtForkOnce,
                 [] { pthread_atfork(nullptr, nullptr, atForkChild); });
  StmRuntime::globalInit(Config);
}

Runtime::~Runtime() {
  // Detach the destroying thread's own attachment (the common
  // runtime-and-transactions-on-main-thread case). Other threads must
  // have exited — their thread_local teardown ran — or stopped issuing
  // transactions; see the header contract.
  if (Attachment.Handle != nullptr && Attachment.Gen == Gen)
    Attachment.detach();
  LiveGen.store(0, std::memory_order_release);
  StmRuntime::globalShutdown();
}

rt::TxHandle &Runtime::threadTx() {
  ThreadAttachment &A = Attachment;
  if (A.Gen != Gen) {
    if (A.Handle != nullptr) {
      // Stale attachment from an earlier, destroyed runtime (this
      // thread outlived it and is now attaching to a new one): same
      // reasoning as ~ThreadAttachment — recover the slot, leak the
      // handle shell whose backends are long gone.
      repro::ThreadRegistry::releaseSlot(A.Slot);
      A.Handle = nullptr;
    }
    A.Slot = repro::ThreadRegistry::acquireSlot();
    if (SharedArena::sharedActive())
      SharedArena::instance().bindSlot(A.Slot);
    A.Handle = new rt::TxHandle(A.Slot);
    A.Gen = Gen;
  }
  return *A.Handle;
}

} // namespace stm
