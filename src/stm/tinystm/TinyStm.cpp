//===- stm/tinystm/TinyStm.cpp - TinySTM baseline --------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "stm/tinystm/TinyStm.h"

#include "support/Platform.h"

using namespace stm;
using namespace stm::tiny;

static TinyGlobals GlobalState;

TinyGlobals &stm::tiny::tinyGlobals() { return GlobalState; }

void TinyStm::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                         resolvedLockShards(Config));
  GlobalState.Clock.reset(Config.Clock, resolvedClockShards(Config));
}

void TinyStm::globalShutdown() { globalTeardown(GlobalState.Table); }

void TinyTx::onStart() {
  baseStart();
  ReadLog.clear();
  WriteLog.clear();
  WordLog.clear();
  beginEpoch(GlobalState.Clock);
}

Word TinyTx::load(const Word *Addr) {
  ++Stats.Reads;
  VLock &Lock = GlobalState.Table.entryFor(Addr);

  Word V = Lock.L.load(std::memory_order_acquire);
  while (true) {
    STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Lock), V);
    if (vlockIsLocked(V)) {
      StripeWrite *Entry = vlockEntry(V);
      if (Entry->Owner.load(std::memory_order_relaxed) == this) {
        // Read-after-write through the encounter-time lock.
        for (WordWrite *W = Entry->Head; W; W = W->Next)
          if (W->Addr == Addr)
            return W->Value;
        return racyLoad(Addr);
      }
      // Encounter-time read/write conflict: the timid policy aborts the
      // reader immediately. This is precisely the early-abort behaviour
      // the paper contrasts with SwissTM's lazy read/write detection.
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      rollback();
    }
    Word Value = racyLoad(Addr);
    // Single-fence mode: the recheck drops its acquire ordering, same
    // rationale as TL2's (the commit path publishes the clock only
    // after write-back, see TinyTx::commitSingleFence). Where acquire
    // loads are free (x86) the mode test folds away and the recheck
    // keeps the stronger order at zero cost.
    Word V2 = repro::AcquireLoadIsFree || !GlobalState.Config.SingleFence
                  ? Lock.L.load(std::memory_order_acquire)
                  : Lock.L.load(std::memory_order_relaxed);
    if (V == V2) {
      ReadLog.push_back(ReadEntry{&Lock, V});
      if (vlockVersion(V) > ValidTs &&
          !extendEpoch(GlobalState.Clock,
                       GlobalState.Config.EnableExtension,
                       vlockVersion(V))) {
        STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                               GlobalState.Table.indexOfEntry(&Lock), V);
        rollback();
      }
      return Value;
    }
    // Retry: a relaxed recheck value is good enough to detect the
    // mismatch, but the next iteration dereferences lock-carried state,
    // so re-sample with acquire (a no-op when V2 was already acquire).
    V = !repro::AcquireLoadIsFree && GlobalState.Config.SingleFence
            ? Lock.L.load(std::memory_order_acquire)
            : V2;
  }
}

void TinyTx::store(Word *Addr, Word Value) {
  ++Stats.Writes;
  VLock &Lock = GlobalState.Table.entryFor(Addr);

  StripeWrite *Mine = nullptr;
  while (true) {
    Word V = Lock.L.load(std::memory_order_acquire);
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Lock), V);
    if (vlockIsLocked(V)) {
      StripeWrite *Entry = vlockEntry(V);
      if (Entry->Owner.load(std::memory_order_relaxed) == this) {
        if (Mine != nullptr)
          WriteLog.popBack();
        addWordWrite(Entry, Addr, Value);
        return;
      }
      // Write/write conflict: timid, abort self.
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      rollback();
    }
    if (Mine == nullptr) {
      Mine = WriteLog.pushDefault();
      Mine->Owner.store(this, std::memory_order_relaxed);
      Mine->Lock = &Lock;
      Mine->Head = nullptr;
    }
    Mine->OldValue = V;
    Word Locked = reinterpret_cast<Word>(Mine) | 1;
    if (Lock.L.compare_exchange_weak(V, Locked, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      break;
  }

  if (vlockVersion(Mine->OldValue) > ValidTs &&
      !extendEpoch(GlobalState.Clock, GlobalState.Config.EnableExtension,
                   vlockVersion(Mine->OldValue))) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Lock),
                           Mine->OldValue);
    rollback();
  }
  addWordWrite(Mine, Addr, Value);
}

void TinyTx::addWordWrite(StripeWrite *Entry, Word *Addr, Word Value) {
  for (WordWrite *W = Entry->Head; W; W = W->Next) {
    if (W->Addr == Addr) {
      W->Value = Value;
      return;
    }
  }
  WordWrite *W = WordLog.pushDefault();
  W->Addr = Addr;
  W->Value = Value;
  W->Next = Entry->Head;
  Entry->Head = W;
}

void TinyTx::commit() {
  assert(Depth > 0 && "commit outside a transaction");

  if (WriteLog.empty()) {
    ++Stats.ReadOnlyCommits;
    baseCommit(GlobalState.Clock.load());
    return;
  }

  if (REPRO_UNLIKELY(GlobalState.Config.SingleFence)) {
    commitSingleFence();
    return;
  }

  // Commit timestamp under the configured clock policy; the shortcut
  // rules live in core::TimeValidation.
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    WriteLog.forEach([&Max](StripeWrite &E) {
      if (vlockVersion(E.OldValue) > Max)
        Max = vlockVersion(E.OldValue);
    });
    return Max;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  if (mustValidateCommit(Stamp) && !revalidate())
    rollback();

  // Write back and release each stripe with the commit timestamp.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Word Release = vlockMake(Ts);
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(E.Lock),
                  Ts);
    for (WordWrite *W = E.Head; W; W = W->Next)
      racyStore(W->Addr, W->Value);
    E.Lock->L.store(Release, std::memory_order_release);
  });

  baseCommit(Ts);
}

// SINGLEFENCEOPT ordering (see Tl2Tx::commitSingleFence): validate
// first (write-back is irreversible — the word log keeps no old data),
// write every stripe back while all locks stay held, and only then
// mint and publish the timestamp and release. The stamp is shared by
// construction, so validation can never be skipped. Out of line to
// keep the off-by-default variant out of the hot commit path.
REPRO_NOINLINE void TinyTx::commitSingleFence() {
  if (!revalidate())
    rollback();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(E.Lock),
                  0);
    for (WordWrite *W = E.Head; W; W = W->Next)
      racyStore(W->Addr, W->Value);
  });
  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t Max = 0;
    WriteLog.forEach([&Max](StripeWrite &E) {
      if (vlockVersion(E.OldValue) > Max)
        Max = vlockVersion(E.OldValue);
    });
    return Max;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  Word Release = vlockMake(Ts);
  WriteLog.forEach([&](StripeWrite &E) {
    E.Lock->L.store(Release, std::memory_order_release);
  });
  baseCommit(Ts);
}

void TinyTx::rollback() {
  // Release owned stripes back to their pre-acquisition versions. The
  // last entry may be speculative (its CAS never succeeded before the
  // abort), so only touch locks that actually point at our entry.
  WriteLog.forEach([](StripeWrite &E) {
    if (E.Lock != nullptr &&
        E.Lock->L.load(std::memory_order_relaxed) ==
            (reinterpret_cast<Word>(&E) | 1))
      E.Lock->L.store(E.OldValue, std::memory_order_release);
  });
  baseAbort();
  std::longjmp(*EnvTarget, 1);
}

bool TinyTx::validateReadSet() {
  for (const ReadEntry &R : ReadLog) {
    Word Cur = R.Lock->L.load(std::memory_order_acquire);
    if (Cur == R.Seen)
      continue;
    if (vlockIsLocked(Cur)) {
      // Stripe we read and then acquired ourselves: valid only if no
      // other transaction committed into it between our read and our
      // acquisition, i.e. the version observed when the lock was taken
      // is still the version we read.
      StripeWrite *Entry = vlockEntry(Cur);
      if (Entry->Owner.load(std::memory_order_relaxed) == this &&
          // The PR 1 regression knob resurrects the original bug:
          // trusting any self-locked stripe without checking that the
          // pre-acquisition version is still the version we read.
          (Entry->OldValue == R.Seen || STM_DIAG_INJECTED(SelfLockedSkip)))
        continue;
    }
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(R.Lock), Cur);
    return false;
  }
  return true;
}
