//===- workloads/stamp/Yada.h - STAMP yada (mesh refinement) ----*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's yada refines a Delaunay mesh with Ruppert's algorithm. This
// reimplementation keeps the transactional character -- a shared
// work-list of bad triangles, refinement transactions that rewrite a
// small neighbourhood (cavity) of the mesh, conflicts between
// neighbouring cavities -- using Rivara longest-edge bisection, which is
// exactly checkable (substitution documented in DESIGN.md):
//
//   * the initial mesh is a grid of right isosceles triangles with
//     integer coordinates; hypotenuse midpoints stay exact under
//     repeated halving, so area conservation is an equality, not an
//     epsilon test;
//   * a triangle is "bad" while its doubled area exceeds a threshold
//     (smaller near the domain centre, mimicking refinement around a
//     feature);
//   * splitting a triangle requires its hypotenuse neighbour to share
//     that hypotenuse; otherwise the neighbour is refined first
//     (Rivara propagation), creating the inter-transaction conflicts.
//
// Triangles and points live in pre-sized pools with atomic bump
// allocation: an aborted transaction leaks its slot (harmless) instead
// of racing the allocator.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_YADA_H
#define WORKLOADS_STAMP_YADA_H

#include "stm/Stm.h"
#include "workloads/containers/TxQueue.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace workloads::stamp {

struct YadaConfig {
  unsigned GridCells = 8;   ///< initial mesh = GridCells^2 squares
  unsigned CoordShift = 10; ///< grid step = 2^CoordShift (exact halving)
  unsigned Levels = 3;      ///< refinement levels forced at the centre
};

template <typename STM> class Yada {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  struct Point {
    int64_t X;
    int64_t Y;
  };

  /// Mesh triangle. Vertices (immutable after publication) are point
  /// ids; neighbour links and liveness are transactional. Edge i joins
  /// V[i] and V[(i+1)%3]; the neighbour across it is N[i].
  struct Tri {
    uint32_t V[3];
    Word N[3]; // Tri*
    Word Alive;
  };

  explicit Yada(const YadaConfig &Config) : Cfg(Config) {
    buildInitialMesh();
  }

  Yada(const Yada &) = delete;
  Yada &operator=(const Yada &) = delete;

  /// A unit of refinement work: Forced entries are conformity splits
  /// demanded by Rivara propagation and split regardless of quality.
  struct WorkItem {
    Tri *Target;
    bool Forced;
  };

  /// Worker loop: refines until no bad triangles remain. Returns the
  /// number of splits performed by this thread.
  uint64_t work(Tx &T) {
    uint64_t Splits = 0;
    std::vector<WorkItem> Local;
    while (true) {
      WorkItem Item{nullptr, false};
      if (!Local.empty()) {
        Item = Local.back();
        Local.pop_back();
      } else {
        WorkItem *ItemPtr = &Item;
        stm::atomically(T, [&, ItemPtr](Tx &X) {
          Word Raw = 0;
          ItemPtr->Target = WorkQueue.dequeue(X, &Raw)
                                ? reinterpret_cast<Tri *>(Raw)
                                : nullptr;
        });
        if (Item.Target == nullptr)
          break; // queue drained; our local list is empty too
      }
      Splits += refineStep(T, Item, Local);
    }
    return Splits;
  }

  //===--------------------------------------------------------------===//
  // Non-transactional validation (quiesced use only)
  //===--------------------------------------------------------------===//

  /// Total doubled area of live triangles; must always equal the domain.
  int64_t liveArea2() const {
    int64_t Sum = 0;
    uint32_t N = TriCount.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I)
      if (TriPool[I].Alive)
        Sum += area2(&TriPool[I]);
    return Sum;
  }

  int64_t domainArea2() const {
    int64_t Side = int64_t(Cfg.GridCells) << Cfg.CoordShift;
    return 2 * Side * Side;
  }

  /// No live triangle may still be bad.
  bool allGood() const {
    uint32_t N = TriCount.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I)
      if (TriPool[I].Alive && isBad(&TriPool[I]))
        return false;
    return true;
  }

  /// Neighbour links among live triangles must be symmetric and share
  /// the claimed edge's endpoints.
  bool conforming() const {
    uint32_t N = TriCount.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I) {
      const Tri *A = &TriPool[I];
      if (!A->Alive)
        continue;
      for (unsigned E = 0; E < 3; ++E) {
        const Tri *B = reinterpret_cast<const Tri *>(A->N[E]);
        if (B == nullptr)
          continue;
        if (!B->Alive)
          return false; // dangling link to a dead triangle
        if (edgeIndexOf(B, A->V[E], A->V[(E + 1) % 3]) < 0)
          return false; // edge endpoints disagree
        bool BackLink = false;
        for (unsigned F = 0; F < 3; ++F)
          BackLink |= reinterpret_cast<const Tri *>(B->N[F]) == A;
        if (!BackLink)
          return false;
      }
    }
    return true;
  }

  uint64_t liveTriangles() const {
    uint64_t Live = 0;
    uint32_t N = TriCount.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I)
      Live += TriPool[I].Alive != 0;
    return Live;
  }

private:
  //===--------------------------------------------------------------===//
  // Geometry (coordinates are immutable: safe outside transactions)
  //===--------------------------------------------------------------===//

  int64_t edgeLen2(const Tri *T, unsigned E) const {
    const Point &A = Points[T->V[E]];
    const Point &B = Points[T->V[(E + 1) % 3]];
    int64_t DX = A.X - B.X, DY = A.Y - B.Y;
    return DX * DX + DY * DY;
  }

  /// Index of the strictly longest edge (unique for right isosceles
  /// triangles: the hypotenuse).
  unsigned longestEdge(const Tri *T) const {
    unsigned Best = 0;
    int64_t BestLen = edgeLen2(T, 0);
    for (unsigned E = 1; E < 3; ++E) {
      int64_t Len = edgeLen2(T, E);
      if (Len > BestLen) {
        BestLen = Len;
        Best = E;
      }
    }
    return Best;
  }

  int64_t area2(const Tri *T) const {
    const Point &A = Points[T->V[0]];
    const Point &B = Points[T->V[1]];
    const Point &C = Points[T->V[2]];
    int64_t Cross =
        (B.X - A.X) * (C.Y - A.Y) - (B.Y - A.Y) * (C.X - A.X);
    return Cross < 0 ? -Cross : Cross;
  }

  /// Refinement criterion: area threshold shrinks near the domain
  /// centre (feature refinement), so work is spatially non-uniform.
  bool isBad(const Tri *T) const {
    int64_t Side = int64_t(Cfg.GridCells) << Cfg.CoordShift;
    const Point &A = Points[T->V[0]];
    int64_t CX = A.X - Side / 2, CY = A.Y - Side / 2;
    int64_t Dist2 = CX * CX + CY * CY;
    int64_t CellArea2 = (int64_t(1) << (2 * Cfg.CoordShift));
    // Within the central quarter: force Cfg.Levels halvings; outside:
    // one halving.
    int64_t Threshold = Dist2 * 16 < Side * Side
                            ? CellArea2 >> Cfg.Levels
                            : CellArea2 >> 1;
    return area2(T) > Threshold;
  }

  /// Which edge of \p T joins points \p P and \p Q (either order);
  /// -1 when none does.
  static int edgeIndexOf(const Tri *T, uint32_t P, uint32_t Q) {
    for (unsigned E = 0; E < 3; ++E) {
      uint32_t A = T->V[E], B = T->V[(E + 1) % 3];
      if ((A == P && B == Q) || (A == Q && B == P))
        return static_cast<int>(E);
    }
    return -1;
  }

  //===--------------------------------------------------------------===//
  // Pools
  //===--------------------------------------------------------------===//

  uint32_t newPoint(int64_t X, int64_t Y) {
    uint32_t Id = PointCount.fetch_add(1, std::memory_order_acq_rel);
    assert(Id < Points.size() && "point pool exhausted (abort storm?)");
    Points[Id] = Point{X, Y};
    return Id;
  }

  Tri *newTri() {
    uint32_t Id = TriCount.fetch_add(1, std::memory_order_acq_rel);
    assert(Id < TriPool.size() && "triangle pool exhausted (abort storm?)");
    return &TriPool[Id];
  }

  //===--------------------------------------------------------------===//
  // Refinement
  //===--------------------------------------------------------------===//

  /// One refinement step on \p Item. Newly created or requeued
  /// triangles go to \p Local. Returns 1 when a split happened.
  uint64_t refineStep(Tx &T, WorkItem Item, std::vector<WorkItem> &Local) {
    // Stale check and compatibility probe run inside the transaction;
    // the result arrays are filled by the committed attempt only.
    Tri *Bad = Item.Target;
    Tri *Created[4];
    WorkItem Requeue[2];
    unsigned NumCreatedV = 0, NumRequeueV = 0;
    unsigned *NumCreated = &NumCreatedV, *NumRequeue = &NumRequeueV;
    bool DidSplitV = false;
    bool *DidSplit = &DidSplitV;

    stm::atomically(T, [&](Tx &X) {
      *NumCreated = 0;
      *NumRequeue = 0;
      *DidSplit = false;
      if (X.load(&Bad->Alive) == 0)
        return; // split by somebody else meanwhile
      if (!Item.Forced && !isBad(Bad))
        return;
      unsigned E = longestEdge(Bad);
      Tri *Nbr = reinterpret_cast<Tri *>(X.load(&Bad->N[E]));
      if (Nbr != nullptr) {
        int NbrEdge =
            edgeIndexOf(Nbr, Bad->V[E], Bad->V[(E + 1) % 3]);
        if (static_cast<unsigned>(NbrEdge) != longestEdge(Nbr)) {
          // Rivara propagation: the neighbour must be split first (a
          // *forced* conformity split, regardless of its quality).
          // Push ourselves below the neighbour so the LIFO local list
          // handles the neighbour before retrying us.
          Requeue[(*NumRequeue)++] = WorkItem{Bad, Item.Forced};
          Requeue[(*NumRequeue)++] = WorkItem{Nbr, true};
          return;
        }
        splitPair(X, Bad, E, Nbr, static_cast<unsigned>(NbrEdge),
                  Created, NumCreated);
      } else {
        splitBoundary(X, Bad, E, Created, NumCreated);
      }
      *DidSplit = true;
    });

    for (unsigned I = 0; I < NumRequeueV; ++I)
      Local.push_back(Requeue[I]);
    for (unsigned I = 0; I < NumCreatedV; ++I)
      if (isBad(Created[I]))
        Local.push_back(WorkItem{Created[I], false});
    return DidSplitV ? 1 : 0;
  }

  /// Replaces, in \p W, the neighbour link pointing to \p Old by \p New.
  void replaceNeighbor(Tx &X, Tri *W, Tri *Old, Tri *New) {
    if (W == nullptr)
      return;
    for (unsigned E = 0; E < 3; ++E) {
      if (reinterpret_cast<Tri *>(X.load(&W->N[E])) == Old) {
        X.store(&W->N[E], reinterpret_cast<Word>(New));
        return;
      }
    }
  }

  /// Splits \p T whose longest edge E lies on the boundary.
  void splitBoundary(Tx &X, Tri *T, unsigned E, Tri *Created[4],
                     unsigned *NumCreated) {
    uint32_t A = T->V[E], B = T->V[(E + 1) % 3], C = T->V[(E + 2) % 3];
    Tri *NbrBC = reinterpret_cast<Tri *>(X.load(&T->N[(E + 1) % 3]));
    Tri *NbrCA = reinterpret_cast<Tri *>(X.load(&T->N[(E + 2) % 3]));
    uint32_t M = newPoint((Points[A].X + Points[B].X) / 2,
                          (Points[A].Y + Points[B].Y) / 2);
    Tri *T1 = makeTri(X, A, M, C, /*NAB=*/nullptr, /*NBC=*/nullptr, NbrCA);
    Tri *T2 = makeTri(X, M, B, C, /*NAB=*/nullptr, NbrBC, T1);
    X.store(&T1->N[1], reinterpret_cast<Word>(T2)); // (M,C) <-> T2
    replaceNeighbor(X, NbrBC, T, T2);
    replaceNeighbor(X, NbrCA, T, T1);
    X.store(&T->Alive, 0);
    Created[(*NumCreated)++] = T1;
    Created[(*NumCreated)++] = T2;
  }

  /// Splits the compatible pair \p T (edge E) and \p U (edge F) across
  /// their shared longest edge.
  void splitPair(Tx &X, Tri *T, unsigned E, Tri *U, unsigned F,
                 Tri *Created[4], unsigned *NumCreated) {
    uint32_t A = T->V[E], B = T->V[(E + 1) % 3], C = T->V[(E + 2) % 3];
    uint32_t D = U->V[(F + 2) % 3];
    Tri *TNbrBC = reinterpret_cast<Tri *>(X.load(&T->N[(E + 1) % 3]));
    Tri *TNbrCA = reinterpret_cast<Tri *>(X.load(&T->N[(E + 2) % 3]));
    // U's edge F joins the same points; determine U's outer neighbours
    // relative to (A, B) orientation.
    bool SameDir = U->V[F] == A;
    Tri *UNbrNextOfF = reinterpret_cast<Tri *>(X.load(&U->N[(F + 1) % 3]));
    Tri *UNbrPrevOfF = reinterpret_cast<Tri *>(X.load(&U->N[(F + 2) % 3]));
    // Edge (F+1) of U joins (U->V[F+1], D); edge (F+2) joins (D, U->V[F]).
    Tri *UNbrBD = SameDir ? UNbrNextOfF : UNbrPrevOfF; // touches B
    Tri *UNbrDA = SameDir ? UNbrPrevOfF : UNbrNextOfF; // touches A

    uint32_t M = newPoint((Points[A].X + Points[B].X) / 2,
                          (Points[A].Y + Points[B].Y) / 2);

    Tri *T1 = makeTri(X, A, M, C, nullptr, nullptr, TNbrCA);
    Tri *T2 = makeTri(X, M, B, C, nullptr, TNbrBC, nullptr);
    Tri *U1 = makeTri(X, M, A, D, nullptr, UNbrDA, nullptr);
    Tri *U2 = makeTri(X, B, M, D, nullptr, nullptr, UNbrBD);

    // Internal adjacencies.
    X.store(&T1->N[0], reinterpret_cast<Word>(U1)); // (A,M)
    X.store(&T1->N[1], reinterpret_cast<Word>(T2)); // (M,C)
    X.store(&T2->N[0], reinterpret_cast<Word>(U2)); // (M,B)
    X.store(&T2->N[2], reinterpret_cast<Word>(T1)); // (C,M)
    X.store(&U1->N[0], reinterpret_cast<Word>(T1)); // (M,A)
    X.store(&U1->N[2], reinterpret_cast<Word>(U2)); // (D,M)
    X.store(&U2->N[0], reinterpret_cast<Word>(T2)); // (B,M)
    X.store(&U2->N[1], reinterpret_cast<Word>(U1)); // (M,D)

    replaceNeighbor(X, TNbrBC, T, T2);
    replaceNeighbor(X, TNbrCA, T, T1);
    replaceNeighbor(X, UNbrBD, U, U2);
    replaceNeighbor(X, UNbrDA, U, U1);

    X.store(&T->Alive, 0);
    X.store(&U->Alive, 0);
    Created[(*NumCreated)++] = T1;
    Created[(*NumCreated)++] = T2;
    Created[(*NumCreated)++] = U1;
    Created[(*NumCreated)++] = U2;
  }

  /// Allocates and publishes a live triangle (A, B, C) with the given
  /// neighbours across (A,B), (B,C), (C,A).
  Tri *makeTri(Tx &X, uint32_t A, uint32_t B, uint32_t C, Tri *NAB,
               Tri *NBC, Tri *NCA) {
    Tri *T = newTri();
    T->V[0] = A;
    T->V[1] = B;
    T->V[2] = C;
    X.store(&T->N[0], reinterpret_cast<Word>(NAB));
    X.store(&T->N[1], reinterpret_cast<Word>(NBC));
    X.store(&T->N[2], reinterpret_cast<Word>(NCA));
    X.store(&T->Alive, 1);
    return T;
  }

  //===--------------------------------------------------------------===//
  // Initial mesh
  //===--------------------------------------------------------------===//

  void buildInitialMesh() {
    unsigned N = Cfg.GridCells;
    int64_t Step = int64_t(1) << Cfg.CoordShift;
    // Generous pools: every split adds <= 4 triangles and 1 point, and
    // aborted attempts leak their slots, so budget well beyond the
    // refinement-depth bound.
    std::size_t MaxTris = std::size_t(2) * N * N
                          << (Cfg.Levels + 6);
    TriPool.assign(MaxTris, Tri{});
    Points.assign(MaxTris, Point{});
    PointCount.store(0, std::memory_order_relaxed);
    TriCount.store(0, std::memory_order_relaxed);

    // Grid points.
    std::vector<uint32_t> Grid((N + 1) * (N + 1));
    for (unsigned Y = 0; Y <= N; ++Y)
      for (unsigned X = 0; X <= N; ++X)
        Grid[Y * (N + 1) + X] = newPoint(X * Step, Y * Step);

    // Two right isosceles triangles per cell; the diagonal runs from
    // (x, y) to (x+1, y+1). Lower triangle: (x,y) (x+1,y) (x+1,y+1);
    // upper: (x,y) (x+1,y+1) (x,y+1). Hypotenuse = the diagonal.
    std::vector<Tri *> Lower(N * N), Upper(N * N);
    stm::ThreadScope<STM> Scope;
    Tx &T = Scope.tx();
    stm::atomically(T, [&](Tx &X) {
      for (unsigned Y = 0; Y < N; ++Y) {
        for (unsigned Cx = 0; Cx < N; ++Cx) {
          uint32_t P00 = Grid[Y * (N + 1) + Cx];
          uint32_t P10 = Grid[Y * (N + 1) + Cx + 1];
          uint32_t P11 = Grid[(Y + 1) * (N + 1) + Cx + 1];
          uint32_t P01 = Grid[(Y + 1) * (N + 1) + Cx];
          Lower[Y * N + Cx] = makeTri(X, P00, P10, P11, nullptr, nullptr,
                                      nullptr);
          Upper[Y * N + Cx] = makeTri(X, P11, P01, P00, nullptr, nullptr,
                                      nullptr);
        }
      }
      // Wire neighbours.
      for (unsigned Y = 0; Y < N; ++Y) {
        for (unsigned Cx = 0; Cx < N; ++Cx) {
          Tri *L = Lower[Y * N + Cx];
          Tri *Up = Upper[Y * N + Cx];
          // Diagonal (P11, P00): edge 2 of L, edge 2 of Up.
          X.store(&L->N[2], reinterpret_cast<Word>(Up));
          X.store(&Up->N[2], reinterpret_cast<Word>(L));
          // L edge 0 = bottom (P00, P10): neighbour is Upper of cell
          // below.
          if (Y > 0)
            X.store(&L->N[0],
                    reinterpret_cast<Word>(Upper[(Y - 1) * N + Cx]));
          // L edge 1 = right (P10, P11): Upper of cell to the right.
          if (Cx + 1 < N)
            X.store(&L->N[1],
                    reinterpret_cast<Word>(Upper[Y * N + Cx + 1]));
          // Up edge 0 = top (P11, P01): Lower of cell above.
          if (Y + 1 < N)
            X.store(&Up->N[0],
                    reinterpret_cast<Word>(Lower[(Y + 1) * N + Cx]));
          // Up edge 1 = left (P01, P00): Lower of cell to the left.
          if (Cx > 0)
            X.store(&Up->N[1],
                    reinterpret_cast<Word>(Lower[Y * N + Cx - 1]));
        }
      }
      // Seed the work queue with the initially bad triangles.
      for (Tri *Candidate : Lower)
        if (isBad(Candidate))
          WorkQueue.enqueue(X, reinterpret_cast<Word>(Candidate));
      for (Tri *Candidate : Upper)
        if (isBad(Candidate))
          WorkQueue.enqueue(X, reinterpret_cast<Word>(Candidate));
    });
  }

  YadaConfig Cfg;
  std::vector<Point> Points;
  std::vector<Tri> TriPool;
  std::atomic<uint32_t> PointCount{0};
  std::atomic<uint32_t> TriCount{0};
  TxQueue<STM> WorkQueue;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_YADA_H
