//===- stm/diag/Profiler.h - shadow-map conflict profiler -------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Attributes every abort to the address/stripe/lock-word that caused
// it. The mechanism is a per-slot "last conflict" note armed at each
// conflict-detection site (STM_DIAG_NOTE_CONFLICT) and consumed by the
// Abort lifecycle hook: because the note is cleared at Begin, an
// attributed abort is guaranteed to blame a conflict observed during
// the aborting attempt itself. Attackers note the contended stripe
// into their victim's slot before requesting a kill, so CM-initiated
// aborts stay attributed too.
//
// Aggregation is a shadow map keyed by lock-table stripe index: an
// open-addressed fixed-size table of atomic counters (conflicts seen,
// aborts attributed, and the first two distinct faulting addresses).
// Two distinct addresses conflicting through one stripe entry is
// lock-table false sharing — either two variables inside one
// granularity stripe or two stripes colliding on a table index — the
// exact effect Figure 13's granularity sweep trades against, now
// visible per stripe instead of only as an aggregate abort rate.
//
// The per-thread attribution counter (TxStats::AbortsAttributed) rides
// the ordinary stats channel, so attribution *coverage* — attributed
// aborts over all aborts — falls out of any bench's existing stats
// aggregation. The per-stripe table is process-global; benches print
// it via diag::maybePrintProfile.
//
//===----------------------------------------------------------------------===//

#ifndef STM_DIAG_PROFILER_H
#define STM_DIAG_PROFILER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace repro {
struct TxStats;
}

namespace stm::diag {

/// Aggregated view of one shadow-map stripe entry.
struct StripeProfile {
  uint64_t Stripe;       ///< lock-table index
  uint64_t Conflicts;    ///< conflict notes recorded against it
  uint64_t Aborts;       ///< aborts attributed to it
  uint64_t AddrA;        ///< first faulting address seen (0 if none)
  uint64_t AddrB;        ///< second distinct faulting address (0 if none)
  bool FalseSharing;     ///< >= 2 distinct addresses met in this entry
};

/// Whole-profiler snapshot, stripes sorted by attributed aborts
/// (then conflicts) descending.
struct ProfileReport {
  std::vector<StripeProfile> Stripes;
  uint64_t ConflictNotes = 0;      ///< total notes recorded
  uint64_t AttributedAborts = 0;   ///< aborts consumed with a note armed
  uint64_t UnattributedAborts = 0; ///< aborts with no note this attempt
  uint64_t FalseSharingStripes = 0;
  uint64_t DroppedStripes = 0; ///< notes lost to shadow-map overflow
};

class Profiler {
public:
  static Profiler &instance();

  /// Shadow-map capacity: plenty for any bench's hot set; overflow is
  /// counted, not resized (the hot stripes claim entries first).
  static constexpr std::size_t TableLog2 = 12;

  void enable();
  void disable();
  bool enabled() const;

  /// Clears the shadow map and all counters (keeps enabled state).
  void reset();

  /// Conflict-site entry (via STM_DIAG_NOTE_CONFLICT). \p Addr may be
  /// null when the site only knows the stripe (read-set validation).
  void noteConflict(unsigned Slot, const void *Addr, uint64_t Stripe,
                    uint64_t LockWord);

  /// Begin lifecycle: disarm the slot's note (a note may only ever
  /// attribute an abort of the attempt that recorded it).
  void noteBegin(unsigned Slot);

  /// Abort lifecycle: consume the slot's note, attribute the abort to
  /// its stripe, and bump \p Stats.AbortsAttributed on success.
  void noteAbort(unsigned Slot, repro::TxStats &Stats);

  ProfileReport report() const;

private:
  Profiler();
  struct Impl;
  Impl *P;
};

} // namespace stm::diag

#endif // STM_DIAG_PROFILER_H
