//===- stm/LockTable.h - address-to-lock mapping (paper Fig. 1) -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Maps every transactional address to a lock-table entry: the byte
// address is shifted right by the granularity exponent (so a stripe of
// 2^G consecutive bytes shares one entry) and masked by the table size.
// Distinct stripes may collide on one entry ("false conflicts"); the
// paper observes this is harmless in practice, and Figure 13 sweeps G.
//
//===----------------------------------------------------------------------===//

#ifndef STM_LOCKTABLE_H
#define STM_LOCKTABLE_H

#include "stm/Config.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace stm {

/// Fixed-size hash table of lock entries, one instance per STM.
/// \tparam EntryT per-stripe metadata (e.g. SwissTM's read/write lock
/// pair); must be default-constructible to an "unlocked" state and
/// provide reset() for re-initialization.
template <typename EntryT> class LockTable {
public:
  /// (Re)allocates the table. Any previous contents are discarded, so
  /// this must only run while no transaction is live.
  void init(unsigned SizeLog2, unsigned GranLog2) {
    assert(SizeLog2 >= 4 && SizeLog2 <= 28 && "unreasonable table size");
    assert(GranLog2 >= 2 && GranLog2 <= 12 && "unreasonable granularity");
    SizeMask = (uint64_t(1) << SizeLog2) - 1;
    GranularityLog2 = GranLog2;
    Entries = std::make_unique<EntryT[]>(SizeMask + 1);
  }

  void destroy() {
    Entries.reset();
    SizeMask = 0;
  }

  bool isInitialized() const { return Entries != nullptr; }

  /// Number of entries.
  uint64_t size() const { return SizeMask + 1; }

  /// Bytes of memory that share one entry.
  uint64_t stripeBytes() const { return uint64_t(1) << GranularityLog2; }

  /// Index computation of Figure 1: shift the address right by the
  /// granularity exponent, mask by table size.
  uint64_t indexFor(const void *Addr) const {
    return (reinterpret_cast<uintptr_t>(Addr) >> GranularityLog2) & SizeMask;
  }

  /// Returns the entry covering \p Addr.
  EntryT &entryFor(const void *Addr) {
    assert(Entries && "lock table used before init");
    return Entries[indexFor(Addr)];
  }

private:
  std::unique_ptr<EntryT[]> Entries;
  uint64_t SizeMask = 0;
  unsigned GranularityLog2 = 4;
};

} // namespace stm

#endif // STM_LOCKTABLE_H
