//===- stm/core/VersionedLock.h - version-in-word lock encoding -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every backend encodes a stripe's version number and its lock state in
// one machine word: the low bit(s) tag the lock state, the remaining
// bits carry the version (the commit timestamp of the last writer) or a
// descriptor pointer. The tag width is the only difference between the
// backends' encodings:
//
//   SwissTM r-lock   1 tag bit   version<<1 free, 1 locked
//   TL2 / TinySTM    1 tag bit   version<<1 free, descriptor|1 locked
//   RSTM orec        2 tag bits  version<<2 free, descriptor|1 owned,
//                                descriptor|3 owner committing
//
// VersionedLockOps centralizes the shifts and masks so a backend states
// its tag width once instead of hand-rolling three helpers.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_VERSIONEDLOCK_H
#define STM_CORE_VERSIONEDLOCK_H

#include "stm/Word.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace stm::core {

/// Terminates with a diagnostic when a clock value no longer fits the
/// version field of a lock word. Must die loudly in every build mode:
/// silently truncating would alias the new version onto an old one and
/// let stale reads pass validation — the worst possible failure.
[[noreturn]] inline void versionOverflowFatal(uint64_t Version,
                                              unsigned TagBits) {
  std::fprintf(stderr,
               "stm: commit timestamp %llu exceeds the %u-bit version "
               "field of a %u-tag-bit lock word\n",
               static_cast<unsigned long long>(Version),
               unsigned(8 * sizeof(Word)) - TagBits, TagBits);
  std::abort();
}

/// Encoding helpers for a versioned lock word with \p TagBits low tag
/// bits. Bit 0 is always the "locked/owned" bit; what the other tag bits
/// mean (RSTM's "committing") is backend-specific.
template <unsigned TagBits> struct VersionedLockOps {
  static_assert(TagBits >= 1 && TagBits < 8, "unreasonable tag width");

  static constexpr Word TagMask = (Word(1) << TagBits) - 1;

  /// Largest version the encoding can carry without aliasing into the
  /// tag bits (2^62 for RSTM's two tag bits — a per-commit clock would
  /// need ~146 years at 1 GHz to get there, but a corrupted or
  /// miscomputed timestamp must not wrap silently).
  static constexpr uint64_t MaxVersion = ~Word(0) >> TagBits;

  /// True when the word carries a descriptor pointer, not a version.
  static bool isLocked(Word V) { return (V & 1) != 0; }

  /// The version of a free lock word.
  static uint64_t version(Word V) { return V >> TagBits; }

  /// A free lock word carrying \p Version. Aborts loudly on a version
  /// that would alias into the tag bits (predictable branch; cost-free
  /// next to the release store it guards).
  static Word make(uint64_t Version) {
    if (Version > MaxVersion)
      versionOverflowFatal(Version, TagBits);
    return static_cast<Word>(Version << TagBits);
  }

  /// The descriptor pointer of a locked word, tag bits stripped.
  template <typename T> static T *pointer(Word V) {
    return reinterpret_cast<T *>(V & ~TagMask);
  }
};

} // namespace stm::core

#endif // STM_CORE_VERSIONEDLOCK_H
