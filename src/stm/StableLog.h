//===- stm/StableLog.h - pointer-stable append-only log --------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// SwissTM's write lock stores a *pointer* to the owner's write-log entry
// (Section 3.3), and TinySTM's encounter-time lock does the same, so log
// entries must never move once created. StableLog allocates in fixed
// chunks: growth never relocates existing entries, and clear() retains
// the chunks so steady-state transactions allocate nothing.
//
// Lifetime: a concurrent transaction that observed a stripe lock word
// may dereference an entry (its atomic Owner field) even after the
// owning transaction released the lock. The chunks are therefore only
// freed with the owning descriptor, whose destruction ThreadScope
// defers through stm/EpochManager.h until every transaction that could
// hold such a pointer has quiesced.
//
//===----------------------------------------------------------------------===//

#ifndef STM_STABLELOG_H
#define STM_STABLELOG_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace stm {

/// Append-only container with stable element addresses and O(1) clear.
template <typename T, std::size_t ChunkSize = 256> class StableLog {
public:
  /// Appends a value and returns a pointer that stays valid until the
  /// log is destroyed (clear() recycles slots but not addresses handed
  /// out before the clear — callers must not retain entries across
  /// transactions).
  T *push(const T &Value) {
    T *Slot = allocate();
    *Slot = Value;
    return Slot;
  }

  /// Appends a default-constructed value.
  T *pushDefault() {
    T *Slot = allocate();
    *Slot = T();
    return Slot;
  }

  /// Removes the most recently pushed entry (used when a lock CAS loses
  /// the race and the speculative entry must be withdrawn).
  void popBack() {
    assert(Count > 0 && "popBack on empty log");
    --Count;
  }

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Discards all entries; keeps chunk storage for reuse.
  void clear() { Count = 0; }

  /// Element access by insertion index.
  T &operator[](std::size_t I) {
    assert(I < Count && "log index out of range");
    return Chunks[I / ChunkSize][I % ChunkSize];
  }

  const T &operator[](std::size_t I) const {
    assert(I < Count && "log index out of range");
    return Chunks[I / ChunkSize][I % ChunkSize];
  }

  /// Minimal forward iteration support.
  template <typename Fn> void forEach(Fn &&Visit) {
    for (std::size_t I = 0; I < Count; ++I)
      Visit((*this)[I]);
  }

  template <typename Fn> void forEachReverse(Fn &&Visit) {
    for (std::size_t I = Count; I > 0; --I)
      Visit((*this)[I - 1]);
  }

private:
  T *allocate() {
    std::size_t Chunk = Count / ChunkSize;
    if (Chunk == Chunks.size())
      Chunks.push_back(std::make_unique<T[]>(ChunkSize).release());
    T *Slot = &Chunks[Chunk][Count % ChunkSize];
    ++Count;
    return Slot;
  }

public:
  StableLog() = default;
  StableLog(const StableLog &) = delete;
  StableLog &operator=(const StableLog &) = delete;

  ~StableLog() {
    for (T *Chunk : Chunks)
      delete[] Chunk;
  }

private:
  std::vector<T *> Chunks;
  std::size_t Count = 0;
};

} // namespace stm

#endif // STM_STABLELOG_H
