//===- bench/bench_fig9_polka_greedy.cpp - Figure 9 --------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 9: Polka vs Greedy contention management in RSTM on the
// read-dominated STMBench7 workload. Paper shape: Greedy beats Polka on
// this large-scale benchmark (the reverse of the small-benchmark
// folklore) because Greedy's age priority protects long transactions.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

static void sweep(stm::CmKind Cm, const char *Name) {
  stm::StmConfig Config;
  Config.Cm = Cm;
  for (unsigned Threads : threadSweep()) {
    RunResult R = bench7Throughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::Rstm, Config), Threads,
        Workload7::ReadDominated);
    Report::instance().add("fig9", "read-dominated", Name, Threads,
                           "tx_per_s", R.Value);
    Report::instance().add("fig9", "read-dominated", Name, Threads,
                           "abort_ratio", R.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  sweep(stm::CmKind::Greedy, "rstm-greedy");
  sweep(stm::CmKind::Polka, "rstm-polka");
  Report::instance().print(
      "9", "Polka vs Greedy (RSTM), STMBench7 read-dominated");
  return 0;
}
