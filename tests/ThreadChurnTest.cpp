//===- tests/ThreadChurnTest.cpp - thread-churn stress tests --------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Regression tests for the descriptor-lifetime race: an invisible reader
// that observed a stripe lock word can dereference the owner's write-log
// entry (or, for RSTM, its descriptor) after the owning thread exited.
// Production systems churn threads (pools, request handlers), so these
// tests repeatedly spawn and join short-lived transactional threads
// against long-lived readers, across all four backends. They must pass
// under ThreadSanitizer with no StableLog/descriptor suppression — the
// epoch-based reclamation of stm/EpochManager.h is what makes that hold.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/EpochManager.h"
#include "workloads/containers/TxHashMap.h"
#include "workloads/rbtree/RbTree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace stm;
using namespace workloads;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class ThreadChurnTest : public repro_test::RuntimeSuite {};

/// Short-lived writer waves mutate an rbtree and a hash map in lockstep
/// (both or neither, inside one transaction) while long-lived readers
/// continuously take consistent snapshots of both structures. Writer
/// descriptors retire mid-read, which is exactly the window where the
/// unreclaimed-descriptor race used to fire.
TEST_P(ThreadChurnTest, ShortLivedWritersAgainstLongLivedReaders) {
  RbTree<repro_test::Rt> Tree;
  TxHashMap<repro_test::Rt> Map(/*BucketsLog2=*/6);
  constexpr uint64_t Range = 256;
  constexpr unsigned Readers = 2;
  const unsigned Rounds = 10 * repro_test::stressScale();
  constexpr unsigned WritersPerRound = 4;
  constexpr unsigned OpsPerWriter = 64;

  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (uint64_t K = 0; K < Range; K += 2)
      atomically(Tx, [&](auto &T) {
        Tree.insert(T, K, K);
        Map.insert(T, K, K);
      });
  });

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Mismatches{0};
  std::atomic<uint64_t> ReadTxs{0};
  std::vector<std::thread> ReaderThreads;
  for (unsigned R = 0; R < Readers; ++R)
    ReaderThreads.emplace_back([&, R] {
      ThreadScope<repro_test::Rt> Scope;
      auto &Tx = Scope.tx();
      repro::Xorshift Rng(repro::testSeed(1000 + R));
      uint64_t Local = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        uint64_t Key = Rng.nextBounded(Range);
        bool InTree = false, InMap = false;
        bool *TreePtr = &InTree, *MapPtr = &InMap;
        atomically(Tx, [&, TreePtr, MapPtr, Key](auto &T) {
          *TreePtr = Tree.lookup(T, Key);
          *MapPtr = Map.contains(T, Key);
        });
        // Writers keep the two structures in lockstep within one
        // transaction, so any committed snapshot agrees.
        if (InTree != InMap)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
        ++Local;
      }
      ReadTxs.fetch_add(Local, std::memory_order_relaxed);
    });

  for (unsigned Round = 0; Round < Rounds; ++Round) {
    std::vector<std::thread> Writers;
    for (unsigned W = 0; W < WritersPerRound; ++W)
      Writers.emplace_back([&, Round, W] {
        ThreadScope<repro_test::Rt> Scope;
        auto &Tx = Scope.tx();
        repro::Xorshift Rng(repro::testSeed(Round * 131 + W));
        for (unsigned I = 0; I < OpsPerWriter; ++I) {
          uint64_t Key = Rng.nextBounded(Range);
          if (Rng.nextPercent(50))
            atomically(Tx, [&, Key](auto &T) {
              if (Tree.insert(T, Key, Key))
                Map.insert(T, Key, Key);
            });
          else
            atomically(Tx, [&, Key](auto &T) {
              if (Tree.remove(T, Key))
                Map.remove(T, Key);
            });
        }
      });
    // Joining here retires four descriptors per round while the readers
    // are mid-transaction — the race window under test.
    for (std::thread &W : Writers)
      W.join();
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &R : ReaderThreads)
    R.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_GT(ReadTxs.load(), 0u);
  EXPECT_TRUE(Tree.verify());
  EXPECT_EQ(Tree.size(), Map.sizeRaw());
}

/// Rapid sequential churn: every worker lives for exactly one
/// transaction, so registry slots and their epoch entries recycle
/// constantly while a long-lived reader keeps pinning epochs.
TEST_P(ThreadChurnTest, OneShotThreadsRecycleSlotsUnderReader) {
  TxHashMap<repro_test::Rt> Map(/*BucketsLog2=*/4);
  constexpr uint64_t Keys = 64;
  const unsigned Churns = 96 * repro_test::stressScale();

  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (uint64_t K = 0; K < Keys; ++K)
      atomically(Tx, [&](auto &T) { Map.insert(T, K, 0); });
  });

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> BadSums{0};
  std::thread Reader([&] {
    ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    repro::Xorshift Rng(repro::testSeed(4242));
    while (!Stop.load(std::memory_order_relaxed)) {
      uint64_t Key = Rng.nextBounded(Keys);
      bool Found = false;
      bool *FoundPtr = &Found;
      atomically(Tx, [&, FoundPtr, Key](auto &T) {
        *FoundPtr = Map.contains(T, Key);
      });
      // Keys are only ever updated in place, never removed.
      if (!Found)
        BadSums.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (unsigned I = 0; I < Churns; ++I)
    std::thread([&, I] {
      ThreadScope<repro_test::Rt> Scope;
      auto &Tx = Scope.tx();
      uint64_t Key = I % Keys;
      atomically(Tx, [&, Key](auto &T) {
        Word V = 0;
        Map.lookup(T, Key, &V);
        Map.update(T, Key, V + 1);
      });
    }).join();

  Stop.store(true, std::memory_order_relaxed);
  Reader.join();

  EXPECT_EQ(BadSums.load(), 0u);
  EXPECT_EQ(Map.sizeRaw(), Keys);
  // Every one-shot increment committed exactly once.
  uint64_t Sum = 0;
  Map.forEachRaw([&](uint64_t, Word V) { Sum += V; });
  EXPECT_EQ(Sum, Churns);
}

/// Concurrent churn: many short-lived writer threads run at once while
/// readers churn too, maximizing pressure on slot reuse and on the
/// limbo list's opportunistic collection.
TEST_P(ThreadChurnTest, ConcurrentChurnersStayConsistent) {
  RbTree<repro_test::Rt> Tree;
  constexpr uint64_t PerThread = 24;
  const unsigned Waves = 6 * repro_test::stressScale();
  constexpr unsigned ThreadsPerWave = 6;

  for (unsigned Wave = 0; Wave < Waves; ++Wave) {
    std::vector<std::thread> Churners;
    for (unsigned C = 0; C < ThreadsPerWave; ++C)
      Churners.emplace_back([&, Wave, C] {
        ThreadScope<repro_test::Rt> Scope;
        auto &Tx = Scope.tx();
        uint64_t Base = (Wave * ThreadsPerWave + C) * PerThread;
        for (uint64_t K = 0; K < PerThread; ++K)
          atomically(Tx, [&, K](auto &T) { Tree.insert(T, Base + K, K); });
        // Immediately read back through a fresh transaction so reads
        // overlap other churners' commits and exits.
        for (uint64_t K = 0; K < PerThread; ++K) {
          bool Found = false;
          bool *FoundPtr = &Found;
          atomically(Tx, [&, FoundPtr, K](auto &T) {
            *FoundPtr = Tree.lookup(T, Base + K);
          });
          EXPECT_TRUE(Found) << "lost key " << Base + K;
        }
      });
    for (std::thread &C : Churners)
      C.join();
  }

  EXPECT_EQ(Tree.size(), uint64_t(Waves) * ThreadsPerWave * PerThread);
  EXPECT_TRUE(Tree.verify());
}

STM_INSTANTIATE_RUNTIME_SUITE(ThreadChurnTest);

} // namespace
