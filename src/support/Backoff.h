//===- support/Backoff.h - spin-wait and back-off policies ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// SwissTM delays a transaction after rollback for a period proportional to
// its number of successive aborts (Section 3.2, cm-on-rollback); Polka uses
// exponential back-off between conflict retries (Section 2.1). Both spin
// policies live here so every contention manager shares one implementation.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BACKOFF_H
#define SUPPORT_BACKOFF_H

#include "support/Platform.h"
#include "support/Random.h"

#include <cstdint>

#include <sched.h>

namespace repro {

/// Busy-spins for roughly \p Iterations pause slots.
inline void spinFor(uint64_t Iterations) {
  for (uint64_t I = 0; I < Iterations; ++I)
    cpuRelax();
}

/// One step of a wait loop: PAUSE normally, but yield the CPU every 64
/// steps so waits make progress on oversubscribed (or single-core)
/// hosts, where the partner we wait for needs our time slice to run.
inline void spinWait(unsigned &Step) {
  if ((++Step & 63) == 0)
    sched_yield();
  else
    cpuRelax();
}

/// Randomized linear back-off: waits a uniformly random number of pause
/// slots in [0, SuccessiveAborts * Unit). Used by SwissTM's
/// cm-on-rollback (Algorithm 2, line 11).
inline void randomLinearBackoff(Xorshift &Rng, unsigned SuccessiveAborts,
                                uint64_t Unit = 64) {
  if (SuccessiveAborts == 0)
    return;
  spinFor(Rng.nextBounded(SuccessiveAborts * Unit + 1));
}

/// Randomized (capped) exponential back-off used by Polka while the
/// attacker waits for the victim: attempt K waits a random period in
/// [0, Unit * 2^min(K, Cap)).
inline void randomExponentialBackoff(Xorshift &Rng, unsigned Attempt,
                                     uint64_t Unit = 16, unsigned Cap = 10) {
  unsigned Shift = Attempt < Cap ? Attempt : Cap;
  spinFor(Rng.nextBounded((Unit << Shift) + 1));
}

} // namespace repro

#endif // SUPPORT_BACKOFF_H
