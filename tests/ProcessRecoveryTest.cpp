//===- tests/ProcessRecoveryTest.cpp - SIGKILL process-death recovery ------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The multi-process kill harness: fork worker processes over a shared
// segment, SIGKILL them at schedule-controlled points, and assert the
// survivors detect the death, break the corpse's stripe locks, keep
// committing, and that the conservation audit over the shared account
// array still balances. The kill points, in order of nastiness:
//
//   * pre-acquire — the victim is bound to a slot but holds nothing;
//     recovery just retires the slot;
//   * holding write locks, pre-stamp — SwissTM's eager WLock acquire
//     means an in-flight writer parked mid-transaction holds stripes;
//     recovery must replay its intent log to free them;
//   * post-stamp, pre-write-back — the worst recoverable lazy-commit
//     moment, reached deterministically via the ParkAtCommitStamp
//     injection (STM_DIAG builds only);
//   * mid write-back — NOT recoverable by design: the phase word is
//     set, and recovery must poison the segment loudly instead of
//     letting survivors read half-written data.
//
// Children are forked after globalInit and therefore inherit the
// creator flag: they must never call globalShutdown (which would
// unlink the live segment) — the killed ones can't, and the clean one
// _exits around it. STM_KILLSTRESS=<n> scales the victim count for the
// nightly `ctest -L killstress` leg.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/core/SharedArena.h"
#include "stm/diag/Hooks.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace stm;
using repro_test::Rt;

namespace {

constexpr unsigned NumAccounts = 64;
constexpr Word InitialBalance = 100;

/// Victims per kill point: 2 in the tier-1 run, scaled up by
/// STM_KILLSTRESS for the nightly killstress leg.
unsigned killIterations() {
  const char *Env = std::getenv("STM_KILLSTRESS");
  if (Env != nullptr && Env[0] != '\0') {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0 && V <= 1000)
      return unsigned(V);
  }
  return 2;
}

void segName(const char *Tag, char *Out, std::size_t Len) {
  std::snprintf(Out, Len, "swisstm-kill-%s-%d", Tag, int(getpid()));
}

StmConfig sharedConfig(const char *Name) {
  StmConfig Config;
  Config.Backend = rt::BackendKind::SwissTm;
  Config.Adaptive = false;
  Config.LockTableSizeLog2 = 16;
  std::snprintf(Config.SharedSegment, sizeof(Config.SharedSegment), "%s",
                Name);
  return Config;
}

/// Creates the segment, places the account array in the shared heap and
/// funds it. Returns the array; tears down via teardown().
struct KillFixture {
  char Name[64];
  Word *Acc = nullptr;

  explicit KillFixture(const char *Tag) {
    segName(Tag, Name, sizeof(Name));
    SharedArena::unlinkSegment(Name);
    StmRuntime::globalInit(sharedConfig(Name));
    Acc = static_cast<Word *>(sharedAlloc(NumAccounts * sizeof(Word)));
    for (unsigned I = 0; I < NumAccounts; ++I)
      Acc[I] = InitialBalance;
  }

  ~KillFixture() {
    flag().store(0, std::memory_order_release);
    sharedDispatchFree(Acc);
    StmRuntime::globalShutdown();
    SharedArena::unlinkSegment(Name);
  }

  /// Segment-resident handshake word the victim uses to report "I am at
  /// the kill point" to the parent.
  static std::atomic<Word> &flag() {
    return SharedArena::instance().userRoot(2);
  }

  /// Waits (bounded) for the victim to raise the flag; kills and reaps
  /// it either way so a wedged victim cannot hang the whole suite.
  static bool waitFlagThenKill(pid_t Victim, unsigned ExtraMs = 0) {
    bool Raised = false;
    for (unsigned I = 0; I < 10000; ++I) {
      if (flag().load(std::memory_order_acquire) != 0) {
        Raised = true;
        break;
      }
      usleep(1000);
    }
    // Grace window for kill points the victim cannot signal from (a
    // park inside commit): the flag goes up just before the final
    // operation, the sleep lets the victim reach the park itself.
    if (Raised && ExtraMs != 0)
      usleep(ExtraMs * 1000);
    kill(Victim, SIGKILL);
    int Status = 0;
    waitpid(Victim, &Status, 0);
    flag().store(0, std::memory_order_release);
    return Raised;
  }

  Word auditTotal() {
    Word Total = 0;
    ThreadScope<Rt> Scope;
    atomically(Scope.tx(), [&](auto &T) {
      Word Sum = 0;
      for (unsigned I = 0; I < NumAccounts; ++I)
        Sum += T.load(&Acc[I]);
      Total = Sum;
    });
    return Total;
  }

  /// Survivor work: ring transfers across every account, including the
  /// stripes a dead victim may be holding — this is what drives the
  /// conflict-path recovery.
  void survivorTransfers(unsigned Rounds) {
    ThreadScope<Rt> Scope;
    for (unsigned R = 0; R < Rounds; ++R)
      for (unsigned I = 0; I < NumAccounts; ++I) {
        unsigned J = (I + 1) % NumAccounts;
        atomically(Scope.tx(), [&](auto &T) {
          T.store(&Acc[I], T.load(&Acc[I]) - 1);
          T.store(&Acc[J], T.load(&Acc[J]) + 1);
        });
      }
  }
};

//===----------------------------------------------------------------------===//
// Sanity: two live processes, no kills
//===----------------------------------------------------------------------===//

TEST(ProcessRecoveryTest, CleanTwoProcessRunConserves) {
  KillFixture F("clean");
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    {
      ThreadScope<Rt> Scope;
      for (unsigned R = 0; R < 50; ++R)
        for (unsigned I = 0; I < NumAccounts; I += 2) {
          unsigned J = (I + 1) % NumAccounts;
          atomically(Scope.tx(), [&](auto &T) {
            T.store(&F.Acc[I], T.load(&F.Acc[I]) - 2);
            T.store(&F.Acc[J], T.load(&F.Acc[J]) + 2);
          });
        }
    }
    _exit(0); // never globalShutdown: the child inherited the creator flag
  }
  F.survivorTransfers(20);
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_EQ(F.auditTotal(), Word(NumAccounts) * InitialBalance);
  EXPECT_FALSE(SharedArena::instance().poisoned());
}

//===----------------------------------------------------------------------===//
// Kill point: pre-acquire (bound slot, no locks)
//===----------------------------------------------------------------------===//

TEST(ProcessRecoveryTest, KilledBeforeAcquiringLocksIsRetired) {
  KillFixture F("preacq");
  uint64_t Before = SharedArena::instance().recoveriesPerformed();
  unsigned Iters = killIterations();
  for (unsigned K = 0; K < Iters; ++K) {
    pid_t Victim = fork();
    ASSERT_GE(Victim, 0);
    if (Victim == 0) {
      // Bind a slot the way a worker thread would, then park before
      // touching any stripe: death here must cost the survivors
      // nothing but the slot retire.
      unsigned Slot = repro::ThreadRegistry::acquireSlot();
      SharedArena::instance().bindSlot(Slot);
      KillFixture::flag().store(1, std::memory_order_release);
      for (;;)
        repro::cpuRelax();
    }
    ASSERT_TRUE(KillFixture::waitFlagThenKill(Victim));
    SharedArena::instance().sweepDeadProcesses();
    F.survivorTransfers(2);
  }
  EXPECT_GE(SharedArena::instance().recoveriesPerformed() - Before,
            uint64_t(Iters));
  EXPECT_EQ(F.auditTotal(), Word(NumAccounts) * InitialBalance);
  EXPECT_FALSE(SharedArena::instance().poisoned());
}

//===----------------------------------------------------------------------===//
// Kill point: holding write locks, before the commit stamp
//===----------------------------------------------------------------------===//

TEST(ProcessRecoveryTest, KilledHoldingWriteLocksIsBroken) {
  KillFixture F("wlock");
  uint64_t Before = SharedArena::instance().recoveriesPerformed();
  unsigned Iters = killIterations();
  for (unsigned K = 0; K < Iters; ++K) {
    pid_t Victim = fork();
    ASSERT_GE(Victim, 0);
    if (Victim == 0) {
      ThreadScope<Rt> Scope;
      atomically(Scope.tx(), [&](auto &T) {
        // SwissTM acquires WLocks at encounter time: after these
        // stores the transaction holds real stripe locks. Park inside
        // the transaction body so SIGKILL lands while they are held.
        for (unsigned I = 0; I < 5; ++I)
          T.store(&F.Acc[I], T.load(&F.Acc[I]) + 1000);
        KillFixture::flag().store(1, std::memory_order_release);
        for (;;)
          repro::cpuRelax();
      });
      _exit(99); // unreachable
    }
    ASSERT_TRUE(KillFixture::waitFlagThenKill(Victim));
    // No sweep here: the survivors' own conflict path (store hits the
    // corpse's handle, maybeRecoverRemote probes the pid) must detect
    // the death and replay the intent log.
    F.survivorTransfers(2);
    EXPECT_EQ(F.auditTotal(), Word(NumAccounts) * InitialBalance)
        << "victim " << K << ": speculative +1000 stores must not survive";
  }
  EXPECT_GE(SharedArena::instance().recoveriesPerformed() - Before,
            uint64_t(Iters));
  EXPECT_FALSE(SharedArena::instance().poisoned());
}

//===----------------------------------------------------------------------===//
// Kill point: after the commit stamp, before write-back (STM_DIAG)
//===----------------------------------------------------------------------===//

#ifdef STM_DIAG
TEST(ProcessRecoveryTest, KilledAfterCommitStampBeforeWriteBackIsBroken) {
  KillFixture F("stamp");
  uint64_t Before = SharedArena::instance().recoveriesPerformed();
  unsigned Iters = killIterations();
  for (unsigned K = 0; K < Iters; ++K) {
    pid_t Victim = fork();
    ASSERT_GE(Victim, 0);
    if (Victim == 0) {
      // The injection is process-local state: arming it here parks
      // only the victim's commit, right after the stamp is minted —
      // read and write locks held, write-back not begun, the last
      // recoverable instant of a lazy commit.
      diag::setInjected(diag::Inject::ParkAtCommitStamp, true);
      ThreadScope<Rt> Scope;
      KillFixture::flag().store(1, std::memory_order_release);
      atomically(Scope.tx(), [&](auto &T) {
        T.store(&F.Acc[0], T.load(&F.Acc[0]) - 5);
        T.store(&F.Acc[1], T.load(&F.Acc[1]) + 5);
      });
      _exit(99); // unreachable: the commit parks until SIGKILL
    }
    ASSERT_TRUE(KillFixture::waitFlagThenKill(Victim, /*ExtraMs=*/300));
    F.survivorTransfers(2);
    EXPECT_EQ(F.auditTotal(), Word(NumAccounts) * InitialBalance)
        << "victim " << K << ": stamped-but-unwritten transfer must vanish";
  }
  EXPECT_GE(SharedArena::instance().recoveriesPerformed() - Before,
            uint64_t(Iters));
  EXPECT_FALSE(SharedArena::instance().poisoned());
}
#endif // STM_DIAG

//===----------------------------------------------------------------------===//
// Unrecoverable: death mid write-back must poison, not corrupt
//===----------------------------------------------------------------------===//

TEST(ProcessRecoveryTest, DeathInWriteBackPoisonsTheSegment) {
  KillFixture F("poison");
  pid_t Victim = fork();
  ASSERT_GE(Victim, 0);
  if (Victim == 0) {
    // Simulate the exact crash state: a bound slot whose phase word
    // says write-back had started. (Parking a real write-back loop
    // deterministically would need another injection; the recovery
    // path only ever sees the phase word, so this is the same state.)
    unsigned Slot = repro::ThreadRegistry::acquireSlot();
    SharedArena &A = SharedArena::instance();
    A.bindSlot(Slot);
    A.setPhase(Slot, SharedArena::PhaseWriteBack);
    KillFixture::flag().store(1, std::memory_order_release);
    for (;;)
      repro::cpuRelax();
  }
  ASSERT_TRUE(KillFixture::waitFlagThenKill(Victim));
  EXPECT_FALSE(SharedArena::instance().poisoned());
  SharedArena::instance().sweepDeadProcesses();
  // The segment is now condemned: survivors abort at their next
  // transaction begin, so the test asserts the flag and stops issuing
  // transactions (the fixture teardown never starts one).
  EXPECT_TRUE(SharedArena::instance().poisoned());
}

} // namespace
