//===- examples/game_world.cpp - the paper's video-game motivation ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's introduction motivates STM with video games: thousands of
// interacting game objects, each update touching 5-10 others, 30-60
// ticks per second (Sweeney, POPL'06 invited talk). This example builds
// that workload: a world of entities on a spatial grid; every tick each
// entity transactionally reads its neighbourhood and updates itself and
// the objects it interacts with. Per-tick invariants (entity count,
// conserved total "energy") are checked at the end.
//
// Build & run:  ./build/examples/game_world [ticks] [threads]
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

// The examples run on the public API (stm::Runtime): the backend is
// picked at launch time with STM_BACKEND=swisstm|tl2|tinystm|rstm (and
// STM_ADAPTIVE=1 for the mode switcher) instead of recompiling.
using Tx = stm::Runtime::Tx;

namespace {

constexpr unsigned GridSize = 24;     // 24x24 cells
constexpr unsigned NumEntities = 512; // active game objects
constexpr stm::Word EnergyPerEntity = 100;

struct alignas(8) Entity {
  stm::Word X;
  stm::Word Y;
  stm::Word Energy;
  stm::Word Interactions;
};

struct World {
  std::vector<Entity> Entities;
  // Cell occupancy counters: a cheap stand-in for spatial queries; the
  // hot shared state every move transaction touches.
  std::vector<stm::Word> CellCount;

  stm::Word &cell(stm::Word X, stm::Word Y) {
    return CellCount[Y * GridSize + X];
  }
};

/// One entity tick: move to an adjacent cell and exchange energy with a
/// nearby entity -- reads its neighbourhood, writes itself, the two
/// occupancy cells and the interaction partner (5-10 objects total).
void tickEntity(stm::Runtime &R, World &W, unsigned Self,
                unsigned Partner, int DX, int DY) {
  stm::atomically(R, [&](Tx &X) {
    Entity &E = W.Entities[Self];
    stm::Word EX = X.load(&E.X);
    stm::Word EY = X.load(&E.Y);
    stm::Word NX = (EX + DX + GridSize) % GridSize;
    stm::Word NY = (EY + DY + GridSize) % GridSize;
    // Move: update both occupancy cells.
    X.store(&W.cell(EX, EY), X.load(&W.cell(EX, EY)) - 1);
    X.store(&W.cell(NX, NY), X.load(&W.cell(NX, NY)) + 1);
    X.store(&E.X, NX);
    X.store(&E.Y, NY);
    // Interact: transfer one energy point to the partner if we have it.
    Entity &P = W.Entities[Partner];
    stm::Word MyEnergy = X.load(&E.Energy);
    if (Self != Partner && MyEnergy > 0) {
      X.store(&E.Energy, MyEnergy - 1);
      X.store(&P.Energy, X.load(&P.Energy) + 1);
    }
    X.store(&E.Interactions, X.load(&E.Interactions) + 1);
  });
}

} // namespace

int main(int argc, char **argv) {
  unsigned Ticks = argc > 1 ? std::atoi(argv[1]) : 60;
  unsigned NumThreads = argc > 2 ? std::atoi(argv[2]) : 4;

  stm::Runtime Runtime;
  World W;
  W.CellCount.assign(GridSize * GridSize, 0);
  repro::Xorshift Rng(42);
  for (unsigned I = 0; I < NumEntities; ++I) {
    stm::Word X = Rng.nextBounded(GridSize);
    stm::Word Y = Rng.nextBounded(GridSize);
    W.Entities.push_back(Entity{X, Y, EnergyPerEntity, 0});
    W.cell(X, Y) += 1;
  }

  repro::Stopwatch Watch;
  std::vector<std::thread> Threads;
  for (unsigned Id = 0; Id < NumThreads; ++Id) {
    Threads.emplace_back([&W, &Runtime, Id, Ticks, NumThreads] {
      repro::Xorshift MyRng(Id * 1000 + 7);
      for (unsigned Tick = 0; Tick < Ticks; ++Tick) {
        for (unsigned E = Id; E < NumEntities; E += NumThreads) {
          unsigned Partner = MyRng.nextBounded(NumEntities);
          int DX = static_cast<int>(MyRng.nextBounded(3)) - 1;
          int DY = static_cast<int>(MyRng.nextBounded(3)) - 1;
          tickEntity(Runtime, W, E, Partner, DX, DY);
        }
      }
      auto Stats = Runtime.threadTx().stats();
      std::printf("thread %u: %llu commits, %llu aborts (%.1f%%)\n", Id,
                  (unsigned long long)Stats.Commits,
                  (unsigned long long)Stats.Aborts,
                  Stats.abortRatio() * 100);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Seconds = Watch.elapsedSeconds();

  // Invariants: energy conserved, occupancy matches positions.
  stm::Word TotalEnergy = 0;
  for (const Entity &E : W.Entities)
    TotalEnergy += E.Energy;
  stm::Word TotalOccupancy = 0;
  for (stm::Word C : W.CellCount)
    TotalOccupancy += C;
  bool EnergyOk = TotalEnergy == NumEntities * EnergyPerEntity;
  bool OccupancyOk = TotalOccupancy == NumEntities;

  std::printf("%u ticks x %u entities on %u threads in %.2fs "
              "(%.0f entity-updates/s)\n",
              Ticks, NumEntities, NumThreads, Seconds,
              Ticks * static_cast<double>(NumEntities) / Seconds);
  std::printf("energy conserved: %s, occupancy consistent: %s\n",
              EnergyOk ? "yes" : "NO", OccupancyOk ? "yes" : "NO");
  return EnergyOk && OccupancyOk ? 0 : 1;
}
