//===- bench/bench_fig2_stmbench7.cpp - Figure 2 ---------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 2: throughput of SwissTM, RSTM, TL2 and TinySTM on the three
// STMBench7 workloads (read-dominated, read-write, write-dominated),
// threads 1..8. The paper's headline result: SwissTM wins everywhere,
// by the largest margin in the read-dominated workload.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

static void sweep(stm::rt::BackendKind Kind, Workload7 Workload) {
  stm::StmConfig Config = rtConfig(Kind);
  if (Kind == stm::rt::BackendKind::Rstm) {
    // The paper configures RSTM with Serializer for STMBench7 (its best
    // configuration there).
    Config.Cm = stm::CmKind::Serializer;
    Config.RstmEagerAcquire = true;
    Config.RstmVisibleReads = false;
  }
  const char *Name = stm::rt::backendName(Kind);
  for (unsigned Threads : threadSweep()) {
    RunResult R = bench7Throughput<stm::StmRuntime>(Config, Threads, Workload);
    Report::instance().add("fig2", workloads::sb7::workload7Name(Workload),
                           Name, Threads, "tx_per_s", R.Value);
    Report::instance().add("fig2", workloads::sb7::workload7Name(Workload),
                           Name, Threads, "abort_ratio",
                           R.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (Workload7 W : {Workload7::ReadDominated, Workload7::ReadWrite,
                      Workload7::WriteDominated})
    for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds())
      sweep(Kind, W);
  Report::instance().print(
      "2", "STMBench7 throughput, 4 STMs x 3 workloads x threads");
  return 0;
}
