//===- tests/Bench7Test.cpp - STMBench7-lite tests -------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/stmbench7/Bench7.h"

#include <gtest/gtest.h>

using namespace stm;
using namespace workloads::sb7;
using repro_test::runThreads;

namespace {

Bench7Config smallConfig() {
  Bench7Config Cfg;
  Cfg.AssemblyDepth = 3;
  Cfg.AssemblyBranch = 2;
  Cfg.CompositeLibrary = 12;
  Cfg.AtomicsPerComposite = 8;
  return Cfg;
}

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class Bench7Test : public repro_test::RuntimeSuite {};

TEST_P(Bench7Test, BuildSatisfiesInvariants) {
  Bench7<repro_test::Rt> B(smallConfig());
  EXPECT_EQ(B.compositeCount(), 12u);
  EXPECT_EQ(B.baseAssemblyCount(), 8u); // branch^depth = 2^3 leaves
  EXPECT_EQ(B.totalAtomicParts(), 12u * 8u);
  EXPECT_TRUE(B.verify());
}

TEST_P(Bench7Test, EveryOperationRunsAndPreservesInvariants) {
  Bench7<repro_test::Rt> B(smallConfig());
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(5));
    for (unsigned K = 0; K < NumOps; ++K)
      for (int Rep = 0; Rep < 5; ++Rep)
        B.runOp(Tx, Rng, static_cast<Op7>(K));
  });
  EXPECT_TRUE(B.verify());
}

TEST_P(Bench7Test, StructuralAddGrowsRingAndIndex) {
  Bench7<repro_test::Rt> B(smallConfig());
  uint64_t Before = B.totalAtomicParts();
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(9));
    for (int I = 0; I < 10; ++I)
      B.runOp(Tx, Rng, Op7::StructuralAdd);
  });
  EXPECT_EQ(B.totalAtomicParts(), Before + 10);
  EXPECT_TRUE(B.verify());
}

TEST_P(Bench7Test, StructuralRemoveShrinksRingAndIndex) {
  Bench7<repro_test::Rt> B(smallConfig());
  uint64_t Before = B.totalAtomicParts();
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(11));
    for (int I = 0; I < 10; ++I)
      B.runOp(Tx, Rng, Op7::StructuralRemove);
  });
  EXPECT_LT(B.totalAtomicParts(), Before);
  EXPECT_TRUE(B.verify());
}

TEST_P(Bench7Test, MixedWorkloadsConcurrent) {
  Bench7<repro_test::Rt> B(smallConfig());
  for (Workload7 W : {Workload7::ReadDominated, Workload7::ReadWrite,
                      Workload7::WriteDominated}) {
    runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id * 131 + static_cast<unsigned>(W)));
      for (int I = 0; I < 150; ++I)
        B.runOperation(Tx, Rng, W);
    });
    ASSERT_TRUE(B.verify()) << "invariants broken after "
                            << workload7Name(W);
  }
}

TEST_P(Bench7Test, LongTraversalCountsAllParts) {
  Bench7<repro_test::Rt> B(smallConfig());
  // A long update traversal touches every base assembly; afterwards the
  // structure is still consistent and the count is stable.
  runThreads<repro_test::Rt>(2, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 77));
    for (int I = 0; I < 5; ++I)
      B.runOp(Tx, Rng, Op7::LongUpdate);
  });
  EXPECT_TRUE(B.verify());
}

STM_INSTANTIATE_RUNTIME_SUITE(Bench7Test);

} // namespace
