//===- stm/runtime/Backend.h - runtime backend enumeration ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Names the four STM algorithms as runtime values so the backend can be
// a configuration choice (StmConfig::Backend, STM_BACKEND env) instead
// of a template parameter. The numeric values index the dispatch-table
// registry in stm/runtime/StmRuntime.h; a fifth backend claims the next
// value and registers its BackendOps there (see README, "Runtime
// selection & adaptivity").
//
//===----------------------------------------------------------------------===//

#ifndef STM_RUNTIME_BACKEND_H
#define STM_RUNTIME_BACKEND_H

#include <array>
#include <cstddef>
#include <cstring>

namespace stm::rt {

/// The STM algorithms selectable at runtime.
enum class BackendKind : unsigned char {
  SwissTm = 0, ///< mixed eager/lazy, two-phase CM (the paper's design)
  Tl2,         ///< lazy acquire, no extension, timid
  TinyStm,     ///< eager acquire, extension, timid
  Rstm,        ///< obstruction-free orecs, Polka-family CMs
  Orec,        ///< eager orec, in-place writes + undo log, irrevocability
};

inline constexpr std::size_t NumBackends = 5;

/// Stable human-readable name; matches each backend's STM::name().
inline const char *backendName(BackendKind Kind) {
  switch (Kind) {
  case BackendKind::SwissTm:
    return "swisstm";
  case BackendKind::Tl2:
    return "tl2";
  case BackendKind::TinyStm:
    return "tinystm";
  case BackendKind::Rstm:
    return "rstm";
  case BackendKind::Orec:
    return "orec";
  }
  return "unknown";
}

/// All backends, in registry order — the iteration space of the
/// data-driven bench/test grids.
inline const std::array<BackendKind, NumBackends> &allBackendKinds() {
  static const std::array<BackendKind, NumBackends> Kinds = {
      BackendKind::SwissTm, BackendKind::Tl2, BackendKind::TinyStm,
      BackendKind::Rstm, BackendKind::Orec};
  return Kinds;
}

/// Parses a backend name as spelled by backendName(). Returns false on
/// unknown names (the caller owns the diagnostic).
inline bool parseBackendKind(const char *Name, BackendKind &Out) {
  for (BackendKind Kind : allBackendKinds()) {
    if (std::strcmp(Name, backendName(Kind)) == 0) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

} // namespace stm::rt

#endif // STM_RUNTIME_BACKEND_H
