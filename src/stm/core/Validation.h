//===- stm/core/Validation.h - time-based validation mixin ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The time-based validation scheme (Algorithm 1, lines 50-57) was
// hand-rolled in each backend: a transaction remembers the global clock
// value it is known valid at ("valid-ts"), and when a read observes a
// newer version it either aborts (TL2) or tries to *extend* — revalidate
// the whole read set against the current clock and, on success, adopt
// the new clock value as its valid-ts (SwissTM, TinySTM). RSTM's
// commit-counter heuristic is the same shape with a different clock.
//
// TimeValidation is a CRTP mixin holding the valid-ts and implementing
// the begin/extend bookkeeping (stats, ThreadRegistry publication for
// quiescence). The derived descriptor supplies the one genuinely
// algorithm-specific piece: validateReadSet(), the per-entry read-log
// check.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_VALIDATION_H
#define STM_CORE_VALIDATION_H

#include "stm/core/Clock.h"
#include "stm/diag/Hooks.h"
#include "support/ThreadRegistry.h"

#include <cstdint>

namespace stm::core {

/// CRTP mixin: valid-ts tracking with counted validation and optional
/// timestamp extension. Derived must provide
///   bool validateReadSet();   // revalidate the entire read log
/// and inherit TxBase (for stats() and threadSlot()).
template <typename Derived> class TimeValidation {
public:
  /// The timestamp this transaction is known valid at.
  uint64_t validTs() const { return ValidTs; }

protected:
  /// Samples \p Clock at transaction begin and publishes the snapshot
  /// for quiescence (Algorithm 1, line 2). Under GvShard the sample is
  /// the per-thread cached vector-max view, freshened with the thread's
  /// own shard — see shardSnapshot() for why that is sound and when the
  /// full scan re-runs.
  void beginEpoch(const GlobalClock &Clock) {
    ValidTs = Clock.kind() == ClockKind::GvShard ? shardSnapshot(Clock)
                                                 : Clock.load();
    repro::ThreadRegistry::publishStart(derived().threadSlot(), ValidTs);
    STM_DIAG_TX_BEGIN(derived().threadSlot(), ValidTs);
  }

  /// Runs the derived read-set validation, counted.
  bool revalidate() {
    STM_DIAG_HOOK(derived().threadSlot(), Validate, ::stm::diag::NoStripe,
                  ValidTs);
    ++derived().stats().Validations;
    if (STM_DIAG_INJECTED(ValidationSkip))
      return true;
    return derived().validateReadSet();
  }

  /// Mints this commit's timestamp under \p Clock's policy. The
  /// max-overwritten-version scan is policy-sensitive (only a deferred
  /// gv5 stamp must dominate the lock versions it re-releases), so
  /// \p MaxOverwritten is a lazy callback the other policies never
  /// invoke. Call with all write locks held.
  template <typename MaxOldFn>
  CommitStamp takeCommitStamp(GlobalClock &Clock,
                              MaxOldFn &&MaxOverwritten) {
    ClockKind Kind = Clock.kind();
    uint64_t MaxOld = Kind == ClockKind::Gv5 || Kind == ClockKind::GvShard
                          ? MaxOverwritten()
                          : 0;
    CommitStamp Stamp = Clock.commitStamp(MaxOld, derived().threadSlot());
    if (Stamp.Ts > CachedView)
      CachedView = Stamp.Ts; // free knowledge for the next shard snapshot
    return Stamp;
  }

  /// The "nothing committed in between" shortcut: commit-time read-set
  /// validation may be skipped only for an exclusively owned stamp that
  /// directly follows valid-ts — a shared stamp (gv4 adoption, every
  /// gv5 stamp) may belong to a concurrent disjoint-write-set peer
  /// whose writes this transaction read. Every policy guarantees
  /// Ts >= valid-ts + 1, so the equality test is exact.
  bool mustValidateCommit(const CommitStamp &Stamp) const {
    return !Stamp.Owned || Stamp.Ts != ValidTs + 1;
  }

  /// Timestamp extension (Algorithm 1, lines 54-57): revalidates against
  /// the current clock and on success adopts it as the new valid-ts.
  /// \p SeenVersion is the lock version that triggered the miss: under a
  /// deferred clock (GV5) the sample must first drag the shared counter
  /// up to it, or the adopted valid-ts would never cover the version
  /// that keeps missing. With \p EnableExtension off (TL2-style
  /// behaviour, one of the ablation knobs) the extension always fails —
  /// but the counter still advances, so the restarted attempt begins
  /// past the version that killed this one.
  bool extendEpoch(GlobalClock &Clock, bool EnableExtension,
                   uint64_t SeenVersion) {
    if (!EnableExtension) {
      Clock.noteStaleRead(SeenVersion, derived().threadSlot());
      if (SeenVersion > CachedView)
        CachedView = SeenVersion;
      ++derived().stats().FailedExtensions;
      return false;
    }
    uint64_t Ts = Clock.observe(SeenVersion, derived().threadSlot());
    if (Ts > CachedView)
      CachedView = Ts; // observe() is a full vector-max scan under GvShard
    if (revalidate()) {
      ValidTs = Ts;
      repro::ThreadRegistry::publishStart(derived().threadSlot(), ValidTs);
      ++derived().stats().Extensions;
      return true;
    }
    ++derived().stats().FailedExtensions;
    return false;
  }

  uint64_t ValidTs = 0;

private:
  /// GvShard begin snapshot. A stale (low) snapshot is always *sound* —
  /// any read of a newer version misses and extends/aborts, and a low
  /// published start only makes the quiescence horizon more
  /// conservative — so the begin path avoids the full cross-shard scan:
  /// it refreshes the cached vector-max view from the thread's own
  /// shard line only (committers publish their stamps there, and
  /// observe()/takeCommitStamp() fold full scans into the cache when
  /// they happen anyway). Pure staleness is a *liveness* problem,
  /// though: SwissTM's privatization fence and the TxMemory reclamation
  /// horizon both wait for every thread's published start to pass a
  /// stamp that may live only on another thread's shard. The periodic
  /// full scan (every ShardRefreshPeriod begins) bounds how long a
  /// thread can keep publishing a pre-stamp view.
  /// Out of line: GvShard-only, and beginEpoch() is inlined into every
  /// backend's transaction-start path.
  REPRO_NOINLINE uint64_t shardSnapshot(const GlobalClock &Clock) {
    if (++BeginsSinceRefresh >= ShardRefreshPeriod) {
      BeginsSinceRefresh = 0;
      CachedView = Clock.load(); // full vector-max scan
    } else {
      uint64_t Own =
          Clock.loadShard(Clock.shardOf(derived().threadSlot()));
      if (Own > CachedView)
        CachedView = Own;
    }
    return CachedView;
  }

  static constexpr unsigned ShardRefreshPeriod = 32;

  uint64_t CachedView = 0;
  unsigned BeginsSinceRefresh = 0;

  Derived &derived() { return static_cast<Derived &>(*this); }
};

} // namespace stm::core

#endif // STM_CORE_VALIDATION_H
