//===- stm/ThreadScope.h - per-thread STM attachment ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef STM_THREADSCOPE_H
#define STM_THREADSCOPE_H

#include "support/ThreadRegistry.h"

namespace stm {

/// RAII attachment of the current thread to an STM: claims a registry
/// slot, constructs the descriptor, and on destruction drains retired
/// memory and returns the slot. Create exactly one per worker thread.
template <typename STM> class ThreadScope {
public:
  ThreadScope()
      : Slot(repro::ThreadRegistry::acquireSlot()), Descriptor(Slot) {}

  ~ThreadScope() {
    Descriptor.threadShutdown();
    repro::ThreadRegistry::releaseSlot(Slot);
  }

  ThreadScope(const ThreadScope &) = delete;
  ThreadScope &operator=(const ThreadScope &) = delete;

  typename STM::Tx &tx() { return Descriptor; }

private:
  unsigned Slot;
  typename STM::Tx Descriptor;
};

} // namespace stm

#endif // STM_THREADSCOPE_H
