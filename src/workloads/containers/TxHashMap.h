//===- workloads/containers/TxHashMap.h - transactional hash map -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Fixed-bucket chained hash map over TxList. Serves as the index
// structure of STMBench7-lite and as the segment/gene table of the
// STAMP-lite applications (genome, intruder, vacation's reservations).
// The bucket array is fixed at construction, so concurrent transactions
// only conflict within one bucket chain.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_CONTAINERS_TXHASHMAP_H
#define WORKLOADS_CONTAINERS_TXHASHMAP_H

#include "workloads/containers/TxList.h"

#include <cstdint>
#include <memory>

namespace workloads {

/// Transactional hash map from uint64 keys to word-sized values.
template <typename STM> class TxHashMap {
public:
  using Tx = typename STM::Tx;

  explicit TxHashMap(unsigned BucketsLog2 = 10)
      : Mask((uint64_t(1) << BucketsLog2) - 1),
        Buckets(std::make_unique<TxList<STM>[]>(Mask + 1)) {}

  bool insert(Tx &T, uint64_t Key, stm::Word Value) {
    return bucket(Key).insert(T, Key, Value);
  }

  bool remove(Tx &T, uint64_t Key) { return bucket(Key).remove(T, Key); }

  bool lookup(Tx &T, uint64_t Key, stm::Word *Value = nullptr) {
    return bucket(Key).lookup(T, Key, Value);
  }

  bool contains(Tx &T, uint64_t Key) { return lookup(T, Key); }

  bool update(Tx &T, uint64_t Key, stm::Word Value) {
    return bucket(Key).update(T, Key, Value);
  }

  /// Transactionally visits every entry (bucket order).
  template <typename Fn> void forEach(Tx &T, Fn &&Visit) {
    for (uint64_t B = 0; B <= Mask; ++B)
      Buckets[B].forEach(T, [&](uint64_t K, stm::Word V,
                                typename TxList<STM>::Node *) {
        Visit(K, V);
      });
  }

  /// Transactional entry count (reads every bucket).
  uint64_t size(Tx &T) {
    uint64_t N = 0;
    for (uint64_t B = 0; B <= Mask; ++B)
      N += Buckets[B].size(T);
    return N;
  }

  /// Non-transactional iteration (quiesced use only).
  template <typename Fn> void forEachRaw(Fn &&Visit) const {
    for (uint64_t B = 0; B <= Mask; ++B)
      Buckets[B].forEachRaw(Visit);
  }

  /// Non-transactional entry count (quiesced use only).
  uint64_t sizeRaw() const {
    uint64_t N = 0;
    for (uint64_t B = 0; B <= Mask; ++B)
      N += Buckets[B].sizeRaw();
    return N;
  }

  uint64_t bucketCount() const { return Mask + 1; }

private:
  static uint64_t hash(uint64_t Key) {
    Key ^= Key >> 33;
    Key *= 0xff51afd7ed558ccdull;
    Key ^= Key >> 33;
    return Key;
  }

  TxList<STM> &bucket(uint64_t Key) { return Buckets[hash(Key) & Mask]; }

  uint64_t Mask;
  std::unique_ptr<TxList<STM>[]> Buckets;
};

} // namespace workloads

#endif // WORKLOADS_CONTAINERS_TXHASHMAP_H
