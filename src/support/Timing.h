//===- support/Timing.h - monotonic clocks and stopwatches ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMING_H
#define SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace repro {

/// Returns monotonic time in nanoseconds.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple stopwatch over the monotonic clock.
class Stopwatch {
public:
  Stopwatch() : Start(nowNanos()) {}

  void reset() { Start = nowNanos(); }

  uint64_t elapsedNanos() const { return nowNanos() - Start; }
  double elapsedSeconds() const { return elapsedNanos() * 1e-9; }
  double elapsedMillis() const { return elapsedNanos() * 1e-6; }

private:
  uint64_t Start;
};

} // namespace repro

#endif // SUPPORT_TIMING_H
