//===- bench/bench_extra_adaptive.cpp - adaptive runtime ablation ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Two experiments for the type-erased runtime layer:
//
//  1. Phase-shifting workload: the run alternates every PhaseMs between
//     a read-dominated red-black-tree phase (5 % updates — the regime
//     where cheap lazy TL2 wins) and a high-contention shared-counter
//     phase whose transactions yield between load and store to model a
//     long conflict window (the regime where SwissTM's eager w/w
//     detection + two-phase CM wins). Each fixed backend is compared
//     against AdaptiveRuntime, whose windowed abort-rate policy should
//     track the phase: escalating to SwissTM in the counter phase and
//     de-escalating to TL2 in the tree phase. mode_switches reports how
//     often it moved.
//
//  2. Dispatch overhead: fig5's rbtree point at 1 and 4 threads, the
//     templated SwissTm facade vs the runtime dispatching to the same
//     backend. runtime_over_templated is the throughput ratio; the
//     acceptance bar is >= 0.95 (within 5 %).
//
// Results land in bench/results/BENCH_extra_adaptive.json.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

namespace {

/// Milliseconds per phase; several shifts fit in one measured point.
constexpr uint64_t PhaseMs = 25;

/// Key range of the tree phase (fig5's configuration).
constexpr uint64_t PhaseRange = 16384;

struct PhaseWorkload {
  explicit PhaseWorkload(uint64_t Range) : Range(Range) {}

  workloads::RbTree<stm::StmRuntime> Tree;
  alignas(64) stm::Word Counter = 0;
  uint64_t Range;
  repro::Stopwatch Clock;

  bool inCounterPhase() const {
    return (static_cast<uint64_t>(Clock.elapsedMillis()) / PhaseMs) % 2 == 1;
  }
};

/// One operation of the phase-shifting workload.
void phaseOp(PhaseWorkload &W, stm::rt::TxHandle &Tx, repro::Xorshift &Rng) {
  if (W.inCounterPhase()) {
    stm::atomically(Tx, [&](auto &T) {
      stm::Word V = T.load(&W.Counter);
      std::this_thread::yield(); // widen the conflict window
      T.store(&W.Counter, V + 1);
    });
    return;
  }
  uint64_t Key = Rng.nextBounded(W.Range);
  unsigned P = static_cast<unsigned>(Rng.nextBounded(100));
  if (P < 3)
    stm::atomically(Tx, [&](auto &T) { W.Tree.insert(T, Key, Key); });
  else if (P < 5)
    stm::atomically(Tx, [&](auto &T) { W.Tree.remove(T, Key); });
  else
    stm::atomically(Tx, [&](auto &T) { W.Tree.lookup(T, Key); });
}

RunResult phaseShiftRun(const stm::StmConfig &Config, unsigned Threads) {
  return runThroughput<stm::StmRuntime>(
      Config, Threads,
      [] {
        auto W = std::make_unique<PhaseWorkload>(PhaseRange);
        stm::ThreadScope<stm::StmRuntime> Scope;
        auto &Tx = Scope.tx();
        for (uint64_t K = 0; K < PhaseRange; K += 2)
          stm::atomically(Tx, [&](auto &T) { W->Tree.insert(T, K, K); });
        W->Clock.reset();
        return W;
      },
      [](PhaseWorkload &W, stm::rt::TxHandle &Tx, repro::Xorshift &Rng) {
        phaseOp(W, Tx, Rng);
      });
}

void sweepContender(const char *Name, const stm::StmConfig &Config) {
  for (unsigned Threads : threadSweep()) {
    RunResult R = phaseShiftRun(Config, Threads);
    Report::instance().add("extra-adaptive", "phase-shift", Name, Threads,
                           "tx_per_s", R.Value);
    Report::instance().add("extra-adaptive", "phase-shift", Name, Threads,
                           "abort_ratio", R.Stats.abortRatio());
    Report::instance().add("extra-adaptive", "phase-shift", Name, Threads,
                           "mode_switches",
                           static_cast<double>(R.Stats.ModeSwitches));
    // Irrevocability escalations: nonzero on the orec contender (whose
    // counter phase trips the abort threshold) and on the adaptive
    // runtime once its serialize rung lands on orec; zero elsewhere.
    Report::instance().add("extra-adaptive", "phase-shift", Name, Threads,
                           "serializations",
                           static_cast<double>(R.Stats.Serializations));
  }
}

/// Dispatch-overhead check: same rbtree point, templated vs runtime.
void dispatchOverhead() {
  for (unsigned Threads : {1u, 4u}) {
    stm::StmConfig Config;
    double Templated =
        rbTreeThroughput<stm::SwissTm>(Config, Threads).Value;
    double Runtime =
        rbTreeThroughput<stm::StmRuntime>(
            rtConfig(stm::rt::BackendKind::SwissTm), Threads)
            .Value;
    Report::instance().add("fig5-dispatch", "rbtree", "swisstm-templated",
                           Threads, "tx_per_s", Templated);
    Report::instance().add("fig5-dispatch", "rbtree", "swisstm-runtime",
                           Threads, "tx_per_s", Runtime);
    Report::instance().add("fig5-dispatch", "rbtree", "swisstm-runtime",
                           Threads, "runtime_over_templated",
                           Runtime / Templated);
  }
}

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds()) {
    stm::StmConfig Config = rtConfig(Kind);
    // Hair-trigger irrevocability on the orec contender: the counter
    // phase's conflict storms then escalate within even a smoke run's
    // short phases, making the serialize escape hatch observable in
    // the serializations column.
    if (Kind == stm::rt::BackendKind::Orec)
      Config.OrecIrrevocableAborts = 2;
    sweepContender(stm::rt::backendName(Kind), Config);
  }

  stm::StmConfig Adaptive;
  Adaptive.Backend = stm::rt::BackendKind::Tl2; // where the tree phase lands
  Adaptive.Adaptive = true;
  Adaptive.AdaptiveWindow = 512; // react within a 25 ms phase
  sweepContender("adaptive", Adaptive);

  dispatchOverhead();

  Report::instance().print(
      "extra-adaptive",
      "phase-shifting workload: fixed backends vs AdaptiveRuntime, plus "
      "runtime-dispatch overhead on fig5 rbtree");
  return 0;
}
