//===- stm/swisstm/SwissTm.h - the SwissTM algorithm ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction ("Stretching Transactional Memory",
// Dragojević, Guerraoui, Kapałka, PLDI 2009).
//
// SwissTM (Section 3) is a lock- and word-based STM with:
//  * eager write/write conflict detection: the write lock (w-lock) of a
//    stripe is acquired at the first write,
//  * lazy read/write conflict detection: reads are invisible, and the
//    read lock (r-lock) is taken only while the writer commits,
//  * time-based validation with timestamp extension (commit-ts),
//  * a redo log (write-back at commit),
//  * the two-phase contention manager of Algorithm 2 with randomized
//    linear back-off after rollback.
//
// Built from the shared policy core: the lock table and clocks come
// from stm/core, the valid-ts/extension loop from core::TimeValidation,
// and the whole contention manager from core::ContentionManager in its
// Native two-phase mode. What remains here is Algorithm 1 itself.
//
// Every memory stripe maps to a pair of locks (Figure 1):
//   w-lock: 0 when free, otherwise a pointer to the owner's stripe
//           write-log entry;
//   r-lock: version << 1 when free (version = commit-ts of the last
//           writer), the value 1 while a writer commits the stripe.
//
//
// INTERNAL HEADER — deprecated as an application include. The public
// surface is stm/Stm.h (stm::Runtime + stm::atomically); select this
// backend at runtime via StmConfig::Backend / STM_BACKEND instead of
// including it directly. Direct includes outside src/stm/ and tests
// of backend internals are scheduled for removal.
//===----------------------------------------------------------------------===//

#ifndef STM_SWISSTM_SWISSTM_H
#define STM_SWISSTM_SWISSTM_H

#include "stm/Config.h"
#include "stm/RacyAccess.h"
#include "stm/StableLog.h"
#include "stm/TxBase.h"
#include "stm/core/Clock.h"
#include "stm/core/ContentionManager.h"
#include "stm/core/LockTable.h"
#include "stm/core/SharedArena.h"
#include "stm/core/Validation.h"
#include "stm/core/VersionedLock.h"
#include "support/Backoff.h"
#include "support/Platform.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace stm::swiss {

class SwissTx;

/// One buffered word write, chained per stripe.
struct WordWrite {
  Word *Addr = nullptr;
  Word Value = 0;
  WordWrite *Next = nullptr;
};

struct LockPair;

/// Per-stripe entry in a transaction's write log. The stripe's w-lock
/// holds this entry's Self value while the transaction owns the stripe.
struct StripeWrite {
  std::atomic<SwissTx *> Owner{nullptr};
  LockPair *Locks = nullptr;
  WordWrite *Head = nullptr;
  Word RVersion = 0; ///< r-lock value observed when the stripe was acquired
  /// The lock word this entry installs: the entry's own address in
  /// private mode, a SharedArena handle (log index, registry slot) in
  /// multi-process mode. Release and rollback compare against it, so
  /// both modes share one path.
  Word Self = 0;

  StripeWrite() = default;
  StripeWrite(const StripeWrite &O)
      : Owner(O.Owner.load(std::memory_order_relaxed)), Locks(O.Locks),
        Head(O.Head), RVersion(O.RVersion), Self(O.Self) {}
  StripeWrite &operator=(const StripeWrite &O) {
    Owner.store(O.Owner.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Locks = O.Locks;
    Head = O.Head;
    RVersion = O.RVersion;
    Self = O.Self;
    return *this;
  }
};

/// The (r-lock, w-lock) pair mapped to each 2^G-byte stripe.
struct LockPair {
  std::atomic<Word> WLock{0}; ///< 0 = free, else StripeWrite*
  std::atomic<Word> RLock{0}; ///< version<<1 = free, 1 = locked
};

/// r-lock encoding: one tag bit (see core/VersionedLock.h).
using RLockOps = core::VersionedLockOps<1>;
inline constexpr Word RLockLocked = 1;
inline bool rlockIsLocked(Word V) { return RLockOps::isLocked(V); }
inline uint64_t rlockVersion(Word V) { return RLockOps::version(V); }
inline Word rlockMake(uint64_t Version) { return RLockOps::make(Version); }

/// Global state of the SwissTM instance.
struct SwissGlobals {
  core::LockTable<LockPair> Table;
  GlobalClock CommitTs; ///< "commit-ts" of Algorithm 1 (StmConfig::Clock)
  GlobalClock GreedyTs; ///< "greedy-ts" of Algorithm 2 (always gv1)
  StmConfig Config;
  /// Cached SharedArena::sharedActive(): w-locks carry slot handles
  /// instead of descriptor pointers. Set once in globalInit.
  bool SharedWords = false;
};

/// Returns the process-wide SwissTM globals.
SwissGlobals &swissGlobals();

/// One read-log entry: the stripe's lock pair and the version observed.
struct ReadEntry {
  LockPair *Locks;
  Word RValue; ///< r-lock word as read (version<<1, never locked)
};

/// SwissTM transaction descriptor: one per thread.
class SwissTx : public TxBase, public core::TimeValidation<SwissTx> {
public:
  explicit SwissTx(unsigned Slot) : TxBase(Slot) {}

  /// Begins (or restarts) a transaction attempt. Algorithm 1, start().
  void onStart();

  /// Transactional read of one word. Algorithm 1, read-word().
  Word load(const Word *Addr);

  /// Transactional write of one word. Algorithm 1, write-word().
  void store(Word *Addr, Word Value);

  /// Commits the transaction. Algorithm 1, commit(). On validation
  /// failure the transaction rolls back and restarts via longjmp.
  void commit();

  /// Programmatic retry: aborts and restarts the current transaction.
  [[noreturn]] void restart() { rollback(); }

  /// Contention-manager state, readable by concurrent attackers.
  const core::ContentionManager<core::TwoPhaseMode::Native> &cm() const {
    return Cm;
  }

  /// Priority visible to Polka attackers (number of accesses so far).
  uint64_t polkaPriority() const { return Cm.priority(); }

  /// Contention-manager timestamp; UINT64_MAX while in the first phase.
  uint64_t cmTimestamp() const { return Cm.timestamp(); }

private:
  friend class core::TimeValidation<SwissTx>;

  [[noreturn]] void rollback();
  bool validateReadSet();
  void checkKill() {
    if (killRequested())
      rollback();
  }

  /// Finds/extends the buffered write of \p Addr in stripe entry \p E.
  void addWordWrite(StripeWrite *E, Word *Addr, Word Value);

  /// Resolves a held w-lock word to this transaction's write-log entry,
  /// or null when another transaction owns it. Private mode dereferences
  /// the pointer; multi-process mode decodes the handle (remote
  /// descriptors must never be dereferenced).
  StripeWrite *ownedEntry(Word WL);

  core::ContentionManager<core::TwoPhaseMode::Native> Cm;
  unsigned WordWriteCount = 0;

  std::vector<ReadEntry> ReadLog;
  StableLog<StripeWrite> WriteLog;
  StableLog<WordWrite> WordLog;
};

/// STM facade used by the templated benchmarks and tests.
class SwissTm {
public:
  using Tx = SwissTx;

  static constexpr const char *name() { return "swisstm"; }

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();
  static SwissGlobals &globals() { return swissGlobals(); }
};

} // namespace stm::swiss

namespace stm {
using SwissTm = swiss::SwissTm;
} // namespace stm

#endif // STM_SWISSTM_SWISSTM_H
