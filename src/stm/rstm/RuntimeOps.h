//===- stm/rstm/RuntimeOps.h - RSTM runtime adapter -------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Registers the RSTM-like baseline with the type-erased runtime (see
// stm/runtime/BackendOps.h). RetireTx goes through makeBackendOps's
// generic thunk, which calls RstmTx::threadShutdown — the shadowing
// overload that unpublishes the slot-table entry — because the thunk is
// instantiated on the concrete descriptor type, not on TxBase.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RSTM_RUNTIMEOPS_H
#define STM_RSTM_RUNTIMEOPS_H

#include "stm/rstm/Rstm.h"
#include "stm/runtime/BackendOps.h"

namespace stm::rstm {

inline const rt::BackendOps &runtimeOps() {
  static constexpr rt::BackendOps Ops = rt::makeBackendOps<Rstm>();
  return Ops;
}

} // namespace stm::rstm

#endif // STM_RSTM_RUNTIMEOPS_H
