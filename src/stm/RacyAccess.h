//===- stm/RacyAccess.h - version-guarded data accesses ---------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STM data accesses race by design: an invisible reader may load a word
// while a committing writer stores it, and correctness comes from the
// read-lock version re-check, not from happens-before. These helpers
// perform those accesses as relaxed atomics so the races are defined
// behaviour, with the required ordering supplied by the lock words.
// The commit protocols additionally assume TSO-like store ordering
// (x86); see DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RACYACCESS_H
#define STM_RACYACCESS_H

#include "stm/Word.h"

namespace stm {

/// Relaxed-atomic load of a (possibly concurrently written) data word.
inline Word racyLoad(const Word *Addr) {
  return __atomic_load_n(Addr, __ATOMIC_RELAXED);
}

/// Relaxed-atomic store of a data word during commit write-back.
inline void racyStore(Word *Addr, Word Value) {
  __atomic_store_n(Addr, Value, __ATOMIC_RELAXED);
}

} // namespace stm

#endif // STM_RACYACCESS_H
