//===- tests/TestHarness.h - shared helpers for STM tests ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef TESTS_TESTHARNESS_H
#define TESTS_TESTHARNESS_H

#include "stm/Stm.h"
#include "stm/diag/Hooks.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace repro_test {

/// Iteration multiplier for the long ("stress"-labelled) test modes:
/// STM_STRESS=<n> scales the randomized suites up by n. Unset or 1 is
/// the quick mode every normal ctest run uses; the nightly CI job runs
/// the stress label with STM_STRESS=10.
inline unsigned stressScale() {
  static const unsigned Scale = [] {
    if (const char *Env = std::getenv("STM_STRESS")) {
      int V = std::atoi(Env);
      if (V > 1)
        return unsigned(V);
    }
    return 1u;
  }();
  return Scale;
}

/// Prints the active RNG base seed alongside every test failure, so a
/// flaky run can be replayed exactly with STM_TEST_SEED=<seed>.
class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestPartResult(const ::testing::TestPartResult &Result) override {
    if (Result.failed())
      std::fprintf(
          stderr, "note: rerun with STM_TEST_SEED=%llu to reproduce\n",
          static_cast<unsigned long long>(repro::testSeedBase()));
  }
};

inline const bool SeedReporterInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
  return true;
}();

/// Honour the STM_DIAG_RECORD/STM_DIAG_RING/STM_DIAG_TRACE wiring in
/// the test binaries too (the benches get it via parseStmFlags): the
/// CI TSan leg records a ring of hook events so a crashing flake — the
/// rstm opacity race being the canonical one — leaves its interleaving
/// behind as an uploadable trace. No-op unless STM_DIAG_RECORD is set.
inline const bool DiagEnvInitialized = [] {
  stm::diag::initFromEnv();
  return true;
}();

/// Spawns \p NumThreads workers, each attached to \p STM via a
/// ThreadScope, runs \p Work(threadIndex, descriptor) and joins.
template <typename STM, typename Fn>
void runThreads(unsigned NumThreads, Fn &&Work) {
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&Work, I] {
      stm::ThreadScope<STM> Scope;
      Work(I, Scope.tx());
    });
  for (std::thread &T : Threads)
    T.join();
}

/// The STM types the remaining *typed* suites — the ones poking at
/// backend internals (contention-manager state, lock encodings) or
/// deliberately covering the direct templated path — instantiate over.
/// The behavioural suites run through the type-erased runtime instead:
/// see RuntimeSuite below.
using AllStms =
    ::testing::Types<stm::SwissTm, stm::Tl2, stm::TinyStm, stm::Rstm>;

//===----------------------------------------------------------------------===//
// Runtime-backend parameterization
//===----------------------------------------------------------------------===//

/// One runtime configuration a parameterized suite runs under: a fixed
/// backend, or the adaptive mode switcher seeded with one.
struct RtMode {
  stm::rt::BackendKind Kind;
  bool Adaptive;
};

/// Shorthand for suite bodies: every parameterized test drives this one
/// facade; the backend underneath is the suite parameter.
using Rt = stm::StmRuntime;

/// The modes a parameterized suite iterates over. By default all four
/// fixed backends; the CI matrix narrows it through the environment:
/// STM_BACKEND=<name> runs just that backend, STM_ADAPTIVE=1 runs the
/// adaptive switcher instead (seeded with STM_BACKEND if also set).
/// Unknown values abort with a diagnostic via stm::configFromEnv.
inline const std::vector<RtMode> &runtimeModes() {
  static const std::vector<RtMode> Modes = [] {
    std::vector<RtMode> Out;
    stm::StmConfig Env = stm::configFromEnv();
    if (Env.Adaptive) {
      Out.push_back(RtMode{Env.Backend, true});
    } else if (std::getenv("STM_BACKEND") != nullptr) {
      Out.push_back(RtMode{Env.Backend, false});
    } else {
      for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds())
        Out.push_back(RtMode{Kind, false});
    }
    return Out;
  }();
  return Modes;
}

/// gtest name generator: RbTreeTest.Foo/swisstm, .../adaptive, ...
inline std::string rtModeName(const ::testing::TestParamInfo<RtMode> &Info) {
  return Info.param.Adaptive ? "adaptive"
                             : stm::rt::backendName(Info.param.Kind);
}

/// Commit-clock policy selected by STM_CLOCK (gv1 when unset). The
/// parameterized suites stamp it onto their configs via applyMode, so
/// the CI clock legs run the full behavioural grid under gv4/gv5 the
/// same way STM_BACKEND narrows the backend. Suites that sweep clock
/// policies explicitly overwrite Config.Clock after applyMode.
inline stm::ClockKind envClockKind() {
  static const stm::ClockKind Kind = stm::configFromEnv().Clock;
  return Kind;
}

/// Fixture base for suites that initialize the runtime per iteration
/// themselves (config sweeps): provides the mode application only.
class RuntimeSuiteNoInit : public ::testing::TestWithParam<RtMode> {
protected:
  /// Stamps the suite's current mode (and the STM_CLOCK policy) onto
  /// \p Config.
  stm::StmConfig applyMode(stm::StmConfig Config) const {
    Config.Backend = GetParam().Kind;
    Config.Adaptive = GetParam().Adaptive;
    Config.Clock = envClockKind();
    return Config;
  }
};

/// Fixture base for the behavioural suites: one runtime init per test,
/// small lock table to keep four-backend test processes small.
class RuntimeSuite : public RuntimeSuiteNoInit {
protected:
  stm::StmConfig config() const {
    stm::StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    return applyMode(Config);
  }
  void SetUp() override { stm::StmRuntime::globalInit(config()); }
  void TearDown() override { stm::StmRuntime::globalShutdown(); }
};

/// Instantiates a RuntimeSuite-derived fixture over runtimeModes().
#define STM_INSTANTIATE_RUNTIME_SUITE(Suite)                                   \
  INSTANTIATE_TEST_SUITE_P(Rt, Suite,                                          \
                           ::testing::ValuesIn(repro_test::runtimeModes()),    \
                           repro_test::rtModeName)

} // namespace repro_test

#endif // TESTS_TESTHARNESS_H
