//===- tests/LeeTest.cpp - Lee-TM router tests ------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <atomic>
#include <mutex>
#include "workloads/leetm/LeeRouter.h"
#include "workloads/stamp/Labyrinth.h"

#include <gtest/gtest.h>

using namespace stm;
using namespace workloads::lee;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class LeeTest : public repro_test::RuntimeSuite {};

TEST_P(LeeTest, SingleRouteConnectsEndpoints) {
  std::vector<RouteJob> Jobs = {RouteJob{1, 1, 8, 5, 1}};
  LeeRouter<repro_test::Rt> Router(16, 16, Jobs);
  unsigned Routed = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    Routed = Router.work(Tx, 1);
  });
  EXPECT_EQ(Routed, 1u);
  EXPECT_TRUE(Router.verify({1}));
  // Path cells >= Manhattan distance + 1 (both endpoints included).
  EXPECT_GE(Router.cellsOf(1), 7u + 4u + 1u);
}

TEST_P(LeeTest, BlockedRouteUsesSecondLayer) {
  // A wall on layer 0 cannot block the router: it can switch layers.
  // Build the wall by routing a vertical net first.
  std::vector<RouteJob> Jobs = {
      RouteJob{5, 0, 5, 11, 1},  // vertical wall across the board
      RouteJob{1, 5, 10, 5, 2}, // must cross the wall via layer 1
  };
  LeeRouter<repro_test::Rt> Router(12, 12, Jobs);
  unsigned Routed = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    Routed = Router.work(Tx, 1);
  });
  EXPECT_EQ(Routed, 2u);
  EXPECT_TRUE(Router.verify({1, 2}));
}

TEST_P(LeeTest, MemoryBoardSingleThreadDeterministic) {
  unsigned W = 0, H = 0;
  auto Jobs = generateBoard(Board::Memory, W, H, 0.5);
  ASSERT_FALSE(Jobs.empty());
  LeeRouter<repro_test::Rt> Router(W, H, Jobs);
  unsigned Routed = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    Routed = Router.work(Tx, 1);
  });
  // The memory board is laid out so every bus net is routable.
  EXPECT_EQ(Routed, Jobs.size());
  std::vector<uint64_t> Nets;
  for (const RouteJob &J : Jobs)
    Nets.push_back(J.NetId);
  EXPECT_TRUE(Router.verify(Nets));
}

TEST_P(LeeTest, MainBoardConcurrentRoutesAreValid) {
  unsigned W = 0, H = 0;
  auto Jobs = generateBoard(Board::Main, W, H, 0.4);
  ASSERT_FALSE(Jobs.empty());
  LeeRouter<repro_test::Rt> Router(W, H, Jobs);
  std::atomic<unsigned> Routed{0};
  // Track which nets each thread routed for validation.
  std::mutex NetsLock;
  std::vector<uint64_t> RoutedNets;
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    typename LeeRouter<repro_test::Rt>::Scratch Local(W, H);
    repro::Xorshift Rng(repro::testSeed(Id + 3));
    // Reimplement the claim loop locally so we can record net ids.
    for (std::size_t I = Id; I < Jobs.size(); I += 4) {
      if (Router.routeOne(Tx, Jobs[I], Local, Rng)) {
        Routed.fetch_add(1);
        std::lock_guard<std::mutex> Guard(NetsLock);
        RoutedNets.push_back(Jobs[I].NetId);
      }
    }
  });
  EXPECT_GT(Routed.load(), Jobs.size() / 2) << "most nets should route";
  EXPECT_TRUE(Router.verify(RoutedNets));
}

TEST_P(LeeTest, IrregularVariantUpdatesOc) {
  unsigned W = 0, H = 0;
  auto Jobs = generateBoard(Board::Memory, W, H, 0.4);
  LeeRouter<repro_test::Rt> Router(W, H, Jobs, /*IrregularPercent=*/100);
  runThreads<repro_test::Rt>(2, [&](unsigned Id, auto &Tx) {
    Router.work(Tx, Id + 1);
  });
  // With R=100% every transaction increments Oc exactly once on its
  // committed attempt.
  EXPECT_EQ(Router.ocValue(), Jobs.size());
}

TEST_P(LeeTest, LabyrinthJobsRouteAndValidate) {
  workloads::stamp::LabyrinthConfig Cfg;
  Cfg.Width = 24;
  Cfg.Height = 24;
  Cfg.Paths = 10;
  auto Jobs = workloads::stamp::labyrinthJobs(Cfg);
  LeeRouter<repro_test::Rt> Router(Cfg.Width, Cfg.Height, Jobs);
  std::atomic<unsigned> Routed{0};
  runThreads<repro_test::Rt>(2, [&](unsigned Id, auto &Tx) {
    Routed.fetch_add(Router.work(Tx, Id + 11));
  });
  EXPECT_GT(Routed.load(), 0u);
}

STM_INSTANTIATE_RUNTIME_SUITE(LeeTest);

} // namespace
