//===- stm/runtime/BackendOps.h - per-backend dispatch table ----*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The type-erasure seam between the templated STM facades and the
// runtime: one function-pointer table per backend, built from the
// backend's descriptor type by makeBackendOps<STM>(). Every thunk is a
// captureless lambda that casts the opaque descriptor back to its
// concrete type and tail-calls the (already out-of-line) member, so the
// runtime's per-access cost over the templated path is one indirect
// call. Each backend directory exposes its table through a small
// RuntimeOps.h adapter; stm/runtime/StmRuntime.cpp collects them into
// the registry indexed by BackendKind.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RUNTIME_BACKENDOPS_H
#define STM_RUNTIME_BACKENDOPS_H

#include "stm/Config.h"
#include "stm/EpochManager.h"
#include "stm/Word.h"
#include "support/Stats.h"

#include <csetjmp>
#include <cstddef>

namespace stm::rt {

/// Type-erased operations of one STM backend. Field order groups the
/// transaction-rate hot calls (Load/Store/OnStart/Commit) first.
struct BackendOps {
  Word (*Load)(void *Tx, const Word *Addr);
  void (*Store)(void *Tx, Word *Addr, Word Value);
  void (*OnStart)(void *Tx);
  void (*Commit)(void *Tx);
  void (*Restart)(void *Tx); ///< [[noreturn]]: aborts + longjmps

  bool (*InTransaction)(const void *Tx);
  /// Marks the descriptor as running under a caller-owned epoch pin
  /// (batch admission; see TxBase::setBatchPinned).
  void (*SetBatchPinned)(void *Tx, bool Pinned);
  void *(*TxMalloc)(void *Tx, std::size_t Size);
  void (*TxFree)(void *Tx, void *Ptr);
  const repro::TxStats *(*Stats)(const void *Tx);

  void *(*CreateTx)(unsigned Slot, std::jmp_buf *EnvTarget);
  /// Unlinks the descriptor from global state and parks it on the
  /// EpochManager limbo list (thread exit; see ThreadScope).
  void (*RetireTx)(void *Tx);

  void (*GlobalInit)(const StmConfig &Config);
  void (*GlobalShutdown)();
  const char *Name;
};

/// Builds the dispatch table for \p STM (any type modelling the
/// templated facade concept: STM::Tx, globalInit, globalShutdown,
/// name). A fifth backend gets its table for free from this builder.
template <typename STM> constexpr BackendOps makeBackendOps() {
  using Tx = typename STM::Tx;
  BackendOps Ops = {};
  Ops.Load = [](void *T, const Word *Addr) {
    return static_cast<Tx *>(T)->load(Addr);
  };
  Ops.Store = [](void *T, Word *Addr, Word Value) {
    static_cast<Tx *>(T)->store(Addr, Value);
  };
  Ops.OnStart = [](void *T) { static_cast<Tx *>(T)->onStart(); };
  Ops.Commit = [](void *T) { static_cast<Tx *>(T)->commit(); };
  Ops.Restart = [](void *T) { static_cast<Tx *>(T)->restart(); };
  Ops.InTransaction = [](const void *T) {
    return static_cast<const Tx *>(T)->inTransaction();
  };
  Ops.SetBatchPinned = [](void *T, bool Pinned) {
    static_cast<Tx *>(T)->setBatchPinned(Pinned);
  };
  Ops.TxMalloc = [](void *T, std::size_t Size) {
    return static_cast<Tx *>(T)->txMalloc(Size);
  };
  Ops.TxFree = [](void *T, void *Ptr) {
    static_cast<Tx *>(T)->txFree(Ptr);
  };
  Ops.Stats = [](const void *T) {
    return &static_cast<const Tx *>(T)->stats();
  };
  Ops.CreateTx = [](unsigned Slot, std::jmp_buf *EnvTarget) -> void * {
    Tx *T = new Tx(Slot);
    T->redirectJumpEnv(EnvTarget);
    return T;
  };
  Ops.RetireTx = [](void *T) {
    Tx *Typed = static_cast<Tx *>(T);
    Typed->threadShutdown();
    EpochManager::retireObject(Typed);
  };
  Ops.GlobalInit = [](const StmConfig &Config) { STM::globalInit(Config); };
  Ops.GlobalShutdown = []() { STM::globalShutdown(); };
  Ops.Name = STM::name();
  return Ops;
}

} // namespace stm::rt

#endif // STM_RUNTIME_BACKENDOPS_H
