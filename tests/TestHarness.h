//===- tests/TestHarness.h - shared helpers for STM tests ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef TESTS_TESTHARNESS_H
#define TESTS_TESTHARNESS_H

#include "stm/Stm.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

namespace repro_test {

/// Iteration multiplier for the long ("stress"-labelled) test modes:
/// STM_STRESS=<n> scales the randomized suites up by n. Unset or 1 is
/// the quick mode every normal ctest run uses; the nightly CI job runs
/// the stress label with STM_STRESS=10.
inline unsigned stressScale() {
  static const unsigned Scale = [] {
    if (const char *Env = std::getenv("STM_STRESS")) {
      int V = std::atoi(Env);
      if (V > 1)
        return unsigned(V);
    }
    return 1u;
  }();
  return Scale;
}

/// Prints the active RNG base seed alongside every test failure, so a
/// flaky run can be replayed exactly with STM_TEST_SEED=<seed>.
class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestPartResult(const ::testing::TestPartResult &Result) override {
    if (Result.failed())
      std::fprintf(
          stderr, "note: rerun with STM_TEST_SEED=%llu to reproduce\n",
          static_cast<unsigned long long>(repro::testSeedBase()));
  }
};

inline const bool SeedReporterInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
  return true;
}();

/// Spawns \p NumThreads workers, each attached to \p STM via a
/// ThreadScope, runs \p Work(threadIndex, descriptor) and joins.
template <typename STM, typename Fn>
void runThreads(unsigned NumThreads, Fn &&Work) {
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&Work, I] {
      stm::ThreadScope<STM> Scope;
      Work(I, Scope.tx());
    });
  for (std::thread &T : Threads)
    T.join();
}

/// The STM types every behavioural test suite is instantiated over.
using AllStms =
    ::testing::Types<stm::SwissTm, stm::Tl2, stm::TinyStm, stm::Rstm>;

} // namespace repro_test

#endif // TESTS_TESTHARNESS_H
