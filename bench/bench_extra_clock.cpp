//===- bench/bench_extra_clock.cpp - commit-clock policy ablation ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every committing update transaction funnels through one global-clock
// cache line — the known scalability ceiling of time-based STMs that
// the GV4/GV5 schemes of TL2 (Dice, Shalev & Shavit, DISC 2006) exist
// to relieve. This sweep reruns fig5's red-black-tree point (range
// 16384, 20 % updates) over the full clock × backend grid, threads
// 1..max:
//
//   gv1  fetch&add — one RMW on the shared line per update commit, and
//        every transaction begin takes a coherence miss on the line a
//        committer just invalidated;
//   gv4  CAS with pass-on-failure adoption — identical to gv1 when
//        uncontended (so it cannot regress at one thread), never
//        retries under contention;
//   gv5  deferred increment — the commit path only *loads* the clock,
//        so the line stays shared across cores; the price is mandatory
//        commit-time validation (a deferred stamp is never exclusively
//        owned) and occasional extra extensions on the read side.
//   gvshard  sharded counters — committers RMW only their own shard's
//        line, begins sample one shard plus a periodic full scan; like
//        gv5 the shared stamp forces commit-time validation.
//
// validations_per_commit is reported alongside throughput to make the
// gv5/gvshard trade visible. Results land in
// bench/results/BENCH_extra_clock.json. Note the cache-line effects
// gv4/gv5/gvshard target are cross-core phenomena: on a single-core
// host the grid measures only the policies' overheads (and the run
// prints a loud caveat, see bench/Topology.h).
//
// The clock list is stm::allClockKinds() — one source of truth shared
// with the runtime's parser, so a new policy lands in this grid (and in
// scripts/repro_heap_corruption.sh via --list-clocks) automatically.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"
#include "bench/Topology.h"

using namespace bench;

namespace {

void sweep(stm::rt::BackendKind Backend, stm::ClockKind Clock) {
  std::string Name = std::string(stm::rt::backendName(Backend)) + "-" +
                     stm::clockKindName(Clock);
  for (unsigned Threads : threadSweep()) {
    // Cell markers for scripts/repro_heap_corruption.sh: when the run
    // dies mid-grid, the last line on stderr names the failing cell.
    if (std::getenv("STM_BENCH_PROGRESS") != nullptr) {
      std::fprintf(stderr, "extra-clock: cell %s@%ut\n", Name.c_str(),
                   Threads);
      std::fflush(stderr);
    }
    RunResult R = rbTreeThroughput<stm::StmRuntime>(
        clockConfig(Clock, rtConfig(Backend)), Threads);
    Report::instance().add("extra-clock", "rbtree", Name, Threads,
                           "tx_per_s", R.Value);
    Report::instance().add("extra-clock", "rbtree", Name, Threads,
                           "abort_ratio", R.Stats.abortRatio());
    uint64_t Commits = R.Stats.Commits == 0 ? 1 : R.Stats.Commits;
    Report::instance().add("extra-clock", "rbtree", Name, Threads,
                           "validations_per_commit",
                           static_cast<double>(R.Stats.Validations) /
                               static_cast<double>(Commits));
  }
}

} // namespace

int main(int argc, char **argv) {
  // --list-clocks: machine-readable clock grid, one name per line, for
  // scripts that enumerate the same policies this bench sweeps.
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--list-clocks") == 0) {
      for (stm::ClockKind Clock : stm::allClockKinds())
        std::printf("%s\n", stm::clockKindName(Clock));
      return 0;
    }
  }
  bench::parseStmFlags(argc, argv);
  bench::warnIfOversubscribed("bench_extra_clock", maxThreads());
  for (stm::rt::BackendKind Backend : stm::rt::allBackendKinds())
    for (stm::ClockKind Clock : stm::allClockKinds())
      sweep(Backend, Clock);
  Report::instance().print(
      "extra-clock",
      "fig5 rbtree (range 16384, 20% updates) over the commit-clock x "
      "backend grid, threads 1..max");
  return 0;
}
