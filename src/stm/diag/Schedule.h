//===- stm/diag/Schedule.h - record/replay/enumerate scheduling -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The schedule-control engine behind the diag hook points (Hooks.h).
// Three modes, selected at rest (no transactions in flight):
//
//   Record     every hook event is appended to a trace — either
//              unbounded (tests) or a fixed ring that keeps the tail
//              (bench grids, dumped by the crash handler at an abort).
//              Threads run at full concurrency; the trace is the
//              hook-arrival order.
//
//   Replay     a step list (hand-written, or stepsFromEvents of a
//              recorded trace) is enforced as a *serialized* schedule:
//              at most one scheduled thread runs between hook points.
//              A thread arriving at a hook parks; when every
//              registered thread is parked, the engine grants the one
//              matching the front step and waits for it to reach its
//              next hook before granting again. Because every racy STM
//              operation sits between two hooks and only one thread
//              runs per segment, the execution — including every
//              validation outcome and therefore the commit/abort
//              sequence — is a deterministic function of the step
//              list. Steps that can no longer match (their thread is
//              parked at a different event or finished) are skipped
//              and counted as divergences; a wedge (no grantable
//              thread for TimeoutMs) flags `stalled` and releases
//              everyone rather than hanging the test.
//
//   Enumerate  no step list: at each all-parked point the engine
//              *chooses* which thread to grant. The choice sequence is
//              recorded; driving the first divergent choice through
//              all alternatives (enumerateSchedules) walks every
//              distinct serialized schedule of a bounded history —
//              exhaustive interleaving coverage for small tests.
//
// Threads participate by identity, not registry slot: workers call
// Schedule::bindThread(Tid) with a test-chosen logical id (ThreadScope
// slot assignment is racy across runs, logical ids are not). Events
// from unbound threads pass through unscheduled.
//
//===----------------------------------------------------------------------===//

#ifndef STM_DIAG_SCHEDULE_H
#define STM_DIAG_SCHEDULE_H

#include "stm/diag/Hooks.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace stm::diag {

/// One observed hook event. Tid is the logical thread id bound via
/// bindThread (the raw registry slot when unbound).
struct Event {
  uint64_t Seq;
  uint32_t Tid;
  uint32_t Slot;
  HookKind Kind;
  uint64_t Stripe; ///< NoStripe when the hook is not stripe-scoped
  uint64_t Aux;
};

/// One replay step: "the next scheduled hook is thread Tid arriving at
/// Kind (on Stripe)". AnyKind/NoStripe widen the match.
struct Step {
  uint32_t Tid;
  HookKind Kind = HookKind::Begin;
  bool AnyKind = false;
  uint64_t Stripe = NoStripe;
  /// Barrier semantics for hand-written schedules: instead of granting
  /// one matching event, keep granting this thread segments until it
  /// parks AT a matching hook (which stays unexecuted — the next steps
  /// run other threads across that window). Tolerant of data-dependent
  /// filler hooks (periodic validation, clock extensions) that make
  /// exact event-by-event step lists brittle. If the thread finishes
  /// without ever reaching a match, the step is a divergence and is
  /// skipped — so an unmatchable Until also serves as "run to
  /// completion".
  bool Until = false;
};

/// One enumerate-mode decision point: Chosen of Enabled (>= 2) parked
/// threads was granted.
struct EnumChoice {
  unsigned Chosen;
  unsigned Enabled;
};

class Schedule {
public:
  static Schedule &instance();

  //===--------------------------------------------------------------------===//
  // Thread identity
  //===--------------------------------------------------------------------===//

  /// Binds the calling thread to logical id \p Tid for the duration of
  /// the active mode. In replay/enumerate this registers the thread
  /// with the serializer; call before the first transactional access.
  static void bindThread(uint32_t Tid);

  /// Retires the calling thread from the scheduled set (replay /
  /// enumerate grant no longer waits on it) and clears the binding.
  /// Must be called before the worker exits; ScopedThread automates it.
  static void unbindThread();

  /// RAII worker binding.
  class ScopedThread {
  public:
    explicit ScopedThread(uint32_t Tid) { bindThread(Tid); }
    ~ScopedThread() { unbindThread(); }
    ScopedThread(const ScopedThread &) = delete;
    ScopedThread &operator=(const ScopedThread &) = delete;
  };

  //===--------------------------------------------------------------------===//
  // Record
  //===--------------------------------------------------------------------===//

  /// Starts recording. \p RingCapacity == 0 keeps every event
  /// (unbounded, test-sized runs); > 0 keeps only the newest
  /// RingCapacity events (bench grids).
  void startRecord(std::size_t RingCapacity = 0);

  /// Stops recording and returns the trace in event order (for a ring
  /// that wrapped, the surviving tail).
  std::vector<Event> stopRecord();

  //===--------------------------------------------------------------------===//
  // Replay
  //===--------------------------------------------------------------------===//

  struct ReplayOptions {
    /// Wedge detector: if no grant happens for this long while threads
    /// wait, the replay is flagged stalled and released to free-run.
    uint64_t TimeoutMs = 10000;
    /// Threads that must bind before the first grant. 0 derives the
    /// set from the distinct Tids in the step list.
    unsigned ExpectedThreads = 0;
    /// After the step list is exhausted, keep serializing by granting
    /// parked threads in Tid order (keeps the tail deterministic).
    /// Off releases every thread to free-run.
    bool SerializeTail = true;
  };

  /// Arms replay of \p Steps. Workers then bind, run the workload, and
  /// unbind; stopReplay() returns the serialized event log.
  void startReplay(std::vector<Step> Steps, ReplayOptions Opts);
  void startReplay(std::vector<Step> Steps) {
    startReplay(std::move(Steps), ReplayOptions());
  }

  /// Ends replay mode and returns the grant-ordered event log.
  std::vector<Event> stopReplay();

  /// True once the wedge detector fired (the replayed interleaving was
  /// infeasible). Valid during and after replay until the next start*.
  bool stalled() const;

  /// Steps consumed / steps skipped as unmatchable.
  std::size_t stepsConsumed() const;
  std::size_t divergences() const;

  //===--------------------------------------------------------------------===//
  // Enumerate
  //===--------------------------------------------------------------------===//

  /// Arms enumerate mode: the first Prefix.size() decision points
  /// follow \p ChoicePrefix, later ones default to the lowest-Tid
  /// parked thread. Decision points after \p MaxChoicePoints are
  /// granted round-robin and not recorded (termination bound for
  /// histories with long spin phases).
  void startEnumerate(std::vector<unsigned> ChoicePrefix,
                      unsigned ExpectedThreads,
                      unsigned MaxChoicePoints = 64,
                      uint64_t TimeoutMs = 10000);

  /// Ends enumerate mode; returns the recorded decision points.
  std::vector<EnumChoice> stopEnumerate();

  //===--------------------------------------------------------------------===//
  // Hook entry (called via Hooks.h)
  //===--------------------------------------------------------------------===//

  void onEvent(uint32_t Slot, HookKind Kind, uint64_t Stripe, uint64_t Aux);

  bool active() const;

  //===--------------------------------------------------------------------===//
  // Traces
  //===--------------------------------------------------------------------===//

  /// Writes/reads the plain-text trace format:
  ///   # stm-diag-trace v1
  ///   <seq> <tid> <slot> <kind-name> <stripe|-> <aux>
  static bool dumpTrace(const std::vector<Event> &Trace, const char *Path);
  static bool loadTrace(const char *Path, std::vector<Event> &Out);

  /// Converts a trace into the step list that replays it: one step per
  /// event, matching (Tid, Kind, Stripe) exactly.
  static std::vector<Step> stepsFromEvents(const std::vector<Event> &Trace);

  /// Async-signal path for the crash handler: best-effort dump of the
  /// active ring to \p Fd without blocking on the engine mutex.
  void dumpRingToFd(int Fd);

private:
  Schedule() = default;
  struct Impl;
  Impl &impl();
};

/// Runs \p RunOnce under enumerate mode once per distinct schedule,
/// up to \p MaxRuns. Alternatives at the *earliest* choice points run
/// first (work-list order), so a truncated budget still covers the
/// most-divergent schedules; exactly one of Exhausted/Truncated is set
/// on return, and truncation also prints a stderr warning naming the
/// number of unexplored schedule subtrees. \p RunOnce must spawn its
/// \p ExpectedThreads bound workers and join them.
struct EnumStats {
  uint64_t Runs = 0;
  bool Exhausted = false; ///< every distinct schedule ran
  bool Truncated = false; ///< MaxRuns hit with schedules still pending
};
EnumStats enumerateSchedules(unsigned ExpectedThreads, uint64_t MaxRuns,
                             const std::function<void()> &RunOnce,
                             unsigned MaxChoicePoints = 64);

} // namespace stm::diag

#endif // STM_DIAG_SCHEDULE_H
