//===- stm/tinystm/TinyStm.h - TinySTM baseline -----------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Reimplementation of TinySTM (Felber/Fetzer/Riegel, PPoPP 2008) in its
// published default configuration: encounter-time locking (eager
// acquire) with write-back redo logging, LSA-style time-based validation
// *with* timestamp extension, and the timid contention manager. The
// behaviour the paper critiques -- a reader that hits a location locked
// by another transaction aborts immediately, so read/write conflicts are
// resolved very early by aborting readers -- falls out of the single
// versioned lock per stripe:
//
//   version << 1        when free,
//   StripeWrite* | 1    while a writer owns the stripe (from first
//                       write until its commit or abort).
//
// Built from the shared policy core: lock table and clock from
// stm/core, the valid-ts/extension loop from core::TimeValidation. No
// contention manager: timid is "abort self", which needs no state.
//
//
// INTERNAL HEADER — deprecated as an application include. The public
// surface is stm/Stm.h (stm::Runtime + stm::atomically); select this
// backend at runtime via StmConfig::Backend / STM_BACKEND instead of
// including it directly. Direct includes outside src/stm/ and tests
// of backend internals are scheduled for removal.
//===----------------------------------------------------------------------===//

#ifndef STM_TINYSTM_TINYSTM_H
#define STM_TINYSTM_TINYSTM_H

#include "stm/Config.h"
#include "stm/RacyAccess.h"
#include "stm/StableLog.h"
#include "stm/TxBase.h"
#include "stm/core/Clock.h"
#include "stm/core/LockTable.h"
#include "stm/core/Validation.h"
#include "stm/core/VersionedLock.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace stm::tiny {

class TinyTx;

/// One buffered word write, chained per stripe (same shape as SwissTM's
/// so encounter-time read-after-write is a pointer chase).
struct WordWrite {
  Word *Addr = nullptr;
  Word Value = 0;
  WordWrite *Next = nullptr;
};

struct VLock;

/// Per-stripe entry of a transaction's write log; the stripe lock points
/// here while owned.
struct StripeWrite {
  std::atomic<TinyTx *> Owner{nullptr};
  VLock *Lock = nullptr;
  WordWrite *Head = nullptr;
  Word OldValue = 0; ///< lock word (version) observed at acquisition
  /// The lock word this entry installs: the entry's tagged address in
  /// private mode, a SharedArena handle in multi-process mode. Release
  /// and rollback compare against it, so both modes share one path.
  Word Self = 0;

  StripeWrite() = default;
  StripeWrite(const StripeWrite &O)
      : Owner(O.Owner.load(std::memory_order_relaxed)), Lock(O.Lock),
        Head(O.Head), OldValue(O.OldValue), Self(O.Self) {}
  StripeWrite &operator=(const StripeWrite &O) {
    Owner.store(O.Owner.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Lock = O.Lock;
    Head = O.Head;
    OldValue = O.OldValue;
    Self = O.Self;
    return *this;
  }
};

struct VLock {
  std::atomic<Word> L{0};
};

/// Lock encoding: one tag bit (see core/VersionedLock.h).
using VLockOps = core::VersionedLockOps<1>;
inline bool vlockIsLocked(Word V) { return VLockOps::isLocked(V); }
inline uint64_t vlockVersion(Word V) { return VLockOps::version(V); }
inline Word vlockMake(uint64_t Version) { return VLockOps::make(Version); }
inline StripeWrite *vlockEntry(Word V) {
  return VLockOps::pointer<StripeWrite>(V);
}

struct TinyGlobals {
  core::LockTable<VLock> Table;
  GlobalClock Clock; ///< advances under StmConfig::Clock
  StmConfig Config;
  /// Cached SharedArena::sharedActive(): stripe locks carry slot
  /// handles instead of descriptor pointers. Set once in globalInit.
  bool SharedWords = false;
};

TinyGlobals &tinyGlobals();

/// One read-log entry.
struct ReadEntry {
  VLock *Lock;
  Word Seen; ///< lock word as read (free, version<<1)
};

/// TinySTM transaction descriptor.
class TinyTx : public TxBase, public core::TimeValidation<TinyTx> {
public:
  explicit TinyTx(unsigned Slot) : TxBase(Slot) {}

  void onStart();
  Word load(const Word *Addr);
  void store(Word *Addr, Word Value);
  void commit();
  [[noreturn]] void restart() { rollback(); }

private:
  friend class core::TimeValidation<TinyTx>;

  [[noreturn]] void rollback();
  bool validateReadSet();
  void addWordWrite(StripeWrite *Entry, Word *Addr, Word Value);

  /// Resolves a held lock word to this transaction's write-log entry,
  /// or null when another transaction owns it. Private mode dereferences
  /// the tagged pointer; multi-process mode decodes the handle (remote
  /// descriptors must never be dereferenced).
  StripeWrite *ownedEntry(Word V);
  /// Tail of commit() for single-fence mode (STM_SINGLE_FENCE); out of
  /// line so the off-by-default ordering variant does not sit in the
  /// default commit path's I-cache footprint.
  void commitSingleFence();

  std::vector<ReadEntry> ReadLog;
  StableLog<StripeWrite> WriteLog;
  StableLog<WordWrite> WordLog;
};

/// STM facade.
class TinyStm {
public:
  using Tx = TinyTx;

  static constexpr const char *name() { return "tinystm"; }

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();
  static TinyGlobals &globals() { return tinyGlobals(); }
};

} // namespace stm::tiny

namespace stm {
using TinyStm = tiny::TinyStm;
} // namespace stm

#endif // STM_TINYSTM_TINYSTM_H
