//===- examples/order_book.cpp - business-software scenario -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's second motivating domain is "business software": complex
// linked structures, operations of very different sizes. This example
// is a tiny in-memory limit order book: two transactional red-black
// trees (bids and asks keyed by price) plus an account table. Order
// placement, matching and cancellation run as transactions of very
// different footprints -- a cancel touches one node, a market sweep
// touches a whole price range -- the "mixed workload" SwissTM targets.
// (The serving bench, bench/bench_server.cpp, runs the same op-size
// spread under open-loop request traffic.)
//
// Everything goes through the public API: one stm::Runtime, and
// stm::atomically(runtime, fn) from any thread.
//
// Build & run:  ./build/order_book [ops] [threads]
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/rbtree/RbTree.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using Tx = stm::Runtime::Tx;
using Book = workloads::RbTree<stm::StmRuntime>;

namespace {

constexpr uint64_t PriceLevels = 512;
constexpr unsigned NumTraders = 16;

struct alignas(8) Trader {
  stm::Word Cash;
  stm::Word Shares;
};

/// Shares outstanding at one price level are stored as the tree value.
struct Market {
  Book Bids;
  Book Asks;
  std::vector<Trader> Traders;
};

/// Places a limit ask (sell) of \p Qty at \p Price: the trader escrows
/// shares into the asks book.
void placeAsk(stm::Runtime &R, Market &M, unsigned Who, uint64_t Price,
              uint64_t Qty) {
  stm::atomically(R, [&](Tx &T) {
    Trader &Tr = M.Traders[Who];
    stm::Word Held = T.load(&Tr.Shares);
    if (Held < Qty)
      return;
    T.store(&Tr.Shares, Held - Qty);
    uint64_t Existing = 0;
    if (M.Asks.lookup(T, Price, &Existing))
      M.Asks.update(T, Price, Existing + Qty);
    else
      M.Asks.insert(T, Price, Qty);
  });
}

/// Market buy: sweep the asks book from the lowest price upward until
/// \p Qty shares are bought or cash runs out. A potentially *long*
/// transaction touching many price levels.
uint64_t marketBuy(stm::Runtime &R, Market &M, unsigned Who, uint64_t Qty) {
  uint64_t Bought = 0;
  uint64_t *BoughtPtr = &Bought;
  stm::atomically(R, [&, BoughtPtr](Tx &T) {
    *BoughtPtr = 0;
    Trader &Tr = M.Traders[Who];
    uint64_t Cash = T.load(&Tr.Cash);
    uint64_t Want = Qty;
    for (uint64_t Price = 1; Price <= PriceLevels && Want > 0; ++Price) {
      uint64_t Avail = 0;
      if (!M.Asks.lookup(T, Price, &Avail) || Avail == 0)
        continue;
      uint64_t Affordable = Cash / Price;
      uint64_t Take = std::min({Want, Avail, Affordable});
      if (Take == 0)
        break; // out of cash
      if (Take == Avail)
        M.Asks.remove(T, Price);
      else
        M.Asks.update(T, Price, Avail - Take);
      Cash -= Take * Price;
      Want -= Take;
      *BoughtPtr += Take;
    }
    T.store(&Tr.Cash, Cash);
    T.store(&Tr.Shares, T.load(&Tr.Shares) + *BoughtPtr);
  });
  return Bought;
}

/// Cancels (restores) up to \p Qty shares from a price level back to
/// the trader: a very short transaction.
void cancelAsk(stm::Runtime &R, Market &M, unsigned Who, uint64_t Price) {
  stm::atomically(R, [&](Tx &T) {
    uint64_t Avail = 0;
    if (!M.Asks.lookup(T, Price, &Avail) || Avail == 0)
      return;
    M.Asks.remove(T, Price);
    Trader &Tr = M.Traders[Who];
    T.store(&Tr.Shares, T.load(&Tr.Shares) + Avail);
  });
}

} // namespace

int main(int argc, char **argv) {
  unsigned Ops = argc > 1 ? std::atoi(argv[1]) : 20000;
  unsigned NumThreads = argc > 2 ? std::atoi(argv[2]) : 4;

  stm::Runtime Runtime;
  Market M;
  M.Traders.assign(NumTraders, Trader{100000, 1000});
  const uint64_t InitialShares = NumTraders * 1000ull;

  std::vector<std::thread> Threads;
  std::atomic<uint64_t> TotalBought{0};
  for (unsigned Id = 0; Id < NumThreads; ++Id) {
    Threads.emplace_back([&, Id] {
      repro::Xorshift Rng(Id * 7 + 3);
      uint64_t Mine = 0;
      for (unsigned I = 0; I < Ops / NumThreads; ++I) {
        unsigned Who = Rng.nextBounded(NumTraders);
        unsigned Kind = static_cast<unsigned>(Rng.nextBounded(100));
        uint64_t Price = 1 + Rng.nextBounded(PriceLevels);
        if (Kind < 50)
          placeAsk(Runtime, M, Who, Price, 1 + Rng.nextBounded(5));
        else if (Kind < 75)
          Mine += marketBuy(Runtime, M, Who, 1 + Rng.nextBounded(10));
        else
          cancelAsk(Runtime, M, Who, Price);
      }
      TotalBought.fetch_add(Mine);
      auto Stats = Runtime.threadTx().stats();
      std::printf("thread %u: %llu commits, %llu aborts\n", Id,
                  (unsigned long long)Stats.Commits,
                  (unsigned long long)Stats.Aborts);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Share conservation: held by traders + escrowed in the book.
  uint64_t Held = 0;
  for (const Trader &T : M.Traders)
    Held += T.Shares;
  uint64_t Escrowed = 0;
  uint64_t *EscrowedPtr = &Escrowed;
  stm::atomically(Runtime, [&, EscrowedPtr](Tx &T) {
    *EscrowedPtr = 0;
    for (uint64_t P = 1; P <= PriceLevels; ++P) {
      uint64_t Qty = 0;
      if (M.Asks.lookup(T, P, &Qty))
        *EscrowedPtr += Qty;
    }
  });
  bool Ok = Held + Escrowed == InitialShares;
  std::printf("shares: held=%llu escrowed=%llu total=%llu (expected "
              "%llu) -> %s; matched volume=%llu\n",
              (unsigned long long)Held, (unsigned long long)Escrowed,
              (unsigned long long)(Held + Escrowed),
              (unsigned long long)InitialShares, Ok ? "OK" : "BROKEN",
              (unsigned long long)TotalBought.load());
  std::printf("book verified: %s\n", M.Asks.verify() ? "yes" : "NO");
  return Ok ? 0 : 1;
}
