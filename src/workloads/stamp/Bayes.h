//===- workloads/stamp/Bayes.h - STAMP bayes --------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's bayes learns a Bayesian-network structure from data by
// parallel hill climbing. This reimplementation keeps that shape
// (documented in DESIGN.md): threads propose edge insertions/removals
// on a shared DAG; the score delta (log-likelihood with a BIC penalty)
// is computed against a snapshot of the target's parent set, and the
// apply transaction revalidates the snapshot, re-checks acyclicity by a
// transactional reachability walk, and commits the edge.
//
// Data is sampled from a seeded ground-truth DAG, so tests can check
// that learning strictly improves the global score and never breaks
// acyclicity or the parent cap.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_BAYES_H
#define WORKLOADS_STAMP_BAYES_H

#include "stm/Stm.h"
#include "support/Random.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace workloads::stamp {

struct BayesConfig {
  unsigned Vars = 12;      ///< <= 32 (parent/child sets are bitmasks)
  unsigned Records = 2048;
  unsigned MaxParents = 4;
  unsigned ProposalsPerThread = 400;
};

template <typename STM> class Bayes {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  explicit Bayes(const BayesConfig &Config, uint64_t Seed = 0xbae5ull)
      : Cfg(Config), ParentMask(Config.Vars, 0), ChildMask(Config.Vars, 0) {
    generate(Seed);
  }

  Bayes(const Bayes &) = delete;
  Bayes &operator=(const Bayes &) = delete;

  /// Worker: runs Cfg.ProposalsPerThread hill-climbing proposals.
  /// Returns the number of accepted structure changes.
  uint64_t work(Tx &T, unsigned ThreadSeed) {
    repro::Xorshift Rng(ThreadSeed * 2654435761u + 99);
    uint64_t Accepted = 0;
    for (unsigned P = 0; P < Cfg.ProposalsPerThread; ++P) {
      unsigned From = static_cast<unsigned>(Rng.nextBounded(Cfg.Vars));
      unsigned To = static_cast<unsigned>(Rng.nextBounded(Cfg.Vars));
      if (From == To)
        continue;
      Accepted += propose(T, From, To);
    }
    return Accepted;
  }

  /// One proposal: try to add (or, if present, remove) From -> To when
  /// it improves the BIC score.
  bool propose(Tx &T, unsigned From, unsigned To) {
    // Snapshot the target's parent set.
    uint64_t Snapshot = 0;
    uint64_t *SnapshotPtr = &Snapshot;
    stm::atomically(T, [&, SnapshotPtr](Tx &X) {
      *SnapshotPtr = X.load(&ParentMask[To]);
    });

    bool Present = (Snapshot >> From) & 1;
    uint64_t NewMask = Present ? (Snapshot & ~(uint64_t(1) << From))
                               : (Snapshot | (uint64_t(1) << From));
    if (!Present && popcount(NewMask) > Cfg.MaxParents)
      return false;

    // Expensive score evaluation outside any transaction.
    double Delta = scoreFamily(To, NewMask) - scoreFamily(To, Snapshot);
    if (Delta <= 1e-9)
      return false;

    // Apply: revalidate the snapshot and acyclicity, then commit.
    bool Applied = false;
    bool *AppliedPtr = &Applied;
    stm::atomically(T, [&, AppliedPtr](Tx &X) {
      *AppliedPtr = false;
      if (X.load(&ParentMask[To]) != Snapshot)
        return; // concurrent change: drop the stale proposal
      if (!Present && reaches(X, To, From))
        return; // would close a cycle
      X.store(&ParentMask[To], NewMask);
      uint64_t Children = X.load(&ChildMask[From]);
      if (Present)
        X.store(&ChildMask[From], Children & ~(uint64_t(1) << To));
      else
        X.store(&ChildMask[From], Children | (uint64_t(1) << To));
      *AppliedPtr = true;
    });
    return Applied;
  }

  //===--------------------------------------------------------------===//
  // Scores and validation
  //===--------------------------------------------------------------===//

  /// BIC score of the whole current structure (quiesced use only).
  double totalScore() const {
    double S = 0;
    for (unsigned V = 0; V < Cfg.Vars; ++V)
      S += scoreFamily(V, ParentMask[V]);
    return S;
  }

  /// Score of the empty structure.
  double emptyScore() const {
    double S = 0;
    for (unsigned V = 0; V < Cfg.Vars; ++V)
      S += scoreFamily(V, 0);
    return S;
  }

  /// Quiesced acyclicity check of the learned graph.
  bool acyclic() const {
    std::vector<unsigned> State(Cfg.Vars, 0); // 0 new, 1 open, 2 done
    for (unsigned V = 0; V < Cfg.Vars; ++V)
      if (State[V] == 0 && !dfs(V, State))
        return false;
    return true;
  }

  /// Quiesced parent-cap check.
  bool parentCapRespected() const {
    for (unsigned V = 0; V < Cfg.Vars; ++V)
      if (popcount(ParentMask[V]) > Cfg.MaxParents)
        return false;
    return true;
  }

  /// Quiesced consistency: ChildMask must be the transpose of
  /// ParentMask.
  bool masksConsistent() const {
    for (unsigned A = 0; A < Cfg.Vars; ++A)
      for (unsigned B = 0; B < Cfg.Vars; ++B) {
        bool Parent = (ParentMask[B] >> A) & 1;
        bool Child = (ChildMask[A] >> B) & 1;
        if (Parent != Child)
          return false;
      }
    return true;
  }

  unsigned varCount() const { return Cfg.Vars; }
  uint64_t edgeCount() const {
    uint64_t N = 0;
    for (unsigned V = 0; V < Cfg.Vars; ++V)
      N += popcount(ParentMask[V]);
    return N;
  }

private:
  static unsigned popcount(uint64_t X) {
    return static_cast<unsigned>(__builtin_popcountll(X));
  }

  /// Transactional reachability: can \p Src reach \p Dst via child
  /// links? (Bitmask BFS; the graph has <= 32 nodes.)
  bool reaches(Tx &X, unsigned Src, unsigned Dst) {
    uint64_t Frontier = uint64_t(1) << Src;
    uint64_t Visited = Frontier;
    while (Frontier != 0) {
      uint64_t Next = 0;
      uint64_t F = Frontier;
      while (F != 0) {
        unsigned V = static_cast<unsigned>(__builtin_ctzll(F));
        F &= F - 1;
        Next |= X.load(&ChildMask[V]);
      }
      if ((Next >> Dst) & 1)
        return true;
      Frontier = Next & ~Visited;
      Visited |= Next;
    }
    return false;
  }

  bool dfs(unsigned V, std::vector<unsigned> &State) const {
    State[V] = 1;
    uint64_t Children = ChildMask[V];
    while (Children != 0) {
      unsigned C = static_cast<unsigned>(__builtin_ctzll(Children));
      Children &= Children - 1;
      if (State[C] == 1)
        return false;
      if (State[C] == 0 && !dfs(C, State))
        return false;
    }
    State[V] = 2;
    return true;
  }

  /// BIC family score of variable \p V with parent set \p Mask,
  /// computed from the (immutable) data.
  double scoreFamily(unsigned V, uint64_t Mask) const {
    unsigned NumParents = popcount(Mask);
    unsigned Configs = 1u << NumParents;
    // counts[config][value]
    std::vector<uint32_t> Counts(Configs * 2, 0);
    for (const uint32_t &Row : Data) {
      unsigned Config = 0, Bit = 0;
      uint64_t M = Mask;
      while (M != 0) {
        unsigned P = static_cast<unsigned>(__builtin_ctzll(M));
        M &= M - 1;
        Config |= ((Row >> P) & 1) << Bit;
        ++Bit;
      }
      ++Counts[Config * 2 + ((Row >> V) & 1)];
    }
    double LogLik = 0;
    for (unsigned C = 0; C < Configs; ++C) {
      uint32_t N0 = Counts[C * 2], N1 = Counts[C * 2 + 1];
      uint32_t N = N0 + N1;
      if (N0 > 0)
        LogLik += N0 * std::log(static_cast<double>(N0) / N);
      if (N1 > 0)
        LogLik += N1 * std::log(static_cast<double>(N1) / N);
    }
    double Penalty = 0.5 * std::log(static_cast<double>(Data.size())) *
                     static_cast<double>(Configs);
    return LogLik - Penalty;
  }

  void generate(uint64_t Seed) {
    repro::Xorshift Rng(Seed);
    // Ground-truth DAG on the natural order: edge i -> j (i < j) with
    // probability 25%, capped parents.
    std::vector<uint64_t> TruthParents(Cfg.Vars, 0);
    for (unsigned J = 1; J < Cfg.Vars; ++J)
      for (unsigned I = 0; I < J; ++I)
        if (popcount(TruthParents[J]) < Cfg.MaxParents &&
            Rng.nextPercent(25))
          TruthParents[J] |= uint64_t(1) << I;
    // Sample records: noisy-OR of parents.
    Data.reserve(Cfg.Records);
    for (unsigned R = 0; R < Cfg.Records; ++R) {
      uint32_t Row = 0;
      for (unsigned V = 0; V < Cfg.Vars; ++V) {
        uint64_t Pa = TruthParents[V] & Row; // parents precede V
        bool AnyParentOn = Pa != 0;
        unsigned POn = AnyParentOn ? 85 : 15;
        if (Rng.nextPercent(POn))
          Row |= uint32_t(1) << V;
      }
      Data.push_back(Row);
    }
  }

  BayesConfig Cfg;
  std::vector<uint32_t> Data; ///< one bitmask row per record (immutable)
  // Transactional structure state.
  std::vector<Word> ParentMask;
  std::vector<Word> ChildMask;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_BAYES_H
