//===- bench/bench_fig3_stamp.cpp - Figure 3 -------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 3: speedup of SwissTM over TL2 (top) and over TinySTM (bottom)
// on the ten STAMP workloads for 1, 2, 4 and 8 threads. Reported value
// is (time_baseline / time_swisstm) - 1, the paper's "Speedup - 1".
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  using stm::rt::BackendKind;
  for (const std::string &Workload : stampWorkloads()) {
    for (unsigned Threads : powerOfTwoSweep()) {
      double Swiss = runStampWorkload<stm::StmRuntime>(
                         Workload, rtConfig(BackendKind::SwissTm), Threads)
                         .Value;
      double Tl2 = runStampWorkload<stm::StmRuntime>(
                       Workload, rtConfig(BackendKind::Tl2), Threads)
                       .Value;
      double Tiny = runStampWorkload<stm::StmRuntime>(
                        Workload, rtConfig(BackendKind::TinyStm), Threads)
                        .Value;
      Report::instance().add("fig3-top", Workload, "swisstm-vs-tl2",
                             Threads, "speedup_minus_1",
                             Tl2 / Swiss - 1.0);
      Report::instance().add("fig3-bottom", Workload, "swisstm-vs-tinystm",
                             Threads, "speedup_minus_1",
                             Tiny / Swiss - 1.0);
      Report::instance().add("fig3-raw", Workload, "swisstm", Threads,
                             "seconds", Swiss);
      Report::instance().add("fig3-raw", Workload, "tl2", Threads,
                             "seconds", Tl2);
      Report::instance().add("fig3-raw", Workload, "tinystm", Threads,
                             "seconds", Tiny);
    }
  }
  Report::instance().print(
      "3", "STAMP: SwissTM speedup over TL2 and TinySTM");
  return 0;
}
