//===- tests/StatsInvariantTest.cpp - per-backend stats accounting ---------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The figures are plotted from TxStats, so accounting drift is silent
// data corruption for the reproduction: a backend that double-counts
// read-after-write reads or loses an abort skews every derived ratio.
// These invariants hold on every backend and pin the counters down
// during refactors of the shared core:
//
//   * Starts == Commits + Aborts at every quiescent point;
//   * every counter is monotone non-decreasing over a descriptor's life;
//   * read-after-write reads count exactly once per load() call;
//   * ReadOnlyCommits counts exactly the transactions with no writes.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <atomic>
#include <vector>

using namespace stm;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class StatsInvariantTest : public repro_test::RuntimeSuite {};

/// Contended increments: every attempt either commits or aborts, never
/// both, never neither — Starts must balance exactly, per thread and in
/// aggregate.
TEST_P(StatsInvariantTest, StartsEqualCommitsPlusAborts) {
  alignas(64) static Word Counter;
  Counter = 0;
  constexpr unsigned Threads = 4;
  constexpr unsigned Iters = 2000;
  std::vector<repro::TxStats> Stats(Threads);

  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned I = 0; I < Iters; ++I)
      atomically(Tx,
                 [&](auto &T) { T.store(&Counter, T.load(&Counter) + 1); });
    Stats[Id] = Tx.stats();
  });

  repro::TxStats Total;
  for (unsigned I = 0; I < Threads; ++I) {
    EXPECT_EQ(Stats[I].Starts, Stats[I].Commits + Stats[I].Aborts)
        << repro_test::Rt::name() << " thread " << I;
    EXPECT_EQ(Stats[I].Commits, Iters) << repro_test::Rt::name() << " thread "
                                       << I;
    Total += Stats[I];
  }
  EXPECT_EQ(Counter, uint64_t(Threads) * Iters);
  EXPECT_EQ(Total.Starts, Total.Commits + Total.Aborts);
}

/// Counters only ever go up: snapshot a descriptor's stats between
/// batches of contended work and check monotonicity field by field,
/// plus the balance invariant at each quiescent-enough point (the
/// descriptor itself is between transactions when sampled).
TEST_P(StatsInvariantTest, CountersMonotoneAcrossBatches) {
  alignas(64) static Word Cells[4];
  for (Word &W : Cells)
    W = 0;
  std::atomic<bool> Monotone{true};
  std::atomic<bool> Balanced{true};

  runThreads<repro_test::Rt>(3, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 40));
    repro::TxStats Prev = Tx.stats();
    for (unsigned Batch = 0; Batch < 20; ++Batch) {
      for (unsigned I = 0; I < 100; ++I) {
        unsigned A = Rng.nextBounded(4), B = Rng.nextBounded(4);
        atomically(Tx, [&, A, B](auto &T) {
          Word V = T.load(&Cells[A]);
          if (Rng.nextPercent(60))
            T.store(&Cells[B], V + 1);
          else
            (void)T.load(&Cells[B]);
        });
      }
      const repro::TxStats &Cur = Tx.stats();
      if (Cur.Starts < Prev.Starts || Cur.Commits < Prev.Commits ||
          Cur.Aborts < Prev.Aborts || Cur.Reads < Prev.Reads ||
          Cur.Writes < Prev.Writes ||
          Cur.Validations < Prev.Validations ||
          Cur.Extensions < Prev.Extensions ||
          Cur.FailedExtensions < Prev.FailedExtensions ||
          Cur.ReadOnlyCommits < Prev.ReadOnlyCommits ||
          Cur.Serializations < Prev.Serializations ||
          Cur.IrrevocableCommits < Prev.IrrevocableCommits)
        Monotone.store(false);
      if (Cur.Starts != Cur.Commits + Cur.Aborts)
        Balanced.store(false);
      if (Cur.ReadOnlyCommits > Cur.Commits)
        Balanced.store(false);
      Prev = Cur;
    }
  });

  EXPECT_TRUE(Monotone.load()) << repro_test::Rt::name()
                               << ": a counter decreased";
  EXPECT_TRUE(Balanced.load()) << repro_test::Rt::name()
                               << ": Starts != Commits + Aborts mid-run";
}

/// Uncontended single thread: counts are exact. Read-after-write hits
/// served from the write log (or the owned stripe) must count once per
/// load() — not zero (the read happened) and not twice.
TEST_P(StatsInvariantTest, ReadAfterWriteReadsCountOnce) {
  alignas(64) static Word X, Y;
  X = Y = 0;

  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    repro::TxStats Before = Tx.stats();
    atomically(Tx, [&](auto &T) {
      T.store(&X, 7); // X now in the write set
      for (int I = 0; I < 5; ++I)
        EXPECT_EQ(T.load(&X), 7u); // read-after-write hits
      for (int I = 0; I < 3; ++I)
        (void)T.load(&Y); // plain reads
      T.store(&X, 8);
    });
    const repro::TxStats &After = Tx.stats();
    EXPECT_EQ(After.Reads - Before.Reads, 8u)
        << repro_test::Rt::name() << ": RAW reads double- or under-counted";
    EXPECT_EQ(After.Writes - Before.Writes, 2u);
    EXPECT_EQ(After.Starts - Before.Starts, 1u);
    EXPECT_EQ(After.Commits - Before.Commits, 1u);
    EXPECT_EQ(After.Aborts - Before.Aborts, 0u);
  });
  EXPECT_EQ(X, 8u);
}

/// Read-only commits are tallied separately and never exceed commits.
TEST_P(StatsInvariantTest, ReadOnlyCommitsAreExact) {
  alignas(64) static Word X;
  X = 41;

  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    repro::TxStats Before = Tx.stats();
    for (int I = 0; I < 6; ++I)
      atomically(Tx, [&](auto &T) { (void)T.load(&X); });
    for (int I = 0; I < 2; ++I)
      atomically(Tx, [&](auto &T) { T.store(&X, T.load(&X) + 1); });
    const repro::TxStats &After = Tx.stats();
    EXPECT_EQ(After.ReadOnlyCommits - Before.ReadOnlyCommits, 6u)
        << repro_test::Rt::name();
    EXPECT_EQ(After.Commits - Before.Commits, 8u) << repro_test::Rt::name();
  });
  EXPECT_EQ(X, 43u);
}

/// Irrevocability counters: only the orec backend (or the adaptive
/// switcher once it escalates onto it) may serialize; every irrevocable
/// commit was preceded by a serialization and is also an ordinary
/// commit; and the escalation paths — token-gate parks, the post-pin
/// token recheck's rollback, mid-tx escalation CAS losses — must not
/// unbalance Starts == Commits + Aborts. Runs under a hair-trigger
/// abort threshold so the orec leg escalates for real.
TEST_P(StatsInvariantTest, IrrevocabilityCountersConsistent) {
  // Re-init with the aggressive threshold (SetUp used the default 8).
  StmRuntime::globalShutdown();
  StmConfig Cfg;
  Cfg.LockTableSizeLog2 = 16;
  Cfg = applyMode(Cfg);
  Cfg.OrecIrrevocableAborts = 1;
  StmRuntime::globalInit(Cfg);

  alignas(64) static Word Counter;
  Counter = 0;
  constexpr unsigned Threads = 4;
  constexpr unsigned Iters = 1000;
  std::vector<repro::TxStats> Stats(Threads);
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned I = 0; I < Iters; ++I)
      atomically(Tx, [&](auto &T) {
        Word V = T.load(&Counter);
        // Widen the read-to-write window so the attempts overlap and
        // the abort threshold is actually reached on few-core hosts.
        std::this_thread::yield();
        T.store(&Counter, V + 1);
      });
    Stats[Id] = Tx.stats();
  });

  repro::TxStats Total;
  for (unsigned I = 0; I < Threads; ++I) {
    EXPECT_EQ(Stats[I].Starts, Stats[I].Commits + Stats[I].Aborts)
        << repro_test::Rt::name() << " thread " << I;
    Total += Stats[I];
  }
  EXPECT_EQ(Counter, uint64_t(Threads) * Iters);
  EXPECT_LE(Total.IrrevocableCommits, Total.Commits);
  EXPECT_LE(Total.IrrevocableCommits, Total.Serializations)
      << "an irrevocable commit without a token acquisition";
  const repro_test::RtMode &Mode = GetParam();
  if (!Mode.Adaptive && Mode.Kind != stm::rt::BackendKind::Orec) {
    EXPECT_EQ(Total.Serializations, 0u)
        << repro_test::Rt::name() << ": a non-orec backend serialized";
    EXPECT_EQ(Total.IrrevocableCommits, 0u);
  }
  if (!Mode.Adaptive && Mode.Kind == stm::rt::BackendKind::Orec) {
    EXPECT_GE(Total.Serializations, 1u)
        << "contended orec run never escalated despite threshold 1";
    EXPECT_GE(Total.IrrevocableCommits, 1u);
  }
}

/// The sharded commit clock must not perturb the accounting: under
/// gvshard every commit stamps from a scan over per-shard counters and
/// begins run on a cached view, but an attempt still either commits or
/// aborts exactly once. Re-inits each backend with a 4-shard clock
/// (the topology auto-derivation collapses to 1 on small hosts) and
/// replays the balance invariant under contention.
TEST_P(StatsInvariantTest, StartsBalanceUnderShardedClock) {
  StmRuntime::globalShutdown();
  StmConfig Cfg;
  Cfg.LockTableSizeLog2 = 16;
  Cfg = applyMode(Cfg);
  Cfg.Clock = ClockKind::GvShard;
  Cfg.ClockShards = 4;
  StmRuntime::globalInit(Cfg);

  alignas(64) static Word Counter;
  Counter = 0;
  constexpr unsigned Threads = 4;
  constexpr unsigned Iters = 1500;
  std::vector<repro::TxStats> Stats(Threads);
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned I = 0; I < Iters; ++I)
      atomically(Tx,
                 [&](auto &T) { T.store(&Counter, T.load(&Counter) + 1); });
    Stats[Id] = Tx.stats();
  });

  repro::TxStats Total;
  for (unsigned I = 0; I < Threads; ++I) {
    EXPECT_EQ(Stats[I].Starts, Stats[I].Commits + Stats[I].Aborts)
        << repro_test::Rt::name() << " thread " << I << " under gvshard";
    EXPECT_EQ(Stats[I].Commits, Iters)
        << repro_test::Rt::name() << " thread " << I << " under gvshard";
    Total += Stats[I];
  }
  EXPECT_EQ(Counter, uint64_t(Threads) * Iters);
  EXPECT_EQ(Total.Starts, Total.Commits + Total.Aborts);
}

/// The paper's derived metric: abortRatio stays in [0, 1] and matches
/// the raw counters it is computed from.
TEST_P(StatsInvariantTest, AbortRatioConsistent) {
  alignas(64) static Word Hot;
  Hot = 0;
  std::vector<repro::TxStats> Stats(4);
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    for (int I = 0; I < 500; ++I)
      atomically(Tx, [&](auto &T) { T.store(&Hot, T.load(&Hot) + 1); });
    Stats[Id] = Tx.stats();
  });
  repro::TxStats Total;
  for (const auto &S : Stats)
    Total += S;
  double Ratio = Total.abortRatio();
  EXPECT_GE(Ratio, 0.0);
  EXPECT_LE(Ratio, 1.0);
  EXPECT_DOUBLE_EQ(Ratio, double(Total.Aborts) /
                              double(Total.Commits + Total.Aborts));
}

STM_INSTANTIATE_RUNTIME_SUITE(StatsInvariantTest);

/// The adaptive policy's input: WindowCommits/WindowAborts must account
/// for every attempt exactly, including the remainder a thread has
/// accumulated since its last FlushInterval boundary when it exits.
/// Regression test for a churn bug where those pending deltas were
/// dropped at thread shutdown: per-thread iteration counts deliberately
/// avoid multiples of the flush interval, and several churn generations
/// make the lost remainders add up if the final flush is missing.
TEST(AdaptiveWindowStatsTest, ThreadChurnKeepsWindowAggregatesExact) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.Backend = stm::rt::BackendKind::Tl2;
  Config.Adaptive = true;
  Config.AdaptiveWindow = ~0u; // accumulate only: the policy never acts

  constexpr unsigned Generations = 5;
  constexpr unsigned Threads = 3;
  constexpr unsigned Iters = 37; // != 0 mod FlushInterval(32)
  // One cache line (and thus one stripe) per thread: disjoint write
  // sets, so the expected counts are conflict-free and exact.
  struct alignas(64) PaddedCell {
    Word W;
  };
  static PaddedCell Cells[Threads];

  StmRuntime::globalInit(Config);
  for (PaddedCell &C : Cells)
    C.W = 0;
  for (unsigned Gen = 0; Gen < Generations; ++Gen) {
    // Each generation spawns fresh threads (fresh TxHandles) and joins
    // them, so every handle exits with 37 % 32 = 5 unflushed commits.
    runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
      for (unsigned I = 0; I < Iters; ++I)
        atomically(Tx, [&, Id](auto &T) {
          T.store(&Cells[Id].W, T.load(&Cells[Id].W) + 1);
        });
    });
  }

  stm::rt::RuntimeGlobals &G = stm::rt::runtimeGlobals();
  EXPECT_EQ(G.WindowCommits.load(), uint64_t(Generations) * Threads * Iters)
      << "thread exit dropped window commit remainders";
  EXPECT_EQ(G.WindowAborts.load(), 0u);
  EXPECT_EQ(G.WindowWrites.load(), uint64_t(Generations) * Threads * Iters);
  for (unsigned Id = 0; Id < Threads; ++Id)
    EXPECT_EQ(Cells[Id].W, uint64_t(Generations) * Iters);
  StmRuntime::globalShutdown();
}

} // namespace
