//===- support/Topology.h - cpu/core/socket detection -----------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Detects the machine's core/socket/SMT layout once per process. Every
// cross-core mechanism in the repo (sharded commit clock, lock-table
// interleave, the bench grids) is topology-sensitive, and the standing
// caveat on all recorded numbers is that they were taken on a 1-core
// container — so the detected layout is (a) the input to the auto shard
// derivation (stm/core/Clock.h GvShard, STM_CLOCK_SHARDS=0) and (b)
// recorded into every bench JSON so results stay interpretable after
// the fact.
//
// Source of truth is Linux sysfs (/sys/devices/system/cpu): physical
// package and core ids of each online cpu. When sysfs is absent
// (non-Linux, restricted containers) everything degrades to
// std::thread::hardware_concurrency() as a flat one-socket, no-SMT
// machine, and FromSysfs is false so consumers can say so.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TOPOLOGY_H
#define SUPPORT_TOPOLOGY_H

namespace repro {

/// One process-wide snapshot of the machine layout.
struct TopologyInfo {
  unsigned LogicalCpus = 1; ///< online logical cpus (hw threads)
  unsigned Cores = 1;       ///< distinct physical cores
  unsigned Sockets = 1;     ///< distinct physical packages
  unsigned SmtPerCore = 1;  ///< LogicalCpus / Cores, >= 1
  bool FromSysfs = false;   ///< true when sysfs supplied the layout
};

/// The detected topology (detected once, cached).
const TopologyInfo &topology();

/// Shard count derived from the topology for the sharded commit clock
/// and the lock-table interleave (the STM_CLOCK_SHARDS=0 /
/// STM_LOCK_SHARDS=0 "auto" value): the largest power of two not above
/// max(sockets, cores/4), clamped to [1, MaxShards]. One shard per
/// socket keeps commit stamps socket-local; on fat single-socket parts
/// one shard per four cores bounds how many committers RMW one line.
/// A 1-core container derives 1 — byte-identical to the unsharded
/// clock.
unsigned defaultShardCount(unsigned MaxShards);

} // namespace repro

#endif // SUPPORT_TOPOLOGY_H
