//===- examples/quickstart.cpp - SwissTM in five minutes --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The smallest complete program against the public API: a shared bank
// with word-based transactional accesses. One stm::Runtime per process,
// stm::atomically(runtime, fn) from any thread — attachment is lazy, no
// per-thread ceremony. Pick the backend at launch time with
// STM_BACKEND=swisstm|tl2|tinystm|rstm (and STM_ADAPTIVE=1 for the mode
// switcher) or with an explicit StmConfig.
//
// Build & run:  ./build/quickstart
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"

#include <cstdio>
#include <thread>
#include <vector>

namespace {

constexpr unsigned NumAccounts = 32;
constexpr unsigned NumThreads = 4;
constexpr unsigned TransfersPerThread = 20000;
constexpr stm::Word InitialBalance = 1000;

struct alignas(8) Account {
  stm::Word Balance;
};

} // namespace

int main() {
  // 1. One Runtime per process; the backend comes from StmConfig::fromEnv.
  stm::Runtime Runtime;

  std::vector<Account> Bank(NumAccounts, Account{InitialBalance});

  // 2. Any thread calls atomically(runtime, fn); it attaches on first use.
  std::vector<std::thread> Threads;
  for (unsigned Id = 0; Id < NumThreads; ++Id) {
    Threads.emplace_back([&Bank, &Runtime, Id] {
      repro::Xorshift Rng(Id + 1);
      for (unsigned I = 0; I < TransfersPerThread; ++I) {
        unsigned From = Rng.nextBounded(NumAccounts);
        unsigned To = Rng.nextBounded(NumAccounts);
        // 3. atomically() retries the body until it commits.
        stm::atomically(Runtime, [&](stm::Runtime::Tx &T) {
          stm::Word B = T.load(&Bank[From].Balance);
          if (B == 0)
            return; // nothing to move; commits as read-only
          T.store(&Bank[From].Balance, B - 1);
          T.store(&Bank[To].Balance, T.load(&Bank[To].Balance) + 1);
        });
      }
      auto Stats = Runtime.threadTx().stats();
      std::printf("thread %u: %llu commits, %llu aborts\n", Id,
                  (unsigned long long)Stats.Commits,
                  (unsigned long long)Stats.Aborts);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // 4. Money is conserved: the defining invariant of atomicity.
  stm::Word Total = 0;
  for (const Account &A : Bank)
    Total += A.Balance;
  std::printf("total balance: %llu (expected %llu) -> %s\n",
              (unsigned long long)Total,
              (unsigned long long)(NumAccounts * InitialBalance),
              Total == NumAccounts * InitialBalance ? "OK" : "BROKEN");
  return Total == NumAccounts * InitialBalance ? 0 : 1;
}
