//===- tests/StampTest.cpp - STAMP-lite application tests ------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Each STAMP-lite application is validated end-to-end under every STM:
// genome must reconstruct the exact input sequence, intruder must find
// exactly the planted attacks, kmeans must converge near the generating
// means, vacation must conserve resource capacity, ssca2 must build a
// consistent graph, yada must keep the mesh conforming with exact area
// conservation, and bayes must improve the score on an acyclic graph.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/stamp/Stamp.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace stm;
using namespace workloads::stamp;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class StampTest : public repro_test::RuntimeSuite {};

//===----------------------------------------------------------------------===//
// genome
//===----------------------------------------------------------------------===//

TEST_P(StampTest, GenomeReconstructsExactSequence) {
  GenomeConfig Cfg;
  Cfg.GenomeLength = 300;
  Cfg.SegmentLength = 12;
  Genome<repro_test::Rt> G(Cfg);
  std::atomic<uint64_t> Fresh{0};
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) {
    Fresh.fetch_add(G.dedupWorker(Tx));
  });
  EXPECT_EQ(Fresh.load(), Cfg.GenomeLength - Cfg.SegmentLength + 1);
  G.buildSegmentArray();
  EXPECT_EQ(G.uniqueCount(), Cfg.GenomeLength - Cfg.SegmentLength + 1);
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) { G.indexWorker(Tx); });
  G.resetClaims();
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) { G.linkWorker(Tx); });
  EXPECT_EQ(G.reconstruct(), G.original());
}

TEST_P(StampTest, GenomeSingleThreadMatchesMultiThread) {
  GenomeConfig Cfg;
  Cfg.GenomeLength = 200;
  Cfg.SegmentLength = 10;
  Genome<repro_test::Rt> G(Cfg);
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) { G.dedupWorker(Tx); });
  G.buildSegmentArray();
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) { G.indexWorker(Tx); });
  G.resetClaims();
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) { G.linkWorker(Tx); });
  EXPECT_EQ(G.reconstruct(), G.original());
}

//===----------------------------------------------------------------------===//
// intruder
//===----------------------------------------------------------------------===//

TEST_P(StampTest, IntruderDetectsExactlyPlantedAttacks) {
  IntruderConfig Cfg;
  Cfg.Flows = 120;
  Intruder<repro_test::Rt> App(Cfg);
  std::atomic<uint64_t> MyFlows{0};
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) {
    MyFlows.fetch_add(App.work(Tx));
  });
  EXPECT_EQ(App.assembledCount(), Cfg.Flows);
  EXPECT_EQ(MyFlows.load(), Cfg.Flows);
  EXPECT_EQ(App.detectedCount(), App.plantedAttacks());
  EXPECT_TRUE(App.tableDrained());
}

//===----------------------------------------------------------------------===//
// kmeans
//===----------------------------------------------------------------------===//

template <typename STM>
void runKMeans(KMeans<STM> &App, unsigned Threads) {
  for (unsigned Iter = 0; Iter < 6; ++Iter) {
    runThreads<STM>(Threads, [&](unsigned Id, auto &Tx) {
      unsigned Chunk = (App.pointCount() + Threads - 1) / Threads;
      unsigned Begin = Id * Chunk;
      unsigned End = std::min(App.pointCount(), Begin + Chunk);
      App.assignChunk(Tx, Begin, End);
    });
    ASSERT_EQ(App.membershipTotal(), App.pointCount());
    App.finishIteration();
  }
}

TEST_P(StampTest, KMeansHighContentionConverges) {
  KMeansConfig Cfg;
  Cfg.Points = 512;
  Cfg.Clusters = 4;
  KMeans<repro_test::Rt> App(Cfg);
  runKMeans(App, 4);
  EXPECT_TRUE(App.centersNearTruth());
}

TEST_P(StampTest, KMeansLowContentionConverges) {
  KMeansConfig Cfg;
  Cfg.Points = 512;
  Cfg.Clusters = 16;
  KMeans<repro_test::Rt> App(Cfg);
  runKMeans(App, 4);
  EXPECT_TRUE(App.centersNearTruth());
}

//===----------------------------------------------------------------------===//
// ssca2
//===----------------------------------------------------------------------===//

TEST_P(StampTest, Ssca2DegreesMatchInsertions) {
  Ssca2Config Cfg;
  Cfg.VerticesLog2 = 8;
  Cfg.EdgeFactor = 4;
  Ssca2<repro_test::Rt> App(Cfg);
  std::atomic<uint64_t> Inserted{0};
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) {
    Inserted.fetch_add(App.work(Tx));
  });
  EXPECT_EQ(Inserted.load(), App.edgeCount());
  EXPECT_EQ(App.totalDegree(), App.edgeCount());
  EXPECT_TRUE(App.degreesConsistent());
}

TEST_P(StampTest, Ssca2EveryEdgePresent) {
  Ssca2Config Cfg;
  Cfg.VerticesLog2 = 6;
  Cfg.EdgeFactor = 2;
  Ssca2<repro_test::Rt> App(Cfg);
  runThreads<repro_test::Rt>(2, [&](unsigned, auto &Tx) { App.work(Tx); });
  const auto &Edges = App.edgeList();
  for (std::size_t I = 0; I + 1 < Edges.size(); I += 2)
    ASSERT_TRUE(App.hasEdge(Edges[I], Edges[I + 1]))
        << "missing edge " << Edges[I] << "->" << Edges[I + 1];
}

//===----------------------------------------------------------------------===//
// vacation
//===----------------------------------------------------------------------===//

TEST_P(StampTest, VacationHighPreservesCapacity) {
  VacationConfig Cfg = vacationHigh();
  Cfg.Relations = 64;
  Vacation<repro_test::Rt> App(Cfg);
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 31 + 5));
    for (int I = 0; I < 400; ++I)
      App.clientOp(Tx, Rng);
  });
  EXPECT_TRUE(App.verify());
}

TEST_P(StampTest, VacationLowPreservesCapacity) {
  VacationConfig Cfg = vacationLow();
  Cfg.Relations = 64;
  Vacation<repro_test::Rt> App(Cfg);
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 17 + 3));
    for (int I = 0; I < 400; ++I)
      App.clientOp(Tx, Rng);
  });
  EXPECT_TRUE(App.verify());
}

TEST_P(StampTest, VacationReservationsActuallyHappen) {
  VacationConfig Cfg = vacationLow();
  Cfg.Relations = 32;
  Vacation<repro_test::Rt> App(Cfg);
  std::atomic<uint64_t> Changes{0};
  runThreads<repro_test::Rt>(2, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 1));
    uint64_t Mine = 0;
    for (int I = 0; I < 200; ++I)
      Mine += App.opMakeReservation(Tx, Rng);
    Changes.fetch_add(Mine);
  });
  EXPECT_GT(Changes.load(), 0u);
  EXPECT_TRUE(App.verify());
}

//===----------------------------------------------------------------------===//
// yada
//===----------------------------------------------------------------------===//

TEST_P(StampTest, YadaRefinesToAllGoodSingleThread) {
  YadaConfig Cfg;
  Cfg.GridCells = 6;
  Yada<repro_test::Rt> App(Cfg);
  EXPECT_EQ(App.liveArea2(), App.domainArea2());
  uint64_t Splits = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    Splits = App.work(Tx);
  });
  EXPECT_GT(Splits, 0u);
  EXPECT_TRUE(App.allGood());
  EXPECT_TRUE(App.conforming());
  EXPECT_EQ(App.liveArea2(), App.domainArea2());
}

TEST_P(StampTest, YadaConcurrentRefinementKeepsMeshExact) {
  YadaConfig Cfg;
  Cfg.GridCells = 8;
  Yada<repro_test::Rt> App(Cfg);
  std::atomic<uint64_t> Splits{0};
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) {
    Splits.fetch_add(App.work(Tx));
  });
  EXPECT_GT(Splits.load(), 0u);
  EXPECT_TRUE(App.allGood());
  EXPECT_TRUE(App.conforming());
  EXPECT_EQ(App.liveArea2(), App.domainArea2());
}

//===----------------------------------------------------------------------===//
// bayes
//===----------------------------------------------------------------------===//

TEST_P(StampTest, BayesImprovesScoreAndStaysAcyclic) {
  BayesConfig Cfg;
  Cfg.Vars = 10;
  Cfg.Records = 512;
  Cfg.ProposalsPerThread = 150;
  Bayes<repro_test::Rt> App(Cfg);
  double Empty = App.emptyScore();
  std::atomic<uint64_t> Accepted{0};
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    Accepted.fetch_add(App.work(Tx, Id + 1));
  });
  EXPECT_GT(Accepted.load(), 0u);
  EXPECT_GT(App.totalScore(), Empty);
  EXPECT_TRUE(App.acyclic());
  EXPECT_TRUE(App.parentCapRespected());
  EXPECT_TRUE(App.masksConsistent());
}

TEST_P(StampTest, BayesEdgeCountBounded) {
  BayesConfig Cfg;
  Cfg.Vars = 8;
  Cfg.Records = 256;
  Cfg.ProposalsPerThread = 100;
  Bayes<repro_test::Rt> App(Cfg);
  runThreads<repro_test::Rt>(2, [&](unsigned Id, auto &Tx) {
    App.work(Tx, Id + 9);
  });
  EXPECT_LE(App.edgeCount(), uint64_t(Cfg.Vars) * Cfg.MaxParents);
  EXPECT_TRUE(App.acyclic());
}

STM_INSTANTIATE_RUNTIME_SUITE(StampTest);

} // namespace
