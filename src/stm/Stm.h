//===- stm/Stm.h - umbrella header for the STM library ----------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Pulls in the public API: the four STMs (SwissTm, Tl2, TinyStm, Rstm),
// the type-erased runtime facades (StmRuntime, AdaptiveRuntime), the
// atomically() boundary, typed field accessors, per-thread scopes and
// the global configuration. See README.md for a quickstart.
//
//===----------------------------------------------------------------------===//

#ifndef STM_STM_H
#define STM_STM_H

#include "stm/Atomically.h"
#include "stm/Config.h"
#include "stm/ThreadScope.h"
#include "stm/rstm/Rstm.h"
#include "stm/runtime/StmRuntime.h"
#include "stm/swisstm/SwissTm.h"
#include "stm/tinystm/TinyStm.h"
#include "stm/tl2/Tl2.h"

#endif // STM_STM_H
