//===- bench/Topology.h - topology recording for bench artifacts -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Bench-side face of support/Topology.h: every BENCH_*.json artifact
// records the machine layout it was measured on, and every
// multi-threaded grid prints a loud caveat when the host cannot
// actually run the requested threads in parallel — the standing lesson
// of the 1-core container this repo's numbers were first taken on,
// previously encoded as hand-written caveat strings inside the JSON
// files.
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_TOPOLOGY_H
#define BENCH_TOPOLOGY_H

#include <string>

namespace bench {

/// The detected topology as a single-line JSON object, e.g.
///   {"logical_cpus": 8, "cores": 4, "sockets": 1, "smt_per_core": 2,
///    "source": "sysfs"}
/// Embed under a "topology" key in every bench JSON artifact.
std::string topologyJson();

/// Prints the oversubscription caveat to stderr when the detected core
/// count is below \p Threads (cross-core effects collapse into
/// scheduler noise on such a host). Returns true when it printed.
bool warnIfOversubscribed(const char *BenchName, unsigned Threads);

} // namespace bench

#endif // BENCH_TOPOLOGY_H
