//===- stm/tl2/RuntimeOps.h - TL2 runtime adapter ---------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Registers TL2 with the type-erased runtime (see
// stm/runtime/BackendOps.h).
//
//===----------------------------------------------------------------------===//

#ifndef STM_TL2_RUNTIMEOPS_H
#define STM_TL2_RUNTIMEOPS_H

#include "stm/runtime/BackendOps.h"
#include "stm/tl2/Tl2.h"

namespace stm::tl2 {

inline const rt::BackendOps &runtimeOps() {
  static constexpr rt::BackendOps Ops = rt::makeBackendOps<Tl2>();
  return Ops;
}

} // namespace stm::tl2

#endif // STM_TL2_RUNTIMEOPS_H
