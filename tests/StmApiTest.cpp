//===- tests/StmApiTest.cpp - behavioural tests across all four STMs ------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every test in this file runs against SwissTM, TL2, TinySTM and the
// RSTM-like baseline through the shared word-based API; they pin down
// the transactional semantics (atomicity, isolation, opacity, abort
// rollback, transactional allocation) that the benchmarks rely on.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

using namespace stm;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class StmApiTest : public repro_test::RuntimeSuite {};

TEST_P(StmApiTest, CommitMakesWriteVisible) {
  alignas(8) Word Cell = 5;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { T.store(&Cell, 42); });
  });
  EXPECT_EQ(Cell, 42u);
}

TEST_P(StmApiTest, ReadSeesPreexistingValue) {
  alignas(8) Word Cell = 1234;
  Word Seen = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { Seen = T.load(&Cell); });
  });
  EXPECT_EQ(Seen, 1234u);
}

TEST_P(StmApiTest, ReadAfterWriteReturnsBufferedValue) {
  alignas(8) Word Cell = 0;
  Word Inside = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      T.store(&Cell, 7);
      Inside = T.load(&Cell);
      T.store(&Cell, T.load(&Cell) + 1);
    });
  });
  EXPECT_EQ(Inside, 7u);
  EXPECT_EQ(Cell, 8u);
}

TEST_P(StmApiTest, ReadUnwrittenWordOfOwnedStripe) {
  // Two adjacent words share a stripe at default granularity; writing
  // one and reading the other exercises the owned-stripe direct-read
  // path.
  alignas(64) Word Cells[2] = {10, 20};
  Word Seen = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      T.store(&Cells[0], 11);
      Seen = T.load(&Cells[1]);
    });
  });
  EXPECT_EQ(Seen, 20u);
  EXPECT_EQ(Cells[0], 11u);
}

TEST_P(StmApiTest, ExplicitRestartRerunsBody) {
  alignas(8) Word Cell = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    int Attempts = 0; // modified only between transactions via pointer
    int *AttemptsPtr = &Attempts;
    atomically(Tx, [&, AttemptsPtr](auto &T) {
      ++*AttemptsPtr;
      T.store(&Cell, static_cast<Word>(*AttemptsPtr));
      if (*AttemptsPtr < 3)
        T.restart();
    });
    EXPECT_EQ(Attempts, 3);
  });
  EXPECT_EQ(Cell, 3u);
}

TEST_P(StmApiTest, AbortRollsBackAllWrites) {
  alignas(64) Word Cells[4] = {1, 2, 3, 4};
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, RetriedPtr](auto &T) {
      if (!*RetriedPtr) {
        for (auto &C : Cells)
          T.store(&C, 99);
        *RetriedPtr = true;
        T.restart(); // all four writes must be discarded
      }
    });
  });
  EXPECT_EQ(Cells[0], 1u);
  EXPECT_EQ(Cells[1], 2u);
  EXPECT_EQ(Cells[2], 3u);
  EXPECT_EQ(Cells[3], 4u);
}

TEST_P(StmApiTest, AbortCountsInStats) {
  alignas(8) Word Cell = 0;
  uint64_t Aborts = 0, Commits = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, RetriedPtr](auto &T) {
      T.store(&Cell, 1);
      if (!*RetriedPtr) {
        *RetriedPtr = true;
        T.restart();
      }
    });
    Aborts = Tx.stats().Aborts;
    Commits = Tx.stats().Commits;
  });
  EXPECT_EQ(Aborts, 1u);
  EXPECT_EQ(Commits, 1u);
}

TEST_P(StmApiTest, FlatNestingMergesIntoOuter) {
  alignas(64) Word A = 0, B = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      T.store(&A, 1);
      atomically(Tx, [&](auto &Inner) { Inner.store(&B, 2); });
      EXPECT_TRUE(T.inTransaction());
    });
  });
  EXPECT_EQ(A, 1u);
  EXPECT_EQ(B, 2u);
}

TEST_P(StmApiTest, TypedFieldRoundTrip) {
  struct alignas(8) Fields {
    int32_t I32;
    uint16_t U16;
    double D;
    float F;
  };
  alignas(8) Fields Obj = {};
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      storeField(T, &Obj.I32, int32_t{-12345});
      storeField(T, &Obj.U16, uint16_t{777});
      storeField(T, &Obj.D, 3.25);
      storeField(T, &Obj.F, 1.5f);
    });
    atomically(Tx, [&](auto &T) {
      EXPECT_EQ(loadField(T, &Obj.I32), -12345);
      EXPECT_EQ(loadField(T, &Obj.U16), 777);
      EXPECT_EQ(loadField(T, &Obj.D), 3.25);
      EXPECT_EQ(loadField(T, &Obj.F), 1.5f);
    });
  });
  EXPECT_EQ(Obj.I32, -12345);
  EXPECT_EQ(Obj.U16, 777);
  EXPECT_EQ(Obj.D, 3.25);
  EXPECT_EQ(Obj.F, 1.5f);
}

TEST_P(StmApiTest, PointerFieldRoundTrip) {
  struct Node {
    Node *Next;
  };
  alignas(8) Node N1{nullptr}, N2{nullptr};
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { storePtr(T, &N1.Next, &N2); });
    atomically(Tx, [&](auto &T) {
      Node *P = loadPtr(T, &N1.Next);
      EXPECT_EQ(P, &N2);
    });
  });
  EXPECT_EQ(N1.Next, &N2);
}

TEST_P(StmApiTest, TxMallocSurvivesCommit) {
  Word *Ptr = nullptr;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      auto *P = static_cast<Word *>(T.txMalloc(sizeof(Word)));
      *P = 0; // freshly allocated: private until commit
      T.store(P, 321);
      Ptr = P;
    });
  });
  ASSERT_NE(Ptr, nullptr);
  EXPECT_EQ(*Ptr, 321u);
  std::free(Ptr);
}

TEST_P(StmApiTest, TxMallocRolledBackOnAbort) {
  // The allocation in the aborted attempt must be released (checked
  // under ASan builds; here we check the committed attempt only sees
  // its own allocation).
  int Allocations = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    int *AllocPtr = &Allocations;
    Word *Kept = nullptr;
    Word **KeptPtr = &Kept;
    atomically(Tx, [&, RetriedPtr, AllocPtr, KeptPtr](auto &T) {
      ++*AllocPtr;
      *KeptPtr = static_cast<Word *>(T.txMalloc(sizeof(Word)));
      if (!*RetriedPtr) {
        *RetriedPtr = true;
        T.restart();
      }
    });
    EXPECT_EQ(*AllocPtr, 2);
    std::free(Kept);
  });
}

TEST_P(StmApiTest, TxFreeDeferredUntilCommit) {
  auto *Block = static_cast<Word *>(std::malloc(sizeof(Word)));
  *Block = 5;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, RetriedPtr](auto &T) {
      T.txFree(Block);
      if (!*RetriedPtr) {
        *RetriedPtr = true;
        T.restart();
      }
    });
    // Aborted attempt must not have freed the block; by now the commit
    // retired it, and quiescence will release it at shutdown.
  });
  SUCCEED();
}

TEST_P(StmApiTest, ConcurrentCountersSumCorrectly) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Increments = 2000;
  alignas(8) Word Counter = 0;
  runThreads<repro_test::Rt>(Threads, [&](unsigned, auto &Tx) {
    for (unsigned I = 0; I < Increments; ++I)
      atomically(Tx,
                 [&](auto &T) { T.store(&Counter, T.load(&Counter) + 1); });
  });
  EXPECT_EQ(Counter, uint64_t(Threads) * Increments);
}

TEST_P(StmApiTest, DisjointCountersNoFalseSharingOfResults) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Increments = 2000;
  // Spread counters over distinct stripes.
  struct alignas(64) Cell {
    Word Value = 0;
  };
  Cell Counters[Threads];
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned I = 0; I < Increments; ++I)
      atomically(Tx, [&](auto &T) {
        T.store(&Counters[Id].Value, T.load(&Counters[Id].Value) + 1);
      });
  });
  for (const Cell &C : Counters)
    EXPECT_EQ(C.Value, Increments);
}

TEST_P(StmApiTest, BankTransferPreservesTotal) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Accounts = 64;
  constexpr unsigned Transfers = 3000;
  constexpr Word Initial = 1000;
  struct alignas(8) Account {
    Word Balance;
  };
  std::vector<Account> Bank(Accounts, Account{Initial});
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 1));
    for (unsigned I = 0; I < Transfers; ++I) {
      unsigned From = Rng.nextBounded(Accounts);
      unsigned To = Rng.nextBounded(Accounts);
      atomically(Tx, [&](auto &T) {
        Word B = T.load(&Bank[From].Balance);
        if (B == 0)
          return;
        T.store(&Bank[From].Balance, B - 1);
        T.store(&Bank[To].Balance, T.load(&Bank[To].Balance) + 1);
      });
    }
  });
  uint64_t Total = 0;
  for (const Account &A : Bank)
    Total += A.Balance;
  EXPECT_EQ(Total, uint64_t(Accounts) * Initial);
}

TEST_P(StmApiTest, OpacityInvariantNeverObservedBroken) {
  // Writers keep X + Y == 1000; readers assert the invariant *inside*
  // the transaction body. An STM without opacity lets a doomed
  // transaction observe X and Y from different snapshots.
  constexpr Word Total = 1000;
  struct alignas(64) Pair {
    Word X = Total;
    alignas(64) Word Y = 0;
  };
  Pair P;
  std::atomic<bool> Violation{false};
  std::atomic<bool> Stop{false};
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 17));
    for (unsigned I = 0; I < 4000 && !Stop.load(); ++I) {
      if (Id % 2 == 0) {
        atomically(Tx, [&](auto &T) {
          Word X = T.load(&P.X);
          Word Delta = Rng.nextBounded(5);
          if (X < Delta)
            return;
          T.store(&P.X, X - Delta);
          T.store(&P.Y, T.load(&P.Y) + Delta);
        });
      } else {
        atomically(Tx, [&](auto &T) {
          Word X = T.load(&P.X);
          Word Y = T.load(&P.Y);
          if (X + Y != Total) {
            Violation.store(true);
            Stop.store(true);
          }
        });
      }
    }
  });
  EXPECT_FALSE(Violation.load());
  EXPECT_EQ(P.X + P.Y, Total);
}

TEST_P(StmApiTest, ReadOnlyCommitsCounted) {
  alignas(8) Word Cell = 3;
  uint64_t ReadOnly = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 5; ++I)
      atomically(Tx, [&](auto &T) { (void)T.load(&Cell); });
    ReadOnly = Tx.stats().ReadOnlyCommits;
  });
  EXPECT_EQ(ReadOnly, 5u);
}

TEST_P(StmApiTest, ManyStripesLargeTransaction) {
  constexpr unsigned N = 4096; // spans many lock-table stripes
  std::vector<Word> Data(N, 0);
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      for (unsigned I = 0; I < N; ++I)
        T.store(&Data[I], I + 1);
    });
    uint64_t Sum = 0;
    uint64_t *SumPtr = &Sum;
    atomically(Tx, [&, SumPtr](auto &T) {
      *SumPtr = 0;
      for (unsigned I = 0; I < N; ++I)
        *SumPtr += T.load(&Data[I]);
    });
    EXPECT_EQ(Sum, uint64_t(N) * (N + 1) / 2);
  });
  for (unsigned I = 0; I < N; ++I)
    ASSERT_EQ(Data[I], I + 1);
}

TEST_P(StmApiTest, WriterWinsOverStaleReaderEventually) {
  // Two threads ping-pong on the same stripe; progress for both proves
  // the contention path (w/w conflicts, kills, back-off) is live.
  alignas(8) Word Cell = 0;
  std::atomic<uint64_t> Done{0};
  runThreads<repro_test::Rt>(2, [&](unsigned, auto &Tx) {
    for (unsigned I = 0; I < 3000; ++I)
      atomically(Tx,
                 [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
    Done.fetch_add(1);
  });
  EXPECT_EQ(Done.load(), 2u);
  EXPECT_EQ(Cell, 6000u);
}

STM_INSTANTIATE_RUNTIME_SUITE(StmApiTest);

/// The orec allocation trigger must fire on *real* transactional
/// allocator traffic: txMalloc and txFree route through noteAllocation
/// automatically, so a transaction whose malloc/free volume crosses
/// STM_OREC_IRREVOCABLE_ALLOCS serializes without a single explicit
/// noteAllocation call. Regression test — the trigger originally
/// counted only explicit calls, so real allocation bursts (container
/// rebuilds, erase loops) never escalated.
TEST(OrecAllocTriggerTest, TxMallocAndTxFreeReachIrrevocability) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.Backend = stm::rt::BackendKind::Orec;
  Config.OrecIrrevocableAborts = 0; // isolate the allocation trigger
  Config.OrecIrrevocableAllocs = 4;
  StmRuntime::globalInit(Config);
  {
    repro::TxStats Stats;
    Word *Kept = nullptr;
    runThreads<StmRuntime>(1, [&](unsigned, auto &Tx) {
      atomically(Tx, [&](auto &T) {
        // 3 mallocs + 3 frees = 6 allocator events >= threshold 4; the
        // crossing event itself happens mid-transaction, on a free.
        Word *Blocks[3];
        for (Word *&B : Blocks) {
          B = static_cast<Word *>(T.txMalloc(sizeof(Word)));
          *B = 0;
        }
        for (Word *B : Blocks)
          T.txFree(B);
        Kept = static_cast<Word *>(T.txMalloc(sizeof(Word)));
        *Kept = 1;
      });
      Stats = Tx.stats();
    });
    EXPECT_GE(Stats.Serializations, 1u)
        << "txMalloc/txFree volume crossed the threshold but never "
        << "escalated to irrevocable";
    EXPECT_GE(Stats.IrrevocableCommits, 1u);
    EXPECT_EQ(Stats.Commits, 1u);
    std::free(Kept);
  }
  StmRuntime::globalShutdown();
}

} // namespace
