//===- tests/AtomicallyTest.cpp - boundary-layer tests ---------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Tests for the transaction-boundary layer itself: field accessors on
// awkward sizes and alignments, flat-nesting abort semantics (an inner
// abort restarts the outermost transaction), and re-initialization.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace stm;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class AtomicallyTest : public repro_test::RuntimeSuite {};

TEST_P(AtomicallyTest, UnalignedFieldSpansTwoWords) {
  // A 4-byte field placed to straddle a word boundary exercises the
  // multi-word gather/scatter path.
  struct Packed {
    char Pad[6];
    uint32_t Straddler; // bytes 6..9: crosses the 8-byte boundary
    char Tail[6];
  };
  alignas(8) static Packed P;
  std::memset(&P, 0xab, sizeof(P));
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      storeField(T, &P.Straddler, uint32_t{0xdeadbeef});
    });
    uint32_t Seen = 0;
    uint32_t *SeenPtr = &Seen;
    atomically(Tx, [&, SeenPtr](auto &T) {
      *SeenPtr = loadField(T, &P.Straddler);
    });
    EXPECT_EQ(Seen, 0xdeadbeefu);
  });
  EXPECT_EQ(P.Straddler, 0xdeadbeefu);
  // Neighbouring bytes untouched.
  for (char C : P.Pad)
    EXPECT_EQ(static_cast<unsigned char>(C), 0xab);
  for (char C : P.Tail)
    EXPECT_EQ(static_cast<unsigned char>(C), 0xab);
}

TEST_P(AtomicallyTest, LargeStructFieldRoundTrip) {
  struct Big {
    uint64_t A, B, C;
  };
  struct Holder {
    Big Value;
  };
  alignas(8) static Holder H;
  std::memset(&H, 0, sizeof(H));
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      storeField(T, &H.Value, Big{1, 2, 3});
    });
    Big Seen{};
    Big *SeenPtr = &Seen;
    atomically(Tx, [&, SeenPtr](auto &T) {
      *SeenPtr = loadField(T, &H.Value);
    });
    EXPECT_EQ(Seen.A, 1u);
    EXPECT_EQ(Seen.B, 2u);
    EXPECT_EQ(Seen.C, 3u);
  });
}

TEST_P(AtomicallyTest, InnerAbortRestartsOuterTransaction) {
  alignas(64) static Word A, B;
  A = B = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    int OuterRuns = 0;
    int *OuterPtr = &OuterRuns;
    atomically(Tx, [&, OuterPtr](auto &T) {
      ++*OuterPtr;
      T.store(&A, static_cast<Word>(*OuterPtr));
      atomically(Tx, [&, OuterPtr](auto &Inner) {
        Inner.store(&B, 99);
        if (*OuterPtr < 2)
          Inner.restart(); // must re-run the OUTER body
      });
    });
    EXPECT_EQ(OuterRuns, 2) << "flat nesting: inner abort restarts outer";
  });
  EXPECT_EQ(A, 2u);
  EXPECT_EQ(B, 99u);
}

TEST_P(AtomicallyTest, GlobalReInitGivesCleanState) {
  alignas(8) static Word Cell;
  Cell = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { T.store(&Cell, 5); });
  });
  // Tear down and bring the STM back up: transactions must work again.
  repro_test::Rt::globalShutdown();
  StmConfig Config;
  Config.LockTableSizeLog2 = 15;
  Config.GranularityLog2 = 6;
  repro_test::Rt::globalInit(applyMode(Config));
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
  });
  EXPECT_EQ(Cell, 6u);
  // TearDown will shut down again; re-init so it has something to tear
  // down symmetric with SetUp.
}

TEST_P(AtomicallyTest, SequentialThreadScopesReuseSlots) {
  alignas(8) static Word Cell;
  Cell = 0;
  for (int Round = 0; Round < 4; ++Round)
    runThreads<repro_test::Rt>(2, [&](unsigned, auto &Tx) {
      for (int I = 0; I < 50; ++I)
        atomically(Tx, [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
    });
  EXPECT_EQ(Cell, 4u * 2u * 50u);
  EXPECT_LE(repro::ThreadRegistry::highWaterMark(), 8u)
      << "slots must be recycled across rounds";
}

TEST_P(AtomicallyTest, StatsAccumulateAcrossTransactions) {
  alignas(8) static Word Cell;
  Cell = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 10; ++I)
      atomically(Tx, [&](auto &T) { T.store(&Cell, I); });
    for (int I = 0; I < 5; ++I)
      atomically(Tx, [&](auto &T) { (void)T.load(&Cell); });
    EXPECT_EQ(Tx.stats().Commits, 15u);
    EXPECT_EQ(Tx.stats().ReadOnlyCommits, 5u);
    EXPECT_GE(Tx.stats().Writes, 10u);
    EXPECT_GE(Tx.stats().Reads, 5u);
  });
}

STM_INSTANTIATE_RUNTIME_SUITE(AtomicallyTest);

} // namespace
