//===- bench/bench_fig10_twophase_greedy.cpp - Figure 10 --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 10: the two-phase contention manager vs plain Greedy, both in
// SwissTM, on the red-black tree microbenchmark. Paper shape: Greedy's
// shared timestamp counter becomes a cache hot spot for short
// transactions; the two-phase manager, which skips the counter for
// short transactions, is faster and scales better.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

static void sweep(stm::CmKind Cm, const char *Name) {
  stm::StmConfig Config;
  Config.Cm = Cm;
  for (unsigned Threads : threadSweep()) {
    RunResult R = rbTreeThroughput<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads);
    Report::instance().add("fig10", "rbtree", Name, Threads, "tx_per_s",
                           R.Value);
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  sweep(stm::CmKind::TwoPhase, "two-phase");
  sweep(stm::CmKind::Greedy, "greedy");
  Report::instance().print(
      "10", "two-phase vs Greedy CM (SwissTM), red-black tree");
  return 0;
}
