//===- bench/Topology.cpp - topology recording for bench artifacts --------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "bench/Topology.h"

#include "support/Topology.h"

#include <cstdio>

namespace bench {

std::string topologyJson() {
  const repro::TopologyInfo &T = repro::topology();
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"logical_cpus\": %u, \"cores\": %u, \"sockets\": %u, "
                "\"smt_per_core\": %u, \"source\": \"%s\"}",
                T.LogicalCpus, T.Cores, T.Sockets, T.SmtPerCore,
                T.FromSysfs ? "sysfs" : "hardware_concurrency");
  return Buf;
}

bool warnIfOversubscribed(const char *BenchName, unsigned Threads) {
  const repro::TopologyInfo &T = repro::topology();
  if (Threads <= T.Cores)
    return false;
  std::fprintf(stderr,
               "%s: CAVEAT: %u threads on %u core%s (%u socket%s) — "
               "multi-thread cells are oversubscribed and cross-core "
               "effects collapse into scheduler noise on this host\n",
               BenchName, Threads, T.Cores, T.Cores == 1 ? "" : "s",
               T.Sockets, T.Sockets == 1 ? "" : "s");
  return true;
}

} // namespace bench
