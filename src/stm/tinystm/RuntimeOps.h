//===- stm/tinystm/RuntimeOps.h - TinySTM runtime adapter -------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Registers TinySTM with the type-erased runtime (see
// stm/runtime/BackendOps.h).
//
//===----------------------------------------------------------------------===//

#ifndef STM_TINYSTM_RUNTIMEOPS_H
#define STM_TINYSTM_RUNTIMEOPS_H

#include "stm/runtime/BackendOps.h"
#include "stm/tinystm/TinyStm.h"

namespace stm::tiny {

inline const rt::BackendOps &runtimeOps() {
  static constexpr rt::BackendOps Ops = rt::makeBackendOps<TinyStm>();
  return Ops;
}

} // namespace stm::tiny

#endif // STM_TINYSTM_RUNTIMEOPS_H
