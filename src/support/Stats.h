//===- support/Stats.h - per-thread transaction statistics -----*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATS_H
#define SUPPORT_STATS_H

#include <cstdint>

namespace repro {

/// Counters collected by every STM descriptor. Plain (non-atomic) because
/// each instance is owned by exactly one thread; aggregation happens after
/// the measured region.
struct TxStats {
  uint64_t Starts = 0; ///< attempts begun; == Commits + Aborts at rest
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t Reads = 0;  ///< one per load(), including read-after-write hits
  uint64_t Writes = 0;
  uint64_t Validations = 0;     ///< whole-read-set validation passes
  uint64_t Extensions = 0;      ///< successful valid-ts extensions
  uint64_t FailedExtensions = 0;
  uint64_t ReadOnlyCommits = 0;
  uint64_t ModeSwitches = 0; ///< adaptive backend switches this thread led

  /// Serving-layer counters (stm/runtime batch admission and the
  /// workloads/server harness). Zero for workloads that never batch.
  uint64_t Batches = 0; ///< epoch-pinned admission batches entered
  uint64_t Sheds = 0;   ///< requests dropped by queue backpressure

  /// Aborts the diag conflict profiler attributed to a concrete stripe
  /// (stm/diag/Profiler.h). Zero unless the profiler is enabled;
  /// AbortsAttributed / Aborts is the profiler's coverage ratio.
  uint64_t AbortsAttributed = 0;

  /// Irrevocability counters (the orec backend's serialize escape
  /// hatch). Zero for every other backend.
  uint64_t Serializations = 0;      ///< global-token acquisitions
  uint64_t IrrevocableCommits = 0;  ///< commits made while serialized

  void reset() { *this = TxStats(); }

  TxStats &operator+=(const TxStats &O) {
    Starts += O.Starts;
    Commits += O.Commits;
    Aborts += O.Aborts;
    Reads += O.Reads;
    Writes += O.Writes;
    Validations += O.Validations;
    Extensions += O.Extensions;
    FailedExtensions += O.FailedExtensions;
    ReadOnlyCommits += O.ReadOnlyCommits;
    ModeSwitches += O.ModeSwitches;
    Batches += O.Batches;
    Sheds += O.Sheds;
    AbortsAttributed += O.AbortsAttributed;
    Serializations += O.Serializations;
    IrrevocableCommits += O.IrrevocableCommits;
    return *this;
  }

  /// Fraction of started transactions that aborted; in [0, 1].
  double abortRatio() const {
    uint64_t Started = Commits + Aborts;
    return Started == 0 ? 0.0 : static_cast<double>(Aborts) / Started;
  }
};

} // namespace repro

#endif // SUPPORT_STATS_H
