//===- stm/Config.h - runtime configuration of the STMs --------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every knob the paper's sensitivity analyses touch (lock granularity,
// the two-phase promotion threshold Wn, back-off, timestamp extension,
// contention-manager choice, RSTM's acquire/visibility variants) is
// runtime-configurable so the ablation benches can sweep them without
// rebuilding.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CONFIG_H
#define STM_CONFIG_H

#include "stm/core/Clock.h"
#include "stm/runtime/Backend.h"
#include "support/Topology.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stm {

/// Contention-management policies. TwoPhase is the paper's contribution
/// (Algorithm 2); the others are the baselines of Sections 2.1 and 5.
enum class CmKind {
  TwoPhase,   ///< timid until Wn writes, then Greedy (SwissTM default)
  Timid,      ///< always abort the attacker
  Greedy,     ///< global start timestamp, older transaction wins
  Serializer, ///< Greedy with a fresh timestamp on every restart
  Polka       ///< priority = accesses, exponential back-off waits
};

/// Returns a stable human-readable name for \p Kind.
inline const char *cmKindName(CmKind Kind) {
  switch (Kind) {
  case CmKind::TwoPhase:
    return "two-phase";
  case CmKind::Timid:
    return "timid";
  case CmKind::Greedy:
    return "greedy";
  case CmKind::Serializer:
    return "serializer";
  case CmKind::Polka:
    return "polka";
  }
  return "unknown";
}

/// Global configuration applied at STM::globalInit time.
struct StmConfig {
  /// log2 of the number of lock-table entries. The paper uses 2^22; we
  /// default to 2^20 to keep four STM instances resident in one test
  /// process. Power of two so the index is a mask (Figure 1).
  unsigned LockTableSizeLog2 = 20;

  /// log2 of the number of bytes that map to one lock-table entry. The
  /// paper's sensitivity analysis (Figure 13) selects 2^4 = 16 bytes.
  unsigned GranularityLog2 = 4;

  /// Number of writes after which a transaction enters the second
  /// (Greedy) phase of the two-phase contention manager (paper: Wn = 10).
  unsigned WnThreshold = 10;

  /// Randomized linear back-off after rollback (Figure 11 ablation).
  bool EnableRollbackBackoff = true;

  /// Timestamp extension on read/validation (SwissTM/TinySTM); when off,
  /// a too-new version always aborts, as in TL2.
  bool EnableExtension = true;

  /// Contention manager (SwissTM and RSTM honour this; TL2/TinySTM are
  /// timid by design, matching their published defaults).
  CmKind Cm = CmKind::TwoPhase;

  /// Quiescence-based privatization safety (the paper's Section 6
  /// future-work item, implemented here for SwissTM): every committing
  /// update transaction waits until all in-flight transactions have
  /// validated past its commit timestamp, so memory made private by the
  /// commit can immediately be accessed non-transactionally. Off by
  /// default (the paper's configuration).
  bool PrivatizationSafe = false;

  /// Commit-clock advance scheme (stm/core/Clock.h): how an updating
  /// transaction obtains its commit timestamp. Gv1 (unique fetch&add,
  /// the paper's configuration) is the default; Gv4 adopts the winner's
  /// timestamp on CAS failure; Gv5 defers the increment entirely and
  /// lets readers advance the counter on validation miss; GvShard
  /// splits the counter into per-shard cache lines and snapshots the
  /// vector max. Applies to every backend's commit-ts; the
  /// greedy-ts/CM time bases always increment (they need unique,
  /// totally ordered values). See README "Commit-clock policies" for
  /// when each wins.
  ClockKind Clock = ClockKind::Gv1;

  /// Commit-clock shard count under the gvshard policy: 0 (default)
  /// derives it from the detected topology
  /// (repro::defaultShardCount), otherwise a power of two up to
  /// GlobalClock::MaxShards. Ignored by the other clock policies.
  unsigned ClockShards = 0;

  /// Lock-table interleave shard count (core/LockTable.h): 0 (default)
  /// derives it from the detected topology, otherwise a power of two
  /// up to LockTable::MaxShards (also bounded by the table size at
  /// init). 1 is the identity mapping.
  unsigned LockShards = 0;

  /// TL2's SINGLEFENCEOPT, generalized: commit publishes the clock
  /// *after* write-back (stripes stay locked throughout), which lets
  /// the TL2/TinySTM read path drop its second acquire fence on
  /// architectures where that fence is real. Costs the commit-time
  /// "nothing in between" validation shortcut (the stamp is minted
  /// after write-back, too late to skip validation), so it is off by
  /// default; single-thread throughput is gated in CI either way.
  bool SingleFence = false;

  /// RSTM variant: eager (encounter-time) vs lazy (commit-time) acquire.
  bool RstmEagerAcquire = true;

  /// RSTM variant: visible vs invisible reads.
  bool RstmVisibleReads = false;

  /// Backend the type-erased StmRuntime dispatches to (the templated
  /// facades ignore it). With Adaptive on, this is only the *initial*
  /// backend; the mode switcher takes over from there.
  rt::BackendKind Backend = rt::BackendKind::SwissTm;

  /// Enables the AdaptiveRuntime mode switcher: commit-side windowed
  /// statistics drive whole-backend switches at quiescence points, the
  /// paper's two-phase CM escalation generalized to backend selection.
  bool Adaptive = false;

  /// Commits per adaptive evaluation window. The policy only acts on a
  /// full window, so this is also the minimum dwell between switches.
  unsigned AdaptiveWindow = 2048;

  /// Window abort rate at or above which the switcher escalates to
  /// SwissTM (eager w/w detection + two-phase CM).
  double AdaptiveHighAbortRate = 0.10;

  /// Window abort rate at or below which the switcher de-escalates to a
  /// cheaper fixed-policy backend chosen by workload shape.
  double AdaptiveLowAbortRate = 0.02;

  /// Window abort rate at or above which the switcher escalates past
  /// SwissTM to the orec backend, whose irrevocability mode serializes
  /// the pathological transaction itself (the last rung of the
  /// escalation ladder). Only taken from SwissTM — the ladder is
  /// cheap backend -> SwissTM -> orec/serialize.
  double AdaptiveSerializeAbortRate = 0.5;

  /// orec backend: successive aborts after which a transaction's next
  /// attempt runs irrevocably (serialized through the global token).
  /// 0 disables the abort trigger.
  unsigned OrecIrrevocableAborts = 8;

  /// orec backend: transactional allocations within one attempt after
  /// which the transaction escalates to irrevocable mid-flight.
  /// 0 (default) disables the allocation trigger.
  unsigned OrecIrrevocableAllocs = 0;

  /// POSIX shm segment name for multi-process mode (core/SharedArena.h).
  /// Empty (the default) keeps every piece of global STM state in
  /// process-private memory with unchanged behaviour; non-empty places
  /// the commit clock, lock table, slot arrays and a transactional data
  /// heap in the named segment so a fleet of processes can share one
  /// store. The first process to open the name creates and initializes
  /// the segment; later ones attach and must agree on every
  /// protocol-relevant knob (backend, table geometry, clock, fence
  /// mode) or they abort at attach. Multi-process mode supports the
  /// swisstm/tl2/tinystm/orec backends; rstm and the adaptive switcher
  /// refuse it at globalInit.
  char SharedSegment[64] = {};

  /// Size in MiB of the shared segment's transactional data heap
  /// (ignored in private mode).
  unsigned SharedDataMb = 32;

  /// The one entry point for environment-driven configuration: returns
  /// \p Base with every recognized STM_* variable applied. Precedence,
  /// lowest to highest: struct defaults, then \p Base's explicit
  /// settings, then the environment, then any --stm-* CLI flags the
  /// caller applies afterwards (bench::parseStmFlags). Recognized
  /// variables (each validated, aborting with a diagnostic on unknown
  /// values — range errors on the geometry die later in
  /// LockTable::init, which owns the bounds):
  ///
  ///   STM_BACKEND            swisstm | tl2 | tinystm | rstm | orec
  ///   STM_ADAPTIVE           0 | 1
  ///   STM_CLOCK              gv1 | gv4 | gv5 | gvshard
  ///   STM_CLOCK_SHARDS       gvshard shard count (0 = topology auto)
  ///   STM_LOCK_SHARDS        lock-table interleave shards (0 = auto)
  ///   STM_SINGLE_FENCE       0 | 1 (TL2/TinySTM fence-elision commit)
  ///   STM_LOCK_TABLE_LOG2    log2 of lock-table entries (decimal)
  ///   STM_GRANULARITY_LOG2   log2 of bytes per stripe (decimal)
  ///   STM_OREC_IRREVOCABLE_ABORTS   orec: aborts before serializing (0 off)
  ///   STM_OREC_IRREVOCABLE_ALLOCS   orec: allocs before serializing (0 off)
  ///   STM_SHM_NAME           shm segment name for multi-process mode
  ///   STM_SHM_DATA_MB        shared data-heap MiB (default 32)
  static StmConfig fromEnv(StmConfig Base);
  static StmConfig fromEnv() { return fromEnv(StmConfig()); }
};

/// Terminates with a config diagnostic on stderr. Bad configuration
/// must die loudly in every build mode: an env typo silently falling
/// back to a default would invalidate whole measurement runs.
[[noreturn]] inline void configFatal(const char *Var, const char *Value,
                                     const char *Expected) {
  std::fprintf(stderr,
               "stm: invalid %s value '%s' (expected %s)\n", Var,
               Value == nullptr ? "" : Value, Expected);
  std::abort();
}

/// Parses a strictly numeric env value; aborts with a diagnostic when
/// \p Value has non-digit characters or is empty.
inline unsigned configParseUnsigned(const char *Var, const char *Value,
                                    const char *Expected) {
  if (Value == nullptr || *Value == '\0')
    configFatal(Var, Value, Expected);
  unsigned Out = 0;
  for (const char *P = Value; *P; ++P) {
    if (*P < '0' || *P > '9')
      configFatal(Var, Value, Expected);
    unsigned Digit = unsigned(*P - '0');
    if (Out > (~0u - Digit) / 10) // overflow would alias into range
      configFatal(Var, Value, Expected);
    Out = Out * 10 + Digit;
  }
  return Out;
}

/// Applies one named runtime-selection knob to \p Config. The shared
/// core of StmConfig::fromEnv and the benches' --stm-* CLI flags, so
/// env and command line cannot drift apart. \p Key is the kebab-case
/// knob name; \p Diag labels the source (env var or flag spelling) in
/// abort diagnostics. Returns false when \p Key names no knob; aborts
/// loudly on an invalid value — a typo silently falling back to a
/// default would invalidate whole measurement runs.
inline bool applyConfigOption(StmConfig &Config, const char *Key,
                              const char *Value, const char *Diag) {
  if (std::strcmp(Key, "backend") == 0) {
    if (Value == nullptr || !rt::parseBackendKind(Value, Config.Backend))
      configFatal(Diag, Value, "swisstm|tl2|tinystm|rstm|orec");
  } else if (std::strcmp(Key, "adaptive") == 0) {
    if (Value == nullptr ||
        (std::strcmp(Value, "0") != 0 && std::strcmp(Value, "1") != 0))
      configFatal(Diag, Value, "0|1");
    Config.Adaptive = Value[0] == '1';
  } else if (std::strcmp(Key, "clock") == 0) {
    if (Value == nullptr || !parseClockKind(Value, Config.Clock))
      configFatal(Diag, Value, "gv1|gv4|gv5|gvshard");
  } else if (std::strcmp(Key, "clock-shards") == 0) {
    Config.ClockShards = configParseUnsigned(
        Diag, Value, "0 (auto) or a power-of-two shard count");
    if ((Config.ClockShards & (Config.ClockShards - 1)) != 0 ||
        Config.ClockShards > GlobalClock::MaxShards)
      configFatal(Diag, Value, "0 (auto) or a power-of-two shard count <= 16");
  } else if (std::strcmp(Key, "lock-shards") == 0) {
    Config.LockShards = configParseUnsigned(
        Diag, Value, "0 (auto) or a power-of-two shard count");
    if ((Config.LockShards & (Config.LockShards - 1)) != 0 ||
        Config.LockShards > 256) // LockTable<...>::MaxShards
      configFatal(Diag, Value, "0 (auto) or a power-of-two shard count <= 256");
  } else if (std::strcmp(Key, "single-fence") == 0) {
    if (Value == nullptr ||
        (std::strcmp(Value, "0") != 0 && std::strcmp(Value, "1") != 0))
      configFatal(Diag, Value, "0|1");
    Config.SingleFence = Value[0] == '1';
  } else if (std::strcmp(Key, "lock-table-log2") == 0) {
    Config.LockTableSizeLog2 =
        configParseUnsigned(Diag, Value, "a decimal log2 entry count");
  } else if (std::strcmp(Key, "granularity-log2") == 0) {
    Config.GranularityLog2 =
        configParseUnsigned(Diag, Value, "a decimal log2 byte count");
  } else if (std::strcmp(Key, "orec-irrevocable-aborts") == 0) {
    Config.OrecIrrevocableAborts =
        configParseUnsigned(Diag, Value, "a decimal abort count (0 disables)");
  } else if (std::strcmp(Key, "orec-irrevocable-allocs") == 0) {
    Config.OrecIrrevocableAllocs =
        configParseUnsigned(Diag, Value, "a decimal alloc count (0 disables)");
  } else if (std::strcmp(Key, "shm-name") == 0) {
    if (Value == nullptr ||
        std::strlen(Value) >= sizeof(Config.SharedSegment))
      configFatal(Diag, Value, "a shm segment name under 64 characters");
    std::strcpy(Config.SharedSegment, Value);
  } else if (std::strcmp(Key, "shm-data-mb") == 0) {
    Config.SharedDataMb =
        configParseUnsigned(Diag, Value, "a decimal MiB count");
    if (Config.SharedDataMb == 0 || Config.SharedDataMb > 4096)
      configFatal(Diag, Value, "a decimal MiB count in 1..4096");
  } else {
    return false;
  }
  return true;
}

inline StmConfig StmConfig::fromEnv(StmConfig Base) {
  static constexpr struct {
    const char *Env;
    const char *Key;
  } Knobs[] = {
      {"STM_BACKEND", "backend"},
      {"STM_ADAPTIVE", "adaptive"},
      {"STM_CLOCK", "clock"},
      {"STM_CLOCK_SHARDS", "clock-shards"},
      {"STM_LOCK_SHARDS", "lock-shards"},
      {"STM_SINGLE_FENCE", "single-fence"},
      {"STM_LOCK_TABLE_LOG2", "lock-table-log2"},
      {"STM_GRANULARITY_LOG2", "granularity-log2"},
      {"STM_OREC_IRREVOCABLE_ABORTS", "orec-irrevocable-aborts"},
      {"STM_OREC_IRREVOCABLE_ALLOCS", "orec-irrevocable-allocs"},
      {"STM_SHM_NAME", "shm-name"},
      {"STM_SHM_DATA_MB", "shm-data-mb"},
  };
  for (const auto &Knob : Knobs)
    if (const char *Value = std::getenv(Knob.Env))
      applyConfigOption(Base, Knob.Key, Value, Knob.Env);
  return Base;
}

/// Deprecated spelling of StmConfig::fromEnv(); kept for source
/// compatibility with pre-Runtime callers.
inline StmConfig configFromEnv(StmConfig Config = StmConfig()) {
  return StmConfig::fromEnv(Config);
}

/// Commit-clock shard count with the auto (0) value resolved against
/// the detected topology. 1 under every policy but gvshard — the other
/// clocks are single-counter by construction.
inline unsigned resolvedClockShards(const StmConfig &Config) {
  if (Config.Clock != ClockKind::GvShard)
    return 1;
  return Config.ClockShards != 0
             ? Config.ClockShards
             : repro::defaultShardCount(GlobalClock::MaxShards);
}

/// Lock-table interleave shard count with the auto (0) value resolved
/// against the detected topology (LockTable::init still bounds it by
/// the table size).
inline unsigned resolvedLockShards(const StmConfig &Config) {
  if (Config.LockShards != 0)
    return Config.LockShards; // explicit values are LockTable::init's to veto
  unsigned Auto = repro::defaultShardCount(256); // LockTable<...>::MaxShards
  // The auto value degrades gracefully on tiny tables instead of
  // tripping init's size bound.
  while (Config.LockTableSizeLog2 < 32 &&
         uint64_t(Auto) > (uint64_t(1) << Config.LockTableSizeLog2))
    Auto /= 2;
  return Auto;
}

} // namespace stm

#endif // STM_CONFIG_H
