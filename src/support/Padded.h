//===- support/Padded.h - cache-line padded wrapper -------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PADDED_H
#define SUPPORT_PADDED_H

#include "support/Platform.h"

namespace repro {

/// Wraps a value in its own cache line so that arrays of per-thread state
/// do not false-share. The wrapped value is accessed through \c value().
template <typename T> struct alignas(CacheLineSize) Padded {
  T Value{};

  T &value() { return Value; }
  const T &value() const { return Value; }
};

static_assert(sizeof(Padded<char>) == CacheLineSize,
              "padding must round a small payload up to one cache line");

} // namespace repro

#endif // SUPPORT_PADDED_H
