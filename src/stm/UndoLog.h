//===- stm/UndoLog.h - per-transaction undo log ----------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Eager (encounter-time locking) STMs with in-place speculative writes
// need the inverse of WriteMap.h's redo machinery: every store first
// saves the word it overwrites, and an abort restores the pre-images in
// reverse order. Recording every store (rather than deduplicating per
// address) keeps the hot path branch-free; reverse restoration makes
// duplicate entries for one address harmless — the oldest pre-image is
// written last.
//
// Built on StableLog so steady-state transactions allocate nothing and
// clear() is O(1).
//
//===----------------------------------------------------------------------===//

#ifndef STM_UNDOLOG_H
#define STM_UNDOLOG_H

#include "stm/StableLog.h"
#include "stm/Word.h"

#include <cstddef>

namespace stm {

/// One saved pre-image: the word at Addr held Old before the
/// transaction's in-place store.
struct UndoEntry {
  Word *Addr = nullptr;
  Word Old = 0;
};

/// Append-only log of pre-images for in-place speculative writes.
class UndoLog {
public:
  /// Saves the pre-image of \p Addr (call before the in-place store).
  void record(Word *Addr, Word Old) {
    UndoEntry *E = Log.pushDefault();
    E->Addr = Addr;
    E->Old = Old;
  }

  /// Applies \p Restore to every entry newest-first — the order that
  /// makes repeated writes to one address restore its oldest pre-image.
  /// \p Restore must perform the actual store (the caller owns the
  /// racy-access discipline and any fault-injection gating).
  template <typename Fn> void unwind(Fn &&Restore) {
    Log.forEachReverse([&Restore](UndoEntry &E) { Restore(E); });
  }

  bool empty() const { return Log.empty(); }
  std::size_t size() const { return Log.size(); }

  /// Discards all entries; keeps storage for reuse.
  void clear() { Log.clear(); }

private:
  StableLog<UndoEntry> Log;
};

} // namespace stm

#endif // STM_UNDOLOG_H
