//===- support/ThreadRegistry.cpp - global thread slot registry ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadRegistry.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace repro;

Padded<std::atomic<uint64_t>> ThreadRegistry::ActiveSince[MaxThreads];
std::atomic<uint64_t> ThreadRegistry::SlotMask{0};

unsigned ThreadRegistry::acquireSlot() {
  uint64_t Mask = SlotMask.load(std::memory_order_relaxed);
  while (true) {
    if (Mask == ~0ull) {
      std::fprintf(stderr,
                   "ThreadRegistry: more than %u transactional threads\n",
                   MaxThreads);
      std::abort();
    }
    unsigned Slot = static_cast<unsigned>(__builtin_ctzll(~Mask));
    if (SlotMask.compare_exchange_weak(Mask, Mask | (1ull << Slot),
                                       std::memory_order_acq_rel)) {
      ActiveSince[Slot].value().store(IdleTimestamp,
                                      std::memory_order_release);
      return Slot;
    }
  }
}

void ThreadRegistry::releaseSlot(unsigned Slot) {
  assert(Slot < MaxThreads && "slot out of range");
  assert(ActiveSince[Slot].value().load(std::memory_order_acquire) ==
             IdleTimestamp &&
         "releasing a slot with a transaction in flight");
  SlotMask.fetch_and(~(1ull << Slot), std::memory_order_acq_rel);
}

uint64_t ThreadRegistry::minActiveStart() {
  uint64_t Min = IdleTimestamp;
  uint64_t Mask = activeMask();
  while (Mask != 0) {
    unsigned Slot = static_cast<unsigned>(__builtin_ctzll(Mask));
    Mask &= Mask - 1;
    uint64_t Ts = ActiveSince[Slot].value().load(std::memory_order_acquire);
    if (Ts < Min)
      Min = Ts;
  }
  return Min;
}

unsigned ThreadRegistry::highWaterMark() {
  uint64_t Mask = SlotMask.load(std::memory_order_acquire);
  return Mask == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(Mask));
}
