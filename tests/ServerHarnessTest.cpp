//===- tests/ServerHarnessTest.cpp - serving workload tests -----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// End-to-end coverage of the serving workload (workloads/server/):
// the bounded MPMC request queue's FIFO/backpressure contract, the
// store's op classes and conservation audit, and a miniature open-loop
// run through runServer over every runtime mode.
//
//===----------------------------------------------------------------------===//

#include "tests/TestHarness.h"
#include "workloads/server/ServerHarness.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace workloads::server;

namespace {

using repro_test::RtMode;

TEST(RequestQueueTest, FifoAndBackpressure) {
  RequestQueue<int> Q(8);
  EXPECT_EQ(Q.capacity(), 8u);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Q.tryPush(I));
  int Overflow = 99;
  EXPECT_FALSE(Q.tryPush(Overflow)) << "full queue must shed, not block";
  for (int I = 0; I < 8; ++I) {
    int Out = -1;
    ASSERT_TRUE(Q.tryPop(Out));
    EXPECT_EQ(Out, I) << "single-consumer pops must be FIFO";
  }
  int Out = -1;
  EXPECT_FALSE(Q.tryPop(Out));
  // Emptied: capacity is available again (ring wraps).
  EXPECT_TRUE(Q.tryPush(42));
  ASSERT_TRUE(Q.tryPop(Out));
  EXPECT_EQ(Out, 42);
}

TEST(RequestQueueTest, PopBatch) {
  RequestQueue<int> Q(16);
  for (int I = 0; I < 10; ++I)
    Q.tryPush(I);
  int Buf[16];
  EXPECT_EQ(Q.tryPopBatch(Buf, 4), 4u);
  EXPECT_EQ(Buf[0], 0);
  EXPECT_EQ(Buf[3], 3);
  EXPECT_EQ(Q.tryPopBatch(Buf, 16), 6u) << "batch stops at empty";
  EXPECT_EQ(Q.tryPopBatch(Buf, 16), 0u);
}

TEST(RequestQueueTest, ConcurrentProducersNothingLostOrDuplicated) {
  constexpr unsigned Producers = 4;
  constexpr int PerProducer = 20000;
  RequestQueue<uint64_t> Q(1024);
  std::atomic<bool> Stop{false};
  std::vector<uint64_t> Seen;
  std::thread Consumer([&] {
    uint64_t V;
    for (;;) {
      if (Q.tryPop(V))
        Seen.push_back(V);
      else if (Stop.load(std::memory_order_acquire))
        break;
    }
    while (Q.tryPop(V))
      Seen.push_back(V);
  });
  std::vector<std::thread> Threads;
  std::vector<uint64_t> Pushed(Producers, 0);
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        if (Q.tryPush((uint64_t(P) << 32) | uint64_t(I)))
          ++Pushed[P];
    });
  for (auto &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_release);
  Consumer.join();
  uint64_t TotalPushed = 0;
  for (uint64_t N : Pushed)
    TotalPushed += N;
  ASSERT_EQ(Seen.size(), TotalPushed);
  // Per-producer subsequences stay FIFO and complete. Sequences are
  // not contiguous — a push against a full queue fails and that
  // sequence number is never enqueued — so the contract is strictly
  // increasing order (a duplicate or reorder would break it) plus a
  // per-producer count matching what tryPush accepted (a lost item
  // would break that).
  std::vector<uint64_t> PerProducerSeen(Producers, 0);
  std::vector<uint64_t> PrevSeq(Producers, 0);
  for (uint64_t V : Seen) {
    unsigned P = static_cast<unsigned>(V >> 32);
    ASSERT_LT(P, Producers);
    uint64_t S = V & 0xffffffffu;
    if (PerProducerSeen[P] > 0)
      ASSERT_GT(S, PrevSeq[P]) << "producer " << P << " reordered";
    PrevSeq[P] = S;
    ++PerProducerSeen[P];
  }
  for (unsigned P = 0; P < Producers; ++P)
    EXPECT_EQ(PerProducerSeen[P], Pushed[P]) << "producer " << P;
}

class ServerHarnessTest : public ::testing::TestWithParam<RtMode> {
protected:
  stm::StmConfig config() const {
    stm::StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    Config.Backend = GetParam().Kind;
    Config.Adaptive = GetParam().Adaptive;
    Config.Clock = repro_test::envClockKind();
    return Config;
  }
};

TEST_P(ServerHarnessTest, StoreOpsAndConservation) {
  stm::Runtime Runtime(config());
  ShardedStore Store(4, 1 << 10, 4);
  Store.populate(Runtime);

  stm::atomically(Runtime, [&](ShardedStore::Tx &T) {
    EXPECT_EQ(Store.pointRead(T, 0), ShardedStore::InitialBalance);
    // A scan crossing shard boundaries sums Len keys' balances.
    uint64_t Lo = (1 << 10) / 4 - 8; // straddles shard 0 -> 1
    EXPECT_EQ(Store.rangeScan(T, Lo, 16), 16 * ShardedStore::InitialBalance);
    EXPECT_TRUE(Store.transfer(T, 3, 900, 250)); // cross-shard
    EXPECT_EQ(Store.pointRead(T, 3), ShardedStore::InitialBalance - 250);
    EXPECT_EQ(Store.pointRead(T, 900), ShardedStore::InitialBalance + 250);
    EXPECT_FALSE(Store.transfer(T, 3, 900, 100000)) << "insufficient funds";
    EXPECT_TRUE(Store.auctionBid(T, 1, 500));
    EXPECT_FALSE(Store.auctionBid(T, 1, 400)) << "lower bid must lose";
    EXPECT_TRUE(Store.auctionBid(T, 1, 600));
  });
  EXPECT_TRUE(Store.checkConservation(Runtime));
}

TEST_P(ServerHarnessTest, OpenLoopRunIsSane) {
  stm::Runtime Runtime(config());
  ServerConfig SC;
  SC.Workers = 2;
  SC.Clients = 2;
  SC.Shards = 2;
  SC.KeySpace = 1 << 10;
  SC.OfferedOpsPerSec = 20000.0;
  SC.DurationMs = 50;
  SC.QueueCapacity = 256;
  SC.BatchSize = 8;

  ServerResult R = runServer(Runtime, SC);

  EXPECT_GT(R.totalCompleted(), 0u);
  EXPECT_EQ(R.totalCompleted() + R.Shed, R.Offered)
      << "every offered request must complete or shed";
  EXPECT_GT(R.GoodputOpsPerSec, 0.0);
  EXPECT_EQ(R.HistogramViolations, 0u);
  EXPECT_TRUE(R.ConservationOk);
  uint64_t HistTotal = 0;
  for (unsigned C = 0; C < NumOpClasses; ++C) {
    HistTotal += R.Hist[C].count();
    EXPECT_EQ(R.Hist[C].count(), R.Completed[C]);
  }
  EXPECT_EQ(HistTotal, R.totalCompleted());
  EXPECT_GE(R.Stats.Commits, R.totalCompleted())
      << "each request runs at least one committed transaction";
  if (GetParam().Adaptive)
    EXPECT_EQ(R.Stats.Batches, 0u) << "dynamic mode declines batch pins";
  else
    EXPECT_GT(R.Stats.Batches, 0u);
  EXPECT_EQ(R.Stats.Sheds, R.Shed);
}

TEST_P(ServerHarnessTest, ShedsUnderOverload) {
  // Tiny queues + offered load far beyond what 1 worker serves while
  // the producer never blocks: the shed path must engage and the
  // accounting must still balance.
  stm::Runtime Runtime(config());
  ServerConfig SC;
  SC.Workers = 1;
  SC.Clients = 2;
  SC.Shards = 1;
  SC.KeySpace = 1 << 10;
  SC.OfferedOpsPerSec = 2e6; // far above serviceable
  SC.DurationMs = 40;
  SC.QueueCapacity = 16;
  SC.BatchSize = 4;
  SC.MixPercent[0] = 30; // extra scans make the worker slow
  SC.MixPercent[1] = 40;
  SC.MixPercent[2] = 25;
  SC.MixPercent[3] = 5;

  ServerResult R = runServer(Runtime, SC);
  EXPECT_GT(R.Shed, 0u) << "overload must shed, not grow an unbounded queue";
  EXPECT_EQ(R.totalCompleted() + R.Shed, R.Offered);
  EXPECT_EQ(R.HistogramViolations, 0u);
  EXPECT_TRUE(R.ConservationOk);
}

STM_INSTANTIATE_RUNTIME_SUITE(ServerHarnessTest);

} // namespace
