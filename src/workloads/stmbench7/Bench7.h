//===- workloads/stmbench7/Bench7.h - STMBench7-lite ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// A faithful-in-shape, scaled-down reimplementation of STMBench7
// (Guerraoui/Kapałka/Vitek, EuroSys 2007), the paper's primary
// evaluation workload (Figures 2, 7, 9, 12): a large, non-uniform
// object graph
//
//   Module -> complex-assembly tree (depth D, branching B)
//          -> base assemblies -> shared composite parts
//          -> per-composite ring of atomic parts + document,
//
// with id indices over atomic and composite parts, and an operation mix
// spanning four orders of magnitude in transaction length: single-part
// lookups, neighbourhood traversals, whole-graph traversals, document
// reads/writes and structural modifications. The three paper workloads
// select the fraction of read-only operations: read-dominated 90 %,
// read-write 60 %, write-dominated 10 %.
//
// The graph is built non-transactionally before threads start; all
// operations afterwards are single transactions.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STMBENCH7_BENCH7_H
#define WORKLOADS_STMBENCH7_BENCH7_H

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/containers/TxHashMap.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace workloads::sb7 {

/// Scale parameters (defaults are the repository's "lite" scale; the
/// original benchmark is ~10x bigger in every dimension).
struct Bench7Config {
  unsigned AssemblyDepth = 4;     ///< levels of complex assemblies
  unsigned AssemblyBranch = 3;    ///< fan-out per complex assembly
  unsigned ComponentsPerBase = 3; ///< composite parts per base assembly
  unsigned CompositeLibrary = 60; ///< shared composite parts in total
  unsigned AtomicsPerComposite = 20;
  unsigned DocumentWords = 16;
  unsigned IndexBucketsLog2 = 10;
};

/// Operation categories, used for workload statistics.
enum class Op7 {
  ReadAtomic,     ///< index lookup + field reads
  ShortTraversal, ///< base assembly neighbourhood walk
  LongTraversal,  ///< whole assembly tree + part rings (huge read set)
  ReadDocument,
  QueryRecent, ///< sample of index lookups filtered by build date
  UpdateAtomic,
  ShortUpdate, ///< neighbourhood walk with writes
  LongUpdate,  ///< whole-tree walk updating build dates
  UpdateDocument,
  StructuralAdd,    ///< add an atomic part to a ring
  StructuralRemove, ///< remove an atomic part from a ring
  OpCount
};

inline constexpr unsigned NumOps = static_cast<unsigned>(Op7::OpCount);

/// The three paper workloads (fraction of read-only operations).
enum class Workload7 { ReadDominated = 90, ReadWrite = 60, WriteDominated = 10 };

inline const char *workload7Name(Workload7 W) {
  switch (W) {
  case Workload7::ReadDominated:
    return "read-dominated";
  case Workload7::ReadWrite:
    return "read-write";
  case Workload7::WriteDominated:
    return "write-dominated";
  }
  return "unknown";
}

template <typename STM> class Bench7 {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  /// Atomic part: ring node inside one composite part.
  struct AtomicPart {
    Word Id;
    Word X;
    Word Y;
    Word BuildDate;
    Word Next;  // AtomicPart*
    Word Prev;  // AtomicPart*
    Word Cross; // AtomicPart* (chord to the composite's root part)
    Word Owner; // CompositePart*
  };

  struct Document {
    Word Id;
    Word SizeWords;
    Word Text; // Word* array
  };

  struct CompositePart {
    Word Id;
    Word BuildDate;
    Word RootPart;  // AtomicPart*
    Word Doc;       // Document*
    Word PartCount; // ring length including root
  };

  struct BaseAssembly {
    Word Id;
    Word BuildDate;
    Word CompCount;
    Word Components[8]; // CompositePart*
  };

  struct ComplexAssembly {
    Word Id;
    Word BuildDate;
    Word Level; // distance from leaves; 1 == children are bases
    Word SubCount;
    Word Subs[8]; // ComplexAssembly* or BaseAssembly* at Level 1
  };

  explicit Bench7(const Bench7Config &Config = Bench7Config())
      : Cfg(Config), AtomicIndex(Config.IndexBucketsLog2),
        CompositeIndex(8) {
    build();
  }

  ~Bench7() {
    for (CompositePart *C : Composites) {
      // Free the ring.
      auto *Root = reinterpret_cast<AtomicPart *>(C->RootPart);
      AtomicPart *P = Root;
      do {
        AtomicPart *Next = reinterpret_cast<AtomicPart *>(P->Next);
        std::free(P);
        P = Next;
      } while (P != Root);
      auto *D = reinterpret_cast<Document *>(C->Doc);
      std::free(reinterpret_cast<void *>(D->Text));
      std::free(D);
      std::free(C);
    }
    for (BaseAssembly *B : Bases)
      std::free(B);
    for (ComplexAssembly *A : Complexes)
      std::free(A);
  }

  Bench7(const Bench7 &) = delete;
  Bench7 &operator=(const Bench7 &) = delete;

  //===--------------------------------------------------------------===//
  // Operation dispatch
  //===--------------------------------------------------------------===//

  /// Picks an operation according to \p Workload's read-only percentage
  /// and runs it as one transaction. Returns the operation kind.
  Op7 runOperation(Tx &T, repro::Xorshift &Rng, Workload7 Workload) {
    bool ReadOnly =
        Rng.nextPercent(static_cast<unsigned>(Workload));
    Op7 Kind = ReadOnly ? pickReadOp(Rng) : pickWriteOp(Rng);
    runOp(T, Rng, Kind);
    return Kind;
  }

  /// Runs one specific operation as a transaction.
  void runOp(Tx &T, repro::Xorshift &Rng, Op7 Kind) {
    switch (Kind) {
    case Op7::ReadAtomic:
      stm::atomically(T, [&](Tx &X) { opReadAtomic(X, Rng); });
      break;
    case Op7::ShortTraversal:
      stm::atomically(T, [&](Tx &X) { opShortTraversal(X, Rng, false); });
      break;
    case Op7::LongTraversal:
      stm::atomically(T, [&](Tx &X) { opLongTraversal(X, false); });
      break;
    case Op7::ReadDocument:
      stm::atomically(T, [&](Tx &X) { opDocument(X, Rng, false); });
      break;
    case Op7::QueryRecent:
      stm::atomically(T, [&](Tx &X) { opQueryRecent(X, Rng); });
      break;
    case Op7::UpdateAtomic:
      stm::atomically(T, [&](Tx &X) { opUpdateAtomic(X, Rng); });
      break;
    case Op7::ShortUpdate:
      stm::atomically(T, [&](Tx &X) { opShortTraversal(X, Rng, true); });
      break;
    case Op7::LongUpdate:
      stm::atomically(T, [&](Tx &X) { opLongTraversal(X, true); });
      break;
    case Op7::UpdateDocument:
      stm::atomically(T, [&](Tx &X) { opDocument(X, Rng, true); });
      break;
    case Op7::StructuralAdd:
      stm::atomically(T, [&](Tx &X) { opStructuralAdd(X, Rng); });
      break;
    case Op7::StructuralRemove:
      stm::atomically(T, [&](Tx &X) { opStructuralRemove(X, Rng); });
      break;
    case Op7::OpCount:
      break;
    }
  }

  //===--------------------------------------------------------------===//
  // Non-transactional validation (quiesced use only)
  //===--------------------------------------------------------------===//

  /// Structural invariants: every composite's ring is consistent
  /// (Next/Prev inverse, length == PartCount, root reachable) and every
  /// ring member is indexed.
  bool verify() {
    uint64_t TotalParts = 0;
    for (CompositePart *C : Composites) {
      auto *Root = reinterpret_cast<AtomicPart *>(C->RootPart);
      uint64_t Count = 0;
      AtomicPart *P = Root;
      do {
        auto *Next = reinterpret_cast<AtomicPart *>(P->Next);
        if (reinterpret_cast<AtomicPart *>(Next->Prev) != P)
          return false; // broken ring
        if (reinterpret_cast<CompositePart *>(P->Owner) != C)
          return false;
        if (reinterpret_cast<AtomicPart *>(P->Cross) != Root)
          return false;
        ++Count;
        P = Next;
        if (Count > 1000000)
          return false; // cycle without root: corrupted
      } while (P != Root);
      if (Count != C->PartCount)
        return false;
      TotalParts += Count;
    }
    return TotalParts == AtomicIndex.sizeRaw();
  }

  uint64_t totalAtomicParts() const {
    uint64_t N = 0;
    for (CompositePart *C : Composites)
      N += C->PartCount;
    return N;
  }

  unsigned compositeCount() const {
    return static_cast<unsigned>(Composites.size());
  }
  unsigned baseAssemblyCount() const {
    return static_cast<unsigned>(Bases.size());
  }

private:
  //===--------------------------------------------------------------===//
  // Operations
  //===--------------------------------------------------------------===//

  AtomicPart *randomAtomic(Tx &T, repro::Xorshift &Rng) {
    // Ids are dense at build time; structural ops add/remove at the high
    // end, so retry a few times on misses.
    uint64_t IdBound = __atomic_load_n(&NextAtomicId, __ATOMIC_RELAXED);
    for (int Tries = 0; Tries < 8; ++Tries) {
      uint64_t Id = Rng.nextBounded(IdBound);
      Word Val = 0;
      if (AtomicIndex.lookup(T, Id, &Val))
        return reinterpret_cast<AtomicPart *>(Val);
    }
    return nullptr;
  }

  CompositePart *randomComposite(repro::Xorshift &Rng) {
    return Composites[Rng.nextBounded(Composites.size())];
  }

  BaseAssembly *randomBase(repro::Xorshift &Rng) {
    return Bases[Rng.nextBounded(Bases.size())];
  }

  void opReadAtomic(Tx &T, repro::Xorshift &Rng) {
    AtomicPart *P = randomAtomic(T, Rng);
    if (P == nullptr)
      return;
    Word Sum = T.load(&P->X) + T.load(&P->Y) + T.load(&P->BuildDate);
    (void)Sum;
  }

  /// Base-assembly neighbourhood: visit each component's ring.
  void opShortTraversal(Tx &T, repro::Xorshift &Rng, bool Update) {
    BaseAssembly *B = randomBase(Rng);
    uint64_t NComp = T.load(&B->CompCount);
    for (uint64_t I = 0; I < NComp; ++I) {
      auto *C = reinterpret_cast<CompositePart *>(T.load(&B->Components[I]));
      traverseRing(T, C, Update);
    }
    if (Update)
      T.store(&B->BuildDate, T.load(&B->BuildDate) + 1);
  }

  void traverseRing(Tx &T, CompositePart *C, bool Update) {
    auto *Root = reinterpret_cast<AtomicPart *>(T.load(&C->RootPart));
    AtomicPart *P = Root;
    do {
      if (Update) {
        Word X = T.load(&P->X);
        T.store(&P->X, T.load(&P->Y));
        T.store(&P->Y, X);
      } else {
        (void)T.load(&P->X);
      }
      P = reinterpret_cast<AtomicPart *>(T.load(&P->Next));
    } while (P != Root);
  }

  /// Whole-tree traversal: the paper's long transaction. Read variant
  /// touches every atomic part once; update variant also bumps every
  /// assembly and part build date.
  uint64_t opLongTraversal(Tx &T, bool Update) {
    return traverseComplex(T, DesignRoot, Update);
  }

  uint64_t traverseComplex(Tx &T, ComplexAssembly *A, bool Update) {
    uint64_t Count = 0;
    uint64_t Level = T.load(&A->Level);
    uint64_t NSub = T.load(&A->SubCount);
    for (uint64_t I = 0; I < NSub; ++I) {
      Word Sub = T.load(&A->Subs[I]);
      if (Level == 1) {
        auto *B = reinterpret_cast<BaseAssembly *>(Sub);
        uint64_t NComp = T.load(&B->CompCount);
        for (uint64_t J = 0; J < NComp; ++J) {
          auto *C =
              reinterpret_cast<CompositePart *>(T.load(&B->Components[J]));
          Count += T.load(&C->PartCount);
          auto *Root = reinterpret_cast<AtomicPart *>(T.load(&C->RootPart));
          (void)T.load(&Root->BuildDate);
          if (Update)
            T.store(&Root->BuildDate, T.load(&Root->BuildDate) + 1);
        }
        if (Update)
          T.store(&B->BuildDate, T.load(&B->BuildDate) + 1);
      } else {
        Count +=
            traverseComplex(T, reinterpret_cast<ComplexAssembly *>(Sub),
                            Update);
      }
    }
    if (Update)
      T.store(&A->BuildDate, T.load(&A->BuildDate) + 1);
    return Count;
  }

  void opDocument(Tx &T, repro::Xorshift &Rng, bool Update) {
    CompositePart *C = randomComposite(Rng);
    auto *D = reinterpret_cast<Document *>(T.load(&C->Doc));
    auto *Text = reinterpret_cast<Word *>(T.load(&D->Text));
    uint64_t N = T.load(&D->SizeWords);
    if (Update) {
      uint64_t I = Rng.nextBounded(N);
      T.store(&Text[I], T.load(&Text[I]) + 1);
    } else {
      Word Sum = 0;
      for (uint64_t I = 0; I < N; ++I)
        Sum += T.load(&Text[I]);
      (void)Sum;
    }
  }

  void opQueryRecent(Tx &T, repro::Xorshift &Rng) {
    unsigned Hits = 0;
    for (int I = 0; I < 10; ++I) {
      AtomicPart *P = randomAtomic(T, Rng);
      if (P != nullptr && T.load(&P->BuildDate) > 100)
        ++Hits;
    }
    (void)Hits;
  }

  void opUpdateAtomic(Tx &T, repro::Xorshift &Rng) {
    AtomicPart *P = randomAtomic(T, Rng);
    if (P == nullptr)
      return;
    Word X = T.load(&P->X);
    T.store(&P->X, T.load(&P->Y));
    T.store(&P->Y, X);
    T.store(&P->BuildDate, T.load(&P->BuildDate) + 1);
  }

  /// Adds a fresh atomic part right after the root of a random
  /// composite's ring.
  void opStructuralAdd(Tx &T, repro::Xorshift &Rng) {
    CompositePart *C = randomComposite(Rng);
    auto *Root = reinterpret_cast<AtomicPart *>(T.load(&C->RootPart));
    auto *NextP = reinterpret_cast<AtomicPart *>(T.load(&Root->Next));
    auto *P = static_cast<AtomicPart *>(T.txMalloc(sizeof(AtomicPart)));
    uint64_t Id =
        __atomic_fetch_add(&NextAtomicId, 1, __ATOMIC_RELAXED);
    T.store(&P->Id, Id);
    T.store(&P->X, Id);
    T.store(&P->Y, Id + 1);
    T.store(&P->BuildDate, 0);
    T.store(&P->Owner, reinterpret_cast<Word>(C));
    T.store(&P->Cross, reinterpret_cast<Word>(Root));
    T.store(&P->Next, reinterpret_cast<Word>(NextP));
    T.store(&P->Prev, reinterpret_cast<Word>(Root));
    T.store(&Root->Next, reinterpret_cast<Word>(P));
    T.store(&NextP->Prev, reinterpret_cast<Word>(P));
    T.store(&C->PartCount, T.load(&C->PartCount) + 1);
    AtomicIndex.insert(T, Id, reinterpret_cast<Word>(P));
  }

  /// Removes the part after the root (never the root) when the ring has
  /// spare parts.
  void opStructuralRemove(Tx &T, repro::Xorshift &Rng) {
    CompositePart *C = randomComposite(Rng);
    if (T.load(&C->PartCount) <= 2)
      return;
    auto *Root = reinterpret_cast<AtomicPart *>(T.load(&C->RootPart));
    auto *P = reinterpret_cast<AtomicPart *>(T.load(&Root->Next));
    if (P == Root)
      return;
    auto *NextP = reinterpret_cast<AtomicPart *>(T.load(&P->Next));
    T.store(&Root->Next, reinterpret_cast<Word>(NextP));
    T.store(&NextP->Prev, reinterpret_cast<Word>(Root));
    T.store(&C->PartCount, T.load(&C->PartCount) - 1);
    AtomicIndex.remove(T, T.load(&P->Id));
    T.txFree(P);
  }

  //===--------------------------------------------------------------===//
  // Operation mix
  //===--------------------------------------------------------------===//

  static Op7 pickReadOp(repro::Xorshift &Rng) {
    // Weights follow STMBench7's spirit: mostly short operations, a
    // small fraction of whole-graph traversals.
    unsigned R = static_cast<unsigned>(Rng.nextBounded(100));
    if (R < 40)
      return Op7::ReadAtomic;
    if (R < 70)
      return Op7::ShortTraversal;
    if (R < 85)
      return Op7::ReadDocument;
    if (R < 95)
      return Op7::QueryRecent;
    return Op7::LongTraversal;
  }

  static Op7 pickWriteOp(repro::Xorshift &Rng) {
    unsigned R = static_cast<unsigned>(Rng.nextBounded(100));
    if (R < 40)
      return Op7::UpdateAtomic;
    if (R < 65)
      return Op7::ShortUpdate;
    if (R < 75)
      return Op7::UpdateDocument;
    if (R < 85)
      return Op7::StructuralAdd;
    if (R < 95)
      return Op7::StructuralRemove;
    return Op7::LongUpdate;
  }

  //===--------------------------------------------------------------===//
  // Non-transactional construction
  //===--------------------------------------------------------------===//

  void build() {
    repro::Xorshift Rng(0xb7b7b7b7);
    // Composite library with atomic-part rings and documents.
    for (unsigned I = 0; I < Cfg.CompositeLibrary; ++I)
      Composites.push_back(buildComposite(Rng));
    // Assembly tree.
    DesignRoot = buildComplex(Cfg.AssemblyDepth, Rng);
    // The index insertions above happened non-transactionally: populate
    // the transactional indices through a bootstrap transaction-free
    // path (direct list surgery is not exposed, so run one thread).
    populateIndices();
  }

  CompositePart *buildComposite(repro::Xorshift &Rng) {
    auto *C = static_cast<CompositePart *>(std::malloc(sizeof(CompositePart)));
    C->Id = NextCompositeId++;
    C->BuildDate = Rng.nextBounded(200);
    C->PartCount = Cfg.AtomicsPerComposite;

    auto *D = static_cast<Document *>(std::malloc(sizeof(Document)));
    D->Id = C->Id;
    D->SizeWords = Cfg.DocumentWords;
    auto *Text =
        static_cast<Word *>(std::malloc(Cfg.DocumentWords * sizeof(Word)));
    for (unsigned I = 0; I < Cfg.DocumentWords; ++I)
      Text[I] = Rng.next();
    D->Text = reinterpret_cast<Word>(Text);
    C->Doc = reinterpret_cast<Word>(D);

    // Build the ring.
    std::vector<AtomicPart *> Parts;
    for (unsigned I = 0; I < Cfg.AtomicsPerComposite; ++I) {
      auto *P = static_cast<AtomicPart *>(std::malloc(sizeof(AtomicPart)));
      P->Id = NextAtomicId++;
      P->X = Rng.nextBounded(1000);
      P->Y = Rng.nextBounded(1000);
      P->BuildDate = Rng.nextBounded(200);
      P->Owner = reinterpret_cast<Word>(C);
      Parts.push_back(P);
    }
    unsigned N = static_cast<unsigned>(Parts.size());
    for (unsigned I = 0; I < N; ++I) {
      Parts[I]->Next = reinterpret_cast<Word>(Parts[(I + 1) % N]);
      Parts[I]->Prev = reinterpret_cast<Word>(Parts[(I + N - 1) % N]);
      Parts[I]->Cross = reinterpret_cast<Word>(Parts[0]);
    }
    C->RootPart = reinterpret_cast<Word>(Parts[0]);
    return C;
  }

  ComplexAssembly *buildComplex(unsigned Level, repro::Xorshift &Rng) {
    auto *A =
        static_cast<ComplexAssembly *>(std::malloc(sizeof(ComplexAssembly)));
    A->Id = NextAssemblyId++;
    A->BuildDate = Rng.nextBounded(200);
    A->Level = Level;
    A->SubCount = Cfg.AssemblyBranch;
    assert(Cfg.AssemblyBranch <= 8 && "branching capped at 8");
    for (unsigned I = 0; I < Cfg.AssemblyBranch; ++I) {
      if (Level == 1)
        A->Subs[I] = reinterpret_cast<Word>(buildBase(Rng));
      else
        A->Subs[I] = reinterpret_cast<Word>(buildComplex(Level - 1, Rng));
    }
    Complexes.push_back(A);
    return A;
  }

  BaseAssembly *buildBase(repro::Xorshift &Rng) {
    auto *B = static_cast<BaseAssembly *>(std::malloc(sizeof(BaseAssembly)));
    B->Id = NextAssemblyId++;
    B->BuildDate = Rng.nextBounded(200);
    B->CompCount = Cfg.ComponentsPerBase;
    assert(Cfg.ComponentsPerBase <= 8 && "components capped at 8");
    for (unsigned I = 0; I < Cfg.ComponentsPerBase; ++I)
      B->Components[I] = reinterpret_cast<Word>(
          Composites[Rng.nextBounded(Composites.size())]);
    Bases.push_back(B);
    return B;
  }

  void populateIndices();

  Bench7Config Cfg;
  ComplexAssembly *DesignRoot = nullptr;
  std::vector<CompositePart *> Composites;
  std::vector<BaseAssembly *> Bases;
  std::vector<ComplexAssembly *> Complexes;
  TxHashMap<STM> AtomicIndex;
  TxHashMap<STM> CompositeIndex;
  uint64_t NextAtomicId = 0;
  uint64_t NextCompositeId = 0;
  uint64_t NextAssemblyId = 0;
};

template <typename STM> void Bench7<STM>::populateIndices() {
  // Runs before any worker thread exists; a private scope keeps the
  // transactional index API usable for the bootstrap.
  stm::ThreadScope<STM> Scope;
  Tx &T = Scope.tx();
  for (CompositePart *C : Composites) {
    stm::atomically(T, [&](Tx &X) {
      CompositeIndex.insert(X, C->Id, reinterpret_cast<Word>(C));
      auto *Root = reinterpret_cast<AtomicPart *>(C->RootPart);
      AtomicPart *P = Root;
      do {
        AtomicIndex.insert(X, P->Id, reinterpret_cast<Word>(P));
        P = reinterpret_cast<AtomicPart *>(P->Next);
      } while (P != Root);
    });
  }
}

} // namespace workloads::sb7

#endif // WORKLOADS_STMBENCH7_BENCH7_H
