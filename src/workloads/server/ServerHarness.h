//===- workloads/server/ServerHarness.h - open-loop driver ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The serving workload's control plane: client threads generate an
// open-loop Poisson request stream (arrivals keep coming whether or not
// the system keeps up, unlike the closed-loop figure benches where each
// thread waits for its own previous operation) over scrambled-Zipfian
// keys, route each request to the owning shard's worker queue, and shed
// on queue-full. Worker threads pop requests in batches, serve each as
// one transaction through the public stm::Runtime API under a TxBatch
// epoch-pin, and record end-to-end latency — completion time minus the
// *scheduled* arrival time, so queueing delay and shed-pressure backlog
// count against the percentiles (no coordinated omission).
//
// Determinism: request content (keys, op mix, arrival spacing) derives
// from repro::testSeed() streams, so two runs offer the same work;
// interleaving and therefore latency remain physical measurements.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SERVER_SERVERHARNESS_H
#define WORKLOADS_SERVER_SERVERHARNESS_H

#include "stm/Stm.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Timing.h"
#include "workloads/server/LatencyHistogram.h"
#include "workloads/server/RequestQueue.h"
#include "workloads/server/Store.h"
#include "workloads/server/Zipfian.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace workloads::server {

/// One client request in flight between a client and a worker.
struct Request {
  uint64_t A = 0;              ///< primary key / auction id / scan base
  uint64_t B = 0;              ///< secondary key / scan length / bid
  uint64_t C = 0;              ///< transfer amount
  uint64_t ScheduledNanos = 0; ///< intended (open-loop) arrival time
  OpClass Op = OpClass::PointRead;
};

/// Knobs of one serving run. Defaults are smoke-sized; the bench scales
/// them up.
struct ServerConfig {
  unsigned Workers = 2;  ///< transaction-executing threads (one queue each)
  unsigned Clients = 2;  ///< open-loop load generators
  unsigned Shards = 4;   ///< store range partitions
  uint64_t KeySpace = 1 << 13;
  uint64_t Auctions = 8; ///< hot-key count of the AuctionBid class
  double Theta = 0.99;   ///< Zipfian skew of point/transfer keys
  double OfferedOpsPerSec = 100000.0; ///< total arrival rate, all clients
  unsigned QueueCapacity = 1024;      ///< per-worker, power of two
  unsigned BatchSize = 16;            ///< requests admitted per TxBatch
  unsigned DurationMs = 500;          ///< client generation window
  /// Op mix in percent; must sum to 100.
  unsigned MixPercent[NumOpClasses] = {60, 10, 25, 5};
  uint64_t ScanLen = 100;   ///< RangeScan width in keys
  uint64_t MaxTransfer = 8; ///< transfer amounts drawn from [1, MaxTransfer]
  uint64_t Seed = 0;        ///< 0 = repro::testSeed()
};

/// Everything a run measured.
struct ServerResult {
  LatencyHistogram Hist[NumOpClasses]; ///< end-to-end latency per class
  uint64_t Completed[NumOpClasses] = {};
  uint64_t Offered = 0; ///< requests generated (completed + shed at rest)
  uint64_t Shed = 0;    ///< dropped by queue backpressure
  double ElapsedSeconds = 0.0; ///< generation + drain wall time
  double GoodputOpsPerSec = 0.0;
  repro::TxStats Stats;      ///< aggregated over workers (incl. Batches/Sheds)
  uint64_t BackendSwitches = 0;
  unsigned HistogramViolations = 0; ///< 0 or the recording path is broken
  bool ConservationOk = false;      ///< post-run transfer-sum audit

  uint64_t totalCompleted() const {
    uint64_t Sum = 0;
    for (uint64_t C : Completed)
      Sum += C;
    return Sum;
  }
};

/// Runs the serving traffic of one process against an already-populated
/// \p Store. Factored out of runServer so a multi-process bench can fork
/// workers over one segment-resident store: each process drives its own
/// share of the offered load, and only the parent audits conservation
/// (pass Audit=false in children — the invariant is global, not
/// per-process).
inline ServerResult runServerOn(stm::Runtime &R, const ServerConfig &Config,
                                ShardedStore &Store, bool Audit = true) {
  using Tx = ShardedStore::Tx;

  const uint64_t Seed = Config.Seed ? Config.Seed : repro::testSeed();

  std::vector<std::unique_ptr<RequestQueue<Request>>> Queues;
  for (unsigned W = 0; W < Config.Workers; ++W)
    Queues.push_back(
        std::make_unique<RequestQueue<Request>>(Config.QueueCapacity));

  std::atomic<bool> WorkersStop{false};

  struct WorkerLocal {
    LatencyHistogram Hist[NumOpClasses];
    uint64_t Completed[NumOpClasses] = {};
    repro::TxStats Stats;
  };
  std::vector<WorkerLocal> Locals(Config.Workers);
  std::vector<uint64_t> ClientOffered(Config.Clients, 0);
  std::vector<uint64_t> ClientShed(Config.Clients, 0);

  repro::Stopwatch Wall;
  const uint64_t StartNanos = repro::nowNanos();
  const uint64_t EndNanos =
      StartNanos + static_cast<uint64_t>(Config.DurationMs) * 1000000ull;

  auto clientMain = [&](unsigned Id) {
    // Independent deterministic streams per client: one for the key
    // popularity, one for op selection / arrival spacing / amounts.
    Zipfian Keys(Config.KeySpace, Config.Theta, Seed ^ (0x5151ull * (Id + 1)));
    repro::Xorshift Rng(Seed ^ (0xC11Eull * (Id + 1)));
    const double RatePerNs =
        Config.OfferedOpsPerSec / Config.Clients / 1e9;
    uint64_t Next = StartNanos;
    uint64_t Offered = 0, Shed = 0;

    while (Next < EndNanos) {
      // Poisson arrivals: exponential inter-arrival gaps.
      double U = Rng.nextDouble();
      if (U <= 0.0)
        U = 1e-12;
      Next += static_cast<uint64_t>(-std::log(U) / RatePerNs);
      // Open loop: wait out the gap if we are early, but never stretch
      // it if we are late — the backlog is the system's problem, and
      // ScheduledNanos keeps charging it to the latency percentiles.
      for (uint64_t Now = repro::nowNanos(); Now < Next;
           Now = repro::nowNanos()) {
        if (Next - Now > 200000)
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        else
          repro::cpuRelax();
      }

      Request Rq;
      Rq.ScheduledNanos = Next;
      unsigned Pick = static_cast<unsigned>(Rng.next() % 100);
      uint64_t Key = Keys.next();
      if (Pick < Config.MixPercent[0]) {
        Rq.Op = OpClass::PointRead;
        Rq.A = Key;
      } else if (Pick < Config.MixPercent[0] + Config.MixPercent[1]) {
        Rq.Op = OpClass::RangeScan;
        Rq.A = Rng.next() % Config.KeySpace; // scans are uniform
        Rq.B = Config.ScanLen;
      } else if (Pick <
                 Config.MixPercent[0] + Config.MixPercent[1] +
                     Config.MixPercent[2]) {
        Rq.Op = OpClass::Transfer;
        Rq.A = Key;
        Rq.B = Keys.next();
        Rq.C = 1 + Rng.next() % Config.MaxTransfer;
      } else {
        Rq.Op = OpClass::AuctionBid;
        Rq.A = Rng.next() % Config.Auctions;
        Rq.B = 1 + Rng.next() % (1ull << 20); // bids race to the max
      }

      ++Offered;
      unsigned Target = Store.shardOf(Rq.A) % Config.Workers;
      if (!Queues[Target]->tryPush(Rq))
        ++Shed; // queue full: explicit drop, the client never blocks
    }
    ClientOffered[Id] = Offered;
    ClientShed[Id] = Shed;
  };

  auto workerMain = [&](unsigned Id) {
    Tx &T = R.threadTx();
    WorkerLocal &L = Locals[Id];
    RequestQueue<Request> &Q = *Queues[Id];
    std::vector<Request> Batch(Config.BatchSize);

    for (;;) {
      // Shutdown ordering: the stop flag must be read *before* the
      // pop. The flag is raised only after every client joined, so
      // flag-up followed by an empty pop proves the queue is fully
      // drained; checking the flag after an empty pop instead races
      // with pushes landing in between and strands them.
      bool Stopping = WorkersStop.load(std::memory_order_acquire);
      std::size_t Got = Q.tryPopBatch(Batch.data(), Config.BatchSize);
      if (Got == 0) {
        if (Stopping)
          break; // clients quiesced and the queue drained
        repro::cpuRelax();
        continue;
      }
      // One epoch pin for the whole admitted batch (no-op under the
      // adaptive runtime, where a held pin would stall backend
      // switches — see TxHandle::batchBegin).
      stm::rt::TxBatch Pin(T);
      for (std::size_t I = 0; I < Got; ++I) {
        const Request &Rq = Batch[I];
        switch (Rq.Op) {
        case OpClass::PointRead:
          stm::atomically(T, [&](Tx &Body) { Store.pointRead(Body, Rq.A); });
          break;
        case OpClass::RangeScan:
          stm::atomically(T,
                          [&](Tx &Body) { Store.rangeScan(Body, Rq.A, Rq.B); });
          break;
        case OpClass::Transfer:
          stm::atomically(
              T, [&](Tx &Body) { Store.transfer(Body, Rq.A, Rq.B, Rq.C); });
          break;
        case OpClass::AuctionBid:
          stm::atomically(T,
                          [&](Tx &Body) { Store.auctionBid(Body, Rq.A, Rq.B); });
          break;
        }
        uint64_t Done = repro::nowNanos();
        uint64_t Lat =
            Done > Rq.ScheduledNanos ? Done - Rq.ScheduledNanos : 0;
        unsigned Class = static_cast<unsigned>(Rq.Op);
        L.Hist[Class].record(Lat);
        ++L.Completed[Class];
      }
    }
    L.Stats = T.stats();
  };

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Config.Workers; ++W)
    Threads.emplace_back(workerMain, W);
  std::vector<std::thread> Generators;
  for (unsigned C = 0; C < Config.Clients; ++C)
    Generators.emplace_back(clientMain, C);

  for (auto &G : Generators)
    G.join();
  // No more pushes can arrive; workers exit once their queue reads
  // empty, so everything admitted gets drained and measured.
  WorkersStop.store(true, std::memory_order_release);
  for (auto &W : Threads)
    W.join();

  ServerResult Result;
  Result.ElapsedSeconds = Wall.elapsedSeconds();
  for (unsigned W = 0; W < Config.Workers; ++W) {
    for (unsigned C = 0; C < NumOpClasses; ++C) {
      Result.Hist[C].merge(Locals[W].Hist[C]);
      Result.Completed[C] += Locals[W].Completed[C];
    }
    Result.Stats += Locals[W].Stats;
  }
  for (unsigned C = 0; C < Config.Clients; ++C) {
    Result.Offered += ClientOffered[C];
    Result.Shed += ClientShed[C];
  }
  Result.Stats.Sheds = Result.Shed;
  Result.GoodputOpsPerSec =
      Result.ElapsedSeconds > 0.0
          ? static_cast<double>(Result.totalCompleted()) / Result.ElapsedSeconds
          : 0.0;
  for (unsigned C = 0; C < NumOpClasses; ++C)
    Result.HistogramViolations += Result.Hist[C].invariantViolations();
  Result.BackendSwitches = R.switchCount();
  Result.ConservationOk = Audit ? Store.checkConservation(R) : true;
  return Result;
}

/// Runs the serving workload against \p R and returns the measurements.
/// \p R must be the process's live runtime; the calling thread is used
/// for populate and the post-run audit.
inline ServerResult runServer(stm::Runtime &R, const ServerConfig &Config) {
  ShardedStore Store(Config.Shards, Config.KeySpace, Config.Auctions);
  Store.populate(R);
  return runServerOn(R, Config, Store, /*Audit=*/true);
}

} // namespace workloads::server

#endif // WORKLOADS_SERVER_SERVERHARNESS_H
