//===- workloads/server/RequestQueue.h - bounded request queue --*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Bounded lock-free MPMC ring (Vyukov's sequence-stamped design, the
// same shape ndn-dpdk's per-core rings take): each cell carries a
// sequence number that encodes whose turn it is, so producers and
// consumers synchronize cell-locally with one CAS on their own cursor
// and no shared head/tail lock. Used as the per-worker request queue
// of the serving workload: clients tryPush (failure = queue full =
// shed, the explicit backpressure policy — the open-loop arrival
// process never blocks), workers tryPop in batches.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SERVER_REQUESTQUEUE_H
#define WORKLOADS_SERVER_REQUESTQUEUE_H

#include "support/Padded.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace workloads::server {

template <typename T> class RequestQueue {
public:
  /// \p CapacityPow2 must be a power of two (the index is a mask).
  explicit RequestQueue(std::size_t CapacityPow2)
      : Mask(CapacityPow2 - 1), Cells(new Cell[CapacityPow2]) {
    assert(CapacityPow2 >= 2 && (CapacityPow2 & Mask) == 0 &&
           "capacity must be a power of two");
    for (std::size_t I = 0; I < CapacityPow2; ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
  }

  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Enqueues \p Item; returns false when the queue is full (the
  /// caller sheds the request — nothing blocks).
  bool tryPush(const T &Item) {
    std::size_t Pos = Tail.value().load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      std::size_t Seq = C.Seq.load(std::memory_order_acquire);
      if (Seq == Pos) {
        if (Tail.value().compare_exchange_weak(Pos, Pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (Seq < Pos) {
        return false; // cell still holds an unconsumed older item: full
      } else {
        Pos = Tail.value().load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[Pos & Mask];
    C.Item = Item;
    C.Seq.store(Pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into \p Out; returns false when the queue is empty.
  bool tryPop(T &Out) {
    std::size_t Pos = Head.value().load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      std::size_t Seq = C.Seq.load(std::memory_order_acquire);
      if (Seq == Pos + 1) {
        if (Head.value().compare_exchange_weak(Pos, Pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (Seq < Pos + 1) {
        return false; // producer hasn't filled this cell yet: empty
      } else {
        Pos = Head.value().load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[Pos & Mask];
    Out = C.Item;
    C.Seq.store(Pos + Mask + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues up to \p MaxBatch items into \p Out; returns the count.
  /// The worker-side batch-admission primitive.
  std::size_t tryPopBatch(T *Out, std::size_t MaxBatch) {
    std::size_t Got = 0;
    while (Got < MaxBatch && tryPop(Out[Got]))
      ++Got;
    return Got;
  }

  std::size_t capacity() const { return Mask + 1; }

  /// Instantaneous occupancy estimate (racy; monitoring only).
  std::size_t sizeEstimate() const {
    std::size_t Produced = Tail.value().load(std::memory_order_relaxed);
    std::size_t Consumed = Head.value().load(std::memory_order_relaxed);
    return Produced >= Consumed ? Produced - Consumed : 0;
  }

private:
  struct Cell {
    std::atomic<std::size_t> Seq;
    T Item;
  };

  std::size_t Mask;
  std::unique_ptr<Cell[]> Cells;
  /// Producer and consumer cursors on separate cache lines: clients
  /// hammer Tail, the owning worker hammers Head.
  repro::Padded<std::atomic<std::size_t>> Tail{};
  repro::Padded<std::atomic<std::size_t>> Head{};
};

} // namespace workloads::server

#endif // WORKLOADS_SERVER_REQUESTQUEUE_H
