//===- stm/LockTable.h - address-to-lock mapping (forwarding) ---*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The lock table moved into the shared policy core (cache-line-padded
// entries, lazily committed storage, hardened bounds); this forwarding
// header keeps existing includes working.
//
//===----------------------------------------------------------------------===//

#ifndef STM_LOCKTABLE_H
#define STM_LOCKTABLE_H

#include "stm/core/LockTable.h"

#endif // STM_LOCKTABLE_H
