//===- support/Random.h - fast seedable PRNG ---------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Benchmarks and back-off logic need a very cheap thread-local generator;
// std::mt19937_64 is too heavy for per-access decisions, so we use
// xorshift128+ (Vigna). Deterministic given a seed, which keeps workload
// generation reproducible across runs.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RANDOM_H
#define SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace repro {

/// xorshift128+ pseudo-random generator. Not cryptographic; period 2^128-1.
class Xorshift {
public:
  explicit Xorshift(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using splitmix64 so that
  /// similar seeds still yield uncorrelated streams.
  void reseed(uint64_t Seed) {
    S0 = splitmix(Seed);
    S1 = splitmix(Seed);
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  uint64_t nextRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBounded(Hi - Lo + 1);
  }

  /// Returns true with probability \p Percent / 100.
  bool nextPercent(unsigned Percent) { return nextBounded(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / (1ull << 53));
  }

private:
  static uint64_t splitmix(uint64_t &State) {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  uint64_t S0 = 0;
  uint64_t S1 = 0;
};

} // namespace repro

#endif // SUPPORT_RANDOM_H
