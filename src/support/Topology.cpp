//===- support/Topology.cpp - cpu/core/socket detection -------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "support/Topology.h"

#include <cstdio>
#include <set>
#include <thread>
#include <utility>

namespace repro {

namespace {

/// Reads a small integer from a sysfs file; returns false when the file
/// is missing or malformed (the caller falls back).
bool readSysfsUnsigned(const char *Path, unsigned &Out) {
  std::FILE *F = std::fopen(Path, "r");
  if (F == nullptr)
    return false;
  unsigned Value = 0;
  bool Ok = std::fscanf(F, "%u", &Value) == 1;
  std::fclose(F);
  if (Ok)
    Out = Value;
  return Ok;
}

TopologyInfo detect() {
  TopologyInfo Info;
  unsigned Hw = std::thread::hardware_concurrency();
  Info.LogicalCpus = Hw != 0 ? Hw : 1;
  Info.Cores = Info.LogicalCpus;
  Info.Sockets = 1;
  Info.SmtPerCore = 1;

  // Walk /sys/devices/system/cpu/cpuN/topology. Online cpus are
  // numbered densely from 0 in practice; stop at the first gap (a
  // missing cpuN dir) and require at least cpu0 to trust the scan.
  std::set<std::pair<unsigned, unsigned>> CoreIds; // (package, core)
  std::set<unsigned> PackageIds;
  unsigned Scanned = 0;
  for (unsigned Cpu = 0;; ++Cpu) {
    char Path[128];
    std::snprintf(Path, sizeof(Path),
                  "/sys/devices/system/cpu/cpu%u/topology/physical_package_id",
                  Cpu);
    unsigned Package = 0;
    if (!readSysfsUnsigned(Path, Package))
      break;
    std::snprintf(Path, sizeof(Path),
                  "/sys/devices/system/cpu/cpu%u/topology/core_id", Cpu);
    unsigned Core = 0;
    if (!readSysfsUnsigned(Path, Core))
      break;
    PackageIds.insert(Package);
    CoreIds.insert({Package, Core});
    ++Scanned;
  }
  if (Scanned != 0) {
    Info.FromSysfs = true;
    Info.LogicalCpus = Scanned;
    Info.Cores = unsigned(CoreIds.size());
    Info.Sockets = unsigned(PackageIds.size());
    Info.SmtPerCore = Info.Cores != 0 ? Info.LogicalCpus / Info.Cores : 1;
    if (Info.SmtPerCore == 0)
      Info.SmtPerCore = 1;
  }
  return Info;
}

} // namespace

const TopologyInfo &topology() {
  static const TopologyInfo Info = detect();
  return Info;
}

unsigned defaultShardCount(unsigned MaxShards) {
  const TopologyInfo &Info = topology();
  unsigned Target = Info.Sockets;
  if (Info.Cores / 4 > Target)
    Target = Info.Cores / 4;
  if (Target < 1)
    Target = 1;
  if (Target > MaxShards)
    Target = MaxShards;
  unsigned Pow2 = 1;
  while (Pow2 * 2 <= Target)
    Pow2 *= 2;
  return Pow2;
}

} // namespace repro
