//===- workloads/leetm/LeeBoards.cpp - synthetic Lee-TM boards ------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Deterministic generators standing in for the original Lee-TM input
// boards:
//   memory -- a regular, bus-like layout: rows of short parallel
//             connections, the highly regular access pattern of the
//             paper's "memory" circuit board;
//   main   -- a larger board with random mixed-length connections, the
//             paper's "main" board character.
//
//===----------------------------------------------------------------------===//

#include "workloads/leetm/LeeRouter.h"

#include "support/Random.h"

#include <algorithm>

using namespace workloads::lee;

static std::vector<RouteJob> memoryBoard(unsigned W, unsigned H) {
  // Bus-like rows: on every fourth row, short horizontal nets laid out
  // side by side, like address/data lines of a memory array.
  std::vector<RouteJob> Jobs;
  uint64_t Net = 1;
  const unsigned Span = 10;
  for (unsigned Y = 1; Y + 1 < H; Y += 4) {
    for (unsigned X = 1; X + Span + 1 < W; X += Span + 3) {
      Jobs.push_back(RouteJob{X, Y, X + Span, Y, Net++});
    }
  }
  return Jobs;
}

static std::vector<RouteJob> mainBoard(unsigned W, unsigned H) {
  // Random mixed-length pairs; seeded, so every run sees the same board.
  repro::Xorshift Rng(0x1ee7b0a2d);
  std::vector<RouteJob> Jobs;
  uint64_t Net = 1;
  const unsigned NumNets = W * H / 96;
  for (unsigned I = 0; I < NumNets; ++I) {
    unsigned SX = 1 + static_cast<unsigned>(Rng.nextBounded(W - 2));
    unsigned SY = 1 + static_cast<unsigned>(Rng.nextBounded(H - 2));
    // Mix of short and long nets (1/4 long).
    unsigned MaxLen = (I % 4 == 0) ? W / 2 : W / 8;
    unsigned DX = static_cast<unsigned>(Rng.nextBounded(2 * MaxLen + 1));
    unsigned DY = static_cast<unsigned>(Rng.nextBounded(2 * MaxLen + 1));
    int TX = static_cast<int>(SX) + static_cast<int>(DX) - static_cast<int>(MaxLen);
    int TY = static_cast<int>(SY) + static_cast<int>(DY) - static_cast<int>(MaxLen);
    TX = std::clamp(TX, 1, static_cast<int>(W) - 2);
    TY = std::clamp(TY, 1, static_cast<int>(H) - 2);
    if (static_cast<unsigned>(TX) == SX && static_cast<unsigned>(TY) == SY)
      continue;
    Jobs.push_back(RouteJob{SX, SY, static_cast<unsigned>(TX),
                            static_cast<unsigned>(TY), Net++});
  }
  return Jobs;
}

std::vector<RouteJob> workloads::lee::generateBoard(Board B, unsigned &Width,
                                                    unsigned &Height,
                                                    double Scale) {
  if (B == Board::Memory) {
    Width = std::max(32u, static_cast<unsigned>(96 * Scale));
    Height = std::max(32u, static_cast<unsigned>(96 * Scale));
    return memoryBoard(Width, Height);
  }
  Width = std::max(48u, static_cast<unsigned>(160 * Scale));
  Height = std::max(48u, static_cast<unsigned>(160 * Scale));
  return mainBoard(Width, Height);
}
