//===- tests/ScheduleReplayTest.cpp - diag record/replay/enumerate -------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Coverage for the stm/diag schedule-control engine:
//
//   * trace format and step derivation (any build);
//   * the enumerate driver walking every serialized schedule of a
//     synthetic two-thread history (any build — the engine API is
//     always compiled, only the backend hook *sites* are gated);
//   * record -> replay determinism on a contended mixed read/write
//     workload: the same step list replayed three times produces the
//     identical event log, commit/abort sequence, per-thread stats and
//     final memory image (STM_DIAG builds);
//   * regression schedules for previously fixed races, resurrected
//     through the diag::Inject knobs:
//       - enumeration catches an injected validation skip as a lost
//         update (and proves the honest path loses nothing);
//       - PR 1: the TinySTM/TL2 self-locked-stripe validation bug;
//       - PR 5: the RSTM retire-tag reclamation window, driven by a
//         hand-written schedule that parks the writer between its
//         commit stamp and write-back (the exact window the fix
//         closed), with a trace oracle over the replay log.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/diag/Hooks.h"
#include "stm/diag/Schedule.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

using stm::diag::Event;
using stm::diag::HookKind;
using stm::diag::Schedule;
using stm::diag::Step;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Spawns \p N workers, each bound to logical diag tid I *before* it
/// attaches a runtime ThreadScope, and joins them. The harness's
/// runThreads cannot be used here: the diag binding must exist before
/// the first hook the scope's transactions fire.
template <typename Fn> void runBoundThreads(unsigned N, Fn &&Work) {
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&Work, I] {
      Schedule::ScopedThread Bind(I);
      stm::ThreadScope<repro_test::Rt> Scope;
      Work(I, Scope.tx());
    });
  for (std::thread &T : Threads)
    T.join();
}

/// RAII fault-injection toggle so a failing assertion cannot leak a
/// resurrected bug into later tests.
class InjectGuard {
public:
  explicit InjectGuard(stm::diag::Inject Knob) : Knob(Knob) {
    stm::diag::setInjected(Knob, true);
  }
  ~InjectGuard() { stm::diag::setInjected(Knob, false); }

private:
  stm::diag::Inject Knob;
};

std::string tempTracePath(const char *Tag) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "/tmp/stm-diag-%s-%d.trace", Tag,
                static_cast<int>(::getpid()));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Trace format (any build)
//===----------------------------------------------------------------------===//

TEST(DiagTraceTest, DumpLoadRoundTrip) {
  std::vector<Event> Trace;
  uint64_t Seq = 0;
  for (unsigned K = 0; K < stm::diag::NumHookKinds; ++K) {
    Event E;
    E.Seq = Seq++;
    E.Tid = K % 3;
    E.Slot = K;
    E.Kind = static_cast<HookKind>(K);
    E.Stripe = (K % 2 == 0) ? stm::diag::NoStripe : uint64_t(K) * 977;
    E.Aux = uint64_t(K) * 31 + 7;
    Trace.push_back(E);
  }

  std::string Path = tempTracePath("roundtrip");
  ASSERT_TRUE(Schedule::dumpTrace(Trace, Path.c_str()));
  std::vector<Event> Loaded;
  ASSERT_TRUE(Schedule::loadTrace(Path.c_str(), Loaded));
  std::remove(Path.c_str());

  ASSERT_EQ(Trace.size(), Loaded.size());
  for (std::size_t I = 0; I < Trace.size(); ++I) {
    EXPECT_EQ(Trace[I].Seq, Loaded[I].Seq) << "event " << I;
    EXPECT_EQ(Trace[I].Tid, Loaded[I].Tid) << "event " << I;
    EXPECT_EQ(Trace[I].Slot, Loaded[I].Slot) << "event " << I;
    EXPECT_EQ(Trace[I].Kind, Loaded[I].Kind) << "event " << I;
    EXPECT_EQ(Trace[I].Stripe, Loaded[I].Stripe) << "event " << I;
    EXPECT_EQ(Trace[I].Aux, Loaded[I].Aux) << "event " << I;
  }
}

TEST(DiagTraceTest, HookKindNamesRoundTrip) {
  for (unsigned K = 0; K < stm::diag::NumHookKinds; ++K) {
    HookKind Kind = static_cast<HookKind>(K);
    HookKind Parsed;
    ASSERT_TRUE(stm::diag::parseHookKind(stm::diag::hookKindName(Kind),
                                         Parsed));
    EXPECT_EQ(Kind, Parsed);
  }
  HookKind Unused;
  EXPECT_FALSE(stm::diag::parseHookKind("not-a-hook", Unused));
}

TEST(DiagTraceTest, StepsFromEventsMatchExactly) {
  std::vector<Event> Trace;
  Trace.push_back({0, 1, 9, HookKind::Read, 42, 5});
  Trace.push_back({1, 0, 3, HookKind::Commit, stm::diag::NoStripe, 17});

  std::vector<Step> Steps = Schedule::stepsFromEvents(Trace);
  ASSERT_EQ(2u, Steps.size());
  EXPECT_EQ(1u, Steps[0].Tid);
  EXPECT_EQ(HookKind::Read, Steps[0].Kind);
  EXPECT_FALSE(Steps[0].AnyKind);
  EXPECT_EQ(42u, Steps[0].Stripe);
  EXPECT_EQ(0u, Steps[1].Tid);
  EXPECT_EQ(HookKind::Commit, Steps[1].Kind);
  EXPECT_EQ(stm::diag::NoStripe, Steps[1].Stripe);
}

//===----------------------------------------------------------------------===//
// Enumerate driver over a synthetic history (any build)
//===----------------------------------------------------------------------===//

// Two synthetic threads emitting three events each: the serialized
// schedules are exactly the interleavings of two length-3 sequences,
// C(6,3) == 20. The driver must walk all of them, each exactly once.
TEST(DiagEnumerateTest, WalksEverySyntheticScheduleOnce) {
  std::set<std::vector<uint32_t>> Orders;
  std::vector<uint32_t> Current;
  std::mutex Mu;

  stm::diag::EnumStats Stats = stm::diag::enumerateSchedules(
      2, /*MaxRuns=*/64,
      [&] {
        Current.clear();
        std::vector<std::thread> Threads;
        for (uint32_t Tid = 0; Tid < 2; ++Tid)
          Threads.emplace_back([&, Tid] {
            Schedule::ScopedThread Bind(Tid);
            for (unsigned K = 0; K < 3; ++K) {
              Schedule::instance().onEvent(Tid, HookKind::Read, K, 0);
              // The grant token is held until this thread parks again,
              // so the append below is serialized by the engine.
              std::lock_guard<std::mutex> Lock(Mu);
              Current.push_back(Tid);
            }
          });
        for (std::thread &T : Threads)
          T.join();
        Orders.insert(Current);
      },
      /*MaxChoicePoints=*/32);

  EXPECT_TRUE(Stats.Exhausted);
  EXPECT_FALSE(Stats.Truncated);
  EXPECT_EQ(20u, Stats.Runs);
  // Every run took a distinct interleaving (and none repeated).
  EXPECT_EQ(Orders.size(), Stats.Runs);
}

// The same synthetic history under a budget smaller than the space:
// the truncation must be loud (Truncated set, Exhausted not), and the
// runs that did fit must include a schedule diverging at the *first*
// choice point — the work-list driver explores earliest-divergence
// alternatives first, where the old deepest-first DFS burned the whole
// budget permuting the tail and reached the front-divergent schedules
// last.
TEST(DiagEnumerateTest, TruncationIsLoudAndFrontBiased) {
  std::set<std::vector<uint32_t>> Orders;
  std::vector<uint32_t> Current;
  std::mutex Mu;

  constexpr uint64_t MaxRuns = 5; // < the 20 distinct schedules
  stm::diag::EnumStats Stats = stm::diag::enumerateSchedules(
      2, MaxRuns,
      [&] {
        Current.clear();
        std::vector<std::thread> Threads;
        for (uint32_t Tid = 0; Tid < 2; ++Tid)
          Threads.emplace_back([&, Tid] {
            Schedule::ScopedThread Bind(Tid);
            for (unsigned K = 0; K < 3; ++K) {
              Schedule::instance().onEvent(Tid, HookKind::Read, K, 0);
              std::lock_guard<std::mutex> Lock(Mu);
              Current.push_back(Tid);
            }
          });
        for (std::thread &T : Threads)
          T.join();
        Orders.insert(Current);
      },
      /*MaxChoicePoints=*/32);

  EXPECT_TRUE(Stats.Truncated);
  EXPECT_FALSE(Stats.Exhausted);
  EXPECT_EQ(MaxRuns, Stats.Runs);
  EXPECT_EQ(Orders.size(), Stats.Runs); // still no schedule repeated
  bool FrontDivergent = false;
  for (const std::vector<uint32_t> &O : Orders)
    if (!O.empty() && O.front() == 1)
      FrontDivergent = true;
  EXPECT_TRUE(FrontDivergent)
      << "truncated budget never took the alternative at the first "
      << "choice point";
}

#ifdef STM_DIAG

//===----------------------------------------------------------------------===//
// Record -> replay determinism (STM_DIAG builds)
//===----------------------------------------------------------------------===//

struct ReplayRun {
  std::vector<Event> Log;
  std::array<stm::Word, 64> Memory;
  // Per-thread (Starts, Commits, Aborts, Reads, Writes, Validations,
  // Extensions, FailedExtensions, AbortsAttributed) deltas.
  std::vector<std::array<uint64_t, 9>> Stats;
  bool Stalled = false;
};

std::array<uint64_t, 9> statsKey(const repro::TxStats &After,
                                 const repro::TxStats &Before) {
  return {After.Starts - Before.Starts,
          After.Commits - Before.Commits,
          After.Aborts - Before.Aborts,
          After.Reads - Before.Reads,
          After.Writes - Before.Writes,
          After.Validations - Before.Validations,
          After.Extensions - Before.Extensions,
          After.FailedExtensions - Before.FailedExtensions,
          After.AbortsAttributed - Before.AbortsAttributed};
}

/// The commit/abort subsequence of an event log: the determinism
/// acceptance criterion compares these across replays.
std::vector<std::pair<uint32_t, HookKind>>
commitAbortSequence(const std::vector<Event> &Log) {
  std::vector<std::pair<uint32_t, HookKind>> Out;
  for (const Event &E : Log)
    if (E.Kind == HookKind::Commit || E.Kind == HookKind::Abort)
      Out.emplace_back(E.Tid, E.Kind);
  return Out;
}

class ScheduleReplayTest : public repro_test::RuntimeSuite {};

TEST_P(ScheduleReplayTest, RecordedScheduleReplaysDeterministically) {
  if (GetParam().Adaptive)
    GTEST_SKIP() << "adaptive switching is wall-clock driven; replay "
                    "determinism covers the fixed backends";

  constexpr unsigned Threads = 2;
  constexpr unsigned TxPerThread = 10;
  static std::array<stm::Word, 64> Cells;

  // Fixed per-thread operation streams: a bench_extra_clock-shaped
  // mixed read/write load over a small contended array. The stream
  // depends only on the thread index, so record and every replay offer
  // identical work.
  auto Worker = [](unsigned I, auto &Tx, std::array<uint64_t, 9> *StatsOut) {
    repro::Xorshift Rng(0x9E3779B97F4A7C15ull + I * 0x1000193u);
    repro::TxStats Before = Tx.stats();
    for (unsigned T = 0; T < TxPerThread; ++T) {
      stm::atomically(Tx, [&](auto &Txn) {
        for (unsigned K = 0; K < 3; ++K) {
          std::size_t Idx = Rng.next() % Cells.size();
          stm::Word V = Txn.load(&Cells[Idx]);
          Txn.store(&Cells[Idx], V + 1);
        }
      });
    }
    if (StatsOut != nullptr)
      *StatsOut = statsKey(Tx.stats(), Before);
  };

  Schedule &Sched = Schedule::instance();

  // Record a live run.
  Cells.fill(0);
  Sched.startRecord();
  runBoundThreads(Threads,
                  [&](unsigned I, auto &Tx) { Worker(I, Tx, nullptr); });
  std::vector<Event> Trace = Sched.stopRecord();
  ASSERT_FALSE(Trace.empty());
  EXPECT_NE(commitAbortSequence(Trace).size(), 0u);

  std::vector<Step> Steps = Schedule::stepsFromEvents(Trace);

  // Replay it three times; every run must be bit-identical.
  std::vector<ReplayRun> Runs;
  for (unsigned R = 0; R < 3; ++R) {
    ReplayRun Run;
    Run.Stats.resize(Threads);
    Cells.fill(0);
    Schedule::ReplayOptions Opts;
    Opts.TimeoutMs = 60000;
    Sched.startReplay(Steps, Opts);
    runBoundThreads(Threads, [&](unsigned I, auto &Tx) {
      Worker(I, Tx, &Run.Stats[I]);
    });
    Run.Log = Sched.stopReplay();
    Run.Stalled = Sched.stalled();
    Run.Memory = Cells;
    Runs.push_back(std::move(Run));
  }

  for (unsigned R = 0; R < 3; ++R)
    EXPECT_FALSE(Runs[R].Stalled) << "replay " << R << " wedged";

  // Each transaction commits exactly once, so the cell sum is exact.
  uint64_t Sum = 0;
  for (stm::Word W : Runs[0].Memory)
    Sum += W;
  EXPECT_EQ(uint64_t(Threads) * TxPerThread * 3, Sum);

  for (unsigned R = 1; R < 3; ++R) {
    // Identical commit/abort sequence (the acceptance criterion) and,
    // stronger, the identical full event log.
    EXPECT_EQ(commitAbortSequence(Runs[0].Log),
              commitAbortSequence(Runs[R].Log))
        << "replay " << R << " diverged in commit/abort order";
    ASSERT_EQ(Runs[0].Log.size(), Runs[R].Log.size())
        << "replay " << R << " event count";
    for (std::size_t I = 0; I < Runs[0].Log.size(); ++I) {
      EXPECT_EQ(Runs[0].Log[I].Tid, Runs[R].Log[I].Tid) << "event " << I;
      EXPECT_EQ(Runs[0].Log[I].Kind, Runs[R].Log[I].Kind) << "event " << I;
      EXPECT_EQ(Runs[0].Log[I].Stripe, Runs[R].Log[I].Stripe)
          << "event " << I;
    }
    // Bit-identical stats and final memory image.
    EXPECT_EQ(Runs[0].Stats, Runs[R].Stats) << "replay " << R << " stats";
    EXPECT_EQ(Runs[0].Memory, Runs[R].Memory) << "replay " << R << " memory";
  }
}

// Hand-written schedule: a strict alternation expressed as thread-only
// (AnyKind) steps. Two passes over the same step list must agree on
// everything — this is the "hand-written schedule" leg of the tentpole.
TEST_P(ScheduleReplayTest, HandWrittenScheduleIsDeterministic) {
  if (GetParam().Adaptive)
    GTEST_SKIP() << "adaptive switching is wall-clock driven";

  constexpr unsigned Increments = 8;
  static stm::Word Shared;

  std::vector<Step> Steps;
  for (unsigned I = 0; I < 160; ++I) {
    Step S;
    S.Tid = I % 2;
    S.AnyKind = true;
    Steps.push_back(S);
  }

  Schedule &Sched = Schedule::instance();
  std::vector<std::vector<Event>> Logs;
  for (unsigned R = 0; R < 2; ++R) {
    Shared = 0;
    Schedule::ReplayOptions Opts;
    Opts.TimeoutMs = 60000;
    Sched.startReplay(Steps, Opts);
    runBoundThreads(2, [&](unsigned, auto &Tx) {
      for (unsigned K = 0; K < Increments; ++K)
        stm::atomically(Tx, [&](auto &Txn) {
          Txn.store(&Shared, Txn.load(&Shared) + 1);
        });
    });
    Logs.push_back(Sched.stopReplay());
    EXPECT_FALSE(Sched.stalled()) << "run " << R;
    EXPECT_EQ(stm::Word(2) * Increments, Shared) << "run " << R;
  }

  ASSERT_EQ(Logs[0].size(), Logs[1].size());
  for (std::size_t I = 0; I < Logs[0].size(); ++I) {
    EXPECT_EQ(Logs[0][I].Tid, Logs[1][I].Tid) << "event " << I;
    EXPECT_EQ(Logs[0][I].Kind, Logs[1][I].Kind) << "event " << I;
    EXPECT_EQ(Logs[0][I].Stripe, Logs[1][I].Stripe) << "event " << I;
  }
}

STM_INSTANTIATE_RUNTIME_SUITE(ScheduleReplayTest);

// Nightly stress leg (ctest -L replay-stress runs this file with
// STM_STRESS=10): repeated record -> replay rounds, fresh schedule
// each round, every replay checked against its own second pass.
TEST(ScheduleReplayStressTest, RepeatedRecordReplayRounds) {
  unsigned Rounds = 2 * repro_test::stressScale();
  static std::array<stm::Word, 32> Cells;

  stm::StmConfig Config;
  Config.Backend = stm::rt::BackendKind::SwissTm;
  Config.Adaptive = false;
  Config.Clock = repro_test::envClockKind();
  Config.LockTableSizeLog2 = 12;
  stm::StmRuntime::globalInit(Config);
  Schedule &Sched = Schedule::instance();

  for (unsigned Round = 0; Round < Rounds; ++Round) {
    auto Worker = [Round](unsigned I, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Round * 131 + I));
      for (unsigned T = 0; T < 6; ++T)
        stm::atomically(Tx, [&](auto &Txn) {
          std::size_t Idx = Rng.next() % Cells.size();
          Txn.store(&Cells[Idx], Txn.load(&Cells[Idx]) + 1);
        });
    };

    Cells.fill(0);
    Sched.startRecord();
    runBoundThreads(2, Worker);
    std::vector<Step> Steps = Schedule::stepsFromEvents(Sched.stopRecord());

    std::vector<std::vector<std::pair<uint32_t, HookKind>>> Sequences;
    for (unsigned R = 0; R < 2; ++R) {
      Cells.fill(0);
      Schedule::ReplayOptions Opts;
      Opts.TimeoutMs = 60000;
      Sched.startReplay(Steps, Opts);
      runBoundThreads(2, Worker);
      Sequences.push_back(commitAbortSequence(Sched.stopReplay()));
      ASSERT_FALSE(Sched.stalled()) << "round " << Round;
    }
    EXPECT_EQ(Sequences[0], Sequences[1]) << "round " << Round;
  }
  stm::StmRuntime::globalShutdown();
}

//===----------------------------------------------------------------------===//
// Regression schedules: injected historical bugs (STM_DIAG builds)
//===----------------------------------------------------------------------===//

/// Enumerates every serialized schedule of two concurrent read-modify-
/// write increments of one shared word under \p Kind, optionally with a
/// fault-injection knob armed, and reports whether any schedule lost an
/// update (final value != 2).
bool enumerationFindsLostUpdate(stm::rt::BackendKind Kind,
                                std::optional<stm::diag::Inject> Knob,
                                stm::diag::EnumStats *StatsOut = nullptr) {
  stm::StmConfig Config;
  Config.Backend = Kind;
  Config.Adaptive = false;
  Config.Clock = stm::ClockKind::Gv1;
  Config.LockTableSizeLog2 = 12;
  stm::StmRuntime::globalInit(Config);

  static stm::Word Shared;
  std::optional<InjectGuard> Guard;
  if (Knob)
    Guard.emplace(*Knob);

  // The interesting divergence (reader parks between its read and its
  // acquisition while the other thread commits) sits at the *earliest*
  // choice points, which the work-list driver explores first — a
  // truncated budget still reaches it. A modest recorded-choice cap
  // keeps abort-retry tails forced (round-robin) instead of exploding
  // the tree.
  bool Lost = false;
  stm::diag::EnumStats Stats = stm::diag::enumerateSchedules(
      2, /*MaxRuns=*/50000,
      [&] {
        Shared = 0;
        runBoundThreads(2, [&](unsigned, auto &Tx) {
          stm::atomically(Tx, [&](auto &Txn) {
            stm::Word V = Txn.load(&Shared);
            Txn.store(&Shared, V + 1);
          });
        });
        if (Shared != 2)
          Lost = true;
      },
      /*MaxChoicePoints=*/24);

  Guard.reset();
  stm::StmRuntime::globalShutdown();
  if (StatsOut != nullptr)
    *StatsOut = Stats;
  return Lost;
}

// The tentpole's enumeration acceptance check: a deliberately injected
// validation skip must surface as a lost update in *some* enumerated
// schedule, and the honest validation must survive every one.
TEST(DiagEnumerateTest, CatchesInjectedValidationSkip) {
  for (stm::rt::BackendKind Kind :
       {stm::rt::BackendKind::SwissTm, stm::rt::BackendKind::Tl2}) {
    stm::diag::EnumStats Honest;
    EXPECT_FALSE(enumerationFindsLostUpdate(Kind, std::nullopt, &Honest))
        << stm::rt::backendName(Kind) << ": honest validation lost an update";
    EXPECT_GE(Honest.Runs, 2u);

    EXPECT_TRUE(enumerationFindsLostUpdate(
        Kind, stm::diag::Inject::ValidationSkip))
        << stm::rt::backendName(Kind)
        << ": enumeration failed to catch the injected validation skip";
  }
}

// PR 1 regression: TinySTM and TL2 once skipped the pre-acquisition
// version check for stripes the validating transaction itself had
// locked, letting a stale read survive a commit interleaved between
// the read and the acquisition. The Inject::SelfLockedSkip knob
// resurrects that path; enumerating the two-increment history must
// rediscover the lost update, and the fixed path must never lose one.
TEST(DiagEnumerateTest, Pr1SelfLockedValidationRegression) {
  for (stm::rt::BackendKind Kind :
       {stm::rt::BackendKind::TinyStm, stm::rt::BackendKind::Tl2}) {
    EXPECT_FALSE(enumerationFindsLostUpdate(Kind, std::nullopt))
        << stm::rt::backendName(Kind) << ": fixed path lost an update";
    EXPECT_TRUE(enumerationFindsLostUpdate(
        Kind, stm::diag::Inject::SelfLockedSkip))
        << stm::rt::backendName(Kind)
        << ": schedule enumeration no longer catches the PR 1 "
           "self-locked validation bug";
  }
}

//===----------------------------------------------------------------------===//
// PR 5 regression: the RSTM retire-tag reclamation window
//===----------------------------------------------------------------------===//

/// Trace oracle for the retire-tag quiescence argument: a Retire event
/// tagged G is unsafe if any *other* transaction is still live at that
/// point with a published start timestamp S > G — the reclamation
/// horizon (min active start) could then pass G and free the block
/// while that transaction may still hold the old pointer. The honest
/// post-release counter sample can never trip this (the counter is
/// monotone and sampled after every such Begin); the stamp tag can.
bool retireOracleViolated(const std::vector<Event> &Log) {
  for (std::size_t I = 0; I < Log.size(); ++I) {
    if (Log[I].Kind != HookKind::Retire)
      continue;
    uint64_t Tag = Log[I].Aux;
    std::map<uint32_t, std::optional<uint64_t>> ActiveStart;
    for (std::size_t J = 0; J < I; ++J) {
      const Event &E = Log[J];
      if (E.Tid == Log[I].Tid)
        continue;
      if (E.Kind == HookKind::Begin)
        ActiveStart[E.Tid] = E.Aux;
      else if (E.Kind == HookKind::Commit || E.Kind == HookKind::Abort)
        ActiveStart[E.Tid].reset();
    }
    for (const auto &KV : ActiveStart)
      if (KV.second && *KV.second > Tag)
        return true;
  }
  return false;
}

/// Replays the PR 5 interleaving against RSTM under gv5 and runs the
/// oracle over the serialized log. The hand-written schedule parks the
/// writer W at its commit-stamp hook — stamp minted, P's orec still
/// owned-but-not-committing, which is the window in which an invisible
/// reader may still take the stripe's old value — while a second
/// committer drags the deferred counter past W's stamp and the reader
/// then begins (publishing a start past the stamp) and reads P's old
/// value:
///
///   W(0): Begin, Acquire(P)+txFree, mint stamp Ts  | parked at stamp
///   R(2): Begin, Read(Z)                           | dummy tx parked
///   C(1): two full increments of Q -> counter advances past Ts
///   R(2): finish dummy; Begin (start > Ts), Read(P old value)
///   W(0): Validate, WriteBack, release, Retire(tag), Commit
///   R(2): Commit
///
/// The steps are Until barriers ("run this thread until it parks at
/// that hook"), so the data-dependent filler hooks RSTM emits along
/// the way (periodic validation, clock extensions) cannot diverge the
/// schedule. With the fix, tag = post-release counter sample >= R's
/// start. With Inject::RstmStampRetireTag, tag = Ts < R's start: the
/// oracle trips, which is exactly the use-after-free window PR 5
/// closed.
struct RetireTagRun {
  bool Violated = false;
  bool Stalled = false;
  bool SawRetire = false;
  std::vector<Event> Log;
};

RetireTagRun runRetireTagSchedule(bool InjectOldBug) {
  stm::StmConfig Config;
  Config.Backend = stm::rt::BackendKind::Rstm;
  Config.Adaptive = false;
  Config.Clock = stm::ClockKind::Gv5;
  Config.LockTableSizeLog2 = 16;
  stm::StmRuntime::globalInit(Config);

  alignas(64) static stm::Word P;
  alignas(64) static stm::Word Q;
  alignas(64) static stm::Word Z;
  P = Q = Z = 0;
  void *Retired = std::malloc(32);

  std::optional<InjectGuard> Guard;
  if (InjectOldBug)
    Guard.emplace(stm::diag::Inject::RstmStampRetireTag);

  auto Until = [](uint32_t Tid, HookKind Kind) {
    Step St;
    St.Tid = Tid;
    St.Kind = Kind;
    St.Until = true;
    return St;
  };
  // An Until barrier on a hook the thread never fires (Retire needs
  // pending frees; C never calls txFree) degenerates to "run this
  // thread to completion".
  auto UntilDone = [&Until](uint32_t Tid) {
    return Until(Tid, HookKind::Retire);
  };
  std::vector<Step> Steps;
  // W mints its commit stamp and parks AT the commit-stamp hook: P's
  // orec is owned but not yet committing, so invisible readers still
  // take the old value.
  Steps.push_back(Until(0, HookKind::CommitStamp));
  // R's dummy transaction runs up to (not through) its commit, so R's
  // next begin is the serialized step that samples the clock.
  Steps.push_back(Until(2, HookKind::Commit));
  // C runs two complete increments of Q: under gv5 each commit
  // publishes its stamp via advanceTo, dragging the counter past Ts.
  Steps.push_back(UntilDone(1));
  // R finishes the dummy tx and begins again — the new start samples
  // the advanced counter, so it is published PAST W's stamp.
  Steps.push_back(Until(2, HookKind::Begin));
  // R reads P's old value (W still owns the stripe, not committing)
  // and parks at its commit.
  Steps.push_back(Until(2, HookKind::Commit));
  // W finishes its commit — validate, write back, release — and parks
  // at the retire hook with the tag already computed.
  Steps.push_back(Until(0, HookKind::Retire));
  // Steps exhausted: the deterministic round-robin tail logs W's
  // retire, then R's commit — R is live across the retire, exactly
  // the ordering the oracle interrogates.

  Schedule &Sched = Schedule::instance();
  Schedule::ReplayOptions Opts;
  Opts.TimeoutMs = 60000;
  Opts.ExpectedThreads = 3;
  Sched.startReplay(Steps, Opts);

  std::vector<std::thread> Threads;
  Threads.emplace_back([&] { // W
    Schedule::ScopedThread Bind(0);
    stm::ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    stm::atomically(Tx, [&](auto &T) {
      T.store(&P, 1);
      T.txFree(Retired);
    });
  });
  Threads.emplace_back([&] { // C
    Schedule::ScopedThread Bind(1);
    stm::ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    for (unsigned T = 0; T < 2; ++T)
      stm::atomically(Tx, [&](auto &Txn) {
        Txn.store(&Q, Txn.load(&Q) + 1);
      });
  });
  Threads.emplace_back([&] { // R
    Schedule::ScopedThread Bind(2);
    stm::ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    stm::atomically(Tx, [&](auto &T) { (void)T.load(&Z); });
    stm::atomically(Tx, [&](auto &T) { (void)T.load(&P); });
  });
  for (std::thread &T : Threads)
    T.join();

  RetireTagRun Run;
  Run.Log = Sched.stopReplay();
  Run.Stalled = Sched.stalled();
  for (const Event &E : Run.Log)
    Run.SawRetire |= E.Kind == HookKind::Retire;
  Run.Violated = retireOracleViolated(Run.Log);

  Guard.reset();
  stm::StmRuntime::globalShutdown();
  return Run;
}

TEST(DiagReplayTest, Pr5RstmRetireTagRegression) {
  // Honest retire tag: the post-release counter sample covers every
  // live reader's published start — the oracle must stay clean. This
  // is the replay-backed exoneration evidence for the ROADMAP's RSTM
  // reclamation hypothesis.
  RetireTagRun Fixed = runRetireTagSchedule(/*InjectOldBug=*/false);
  EXPECT_FALSE(Fixed.Stalled);
  EXPECT_TRUE(Fixed.SawRetire) << "schedule never reached the retire";
  EXPECT_FALSE(Fixed.Violated)
      << "post-release retire tag left a live reader past the horizon";

  // Resurrected PR 5 bug: tagging with the commit stamp re-opens the
  // window — the same schedule must now trip the oracle.
  RetireTagRun Buggy = runRetireTagSchedule(/*InjectOldBug=*/true);
  EXPECT_FALSE(Buggy.Stalled);
  EXPECT_TRUE(Buggy.SawRetire);
  EXPECT_TRUE(Buggy.Violated)
      << "schedule no longer catches the PR 5 stamp-as-retire-tag bug";

  // The failing schedule is a first-class replayable artifact: dump
  // the serialized log and make sure it reloads.
  std::string Path = tempTracePath("pr5");
  ASSERT_TRUE(Schedule::dumpTrace(Buggy.Log, Path.c_str()));
  std::vector<Event> Reloaded;
  ASSERT_TRUE(Schedule::loadTrace(Path.c_str(), Reloaded));
  EXPECT_EQ(Buggy.Log.size(), Reloaded.size());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Orec irrevocability: token drain vs. a committer parked mid-commit
//===----------------------------------------------------------------------===//

/// Regression schedule for the irrevocability token's quiescence drain:
/// a transaction turning irrevocable while another committer is parked
/// *mid-commit* (stamp minted, orecs held, epoch still pinned) must
/// wait for that committer to drain and then proceed — not deadlock,
/// and not run concurrently with it. The hand-written interleaving:
///
///   T0: Begin, Acquire(X), mint commit stamp   | parked at the stamp
///   T1: load X -> foreign orec -> abort; retry hits the abort
///       threshold (OrecIrrevocableAborts=1), takes the token, pins,
///       and parks in the drain loop (Switch hook, SerializeAux)
///   T0: finishes its commit -> releases X, unpins (quiescent)
///   T1: drain observes quiescence, runs irrevocably, commits
///
/// Before the drain-scan excluded committed-and-unpinned slots
/// correctly, this schedule wedged with T1 spinning forever; the
/// replay engine's stall detector turns that hang into a test failure.
TEST(DiagReplayTest, OrecIrrevocableDrainVsParkedCommitter) {
  stm::StmConfig Config;
  Config.Backend = stm::rt::BackendKind::Orec;
  Config.Adaptive = false;
  Config.OrecIrrevocableAborts = 1;
  Config.LockTableSizeLog2 = 16;
  stm::StmRuntime::globalInit(Config);

  alignas(64) static stm::Word X;
  alignas(64) static stm::Word Y;
  X = Y = 0;

  auto Until = [](uint32_t Tid, HookKind Kind) {
    Step St;
    St.Tid = Tid;
    St.Kind = Kind;
    St.Until = true;
    return St;
  };
  std::vector<Step> Steps;
  // T0 acquires X's orec at encounter time and parks at the
  // commit-stamp hook: locks held, epoch pinned, commit unfinished.
  Steps.push_back(Until(0, HookKind::CommitStamp));
  // T1 aborts on the foreign orec, retries over the threshold, takes
  // the token, and parks at the first drain-wait iteration.
  Steps.push_back(Until(1, HookKind::Switch));
  // T0 runs to completion (Retire never fires without pending frees:
  // this degenerates to "finish the thread") — releasing X and
  // unpinning its slot.
  Steps.push_back(Until(0, HookKind::Retire));
  // Steps exhausted: the round-robin tail drains T1 out of the wait
  // loop and through its irrevocable run.

  Schedule &Sched = Schedule::instance();
  Schedule::ReplayOptions Opts;
  Opts.TimeoutMs = 60000;
  Opts.ExpectedThreads = 2;
  Sched.startReplay(Steps, Opts);

  repro::TxStats T1Stats;
  std::vector<std::thread> Threads;
  Threads.emplace_back([&] { // T0: the parked committer
    Schedule::ScopedThread Bind(0);
    stm::ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    stm::atomically(Tx, [&](auto &T) { T.store(&X, 1); });
  });
  Threads.emplace_back([&] { // T1: the escalating transaction
    Schedule::ScopedThread Bind(1);
    stm::ThreadScope<repro_test::Rt> Scope;
    auto &Tx = Scope.tx();
    stm::atomically(Tx, [&](auto &T) {
      stm::Word Seen = T.load(&X);
      T.store(&Y, Seen + 1);
    });
    T1Stats = Tx.stats();
  });
  for (std::thread &T : Threads)
    T.join();

  std::vector<Event> Log = Sched.stopReplay();
  EXPECT_FALSE(Sched.stalled())
      << "irrevocability drain deadlocked against the parked committer";
  EXPECT_EQ(1u, X);
  EXPECT_EQ(2u, Y) << "the irrevocable run did not serialize after T0";
  // The drain wait is observable in the log: Switch events carrying
  // the irrevocability sentinel (not a backend kind) from T1's slot.
  bool SawDrain = false;
  for (const Event &E : Log)
    SawDrain |= E.Kind == HookKind::Switch && E.Tid == 1 && E.Aux == ~0ull;
  EXPECT_TRUE(SawDrain)
      << "schedule never parked T1 in the irrevocability drain";
  EXPECT_GE(T1Stats.Serializations, 1u);
  EXPECT_GE(T1Stats.IrrevocableCommits, 1u);
  EXPECT_GE(T1Stats.Aborts, 1u);

  stm::StmRuntime::globalShutdown();
}

// Exonerating sweep for the heap-corruption hypothesis: enumerate every
// serialized schedule of the suspect RSTM pattern — an updater that
// frees the stripe's old payload each commit racing an invisible
// reader — under gv5, and require every schedule to stay coherent.
TEST(DiagEnumerateTest, RstmReclamationExonerationSweep) {
  stm::StmConfig Config;
  Config.Backend = stm::rt::BackendKind::Rstm;
  Config.Adaptive = false;
  Config.Clock = stm::ClockKind::Gv5;
  Config.LockTableSizeLog2 = 12;
  stm::StmRuntime::globalInit(Config);

  static stm::Word Shared;
  bool Anomalous = false;
  stm::diag::EnumStats Stats = stm::diag::enumerateSchedules(
      2, /*MaxRuns=*/512,
      [&] {
        Shared = 0;
        std::vector<void *> Blocks = {std::malloc(32), std::malloc(32)};
        runBoundThreads(2, [&](unsigned I, auto &Tx) {
          if (I == 0) {
            for (unsigned T = 0; T < 2; ++T)
              stm::atomically(Tx, [&](auto &Txn) {
                Txn.store(&Shared, Txn.load(&Shared) + 1);
                Txn.txFree(Blocks[T]);
              });
          } else {
            stm::Word Last = 0;
            for (unsigned T = 0; T < 2; ++T)
              stm::atomically(Tx, [&](auto &Txn) {
                stm::Word V = Txn.load(&Shared);
                if (V > 2 || V < Last)
                  Anomalous = true;
                Last = V;
              });
          }
        });
        if (Shared != 2)
          Anomalous = true;
      },
      /*MaxChoicePoints=*/40);

  stm::StmRuntime::globalShutdown();
  EXPECT_FALSE(Anomalous)
      << "an enumerated schedule of the free/read pattern went incoherent";
  EXPECT_GE(Stats.Runs, 4u);
}

#else // !STM_DIAG

TEST(ScheduleReplayTest, SkippedWithoutStmDiag) {
  GTEST_SKIP() << "hook-driven record/replay tests need -DSTM_DIAG=ON";
}

#endif // STM_DIAG

} // namespace
