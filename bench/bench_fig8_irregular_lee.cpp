//===- bench/bench_fig8_irregular_lee.cpp - Figure 8 ------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 8: the "irregular" Lee-TM experiment (memory board). Every
// transaction reads a shared object Oc; a fraction R in {0, 5, 20} % of
// transactions also updates it, creating read/write conflicts with all
// concurrent routing transactions. Paper shape: SwissTM degrades only
// slightly as R grows (lazy r/w detection lets readers slide past the
// writer), while TinySTM (eager r/w: readers abort on a locked Oc)
// degrades sharply and stops scaling.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

static void sweep(stm::rt::BackendKind Kind, unsigned R) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "memory-R%u", R);
  const char *Stm = stm::rt::backendName(Kind);
  for (unsigned Threads : threadSweep()) {
    RunResult Run = leeTimed<stm::StmRuntime>(rtConfig(Kind), Threads,
                                              workloads::lee::Board::Memory,
                                              /*Scale=*/0.7,
                                              /*IrregularPercent=*/R);
    Report::instance().add("fig8", Name, Stm, Threads, "seconds",
                           Run.Value);
    Report::instance().add("fig8", Name, Stm, Threads, "abort_ratio",
                           Run.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (unsigned R : {0u, 5u, 20u})
    for (stm::rt::BackendKind Kind :
         {stm::rt::BackendKind::SwissTm, stm::rt::BackendKind::TinyStm})
      sweep(Kind, R);
  Report::instance().print(
      "8", "irregular Lee-TM: SwissTM vs TinySTM, R in {0,5,20}%");
  return 0;
}
