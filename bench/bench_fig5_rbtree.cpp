//===- bench/bench_fig5_rbtree.cpp - Figure 5 -------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 5: red-black tree microbenchmark throughput (range 16384, 20 %
// updates) for the four STMs, threads 1..8. The paper's observations:
// RSTM is far slower (per-access overhead), SwissTM pays its two-lock
// overhead at one thread but overtakes TL2/TinySTM beyond ~4 threads.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

static void sweep(stm::rt::BackendKind Kind) {
  const char *Name = stm::rt::backendName(Kind);
  for (unsigned Threads : threadSweep()) {
    RunResult R = rbTreeThroughput<stm::StmRuntime>(rtConfig(Kind), Threads);
    Report::instance().add("fig5", "rbtree", Name, Threads, "tx_per_s",
                           R.Value);
    Report::instance().add("fig5", "rbtree", Name, Threads, "abort_ratio",
                           R.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds())
    sweep(Kind);
  Report::instance().print(
      "5", "red-black tree throughput, range 16384, 20% updates");
  return 0;
}
