//===- bench/bench_extra_thread_churn.cpp - reclamation overhead ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Measures the cost of epoch-based descriptor reclamation
// (src/stm/EpochManager.h) on all four backends:
//
//   * steady:  the plain red-black-tree throughput sweep — every
//     transaction now pays the epoch publish on begin (one load + one
//     store) and the quiesce on end, so comparing this series against a
//     pre-reclamation baseline isolates the hot-path overhead;
//   * churn:   the same workload while one churner continuously spawns,
//     runs and joins one-shot transactional threads, so descriptors
//     stream through the limbo list and workers share the grace-period
//     machinery with constant retirements.
//
// The paper's design argument (Section 3.3) is that lock words may point
// into descriptors precisely because descriptors are cheap to reach; the
// claim defended here is that making them safe to reclaim costs almost
// nothing on the transaction fast path.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

#include <thread>

using namespace bench;

namespace {

/// rbtree throughput with a concurrent thread churner. Mirrors
/// runThroughput, plus one extra thread that loops { attach, run one
/// transaction, detach } so worker transactions constantly overlap
/// descriptor retirements. Reports worker tx/s and the churn rate.
template <typename STM>
RunResult churnThroughput(const stm::StmConfig &Config, unsigned Threads,
                          uint64_t *ChurnsPerSec) {
  using Tree = workloads::RbTree<STM>;
  RbTreeParams Params;
  STM::globalInit(Config);
  RunResult Result;
  {
    auto TreePtr = std::make_unique<Tree>();
    {
      stm::ThreadScope<STM> Scope;
      auto &Tx = Scope.tx();
      for (uint64_t K = 0; K < Params.Range; K += 2)
        stm::atomically(Tx, [&](auto &T) { TreePtr->insert(T, K, K); });
    }
    std::atomic<bool> Stop{false};
    std::atomic<bool> Go{false};
    std::vector<uint64_t> Ops(Threads, 0);
    std::vector<std::thread> Workers;
    for (unsigned I = 0; I < Threads; ++I) {
      Workers.emplace_back([&, I] {
        stm::ThreadScope<STM> Scope;
        auto &Tx = Scope.tx();
        repro::Xorshift Rng(repro::testSeed(I * 7727 + 13));
        unsigned GoSpin = 0;
        while (!Go.load(std::memory_order_acquire))
          repro::spinWait(GoSpin);
        uint64_t Count = 0;
        while (!Stop.load(std::memory_order_relaxed)) {
          uint64_t Key = Rng.nextBounded(Params.Range);
          unsigned P = static_cast<unsigned>(Rng.nextBounded(100));
          if (P < Params.UpdatePercent / 2)
            stm::atomically(Tx, [&](auto &X) { TreePtr->insert(X, Key, Key); });
          else if (P < Params.UpdatePercent)
            stm::atomically(Tx, [&](auto &X) { TreePtr->remove(X, Key); });
          else
            stm::atomically(Tx, [&](auto &X) { TreePtr->lookup(X, Key); });
          ++Count;
        }
        Ops[I] = Count;
      });
    }
    uint64_t Churns = 0;
    std::thread Churner([&] {
      repro::Xorshift Rng(repro::testSeed(999));
      unsigned GoSpin = 0;
      while (!Go.load(std::memory_order_acquire))
        repro::spinWait(GoSpin);
      while (!Stop.load(std::memory_order_relaxed)) {
        std::thread([&] {
          stm::ThreadScope<STM> Scope;
          auto &Tx = Scope.tx();
          uint64_t Key = Rng.nextBounded(Params.Range);
          stm::atomically(Tx, [&](auto &T) { TreePtr->lookup(T, Key); });
        }).join();
        ++Churns;
      }
    });
    repro::Stopwatch Watch;
    Go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(benchMillis()));
    Stop.store(true, std::memory_order_relaxed);
    for (std::thread &W : Workers)
      W.join();
    Churner.join();
    double Seconds = Watch.elapsedSeconds();
    uint64_t Total = 0;
    for (uint64_t N : Ops)
      Total += N;
    Result.Value = static_cast<double>(Total) / Seconds;
    *ChurnsPerSec = static_cast<uint64_t>(Churns / Seconds);
  }
  STM::globalShutdown();
  return Result;
}

void sweep(stm::rt::BackendKind Kind) {
  stm::StmConfig Config = rtConfig(Kind);
  const char *Name = stm::rt::backendName(Kind);
  for (unsigned Threads : threadSweep()) {
    double Steady = rbTreeThroughput<stm::StmRuntime>(Config, Threads).Value;
    Report::instance().add("extra-thread-churn", "rbtree-steady", Name,
                           Threads, "tx_per_s", Steady);
    uint64_t ChurnsPerSec = 0;
    double Churned =
        churnThroughput<stm::StmRuntime>(Config, Threads, &ChurnsPerSec)
            .Value;
    Report::instance().add("extra-thread-churn", "rbtree-churn", Name,
                           Threads, "tx_per_s", Churned);
    Report::instance().add("extra-thread-churn", "rbtree-churn", Name,
                           Threads, "thread_churns_per_s",
                           static_cast<double>(ChurnsPerSec));
  }
}

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds())
    sweep(Kind);
  Report::instance().print(
      "extra",
      "epoch-based descriptor reclamation: steady vs thread-churn rbtree");
  return 0;
}
