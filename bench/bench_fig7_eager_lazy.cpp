//===- bench/bench_fig7_eager_lazy.cpp - Figure 7 ---------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 7: pure eager vs pure lazy conflict detection on the
// read-dominated STMBench7 workload: TinySTM (eager), RSTM eager, RSTM
// lazy, TL2 (lazy). Paper shape: eager beats lazy, with the RSTM pair
// isolating the acquire policy from the rest of the implementation.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  using stm::rt::BackendKind;
  for (unsigned Threads : threadSweep()) {
    stm::StmConfig EagerCfg;
    EagerCfg.Cm = stm::CmKind::Polka;
    EagerCfg.RstmEagerAcquire = true;
    RunResult Eager = bench7Throughput<stm::StmRuntime>(
        rtConfig(BackendKind::Rstm, EagerCfg), Threads,
        Workload7::ReadDominated);
    Report::instance().add("fig7", "read-dominated", "rstm-eager", Threads,
                           "tx_per_s", Eager.Value);

    stm::StmConfig LazyCfg = EagerCfg;
    LazyCfg.RstmEagerAcquire = false;
    RunResult Lazy = bench7Throughput<stm::StmRuntime>(
        rtConfig(BackendKind::Rstm, LazyCfg), Threads,
        Workload7::ReadDominated);
    Report::instance().add("fig7", "read-dominated", "rstm-lazy", Threads,
                           "tx_per_s", Lazy.Value);

    stm::StmConfig Default;
    RunResult Tiny = bench7Throughput<stm::StmRuntime>(
        rtConfig(BackendKind::TinyStm, Default), Threads,
        Workload7::ReadDominated);
    Report::instance().add("fig7", "read-dominated", "tinystm-eager",
                           Threads, "tx_per_s", Tiny.Value);

    RunResult Tl2 = bench7Throughput<stm::StmRuntime>(
        rtConfig(BackendKind::Tl2, Default), Threads,
        Workload7::ReadDominated);
    Report::instance().add("fig7", "read-dominated", "tl2-lazy", Threads,
                           "tx_per_s", Tl2.Value);
  }
  Report::instance().print(
      "7", "eager vs lazy conflict detection, STMBench7 read-dominated");
  return 0;
}
