//===- workloads/stamp/Labyrinth.h - STAMP labyrinth ------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's labyrinth uses the same routing algorithm as Lee-TM (the paper
// notes this explicitly in Section 2.2); the difference is the input: a
// dense random maze rather than a real circuit board. This adapter
// reuses the transactional Lee router with a labyrinth-style random
// board generator.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_LABYRINTH_H
#define WORKLOADS_STAMP_LABYRINTH_H

#include "support/Random.h"
#include "workloads/leetm/LeeRouter.h"

#include <cstdint>
#include <vector>

namespace workloads::stamp {

struct LabyrinthConfig {
  unsigned Width = 64;
  unsigned Height = 64;
  unsigned Paths = 48;
};

/// Generates the deterministic labyrinth job list: random endpoint
/// pairs across the whole grid (denser and more crossing-prone than the
/// Lee-TM boards).
inline std::vector<lee::RouteJob>
labyrinthJobs(const LabyrinthConfig &Cfg, uint64_t Seed = 0x1ab1ull) {
  repro::Xorshift Rng(Seed);
  std::vector<lee::RouteJob> Jobs;
  for (unsigned I = 0; I < Cfg.Paths; ++I) {
    unsigned SX = 1 + static_cast<unsigned>(Rng.nextBounded(Cfg.Width - 2));
    unsigned SY = 1 + static_cast<unsigned>(Rng.nextBounded(Cfg.Height - 2));
    unsigned TX = 1 + static_cast<unsigned>(Rng.nextBounded(Cfg.Width - 2));
    unsigned TY = 1 + static_cast<unsigned>(Rng.nextBounded(Cfg.Height - 2));
    if (SX == TX && SY == TY)
      continue;
    Jobs.push_back(lee::RouteJob{SX, SY, TX, TY, I + 1});
  }
  return Jobs;
}

/// The labyrinth workload is LeeRouter over labyrinthJobs.
template <typename STM> using Labyrinth = lee::LeeRouter<STM>;

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_LABYRINTH_H
