//===- tests/Bench7Test.cpp - STMBench7-lite tests -------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/stmbench7/Bench7.h"

#include <gtest/gtest.h>

using namespace stm;
using namespace workloads::sb7;
using repro_test::runThreads;

namespace {

Bench7Config smallConfig() {
  Bench7Config Cfg;
  Cfg.AssemblyDepth = 3;
  Cfg.AssemblyBranch = 2;
  Cfg.CompositeLibrary = 12;
  Cfg.AtomicsPerComposite = 8;
  return Cfg;
}

template <typename STM> class Bench7Test : public ::testing::Test {
protected:
  void SetUp() override {
    StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    STM::globalInit(Config);
  }
  void TearDown() override { STM::globalShutdown(); }
};

TYPED_TEST_SUITE(Bench7Test, repro_test::AllStms);

TYPED_TEST(Bench7Test, BuildSatisfiesInvariants) {
  Bench7<TypeParam> B(smallConfig());
  EXPECT_EQ(B.compositeCount(), 12u);
  EXPECT_EQ(B.baseAssemblyCount(), 8u); // branch^depth = 2^3 leaves
  EXPECT_EQ(B.totalAtomicParts(), 12u * 8u);
  EXPECT_TRUE(B.verify());
}

TYPED_TEST(Bench7Test, EveryOperationRunsAndPreservesInvariants) {
  Bench7<TypeParam> B(smallConfig());
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(5));
    for (unsigned K = 0; K < NumOps; ++K)
      for (int Rep = 0; Rep < 5; ++Rep)
        B.runOp(Tx, Rng, static_cast<Op7>(K));
  });
  EXPECT_TRUE(B.verify());
}

TYPED_TEST(Bench7Test, StructuralAddGrowsRingAndIndex) {
  Bench7<TypeParam> B(smallConfig());
  uint64_t Before = B.totalAtomicParts();
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(9));
    for (int I = 0; I < 10; ++I)
      B.runOp(Tx, Rng, Op7::StructuralAdd);
  });
  EXPECT_EQ(B.totalAtomicParts(), Before + 10);
  EXPECT_TRUE(B.verify());
}

TYPED_TEST(Bench7Test, StructuralRemoveShrinksRingAndIndex) {
  Bench7<TypeParam> B(smallConfig());
  uint64_t Before = B.totalAtomicParts();
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(11));
    for (int I = 0; I < 10; ++I)
      B.runOp(Tx, Rng, Op7::StructuralRemove);
  });
  EXPECT_LT(B.totalAtomicParts(), Before);
  EXPECT_TRUE(B.verify());
}

TYPED_TEST(Bench7Test, MixedWorkloadsConcurrent) {
  Bench7<TypeParam> B(smallConfig());
  for (Workload7 W : {Workload7::ReadDominated, Workload7::ReadWrite,
                      Workload7::WriteDominated}) {
    runThreads<TypeParam>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id * 131 + static_cast<unsigned>(W)));
      for (int I = 0; I < 150; ++I)
        B.runOperation(Tx, Rng, W);
    });
    ASSERT_TRUE(B.verify()) << "invariants broken after "
                            << workload7Name(W);
  }
}

TYPED_TEST(Bench7Test, LongTraversalCountsAllParts) {
  Bench7<TypeParam> B(smallConfig());
  // A long update traversal touches every base assembly; afterwards the
  // structure is still consistent and the count is stable.
  runThreads<TypeParam>(2, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id + 77));
    for (int I = 0; I < 5; ++I)
      B.runOp(Tx, Rng, Op7::LongUpdate);
  });
  EXPECT_TRUE(B.verify());
}

} // namespace
