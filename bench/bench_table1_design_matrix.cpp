//===- bench/bench_table1_design_matrix.cpp - Table 1 ------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Table 1: effectiveness of STM design-choice combinations on mixed
// workloads. Each row of the paper's table maps to a concrete
// configuration here; the printed score is throughput on the STMBench7
// read-write workload at the top thread count (the "mixed workload"
// regime the table summarizes), plus the red-black tree as the
// short-transaction sanity check.
//
//   lazy  invisible any        -> RSTM lazy/invisible/timid
//   eager visible   any        -> RSTM eager/visible/timid
//   eager invisible Polka      -> RSTM eager/invisible/Polka
//   eager invisible timid      -> TinySTM (native eager+invisible+timid)
//   eager invisible Greedy     -> RSTM eager/invisible/Greedy
//   mixed invisible timid      -> SwissTM with timid CM
//   mixed invisible Greedy     -> SwissTM with Greedy CM
//   mixed invisible two-phase  -> SwissTM (the paper's design)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::sb7::Workload7;

namespace {

template <typename STM>
void row(const char *Name, const stm::StmConfig &Config) {
  unsigned Threads = maxThreads();
  double Mixed =
      bench7Throughput<STM>(Config, Threads, Workload7::ReadWrite).Value;
  double Short = rbTreeThroughput<STM>(Config, Threads).Value;
  Report::instance().add("table1", "stmbench7-read-write", Name, Threads,
                         "tx_per_s", Mixed);
  Report::instance().add("table1", "rbtree", Name, Threads, "tx_per_s",
                         Short);
}

} // namespace

int main() {
  stm::StmConfig C;

  C.Cm = stm::CmKind::Timid;
  C.RstmEagerAcquire = false;
  C.RstmVisibleReads = false;
  row<stm::Rstm>("lazy-invisible-timid", C);

  C.RstmEagerAcquire = true;
  C.RstmVisibleReads = true;
  row<stm::Rstm>("eager-visible-timid", C);

  C.RstmVisibleReads = false;
  C.Cm = stm::CmKind::Polka;
  row<stm::Rstm>("eager-invisible-polka", C);

  stm::StmConfig Default;
  row<stm::TinyStm>("eager-invisible-timid", Default);

  C.Cm = stm::CmKind::Greedy;
  row<stm::Rstm>("eager-invisible-greedy", C);

  stm::StmConfig Swiss;
  Swiss.Cm = stm::CmKind::Timid;
  row<stm::SwissTm>("mixed-invisible-timid", Swiss);
  Swiss.Cm = stm::CmKind::Greedy;
  row<stm::SwissTm>("mixed-invisible-greedy", Swiss);
  Swiss.Cm = stm::CmKind::TwoPhase;
  row<stm::SwissTm>("mixed-invisible-two-phase", Swiss);

  Report::instance().print(
      "table1", "design-choice matrix: acquire x reads x CM");
  return 0;
}
