//===- stm/Word.h - transactional word type and helpers --------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// All four STMs in this repository are word-based: the unit of
// transactional access is one machine word ("memory word m" in the
// paper). This header defines the word type and the address arithmetic
// shared by every lock-table and log implementation.
//
//===----------------------------------------------------------------------===//

#ifndef STM_WORD_H
#define STM_WORD_H

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace stm {

/// One transactional memory word. 64-bit on every platform we target.
using Word = uintptr_t;

inline constexpr unsigned WordSizeLog2 = 3;
inline constexpr unsigned WordSize = 1u << WordSizeLog2; // 8 bytes

static_assert(sizeof(Word) == WordSize, "this port assumes 64-bit words");

/// Rounds \p Addr down to its containing word boundary.
inline Word *alignToWord(void *Addr) {
  return reinterpret_cast<Word *>(reinterpret_cast<uintptr_t>(Addr) &
                                  ~static_cast<uintptr_t>(WordSize - 1));
}

inline const Word *alignToWord(const void *Addr) {
  return alignToWord(const_cast<void *>(Addr));
}

/// True if \p Addr is word-aligned.
inline bool isWordAligned(const void *Addr) {
  return (reinterpret_cast<uintptr_t>(Addr) & (WordSize - 1)) == 0;
}

/// Reinterprets a word-sized trivially copyable value as a Word.
template <typename T> Word toWord(T Value) {
  static_assert(std::is_trivially_copyable_v<T>, "need a POD value");
  static_assert(sizeof(T) <= sizeof(Word), "value wider than a word");
  Word W = 0;
  std::memcpy(&W, &Value, sizeof(T));
  return W;
}

/// Inverse of toWord.
template <typename T> T fromWord(Word W) {
  static_assert(std::is_trivially_copyable_v<T>, "need a POD value");
  static_assert(sizeof(T) <= sizeof(Word), "value wider than a word");
  T Value;
  std::memcpy(&Value, &W, sizeof(T));
  return Value;
}

} // namespace stm

#endif // STM_WORD_H
