//===- tests/PublicApiTest.cpp - stm::Runtime facade tests ------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Behavioural coverage of the public entry point (stm/Runtime.h):
// construction/destruction cycles, lazy thread attachment through
// atomically(runtime, fn), attachment reclamation across runtime
// generations, stats plumbing, and the TxBatch admission path the
// serving workload uses.
//
// Runs over every runtime mode (fixed backends + adaptive) via the
// usual STM_BACKEND / STM_ADAPTIVE narrowing.
//
//===----------------------------------------------------------------------===//

#include "tests/TestHarness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using repro_test::RtMode;

class PublicApiTest : public ::testing::TestWithParam<RtMode> {
protected:
  /// The config a test's Runtime is built from: suite mode + STM_CLOCK,
  /// small lock table to keep the test process light.
  stm::StmConfig config() const {
    stm::StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    Config.Backend = GetParam().Kind;
    Config.Adaptive = GetParam().Adaptive;
    Config.Clock = repro_test::envClockKind();
    return Config;
  }
};

TEST_P(PublicApiTest, SingleThreadCounter) {
  stm::Runtime Runtime(config());
  alignas(8) stm::Word Counter = 0;
  for (int I = 0; I < 100; ++I)
    stm::atomically(Runtime, [&](stm::Runtime::Tx &T) {
      T.store(&Counter, T.load(&Counter) + 1);
    });
  EXPECT_EQ(Counter, 100u);
  EXPECT_GE(Runtime.threadTx().stats().Commits, 100u);
}

TEST_P(PublicApiTest, NameMatchesMode) {
  stm::Runtime Runtime(config());
  if (GetParam().Adaptive)
    EXPECT_STREQ(Runtime.name(), "adaptive");
  else
    EXPECT_STREQ(Runtime.name(), stm::rt::backendName(GetParam().Kind));
}

TEST_P(PublicApiTest, ThreadsAttachLazily) {
  stm::Runtime Runtime(config());
  constexpr unsigned NumThreads = 4;
  constexpr unsigned Increments = 2000;
  alignas(8) stm::Word Counter = 0;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      // No ThreadScope, no registration call: the first atomically()
      // attaches this thread.
      for (unsigned K = 0; K < Increments; ++K)
        stm::atomically(Runtime, [&](stm::Runtime::Tx &T) {
          T.store(&Counter, T.load(&Counter) + 1);
        });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, NumThreads * Increments);
}

TEST_P(PublicApiTest, SequentialRuntimeGenerations) {
  // Destroying one Runtime and constructing the next must recycle
  // cleanly, including the main thread's cached attachment.
  for (int Gen = 0; Gen < 3; ++Gen) {
    stm::Runtime Runtime(config());
    alignas(8) stm::Word Cell = 0;
    stm::atomically(Runtime, [&](stm::Runtime::Tx &T) {
      T.store(&Cell, stm::Word(Gen + 1));
    });
    EXPECT_EQ(Cell, stm::Word(Gen + 1));
  }
}

TEST_P(PublicApiTest, ThreadExitDetachesAndSlotIsReusable) {
  stm::Runtime Runtime(config());
  alignas(8) stm::Word Cell = 0;
  // Many short-lived threads, serially: each must attach, run, and
  // release its slot on exit (64 slots total — 100 serial threads
  // overflow the registry unless detach works).
  for (int I = 0; I < 100; ++I) {
    std::thread([&] {
      stm::atomically(Runtime, [&](stm::Runtime::Tx &T) {
        T.store(&Cell, T.load(&Cell) + 1);
      });
    }).join();
  }
  EXPECT_EQ(Cell, 100u);
}

TEST_P(PublicApiTest, BatchAdmission) {
  stm::Runtime Runtime(config());
  alignas(8) stm::Word Counter = 0;
  stm::Runtime::Tx &Tx = Runtime.threadTx();
  {
    stm::rt::TxBatch Batch(Tx);
    for (int I = 0; I < 50; ++I)
      stm::atomically(Tx, [&](stm::Runtime::Tx &T) {
        T.store(&Counter, T.load(&Counter) + 1);
      });
  }
  EXPECT_EQ(Counter, 50u);
  repro::TxStats Stats = Tx.stats();
  EXPECT_GE(Stats.Commits, 50u);
  if (GetParam().Adaptive) {
    // Dynamic mode declines the batch pin (it would deadlock the
    // switch drain), so no batch may be counted.
    EXPECT_EQ(Stats.Batches, 0u);
  } else {
    EXPECT_EQ(Stats.Batches, 1u);
  }
}

TEST_P(PublicApiTest, BatchesConflictDetectionStillWorks) {
  // Two threads batching increments on one cell: atomicity must hold
  // inside batches exactly as outside.
  stm::Runtime Runtime(config());
  constexpr unsigned PerThread = 4000;
  alignas(8) stm::Word Counter = 0;
  std::vector<std::thread> Threads;
  for (int W = 0; W < 2; ++W)
    Threads.emplace_back([&] {
      stm::Runtime::Tx &Tx = Runtime.threadTx();
      for (unsigned I = 0; I < PerThread; I += 100) {
        stm::rt::TxBatch Batch(Tx);
        for (unsigned K = 0; K < 100; ++K)
          stm::atomically(Tx, [&](stm::Runtime::Tx &T) {
            T.store(&Counter, T.load(&Counter) + 1);
          });
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 2 * PerThread);
}

STM_INSTANTIATE_RUNTIME_SUITE(PublicApiTest);

} // namespace
