//===- tests/StmUnitTest.cpp - STM substrate unit tests --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Unit tests for the shared STM substrate: the lock-table mapping of
// Figure 1, global clocks, pointer-stable logs, the lazy-write-set map,
// transactional memory management and the word/field helpers.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/RetiredPool.h"
#include "stm/StableLog.h"
#include "stm/TxMemory.h"
#include "stm/Word.h"
#include "stm/WriteMap.h"
#include "stm/core/Clock.h"
#include "stm/core/LockTable.h"
#include "stm/core/VersionedLock.h"
#include "stm/rstm/Rstm.h"
#include "stm/swisstm/SwissTm.h"
#include "stm/tinystm/TinyStm.h"
#include "stm/tl2/Tl2.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace stm;

namespace {

//===----------------------------------------------------------------------===//
// Word helpers
//===----------------------------------------------------------------------===//

TEST(WordTest, AlignmentHelpers) {
  alignas(8) unsigned char Buf[16] = {};
  EXPECT_TRUE(isWordAligned(Buf));
  EXPECT_FALSE(isWordAligned(Buf + 1));
  EXPECT_EQ(alignToWord(Buf + 3), reinterpret_cast<Word *>(Buf));
  EXPECT_EQ(alignToWord(Buf + 8), reinterpret_cast<Word *>(Buf + 8));
}

TEST(WordTest, ToFromWordRoundTrip) {
  EXPECT_EQ(fromWord<double>(toWord(2.5)), 2.5);
  EXPECT_EQ(fromWord<int32_t>(toWord(int32_t{-7})), -7);
  EXPECT_EQ(fromWord<uint8_t>(toWord(uint8_t{255})), 255);
  float F = 1.25f;
  EXPECT_EQ(fromWord<float>(toWord(F)), F);
}

//===----------------------------------------------------------------------===//
// Lock table (Figure 1)
//===----------------------------------------------------------------------===//

struct DummyEntry {
  std::uint64_t Tag = 0;
};

class LockTableGranularity : public ::testing::TestWithParam<unsigned> {};

TEST_P(LockTableGranularity, StripeNeighborsShareEntry) {
  unsigned Gran = GetParam();
  LockTable<DummyEntry> Table;
  Table.init(/*SizeLog2=*/10, Gran);
  alignas(4096) static unsigned char Arena[8192];
  uint64_t Stripe = uint64_t(1) << Gran;
  // All bytes inside one stripe map to the same entry...
  for (uint64_t Base = 0; Base + Stripe <= sizeof(Arena); Base += Stripe) {
    uint64_t First = Table.indexFor(Arena + Base);
    for (uint64_t Off = 1; Off < Stripe; ++Off)
      ASSERT_EQ(Table.indexFor(Arena + Base + Off), First);
  }
  // ...and adjacent stripes map to different entries (no collision for
  // adjacent addresses while the table is big enough).
  for (uint64_t Base = 0; Base + 2 * Stripe <= sizeof(Arena); Base += Stripe)
    ASSERT_NE(Table.indexFor(Arena + Base),
              Table.indexFor(Arena + Base + Stripe));
  Table.destroy();
}

INSTANTIATE_TEST_SUITE_P(AllGranularities, LockTableGranularity,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(LockTableTest, IndexStaysInRange) {
  LockTable<DummyEntry> Table;
  Table.init(6, 4);
  repro::Xorshift Rng(repro::testSeed(3));
  for (int I = 0; I < 10000; ++I) {
    auto Addr = reinterpret_cast<const void *>(Rng.next());
    EXPECT_LT(Table.indexFor(Addr), Table.size());
  }
  Table.destroy();
}

TEST(LockTableTest, SizeAndStripeBytes) {
  LockTable<DummyEntry> Table;
  Table.init(8, 5);
  EXPECT_EQ(Table.size(), 256u);
  EXPECT_EQ(Table.stripeBytes(), 32u);
  EXPECT_TRUE(Table.isInitialized());
  Table.destroy();
  EXPECT_FALSE(Table.isInitialized());
}

//===----------------------------------------------------------------------===//
// Clocks
//===----------------------------------------------------------------------===//

TEST(ClockTest, IncrementAndGetIsSequential) {
  GlobalClock Clock;
  EXPECT_EQ(Clock.load(), 0u);
  EXPECT_EQ(Clock.incrementAndGet(), 1u);
  EXPECT_EQ(Clock.incrementAndGet(), 2u);
  EXPECT_EQ(Clock.load(), 2u);
  Clock.reset();
  EXPECT_EQ(Clock.load(), 0u);
}

TEST(ClockTest, ClockKindNamesAndParseRoundTrip) {
  EXPECT_STREQ(clockKindName(ClockKind::Gv1), "gv1");
  EXPECT_STREQ(clockKindName(ClockKind::Gv4), "gv4");
  EXPECT_STREQ(clockKindName(ClockKind::Gv5), "gv5");
  for (ClockKind Kind : {ClockKind::Gv1, ClockKind::Gv4, ClockKind::Gv5}) {
    ClockKind Out = ClockKind::Gv1;
    EXPECT_TRUE(parseClockKind(clockKindName(Kind), Out));
    EXPECT_EQ(Out, Kind);
  }
  ClockKind Out = ClockKind::Gv1;
  EXPECT_FALSE(parseClockKind("gv2", Out));
  EXPECT_FALSE(parseClockKind("", Out));
}

TEST(ClockTest, Gv1StampsAreUniqueFreshAndOwned) {
  GlobalClock Clock;
  Clock.reset(ClockKind::Gv1);
  CommitStamp S1 = Clock.commitStamp();
  CommitStamp S2 = Clock.commitStamp();
  EXPECT_EQ(S1.Ts, 1u);
  EXPECT_TRUE(S1.Owned);
  EXPECT_EQ(S2.Ts, 2u);
  EXPECT_TRUE(S2.Owned);
  EXPECT_EQ(Clock.load(), 2u);
}

TEST(ClockTest, Gv4UncontendedStampsMatchGv1) {
  GlobalClock Clock;
  Clock.reset(ClockKind::Gv4);
  // Without a concurrent winner the CAS succeeds: same unique, owned
  // sequence as gv1 (which is why gv4 cannot regress at one thread).
  for (uint64_t I = 1; I <= 4; ++I) {
    CommitStamp S = Clock.commitStamp();
    EXPECT_EQ(S.Ts, I);
    EXPECT_TRUE(S.Owned);
  }
  EXPECT_EQ(Clock.load(), 4u);
}

TEST(ClockTest, Gv4ContendedLosersAdoptAWinnersStamp) {
  GlobalClock Clock;
  Clock.reset(ClockKind::Gv4);
  constexpr unsigned Threads = 8, PerThread = 2000;
  std::vector<std::vector<CommitStamp>> Seen(Threads);
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([&, I] {
      for (unsigned K = 0; K < PerThread; ++K)
        Seen[I].push_back(Clock.commitStamp());
    });
  for (auto &W : Workers)
    W.join();

  // Owned stamps are exactly the clock's value sequence: unique, and
  // their count is the final clock value. Every adopted stamp names a
  // timestamp some winner owned (pass-on-failure), never a fresh one.
  std::set<uint64_t> OwnedTs;
  std::vector<uint64_t> Adopted;
  for (auto &V : Seen)
    for (const CommitStamp &S : V) {
      EXPECT_GE(S.Ts, 1u);
      if (S.Owned)
        EXPECT_TRUE(OwnedTs.insert(S.Ts).second)
            << "two owned stamps shared timestamp " << S.Ts;
      else
        Adopted.push_back(S.Ts);
    }
  EXPECT_EQ(OwnedTs.size(), Clock.load());
  for (uint64_t Ts : Adopted)
    EXPECT_TRUE(OwnedTs.count(Ts)) << "adopted orphan timestamp " << Ts;
}

TEST(ClockTest, Gv5CommitDefersReadersAdvance) {
  GlobalClock Clock;
  Clock.reset(ClockKind::Gv5);
  // Commits publish ts+1 without touching the counter...
  CommitStamp S1 = Clock.commitStamp();
  EXPECT_EQ(S1.Ts, 1u);
  EXPECT_FALSE(S1.Owned);
  EXPECT_EQ(Clock.load(), 0u);
  CommitStamp S2 = Clock.commitStamp();
  EXPECT_EQ(S2.Ts, 1u) << "deferred stamps may repeat";
  // ...readers drag it forward on a validation miss...
  EXPECT_EQ(Clock.observe(/*Seen=*/1), 1u);
  EXPECT_EQ(Clock.load(), 1u);
  EXPECT_EQ(Clock.commitStamp().Ts, 2u);
  // ...and a stamp must dominate the versions it re-releases, so
  // per-stripe versions stay strictly monotone despite the lag.
  EXPECT_EQ(Clock.commitStamp(/*MaxOverwritten=*/9).Ts, 10u);
  // The abort-path hook advances too (TL2 has no extension).
  Clock.noteStaleRead(12);
  EXPECT_EQ(Clock.load(), 12u);
}

TEST(ClockTest, AdvanceToIsMonotoneMax) {
  GlobalClock Clock;
  Clock.reset(ClockKind::Gv5);
  EXPECT_EQ(Clock.advanceTo(5), 5u);
  EXPECT_EQ(Clock.advanceTo(3), 5u) << "advanceTo must never move back";
  EXPECT_EQ(Clock.load(), 5u);
  // gv1/gv4 observe is a plain sample (their clock never lags a
  // released version); only gv5 folds Seen in.
  GlobalClock G1;
  G1.reset(ClockKind::Gv1);
  EXPECT_EQ(G1.observe(100), 0u);
  G1.reset(ClockKind::Gv4);
  EXPECT_EQ(G1.observe(100), 0u);
}

/// RSTM validates by equality and never calls observe(), so under gv5
/// its commits must publish their stamps to the counter themselves —
/// otherwise every transaction publishes start-ts 0 forever and the
/// timestamp-quiescence reclaimers (TxMemory/RetiredPool) can never
/// free a retired block while the thread lives.
TEST(ClockTest, RstmGv5CommitsPublishStampsForReclamation) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.Clock = ClockKind::Gv5;
  Rstm::globalInit(Config);
  {
    ThreadScope<Rstm> Scope;
    auto &Tx = Scope.tx();
    alignas(64) static Word X;
    X = 0;
    constexpr unsigned Commits = 10;
    for (unsigned I = 0; I < Commits; ++I)
      atomically(Tx, [](auto &T) { T.store(&X, T.load(&X) + 1); });
    EXPECT_GE(Rstm::globals().CommitCounter.load(), uint64_t(Commits))
        << "gv5 update commits left the counter behind — the "
        << "reclamation horizon would never advance";
  }
  Rstm::globalShutdown();
}

TEST(ClockTest, ConcurrentIncrementsAreUnique) {
  GlobalClock Clock;
  constexpr unsigned Threads = 8, PerThread = 2000;
  std::vector<std::vector<uint64_t>> Seen(Threads);
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([&, I] {
      for (unsigned K = 0; K < PerThread; ++K)
        Seen[I].push_back(Clock.incrementAndGet());
    });
  for (auto &W : Workers)
    W.join();
  std::set<uint64_t> All;
  for (auto &V : Seen)
    All.insert(V.begin(), V.end());
  EXPECT_EQ(All.size(), Threads * PerThread);
  EXPECT_EQ(*All.rbegin(), Threads * PerThread);
}

//===----------------------------------------------------------------------===//
// StableLog
//===----------------------------------------------------------------------===//

TEST(StableLogTest, AddressesStableAcrossGrowth) {
  StableLog<int, 4> Log; // tiny chunks force many allocations
  std::vector<int *> Ptrs;
  for (int I = 0; I < 100; ++I)
    Ptrs.push_back(Log.push(I));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(*Ptrs[I], I) << "entry moved during growth";
  EXPECT_EQ(Log.size(), 100u);
}

TEST(StableLogTest, ClearKeepsCapacityAndResets) {
  StableLog<int, 8> Log;
  for (int I = 0; I < 20; ++I)
    Log.push(I);
  Log.clear();
  EXPECT_TRUE(Log.empty());
  int *P = Log.push(42);
  EXPECT_EQ(*P, 42);
  EXPECT_EQ(Log.size(), 1u);
}

TEST(StableLogTest, PopBackWithdrawsLastEntry) {
  StableLog<int, 8> Log;
  Log.push(1);
  Log.push(2);
  Log.popBack();
  EXPECT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0], 1);
}

TEST(StableLogTest, ForEachVisitsInsertionOrder) {
  StableLog<int, 4> Log;
  for (int I = 0; I < 10; ++I)
    Log.push(I);
  int Expect = 0;
  Log.forEach([&](int V) { EXPECT_EQ(V, Expect++); });
  EXPECT_EQ(Expect, 10);
  Log.forEachReverse([&](int V) { EXPECT_EQ(V, --Expect); });
}

//===----------------------------------------------------------------------===//
// WriteMap
//===----------------------------------------------------------------------===//

TEST(WriteMapTest, InsertLookupOverwrite) {
  WriteMap Map;
  alignas(8) Word Cells[8] = {};
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
  Map.insert(&Cells[0], 7);
  EXPECT_EQ(Map.lookup(&Cells[0]), 7u);
  Map.insert(&Cells[0], 9);
  EXPECT_EQ(Map.lookup(&Cells[0]), 9u);
  EXPECT_EQ(Map.size(), 1u);
}

TEST(WriteMapTest, ClearThenReuse) {
  // Regression test: clear() must reset slots to the empty (null-key)
  // state; a bad fill pattern once made every post-clear lookup spin.
  WriteMap Map;
  alignas(8) Word Cells[4] = {};
  Map.insert(&Cells[0], 1);
  Map.clear();
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
  Map.insert(&Cells[1], 2); // must terminate and work after clear
  EXPECT_EQ(Map.lookup(&Cells[1]), 2u);
  EXPECT_EQ(Map.lookup(&Cells[0]), ~0u);
}

TEST(WriteMapTest, GrowsPastInitialCapacity) {
  WriteMap Map;
  std::vector<Word> Cells(4096, 0);
  for (uint32_t I = 0; I < 4096; ++I)
    Map.insert(&Cells[I], I);
  EXPECT_EQ(Map.size(), 4096u);
  for (uint32_t I = 0; I < 4096; ++I)
    ASSERT_EQ(Map.lookup(&Cells[I]), I);
}

TEST(WriteMapTest, OverwritesNeverTriggerRehash) {
  // Regression test: the load-factor check used to run before probing,
  // so overwriting an existing key counted as a new insertion and a map
  // sitting exactly at the growth threshold rehashed spuriously on
  // every overwrite. Capacity must be a function of distinct keys only.
  WriteMap Map;
  const std::size_t InitialCapacity = Map.capacity();
  // Fill to one genuine insertion below the 3/4 growth threshold.
  const std::size_t AtThreshold = (InitialCapacity * 3) / 4 - 1;
  std::vector<Word> Cells(AtThreshold + 1, 0);
  for (uint32_t I = 0; I < AtThreshold; ++I)
    Map.insert(&Cells[I], I);
  ASSERT_EQ(Map.capacity(), InitialCapacity)
      << "grew before the load factor was reached";
  // Overwrite every present key repeatedly: size and capacity stable.
  for (int Round = 0; Round < 10; ++Round)
    for (uint32_t I = 0; I < AtThreshold; ++I)
      Map.insert(&Cells[I], I + 1000 * Round);
  EXPECT_EQ(Map.capacity(), InitialCapacity)
      << "overwrites were counted as insertions";
  EXPECT_EQ(Map.size(), AtThreshold);
  // The next genuine insertion crosses the threshold and grows once,
  // preserving every entry.
  Map.insert(&Cells[AtThreshold], 7);
  EXPECT_GT(Map.capacity(), InitialCapacity);
  EXPECT_EQ(Map.size(), AtThreshold + 1);
  EXPECT_EQ(Map.lookup(&Cells[AtThreshold]), 7u);
  for (uint32_t I = 0; I < AtThreshold; ++I)
    ASSERT_EQ(Map.lookup(&Cells[I]), I + 9000);
}

TEST(WriteMapTest, BloomNegativeFastPath) {
  WriteMap Map;
  alignas(8) Word A = 0;
  EXPECT_FALSE(Map.mayContain(&A));
  Map.insert(&A, 1);
  EXPECT_TRUE(Map.mayContain(&A));
}

//===----------------------------------------------------------------------===//
// TxMemory + RetiredPool (quiescence-based reclamation)
//===----------------------------------------------------------------------===//

TEST(TxMemoryTest, AbortFreesAllocations) {
  TxMemory Mem;
  void *P = Mem.txMalloc(64);
  EXPECT_NE(P, nullptr);
  Mem.onAbort(); // must free P (checked under ASan); no crash here
}

TEST(TxMemoryTest, CommitRetiresFreesAndHonorsHorizon) {
  unsigned Slot = repro::ThreadRegistry::acquireSlot();
  TxMemory Mem;
  void *P = std::malloc(32);
  Mem.txFree(P);
  // A transaction "older" than the retirement blocks reclamation.
  repro::ThreadRegistry::publishStart(Slot, 5);
  Mem.onCommit(/*CommitTs=*/10);
  EXPECT_EQ(Mem.retiredCount(), 1u);
  EXPECT_EQ(Mem.collect(), 0u) << "active tx at ts 5 blocks block@10";
  // Once the old transaction finishes and a newer one starts, the
  // horizon passes the retirement timestamp.
  repro::ThreadRegistry::publishStart(Slot, 11);
  EXPECT_EQ(Mem.collect(), 1u);
  EXPECT_EQ(Mem.retiredCount(), 0u);
  repro::ThreadRegistry::publishIdle(Slot);
  repro::ThreadRegistry::releaseSlot(Slot);
}

TEST(TxMemoryTest, AbortForgetsDeferredFrees) {
  TxMemory Mem;
  void *P = std::malloc(16);
  Mem.txFree(P);
  Mem.onAbort();
  EXPECT_EQ(Mem.retiredCount(), 0u) << "aborted tx must not free";
  std::free(P); // still ours
}

TEST(RetiredPoolTest, CollectRespectsHorizon) {
  unsigned Slot = repro::ThreadRegistry::acquireSlot();
  RetiredPool &Pool = RetiredPool::instance();
  Pool.releaseAll();
  Pool.add(std::malloc(8), /*RetireTs=*/100);
  repro::ThreadRegistry::publishStart(Slot, 50);
  EXPECT_EQ(Pool.collect(), 0u);
  EXPECT_EQ(Pool.size(), 1u);
  repro::ThreadRegistry::publishStart(Slot, 200);
  EXPECT_EQ(Pool.collect(), 1u);
  EXPECT_EQ(Pool.size(), 0u);
  repro::ThreadRegistry::publishIdle(Slot);
  repro::ThreadRegistry::releaseSlot(Slot);
}

//===----------------------------------------------------------------------===//
// Lock-word encodings
//===----------------------------------------------------------------------===//

TEST(SwissLockTest, RLockEncoding) {
  using namespace stm::swiss;
  EXPECT_FALSE(rlockIsLocked(rlockMake(0)));
  EXPECT_FALSE(rlockIsLocked(rlockMake(123456)));
  EXPECT_TRUE(rlockIsLocked(RLockLocked));
  EXPECT_EQ(rlockVersion(rlockMake(987)), 987u);
}

TEST(Tl2LockTest, VersionedLockEncoding) {
  using namespace stm::tl2;
  EXPECT_FALSE(vlockIsLocked(vlockMake(0)));
  EXPECT_FALSE(vlockIsLocked(vlockMake(42)));
  EXPECT_EQ(vlockVersion(vlockMake(42)), 42u);
  alignas(8) int Dummy;
  Word Locked = reinterpret_cast<Word>(&Dummy) | 1;
  EXPECT_TRUE(vlockIsLocked(Locked));
}

TEST(TinyLockTest, EntryPointerRoundTrip) {
  using namespace stm::tiny;
  alignas(8) StripeWrite Entry;
  Word Locked = reinterpret_cast<Word>(&Entry) | 1;
  EXPECT_TRUE(vlockIsLocked(Locked));
  EXPECT_EQ(vlockEntry(Locked), &Entry);
}

/// Version-field wrap boundary: the largest representable version must
/// round-trip exactly through every encoding in use (1 tag bit for
/// SwissTM/TL2/TinySTM, 2 for RSTM) — one bit of silent truncation
/// would alias a fresh commit timestamp onto an ancient version and let
/// stale reads pass validation.
TEST(VersionedLockBoundaryTest, MaxVersionRoundTripsPerTagWidth) {
  using Ops1 = core::VersionedLockOps<1>;
  using Ops2 = core::VersionedLockOps<2>;
  static_assert(Ops1::MaxVersion == (~Word(0) >> 1));
  static_assert(Ops2::MaxVersion == (~Word(0) >> 2));
  for (uint64_t V : {uint64_t(0), Ops1::MaxVersion - 1, Ops1::MaxVersion}) {
    Word W = Ops1::make(V);
    EXPECT_FALSE(Ops1::isLocked(W));
    EXPECT_EQ(Ops1::version(W), V);
  }
  for (uint64_t V : {uint64_t(0), Ops2::MaxVersion - 1, Ops2::MaxVersion}) {
    Word W = Ops2::make(V);
    EXPECT_FALSE(Ops2::isLocked(W));
    EXPECT_EQ(Ops2::version(W), V);
  }
  // One past the boundary differs from the aliased encoding it would
  // silently collapse onto — the case the guard below aborts on.
  EXPECT_NE(Ops1::MaxVersion + 1, Ops1::version(Ops1::make(0)) + 1);
}

/// A clock value exceeding the representable version range must abort
/// loudly in every build mode, never alias.
TEST(VersionedLockDeathTest, OverflowingVersionAbortsLoudly) {
  using Ops1 = core::VersionedLockOps<1>;
  using Ops2 = core::VersionedLockOps<2>;
  EXPECT_DEATH((void)Ops1::make(Ops1::MaxVersion + 1),
               "exceeds the 63-bit version field");
  EXPECT_DEATH((void)Ops2::make(Ops2::MaxVersion + 1),
               "exceeds the 62-bit version field");
  EXPECT_DEATH((void)Ops1::make(~uint64_t(0)), "version field");
}

TEST(ConfigTest, CmKindNamesStable) {
  EXPECT_STREQ(cmKindName(CmKind::TwoPhase), "two-phase");
  EXPECT_STREQ(cmKindName(CmKind::Timid), "timid");
  EXPECT_STREQ(cmKindName(CmKind::Greedy), "greedy");
  EXPECT_STREQ(cmKindName(CmKind::Serializer), "serializer");
  EXPECT_STREQ(cmKindName(CmKind::Polka), "polka");
}

} // namespace
