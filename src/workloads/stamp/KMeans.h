//===- workloads/stamp/KMeans.h - STAMP kmeans ------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's kmeans: iterative K-means clustering where each thread assigns
// a chunk of points to the nearest center (thread-private reads) and
// transactionally accumulates the per-cluster coordinate sums and
// membership counts -- the contended step. STAMP's high/low contention
// variants differ in the number of clusters (fewer clusters => hotter
// accumulators); kmeans-high uses K=4, kmeans-low K=16 here.
//
// Input is a seeded synthetic mixture of K well-separated Gaussians, so
// correctness is testable: converged centers must land near the true
// ones and memberships must sum to N.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_KMEANS_H
#define WORKLOADS_STAMP_KMEANS_H

#include "stm/Stm.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace workloads::stamp {

struct KMeansConfig {
  unsigned Points = 2048;
  unsigned Dims = 4;
  unsigned Clusters = 4; // 4 = high contention, 16 = low contention
  unsigned Iterations = 8;
  double Spread = 0.05; ///< intra-cluster noise vs unit cluster spacing
};

/// One K-means instance. Usage per iteration:
///   1. every thread: assignChunk(tx, begin, end)   (transactional)
///   2. one thread:   finishIteration()             (sequential)
/// and finally centersNearTruth() / membershipTotal() for validation.
template <typename STM> class KMeans {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  explicit KMeans(const KMeansConfig &Config, uint64_t Seed = 0x6b6d65616e73ull)
      : Cfg(Config) {
    generate(Seed);
    // Initial centers: first point of each true cluster, slightly off.
    Centers.assign(static_cast<std::size_t>(Cfg.Clusters) * Cfg.Dims, 0.0);
    for (unsigned C = 0; C < Cfg.Clusters; ++C)
      for (unsigned D = 0; D < Cfg.Dims; ++D)
        Centers[C * Cfg.Dims + D] = Truth[C * Cfg.Dims + D] + 0.3;
    SumCells.assign(Centers.size(), 0);
    CountCells.assign(Cfg.Clusters, 0);
  }

  unsigned pointCount() const { return Cfg.Points; }
  unsigned clusterCount() const { return Cfg.Clusters; }

  /// Phase 1 (parallel): assign points [Begin, End) to their nearest
  /// center and transactionally add them into the accumulator cells.
  void assignChunk(Tx &T, unsigned Begin, unsigned End) {
    for (unsigned P = Begin; P < End; ++P) {
      unsigned Best = nearestCenter(&Data[P * Cfg.Dims]);
      Membership[P] = Best;
      stm::atomically(T, [&](Tx &X) {
        for (unsigned D = 0; D < Cfg.Dims; ++D) {
          double Cur = stm::fromWord<double>(
              X.load(&SumCells[Best * Cfg.Dims + D]));
          X.store(&SumCells[Best * Cfg.Dims + D],
                  stm::toWord(Cur + Data[P * Cfg.Dims + D]));
        }
        X.store(&CountCells[Best], X.load(&CountCells[Best]) + 1);
      });
    }
  }

  /// Phase 2 (sequential): fold the accumulators into new centers.
  void finishIteration() {
    for (unsigned C = 0; C < Cfg.Clusters; ++C) {
      uint64_t N = CountCells[C];
      if (N == 0)
        continue;
      for (unsigned D = 0; D < Cfg.Dims; ++D) {
        double Sum = stm::fromWord<double>(SumCells[C * Cfg.Dims + D]);
        Centers[C * Cfg.Dims + D] = Sum / static_cast<double>(N);
      }
    }
    std::fill(SumCells.begin(), SumCells.end(), 0);
    std::fill(CountCells.begin(), CountCells.end(), 0);
  }

  /// Validation: sum of per-cluster memberships must equal N. Call
  /// between assignChunk completion and finishIteration.
  uint64_t membershipTotal() const {
    uint64_t N = 0;
    for (uint64_t C : CountCells)
      N += C;
    return N;
  }

  /// Validation: every converged center is within \p Tol of some true
  /// cluster mean (clusters are unit-spaced, noise is Cfg.Spread).
  bool centersNearTruth(double Tol = 0.2) const {
    for (unsigned C = 0; C < Cfg.Clusters; ++C) {
      double BestDist = 1e100;
      for (unsigned G = 0; G < Cfg.Clusters; ++G) {
        double Dist = 0;
        for (unsigned D = 0; D < Cfg.Dims; ++D) {
          double Diff =
              Centers[C * Cfg.Dims + D] - Truth[G * Cfg.Dims + D];
          Dist += Diff * Diff;
        }
        BestDist = std::min(BestDist, Dist);
      }
      if (std::sqrt(BestDist) > Tol)
        return false;
    }
    return true;
  }

  const std::vector<double> &centers() const { return Centers; }

private:
  unsigned nearestCenter(const double *Point) const {
    unsigned Best = 0;
    double BestDist = 1e100;
    for (unsigned C = 0; C < Cfg.Clusters; ++C) {
      double Dist = 0;
      for (unsigned D = 0; D < Cfg.Dims; ++D) {
        double Diff = Point[D] - Centers[C * Cfg.Dims + D];
        Dist += Diff * Diff;
      }
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = C;
      }
    }
    return Best;
  }

  void generate(uint64_t Seed) {
    repro::Xorshift Rng(Seed);
    Truth.assign(static_cast<std::size_t>(Cfg.Clusters) * Cfg.Dims, 0.0);
    for (unsigned C = 0; C < Cfg.Clusters; ++C)
      for (unsigned D = 0; D < Cfg.Dims; ++D)
        Truth[C * Cfg.Dims + D] =
            static_cast<double>((C >> (D % 4)) & 1 ? C + 1 : -(double)C - 1);
    Data.assign(static_cast<std::size_t>(Cfg.Points) * Cfg.Dims, 0.0);
    Membership.assign(Cfg.Points, 0);
    for (unsigned P = 0; P < Cfg.Points; ++P) {
      unsigned C = P % Cfg.Clusters;
      for (unsigned D = 0; D < Cfg.Dims; ++D)
        Data[P * Cfg.Dims + D] =
            Truth[C * Cfg.Dims + D] +
            (Rng.nextDouble() - 0.5) * 2.0 * Cfg.Spread;
    }
  }

  KMeansConfig Cfg;
  std::vector<double> Truth;   ///< generating cluster means
  std::vector<double> Data;    ///< points, row-major
  std::vector<double> Centers; ///< current centers (sequential phase)
  std::vector<unsigned> Membership;
  // Transactional accumulators (doubles bit-cast into words).
  std::vector<Word> SumCells;
  std::vector<Word> CountCells;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_KMEANS_H
