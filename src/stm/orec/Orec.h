//===- stm/orec/Orec.h - eager orec/undo-log STM ----------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The classic rival of the paper's redo-log designs: encounter-time
// (eager) write locking with *in-place* speculative writes and a per-tx
// undo log (stm/UndoLog.h). A store acquires the stripe's orec first,
// saves the pre-image, then writes memory directly; commit only stamps
// and releases the orecs — there is no write-back loop — while abort
// restores the pre-images newest-first and re-releases the orecs at
// their pre-acquisition versions. Reads are invisible and time-validated
// (core::TimeValidation), write/write conflicts go through the unified
// two-phase contention manager, and readers hitting a foreign-owned
// stripe abort themselves (their reads are invisible to the owner).
//
// Lock encoding (one tag bit, core/VersionedLock.h):
//
//   version << 1        when free,
//   OwnedStripe* | 1    while a writer owns the stripe (from first
//                       write until its commit or abort; a SharedArena
//                       slot handle instead in multi-process mode).
//
// Irrevocability: a transaction that keeps aborting (StmConfig::
// OrecIrrevocableAborts) or allocates heavily (OrecIrrevocableAllocs)
// serializes itself instead of retrying optimistically. It takes the
// single global token (OrecGlobals::IrrevocableTok), then drains every
// *other* slot through EpochManager quiescence — the same barrier
// protocol as the adaptive runtime's backend switch — while fresh
// transactions park at the token gate before pinning. Once alone it
// cannot experience an STM-induced abort (no conflicts exist), so its
// in-place writes are final; an explicit user restart() still works,
// because the undo log is kept regardless. The adaptive policy in
// runtime/StmRuntime uses this as its last escalation rung: serialize
// the pathological transaction rather than switching whole backends.
//
//
// INTERNAL HEADER — deprecated as an application include. The public
// surface is stm/Stm.h (stm::Runtime + stm::atomically); select this
// backend at runtime via StmConfig::Backend / STM_BACKEND instead of
// including it directly. Direct includes outside src/stm/ and tests
// of backend internals are scheduled for removal.
//===----------------------------------------------------------------------===//

#ifndef STM_OREC_OREC_H
#define STM_OREC_OREC_H

#include "stm/Config.h"
#include "stm/RacyAccess.h"
#include "stm/StableLog.h"
#include "stm/TxBase.h"
#include "stm/UndoLog.h"
#include "stm/core/Clock.h"
#include "stm/core/ContentionManager.h"
#include "stm/core/LockTable.h"
#include "stm/core/SharedArena.h"
#include "stm/core/Validation.h"
#include "stm/core/VersionedLock.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace stm::orec {

class OrecTx;

struct OLock;

/// Per-stripe entry of a transaction's lock set; the orec points here
/// while owned. There is no buffered-value chain — values live in
/// memory, pre-images in the undo log.
struct OwnedStripe {
  std::atomic<OrecTx *> Owner{nullptr};
  OLock *Lock = nullptr;
  Word OldLock = 0; ///< lock word (version) observed at acquisition
  /// The lock word this entry installs: the entry's tagged address in
  /// private mode, a SharedArena handle in multi-process mode. Release
  /// and rollback compare against it, so both modes share one path.
  Word Self = 0;

  OwnedStripe() = default;
  OwnedStripe(const OwnedStripe &O)
      : Owner(O.Owner.load(std::memory_order_relaxed)), Lock(O.Lock),
        OldLock(O.OldLock), Self(O.Self) {}
  OwnedStripe &operator=(const OwnedStripe &O) {
    Owner.store(O.Owner.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Lock = O.Lock;
    OldLock = O.OldLock;
    Self = O.Self;
    return *this;
  }
};

struct OLock {
  std::atomic<Word> L{0};
};

/// Lock encoding: one tag bit (see core/VersionedLock.h).
using OLockOps = core::VersionedLockOps<1>;
inline bool olockIsLocked(Word V) { return OLockOps::isLocked(V); }
inline uint64_t olockVersion(Word V) { return OLockOps::version(V); }
inline Word olockMake(uint64_t Version) { return OLockOps::make(Version); }
inline OwnedStripe *olockEntry(Word V) {
  return OLockOps::pointer<OwnedStripe>(V);
}

struct OrecGlobals {
  core::LockTable<OLock> Table;
  GlobalClock Clock;    ///< commit-ts, advances under StmConfig::Clock
  GlobalClock GreedyTs; ///< CM time base, always unique increments
  StmConfig Config;
  /// The single irrevocability token, placed by SharedArena (the shm
  /// segment header in multi-process mode, a process-local fallback
  /// word otherwise): slot+1 of the irrevocable transaction, 0 when
  /// free. Published with seq_cst (it is one side of a Dekker handshake
  /// with TxBase::baseStart's pin fence). Slot-encoded rather than a
  /// descriptor pointer so a crashed holder's token can be released by
  /// a surviving peer process (SharedArena::recoverSlot).
  std::atomic<Word> *IrrevocableTok = nullptr;
  /// Cached SharedArena::sharedActive(): orecs carry slot handles
  /// instead of descriptor pointers. Set once in globalInit.
  bool SharedWords = false;
};

OrecGlobals &orecGlobals();

/// One read-log entry.
struct ReadEntry {
  OLock *Lock;
  Word Seen; ///< lock word as read (free, version<<1)
};

/// Eager orec transaction descriptor.
class OrecTx : public TxBase, public core::TimeValidation<OrecTx> {
public:
  explicit OrecTx(unsigned Slot) : TxBase(Slot) {}

  void onStart();
  Word load(const Word *Addr);
  void store(Word *Addr, Word Value);
  void commit();
  [[noreturn]] void restart() { rollback(); }

  /// Shadows TxBase::txMalloc (the runtime's type-erased thunk and the
  /// templated API both call through the concrete type): an allocation
  /// burst is the second irrevocability trigger.
  void *txMalloc(std::size_t Size);

  /// Shadows TxBase::txFree for the same reason: a deferred free is a
  /// transactional-allocator event too, so free-heavy transactions
  /// (container erase loops) reach the trigger without a single
  /// explicit noteAllocation call.
  void txFree(void *Ptr);

  /// Counts one transactional-allocator event toward the
  /// OrecIrrevocableAllocs trigger and escalates to irrevocable
  /// mid-transaction when the threshold is reached. txMalloc/txFree
  /// route through here automatically; explicit calls remain available
  /// for allocation-like work the TxMemory layer does not see.
  void noteAllocation();

  /// Two-phase CM victim interface.
  const core::ContentionManager<core::TwoPhaseMode::Native> &cm() const {
    return Cm;
  }

  bool irrevocable() const { return Irrevocable; }

private:
  friend class core::TimeValidation<OrecTx>;

  [[noreturn]] void rollback();
  bool validateReadSet();

  /// Resolves a held orec word to this transaction's lock-set entry, or
  /// null when another transaction owns it. Private mode dereferences
  /// the tagged pointer; multi-process mode decodes the handle (remote
  /// descriptors must never be dereferenced).
  OwnedStripe *ownedEntry(Word V);

  void checkKill() {
    // An irrevocable transaction's in-place writes are final; it wins
    // every conflict by fiat, so a CM kill request is ignored.
    if (!Irrevocable && killRequested())
      rollback();
  }
  void acquireTokenBlocking();
  void becomeIrrevocableMidTx();
  void drainOthers();
  void releaseIrrevocable();

  core::ContentionManager<core::TwoPhaseMode::Native> Cm;
  std::vector<ReadEntry> ReadLog;
  StableLog<OwnedStripe> Owned;
  UndoLog Undo;
  unsigned WordWriteCount = 0;
  uint64_t AttemptAllocs = 0;
  bool Irrevocable = false;
};

/// STM facade.
class OrecStm {
public:
  using Tx = OrecTx;

  static constexpr const char *name() { return "orec"; }

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();
  static OrecGlobals &globals() { return orecGlobals(); }
};

} // namespace stm::orec

namespace stm {
using OrecStm = orec::OrecStm;
} // namespace stm

#endif // STM_OREC_OREC_H
