//===- support/Random.h - fast seedable PRNG ---------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Benchmarks and back-off logic need a very cheap thread-local generator;
// std::mt19937_64 is too heavy for per-access decisions, so we use
// xorshift128+ (Vigna). Deterministic given a seed, which keeps workload
// generation reproducible across runs.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RANDOM_H
#define SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace repro {

/// Base seed shared by every test and benchmark RNG stream: the
/// STM_TEST_SEED environment variable when set (decimal or 0x-hex), a
/// fixed default otherwise. Runs are fully deterministic for a given
/// seed; the gtest harness prints the value on failure so flaky runs
/// can be replayed with STM_TEST_SEED=<seed>.
inline uint64_t testSeedBase() {
  static const uint64_t Base = [] {
    if (const char *Env = std::getenv("STM_TEST_SEED"))
      return static_cast<uint64_t>(std::strtoull(Env, nullptr, 0));
    return uint64_t{0x51AB1E5EEDull};
  }();
  return Base;
}

/// Seed for one named RNG stream (thread id, workload salt, ...). Mixes
/// the stream id into the base seed so distinct streams stay
/// decorrelated while all remaining controlled by STM_TEST_SEED.
inline uint64_t testSeed(uint64_t Stream = 0) {
  return testSeedBase() ^ (0x9e3779b97f4a7c15ull * (Stream + 1));
}

/// xorshift128+ pseudo-random generator. Not cryptographic; period 2^128-1.
class Xorshift {
public:
  explicit Xorshift(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using splitmix64 so that
  /// similar seeds still yield uncorrelated streams.
  void reseed(uint64_t Seed) {
    S0 = splitmix(Seed);
    S1 = splitmix(Seed);
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  uint64_t nextRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBounded(Hi - Lo + 1);
  }

  /// Returns true with probability \p Percent / 100.
  bool nextPercent(unsigned Percent) { return nextBounded(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / (1ull << 53));
  }

private:
  static uint64_t splitmix(uint64_t &State) {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  uint64_t S0 = 0;
  uint64_t S1 = 0;
};

} // namespace repro

#endif // SUPPORT_RANDOM_H
