//===- tests/PrivatizationTest.cpp - quiescence privatization tests --------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Tests the Section 6 future-work extension: with
// StmConfig::PrivatizationSafe, a committing update transaction blocks
// until every in-flight transaction has validated past its commit
// timestamp, making unlink-then-use-privately patterns safe.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace stm;
using repro_test::runThreads;

namespace {

TEST(PrivatizationTest, CommitBlocksOnOlderInFlightTransaction) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.PrivatizationSafe = true;
  SwissTm::globalInit(Config);
  {
    // Occupy a registry slot that looks like a long-running transaction
    // started at timestamp 0.
    unsigned Slot = repro::ThreadRegistry::acquireSlot();
    repro::ThreadRegistry::publishStart(Slot, 0);

    alignas(8) static Word Cell;
    Cell = 0;
    std::atomic<bool> Committed{false};
    std::thread Writer([&] {
      ThreadScope<SwissTm> Scope;
      auto &Tx = Scope.tx();
      atomically(Tx, [&](auto &T) { T.store(&Cell, 1); });
      Committed.store(true);
    });

    // The writer must stay blocked in its quiescence wait while the
    // stale transaction is alive.
    for (int I = 0; I < 50 && !Committed.load(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(Committed.load())
        << "commit returned despite an in-flight older transaction";

    // Release the stale transaction: the writer must now finish.
    repro::ThreadRegistry::publishIdle(Slot);
    Writer.join();
    EXPECT_TRUE(Committed.load());
    EXPECT_EQ(Cell, 1u);
    repro::ThreadRegistry::releaseSlot(Slot);
  }
  SwissTm::globalShutdown();
}

TEST(PrivatizationTest, ReadOnlyCommitsNeverBlock) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.PrivatizationSafe = true;
  SwissTm::globalInit(Config);
  {
    unsigned Slot = repro::ThreadRegistry::acquireSlot();
    repro::ThreadRegistry::publishStart(Slot, 0); // stale forever
    alignas(8) static Word Cell;
    Cell = 7;
    std::atomic<bool> Done{false};
    std::thread Reader([&] {
      ThreadScope<SwissTm> Scope;
      auto &Tx = Scope.tx();
      atomically(Tx, [&](auto &T) { (void)T.load(&Cell); });
      Done.store(true);
    });
    Reader.join();
    EXPECT_TRUE(Done.load()) << "read-only commit must not quiesce";
    repro::ThreadRegistry::publishIdle(Slot);
    repro::ThreadRegistry::releaseSlot(Slot);
  }
  SwissTm::globalShutdown();
}

TEST(PrivatizationTest, PrivatizedNodeSafeToUseNonTransactionally) {
  // The end-to-end pattern: unlink a node transactionally, then mutate
  // it without the STM while readers keep traversing. With quiescence
  // on, no reader can still hold a path to the node once the unlink
  // commit returns.
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.PrivatizationSafe = true;
  SwissTm::globalInit(Config);
  {
    struct Node {
      Word Value;
      Word Next; // Node*
    };
    // List: Head -> A -> B; readers sum values; writer unlinks A and
    // then scribbles on it non-transactionally.
    static Node B{2, 0};
    static Node A{1, reinterpret_cast<Word>(&B)};
    alignas(8) static Word Head;
    Head = reinterpret_cast<Word>(&A);

    std::atomic<bool> Stop{false};
    std::atomic<bool> BadSum{false};
    runThreads<SwissTm>(3, [&](unsigned Id, auto &Tx) {
      if (Id == 0) {
        // Writer: unlink A, then use it privately.
        atomically(Tx, [&](auto &T) {
          T.store(&Head, T.load(&A.Next)); // Head -> B
        });
        // Quiescence has passed: A is private now.
        A.Value = 0xdeadbeef; // non-transactional use
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Stop.store(true);
      } else {
        while (!Stop.load()) {
          uint64_t Sum = 0;
          uint64_t *SumPtr = &Sum;
          atomically(Tx, [&, SumPtr](auto &T) {
            *SumPtr = 0;
            auto *N = reinterpret_cast<Node *>(T.load(&Head));
            while (N != nullptr) {
              *SumPtr += T.load(&N->Value);
              N = reinterpret_cast<Node *>(T.load(&N->Next));
            }
          });
          // Valid sums: 3 (before unlink) or 2 (after). Seeing the
          // scribbled value means a reader reached the privatized node.
          if (Sum != 3 && Sum != 2)
            BadSum.store(true);
        }
      }
    });
    EXPECT_FALSE(BadSum.load())
        << "a reader observed the privatized node's private mutation";
  }
  SwissTm::globalShutdown();
}

} // namespace
