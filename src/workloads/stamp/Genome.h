//===- workloads/stamp/Genome.h - STAMP genome ------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's genome: gene sequencing by segment overlap. A synthetic genome
// (alphabet of 8 symbols) is cut into every substring of length S; the
// segment pool contains duplicates. The pipeline:
//
//   Phase 1 (parallel): deduplicate segments into a transactional hash
//            set.
//   Phase 2 (parallel): index unique segments by their (S-1)-prefix and
//            transactionally link each segment to its overlap successor.
//   Phase 3 (sequential): walk the chain from the unique head segment
//            and rebuild the genome.
//
// The generator enforces that every (S-1)-mer of the genome is unique,
// so the reconstruction is exact and testable: rebuilt == original.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_GENOME_H
#define WORKLOADS_STAMP_GENOME_H

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/containers/TxHashMap.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace workloads::stamp {

struct GenomeConfig {
  unsigned GenomeLength = 1024;
  unsigned SegmentLength = 16; ///< <= 21 so a segment packs into 63 bits
  unsigned DuplicationFactor = 3;
};

template <typename STM> class Genome {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  /// One unique segment in the overlap graph.
  struct Segment {
    Word Packed;  ///< 3 bits per symbol
    Word Next;    ///< Segment* (overlap successor)
    Word HasPred; ///< some segment links to this one
  };

  explicit Genome(const GenomeConfig &Config, uint64_t Seed = 0x6e0337ull)
      : Cfg(Config), Dedup(12), PrefixIndex(12), NextPool(0), NextLink(0) {
    generate(Seed);
  }

  Genome(const Genome &) = delete;
  Genome &operator=(const Genome &) = delete;

  const std::string &original() const { return Truth; }
  std::size_t poolSize() const { return Pool.size(); }
  std::size_t uniqueCount() const { return Segments.size(); }

  /// Phase 1 worker: claim pool entries and insert them into the
  /// dedup set. Returns how many inserts were fresh.
  uint64_t dedupWorker(Tx &T) {
    uint64_t Fresh = 0;
    while (true) {
      std::size_t Idx = NextPool.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= Pool.size())
        break;
      uint64_t Key = Pool[Idx];
      bool Inserted = false;
      bool *InsertedPtr = &Inserted;
      stm::atomically(T, [&, InsertedPtr](Tx &X) {
        *InsertedPtr = Dedup.insert(X, Key, Key);
      });
      Fresh += Inserted;
    }
    return Fresh;
  }

  /// Between phases: materialize the unique-segment array from the
  /// dedup set (quiesced, sequential).
  void buildSegmentArray() {
    Segments.clear();
    Dedup.forEachRaw([this](uint64_t Key, Word) {
      Segments.push_back(Segment{Key, 0, 0});
    });
  }

  /// Phase 2a worker: index unique segments by (S-1)-prefix.
  void indexWorker(Tx &T) {
    while (true) {
      std::size_t Idx = NextLink.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= Segments.size())
        break;
      Segment *S = &Segments[Idx];
      uint64_t Prefix = prefixOf(S->Packed);
      stm::atomically(T, [&](Tx &X) {
        PrefixIndex.insert(X, Prefix, reinterpret_cast<Word>(S));
      });
    }
  }

  /// Resets the claim counter between phases 2a and 2b.
  void resetClaims() { NextLink.store(0, std::memory_order_relaxed); }

  /// Phase 2b worker: link each segment to the segment whose prefix
  /// matches its suffix.
  void linkWorker(Tx &T) {
    while (true) {
      std::size_t Idx = NextLink.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= Segments.size())
        break;
      Segment *S = &Segments[Idx];
      uint64_t Suffix = suffixOf(S->Packed);
      stm::atomically(T, [&](Tx &X) {
        Word Val = 0;
        if (!PrefixIndex.lookup(X, Suffix, &Val))
          return; // tail segment: no successor
        auto *Succ = reinterpret_cast<Segment *>(Val);
        X.store(&S->Next, Val);
        X.store(&Succ->HasPred, 1);
      });
    }
  }

  /// Phase 3 (sequential, quiesced): rebuild the genome from the chain.
  std::string reconstruct() const {
    const Segment *Head = nullptr;
    for (const Segment &S : Segments)
      if (S.HasPred == 0) {
        if (Head != nullptr)
          return {}; // more than one head: linking failed
        Head = &S;
      }
    if (Head == nullptr)
      return {};
    std::string Out = unpack(Head->Packed);
    std::size_t Steps = 0;
    for (const Segment *S = reinterpret_cast<const Segment *>(Head->Next);
         S != nullptr; S = reinterpret_cast<const Segment *>(S->Next)) {
      Out.push_back(lastSymbol(S->Packed));
      if (++Steps > Segments.size())
        return {}; // cycle: corrupted links
    }
    return Out;
  }

private:
  static constexpr unsigned BitsPerSymbol = 3;
  static constexpr char Alphabet[9] = "acgtwskm";

  // Packing places symbol 0 in the lowest bits (see pack), so the
  // (S-1)-symbol *prefix* is the low bits and the *suffix* drops the
  // first symbol by shifting.
  uint64_t prefixOf(uint64_t Packed) const {
    return Packed &
           ((uint64_t(1) << ((Cfg.SegmentLength - 1) * BitsPerSymbol)) - 1);
  }

  uint64_t suffixOf(uint64_t Packed) const {
    return Packed >> BitsPerSymbol;
  }

  char lastSymbol(uint64_t Packed) const {
    unsigned Shift = (Cfg.SegmentLength - 1) * BitsPerSymbol;
    return Alphabet[(Packed >> Shift) & 7];
  }

  uint64_t pack(const char *S) const {
    uint64_t P = 0;
    for (unsigned I = 0; I < Cfg.SegmentLength; ++I) {
      uint64_t Sym = 0;
      for (unsigned A = 0; A < 8; ++A)
        if (Alphabet[A] == S[I])
          Sym = A;
      P |= Sym << (I * BitsPerSymbol);
    }
    return P;
  }

  std::string unpack(uint64_t Packed) const {
    std::string Out;
    for (unsigned I = 0; I < Cfg.SegmentLength; ++I)
      Out.push_back(Alphabet[(Packed >> (I * BitsPerSymbol)) & 7]);
    return Out;
  }

  void generate(uint64_t Seed) {
    repro::Xorshift Rng(Seed);
    unsigned K = Cfg.SegmentLength - 1;
    // Build a genome whose every K-mer is unique (greedy with retry).
    std::vector<uint64_t> Seen;
    auto kmerSeen = [&Seen](uint64_t Kmer) {
      for (uint64_t S : Seen)
        if (S == Kmer)
          return true;
      return false;
    };
    Truth.clear();
    while (Truth.size() < Cfg.GenomeLength) {
      bool Placed = false;
      for (int Attempt = 0; Attempt < 16 && !Placed; ++Attempt) {
        char C = Alphabet[Rng.nextBounded(8)];
        Truth.push_back(C);
        if (Truth.size() < K) {
          Placed = true;
          break;
        }
        uint64_t Kmer = 0;
        for (unsigned I = 0; I < K; ++I) {
          char Sym = Truth[Truth.size() - K + I];
          uint64_t Code = 0;
          for (unsigned A = 0; A < 8; ++A)
            if (Alphabet[A] == Sym)
              Code = A;
          Kmer |= Code << (I * BitsPerSymbol);
        }
        if (kmerSeen(Kmer)) {
          Truth.pop_back();
          continue;
        }
        Seen.push_back(Kmer);
        Placed = true;
      }
      if (!Placed) {
        // Dead end (astronomically unlikely at this scale): restart.
        Truth.clear();
        Seen.clear();
      }
    }
    // Segment pool: every substring of length S, duplicated and
    // shuffled.
    std::vector<uint64_t> Uniques;
    for (std::size_t I = 0; I + Cfg.SegmentLength <= Truth.size(); ++I)
      Uniques.push_back(pack(Truth.data() + I));
    for (uint64_t U : Uniques)
      for (unsigned D = 0; D < Cfg.DuplicationFactor; ++D)
        Pool.push_back(U);
    for (std::size_t I = Pool.size(); I > 1; --I)
      std::swap(Pool[I - 1], Pool[Rng.nextBounded(I)]);
    Segments.reserve(Uniques.size());
  }

  GenomeConfig Cfg;
  std::string Truth;
  std::vector<uint64_t> Pool; ///< packed segments incl. duplicates
  std::vector<Segment> Segments;
  TxHashMap<STM> Dedup;
  TxHashMap<STM> PrefixIndex;
  std::atomic<std::size_t> NextPool;
  std::atomic<std::size_t> NextLink;
};

template <typename STM> constexpr char Genome<STM>::Alphabet[9];

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_GENOME_H
