//===- stm/core/Clock.h - global version clocks -----------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The time-based validation scheme of SwissTM, TL2 and TinySTM rests on a
// single global counter ("commit-ts" in Algorithm 1) incremented by every
// updating transaction at commit. SwissTM's second contention-management
// phase uses a second counter ("greedy-ts"), and RSTM's invisible-read
// heuristic a third ("commit counter"). All are instances of GlobalClock,
// the first policy point of the shared core: a backend's Globals struct
// declares one clock per logical time base it needs.
//
// The commit-time *advance scheme* is itself a policy (StmConfig::Clock /
// STM_CLOCK), after the GV1/GV4/GV5 family of TL2 (Dice, Shalev & Shavit,
// DISC 2006): every committing updater funnels through the clock's cache
// line, which is the known scalability ceiling of time-based STMs, and
// Algorithm 1 only requires a monotone commit-ts — not a contended one.
//
//   Gv1IncrementClock     fetch&add; every committer owns a unique, fresh
//                         timestamp (the paper's configuration, default).
//   Gv4PassOnFailureClock CAS; a committer that loses the race adopts the
//                         winner's timestamp instead of retrying. Legal
//                         because two transactions committing at the same
//                         instant hold disjoint write locks; an adopted
//                         (non-Owned) stamp must still validate the read
//                         set — only a unique CAS win proves no concurrent
//                         committer shares the timestamp.
//   Gv5DeferredClock      commit publishes ts+1 *without* touching the
//                         shared counter; readers advance it on validation
//                         miss (observe/noteStaleRead). The commit path is
//                         contention-free, at the price of mandatory
//                         commit-time validation and occasional extra
//                         extensions. Because the counter can lag behind
//                         released lock versions, a GV5 stamp must also
//                         exceed every version the commit overwrites
//                         (MaxOverwritten below) — otherwise a stripe
//                         could be re-released at an already-seen version
//                         and an equality-validated reader would miss the
//                         intervening commit (ABA on the lock word).
//   GvShard               sharded counter: one padded counter per shard,
//                         a committer publishes only to its own shard and
//                         the logical clock value is the max across
//                         shards. The commit-side scan runs over
//                         *uncontended-in-the-common-case* lines instead
//                         of RMW-ing one global line; on a multi-socket
//                         box each shard line stays in its home domain.
//                         Like GV5, the stamp must dominate overwritten
//                         versions and is never exclusively Owned (two
//                         shards can hand out the same max+1), so every
//                         update commit validates.
//
// GvShard's shard index is derived from the committer's registry slot,
// NOT from sched_getcpu(): the diag record/replay harness serializes
// execution at hook granularity and replays by thread, so a cpu-derived
// shard would make replays diverge from the recording. Slot-derived
// shards are deterministic under replay while still spreading committers
// across lines 1:1 on a machine where threads are pinned in slot order
// (the bench runner's layout).
//
// The dispatch is a runtime branch on the kind installed at reset():
// backends are compiled once and selected at runtime (stm/runtime/), so
// the clock scheme must be a value, not a template parameter.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_CLOCK_H
#define STM_CORE_CLOCK_H

#include "support/Platform.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>

namespace stm {

/// The commit-clock advance schemes (see file comment).
enum class ClockKind : unsigned char {
  Gv1,    ///< fetch&add, unique timestamps (default)
  Gv4,    ///< CAS, pass-on-failure adoption
  Gv5,    ///< deferred increment, reader-advanced
  GvShard ///< per-shard counters, vector-max snapshot
};

inline constexpr std::size_t NumClockKinds = 4;

/// Stable human-readable name; the STM_CLOCK spelling.
inline const char *clockKindName(ClockKind Kind) {
  switch (Kind) {
  case ClockKind::Gv1:
    return "gv1";
  case ClockKind::Gv4:
    return "gv4";
  case ClockKind::Gv5:
    return "gv5";
  case ClockKind::GvShard:
    return "gvshard";
  }
  return "unknown";
}

/// All clock policies, in STM_CLOCK spelling order — the single source
/// of truth for every clock grid (bench sweeps, the stress script's
/// --list-clocks, the parse loop below). A policy added here is
/// automatically part of every enumerating consumer.
inline const std::array<ClockKind, NumClockKinds> &allClockKinds() {
  static const std::array<ClockKind, NumClockKinds> Kinds = {
      ClockKind::Gv1, ClockKind::Gv4, ClockKind::Gv5, ClockKind::GvShard};
  return Kinds;
}

/// Parses a clock name as spelled by clockKindName(). Returns false on
/// unknown names (the caller owns the diagnostic).
inline bool parseClockKind(const char *Name, ClockKind &Out) {
  for (ClockKind Kind : allClockKinds()) {
    if (std::strcmp(Name, clockKindName(Kind)) == 0) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

/// A commit timestamp plus its provenance. Owned means the timestamp is
/// exclusively this committer's (a unique increment or a won CAS): only
/// then may the "nothing committed in between" validation shortcut
/// (Ts == valid-ts + 1) be applied. A shared stamp (GV4 adoption, every
/// GV5/GvShard stamp) must always revalidate — a same-timestamp peer may
/// have committed into the read set without moving the clock.
struct CommitStamp {
  uint64_t Ts;
  bool Owned;
};

namespace core {

/// CAS-max: advances \p Value to at least \p Floor and returns the
/// resulting value. The one primitive behind every reader-side /
/// fence-side clock advance.
inline uint64_t clockCasMax(std::atomic<uint64_t> &Value, uint64_t Floor) {
  uint64_t Cur = Value.load(std::memory_order_relaxed);
  while (Cur < Floor &&
         !Value.compare_exchange_weak(Cur, Floor,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
  }
  return Cur > Floor ? Cur : Floor;
}

/// GV1: unconditional fetch&add. One uncontended RMW per commit; the
/// line ping-pongs between committing cores.
struct Gv1IncrementClock {
  static CommitStamp commit(std::atomic<uint64_t> &Value,
                            uint64_t /*MaxOverwritten*/) {
    return {Value.fetch_add(1, std::memory_order_acq_rel) + 1, true};
  }
  static uint64_t observe(std::atomic<uint64_t> &Value, uint64_t /*Seen*/) {
    return Value.load(std::memory_order_acquire);
  }
};

/// GV4: one CAS attempt; the loser adopts the value that beat it (which
/// is the concurrent winner's timestamp — the failed CAS reloads it).
/// The clock never falls behind a released version, so reads validate
/// exactly as under GV1. Note the adoption leans on the RMW reading the
/// *latest* value in the modification order: formally a failed CAS is
/// just a load, but on real (multi-copy-atomic) hardware a locked RMW
/// observes the line's current value, so an adopted stamp is never
/// stale — a stale adoption below the true clock could re-release a
/// stripe at a version a concurrent reader's valid-ts already covers.
struct Gv4PassOnFailureClock {
  static CommitStamp commit(std::atomic<uint64_t> &Value,
                            uint64_t /*MaxOverwritten*/) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    if (Value.compare_exchange_strong(Cur, Cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
      return {Cur + 1, true};
    // Pass on failure: Cur was reloaded by the failed CAS and carries
    // the winner's (or a later winner's) timestamp. Adopting it is safe
    // because both hold their write locks while committing, so their
    // write sets are disjoint; it is not Owned, so the caller validates.
    return {Cur, false};
  }
  static uint64_t observe(std::atomic<uint64_t> &Value, uint64_t /*Seen*/) {
    return Value.load(std::memory_order_acquire);
  }
};

/// GV5: deferred increment. commit() only loads; the counter is dragged
/// forward by readers that trip over a too-new version. The stamp must
/// dominate every version the commit overwrites (see file comment), and
/// the caller must sample it *while holding its write locks* — the
/// quiescence-based reclamation horizon (stm/TxMemory.h) relies on the
/// retire timestamp being a clock sample no concurrent reader's
/// published start can have raced past unvalidated.
struct Gv5DeferredClock {
  static CommitStamp commit(std::atomic<uint64_t> &Value,
                            uint64_t MaxOverwritten) {
    uint64_t Base = Value.load(std::memory_order_acquire);
    if (MaxOverwritten > Base)
      Base = MaxOverwritten;
    return {Base + 1, false};
  }
  static uint64_t observe(std::atomic<uint64_t> &Value, uint64_t Seen) {
    // Drag the counter up to the version that caused the miss, then
    // hand back the freshest value for the extension to adopt.
    return clockCasMax(Value, Seen);
  }
};

} // namespace core

/// A monotonically increasing global counter, advanced by the ClockKind
/// policy installed at reset(). Under every policy but GvShard a single
/// cache-line-padded counter (shard 0) is live and the code paths are
/// byte-for-byte the pre-sharding ones; under GvShard the logical value
/// is the max over \p shards() padded per-shard counters. Auxiliary
/// time bases (greedy-ts, the CM timestamps) keep the GV1 default and
/// one shard: they need unique, totally ordered values.
class alignas(repro::CacheLineSize) GlobalClock {
public:
  /// Upper bound on shards: enough for one shard per core on the target
  /// machines while keeping the full-scan snapshot a handful of lines.
  static constexpr unsigned MaxShards = 16;

  /// Resets to zero and installs the advance policy (globalInit and
  /// tests only). \p ShardCount must be a power of two in
  /// [1, MaxShards]; it is only consulted under GvShard (every other
  /// policy runs on shard 0 alone).
  void reset(ClockKind K = ClockKind::Gv1, unsigned ShardCount = 1) {
    for (unsigned I = 0; I < MaxShards; ++I)
      S[I].V.store(0, std::memory_order_relaxed);
    Kind = K;
    NumShards = Kind == ClockKind::GvShard ? ShardCount : 1;
  }

  /// Redirects the shard counters to externally placed memory (the
  /// shared arena's clock region, MaxShards cache lines); nullptr
  /// restores the inline array. Follow with reset() (segment creator,
  /// zeroes the counters) or adopt() (attacher, binds the live values
  /// untouched). globalInit only — never while transactions run.
  void placeShards(void *Mem) {
    S = Mem != nullptr ? static_cast<ShardCounter *>(Mem) : ShardsArr.data();
  }

  /// Installs the advance policy without touching the counters: an
  /// attacher adopting a segment's live clock must not rewind peers.
  void adopt(ClockKind K, unsigned ShardCount) {
    Kind = K;
    NumShards = Kind == ClockKind::GvShard ? ShardCount : 1;
  }

  ClockKind kind() const { return Kind; }
  unsigned shards() const { return NumShards; }

  /// The shard a registry slot stamps from (identity mask; see file
  /// comment on why this is slot-derived, not cpu-derived).
  unsigned shardOf(unsigned Slot) const { return Slot & (NumShards - 1); }

  /// Current logical value: the max across live shards (a plain load of
  /// shard 0 for every non-sharded policy).
  uint64_t load() const {
    uint64_t Max = S[0].V.load(std::memory_order_acquire);
    for (unsigned I = 1; I < NumShards; ++I) {
      uint64_t V = S[I].V.load(std::memory_order_acquire);
      if (V > Max)
        Max = V;
    }
    return Max;
  }

  /// One shard's current value. The GvShard begin-path fast sample:
  /// a thread's own shard is the one line it already owns, and the
  /// cached-view machinery (core::TimeValidation) fills in the rest.
  uint64_t loadShard(unsigned Shard) const {
    return S[Shard].V.load(std::memory_order_acquire);
  }

  /// Atomically increments and returns the new value
  /// ("increment&get" in Algorithm 1, line 37) — the GV1 primitive,
  /// used directly by the clocks that are not commit-ts policies.
  uint64_t incrementAndGet() {
    return S[0].V.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Advances the caller's shard to at least \p Floor (CAS-max) and
  /// returns the resulting shard value. GV5's reader-side advance; also
  /// used by the privatization fence, which must not wait for a counter
  /// nobody else will move. Under GvShard only the slot's own shard is
  /// touched — load() takes the max, so publishing anywhere publishes
  /// globally.
  uint64_t advanceTo(uint64_t Floor, unsigned Slot = 0) {
    return core::clockCasMax(S[shardOf(Slot)].V, Floor);
  }

  /// Generates this commit's timestamp under the installed policy.
  /// \p MaxOverwritten is the largest version among the lock words the
  /// commit is about to re-release (only GV5/GvShard consume it; GV1/GV4
  /// callers may pass 0). \p Slot selects the committer's shard under
  /// GvShard. Call with all write locks held.
  CommitStamp commitStamp(uint64_t MaxOverwritten = 0, unsigned Slot = 0) {
    switch (Kind) {
    case ClockKind::Gv1:
      return core::Gv1IncrementClock::commit(S[0].V, MaxOverwritten);
    case ClockKind::Gv4:
      return core::Gv4PassOnFailureClock::commit(S[0].V,
                                                 MaxOverwritten);
    case ClockKind::Gv5:
      return core::Gv5DeferredClock::commit(S[0].V, MaxOverwritten);
    case ClockKind::GvShard:
      return shardCommit(MaxOverwritten, Slot);
    }
    return {0, false}; // unreachable
  }

  /// Samples the clock for a timestamp extension after a read observed
  /// version \p Seen. Under GV5 the sample first drags the counter up
  /// to Seen — a deferred stamp can exceed the counter, and extending
  /// to a stale sample would never cover the missed version. Under
  /// GvShard the slot's own shard is dragged to Seen first (so a
  /// restarted attempt's begin snapshot covers it), then the full max
  /// is returned. Out of line: this sits on validation-miss paths that
  /// are inlined into every backend's load(), and the four-policy
  /// switch (two of them CAS loops) is too much code to carry there.
  REPRO_NOINLINE uint64_t observe(uint64_t Seen, unsigned Slot = 0) {
    switch (Kind) {
    case ClockKind::Gv1:
      return core::Gv1IncrementClock::observe(S[0].V, Seen);
    case ClockKind::Gv4:
      return core::Gv4PassOnFailureClock::observe(S[0].V, Seen);
    case ClockKind::Gv5:
      return core::Gv5DeferredClock::observe(S[0].V, Seen);
    case ClockKind::GvShard:
      core::clockCasMax(S[shardOf(Slot)].V, Seen);
      return load();
    }
    return 0; // unreachable
  }

  /// Hook for abort-on-stale-read paths (TL2 has no extension): under
  /// GV5/GvShard the counter must still advance past the seen version,
  /// or the restarted attempt would sample the same stale value and
  /// livelock on the same read. Out of line: it sits on abort paths
  /// inlined into every backend's load(), and the CAS-max loop is dead
  /// weight there under the shared-counter policies.
  REPRO_NOINLINE void noteStaleRead(uint64_t Seen, unsigned Slot = 0) {
    if (Kind == ClockKind::Gv5 || Kind == ClockKind::GvShard)
      advanceTo(Seen, Slot);
  }

private:
  struct alignas(repro::CacheLineSize) ShardCounter {
    std::atomic<uint64_t> V{0};
  };

  /// GvShard commit: snapshot the max across shards while the caller
  /// holds its write locks, dominate the overwritten versions, and
  /// publish the stamp to the committer's own shard *before* any lock
  /// release. Publishing pre-release is safe — a reader that sees the
  /// advanced shard but stale data hits the still-locked stripes and
  /// aborts/retries — and it is what keeps the reclamation horizon
  /// sound: once a stripe is re-released at Ts, load() ≥ Ts, so no
  /// later-starting transaction can publish a start below a retired
  /// block's timestamp. The stamp is never Owned: two committers on
  /// different shards can both derive max+1. Out of line so the
  /// cross-shard scan + CAS loop stays out of the non-sharded commit
  /// paths commitStamp() inlines into.
  REPRO_NOINLINE CommitStamp shardCommit(uint64_t MaxOverwritten,
                                         unsigned Slot) {
    uint64_t Base = load();
    if (MaxOverwritten > Base)
      Base = MaxOverwritten;
    uint64_t Ts = Base + 1;
    core::clockCasMax(S[shardOf(Slot)].V, Ts);
    return {Ts, false};
  }

  std::array<ShardCounter, MaxShards> ShardsArr;
  /// Live shard storage: the inline array, or a placed segment region.
  /// Plain pointer — it only changes inside globalInit, like Kind.
  ShardCounter *S = ShardsArr.data();
  ClockKind Kind = ClockKind::Gv1;
  unsigned NumShards = 1;
};

} // namespace stm

#endif // STM_CORE_CLOCK_H
