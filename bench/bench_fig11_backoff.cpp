//===- bench/bench_fig11_backoff.cpp - Figure 11 -----------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 11: randomized linear back-off after rollback, on vs off, in
// SwissTM on STAMP's intruder (whose shared packet queue is a memory
// hot spot). Paper shape: without back-off the benchmark stops scaling
// at high thread counts; back-off restores it.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;

static void sweep(bool Backoff, const char *Name) {
  stm::StmConfig Config;
  Config.EnableRollbackBackoff = Backoff;
  for (unsigned Threads : threadSweep()) {
    RunResult R = stampIntruder<stm::StmRuntime>(
        rtConfig(stm::rt::BackendKind::SwissTm, Config), Threads);
    Report::instance().add("fig11", "intruder", Name, Threads, "seconds",
                           R.Value);
    Report::instance().add("fig11", "intruder", Name, Threads,
                           "abort_ratio", R.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  sweep(true, "linear-backoff");
  sweep(false, "no-backoff");
  Report::instance().print(
      "11", "rollback back-off on/off (SwissTM), STAMP intruder");
  return 0;
}
