//===- tests/ContainersTest.cpp - transactional container tests ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/containers/TxHashMap.h"
#include "workloads/containers/TxList.h"
#include "workloads/containers/TxQueue.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace stm;
using namespace workloads;
using repro_test::runThreads;

namespace {

/// Behavioural suite: parameterized over the runtime backends
/// (and the adaptive switcher, see TestHarness.h).
class ContainersTest : public repro_test::RuntimeSuite {};

TEST_P(ContainersTest, ListInsertLookupRemove) {
  TxList<repro_test::Rt> List;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Ok = false;
    bool *OkPtr = &Ok;
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.insert(T, 5, 50); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.insert(T, 5, 99); });
    EXPECT_FALSE(Ok);
    Word Val = 0;
    Word *ValPtr = &Val;
    atomically(Tx, [&, OkPtr, ValPtr](auto &T) {
      *OkPtr = List.lookup(T, 5, ValPtr);
    });
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Val, 50u);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.remove(T, 5); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.lookup(T, 5); });
    EXPECT_FALSE(Ok);
  });
  EXPECT_EQ(List.sizeRaw(), 0u);
}

TEST_P(ContainersTest, ListStaysSortedUnderRandomOps) {
  TxList<repro_test::Rt> List;
  std::set<uint64_t> Model;
  repro::Xorshift Rng(repro::testSeed(31));
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 1500; ++I) {
      uint64_t Key = Rng.nextBounded(64);
      if (Rng.nextPercent(50)) {
        bool Got = false;
        bool *GotPtr = &Got;
        atomically(Tx, [&, GotPtr, Key](auto &T) {
          *GotPtr = List.insert(T, Key, Key);
        });
        ASSERT_EQ(Got, Model.insert(Key).second);
      } else {
        bool Got = false;
        bool *GotPtr = &Got;
        atomically(Tx,
                   [&, GotPtr, Key](auto &T) { *GotPtr = List.remove(T, Key); });
        ASSERT_EQ(Got, Model.erase(Key) > 0);
      }
    }
  });
  EXPECT_TRUE(List.verifySorted());
  EXPECT_EQ(List.sizeRaw(), Model.size());
}

TEST_P(ContainersTest, ListUpdateChangesValue) {
  TxList<repro_test::Rt> List;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { List.insert(T, 1, 10); });
    bool Ok = false;
    bool *OkPtr = &Ok;
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.update(T, 1, 20); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.update(T, 2, 20); });
    EXPECT_FALSE(Ok);
    Word Val = 0;
    Word *ValPtr = &Val;
    atomically(Tx,
               [&, ValPtr](auto &T) { List.lookup(T, 1, ValPtr); });
    EXPECT_EQ(Val, 20u);
  });
}

TEST_P(ContainersTest, ConcurrentListInsertDisjoint) {
  TxList<repro_test::Rt> List;
  constexpr unsigned Threads = 4, PerThread = 200;
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned K = 0; K < PerThread; ++K)
      atomically(Tx, [&](auto &T) {
        List.insert(T, uint64_t(Id) * PerThread + K, K);
      });
  });
  EXPECT_EQ(List.sizeRaw(), Threads * PerThread);
  EXPECT_TRUE(List.verifySorted());
}

TEST_P(ContainersTest, HashMapMatchesStdMap) {
  TxHashMap<repro_test::Rt> Map(6);
  std::map<uint64_t, uint64_t> Model;
  repro::Xorshift Rng(repro::testSeed(77));
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 2000; ++I) {
      uint64_t Key = Rng.nextBounded(512);
      unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
      bool Got = false;
      bool *GotPtr = &Got;
      if (Kind == 0) {
        atomically(Tx, [&, GotPtr, Key](auto &T) {
          *GotPtr = Map.insert(T, Key, Key * 3);
        });
        ASSERT_EQ(Got, Model.emplace(Key, Key * 3).second);
      } else if (Kind == 1) {
        atomically(Tx,
                   [&, GotPtr, Key](auto &T) { *GotPtr = Map.remove(T, Key); });
        ASSERT_EQ(Got, Model.erase(Key) > 0);
      } else {
        Word Val = 0;
        Word *ValPtr = &Val;
        atomically(Tx, [&, GotPtr, ValPtr, Key](auto &T) {
          *GotPtr = Map.lookup(T, Key, ValPtr);
        });
        auto It = Model.find(Key);
        ASSERT_EQ(Got, It != Model.end());
        if (Got) {
          ASSERT_EQ(Val, It->second);
        }
      }
    }
  });
  EXPECT_EQ(Map.sizeRaw(), Model.size());
}

TEST_P(ContainersTest, HashMapConcurrentDisjointInserts) {
  TxHashMap<repro_test::Rt> Map(8);
  constexpr unsigned Threads = 4, PerThread = 300;
  runThreads<repro_test::Rt>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned K = 0; K < PerThread; ++K)
      atomically(Tx, [&](auto &T) {
        Map.insert(T, uint64_t(Id) * PerThread + K, Id);
      });
  });
  EXPECT_EQ(Map.sizeRaw(), Threads * PerThread);
}

TEST_P(ContainersTest, HashMapConcurrentSameKeysOneWinnerEach) {
  TxHashMap<repro_test::Rt> Map(4);
  constexpr unsigned Threads = 4;
  constexpr unsigned Keys = 100;
  std::atomic<uint64_t> Wins{0};
  runThreads<repro_test::Rt>(Threads, [&](unsigned, auto &Tx) {
    uint64_t MyWins = 0;
    for (unsigned K = 0; K < Keys; ++K) {
      bool Got = false;
      bool *GotPtr = &Got;
      atomically(Tx, [&, GotPtr, K](auto &T) {
        *GotPtr = Map.insert(T, K, K);
      });
      MyWins += Got;
    }
    Wins.fetch_add(MyWins);
  });
  EXPECT_EQ(Wins.load(), Keys) << "each key must be inserted exactly once";
  EXPECT_EQ(Map.sizeRaw(), Keys);
}

TEST_P(ContainersTest, QueueFifoOrder) {
  TxQueue<repro_test::Rt> Queue;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (Word I = 1; I <= 10; ++I)
      atomically(Tx, [&](auto &T) { Queue.enqueue(T, I); });
    for (Word I = 1; I <= 10; ++I) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      ASSERT_TRUE(Ok);
      ASSERT_EQ(Item, I);
    }
    bool Ok = true;
    bool *OkPtr = &Ok;
    Word Item;
    Word *ItemPtr = &Item;
    atomically(Tx, [&, OkPtr, ItemPtr](auto &T) {
      *OkPtr = Queue.dequeue(T, ItemPtr);
    });
    EXPECT_FALSE(Ok) << "queue must be empty";
  });
  EXPECT_EQ(Queue.sizeRaw(), 0u);
}

TEST_P(ContainersTest, QueueConcurrentDrainExactlyOnce) {
  TxQueue<repro_test::Rt> Queue;
  constexpr unsigned Items = 600;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    for (Word I = 0; I < Items; ++I)
      atomically(Tx, [&](auto &T) { Queue.enqueue(T, I + 1); });
  });
  std::atomic<uint64_t> Sum{0}, Count{0};
  runThreads<repro_test::Rt>(4, [&](unsigned, auto &Tx) {
    uint64_t MySum = 0, MyCount = 0;
    while (true) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      if (!Ok)
        break;
      MySum += Item;
      ++MyCount;
    }
    Sum.fetch_add(MySum);
    Count.fetch_add(MyCount);
  });
  EXPECT_EQ(Count.load(), Items);
  EXPECT_EQ(Sum.load(), uint64_t(Items) * (Items + 1) / 2);
}

TEST_P(ContainersTest, QueueInterleavedProducersConsumers) {
  TxQueue<repro_test::Rt> Queue;
  constexpr unsigned PerProducer = 300;
  std::atomic<uint64_t> Consumed{0};
  std::atomic<unsigned> ProducersDone{0};
  runThreads<repro_test::Rt>(4, [&](unsigned Id, auto &Tx) {
    if (Id < 2) {
      for (Word I = 0; I < PerProducer; ++I)
        atomically(Tx, [&](auto &T) { Queue.enqueue(T, I + 1); });
      ProducersDone.fetch_add(1);
    } else {
      while (true) {
        Word Item = 0;
        bool Ok = false;
        Word *ItemPtr = &Item;
        bool *OkPtr = &Ok;
        atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
          *OkPtr = Queue.dequeue(T, ItemPtr);
        });
        if (Ok) {
          Consumed.fetch_add(1);
        } else if (ProducersDone.load() == 2) {
          break;
        }
      }
    }
  });
  // Drain any leftovers.
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    while (true) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      if (!Ok)
        break;
      Consumed.fetch_add(1);
    }
  });
  EXPECT_EQ(Consumed.load(), 2u * PerProducer);
}

STM_INSTANTIATE_RUNTIME_SUITE(ContainersTest);

} // namespace
