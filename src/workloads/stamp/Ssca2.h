//===- workloads/stamp/Ssca2.h - STAMP ssca2 --------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// STAMP's ssca2 (Scalable Synthetic Compact Applications 2, kernel 1):
// parallel construction of a large sparse graph. Threads take edges from
// a pre-generated R-MAT-style list and insert them into per-vertex
// adjacency lists inside small transactions. Transactions are tiny and
// contention is low -- the paper's results show ssca2 as the workload
// where STM choice matters least.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_STAMP_SSCA2_H
#define WORKLOADS_STAMP_SSCA2_H

#include "stm/Stm.h"
#include "support/Random.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace workloads::stamp {

struct Ssca2Config {
  unsigned VerticesLog2 = 10;
  unsigned EdgeFactor = 4; ///< edges = EdgeFactor * vertices
};

template <typename STM> class Ssca2 {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  struct AdjNode {
    Word To;
    Word Weight;
    Word Next; // AdjNode*
  };

  explicit Ssca2(const Ssca2Config &Config, uint64_t Seed = 0x55ca2ull)
      : Cfg(Config), NumVertices(1u << Config.VerticesLog2),
        Heads(NumVertices, 0), Degrees(NumVertices, 0), NextEdge(0) {
    generateEdges(Seed);
  }

  ~Ssca2() {
    for (Word Head : Heads) {
      auto *N = reinterpret_cast<AdjNode *>(Head);
      while (N != nullptr) {
        auto *Next = reinterpret_cast<AdjNode *>(N->Next);
        std::free(N);
        N = Next;
      }
    }
  }

  Ssca2(const Ssca2 &) = delete;
  Ssca2 &operator=(const Ssca2 &) = delete;

  uint64_t edgeCount() const { return Edges.size() / 2; }
  unsigned vertexCount() const { return NumVertices; }

  /// Worker loop: claims edges and inserts them until the list is
  /// exhausted. Returns the number of insertions this thread performed.
  uint64_t work(Tx &T) {
    uint64_t Inserted = 0;
    while (true) {
      std::size_t Idx =
          NextEdge.fetch_add(2, std::memory_order_relaxed);
      if (Idx + 1 >= Edges.size())
        break;
      insertEdge(T, Edges[Idx], Edges[Idx + 1]);
      ++Inserted;
    }
    return Inserted;
  }

  /// Inserts the directed edge (From -> To) as one transaction.
  void insertEdge(Tx &T, uint32_t From, uint32_t To) {
    stm::atomically(T, [&](Tx &X) {
      auto *N = static_cast<AdjNode *>(X.txMalloc(sizeof(AdjNode)));
      X.store(&N->To, To);
      X.store(&N->Weight, (uint64_t(From) * 31 + To) % 97);
      X.store(&N->Next, X.load(&Heads[From]));
      X.store(&Heads[From], reinterpret_cast<Word>(N));
      X.store(&Degrees[From], X.load(&Degrees[From]) + 1);
    });
  }

  //===--------------------------------------------------------------===//
  // Non-transactional validation (quiesced use only)
  //===--------------------------------------------------------------===//

  /// Sum of all vertex degrees; must equal the number of directed edges
  /// inserted.
  uint64_t totalDegree() const {
    uint64_t N = 0;
    for (Word D : Degrees)
      N += D;
    return N;
  }

  /// Degree counters must agree with the physical list lengths.
  bool degreesConsistent() const {
    for (unsigned V = 0; V < NumVertices; ++V) {
      uint64_t Len = 0;
      for (auto *N = reinterpret_cast<AdjNode *>(Heads[V]); N != nullptr;
           N = reinterpret_cast<AdjNode *>(N->Next))
        ++Len;
      if (Len != Degrees[V])
        return false;
    }
    return true;
  }

  /// True if the adjacency of \p From contains \p To.
  bool hasEdge(uint32_t From, uint32_t To) const {
    for (auto *N = reinterpret_cast<AdjNode *>(Heads[From]); N != nullptr;
         N = reinterpret_cast<AdjNode *>(N->Next))
      if (N->To == To)
        return true;
    return false;
  }

  const std::vector<uint32_t> &edgeList() const { return Edges; }

private:
  void generateEdges(uint64_t Seed) {
    // R-MAT-flavoured skew: quadrant probabilities 0.45/0.25/0.15/0.15.
    repro::Xorshift Rng(Seed);
    uint64_t NumEdges = uint64_t(Cfg.EdgeFactor) * NumVertices;
    Edges.reserve(NumEdges * 2);
    for (uint64_t E = 0; E < NumEdges; ++E) {
      uint32_t From = 0, To = 0;
      for (unsigned Bit = Cfg.VerticesLog2; Bit-- > 0;) {
        unsigned R = static_cast<unsigned>(Rng.nextBounded(100));
        unsigned Quad = R < 45 ? 0 : R < 70 ? 1 : R < 85 ? 2 : 3;
        From |= (Quad >> 1) << Bit;
        To |= (Quad & 1) << Bit;
      }
      Edges.push_back(From);
      Edges.push_back(To);
    }
  }

  Ssca2Config Cfg;
  unsigned NumVertices;
  std::vector<uint32_t> Edges; ///< flat (from, to) pairs
  std::vector<Word> Heads;     ///< per-vertex adjacency heads
  std::vector<Word> Degrees;
  std::atomic<std::size_t> NextEdge;
};

} // namespace workloads::stamp

#endif // WORKLOADS_STAMP_SSCA2_H
