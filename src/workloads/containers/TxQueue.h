//===- workloads/containers/TxQueue.h - transactional FIFO queue -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Linked FIFO queue: enqueue at tail, dequeue at head, both as part of a
// surrounding transaction. The head cell is the "memory hot spot" the
// paper's Figure 11 exercises through the STAMP intruder benchmark.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_CONTAINERS_TXQUEUE_H
#define WORKLOADS_CONTAINERS_TXQUEUE_H

#include "stm/Stm.h"

#include <cstdint>
#include <cstdlib>

namespace workloads {

/// Transactional FIFO of word-sized items.
template <typename STM> class TxQueue {
public:
  using Tx = typename STM::Tx;

  struct Node {
    stm::Word Item;
    stm::Word Next; // Node*
  };

  TxQueue() : HeadCell(0), TailCell(0) {}

  ~TxQueue() {
    Node *N = reinterpret_cast<Node *>(HeadCell);
    while (N != nullptr) {
      Node *Next = reinterpret_cast<Node *>(N->Next);
      std::free(N);
      N = Next;
    }
  }

  TxQueue(const TxQueue &) = delete;
  TxQueue &operator=(const TxQueue &) = delete;

  /// Appends \p Item.
  void enqueue(Tx &T, stm::Word Item) {
    auto *N = static_cast<Node *>(T.txMalloc(sizeof(Node)));
    T.store(&N->Item, Item);
    T.store(&N->Next, 0);
    Node *Tail = reinterpret_cast<Node *>(T.load(&TailCell));
    if (Tail == nullptr)
      T.store(&HeadCell, reinterpret_cast<stm::Word>(N));
    else
      T.store(&Tail->Next, reinterpret_cast<stm::Word>(N));
    T.store(&TailCell, reinterpret_cast<stm::Word>(N));
  }

  /// Removes the oldest item into \p Item; returns false when empty.
  bool dequeue(Tx &T, stm::Word *Item) {
    Node *Head = reinterpret_cast<Node *>(T.load(&HeadCell));
    if (Head == nullptr)
      return false;
    *Item = T.load(&Head->Item);
    stm::Word Next = T.load(&Head->Next);
    T.store(&HeadCell, Next);
    if (Next == 0)
      T.store(&TailCell, 0);
    T.txFree(Head);
    return true;
  }

  bool isEmpty(Tx &T) { return T.load(&HeadCell) == 0; }

  /// Transactional length (walks the chain).
  uint64_t size(Tx &T) {
    uint64_t N = 0;
    Node *Cur = reinterpret_cast<Node *>(T.load(&HeadCell));
    while (Cur != nullptr) {
      ++N;
      Cur = reinterpret_cast<Node *>(T.load(&Cur->Next));
    }
    return N;
  }

  /// Non-transactional length (quiesced use only).
  uint64_t sizeRaw() const {
    uint64_t N = 0;
    for (Node *Cur = reinterpret_cast<Node *>(HeadCell); Cur != nullptr;
         Cur = reinterpret_cast<Node *>(Cur->Next))
      ++N;
    return N;
  }

private:
  alignas(64) stm::Word HeadCell;
  alignas(64) stm::Word TailCell;
};

} // namespace workloads

#endif // WORKLOADS_CONTAINERS_TXQUEUE_H
