//===- bench/bench_fig13_granularity.cpp - Figure 13 + Table 2 --------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Lock-granularity sensitivity of SwissTM at the top thread count:
//   Figure 13: for each granularity 2^2..2^8 bytes, the average speedup
//   (minus 1) against all other granularities across all benchmarks;
//   Table 2:  per-benchmark relative speedups of 2^4 vs 2^2, 2^4 vs 2^6
//   and 2^2 vs 2^6.
//
// Throughput-style benchmarks contribute tx/s; timed benchmarks
// contribute 1/seconds, so "bigger is better" uniformly.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

#include <cmath>
#include <map>

using namespace bench;
using workloads::sb7::Workload7;

namespace {

/// Benchmark-score functor: returns a bigger-is-better score of
/// SwissTM at the given granularity.
using ScoreFn = std::function<double(unsigned GranLog2, unsigned Threads)>;

/// SwissTM through the runtime at granularity 2^\p GranLog2.
stm::StmConfig swissConfig(unsigned GranLog2) {
  stm::StmConfig C = rtConfig(stm::rt::BackendKind::SwissTm);
  C.GranularityLog2 = GranLog2;
  return C;
}

std::vector<std::pair<std::string, ScoreFn>> benchmarkSet() {
  std::vector<std::pair<std::string, ScoreFn>> Set;
  for (const std::string &W : stampWorkloads())
    Set.push_back({W, [W](unsigned G, unsigned T) {
                     stm::StmConfig C = swissConfig(G);
                     return 1.0 /
                            runStampWorkload<stm::StmRuntime>(W, C, T).Value;
                   }});
  Set.push_back({"red-black tree", [](unsigned G, unsigned T) {
                   return rbTreeThroughput<stm::StmRuntime>(swissConfig(G),
                                                            T)
                       .Value;
                 }});
  Set.push_back({"Lee-TM memory", [](unsigned G, unsigned T) {
                   return 1.0 / leeTimed<stm::StmRuntime>(
                                    swissConfig(G), T,
                                    workloads::lee::Board::Memory, 0.6)
                                    .Value;
                 }});
  Set.push_back({"Lee-TM main", [](unsigned G, unsigned T) {
                   return 1.0 / leeTimed<stm::StmRuntime>(
                                    swissConfig(G), T,
                                    workloads::lee::Board::Main, 0.5)
                                    .Value;
                 }});
  for (auto [W, Name] : {std::pair{Workload7::ReadDominated, "STMBench7 read"},
                         std::pair{Workload7::ReadWrite, "STMBench7 read-write"},
                         std::pair{Workload7::WriteDominated,
                                   "STMBench7 write"}})
    Set.push_back({Name, [W](unsigned G, unsigned T) {
                     return bench7Throughput<stm::StmRuntime>(
                                swissConfig(G), T, W)
                         .Value;
                   }});
  return Set;
}

} // namespace

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  const unsigned Threads = maxThreads();
  const std::vector<unsigned> Grans = {2, 3, 4, 5, 6, 7, 8};
  auto Set = benchmarkSet();

  // Score every (benchmark, granularity) cell once.
  std::map<std::string, std::map<unsigned, double>> Score;
  for (auto &[Name, Fn] : Set)
    for (unsigned G : Grans)
      Score[Name][G] = Fn(G, Threads);

  // Figure 13: average speedup (minus 1) of each granularity against
  // all others, averaged over benchmarks.
  for (unsigned G : Grans) {
    double Sum = 0;
    unsigned N = 0;
    for (auto &[Name, PerGran] : Score) {
      for (unsigned Other : Grans) {
        if (Other == G)
          continue;
        Sum += PerGran.at(G) / PerGran.at(Other) - 1.0;
        ++N;
      }
    }
    Report::instance().add("fig13", "average", "swisstm", Threads,
                           "avg_speedup_minus_1_g" + std::to_string(G),
                           Sum / N);
  }

  // Table 2: the paper's three pairwise columns per benchmark.
  for (auto &[Name, PerGran] : Score) {
    Report::instance().add("table2", Name, "swisstm", Threads,
                           "g16_vs_g4_minus_1",
                           PerGran.at(4) / PerGran.at(2) - 1.0);
    Report::instance().add("table2", Name, "swisstm", Threads,
                           "g16_vs_g64_minus_1",
                           PerGran.at(4) / PerGran.at(6) - 1.0);
    Report::instance().add("table2", Name, "swisstm", Threads,
                           "g4_vs_g64_minus_1",
                           PerGran.at(2) / PerGran.at(6) - 1.0);
  }

  Report::instance().print(
      "13+table2", "lock granularity sweep 2^2..2^8 bytes (SwissTM)");
  return 0;
}
