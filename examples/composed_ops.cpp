//===- examples/composed_ops.cpp - composing transactional operations -------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's opening argument for TM is *composability* (Harris et
// al., PPoPP'05): operations written as transactions compose into
// bigger atomic operations without knowing each other's locking
// discipline. This example composes two independently written
// transactional structures -- a red-black tree "catalog" and a hash-map
// "inventory" -- into one atomic "purchase" operation through flat
// nesting, something impossible to get right with the structures' own
// fine-grained locks.
//
// Build & run:  ./build/examples/composed_ops
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "workloads/containers/TxHashMap.h"
#include "workloads/rbtree/RbTree.h"

#include <cstdio>
#include <thread>
#include <vector>

// The examples run on the public API (stm::Runtime); the backend is
// picked at launch time with STM_BACKEND=swisstm|tl2|tinystm|rstm (and
// STM_ADAPTIVE=1 for the mode switcher) instead of recompiling. The
// library operations below take the Tx descriptor so they can compose
// into enclosing transactions; entry points get it from
// Runtime::threadTx().
using Stm = stm::StmRuntime;

namespace {

constexpr uint64_t NumItems = 128;
constexpr uint64_t InitialStock = 50;

struct Shop {
  workloads::RbTree<Stm> Catalog;      // item id -> price
  workloads::TxHashMap<Stm> Inventory; // item id -> stock count
  alignas(64) stm::Word Revenue = 0;
};

/// Library operation A (written against the tree alone).
bool lookupPrice(Stm::Tx &Tx, Shop &S, uint64_t Item, uint64_t *Price) {
  bool Found = false;
  bool *FoundPtr = &Found;
  stm::atomically(Tx, [&, FoundPtr](Stm::Tx &T) {
    *FoundPtr = S.Catalog.lookup(T, Item, Price);
  });
  return Found;
}

/// Library operation B (written against the map alone).
bool takeOneFromStock(Stm::Tx &Tx, Shop &S, uint64_t Item) {
  bool Taken = false;
  bool *TakenPtr = &Taken;
  stm::atomically(Tx, [&, TakenPtr](Stm::Tx &T) {
    stm::Word Stock = 0;
    if (!S.Inventory.lookup(T, Item, &Stock) || Stock == 0) {
      *TakenPtr = false;
      return;
    }
    S.Inventory.update(T, Item, Stock - 1);
    *TakenPtr = true;
  });
  return Taken;
}

/// The composition: price lookup + stock decrement + revenue update as
/// ONE atomic step. The inner atomically() calls flatten into this
/// transaction, so either everything happens or nothing does.
bool purchase(Stm::Tx &Tx, Shop &S, uint64_t Item) {
  bool Ok = false;
  bool *OkPtr = &Ok;
  stm::atomically(Tx, [&, OkPtr](Stm::Tx &T) {
    *OkPtr = false;
    uint64_t Price = 0;
    if (!lookupPrice(T, S, Item, &Price)) // composes: flat nesting
      return;
    if (!takeOneFromStock(T, S, Item)) // composes too
      return;
    T.store(&S.Revenue, T.load(&S.Revenue) + Price);
    *OkPtr = true;
  });
  return Ok;
}

} // namespace

int main() {
  stm::Runtime Runtime;
  Shop S;
  for (uint64_t I = 0; I < NumItems; ++I)
    stm::atomically(Runtime, [&](Stm::Tx &T) {
      S.Catalog.insert(T, I, 10 + I % 7);
      S.Inventory.insert(T, I, InitialStock);
    });

  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Purchases{0};
  for (unsigned Id = 0; Id < 4; ++Id) {
    Threads.emplace_back([&S, &Purchases, &Runtime, Id] {
      auto &Tx = Runtime.threadTx();
      repro::Xorshift Rng(Id + 5);
      uint64_t Mine = 0;
      for (int I = 0; I < 5000; ++I)
        Mine += purchase(Tx, S, Rng.nextBounded(NumItems));
      Purchases.fetch_add(Mine);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Invariant: revenue equals the sum of prices of all sold units,
  // which equals initial stock minus remaining stock, priced per item.
  uint64_t ExpectedRevenue = 0, Sold = 0;
  uint64_t *ERPtr = &ExpectedRevenue, *SoldPtr = &Sold;
  stm::atomically(Runtime, [&, ERPtr, SoldPtr](Stm::Tx &T) {
    *ERPtr = 0;
    *SoldPtr = 0;
    for (uint64_t I = 0; I < NumItems; ++I) {
      uint64_t Price = 0;
      stm::Word Stock = 0;
      S.Catalog.lookup(T, I, &Price);
      S.Inventory.lookup(T, I, &Stock);
      *SoldPtr += InitialStock - Stock;
      *ERPtr += (InitialStock - Stock) * Price;
    }
  });
  bool Ok = ExpectedRevenue == S.Revenue && Sold == Purchases.load();
  std::printf("purchases=%llu sold-units=%llu revenue=%llu expected=%llu "
              "-> %s\n",
              (unsigned long long)Purchases.load(),
              (unsigned long long)Sold, (unsigned long long)S.Revenue,
              (unsigned long long)ExpectedRevenue, Ok ? "OK" : "BROKEN");
  return Ok ? 0 : 1;
}
