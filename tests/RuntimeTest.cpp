//===- tests/RuntimeTest.cpp - type-erased runtime behaviour ---------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Tests of the runtime layer itself (the behavioural suites already run
// through it, see TestHarness.h): dispatch parity with the templated
// path, the switch barrier, and the adaptive policy's escalation and
// de-escalation decisions with their TxStats mode-switch accounting.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace stm;
using repro_test::runThreads;

namespace {

StmConfig smallTable() {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  return Config;
}

//===----------------------------------------------------------------------===//
// Fixed-mode dispatch
//===----------------------------------------------------------------------===//

/// The runtime bound to each backend must behave exactly like the
/// templated facade: same field-accessor semantics, same transactional
/// allocation, same restart behaviour.
class RuntimeDispatchTest : public repro_test::RuntimeSuite {};

TEST_P(RuntimeDispatchTest, ReportsConfiguredBackendName) {
  EXPECT_STREQ(StmRuntime::name(),
               GetParam().Adaptive
                   ? "adaptive"
                   : stm::rt::backendName(GetParam().Kind));
}

TEST_P(RuntimeDispatchTest, FieldAccessorsAndTxAllocWorkThroughDispatch) {
  struct Node {
    uint32_t Small;
    Word Big;
  };
  alignas(8) static Node N;
  N = {7, 70};
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) {
      storeField(T, &N.Small, loadField(T, &N.Small) + 1u);
      storeField(T, &N.Big, loadField(T, &N.Big) + Word(1));
      void *Block = T.txMalloc(64);
      ASSERT_NE(Block, nullptr);
      T.txFree(Block);
    });
  });
  EXPECT_EQ(N.Small, 8u);
  EXPECT_EQ(N.Big, 71u);
}

TEST_P(RuntimeDispatchTest, RestartGoesThroughDispatch) {
  alignas(8) static Word Cell;
  Cell = 0;
  runThreads<repro_test::Rt>(1, [&](unsigned, auto &Tx) {
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, RetriedPtr](auto &T) {
      T.store(&Cell, T.load(&Cell) + 1);
      if (!*RetriedPtr) {
        *RetriedPtr = true;
        T.restart();
      }
    });
    EXPECT_GE(Tx.stats().Aborts, 1u);
  });
  EXPECT_EQ(Cell, 1u) << "aborted attempt's write must not survive";
}

TEST_P(RuntimeDispatchTest, FixedModeRefusesManualSwitch) {
  if (GetParam().Adaptive)
    GTEST_SKIP() << "switching is armed in adaptive mode";
  EXPECT_FALSE(StmRuntime::requestSwitch(stm::rt::BackendKind::Rstm))
      << "fixed runtime must not switch backends";
  EXPECT_EQ(StmRuntime::switchCount(), 0u);
}

STM_INSTANTIATE_RUNTIME_SUITE(RuntimeDispatchTest);

//===----------------------------------------------------------------------===//
// Manual switch barrier
//===----------------------------------------------------------------------===//

TEST(RuntimeSwitchTest, ManualSwitchDrainsAndRebinds) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::SwissTm;
  Config.Adaptive = true;
  Config.AdaptiveWindow = ~0u; // manual switches only
  StmRuntime::globalInit(Config);
  {
    alignas(8) static Word Cell;
    Cell = 0;
    constexpr unsigned Threads = 3;
    constexpr unsigned Iters = 300;
    std::atomic<bool> Go{false};
    std::vector<std::thread> Workers;
    for (unsigned I = 0; I < Threads; ++I) {
      Workers.emplace_back([&] {
        ThreadScope<StmRuntime> Scope;
        auto &Tx = Scope.tx();
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        for (unsigned K = 0; K < Iters; ++K)
          atomically(Tx, [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
      });
    }
    Go.store(true, std::memory_order_release);
    // Switch while the workers hammer the counter; the barrier must
    // never let increments run on two backends concurrently (a lost
    // update would show in the final count).
    unsigned Applied = 0;
    const stm::rt::BackendKind Cycle[] = {
        stm::rt::BackendKind::Tl2, stm::rt::BackendKind::TinyStm,
        stm::rt::BackendKind::Rstm, stm::rt::BackendKind::SwissTm};
    for (unsigned K = 0; K < 8; ++K) {
      if (StmRuntime::requestSwitch(Cycle[K % 4]))
        ++Applied;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread &W : Workers)
      W.join();
    EXPECT_EQ(Cell, Word(Threads) * Iters) << "lost update across switch";
    EXPECT_GT(Applied, 0u);
    EXPECT_EQ(StmRuntime::switchCount(), Applied);
  }
  StmRuntime::globalShutdown();
}

TEST(RuntimeSwitchTest, SwitchToActiveBackendIsRejected) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::Tl2;
  Config.Adaptive = true;
  Config.AdaptiveWindow = ~0u;
  StmRuntime::globalInit(Config);
  EXPECT_EQ(StmRuntime::activeBackend(), stm::rt::BackendKind::Tl2);
  EXPECT_FALSE(StmRuntime::requestSwitch(stm::rt::BackendKind::Tl2));
  EXPECT_TRUE(StmRuntime::requestSwitch(stm::rt::BackendKind::Rstm));
  EXPECT_EQ(StmRuntime::activeBackend(), stm::rt::BackendKind::Rstm);
  EXPECT_EQ(StmRuntime::switchCount(), 1u);
  StmRuntime::globalShutdown();
}

//===----------------------------------------------------------------------===//
// Adaptive policy
//===----------------------------------------------------------------------===//

/// High-contention counter increments with a mid-transaction yield:
/// every attempt overlaps another, so timid TL2 aborts constantly. The
/// policy must escalate to SwissTM, and the switch must be visible in
/// the aggregated TxStats mode-switch counter.
TEST(AdaptivePolicyTest, EscalatesToSwissTmUnderContention) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::Tl2;
  Config.AdaptiveWindow = 256;
  // Disable de-escalation: when all but one worker have finished, the
  // tail thread's uncontended windows would otherwise switch away from
  // SwissTM again and make the final-state assertion racy.
  Config.AdaptiveLowAbortRate = -1.0;
  // Pin the test to the SwissTM rung: this workload's abort rate also
  // clears the serialize threshold, and the ladder would carry on to
  // orec (covered by SerializeEscalationReachesOrec below).
  Config.AdaptiveSerializeAbortRate = 2.0;
  AdaptiveRuntime::globalInit(Config);
  {
    alignas(8) static Word Counter;
    Counter = 0;
    constexpr unsigned Threads = 4;
    constexpr unsigned Iters = 1200;
    repro::TxStats Total;
    std::vector<repro::TxStats> Stats(Threads);
    runThreads<AdaptiveRuntime>(Threads, [&](unsigned Id, auto &Tx) {
      for (unsigned K = 0; K < Iters; ++K)
        atomically(Tx, [&](auto &T) {
          Word V = T.load(&Counter);
          std::this_thread::yield(); // widen the conflict window
          T.store(&Counter, V + 1);
        });
      Stats[Id] = Tx.stats();
    });
    for (const repro::TxStats &S : Stats)
      Total += S;
    EXPECT_EQ(Counter, Word(Threads) * Iters);
    EXPECT_EQ(StmRuntime::activeBackend(), stm::rt::BackendKind::SwissTm)
        << "contended window must escalate to SwissTM";
    EXPECT_GE(StmRuntime::switchCount(), 1u);
    EXPECT_GE(Total.ModeSwitches, 1u)
        << "the switching thread must account its switch in TxStats";
    EXPECT_EQ(Total.Starts, Total.Commits + Total.Aborts);
  }
  AdaptiveRuntime::globalShutdown();
}

/// The ladder's last rung: a window still pathological *on SwissTM*
/// escalates to orec, whose irrevocability mode then serializes the
/// offending transactions themselves (observable as Serializations /
/// IrrevocableCommits in the aggregated TxStats) instead of switching
/// whole backends again.
TEST(AdaptivePolicyTest, SerializeEscalationReachesOrec) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::SwissTm;
  Config.AdaptiveWindow = 256;
  Config.AdaptiveLowAbortRate = -1.0;       // no de-escalation (see above)
  Config.AdaptiveSerializeAbortRate = -1.0; // every SwissTM window escalates
  Config.OrecIrrevocableAborts = 1;         // serialize on the first retry
  AdaptiveRuntime::globalInit(Config);
  {
    alignas(8) static Word Counter;
    Counter = 0;
    constexpr unsigned Threads = 4;
    constexpr unsigned Iters = 1200;
    repro::TxStats Total;
    std::vector<repro::TxStats> Stats(Threads);
    runThreads<AdaptiveRuntime>(Threads, [&](unsigned Id, auto &Tx) {
      for (unsigned K = 0; K < Iters; ++K)
        atomically(Tx, [&](auto &T) {
          Word V = T.load(&Counter);
          std::this_thread::yield(); // widen the conflict window
          T.store(&Counter, V + 1);
        });
      Stats[Id] = Tx.stats();
    });
    for (const repro::TxStats &S : Stats)
      Total += S;
    EXPECT_EQ(Counter, Word(Threads) * Iters);
    EXPECT_EQ(StmRuntime::activeBackend(), stm::rt::BackendKind::Orec)
        << "a still-pathological SwissTM window must escalate to orec";
    EXPECT_GE(StmRuntime::switchCount(), 1u);
    EXPECT_GE(Total.ModeSwitches, 1u);
    EXPECT_GE(Total.Serializations, 1u)
        << "contended orec transactions must take the irrevocability token";
    EXPECT_GE(Total.IrrevocableCommits, 1u)
        << "a serialized attempt must commit irrevocably";
    EXPECT_EQ(Total.Starts, Total.Commits + Total.Aborts);
  }
  AdaptiveRuntime::globalShutdown();
}

/// Read-dominated, conflict-free windows must de-escalate from SwissTM
/// to the cheap lazy backend (TL2).
TEST(AdaptivePolicyTest, DeEscalatesToTl2WhenReadDominated) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::SwissTm;
  Config.AdaptiveWindow = 256;
  AdaptiveRuntime::globalInit(Config);
  {
    alignas(64) static Word Cells[8];
    for (Word &W : Cells)
      W = 1;
    runThreads<AdaptiveRuntime>(2, [&](unsigned, auto &Tx) {
      for (unsigned K = 0; K < 2000; ++K)
        atomically(Tx, [&](auto &T) {
          Word Sum = 0;
          for (const Word &W : Cells)
            Sum += T.load(&W);
          if (Sum == 0)
            T.store(&Cells[0], 1); // never taken; keeps reads dominant
        });
    });
    EXPECT_EQ(StmRuntime::activeBackend(), stm::rt::BackendKind::Tl2)
        << "calm read-dominated windows must de-escalate to TL2";
    EXPECT_GE(StmRuntime::switchCount(), 1u);
  }
  AdaptiveRuntime::globalShutdown();
}

/// Stats aggregate across every backend a handle has used, and stay
/// monotone through a switch.
TEST(RuntimeStatsTest, AggregatesAcrossBackends) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::SwissTm;
  Config.Adaptive = true;
  Config.AdaptiveWindow = ~0u;
  StmRuntime::globalInit(Config);
  {
    alignas(8) static Word Cell;
    Cell = 0;
    runThreads<StmRuntime>(1, [&](unsigned, auto &Tx) {
      for (int K = 0; K < 10; ++K)
        atomically(Tx, [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
      repro::TxStats Before = Tx.stats();
      EXPECT_EQ(Before.Commits, 10u);
      ASSERT_TRUE(StmRuntime::requestSwitch(stm::rt::BackendKind::TinyStm));
      for (int K = 0; K < 10; ++K)
        atomically(Tx, [&](auto &T) { T.store(&Cell, T.load(&Cell) + 1); });
      repro::TxStats After = Tx.stats();
      EXPECT_EQ(After.Commits, 20u)
          << "commits on both backends must aggregate";
      EXPECT_GE(After.Reads, Before.Reads + 10);
      EXPECT_EQ(After.Starts, After.Commits + After.Aborts);
    });
    EXPECT_EQ(Cell, 20u);
  }
  StmRuntime::globalShutdown();
}

} // namespace
