//===- stm/EpochManager.cpp - epoch-based descriptor reclamation ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "stm/EpochManager.h"

#include "support/ThreadRegistry.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <vector>

using namespace stm;

std::atomic<uint64_t> EpochManager::GlobalEpoch{1};
repro::Padded<std::atomic<uint64_t>> EpochManager::Epochs[repro::MaxThreads];
std::atomic<std::atomic<uint64_t> *> EpochManager::GlobalEpochP{
    &EpochManager::GlobalEpoch};
std::atomic<repro::Padded<std::atomic<uint64_t>> *> EpochManager::EpochsP{
    EpochManager::Epochs};

namespace {

/// Limbo length at which retire() triggers a collection, bounding the
/// list under sustained thread churn.
constexpr std::size_t CollectThreshold = 32;

struct LimboEntry {
  void *Ptr;
  EpochManager::Deleter Del;
  uint64_t RetireEpoch;
};

/// The limbo list proper. Meyers singleton so entries still parked at
/// process exit are destroyed during static teardown (no transaction can
/// be in flight by then) instead of leaking.
struct LimboList {
  std::mutex Lock;
  std::deque<LimboEntry> Entries;
  /// Size at which the next retire() triggers a collection. Doubled by a
  /// collection that frees nothing, so a pinned long-running transaction
  /// does not turn every thread exit into a futile O(limbo) scan.
  std::size_t CollectTrigger = CollectThreshold;

  ~LimboList() {
    for (const LimboEntry &E : Entries)
      E.Del(E.Ptr);
  }
};

LimboList &limbo() {
  static LimboList List;
  return List;
}

} // namespace

uint64_t EpochManager::minPinnedEpoch() {
  // Pairs with the fence in pin(): any pin this scan misses was
  // published after the scan, and that transaction's loads then see
  // every unlink that preceded this point.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  uint64_t Min = ~0ull;
  uint64_t Mask = repro::ThreadRegistry::activeMask();
  while (Mask != 0) {
    unsigned Slot = static_cast<unsigned>(__builtin_ctzll(Mask));
    Mask &= Mask - 1;
    uint64_t E = epochs()[Slot].value().load(std::memory_order_acquire);
    if (E != Quiescent && E < Min)
      Min = E;
  }
  return Min;
}

void EpochManager::placeStorage(repro::Padded<std::atomic<uint64_t>> *NewEpochs,
                                std::atomic<uint64_t> *NewGlobal,
                                bool CopyCurrent) {
  if (CopyCurrent) {
    for (unsigned Slot = 0; Slot < repro::MaxThreads; ++Slot)
      NewEpochs[Slot].value().store(
          epochs()[Slot].value().load(std::memory_order_acquire),
          std::memory_order_release);
    NewGlobal->store(globalEpoch().load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  EpochsP.store(NewEpochs, std::memory_order_release);
  GlobalEpochP.store(NewGlobal, std::memory_order_release);
}

void EpochManager::resetStorage(uint64_t KeepMask) {
  if (EpochsP.load(std::memory_order_relaxed) == Epochs)
    return;
  for (unsigned Slot = 0; Slot < repro::MaxThreads; ++Slot)
    Epochs[Slot].value().store(
        (KeepMask >> Slot) & 1
            ? epochs()[Slot].value().load(std::memory_order_acquire)
            : Quiescent,
        std::memory_order_release);
  // The global epoch only ever grows, so carrying the segment's value
  // back keeps local retire stamps monotonic across the transition.
  GlobalEpoch.store(globalEpoch().load(std::memory_order_acquire),
                    std::memory_order_release);
  EpochsP.store(Epochs, std::memory_order_release);
  GlobalEpochP.store(&GlobalEpoch, std::memory_order_release);
}

void EpochManager::retire(void *Ptr, Deleter Del) {
  // Advance the epoch first: every later pin publishes a strictly larger
  // value, so this entry's grace period completes as soon as the
  // transactions currently pinned have finished.
  uint64_t Epoch = globalEpoch().fetch_add(1, std::memory_order_seq_cst);
  bool Overflowing;
  {
    std::lock_guard<std::mutex> Guard(limbo().Lock);
    limbo().Entries.push_back(LimboEntry{Ptr, Del, Epoch});
    Overflowing = limbo().Entries.size() >= limbo().CollectTrigger;
  }
  if (Overflowing)
    collect();
}

std::size_t EpochManager::collect() {
  std::vector<LimboEntry> Free;
  {
    std::lock_guard<std::mutex> Guard(limbo().Lock);
    uint64_t Horizon = minPinnedEpoch();
    std::deque<LimboEntry> Keep;
    for (const LimboEntry &E : limbo().Entries) {
      if (E.RetireEpoch < Horizon)
        Free.push_back(E);
      else
        Keep.push_back(E);
    }
    limbo().Entries.swap(Keep);
    limbo().CollectTrigger =
        Free.empty() ? std::max(CollectThreshold, limbo().Entries.size() * 2)
                     : CollectThreshold;
  }
  // Deleters run outside the lock: a descriptor destructor may be
  // arbitrary user-ish code and must not re-enter the limbo mutex.
  for (const LimboEntry &E : Free)
    E.Del(E.Ptr);
  return Free.size();
}

std::size_t EpochManager::releaseAll() {
  std::deque<LimboEntry> All;
  {
    std::lock_guard<std::mutex> Guard(limbo().Lock);
    All.swap(limbo().Entries);
    limbo().CollectTrigger = CollectThreshold;
  }
  for (const LimboEntry &E : All)
    E.Del(E.Ptr);
  return All.size();
}

std::size_t EpochManager::limboSize() {
  std::lock_guard<std::mutex> Guard(limbo().Lock);
  return limbo().Entries.size();
}
