//===- bench/BenchUtil.h - shared benchmark driver --------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every figure/table binary uses the same drivers:
//
//   * runThroughput<STM>: spawn T worker threads over a freshly built
//     workload, run the per-thread operation loop for a fixed duration,
//     and report committed transactions per second (Figures 2, 5, 7, 9,
//     10, 12, 13);
//   * runTimed<STM>: spawn T workers over a fixed amount of work and
//     report wall-clock completion time (Figures 4, 8, 11; the STAMP
//     suite of Figure 3).
//
// Binaries emit two things: google-benchmark output (each series point
// registered as one benchmark) and, at the end, a paper-style CSV block
// "figure,benchmark,stm,threads,metric,value" that EXPERIMENTS.md and
// plotting scripts consume.
//
// Environment knobs:
//   REPRO_MAX_THREADS  thread sweep upper bound (default 8)
//   REPRO_BENCH_MS     duration per throughput point in ms (default 150)
//   STM_BENCH_SMOKE    when 1, clamp every sweep to 2 threads and a few
//                      ms per throughput point, so each binary finishes
//                      in about a second. CI runs every bench once in
//                      this mode to catch bench bitrot.
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHUTIL_H
#define BENCH_BENCHUTIL_H

#include "stm/Stm.h"
#include "stm/diag/Hooks.h"
#include "stm/diag/Schedule.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace bench {

/// Mutable storage behind baseConfig(); first use snapshots the STM_*
/// environment (StmConfig::fromEnv), parseStmFlags layers CLI flags on
/// top.
inline stm::StmConfig &baseConfigStorage() {
  static stm::StmConfig Config = stm::StmConfig::fromEnv();
  return Config;
}

/// The process-wide base configuration every bench grid starts from:
/// struct defaults, overridden by STM_* environment variables,
/// overridden by --stm-* flags (documented precedence, see
/// StmConfig::fromEnv). Grid helpers like rtConfig/clockConfig then pin
/// the dimensions the grid itself sweeps.
inline stm::StmConfig baseConfig() { return baseConfigStorage(); }

/// Parses the --stm-<knob>=<value> flags every bench main accepts —
/// the CLI mirror of the STM_* environment, one spelling per knob:
///
///   --stm-backend=swisstm|tl2|tinystm|rstm
///   --stm-adaptive=0|1
///   --stm-clock=gv1|gv4|gv5|gvshard
///   --stm-clock-shards=N     (0 = auto from topology; power of two)
///   --stm-lock-table-log2=N
///   --stm-lock-shards=N      (0 = auto from topology; power of two)
///   --stm-granularity-log2=N
///   --stm-single-fence=0|1
///
/// Flags win over the environment. Unknown --stm-* knobs and invalid
/// values abort loudly (a typo must not measure the wrong config);
/// arguments not starting with --stm- are ignored, left for the
/// binary's own flag handling.
inline void parseStmFlags(int Argc, char **Argv) {
  // Diagnostics riding along with any bench run (no-ops unless the
  // STM_DIAG_* environment asks for them — and, for the hook-driven
  // recording, unless the build compiled the hooks in): crash-dump
  // trace recording for the repro grids, and the conflict profiler.
  stm::diag::initFromEnv();
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--stm-", 6) != 0)
      continue;
    const char *Key = Arg + 6;
    const char *Eq = std::strchr(Key, '=');
    if (Eq == nullptr)
      stm::configFatal(Arg, "", "--stm-<knob>=<value>");
    std::string Knob(Key, static_cast<std::size_t>(Eq - Key));
    if (!stm::applyConfigOption(baseConfigStorage(), Knob.c_str(), Eq + 1,
                                Arg))
      stm::configFatal(Arg, Eq + 1,
                       "backend|adaptive|clock|clock-shards|lock-table-log2|"
                       "lock-shards|granularity-log2|single-fence");
  }
}

/// Binds \p Config to one runtime backend: the bench grids sweep
/// stm::StmRuntime rows by value instead of instantiating one template
/// per backend (see stm/runtime/StmRuntime.h). Also pins Adaptive off —
/// a fixed-backend grid cell must stay on its backend even when the
/// ambient environment says STM_ADAPTIVE=1; grids name adaptivity as
/// its own row (AdaptiveRuntime) instead.
inline stm::StmConfig rtConfig(stm::rt::BackendKind Kind,
                               stm::StmConfig Config = baseConfig()) {
  Config.Backend = Kind;
  Config.Adaptive = false;
  return Config;
}

/// Binds \p Config to one commit-clock policy (stm/core/Clock.h); the
/// clock ablation grids compose this with rtConfig.
inline stm::StmConfig clockConfig(stm::ClockKind Kind,
                                  stm::StmConfig Config = baseConfig()) {
  Config.Clock = Kind;
  return Config;
}

/// True when STM_BENCH_SMOKE=1: quick mode for CI bitrot checks.
inline bool smokeMode() {
  const char *Env = std::getenv("STM_BENCH_SMOKE");
  return Env != nullptr && Env[0] == '1';
}

inline unsigned maxThreads() {
  if (smokeMode())
    return 2;
  if (const char *Env = std::getenv("REPRO_MAX_THREADS"))
    return std::max(1, std::atoi(Env));
  return 8;
}

inline uint64_t benchMillis() {
  if (smokeMode())
    return 5;
  if (const char *Env = std::getenv("REPRO_BENCH_MS"))
    return std::max(1, std::atoi(Env));
  return 150;
}

/// The thread counts the paper sweeps (1..8 by default).
inline std::vector<unsigned> threadSweep() {
  std::vector<unsigned> Sweep;
  for (unsigned T = 1; T <= maxThreads(); ++T)
    Sweep.push_back(T);
  return Sweep;
}

/// STAMP-style sweep {1, 2, 4, 8}.
inline std::vector<unsigned> powerOfTwoSweep() {
  std::vector<unsigned> Sweep;
  for (unsigned T = 1; T <= maxThreads(); T *= 2)
    Sweep.push_back(T);
  return Sweep;
}

/// Reusable sense-reversing spin barrier for phase-structured workloads
/// (kmeans iterations, genome's pipeline phases).
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned Parties) : Parties(Parties) {}

  /// Blocks until all parties arrive. Returns true for exactly one
  /// caller per round (the "serial" thread).
  bool arriveAndWait() {
    unsigned MySense = Sense.load(std::memory_order_acquire);
    unsigned Arrived = Count.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (Arrived == Parties) {
      Count.store(0, std::memory_order_relaxed);
      Sense.store(MySense + 1, std::memory_order_release);
      return true;
    }
    unsigned SpinStep = 0;
    while (Sense.load(std::memory_order_acquire) == MySense)
      repro::spinWait(SpinStep);
    return false;
  }

private:
  unsigned Parties;
  std::atomic<unsigned> Count{0};
  std::atomic<unsigned> Sense{0};
};

/// Result of one measured series point.
struct RunResult {
  double Value = 0; ///< tx/s for throughput runs, seconds for timed runs
  repro::TxStats Stats;
};

/// Collected CSV rows, printed once at the end of each binary.
class Report {
public:
  static Report &instance() {
    static Report R;
    return R;
  }

  void add(const std::string &Figure, const std::string &Benchmark,
           const std::string &Stm, unsigned Threads,
           const std::string &Metric, double Value) {
    char Line[256];
    std::snprintf(Line, sizeof(Line), "%s,%s,%s,%u,%s,%.6g",
                  Figure.c_str(), Benchmark.c_str(), Stm.c_str(), Threads,
                  Metric.c_str(), Value);
    Rows.push_back(Line);
  }

  void print(const char *Figure, const char *Description) {
    std::printf("\n# figure: %s\n# %s\n", Figure, Description);
    std::printf("# benchmark,stm,threads,metric,value\n");
    for (const std::string &Row : Rows)
      std::printf("%s\n", Row.c_str());
    std::fflush(stdout);
  }

private:
  std::vector<std::string> Rows;
};

/// Duration-based throughput driver.
///
/// \param Setup    builds the shared workload after globalInit; returns
///                 any context object (owned by the driver).
/// \param Op       per-thread loop body: Op(Context&, Tx&, Rng&) runs one
///                 complete transaction (or operation).
template <typename STM, typename SetupFn, typename OpFn>
RunResult runThroughput(const stm::StmConfig &Config, unsigned Threads,
                        SetupFn &&Setup, OpFn &&Op) {
  STM::globalInit(Config);
  RunResult Result;
  {
    auto Context = Setup();
    std::atomic<bool> Stop{false};
    std::atomic<bool> Go{false};
    std::vector<uint64_t> Ops(Threads, 0);
    std::vector<repro::TxStats> Stats(Threads);
    std::vector<std::thread> Workers;
    for (unsigned I = 0; I < Threads; ++I) {
      Workers.emplace_back([&, I] {
        // Stable logical thread id for diag traces (registry slots are
        // assigned racily and differ across runs).
        stm::diag::Schedule::ScopedThread DiagTid(I);
        stm::ThreadScope<STM> Scope;
        auto &Tx = Scope.tx();
        repro::Xorshift Rng(repro::testSeed(I * 7727 + 13));
        unsigned GoSpin = 0;
        while (!Go.load(std::memory_order_acquire))
          repro::spinWait(GoSpin);
        uint64_t Count = 0;
        while (!Stop.load(std::memory_order_relaxed)) {
          Op(*Context, Tx, Rng);
          ++Count;
        }
        Ops[I] = Count;
        Stats[I] = Tx.stats();
      });
    }
    repro::Stopwatch Watch;
    Go.store(true, std::memory_order_release);
    uint64_t Millis = benchMillis();
    std::this_thread::sleep_for(std::chrono::milliseconds(Millis));
    Stop.store(true, std::memory_order_relaxed);
    for (std::thread &W : Workers)
      W.join();
    double Seconds = Watch.elapsedSeconds();
    uint64_t Total = 0;
    for (unsigned I = 0; I < Threads; ++I) {
      Total += Ops[I];
      Result.Stats += Stats[I];
    }
    Result.Value = static_cast<double>(Total) / Seconds;
  }
  stm::diag::maybePrintProfile("throughput");
  STM::globalShutdown();
  return Result;
}

/// Fixed-work timing driver: Work(Context&, Tx&, ThreadId) must return
/// when the shared work pool is exhausted. Result.Value is seconds.
template <typename STM, typename SetupFn, typename WorkFn>
RunResult runTimed(const stm::StmConfig &Config, unsigned Threads,
                   SetupFn &&Setup, WorkFn &&Work) {
  STM::globalInit(Config);
  RunResult Result;
  {
    auto Context = Setup();
    std::atomic<bool> Go{false};
    std::vector<repro::TxStats> Stats(Threads);
    std::vector<std::thread> Workers;
    for (unsigned I = 0; I < Threads; ++I) {
      Workers.emplace_back([&, I] {
        stm::diag::Schedule::ScopedThread DiagTid(I);
        stm::ThreadScope<STM> Scope;
        auto &Tx = Scope.tx();
        unsigned GoSpin = 0;
        while (!Go.load(std::memory_order_acquire))
          repro::spinWait(GoSpin);
        Work(*Context, Tx, I);
        Stats[I] = Tx.stats();
      });
    }
    repro::Stopwatch Watch;
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
    Result.Value = Watch.elapsedSeconds();
    for (unsigned I = 0; I < Threads; ++I)
      Result.Stats += Stats[I];
  }
  stm::diag::maybePrintProfile("timed");
  STM::globalShutdown();
  return Result;
}

} // namespace bench

#endif // BENCH_BENCHUTIL_H
