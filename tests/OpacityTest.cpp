//===- tests/OpacityTest.cpp - opacity and validation tests ----------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Opacity (Section 3.1): every transaction, even one doomed to abort,
// only ever observes consistent states. These tests hammer multi-word
// invariants from inside transaction bodies, check the timestamp
// extension machinery, and verify the extension-disabled configuration
// still upholds opacity (it just aborts more).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace stm;
using repro_test::runThreads;

namespace {

template <typename STM> class OpacityTest : public ::testing::Test {
protected:
  void SetUp() override {
    StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    STM::globalInit(Config);
  }
  void TearDown() override { STM::globalShutdown(); }
};

TYPED_TEST_SUITE(OpacityTest, repro_test::AllStms);

TYPED_TEST(OpacityTest, ThreeWayInvariantNeverBroken) {
  // Writers rotate value among three distant cells keeping their sum
  // constant; readers check the sum inside the body.
  struct alignas(64) Cell {
    Word V;
  };
  static Cell Cells[3];
  Cells[0].V = 300;
  Cells[1].V = 0;
  Cells[2].V = 0;
  std::atomic<bool> Violation{false};
  runThreads<TypeParam>(4, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 23 + 7));
    for (int I = 0; I < 3000; ++I) {
      if (Id % 2 == 0) {
        unsigned From = Rng.nextBounded(3), To = Rng.nextBounded(3);
        atomically(Tx, [&, From, To](auto &T) {
          Word B = T.load(&Cells[From].V);
          if (B == 0)
            return;
          T.store(&Cells[From].V, B - 1);
          T.store(&Cells[To].V, T.load(&Cells[To].V) + 1);
        });
      } else {
        atomically(Tx, [&](auto &T) {
          Word Sum = T.load(&Cells[0].V) + T.load(&Cells[1].V) +
                     T.load(&Cells[2].V);
          if (Sum != 300)
            Violation.store(true);
        });
      }
    }
  });
  EXPECT_FALSE(Violation.load());
  EXPECT_EQ(Cells[0].V + Cells[1].V + Cells[2].V, 300u);
}

TYPED_TEST(OpacityTest, MonotonicPairNeverInverts) {
  // Writers maintain Y == X + 1 with two separate stores (X first);
  // a reader observing Y < X or Y > X + 1 saw a torn snapshot.
  struct alignas(64) Pair {
    Word X = 0;
    alignas(64) Word Y = 1;
  };
  static Pair P;
  P.X = 0;
  P.Y = 1;
  std::atomic<bool> Violation{false};
  runThreads<TypeParam>(4, [&](unsigned Id, auto &Tx) {
    for (int I = 0; I < 3000; ++I) {
      if (Id == 0) {
        atomically(Tx, [&](auto &T) {
          Word X = T.load(&P.X);
          T.store(&P.X, X + 1);
          T.store(&P.Y, X + 2);
        });
      } else {
        atomically(Tx, [&](auto &T) {
          Word Y = T.load(&P.Y);
          Word X = T.load(&P.X);
          if (Y != X + 1)
            Violation.store(true);
        });
      }
    }
  });
  EXPECT_FALSE(Violation.load());
}

TYPED_TEST(OpacityTest, LongReaderWithConcurrentWritersStaysConsistent) {
  // The long-transaction case the paper cares about: a reader scans a
  // large array while writers keep committing balanced updates; every
  // committed state has sum == 0, so any observed nonzero sum is a
  // torn (non-opaque) snapshot.
  // Writers are *bounded*: an unextended STM (TL2) may be unable to
  // finish a whole-array scan while commits keep landing, so the reader
  // must be guaranteed a quiet tail to complete in.
  constexpr unsigned N = 512;
  static std::vector<Word> Data;
  Data.assign(N, 0);
  std::atomic<bool> Violation{false};
  runThreads<TypeParam>(4, [&](unsigned Id, auto &Tx) {
    repro::Xorshift Rng(repro::testSeed(Id * 3 + 11));
    if (Id == 0) {
      for (int Scan = 0; Scan < 40; ++Scan) {
        int64_t Sum = 0;
        int64_t *SumPtr = &Sum;
        atomically(Tx, [&, SumPtr](auto &T) {
          *SumPtr = 0;
          for (unsigned I = 0; I < N; ++I)
            *SumPtr += static_cast<int64_t>(T.load(&Data[I]));
        });
        if (Sum != 0)
          Violation.store(true);
      }
    } else {
      for (int I = 0; I < 4000; ++I) {
        unsigned A = Rng.nextBounded(N), B = Rng.nextBounded(N);
        if (A == B)
          continue;
        atomically(Tx, [&, A, B](auto &T) {
          T.store(&Data[A], T.load(&Data[A]) + 1);
          T.store(&Data[B], T.load(&Data[B]) - 1);
        });
      }
    }
  });
  EXPECT_FALSE(Violation.load());
}

//===----------------------------------------------------------------------===//
// Timestamp extension machinery (SwissTM / TinySTM)
//===----------------------------------------------------------------------===//

template <typename STM> void extensionHappensUnderConcurrency() {
  // Deterministic interleaving: reader R opens a transaction and reads
  // X; writer W then commits an update to Y (advancing the clock);
  // R's subsequent read of Y sees a version newer than its valid-ts and
  // must extend (successfully: X is unchanged).
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  STM::globalInit(Config);
  {
    struct alignas(64) Cell {
      Word V = 0;
    };
    static Cell X, Y;
    X.V = Y.V = 0;
    std::atomic<int> Phase{0};
    std::atomic<uint64_t> Extensions{0};
    runThreads<STM>(2, [&](unsigned Id, auto &Tx) {
      if (Id == 0) {
        atomically(Tx, [&](auto &T) {
          (void)T.load(&X.V);
          Phase.store(1);
          unsigned Spin = 0;
          while (Phase.load() < 2)
            repro::spinWait(Spin);
          (void)T.load(&Y.V); // newer version: forces extend()
        });
        Extensions.store(Tx.stats().Extensions);
      } else {
        unsigned Spin = 0;
        while (Phase.load() < 1)
          repro::spinWait(Spin);
        atomically(Tx, [&](auto &T) { T.store(&Y.V, 7); });
        Phase.store(2);
      }
    });
    EXPECT_GT(Extensions.load(), 0u)
        << "a clock bump between reads must trigger timestamp extension";
  }
  STM::globalShutdown();
}

TEST(ExtensionTest, SwissTmExtends) { extensionHappensUnderConcurrency<SwissTm>(); }
TEST(ExtensionTest, TinyStmExtends) { extensionHappensUnderConcurrency<TinyStm>(); }

TEST(ExtensionTest, DisabledExtensionStillCorrectJustAbortsMore) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.EnableExtension = false;
  SwissTm::globalInit(Config);
  {
    alignas(8) static Word Counter;
    Counter = 0;
    std::atomic<uint64_t> Extensions{0};
    runThreads<SwissTm>(4, [&](unsigned, auto &Tx) {
      for (int I = 0; I < 1000; ++I)
        atomically(Tx,
                   [&](auto &T) { T.store(&Counter, T.load(&Counter) + 1); });
      Extensions.fetch_add(Tx.stats().Extensions);
    });
    EXPECT_EQ(Counter, 4u * 1000u);
    EXPECT_EQ(Extensions.load(), 0u)
        << "no extensions may happen when disabled";
  }
  SwissTm::globalShutdown();
}

} // namespace
