//===- support/Platform.h - low-level platform primitives ------*- C++ -*-===//
//
// Part of the SwissTM reproduction ("Stretching Transactional Memory",
// PLDI 2009). Platform constants and tiny helpers shared by every module.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PLATFORM_H
#define SUPPORT_PLATFORM_H

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace repro {

/// Size of a cache line on every platform we target. Used for padding
/// shared counters so unrelated hot words do not false-share.
inline constexpr std::size_t CacheLineSize = 64;

/// Maximum number of concurrently registered transactional threads.
/// Visible-reader bitmaps (RSTM) use one bit per slot, so this is capped
/// at the word width.
inline constexpr unsigned MaxThreads = 64;

/// Pause the CPU briefly inside a spin loop (PAUSE on x86, no-op
/// elsewhere). Reduces the cost of busy-waiting on hyperthreads.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

} // namespace repro

#endif // SUPPORT_PLATFORM_H
