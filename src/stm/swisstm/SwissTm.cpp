//===- stm/swisstm/SwissTm.cpp - the SwissTM algorithm --------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009). Implements Algorithm 1
// (the STM); Algorithm 2 (the two-phase contention manager) lives in
// stm/core/ContentionManager.h, instantiated here in Native mode.
//
//===----------------------------------------------------------------------===//

#include "stm/swisstm/SwissTm.h"

using namespace stm;
using namespace stm::swiss;

static SwissGlobals GlobalState;

SwissGlobals &stm::swiss::swissGlobals() { return GlobalState; }

void SwissTm::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.SharedWords = SharedArena::sharedActive();
  if (GlobalState.SharedWords) {
    // Multi-process mode: the lock table and commit clock live in the
    // shm segment. An attacher must adopt the live state, never reset
    // it, so the clock is pointed and configured without a reset (the
    // creator's segment pages are fresh zeroes, which *is* the reset
    // state).
    SharedArena &A = SharedArena::instance();
    GlobalState.Table.bindAt(
        A.tableRegion(
            core::LockTable<LockPair>::bytesFor(Config.LockTableSizeLog2)),
        Config.LockTableSizeLog2, Config.GranularityLog2,
        resolvedLockShards(Config));
    GlobalState.CommitTs.placeShards(A.clockRegion());
    GlobalState.CommitTs.adopt(Config.Clock, resolvedClockShards(Config));
  } else {
    GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                           resolvedLockShards(Config));
    GlobalState.CommitTs.placeShards(nullptr);
    GlobalState.CommitTs.reset(Config.Clock, resolvedClockShards(Config));
  }
  // The greedy-ts always increments (the CM needs unique timestamps);
  // it stays process-private even in shared mode — cross-process
  // conflicts resolve timid, without comparing CM timestamps.
  GlobalState.GreedyTs.reset();
}

void SwissTm::globalShutdown() {
  globalTeardown(GlobalState.Table);
  // Un-point the clock before the segment unmaps.
  GlobalState.CommitTs.placeShards(nullptr);
  GlobalState.SharedWords = false;
}

//===----------------------------------------------------------------------===//
// Transaction lifecycle
//===----------------------------------------------------------------------===//

void SwissTx::onStart() {
  baseStart();
  ReadLog.clear();
  WriteLog.clear();
  WordLog.clear();
  WordWriteCount = 0;
  beginEpoch(GlobalState.CommitTs); // Algorithm 1, line 2
  Cm.onStart(GlobalState.Config, GlobalState.GreedyTs,
             FreshStart); // Algorithm 1, line 3
}

StripeWrite *SwissTx::ownedEntry(Word WL) {
  if (REPRO_UNLIKELY(GlobalState.SharedWords)) {
    if (SharedArena::handleSlot(WL) != Slot)
      return nullptr;
    return &WriteLog[SharedArena::handleIndex(WL)];
  }
  auto *Entry = reinterpret_cast<StripeWrite *>(WL);
  return Entry->Owner.load(std::memory_order_relaxed) == this ? Entry
                                                              : nullptr;
}

Word SwissTx::load(const Word *Addr) {
  checkKill();
  ++Stats.Reads;
  Cm.noteAccess();
  LockPair &Locks = GlobalState.Table.entryFor(Addr);

  // Read-after-write: if we own the stripe's w-lock, return the buffered
  // value (Algorithm 1, line 6). Reading a word of an owned stripe that
  // was never buffered is safe directly from memory: we hold the w-lock,
  // so no other transaction can commit into this stripe.
  Word WL = Locks.WLock.load(std::memory_order_acquire);
  if (WL != 0) {
    if (StripeWrite *Entry = ownedEntry(WL)) {
      for (WordWrite *W = Entry->Head; W; W = W->Next)
        if (W->Addr == Addr)
          return W->Value;
      return racyLoad(Addr);
    }
  }

  // Consistent (r-lock, value, r-lock) snapshot; spin while a writer is
  // committing this stripe (Algorithm 1, lines 8-15).
  Word RV = Locks.RLock.load(std::memory_order_acquire);
  Word Value;
  unsigned SpinStep = 0;
  while (true) {
    STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Locks), RV);
    if (rlockIsLocked(RV)) {
      checkKill();
      // The r-lock carries no owner handle, so a committer that died
      // holding it can only be found by sweeping; otherwise this spin
      // would never terminate.
      if (REPRO_UNLIKELY(GlobalState.SharedWords) && (SpinStep & 63) == 63)
        SharedArena::instance().sweepDeadProcesses();
      repro::spinWait(SpinStep);
      RV = Locks.RLock.load(std::memory_order_acquire);
      continue;
    }
    Value = racyLoad(Addr);
    Word RV2 = Locks.RLock.load(std::memory_order_acquire);
    if (RV == RV2)
      break;
    RV = RV2;
  }

  ReadLog.push_back(ReadEntry{&Locks, RV}); // line 16
  if (rlockVersion(RV) > ValidTs &&
      !extendEpoch(GlobalState.CommitTs, GlobalState.Config.EnableExtension,
                   rlockVersion(RV))) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Locks),
                           RV);
    rollback(); // line 17
  }
  return Value;
}

void SwissTx::store(Word *Addr, Word Value) {
  checkKill();
  ++Stats.Writes;
  Cm.noteAccess();
  LockPair &Locks = GlobalState.Table.entryFor(Addr);

  StripeWrite *Mine = nullptr;
  unsigned Attempts = 0;
  const bool Shared = GlobalState.SharedWords;
  while (true) {
    Word WL = Locks.WLock.load(std::memory_order_acquire);
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Locks), WL);
    if (WL != 0) {
      if (StripeWrite *Entry = ownedEntry(WL)) {
        // Already own the stripe (Algorithm 1, lines 21-23).
        if (Mine != nullptr)
          WriteLog.popBack(); // withdraw the unused speculative entry
        addWordWrite(Entry, Addr, Value);
        return;
      }
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Locks), WL);
      if (REPRO_UNLIKELY(Shared)) {
        // Multi-process conflict: the handle's descriptor may live in
        // another process, so the contention manager cannot inspect or
        // kill the owner. If the owner is dead, recover it and retry;
        // otherwise resolve timid (abort self) — symmetric waiting
        // across processes would deadlock, and the randomized back-off
        // in onRollback prevents livelock.
        if (SharedArena::instance().maybeRecoverRemote(WL))
          continue;
        rollback();
      }
      // Write/write conflict, detected eagerly (Algorithm 1, line 26).
      // Note the contended stripe for both parties before the CM can
      // kill either: the victim's abort stays attributed to it.
      auto *Entry = reinterpret_cast<StripeWrite *>(WL);
      SwissTx *Owner = Entry->Owner.load(std::memory_order_relaxed);
      if (Owner != nullptr)
        STM_DIAG_NOTE_CONFLICT(Owner->threadSlot(), Addr,
                               GlobalState.Table.indexOfEntry(&Locks), WL);
      if (Cm.shouldAbort(GlobalState.Config, Owner, this, Attempts, Rng))
        rollback();
      checkKill();
      repro::spinWait(Attempts);
      continue;
    }
    if (Mine == nullptr) {
      Mine = WriteLog.pushDefault();
      Mine->Owner.store(this, std::memory_order_relaxed);
      Mine->Locks = &Locks;
      Mine->Head = nullptr;
      Mine->Self = Shared
                       ? SharedArena::makeHandle(WriteLog.size() - 1, Slot)
                       : reinterpret_cast<Word>(Mine);
    }
    Word Expected = 0;
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().pushIntent(Slot, &Locks.WLock, 0, Mine->Self);
    if (Locks.WLock.compare_exchange_weak(Expected, Mine->Self,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
      break; // acquired (Algorithm 1, line 29)
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().popIntent(Slot);
  }

  // Opacity check after acquisition (Algorithm 1, lines 31-32). The
  // r-lock cannot be locked here: only the w-lock owner locks it.
  Mine->RVersion = Locks.RLock.load(std::memory_order_acquire);
  assert(!rlockIsLocked(Mine->RVersion) &&
         "r-lock locked while w-lock was free");
  if (rlockVersion(Mine->RVersion) > ValidTs &&
      !extendEpoch(GlobalState.CommitTs, GlobalState.Config.EnableExtension,
                   rlockVersion(Mine->RVersion))) {
    STM_DIAG_NOTE_CONFLICT(Slot, Addr, GlobalState.Table.indexOfEntry(&Locks),
                           Mine->RVersion);
    rollback();
  }

  addWordWrite(Mine, Addr, Value);
  Cm.onWrite(GlobalState.Config, GlobalState.GreedyTs,
             WordWriteCount); // Algorithm 1, line 33
}

void SwissTx::addWordWrite(StripeWrite *Entry, Word *Addr, Word Value) {
  for (WordWrite *W = Entry->Head; W; W = W->Next) {
    if (W->Addr == Addr) {
      W->Value = Value; // Algorithm 1, line 22
      return;
    }
  }
  WordWrite *W = WordLog.pushDefault();
  W->Addr = Addr;
  W->Value = Value;
  W->Next = Entry->Head;
  Entry->Head = W;
  ++WordWriteCount;
}

void SwissTx::commit() {
  assert(Depth > 0 && "commit outside a transaction");
  checkKill();

  // Read-only fast path (Algorithm 1, line 35).
  if (WriteLog.empty()) {
    ++Stats.ReadOnlyCommits;
    baseCommit(GlobalState.CommitTs.load());
    return;
  }

  // Lock the r-locks of every stripe we wrote (Algorithm 1, line 36;
  // the pseudo-code's "read-log" there is the paper's known typo for
  // the write log -- the text says "locations T has written to").
  // Shared mode records an intent per r-lock first: the w-lock owner is
  // the only possible r-locker, so a recovery CAS from RLockLocked can
  // never strip a live peer's commit lock.
  const bool Shared = GlobalState.SharedWords;
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(E.Locks),
                  RLockLocked);
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().pushIntent(Slot, &E.Locks->RLock, E.RVersion,
                                         RLockLocked);
    E.Locks->RLock.exchange(RLockLocked, std::memory_order_acq_rel);
  });
  // Order the r-lock stores before the data write-back below on
  // non-TSO hardware.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  // Commit timestamp under the configured clock policy (line 37); the
  // shortcut rules live in core::TimeValidation (only an Owned stamp
  // directly following valid-ts may skip commit validation).
  CommitStamp Stamp = takeCommitStamp(GlobalState.CommitTs, [this] {
    uint64_t MaxOverwritten = 0;
    WriteLog.forEach([&MaxOverwritten](StripeWrite &E) {
      if (rlockVersion(E.RVersion) > MaxOverwritten)
        MaxOverwritten = rlockVersion(E.RVersion);
    });
    return MaxOverwritten;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  // Kill-point for the process-recovery test: park here forever —
  // stamped, every r/w-lock held, write-back not begun — so a SIGKILL
  // lands at the worst still-recoverable lazy-commit moment.
  if (STM_DIAG_INJECTED(ParkAtCommitStamp))
    for (;;)
      repro::cpuRelax();
  if (mustValidateCommit(Stamp) && !revalidate()) {
    // Failed commit-time validation: restore r-locks, roll back
    // (Algorithm 1, lines 38-41).
    WriteLog.forEach([](StripeWrite &E) {
      E.Locks->RLock.store(E.RVersion, std::memory_order_release);
    });
    rollback();
  }

  // Write back and release (Algorithm 1, lines 42-45). From the first
  // data store until the last lock release the transaction is beyond
  // the point of no return: mark the phase so a death inside this
  // window poisons the segment (peers may have read half-written
  // state) instead of being "recovered" by restoring pre-lock values.
  if (REPRO_UNLIKELY(Shared))
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseWriteBack);
  WriteLog.forEach([&](StripeWrite &E) {
    STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(E.Locks),
                  Ts);
    for (WordWrite *W = E.Head; W; W = W->Next)
      racyStore(W->Addr, W->Value);
    E.Locks->RLock.store(rlockMake(Ts), std::memory_order_release);
    E.Locks->WLock.store(0, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(Shared)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }

  baseCommit(Ts);

  // Optional quiescence for privatization safety (Section 6): wait
  // until every in-flight transaction has validated at or past our
  // commit timestamp. A transaction validated at >= Ts cannot hold a
  // stale path to anything this commit made private (its extension
  // would have failed on the cells we overwrote).
  if (GlobalState.Config.PrivatizationSafe) {
    // Under a deferred clock the counter may still be below Ts, and
    // in-flight readers only advance it on a validation miss they may
    // never take: publish Ts first so fresh attempts start at or past
    // it and the fence below terminates.
    GlobalState.CommitTs.advanceTo(Ts, Slot);
    unsigned SpinStep = 0;
    while (repro::ThreadRegistry::minActiveStart() < Ts) {
      STM_DIAG_HOOK(Slot, Validate, ::stm::diag::NoStripe, Ts);
      // A dead peer's slot would hold minActiveStart down forever.
      if (REPRO_UNLIKELY(Shared) && (SpinStep & 63) == 63)
        SharedArena::instance().sweepDeadProcesses();
      repro::spinWait(SpinStep);
    }
  }
}

void SwissTx::rollback() {
  // Release all write locks (Algorithm 1, lines 47-48). The last log
  // entry may be speculative (pushed for a CAS that never succeeded
  // before the abort), so only release locks that actually point at
  // our entry -- blindly storing 0 would steal another owner's lock.
  WriteLog.forEach([](StripeWrite &E) {
    if (E.Locks != nullptr &&
        E.Locks->WLock.load(std::memory_order_relaxed) == E.Self)
      E.Locks->WLock.store(0, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(GlobalState.SharedWords))
    SharedArena::instance().clearIntents(Slot);
  baseAbort();
  Cm.onRollback(GlobalState.Config, Rng,
                SuccessiveAborts); // Algorithm 1, line 49
  std::longjmp(*EnvTarget, 1);
}

bool SwissTx::validateReadSet() {
  // Algorithm 1, lines 50-53.
  for (const ReadEntry &R : ReadLog) {
    Word Cur = R.Locks->RLock.load(std::memory_order_acquire);
    if (Cur == R.RValue)
      continue;
    if (rlockIsLocked(Cur)) {
      // is-locked-by(r-lock, tx): the r-lock carries no owner, so check
      // the paired w-lock, which only the locking committer can hold.
      Word WL = R.Locks->WLock.load(std::memory_order_acquire);
      if (WL != 0 && ownedEntry(WL) != nullptr)
        continue;
    }
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(R.Locks), Cur);
    return false;
  }
  return true;
}
