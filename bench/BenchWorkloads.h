//===- bench/BenchWorkloads.h - workload adapters for benches ---*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Thin adapters binding each workload to the BenchUtil drivers so the
// figure binaries stay one-screen long.
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHWORKLOADS_H
#define BENCH_BENCHWORKLOADS_H

#include "bench/BenchUtil.h"
#include "workloads/leetm/LeeRouter.h"
#include "workloads/rbtree/RbTree.h"
#include "workloads/stamp/Stamp.h"
#include "workloads/stmbench7/Bench7.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bench {

//===----------------------------------------------------------------------===//
// Red-black tree microbenchmark (paper: range 16384, 20 % updates)
//===----------------------------------------------------------------------===//

struct RbTreeParams {
  uint64_t Range = 16384;
  unsigned UpdatePercent = 20;
};

/// Throughput of the red-black tree microbenchmark on \p STM.
template <typename STM>
RunResult rbTreeThroughput(const stm::StmConfig &Config, unsigned Threads,
                           const RbTreeParams &Params = RbTreeParams()) {
  using Tree = workloads::RbTree<STM>;
  return runThroughput<STM>(
      Config, Threads,
      [&] {
        auto Tree_ = std::make_unique<Tree>();
        stm::ThreadScope<STM> Scope;
        auto &Tx = Scope.tx();
        for (uint64_t K = 0; K < Params.Range; K += 2)
          stm::atomically(Tx,
                          [&](auto &T) { Tree_->insert(T, K, K); });
        return Tree_;
      },
      [Params](Tree &T, typename STM::Tx &Tx, repro::Xorshift &Rng) {
        uint64_t Key = Rng.nextBounded(Params.Range);
        unsigned P = static_cast<unsigned>(Rng.nextBounded(100));
        if (P < Params.UpdatePercent / 2)
          stm::atomically(Tx, [&](auto &X) { T.insert(X, Key, Key); });
        else if (P < Params.UpdatePercent)
          stm::atomically(Tx, [&](auto &X) { T.remove(X, Key); });
        else
          stm::atomically(Tx, [&](auto &X) { T.lookup(X, Key); });
      });
}

//===----------------------------------------------------------------------===//
// STMBench7-lite
//===----------------------------------------------------------------------===//

/// Throughput of one STMBench7-lite workload on \p STM.
template <typename STM>
RunResult bench7Throughput(const stm::StmConfig &Config, unsigned Threads,
                           workloads::sb7::Workload7 Workload) {
  using B7 = workloads::sb7::Bench7<STM>;
  return runThroughput<STM>(
      Config, Threads,
      [] { return std::make_unique<B7>(); },
      [Workload](B7 &B, typename STM::Tx &Tx, repro::Xorshift &Rng) {
        B.runOperation(Tx, Rng, Workload);
      });
}

//===----------------------------------------------------------------------===//
// Lee-TM (fixed work: route every net; Value = seconds)
//===----------------------------------------------------------------------===//

template <typename STM>
RunResult leeTimed(const stm::StmConfig &Config, unsigned Threads,
                   workloads::lee::Board Board, double Scale = 1.0,
                   unsigned IrregularPercent = 0) {
  using Router = workloads::lee::LeeRouter<STM>;
  struct Ctx {
    std::unique_ptr<Router> R;
  };
  unsigned W = 0, H = 0;
  auto Jobs = workloads::lee::generateBoard(Board, W, H, Scale);
  return runTimed<STM>(
      Config, Threads,
      [&] {
        auto C = std::make_unique<Ctx>();
        C->R = std::make_unique<Router>(W, H, Jobs, IrregularPercent);
        return C;
      },
      [](Ctx &C, typename STM::Tx &Tx, unsigned Tid) {
        C.R->work(Tx, Tid + 1);
      });
}

//===----------------------------------------------------------------------===//
// STAMP-lite: every workload as a fixed-work run (Value = seconds)
//===----------------------------------------------------------------------===//

template <typename STM>
RunResult stampBayes(const stm::StmConfig &Config, unsigned Threads) {
  using App = workloads::stamp::Bayes<STM>;
  workloads::stamp::BayesConfig Cfg;
  Cfg.ProposalsPerThread = 600 / Threads + 1;
  return runTimed<STM>(
      Config, Threads, [&] { return std::make_unique<App>(Cfg); },
      [](App &A, typename STM::Tx &Tx, unsigned Tid) {
        A.work(Tx, Tid + 1);
      });
}

template <typename STM>
RunResult stampGenome(const stm::StmConfig &Config, unsigned Threads) {
  using App = workloads::stamp::Genome<STM>;
  workloads::stamp::GenomeConfig Cfg;
  Cfg.GenomeLength = 2048;
  struct Ctx {
    explicit Ctx(const workloads::stamp::GenomeConfig &C, unsigned Parties)
        : A(C), Barrier(Parties) {}
    App A;
    SpinBarrier Barrier;
  };
  return runTimed<STM>(
      Config, Threads,
      [&] { return std::make_unique<Ctx>(Cfg, Threads); },
      [](Ctx &C, typename STM::Tx &Tx, unsigned) {
        C.A.dedupWorker(Tx);
        if (C.Barrier.arriveAndWait())
          C.A.buildSegmentArray(); // sequential inter-phase step
        C.Barrier.arriveAndWait();
        C.A.indexWorker(Tx);
        if (C.Barrier.arriveAndWait())
          C.A.resetClaims();
        C.Barrier.arriveAndWait();
        C.A.linkWorker(Tx);
      });
}

template <typename STM>
RunResult stampIntruder(const stm::StmConfig &Config, unsigned Threads) {
  using App = workloads::stamp::Intruder<STM>;
  workloads::stamp::IntruderConfig Cfg;
  Cfg.Flows = 384;
  return runTimed<STM>(
      Config, Threads, [&] { return std::make_unique<App>(Cfg); },
      [](App &A, typename STM::Tx &Tx, unsigned) { A.work(Tx); });
}

template <typename STM>
RunResult stampKMeans(const stm::StmConfig &Config, unsigned Threads,
                      bool HighContention) {
  using App = workloads::stamp::KMeans<STM>;
  workloads::stamp::KMeansConfig Cfg;
  Cfg.Points = 1024;
  Cfg.Clusters = HighContention ? 4 : 16;
  Cfg.Iterations = 4;
  struct Ctx {
    std::unique_ptr<App> A;
    std::atomic<unsigned> Arrived{0};
    std::atomic<unsigned> Iteration{0};
  };
  unsigned NumThreads = Threads;
  unsigned Iterations = Cfg.Iterations;
  return runTimed<STM>(
      Config, Threads,
      [&] {
        auto C = std::make_unique<Ctx>();
        C->A = std::make_unique<App>(Cfg);
        return C;
      },
      [NumThreads, Iterations](Ctx &C, typename STM::Tx &Tx, unsigned Tid) {
        unsigned N = C.A->pointCount();
        unsigned Chunk = (N + NumThreads - 1) / NumThreads;
        for (unsigned Iter = 0; Iter < Iterations; ++Iter) {
          unsigned Begin = Tid * Chunk;
          unsigned End = std::min(N, Begin + Chunk);
          if (Begin < End)
            C.A->assignChunk(Tx, Begin, End);
          // Sense-reversing-free barrier: last thread of the iteration
          // folds the accumulators and releases the others.
          unsigned Arrived = C.Arrived.fetch_add(1) + 1;
          if (Arrived == NumThreads * (Iter + 1)) {
            C.A->finishIteration();
            C.Iteration.fetch_add(1);
          } else {
            unsigned IterSpin = 0;
            while (C.Iteration.load() <= Iter)
              repro::spinWait(IterSpin);
          }
        }
      });
}

template <typename STM>
RunResult stampLabyrinth(const stm::StmConfig &Config, unsigned Threads) {
  using Router = workloads::stamp::Labyrinth<STM>;
  workloads::stamp::LabyrinthConfig Cfg;
  auto Jobs = workloads::stamp::labyrinthJobs(Cfg);
  return runTimed<STM>(
      Config, Threads,
      [&] {
        return std::make_unique<Router>(Cfg.Width, Cfg.Height, Jobs);
      },
      [](Router &R, typename STM::Tx &Tx, unsigned Tid) {
        R.work(Tx, Tid + 1);
      });
}

template <typename STM>
RunResult stampSsca2(const stm::StmConfig &Config, unsigned Threads) {
  using App = workloads::stamp::Ssca2<STM>;
  workloads::stamp::Ssca2Config Cfg;
  Cfg.VerticesLog2 = 11;
  return runTimed<STM>(
      Config, Threads, [&] { return std::make_unique<App>(Cfg); },
      [](App &A, typename STM::Tx &Tx, unsigned) { A.work(Tx); });
}

template <typename STM>
RunResult stampVacation(const stm::StmConfig &Config, unsigned Threads,
                        bool HighContention) {
  using App = workloads::stamp::Vacation<STM>;
  workloads::stamp::VacationConfig Cfg = HighContention
                                             ? workloads::stamp::vacationHigh()
                                             : workloads::stamp::vacationLow();
  unsigned OpsPerThread = 3000 / Threads + 1;
  return runTimed<STM>(
      Config, Threads, [&] { return std::make_unique<App>(Cfg); },
      [OpsPerThread](App &A, typename STM::Tx &Tx, unsigned Tid) {
        repro::Xorshift Rng(repro::testSeed(Tid * 97 + 11));
        for (unsigned I = 0; I < OpsPerThread; ++I)
          A.clientOp(Tx, Rng);
      });
}

template <typename STM>
RunResult stampYada(const stm::StmConfig &Config, unsigned Threads) {
  using App = workloads::stamp::Yada<STM>;
  workloads::stamp::YadaConfig Cfg;
  Cfg.GridCells = 10;
  return runTimed<STM>(
      Config, Threads, [&] { return std::make_unique<App>(Cfg); },
      [](App &A, typename STM::Tx &Tx, unsigned) { A.work(Tx); });
}

/// Dispatch table over the ten STAMP workload names of Figure 3.
template <typename STM>
RunResult runStampWorkload(const std::string &Name,
                           const stm::StmConfig &Config, unsigned Threads) {
  if (Name == "bayes")
    return stampBayes<STM>(Config, Threads);
  if (Name == "genome")
    return stampGenome<STM>(Config, Threads);
  if (Name == "intruder")
    return stampIntruder<STM>(Config, Threads);
  if (Name == "kmeans-high")
    return stampKMeans<STM>(Config, Threads, true);
  if (Name == "kmeans-low")
    return stampKMeans<STM>(Config, Threads, false);
  if (Name == "labyrinth")
    return stampLabyrinth<STM>(Config, Threads);
  if (Name == "ssca2")
    return stampSsca2<STM>(Config, Threads);
  if (Name == "vacation-high")
    return stampVacation<STM>(Config, Threads, true);
  if (Name == "vacation-low")
    return stampVacation<STM>(Config, Threads, false);
  if (Name == "yada")
    return stampYada<STM>(Config, Threads);
  std::fprintf(stderr, "unknown STAMP workload: %s\n", Name.c_str());
  std::abort();
}

inline const std::vector<std::string> &stampWorkloads() {
  static const std::vector<std::string> Names = {
      "bayes",  "genome",   "intruder",      "kmeans-high", "kmeans-low",
      "labyrinth", "ssca2", "vacation-high", "vacation-low", "yada"};
  return Names;
}

} // namespace bench

#endif // BENCH_BENCHWORKLOADS_H
