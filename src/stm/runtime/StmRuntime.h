//===- stm/runtime/StmRuntime.h - type-erased STM runtime -------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// One runtime, many workloads: the paper's data (Figures 2-13) show no
// single conflict-detection/CM configuration winning everywhere, and
// SwissTM itself escalates its contention manager in two phases. This
// layer generalizes that idea to whole-backend selection. StmRuntime is
// a drop-in model of the templated facade concept (Tx, globalInit,
// globalShutdown, name) whose descriptor — TxHandle — dispatches
// load/store/commit through a per-backend function-pointer table
// (stm/runtime/BackendOps.h), so the backend is chosen by
// StmConfig::Backend / STM_BACKEND at init instead of by a template
// parameter at compile time.
//
// AdaptiveRuntime (StmConfig::Adaptive / STM_ADAPTIVE=1) adds the mode
// switcher: committing threads feed windowed TxStats (abort rate,
// read/write mix) into a global window; when a window's abort rate
// crosses the escalation threshold the leading thread switches every
// thread to SwissTM (eager w/w + two-phase CM), and when contention
// subsides it de-escalates to a cheaper fixed-policy backend. Switches
// happen at full quiescence points reusing the EpochManager's grace
// periods:
//
//   1. the switcher closes the start gate (TargetGen != CurrentGen);
//      new attempts spin in TxHandle::onStart before pinning an epoch;
//   2. it waits until every slot is epoch-quiescent
//      (EpochManager::minPinnedEpoch() == ~0), i.e. all in-flight
//      transactions have committed or rolled back — all transactional
//      memory now holds committed values only;
//   3. it installs the new backend and reopens the gate
//      (CurrentGen = TargetGen); each thread rebinds its TxHandle to
//      the new backend's descriptor on its next attempt.
//
// An attempt that pins concurrently with the switcher's quiescence scan
// rechecks the gate *after* the pin (the pin's seq_cst fence pairs with
// the scan's, see EpochManager.h) and restarts through the ordinary
// abort path before its first transactional access, so no transaction
// ever runs on the outgoing backend concurrently with one on the
// incoming backend.
//
//===----------------------------------------------------------------------===//

#ifndef STM_RUNTIME_STMRUNTIME_H
#define STM_RUNTIME_STMRUNTIME_H

#include "stm/Config.h"
#include "stm/runtime/Backend.h"
#include "stm/runtime/BackendOps.h"
#include "stm/Word.h"
#include "support/Stats.h"

#include <atomic>
#include <csetjmp>
#include <cstddef>
#include <cstdint>

namespace stm::rt {

/// Global state of the runtime layer. The per-backend algorithm state
/// stays in each backend's own globals; this only holds the selection
/// and switch machinery.
struct RuntimeGlobals {
  StmConfig Config;

  /// Which backends globalInit has initialized (all of them in adaptive
  /// mode, just the selected one otherwise).
  bool BackendLive[NumBackends] = {};

  /// Backend of the current generation; reads are ordered by CurrentGen.
  std::atomic<unsigned> ActiveKind{0};

  /// Switch protocol: the gate is open while TargetGen == CurrentGen.
  /// The switcher bumps TargetGen first (closing the gate), drains, and
  /// publishes CurrentGen last (reopening it on the new backend).
  std::atomic<uint32_t> CurrentGen{0};
  std::atomic<uint32_t> TargetGen{0};

  /// True when the switching machinery (gate checks, commit-side window
  /// accounting) is active; false pins the fixed-backend fast path.
  std::atomic<bool> Dynamic{false};

  /// Windowed commit-side statistics feeding the adaptive policy.
  std::atomic<uint64_t> WindowCommits{0};
  std::atomic<uint64_t> WindowAborts{0};
  std::atomic<uint64_t> WindowReads{0};
  std::atomic<uint64_t> WindowWrites{0};

  /// Total backend switches since globalInit (monotone).
  std::atomic<uint64_t> SwitchCount{0};
};

RuntimeGlobals &runtimeGlobals();

/// The registered dispatch table of \p Kind.
const BackendOps &backendOps(BackendKind Kind);

/// Type-erased transaction descriptor: one per thread (created by
/// ThreadScope<StmRuntime>), wrapping one lazily created backend
/// descriptor per backend. The wrapped descriptors longjmp to this
/// handle's jmp_buf (TxBase::redirectJumpEnv), so the boundary stays
/// armed across a backend switch between retries.
class TxHandle {
public:
  explicit TxHandle(unsigned Slot);
  ~TxHandle() = default;

  TxHandle(const TxHandle &) = delete;
  TxHandle &operator=(const TxHandle &) = delete;

  std::jmp_buf &jumpEnv() { return Env; }

  bool inTransaction() const { return CurOps->InTransaction(Cur); }

  /// Begins (or restarts) an attempt. Fixed mode is one indirect call;
  /// dynamic mode adds the switch-gate protocol (see file comment).
  void onStart() {
    if (!runtimeGlobals().Dynamic.load(std::memory_order_relaxed)) {
      CurOps->OnStart(Cur);
      return;
    }
    startDynamic();
  }

  Word load(const Word *Addr) { return CurOps->Load(Cur, Addr); }
  void store(Word *Addr, Word Value) { CurOps->Store(Cur, Addr, Value); }

  void commit() {
    CurOps->Commit(Cur);
    if (runtimeGlobals().Dynamic.load(std::memory_order_relaxed))
      afterCommitDynamic();
  }

  [[noreturn]] void restart() { CurOps->Restart(Cur); }

  /// Batch admission (see workloads/server): pins this slot's
  /// reclamation epoch once for a run of back-to-back transactions, so
  /// each transaction inside the batch skips the per-attempt pin (one
  /// seq_cst fence) and the per-commit unpin/publishIdle stores. Must be
  /// called outside any transaction; batches should stay short (tens of
  /// transactions) because the pinned epoch blocks limbo reclamation for
  /// the batch's whole duration. In dynamic (adaptive) mode this is a
  /// no-op — a batch-held pin would deadlock against the switch drain,
  /// which waits for every slot to go epoch-quiescent while the batch
  /// owner waits for the gate to reopen. Returns true when the batch
  /// pin was actually taken. Prefer the TxBatch RAII guard.
  bool batchBegin();

  /// Ends a batch begun by batchBegin: clears the descriptor flag,
  /// publishes idle and unpins the epoch. No-op if batchBegin declined.
  void batchEnd();

  void *txMalloc(std::size_t Size) { return CurOps->TxMalloc(Cur, Size); }
  void txFree(void *Ptr) { CurOps->TxFree(Cur, Ptr); }

  /// Counters aggregated over every backend descriptor this handle has
  /// used, plus the handle's own ModeSwitches. By value: the aggregate
  /// has no single owning backend.
  repro::TxStats stats() const;

  unsigned threadSlot() const { return Slot; }

  /// Backend this handle is currently bound to.
  BackendKind boundBackend() const { return Kind; }

  /// Thread-exit hook (see ThreadScope): flushes window deltas pending
  /// since the last FlushInterval boundary (so the adaptive stats stay
  /// exact under thread churn), then retires every wrapped backend
  /// descriptor to the EpochManager; the handle itself is retired by
  /// the caller.
  void threadShutdown();

private:
  void startDynamic();
  void afterCommitDynamic();
  void flushWindow();
  void evaluatePolicy();
  void rebind(BackendKind NewKind);

  std::jmp_buf Env;
  void *Cur = nullptr;             ///< bound backend descriptor
  const BackendOps *CurOps = nullptr;
  BackendKind Kind = BackendKind::SwissTm;
  uint32_t BoundGen = 0;           ///< generation Kind was read at
  unsigned Slot;

  void *Inner[NumBackends] = {};   ///< lazily created, retired at exit

  /// Window accounting (dynamic mode): deltas since the last flush,
  /// batched to keep atomics off the per-commit path. The flush fires
  /// on whichever cadence fills first — commits, or attempts for the
  /// abort-storm regime where commits stall.
  repro::TxStats Flushed;          ///< aggregate stats at last flush
  unsigned CommitsSinceFlush = 0;
  unsigned AttemptsSinceFlush = 0;
  uint64_t HandleModeSwitches = 0;
  uint64_t HandleBatches = 0;      ///< batches entered (TxStats::Batches)
  bool BatchActive = false;        ///< batchBegin took the epoch pin

  /// Events between window flushes; a divisor of typical windows.
  static constexpr unsigned FlushInterval = 32;
};

/// RAII batch-admission guard over TxHandle::batchBegin/batchEnd. The
/// serving workloads open one TxBatch per dequeued request batch:
///
///   {
///     stm::rt::TxBatch Batch(Tx);
///     for (const Request &R : Requests)
///       stm::atomically(Tx, [&](auto &T) { serve(T, R); });
///   } // epoch unpinned here
class TxBatch {
public:
  explicit TxBatch(TxHandle &Handle) : Handle(Handle) {
    Handle.batchBegin();
  }
  ~TxBatch() { Handle.batchEnd(); }

  TxBatch(const TxBatch &) = delete;
  TxBatch &operator=(const TxBatch &) = delete;

private:
  TxHandle &Handle;
};

/// The runtime STM facade: models the same concept as the templated
/// backends, so every workload, bench driver and test harness written
/// against that concept runs unchanged with the backend picked at
/// globalInit time (StmConfig::Backend, or STM_BACKEND via
/// configFromEnv).
class StmRuntime {
public:
  using Tx = TxHandle;

  /// Name of the *configured* backend (stable across globalShutdown, so
  /// reports emitted after teardown still label rows correctly).
  static const char *name();

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();

  /// Backend currently executing transactions.
  static BackendKind activeBackend();

  /// Total adaptive/manual switches since globalInit.
  static uint64_t switchCount();

  /// Drains all in-flight transactions at a quiescence point and
  /// switches every thread to \p Target. Only legal in dynamic mode
  /// (StmConfig::Adaptive); returns false if the runtime is fixed, the
  /// target equals the active backend, or a concurrent switch won the
  /// gate. Must be called outside any transaction.
  static bool requestSwitch(BackendKind Target);
};

/// The mode-switching facade: StmRuntime with the adaptive policy
/// forced on. Exists so type lists and bench grids can name adaptivity
/// as one more contender next to the fixed backends.
class AdaptiveRuntime {
public:
  using Tx = TxHandle;

  static const char *name() { return "adaptive"; }

  static void globalInit(StmConfig Config) {
    Config.Adaptive = true;
    StmRuntime::globalInit(Config);
  }
  static void globalShutdown() { StmRuntime::globalShutdown(); }
};

} // namespace stm::rt

namespace stm {
using rt::AdaptiveRuntime;
using rt::StmRuntime;
} // namespace stm

#endif // STM_RUNTIME_STMRUNTIME_H
