//===- tests/ContainersTest.cpp - transactional container tests ----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "workloads/containers/TxHashMap.h"
#include "workloads/containers/TxList.h"
#include "workloads/containers/TxQueue.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace stm;
using namespace workloads;
using repro_test::runThreads;

namespace {

template <typename STM> class ContainersTest : public ::testing::Test {
protected:
  void SetUp() override {
    StmConfig Config;
    Config.LockTableSizeLog2 = 16;
    STM::globalInit(Config);
  }
  void TearDown() override { STM::globalShutdown(); }
};

TYPED_TEST_SUITE(ContainersTest, repro_test::AllStms);

TYPED_TEST(ContainersTest, ListInsertLookupRemove) {
  TxList<TypeParam> List;
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    bool Ok = false;
    bool *OkPtr = &Ok;
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.insert(T, 5, 50); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.insert(T, 5, 99); });
    EXPECT_FALSE(Ok);
    Word Val = 0;
    Word *ValPtr = &Val;
    atomically(Tx, [&, OkPtr, ValPtr](auto &T) {
      *OkPtr = List.lookup(T, 5, ValPtr);
    });
    EXPECT_TRUE(Ok);
    EXPECT_EQ(Val, 50u);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.remove(T, 5); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.lookup(T, 5); });
    EXPECT_FALSE(Ok);
  });
  EXPECT_EQ(List.sizeRaw(), 0u);
}

TYPED_TEST(ContainersTest, ListStaysSortedUnderRandomOps) {
  TxList<TypeParam> List;
  std::set<uint64_t> Model;
  repro::Xorshift Rng(repro::testSeed(31));
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 1500; ++I) {
      uint64_t Key = Rng.nextBounded(64);
      if (Rng.nextPercent(50)) {
        bool Got = false;
        bool *GotPtr = &Got;
        atomically(Tx, [&, GotPtr, Key](auto &T) {
          *GotPtr = List.insert(T, Key, Key);
        });
        ASSERT_EQ(Got, Model.insert(Key).second);
      } else {
        bool Got = false;
        bool *GotPtr = &Got;
        atomically(Tx,
                   [&, GotPtr, Key](auto &T) { *GotPtr = List.remove(T, Key); });
        ASSERT_EQ(Got, Model.erase(Key) > 0);
      }
    }
  });
  EXPECT_TRUE(List.verifySorted());
  EXPECT_EQ(List.sizeRaw(), Model.size());
}

TYPED_TEST(ContainersTest, ListUpdateChangesValue) {
  TxList<TypeParam> List;
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    atomically(Tx, [&](auto &T) { List.insert(T, 1, 10); });
    bool Ok = false;
    bool *OkPtr = &Ok;
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.update(T, 1, 20); });
    EXPECT_TRUE(Ok);
    atomically(Tx, [&, OkPtr](auto &T) { *OkPtr = List.update(T, 2, 20); });
    EXPECT_FALSE(Ok);
    Word Val = 0;
    Word *ValPtr = &Val;
    atomically(Tx,
               [&, ValPtr](auto &T) { List.lookup(T, 1, ValPtr); });
    EXPECT_EQ(Val, 20u);
  });
}

TYPED_TEST(ContainersTest, ConcurrentListInsertDisjoint) {
  TxList<TypeParam> List;
  constexpr unsigned Threads = 4, PerThread = 200;
  runThreads<TypeParam>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned K = 0; K < PerThread; ++K)
      atomically(Tx, [&](auto &T) {
        List.insert(T, uint64_t(Id) * PerThread + K, K);
      });
  });
  EXPECT_EQ(List.sizeRaw(), Threads * PerThread);
  EXPECT_TRUE(List.verifySorted());
}

TYPED_TEST(ContainersTest, HashMapMatchesStdMap) {
  TxHashMap<TypeParam> Map(6);
  std::map<uint64_t, uint64_t> Model;
  repro::Xorshift Rng(repro::testSeed(77));
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    for (int I = 0; I < 2000; ++I) {
      uint64_t Key = Rng.nextBounded(512);
      unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
      bool Got = false;
      bool *GotPtr = &Got;
      if (Kind == 0) {
        atomically(Tx, [&, GotPtr, Key](auto &T) {
          *GotPtr = Map.insert(T, Key, Key * 3);
        });
        ASSERT_EQ(Got, Model.emplace(Key, Key * 3).second);
      } else if (Kind == 1) {
        atomically(Tx,
                   [&, GotPtr, Key](auto &T) { *GotPtr = Map.remove(T, Key); });
        ASSERT_EQ(Got, Model.erase(Key) > 0);
      } else {
        Word Val = 0;
        Word *ValPtr = &Val;
        atomically(Tx, [&, GotPtr, ValPtr, Key](auto &T) {
          *GotPtr = Map.lookup(T, Key, ValPtr);
        });
        auto It = Model.find(Key);
        ASSERT_EQ(Got, It != Model.end());
        if (Got) {
          ASSERT_EQ(Val, It->second);
        }
      }
    }
  });
  EXPECT_EQ(Map.sizeRaw(), Model.size());
}

TYPED_TEST(ContainersTest, HashMapConcurrentDisjointInserts) {
  TxHashMap<TypeParam> Map(8);
  constexpr unsigned Threads = 4, PerThread = 300;
  runThreads<TypeParam>(Threads, [&](unsigned Id, auto &Tx) {
    for (unsigned K = 0; K < PerThread; ++K)
      atomically(Tx, [&](auto &T) {
        Map.insert(T, uint64_t(Id) * PerThread + K, Id);
      });
  });
  EXPECT_EQ(Map.sizeRaw(), Threads * PerThread);
}

TYPED_TEST(ContainersTest, HashMapConcurrentSameKeysOneWinnerEach) {
  TxHashMap<TypeParam> Map(4);
  constexpr unsigned Threads = 4;
  constexpr unsigned Keys = 100;
  std::atomic<uint64_t> Wins{0};
  runThreads<TypeParam>(Threads, [&](unsigned, auto &Tx) {
    uint64_t MyWins = 0;
    for (unsigned K = 0; K < Keys; ++K) {
      bool Got = false;
      bool *GotPtr = &Got;
      atomically(Tx, [&, GotPtr, K](auto &T) {
        *GotPtr = Map.insert(T, K, K);
      });
      MyWins += Got;
    }
    Wins.fetch_add(MyWins);
  });
  EXPECT_EQ(Wins.load(), Keys) << "each key must be inserted exactly once";
  EXPECT_EQ(Map.sizeRaw(), Keys);
}

TYPED_TEST(ContainersTest, QueueFifoOrder) {
  TxQueue<TypeParam> Queue;
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    for (Word I = 1; I <= 10; ++I)
      atomically(Tx, [&](auto &T) { Queue.enqueue(T, I); });
    for (Word I = 1; I <= 10; ++I) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      ASSERT_TRUE(Ok);
      ASSERT_EQ(Item, I);
    }
    bool Ok = true;
    bool *OkPtr = &Ok;
    Word Item;
    Word *ItemPtr = &Item;
    atomically(Tx, [&, OkPtr, ItemPtr](auto &T) {
      *OkPtr = Queue.dequeue(T, ItemPtr);
    });
    EXPECT_FALSE(Ok) << "queue must be empty";
  });
  EXPECT_EQ(Queue.sizeRaw(), 0u);
}

TYPED_TEST(ContainersTest, QueueConcurrentDrainExactlyOnce) {
  TxQueue<TypeParam> Queue;
  constexpr unsigned Items = 600;
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    for (Word I = 0; I < Items; ++I)
      atomically(Tx, [&](auto &T) { Queue.enqueue(T, I + 1); });
  });
  std::atomic<uint64_t> Sum{0}, Count{0};
  runThreads<TypeParam>(4, [&](unsigned, auto &Tx) {
    uint64_t MySum = 0, MyCount = 0;
    while (true) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      if (!Ok)
        break;
      MySum += Item;
      ++MyCount;
    }
    Sum.fetch_add(MySum);
    Count.fetch_add(MyCount);
  });
  EXPECT_EQ(Count.load(), Items);
  EXPECT_EQ(Sum.load(), uint64_t(Items) * (Items + 1) / 2);
}

TYPED_TEST(ContainersTest, QueueInterleavedProducersConsumers) {
  TxQueue<TypeParam> Queue;
  constexpr unsigned PerProducer = 300;
  std::atomic<uint64_t> Consumed{0};
  std::atomic<unsigned> ProducersDone{0};
  runThreads<TypeParam>(4, [&](unsigned Id, auto &Tx) {
    if (Id < 2) {
      for (Word I = 0; I < PerProducer; ++I)
        atomically(Tx, [&](auto &T) { Queue.enqueue(T, I + 1); });
      ProducersDone.fetch_add(1);
    } else {
      while (true) {
        Word Item = 0;
        bool Ok = false;
        Word *ItemPtr = &Item;
        bool *OkPtr = &Ok;
        atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
          *OkPtr = Queue.dequeue(T, ItemPtr);
        });
        if (Ok) {
          Consumed.fetch_add(1);
        } else if (ProducersDone.load() == 2) {
          break;
        }
      }
    }
  });
  // Drain any leftovers.
  runThreads<TypeParam>(1, [&](unsigned, auto &Tx) {
    while (true) {
      Word Item = 0;
      bool Ok = false;
      Word *ItemPtr = &Item;
      bool *OkPtr = &Ok;
      atomically(Tx, [&, ItemPtr, OkPtr](auto &T) {
        *OkPtr = Queue.dequeue(T, ItemPtr);
      });
      if (!Ok)
        break;
      Consumed.fetch_add(1);
    }
  });
  EXPECT_EQ(Consumed.load(), 2u * PerProducer);
}

} // namespace
