//===- bench/bench_fig4_leetm.cpp - Figure 4 --------------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Figure 4: Lee-TM execution time on the memory (top) and main (bottom)
// boards for SwissTM, TinySTM and RSTM, threads 1..8. (The paper could
// not run TL2 on Lee-TM; our port can, so TL2 is reported as an extra
// series.)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchWorkloads.h"

using namespace bench;
using workloads::lee::Board;

static void sweep(stm::rt::BackendKind Kind, Board B) {
  const char *Name = stm::rt::backendName(Kind);
  for (unsigned Threads : threadSweep()) {
    RunResult R =
        leeTimed<stm::StmRuntime>(rtConfig(Kind), Threads, B, /*Scale=*/0.8);
    Report::instance().add("fig4", workloads::lee::boardName(B), Name,
                           Threads, "seconds", R.Value);
    Report::instance().add("fig4", workloads::lee::boardName(B), Name,
                           Threads, "abort_ratio", R.Stats.abortRatio());
  }
}

int main(int argc, char **argv) {
  bench::parseStmFlags(argc, argv);
  // All four backends (the paper could not run TL2 on Lee-TM; our port
  // can, so TL2 rides along as an extra series).
  for (Board B : {Board::Memory, Board::Main})
    for (stm::rt::BackendKind Kind : stm::rt::allBackendKinds())
      sweep(Kind, B);
  Report::instance().print("4", "Lee-TM execution time, memory + main");
  return 0;
}
