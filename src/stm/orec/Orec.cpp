//===- stm/orec/Orec.cpp - eager orec/undo-log STM ------------------------===//
//
// Part of the SwissTM reproduction (PLDI 2009). Encounter-time write
// locking, in-place speculative writes with an undo log, and the
// single-token irrevocability mode (see Orec.h for the protocol).
//
//===----------------------------------------------------------------------===//

#include "stm/orec/Orec.h"

#include <cassert>

using namespace stm;
using namespace stm::orec;

static OrecGlobals GlobalState;

OrecGlobals &stm::orec::orecGlobals() { return GlobalState; }

void OrecStm::globalInit(const StmConfig &Config) {
  GlobalState.Config = Config;
  GlobalState.SharedWords = SharedArena::sharedActive();
  GlobalState.IrrevocableTok = &SharedArena::instance().orecToken();
  if (GlobalState.SharedWords) {
    // Multi-process mode: table, clock and token live in the shm
    // segment; an attacher adopts the live values (a peer may hold the
    // token right now) instead of resetting them.
    SharedArena &A = SharedArena::instance();
    GlobalState.Table.bindAt(
        A.tableRegion(
            core::LockTable<OLock>::bytesFor(Config.LockTableSizeLog2)),
        Config.LockTableSizeLog2, Config.GranularityLog2,
        resolvedLockShards(Config));
    GlobalState.Clock.placeShards(A.clockRegion());
    GlobalState.Clock.adopt(Config.Clock, resolvedClockShards(Config));
  } else {
    GlobalState.Table.init(Config.LockTableSizeLog2, Config.GranularityLog2,
                           resolvedLockShards(Config));
    GlobalState.Clock.placeShards(nullptr);
    // The commit-ts advances under the configured clock policy; the
    // greedy-ts always increments (the CM needs unique timestamps).
    GlobalState.Clock.reset(Config.Clock, resolvedClockShards(Config));
    GlobalState.IrrevocableTok->store(0, std::memory_order_relaxed);
  }
  GlobalState.GreedyTs.reset();
}

void OrecStm::globalShutdown() {
  globalTeardown(GlobalState.Table);
  GlobalState.Clock.placeShards(nullptr);
  GlobalState.SharedWords = false;
}

//===----------------------------------------------------------------------===//
// Irrevocability protocol
//===----------------------------------------------------------------------===//

/// Aux value distinguishing irrevocability gate/drain Switch hooks from
/// the adaptive runtime's backend-switch ones (those pass a BackendKind,
/// a small integer).
static constexpr uint64_t SerializeAux = ~0ull;

/// Takes the global token, spinning *unpinned* — the current holder's
/// drain waits on every pinned slot, so blocking here while pinned would
/// deadlock it. Called between attempts, before baseStart's pin.
void OrecTx::acquireTokenBlocking() {
  unsigned Spin = 0;
  while (true) {
    Word Expected = 0;
    if (GlobalState.IrrevocableTok->compare_exchange_strong(
            Expected, Word(Slot) + 1, std::memory_order_seq_cst))
      break;
    STM_DIAG_HOOK(Slot, Switch, ::stm::diag::NoStripe, SerializeAux);
    // A token holder that died would park this spin forever; recovery
    // releases a dead holder's token (slot+1 encoding makes it
    // attributable without dereferencing anything).
    if (REPRO_UNLIKELY(GlobalState.SharedWords) && (Spin & 63) == 63)
      SharedArena::instance().sweepDeadProcesses();
    repro::spinWait(Spin);
  }
  Irrevocable = true;
  ++Stats.Serializations;
}

/// Mid-transaction escalation (the allocation trigger). Unlike the
/// between-attempts path we are pinned and hold stripe locks, so we must
/// not wait for the token: a CAS loss means another transaction is (or
/// is becoming) irrevocable, and spinning pinned would deadlock its
/// drain against this slot. Abort instead — the abort feeds the
/// successive-aborts trigger, so a repeatedly losing allocator ends up
/// serializing at start, where waiting is safe.
void OrecTx::becomeIrrevocableMidTx() {
  Word Expected = 0;
  if (!GlobalState.IrrevocableTok->compare_exchange_strong(
          Expected, Word(Slot) + 1, std::memory_order_seq_cst))
    rollback();
  Irrevocable = true;
  ++Stats.Serializations;
  drainOthers();
}

/// Waits (pinned, holding the token) until every *other* slot is
/// quiescent. Fresh transactions park at the token gate before pinning;
/// in-flight ones either finish or hit the token check in their conflict
/// loops and abort. The seq_cst fence pairs with the one in
/// EpochManager::pin(): a transaction whose pin this scan misses issued
/// its fence after ours, so its post-pin token recheck (onStart) sees
/// our token and self-aborts.
void OrecTx::drainOthers() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  unsigned Spin = 0;
  while (true) {
    bool Busy = false;
    for (unsigned S = 0; S < repro::MaxThreads; ++S) {
      if (S == Slot)
        continue;
      if (EpochManager::pinnedEpoch(S) != EpochManager::Quiescent) {
        Busy = true;
        break;
      }
    }
    if (!Busy)
      return;
    STM_DIAG_HOOK(Slot, Switch, ::stm::diag::NoStripe, SerializeAux);
    // A peer-process slot whose owner died mid-transaction stays pinned
    // until recovered; the drain must do that itself or wedge.
    if (REPRO_UNLIKELY(GlobalState.SharedWords) && (Spin & 63) == 63)
      SharedArena::instance().sweepDeadProcesses();
    repro::spinWait(Spin);
  }
}

void OrecTx::releaseIrrevocable() {
  if (!Irrevocable)
    return;
  Irrevocable = false;
  GlobalState.IrrevocableTok->store(0, std::memory_order_release);
}

void OrecTx::noteAllocation() {
  uint64_t N = GlobalState.Config.OrecIrrevocableAllocs;
  if (N != 0 && !Irrevocable && inTransaction() && ++AttemptAllocs >= N)
    becomeIrrevocableMidTx();
}

void *OrecTx::txMalloc(std::size_t Size) {
  noteAllocation();
  return TxBase::txMalloc(Size);
}

void OrecTx::txFree(void *Ptr) {
  noteAllocation();
  TxBase::txFree(Ptr);
}

//===----------------------------------------------------------------------===//
// Transaction lifecycle
//===----------------------------------------------------------------------===//

void OrecTx::onStart() {
  const StmConfig &C = GlobalState.Config;
  if (!Irrevocable) {
    // Both waits below must run unpinned — a serializer's drain waits
    // on every pinned slot. Under batch admission (TxBase::BatchPin)
    // the batch owner keeps the slot pinned *between* transactions, so
    // drop the pin for the wait and restore it after; nothing is held
    // across transactions, so the momentary gap is safe.
    if (C.OrecIrrevocableAborts != 0 &&
        SuccessiveAborts >= C.OrecIrrevocableAborts) {
      // The abort trigger: this attempt runs serialized.
      if (BatchPin)
        EpochManager::unpin(Slot);
      acquireTokenBlocking();
      if (BatchPin)
        EpochManager::pin(Slot);
    } else if (GlobalState.IrrevocableTok->load(std::memory_order_acquire) !=
               0) {
      // Token gate: park while someone runs serialized.
      if (BatchPin)
        EpochManager::unpin(Slot);
      unsigned Spin = 0;
      while (GlobalState.IrrevocableTok->load(std::memory_order_acquire) !=
             0) {
        STM_DIAG_HOOK(Slot, Switch, ::stm::diag::NoStripe, SerializeAux);
        // Release a dead peer's token instead of parking forever.
        if (REPRO_UNLIKELY(GlobalState.SharedWords) && (Spin & 63) == 63)
          SharedArena::instance().sweepDeadProcesses();
        repro::spinWait(Spin);
      }
      if (BatchPin)
        EpochManager::pin(Slot);
    }
  }
  baseStart();
  ReadLog.clear();
  Owned.clear();
  Undo.clear();
  WordWriteCount = 0;
  AttemptAllocs = 0;
  Cm.onStart(C, GlobalState.GreedyTs, FreshStart);
  beginEpoch(GlobalState.Clock);
  if (Irrevocable) {
    drainOthers();
  } else if (GlobalState.IrrevocableTok->load(std::memory_order_seq_cst) !=
             0) {
    // Post-pin gate recheck: a token published between our gate check
    // and our pin fence may have missed this slot in its drain scan
    // (Dekker race); the seq_cst load above pairs with the publisher's
    // fence in drainOthers so one side always observes the other.
    rollback();
  }
}

OwnedStripe *OrecTx::ownedEntry(Word V) {
  if (REPRO_UNLIKELY(GlobalState.SharedWords)) {
    if (SharedArena::handleSlot(V) != Slot)
      return nullptr;
    return &Owned[SharedArena::handleIndex(V)];
  }
  OwnedStripe *Entry = olockEntry(V);
  return Entry->Owner.load(std::memory_order_relaxed) == this ? Entry
                                                              : nullptr;
}

Word OrecTx::load(const Word *Addr) {
  checkKill();
  ++Stats.Reads;
  Cm.noteAccess();
  OLock &Lock = GlobalState.Table.entryFor(Addr);

  Word V = Lock.L.load(std::memory_order_acquire);
  while (true) {
    STM_DIAG_HOOK(Slot, Read, GlobalState.Table.indexOfEntry(&Lock), V);
    if (olockIsLocked(V)) {
      if (ownedEntry(V) != nullptr) {
        // Read-after-write: the speculative value is already in place
        // and we hold the orec, so memory is the write buffer. Not a
        // tracked read (the orec cannot change under us) — the single
        // ++Stats.Reads above is the whole accounting.
        return racyLoad(Addr);
      }
      // Read of a foreign-owned stripe: reads are invisible, so the
      // owner can neither see us nor be waited out (it may run for an
      // arbitrary time and its in-place value is uncommitted). Abort.
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      // A dead owner's orec would turn this into an abort loop; note
      // that a dead orec owner usually poisons the segment (its
      // in-place writes are unrecoverable), which the recovery reports.
      if (REPRO_UNLIKELY(GlobalState.SharedWords) &&
          SharedArena::instance().maybeRecoverRemote(V)) {
        V = Lock.L.load(std::memory_order_acquire);
        continue;
      }
      rollback();
    }
    Word Value = racyLoad(Addr);
    Word V2 = Lock.L.load(std::memory_order_acquire);
    if (V == V2) {
      ReadLog.push_back(ReadEntry{&Lock, V});
      if (olockVersion(V) > ValidTs &&
          !extendEpoch(GlobalState.Clock, GlobalState.Config.EnableExtension,
                       olockVersion(V))) {
        STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                               GlobalState.Table.indexOfEntry(&Lock), V);
        rollback();
      }
      return Value;
    }
    V = V2;
  }
}

void OrecTx::store(Word *Addr, Word Value) {
  checkKill();
  ++Stats.Writes;
  Cm.noteAccess();
  OLock &Lock = GlobalState.Table.entryFor(Addr);

  OwnedStripe *Mine = nullptr;
  unsigned Attempts = 0;
  const bool Shared = GlobalState.SharedWords;
  while (true) {
    Word V = Lock.L.load(std::memory_order_acquire);
    STM_DIAG_HOOK(Slot, Acquire, GlobalState.Table.indexOfEntry(&Lock), V);
    if (olockIsLocked(V)) {
      if (ownedEntry(V) != nullptr) {
        if (Mine != nullptr)
          Owned.popBack(); // withdraw the unused speculative entry
        break;             // stripe already ours; write below
      }
      STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                             GlobalState.Table.indexOfEntry(&Lock), V);
      if (REPRO_UNLIKELY(Shared)) {
        // Multi-process conflict: the handle's descriptor may live in
        // another process, so the contention manager cannot inspect or
        // kill the owner. Break a dead owner's orec and retry; against
        // a live one resolve timid (unless irrevocable, which by
        // construction outlives every optimistic peer — then wait).
        if (SharedArena::instance().maybeRecoverRemote(V))
          continue;
        if (!Irrevocable)
          rollback();
        repro::spinWait(Attempts);
        continue;
      }
      // Write/write conflict, detected eagerly. Note the contended
      // stripe for both parties before the CM can kill either.
      OrecTx *Owner = olockEntry(V)->Owner.load(std::memory_order_relaxed);
      if (Owner != nullptr)
        STM_DIAG_NOTE_CONFLICT(Owner->threadSlot(), Addr,
                               GlobalState.Table.indexOfEntry(&Lock), V);
      if (!Irrevocable &&
          Cm.shouldAbort(GlobalState.Config, Owner, this, Attempts, Rng))
        rollback();
      checkKill();
      // A serializer is draining: get out of its way. Without this an
      // attacker spinning here (pinned) on the irrevocable tx's own
      // lock would deadlock the drain.
      if (!Irrevocable &&
          GlobalState.IrrevocableTok->load(std::memory_order_acquire) != 0)
        rollback();
      repro::spinWait(Attempts);
      continue;
    }
    if (Mine == nullptr) {
      Mine = Owned.pushDefault();
      Mine->Owner.store(this, std::memory_order_relaxed);
      Mine->Lock = &Lock;
      Mine->Self = Shared
                       ? SharedArena::makeHandle(Owned.size() - 1, Slot)
                       : (reinterpret_cast<Word>(Mine) | 1);
    }
    Mine->OldLock = V;
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().pushIntent(Slot, &Lock.L, V, Mine->Self);
    if (Lock.L.compare_exchange_weak(V, Mine->Self,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      // Opacity check after acquisition: the stripe's version must not
      // postdate our snapshot unless we can extend over it.
      if (olockVersion(Mine->OldLock) > ValidTs &&
          !extendEpoch(GlobalState.Clock, GlobalState.Config.EnableExtension,
                       olockVersion(Mine->OldLock))) {
        STM_DIAG_NOTE_CONFLICT(Slot, Addr,
                               GlobalState.Table.indexOfEntry(&Lock),
                               Mine->OldLock);
        rollback();
      }
      break;
    }
    if (REPRO_UNLIKELY(Shared))
      SharedArena::instance().popIntent(Slot);
  }

  // Encounter-time write-back: save the pre-image, then write in place.
  // In multi-process mode the first in-place store makes this attempt
  // unrecoverable by peers (pre-images live in our private undo log),
  // so raise the eager phase flag first: if we die past this point the
  // survivors poison the segment instead of serving torn state.
  if (REPRO_UNLIKELY(Shared) && WordWriteCount == 0)
    SharedArena::instance().setPhase(Slot, SharedArena::PhaseEager);
  Undo.record(Addr, racyLoad(Addr));
  STM_DIAG_HOOK(Slot, WriteBack, GlobalState.Table.indexOfEntry(&Lock),
                reinterpret_cast<Word>(Addr));
  racyStore(Addr, Value);
  Cm.onWrite(GlobalState.Config, GlobalState.GreedyTs, ++WordWriteCount);
}

void OrecTx::commit() {
  assert(Depth > 0 && "commit outside a transaction");
  checkKill();

  // Read-only fast path.
  if (Owned.empty()) {
    ++Stats.ReadOnlyCommits;
    if (Irrevocable) {
      ++Stats.IrrevocableCommits;
      releaseIrrevocable();
    }
    baseCommit(GlobalState.Clock.load());
    return;
  }

  CommitStamp Stamp = takeCommitStamp(GlobalState.Clock, [this] {
    uint64_t MaxOverwritten = 0;
    Owned.forEach([&MaxOverwritten](OwnedStripe &E) {
      if (olockVersion(E.OldLock) > MaxOverwritten)
        MaxOverwritten = olockVersion(E.OldLock);
    });
    return MaxOverwritten;
  });
  uint64_t Ts = Stamp.Ts;
  STM_DIAG_HOOK(Slot, CommitStamp, ::stm::diag::NoStripe, Ts);
  if (mustValidateCommit(Stamp) && !revalidate())
    rollback(); // undoes the in-place writes

  // Order the speculative in-place stores before the version releases
  // on non-TSO hardware; values are already in memory, so commit is
  // only this release loop.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Word Release = olockMake(Ts);
  Owned.forEach([&](OwnedStripe &E) {
    E.Lock->L.store(Release, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(GlobalState.SharedWords)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }

  if (Irrevocable) {
    ++Stats.IrrevocableCommits;
    releaseIrrevocable();
  }
  baseCommit(Ts);
}

void OrecTx::rollback() {
  // Restore pre-images newest-first *before* releasing any orec: a
  // reader admitted by the release must find committed values only.
  // The injected skip resurrects the classic "forgot the undo log"
  // bug for the opacity checker's regression test.
  if (!STM_DIAG_INJECTED(OrecSkipUndo))
    Undo.unwind([](UndoEntry &E) { racyStore(E.Addr, E.Old); });

  // Release owned orecs at their pre-acquisition versions. The last
  // log entry may be speculative (pushed for a CAS that never
  // succeeded), so only release locks that actually point at our
  // entry — blindly storing OldLock would steal another owner's lock.
  Owned.forEach([](OwnedStripe &E) {
    if (E.Lock != nullptr &&
        E.Lock->L.load(std::memory_order_relaxed) == E.Self)
      E.Lock->L.store(E.OldLock, std::memory_order_release);
  });
  if (REPRO_UNLIKELY(GlobalState.SharedWords)) {
    SharedArena &A = SharedArena::instance();
    A.setPhase(Slot, SharedArena::PhaseNone);
    A.clearIntents(Slot);
  }

  // A user-requested restart of an irrevocable transaction (or the
  // runtime restarting one after a lost adaptive-gate race) is legal:
  // the undo log was kept, so hand the token back and retry.
  releaseIrrevocable();

  baseAbort();
  Cm.onRollback(GlobalState.Config, Rng, SuccessiveAborts);
  std::longjmp(*EnvTarget, 1);
}

bool OrecTx::validateReadSet() {
  for (const ReadEntry &R : ReadLog) {
    Word Cur = R.Lock->L.load(std::memory_order_acquire);
    if (Cur == R.Seen)
      continue;
    if (olockIsLocked(Cur)) {
      // A stripe we locked *after* reading it is valid iff nobody
      // committed in between, i.e. the version we displaced is the one
      // we read.
      OwnedStripe *Entry = ownedEntry(Cur);
      if (Entry != nullptr && Entry->OldLock == R.Seen)
        continue;
    }
    STM_DIAG_NOTE_CONFLICT(Slot, nullptr,
                           GlobalState.Table.indexOfEntry(R.Lock), Cur);
    return false;
  }
  return true;
}
