//===- stm/Stm.h - public umbrella header for the STM library ---*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The single public entry point. Applications and workloads include
// this header and program against the stable surface:
//
//   * stm::Runtime + stm::atomically(runtime, fn)  (stm/Runtime.h) —
//     process init/shutdown, lazy per-thread attachment, the backend
//     picked at launch by StmConfig / STM_BACKEND / STM_ADAPTIVE;
//   * stm::StmConfig / StmConfig::fromEnv()        (stm/Config.h);
//   * typed field accessors loadField/storeField/loadPtr/storePtr and
//     the low-level atomically(Tx&, fn) boundary   (stm/Atomically.h);
//   * explicit attachment plumbing GlobalInit/ThreadScope for code
//     that manages threads itself                  (stm/ThreadScope.h).
//
// The per-backend templated facades (stm::SwissTm, stm::Tl2,
// stm::TinyStm, stm::Rstm, stm::OrecStm) are still re-exported here
// for the internal test/bench surface, but they are DEPRECATED as an
// application API: include nothing from stm/swisstm/, stm/tl2/,
// stm/tinystm/, stm/rstm/ or stm/orec/ directly outside src/stm/ —
// select backends through StmConfig::Backend instead. See README
// "Serving workload & public API" for the migration guide.
//
//===----------------------------------------------------------------------===//

#ifndef STM_STM_H
#define STM_STM_H

#include "stm/Atomically.h"
#include "stm/Config.h"
#include "stm/Runtime.h"
#include "stm/ThreadScope.h"
#include "stm/runtime/StmRuntime.h"

// Internal surface: the templated backend facades. Deprecated for
// application code — see the header comment above.
#include "stm/orec/Orec.h"
#include "stm/rstm/Rstm.h"
#include "stm/swisstm/SwissTm.h"
#include "stm/tinystm/TinyStm.h"
#include "stm/tl2/Tl2.h"

#endif // STM_STM_H
