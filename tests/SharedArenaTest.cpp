//===- tests/SharedArenaTest.cpp - shared-state placement layer ------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Tests of the SharedArena placement layer itself: the lock-word handle
// codec, private-backing fallbacks, the shared segment's heap and user
// roots, a real fork()ed attacher sharing the clock/table/heap with the
// creator, the loud layout-mismatch abort, and the RSS regression test
// asserting the lock table stays lazily committed in *both* placements
// (the historical calloc property the refactor must not lose).
//
// Every test that creates a segment derives a unique name from the test
// pid so parallel ctest invocations of this binary can never collide,
// and unlinks the name before and after use.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/core/SharedArena.h"

#include <cstdio>
#include <cstring>

#include <sys/wait.h>
#include <unistd.h>

using namespace stm;
using repro_test::Rt;

namespace {

/// A per-test-unique shm name: two tests of this binary never share a
/// segment, and two concurrently running ctest shards never collide.
void segName(const char *Tag, char *Out, std::size_t Len) {
  std::snprintf(Out, Len, "swisstm-test-%s-%d", Tag, int(getpid()));
}

/// Fixed-backend shared-mode config. Multi-process mode requires a
/// fixed non-RSTM backend, so the tests pin SwissTM explicitly rather
/// than inheriting STM_BACKEND from a CI matrix leg.
StmConfig sharedConfig(const char *Name) {
  StmConfig Config;
  Config.Backend = rt::BackendKind::SwissTm;
  Config.Adaptive = false;
  Config.LockTableSizeLog2 = 16;
  std::snprintf(Config.SharedSegment, sizeof(Config.SharedSegment), "%s",
                Name);
  return Config;
}

/// Resident-set size of this process in bytes, from /proc/self/statm.
uint64_t residentBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (F == nullptr)
    return 0;
  unsigned long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%lu %lu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  return uint64_t(Resident) * uint64_t(sysconf(_SC_PAGESIZE));
}

//===----------------------------------------------------------------------===//
// Handle codec
//===----------------------------------------------------------------------===//

TEST(SharedArenaHandleTest, CodecRoundTripsAndStaysOdd) {
  for (unsigned Slot : {0u, 1u, 7u, repro::MaxThreads - 1}) {
    for (uint64_t Index : {uint64_t(0), uint64_t(1), uint64_t(4095),
                           uint64_t(1) << 40}) {
      Word H = SharedArena::makeHandle(Index, Slot);
      EXPECT_EQ(H & 1, Word(1)) << "handles must be odd (locked encoding)";
      EXPECT_EQ(SharedArena::handleSlot(H), Slot);
      EXPECT_EQ(SharedArena::handleIndex(H), Index);
    }
  }
}

TEST(SharedArenaHandleTest, DistinctOwnersProduceDistinctHandles) {
  // Two transactions holding the same write-log index must still be
  // distinguishable — the slot bits carry the owner.
  Word A = SharedArena::makeHandle(12, 3);
  Word B = SharedArena::makeHandle(12, 4);
  EXPECT_NE(A, B);
  EXPECT_EQ(SharedArena::handleIndex(A), SharedArena::handleIndex(B));
}

//===----------------------------------------------------------------------===//
// Private backing (the default: zero behavioural change)
//===----------------------------------------------------------------------===//

TEST(SharedArenaPrivateTest, DefaultConfigStaysPrivate) {
  StmConfig Config;
  Config.Backend = rt::BackendKind::SwissTm;
  Config.Adaptive = false;
  Config.LockTableSizeLog2 = 16;
  StmRuntime::globalInit(Config);
  EXPECT_FALSE(SharedArena::sharedActive());
  EXPECT_EQ(SharedArena::instance().backing(), SharedArena::Backing::Private);
  // sharedAlloc degrades to the process heap and the dispatching free
  // routes back to it.
  void *P = sharedAlloc(64);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(SharedArena::instance().contains(P));
  sharedDispatchFree(P);
  // User roots work in every mode (fallback statics in private mode).
  SharedArena::instance().userRoot(0).store(42, std::memory_order_relaxed);
  EXPECT_EQ(SharedArena::instance().userRoot(0).load(std::memory_order_relaxed),
            Word(42));
  SharedArena::instance().userRoot(0).store(0, std::memory_order_relaxed);
  StmRuntime::globalShutdown();
}

//===----------------------------------------------------------------------===//
// Shared segment: heap, roots, transactions on segment memory
//===----------------------------------------------------------------------===//

TEST(SharedArenaSegmentTest, HeapAllocatesRecyclesAndContains) {
  char Name[64];
  segName("heap", Name, sizeof(Name));
  SharedArena::unlinkSegment(Name);
  StmRuntime::globalInit(sharedConfig(Name));
  SharedArena &A = SharedArena::instance();
  ASSERT_TRUE(SharedArena::sharedActive());
  EXPECT_TRUE(A.isShared());
  EXPECT_TRUE(A.isCreator());

  void *P = A.heapAlloc(64);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(A.contains(P));
  std::memset(P, 0xAB, 64);
  A.heapFree(P);
  // Same size class goes back through the free list: the block is
  // recycled rather than burning bump space forever.
  void *Q = A.heapAlloc(64);
  EXPECT_EQ(Q, P);
  A.heapFree(Q);

  // Distinct size classes get distinct lists.
  void *Small = A.heapAlloc(16);
  void *Big = A.heapAlloc(1024);
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Big, nullptr);
  EXPECT_NE(Small, Big);
  A.heapFree(Small);
  A.heapFree(Big);

  // Oversized blocks (beyond the largest size class) are bump-only:
  // valid, contained, and freeing them must not corrupt anything.
  void *Huge = A.heapAlloc(64 * 1024);
  ASSERT_NE(Huge, nullptr);
  EXPECT_TRUE(A.contains(Huge));
  std::memset(Huge, 0, 64 * 1024);
  A.heapFree(Huge);

  EXPECT_FALSE(A.contains(Name));
  StmRuntime::globalShutdown();
  SharedArena::unlinkSegment(Name);
}

TEST(SharedArenaSegmentTest, TransactionsRunOverSegmentMemory) {
  char Name[64];
  segName("tx", Name, sizeof(Name));
  SharedArena::unlinkSegment(Name);
  StmRuntime::globalInit(sharedConfig(Name));
  auto *Cells = static_cast<Word *>(sharedAlloc(8 * sizeof(Word)));
  ASSERT_NE(Cells, nullptr);
  for (unsigned I = 0; I < 8; ++I)
    Cells[I] = 0;
  repro_test::runThreads<Rt>(4, [&](unsigned, auto &Tx) {
    for (unsigned Iter = 0; Iter < 200; ++Iter)
      atomically(Tx, [&](auto &T) {
        for (unsigned I = 0; I < 8; ++I)
          T.store(&Cells[I], T.load(&Cells[I]) + 1);
      });
  });
  for (unsigned I = 0; I < 8; ++I)
    EXPECT_EQ(Cells[I], Word(4 * 200)) << "cell " << I;
  sharedDispatchFree(Cells);
  StmRuntime::globalShutdown();
  SharedArena::unlinkSegment(Name);
}

//===----------------------------------------------------------------------===//
// Cross-process: a forked attacher shares the segment with the creator
//===----------------------------------------------------------------------===//

TEST(SharedArenaSegmentTest, ForkedProcessAttachesAndSharesData) {
  char Name[64];
  segName("attach", Name, sizeof(Name));
  SharedArena::unlinkSegment(Name);

  int Pipe[2];
  ASSERT_EQ(pipe(Pipe), 0);

  // Fork BEFORE any STM state exists: the child is a genuinely separate
  // process that must reach the data through shm_open + the layout
  // handshake, not through inherited mappings.
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    close(Pipe[1]);
    char Go = 0;
    // Wait until the parent has created the segment, so the child
    // deterministically takes the attach path.
    if (read(Pipe[0], &Go, 1) != 1)
      _exit(10);
    close(Pipe[0]);
    StmRuntime::globalInit(sharedConfig(Name));
    SharedArena &A = SharedArena::instance();
    if (!A.isShared() || A.isCreator())
      _exit(11);
    auto *Counter = reinterpret_cast<Word *>(
        A.userRoot(0).load(std::memory_order_acquire));
    if (Counter == nullptr || !A.contains(Counter))
      _exit(12);
    {
      ThreadScope<Rt> Scope;
      for (unsigned I = 0; I < 100; ++I)
        atomically(Scope.tx(),
                   [&](auto &T) { T.store(Counter, T.load(Counter) + 1); });
    }
    StmRuntime::globalShutdown();
    _exit(0);
  }

  close(Pipe[0]);
  StmRuntime::globalInit(sharedConfig(Name));
  SharedArena &A = SharedArena::instance();
  ASSERT_TRUE(A.isCreator());
  auto *Counter = static_cast<Word *>(sharedAlloc(sizeof(Word)));
  ASSERT_NE(Counter, nullptr);
  *Counter = 0;
  A.userRoot(0).store(reinterpret_cast<Word>(Counter),
                      std::memory_order_release);
  ASSERT_EQ(write(Pipe[1], "g", 1), 1);
  close(Pipe[1]);

  // Work concurrently with the child so the clock/table really get
  // exercised from two processes at once.
  {
    ThreadScope<Rt> Scope;
    for (unsigned I = 0; I < 100; ++I)
      atomically(Scope.tx(),
                 [&](auto &T) { T.store(Counter, T.load(Counter) + 1); });
  }

  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status)) << "child died abnormally";
  EXPECT_EQ(WEXITSTATUS(Status), 0);

  Word Final = 0;
  {
    ThreadScope<Rt> Scope;
    atomically(Scope.tx(), [&](auto &T) { Final = T.load(Counter); });
  }
  EXPECT_EQ(Final, Word(200))
      << "parent and child commits must both land in the shared counter";
  A.userRoot(0).store(0, std::memory_order_release);
  sharedDispatchFree(Counter);
  StmRuntime::globalShutdown();
  SharedArena::unlinkSegment(Name);
}

TEST(SharedArenaSegmentTest, LayoutMismatchAbortsTheAttacher) {
  char Name[64];
  segName("mismatch", Name, sizeof(Name));
  SharedArena::unlinkSegment(Name);

  int Pipe[2];
  ASSERT_EQ(pipe(Pipe), 0);
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    close(Pipe[1]);
    char Go = 0;
    if (read(Pipe[0], &Go, 1) != 1)
      _exit(10);
    close(Pipe[0]);
    // Same segment name, different protocol geometry: the layout hash
    // in the header must not match and the attach must abort loudly —
    // reaching the _exit(13) below is the failure mode.
    StmConfig Bad = sharedConfig(Name);
    Bad.GranularityLog2 = 6;
    StmRuntime::globalInit(Bad);
    _exit(13);
  }

  close(Pipe[0]);
  StmRuntime::globalInit(sharedConfig(Name));
  ASSERT_EQ(write(Pipe[1], "g", 1), 1);
  close(Pipe[1]);
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  EXPECT_TRUE(WIFSIGNALED(Status))
      << "mismatched attacher must abort, not run (exit "
      << (WIFEXITED(Status) ? WEXITSTATUS(Status) : -1) << ")";
  if (WIFSIGNALED(Status))
    EXPECT_EQ(WTERMSIG(Status), SIGABRT);
  StmRuntime::globalShutdown();
  SharedArena::unlinkSegment(Name);
}

//===----------------------------------------------------------------------===//
// RSS regression: the lock table must stay lazily committed
//===----------------------------------------------------------------------===//

/// The historical calloc property: a big lock table costs address
/// space, not resident memory, until stripes are actually touched. The
/// placement refactor must preserve this in the private mapping AND in
/// the shm segment (tmpfs pages also materialize on first touch).
/// 2^23 padded entries = 512 MiB of table; an eager-commit regression
/// would blow the 96 MiB delta bound by 5x.
constexpr unsigned BigTableLog2 = 23;
constexpr uint64_t RssDeltaBound = 96ull << 20;

TEST(SharedArenaRssTest, BigTableStaysLazyInPrivateMode) {
  StmConfig Config;
  Config.Backend = rt::BackendKind::SwissTm;
  Config.Adaptive = false;
  Config.LockTableSizeLog2 = BigTableLog2;
  uint64_t Before = residentBytes();
  ASSERT_GT(Before, 0u) << "statm unreadable";
  StmRuntime::globalInit(Config);
  uint64_t After = residentBytes();
  StmRuntime::globalShutdown();
  EXPECT_LT(After - Before, RssDeltaBound)
      << "private lock table no longer lazily committed";
}

TEST(SharedArenaRssTest, BigTableStaysLazyInSharedMode) {
  char Name[64];
  segName("rss", Name, sizeof(Name));
  SharedArena::unlinkSegment(Name);
  StmConfig Config = sharedConfig(Name);
  Config.LockTableSizeLog2 = BigTableLog2;
  uint64_t Before = residentBytes();
  ASSERT_GT(Before, 0u) << "statm unreadable";
  StmRuntime::globalInit(Config);
  uint64_t After = residentBytes();
  StmRuntime::globalShutdown();
  SharedArena::unlinkSegment(Name);
  EXPECT_LT(After - Before, RssDeltaBound)
      << "shm lock table no longer lazily committed";
}

} // namespace
