//===- tests/HistoryCheckTest.cpp - randomized opacity checking ------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The paper's safety property is opacity (Section 3.1): every
// transaction — committed or aborted — observes a state produced by some
// prefix of a serialization of the committed transactions. The
// structure-invariant tests elsewhere check consequences of opacity;
// this suite checks the property itself, offline, against recorded
// histories:
//
//  * every transaction reads a designated sequencer word first and every
//    update transaction also writes it a unique value, so the read-from
//    chain on the sequencer totally orders all committed updates;
//  * every transaction then snapshots a small shared word array, and
//    updaters write unique values into it and read some back — all ops
//    recorded in program order, so the checker can model encounter-time
//    (in-place, undo-log) writes: an attempt's own pending writes are
//    visible to its own later reads and to nobody else, and die with
//    the attempt on abort;
//  * the offline checker replays the sequencer chain, verifying that it
//    is a permutation of the committed updates and that each one's
//    snapshot equals the replayed state it serialized after. Read-only
//    and aborted attempts are then checked against the replay state
//    keyed by the sequencer value they observed — for aborted attempts
//    the recorded read prefix must be consistent too, which is exactly
//    the part of opacity serializability checks miss.
//
// Any torn snapshot, dirty read, lost update or write-skew the STM lets
// through surfaces as a checker failure naming the attempt. Runs are
// seeded via repro::testSeed (replay with STM_TEST_SEED=<seed>) and the
// whole suite runs under TSan in CI; STM_STRESS=<n> scales it up for
// the nightly stress label.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/diag/Hooks.h"

#include <gtest/gtest-spi.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

using namespace stm;
using repro_test::runThreads;
using repro_test::stressScale;

namespace {

constexpr unsigned NumWords = 6;

/// The shared transactional state: one sequencer word plus a small
/// array, on separate stripes.
struct SharedState {
  alignas(64) Word Seq;
  alignas(64) Word Words[NumWords];
};

/// One recorded transactional operation, in program order. Order
/// matters: with reads-after-writes in the workload (and undo-log
/// backends writing in place at encounter time), a read's expected
/// value depends on the attempt's own writes issued before it.
struct TxOp {
  bool IsWrite = false;
  unsigned W = 0;
  uint64_t V = 0;
};

/// One recorded transaction attempt (committed or aborted).
struct Attempt {
  uint64_t SeqSeen = 0;
  bool SeqValid = false; ///< the sequencer read completed
  bool Committed = false;
  uint64_t SeqWritten = 0; ///< nonzero iff this attempt wrote (updater)
  std::vector<TxOp> Ops;   ///< word reads and writes, in program order

  void read(unsigned W, uint64_t V) { Ops.push_back({false, W, V}); }
  void write(unsigned W, uint64_t V) { Ops.push_back({true, W, V}); }
};

/// Unique value for thread \p Tid, attempt \p AttemptIdx, op \p Op.
/// Never zero, never collides across threads/attempts/ops.
uint64_t uniqueValue(unsigned Tid, uint64_t AttemptIdx, unsigned Op) {
  return (uint64_t(Tid + 1) << 48) | (AttemptIdx << 8) | (Op + 1);
}

/// Replays one attempt's op sequence against the committed state it
/// serialized after, modelling undo-log (encounter-time, in-place)
/// write semantics: the attempt's own pending writes are visible to
/// its *own* later reads, and to nobody else. Rollback is modelled by
/// construction — an aborted attempt's pending map dies with this
/// call, and every other attempt's reads are checked against committed
/// states only, so an aborted writer's in-place intermediate value
/// surviving into shared memory (a skipped undo) shows up as some
/// later attempt's read matching no committed state. Redo-log
/// backends satisfy the same model: their read-after-write hits serve
/// the buffered value the model predicts.
void checkAttemptOps(const Attempt &A, const std::vector<uint64_t> &State,
                     const char *StmName, const char *What) {
  std::map<unsigned, uint64_t> Pending;
  for (const TxOp &Op : A.Ops) {
    if (Op.IsWrite) {
      Pending[Op.W] = Op.V;
      continue;
    }
    auto P = Pending.find(Op.W);
    if (P != Pending.end()) {
      EXPECT_EQ(Op.V, P->second)
          << StmName << ": " << What << " at sequencer " << A.SeqSeen
          << " read word " << Op.W
          << " inconsistently — lost own in-place write";
    } else {
      EXPECT_EQ(Op.V, State[Op.W])
          << StmName << ": " << What << " at sequencer " << A.SeqSeen
          << " read word " << Op.W
          << " inconsistently — non-opaque snapshot";
    }
  }
}

/// Offline opacity check of the merged history (see file comment).
void checkHistory(const std::vector<Attempt> &History, const char *StmName) {
  // Index committed updates by the sequencer value they read and wrote.
  std::map<uint64_t, const Attempt *> BySeqSeen;
  uint64_t CommittedUpdates = 0;
  for (const Attempt &A : History) {
    if (!A.Committed || A.SeqWritten == 0)
      continue;
    ++CommittedUpdates;
    ASSERT_TRUE(A.SeqValid) << StmName << ": update committed without "
                            << "completing its sequencer read";
    ASSERT_TRUE(BySeqSeen.emplace(A.SeqSeen, &A).second)
        << StmName << ": two committed updates both read sequencer value "
        << A.SeqSeen << " — lost update";
  }

  // Replay the sequencer chain from the initial state, checking each
  // update's snapshot against the state it serialized after, and
  // remember every state the chain passes through, keyed by the
  // sequencer value that identifies it.
  std::vector<uint64_t> State(NumWords, 0);
  std::map<uint64_t, std::vector<uint64_t>> StateAtSeq;
  uint64_t CurSeq = 0;
  uint64_t Replayed = 0;
  StateAtSeq.emplace(CurSeq, State);
  for (auto It = BySeqSeen.find(CurSeq); It != BySeqSeen.end();
       It = BySeqSeen.find(CurSeq)) {
    const Attempt &A = *It->second;
    checkAttemptOps(A, State, StmName, "committed update");
    for (const TxOp &Op : A.Ops)
      if (Op.IsWrite)
        State[Op.W] = Op.V;
    CurSeq = A.SeqWritten;
    StateAtSeq.emplace(CurSeq, State);
    ++Replayed;
  }
  EXPECT_EQ(Replayed, CommittedUpdates)
      << StmName << ": sequencer chain does not serialize all committed "
      << "updates — broken read-from chain";

  // Read-only and aborted attempts: the sequencer value read places the
  // attempt in the serial order; all its reads must match that state.
  for (const Attempt &A : History) {
    if (!A.SeqValid || (A.Committed && A.SeqWritten != 0))
      continue;
    auto It = StateAtSeq.find(A.SeqSeen);
    if (It == StateAtSeq.end()) {
      ADD_FAILURE() << StmName << ": attempt observed sequencer value "
                    << A.SeqSeen
                    << " that no committed update wrote — dirty read";
      continue;
    }
    checkAttemptOps(A, It->second, StmName,
                    A.Committed ? "read-only transaction"
                                : "aborted attempt");
  }
}

/// Runs the recorded-history workload on \p STM and feeds the merged
/// history to the offline checker. \p Concurrent, when set, runs in its
/// own non-transactional thread alongside the workers (it drives
/// backend switches in the runtime tests) until the flag it receives
/// goes true.
template <typename STM>
void runHistoryCheck(
    const StmConfig &Config, unsigned Threads, unsigned TxPerThread,
    unsigned UpdatePercent, uint64_t SeedSalt, bool RequireAborts = false,
    const std::function<void(std::atomic<bool> &)> &Concurrent = nullptr) {
  static SharedState S;
  S.Seq = 0;
  for (Word &W : S.Words)
    W = 0;

  STM::globalInit(Config);
  {
    std::atomic<bool> WorkersDone{false};
    std::thread Controller;
    if (Concurrent)
      Controller = std::thread([&] { Concurrent(WorkersDone); });

    std::vector<std::vector<Attempt>> PerThread(Threads);
    runThreads<STM>(Threads, [&](unsigned Tid, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(SeedSalt * 100 + Tid));
      std::vector<Attempt> &Hist = PerThread[Tid];
      unsigned Order[NumWords];
      for (unsigned I = 0; I < NumWords; ++I)
        Order[I] = I;
      for (unsigned TxI = 0; TxI < TxPerThread; ++TxI) {
        bool Update = Rng.nextPercent(UpdatePercent);
        atomically(Tx, [&](auto &T) {
          // One record per attempt: commit()-time aborts rerun the body,
          // so earlier records stay behind as aborted prefixes.
          Hist.emplace_back();
          Attempt &A = Hist.back();
          uint64_t AttemptIdx = Hist.size() - 1;

          A.SeqSeen = T.load(&S.Seq);
          A.SeqValid = true;

          // Full snapshot in random order. Randomized yields force
          // interleavings mid-transaction even on few-core machines —
          // without them the attempts mostly serialize and the checker
          // has nothing interesting to check.
          for (unsigned I = NumWords - 1; I > 0; --I)
            std::swap(Order[I], Order[Rng.nextBounded(I + 1)]);
          for (unsigned I = 0; I < NumWords; ++I) {
            unsigned W = Order[I];
            if (Rng.nextPercent(8))
              std::this_thread::yield();
            A.read(W, T.load(&S.Words[W]));
          }

          if (Update) {
            unsigned Writes = 1 + unsigned(Rng.nextBounded(3));
            for (unsigned Op = 0; Op < Writes; ++Op) {
              unsigned W = unsigned(Rng.nextBounded(NumWords));
              uint64_t V = uniqueValue(Tid, AttemptIdx, Op);
              if (Rng.nextPercent(8))
                std::this_thread::yield();
              T.store(&S.Words[W], V);
              A.write(W, V);
              // Read-after-write some of the time: redo backends must
              // serve the buffered value, undo backends the in-place
              // one — the checker's pending-map model covers both.
              if (Rng.nextPercent(40))
                A.read(W, T.load(&S.Words[W]));
            }
            A.SeqWritten = uniqueValue(Tid, AttemptIdx, 0xFE);
            T.store(&S.Seq, A.SeqWritten);
          }
        });
        Hist.back().Committed = true;
      }
    });

    WorkersDone.store(true, std::memory_order_release);
    if (Controller.joinable())
      Controller.join();

    std::vector<Attempt> History;
    for (auto &H : PerThread)
      for (Attempt &A : H)
        History.push_back(std::move(A));
    if (RequireAborts)
      EXPECT_GT(History.size(), uint64_t(Threads) * TxPerThread)
          << STM::name() << ": run produced no aborted attempts — the "
          << "checker exercised no contention";
    checkHistory(History, STM::name());
  }
  STM::globalShutdown();
}

StmConfig smallTable() {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  return Config;
}

/// Histories recorded *through* the runtime dispatch layer, on every
/// backend (and the adaptive switcher under the STM_ADAPTIVE CI pass).
class HistoryCheckTest : public repro_test::RuntimeSuiteNoInit {};

/// Default configuration of each backend, mixed readers and updaters.
TEST_P(HistoryCheckTest, RandomizedHistoryIsOpaque) {
  runHistoryCheck<repro_test::Rt>(applyMode(smallTable()), 4,
                                  1500 * stressScale(),
                                  /*UpdatePercent=*/50, /*SeedSalt=*/1,
                                  /*RequireAborts=*/true);
}

/// Read-dominated: long stretches between sequencer bumps exercise the
/// extension/revalidation paths instead of the conflict paths.
TEST_P(HistoryCheckTest, ReadMostlyHistoryIsOpaque) {
  runHistoryCheck<repro_test::Rt>(applyMode(smallTable()), 4,
                                  1200 * stressScale(),
                                  /*UpdatePercent=*/10, /*SeedSalt=*/2);
}

/// A tiny lock table forces false conflicts between unrelated stripes;
/// opacity must survive aliasing.
TEST_P(HistoryCheckTest, FalseConflictsStayOpaque) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 4;
  runHistoryCheck<repro_test::Rt>(applyMode(Config), 4, 800 * stressScale(),
                                  /*UpdatePercent=*/50, /*SeedSalt=*/3);
}

/// Every commit-clock policy must replay as an opaque history. GV5 is
/// the aliasing case the checker exists for: two concurrent updaters
/// with disjoint write sets legally commit with the *same* timestamp
/// (the counter only moves when a reader misses), so any unsound
/// validation shortcut or per-stripe version reuse surfaces here as a
/// torn snapshot or lost update. GV4 exercises timestamp adoption: a
/// committer that loses the clock CAS shares the winner's stamp and
/// must still validate. GVSHARD combines both hazards: stamps are
/// derived from a scan over per-shard counters (two committers on
/// different shards may mint the same value) and begins run on a cached
/// view that lags some shards — forced to 4 shards here because the
/// topology auto-derivation collapses to 1 on small hosts.
TEST_P(HistoryCheckTest, EveryClockPolicyStaysOpaque) {
  unsigned Salt = 20;
  for (ClockKind Kind : allClockKinds()) {
    SCOPED_TRACE(clockKindName(Kind));
    StmConfig Config = applyMode(smallTable());
    Config.Clock = Kind;
    if (Kind == ClockKind::GvShard)
      Config.ClockShards = 4;
    runHistoryCheck<repro_test::Rt>(Config, 4, 800 * stressScale(),
                                    /*UpdatePercent=*/50,
                                    /*SeedSalt=*/Salt++);
  }
}

/// Read-mostly sweep per clock: long stretches between sequencer bumps
/// drive the extension/revalidation paths, which under GV5 include the
/// reader-side counter advance (observe) — the mechanism that replaces
/// the committer's increment.
TEST_P(HistoryCheckTest, ReadMostlyEveryClockPolicyStaysOpaque) {
  unsigned Salt = 30;
  for (ClockKind Kind :
       {ClockKind::Gv4, ClockKind::Gv5, ClockKind::GvShard}) {
    SCOPED_TRACE(clockKindName(Kind));
    StmConfig Config = applyMode(smallTable());
    Config.Clock = Kind;
    if (Kind == ClockKind::GvShard)
      Config.ClockShards = 4;
    runHistoryCheck<repro_test::Rt>(Config, 4, 700 * stressScale(),
                                    /*UpdatePercent=*/10,
                                    /*SeedSalt=*/Salt++);
  }
}

STM_INSTANTIATE_RUNTIME_SUITE(HistoryCheckTest);

//===----------------------------------------------------------------------===//
// Runtime switch barrier: opacity must hold across backend switches.
//===----------------------------------------------------------------------===//

/// A controller thread cycles the active backend through all four kinds
/// while the workers record their history through the dispatch layer.
/// Every attempt therefore runs on whichever backend its generation
/// selected, and the merged history — which spans many switch barriers
/// — must still replay as one opaque serialization.
TEST(HistoryCheckRuntimeTest, HistorySpanningBackendSwitchesIsOpaque) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::Tl2;
  Config.Adaptive = true;       // arms the switch machinery...
  Config.AdaptiveWindow = ~0u;  // ...with the policy effectively off
  std::atomic<unsigned> Switches{0};
  runHistoryCheck<StmRuntime>(
      Config, 4, 1200 * stressScale(), /*UpdatePercent=*/50,
      /*SeedSalt=*/7, /*RequireAborts=*/false,
      [&Switches](std::atomic<bool> &Done) {
        std::size_t Next = 0;
        const auto &Kinds = stm::rt::allBackendKinds();
        while (!Done.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          if (StmRuntime::requestSwitch(Kinds[Next++ % Kinds.size()]))
            Switches.fetch_add(1, std::memory_order_relaxed);
        }
      });
  EXPECT_GT(Switches.load(), 0u)
      << "no backend switch crossed the recorded history";
}

/// The adaptive policy itself driving the switches: contended mixed
/// updates with a tiny evaluation window force escalation decisions
/// mid-history.
TEST(HistoryCheckRuntimeTest, AdaptivePolicyHistoryIsOpaque) {
  StmConfig Config = smallTable();
  Config.Backend = stm::rt::BackendKind::Tl2;
  Config.AdaptiveWindow = 256;
  runHistoryCheck<AdaptiveRuntime>(Config, 4, 1500 * stressScale(),
                                   /*UpdatePercent=*/50, /*SeedSalt=*/8);
}

/// Switch-crossing histories under every clock policy: the controller
/// cycles the active backend through all four kinds while workers
/// record, so every barrier crosses timestamps minted by one clock
/// instance into a generation validated against another. Each backend's
/// clock is independent state — the merged history must still replay as
/// one opaque serialization under gv1's unique stamps, gv4's adopted
/// ones, and gv5's deferred, reader-advanced ones.
TEST(HistoryCheckRuntimeTest, SwitchCrossingHistoryOpaqueUnderEveryClock) {
  unsigned Salt = 40;
  for (ClockKind Kind : allClockKinds()) {
    SCOPED_TRACE(clockKindName(Kind));
    StmConfig Config = smallTable();
    Config.Backend = stm::rt::BackendKind::Tl2;
    Config.Clock = Kind;
    if (Kind == ClockKind::GvShard)
      Config.ClockShards = 4;
    Config.Adaptive = true;      // arms the switch machinery...
    Config.AdaptiveWindow = ~0u; // ...with the policy effectively off
    std::atomic<unsigned> Switches{0};
    runHistoryCheck<StmRuntime>(
        Config, 4, 800 * stressScale(), /*UpdatePercent=*/50,
        /*SeedSalt=*/Salt++, /*RequireAborts=*/false,
        [&Switches](std::atomic<bool> &Done) {
          std::size_t Next = 0;
          const auto &Kinds = stm::rt::allBackendKinds();
          while (!Done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            if (StmRuntime::requestSwitch(Kinds[Next++ % Kinds.size()]))
              Switches.fetch_add(1, std::memory_order_relaxed);
          }
        });
    EXPECT_GT(Switches.load(), 0u)
        << clockKindName(Kind)
        << ": no backend switch crossed the recorded history";
  }
}

/// The adaptive policy driving switches while commits share (gv4),
/// defer (gv5), or shard (gvshard) their timestamps — escalation
/// decisions ride on the windowed stats the clock policies must not
/// skew.
TEST(HistoryCheckRuntimeTest, AdaptivePolicyHistoryOpaqueUnderSharedStampClocks) {
  unsigned Salt = 50;
  for (ClockKind Kind :
       {ClockKind::Gv4, ClockKind::Gv5, ClockKind::GvShard}) {
    SCOPED_TRACE(clockKindName(Kind));
    StmConfig Config = smallTable();
    Config.Backend = stm::rt::BackendKind::Tl2;
    Config.Clock = Kind;
    if (Kind == ClockKind::GvShard)
      Config.ClockShards = 4;
    Config.AdaptiveWindow = 256;
    runHistoryCheck<AdaptiveRuntime>(Config, 4, 800 * stressScale(),
                                     /*UpdatePercent=*/50,
                                     /*SeedSalt=*/Salt++);
  }
}

/// SwissTM with timestamp extension disabled behaves like TL2 on reads;
/// the history must stay opaque, just with more aborts.
TEST(HistoryCheckConfigTest, SwissTmWithoutExtension) {
  StmConfig Config = smallTable();
  Config.EnableExtension = false;
  runHistoryCheck<SwissTm>(Config, 4, 1200 * stressScale(), 50, 4);
}

/// RSTM's other design-matrix cells: lazy acquire and visible reads.
TEST(HistoryCheckConfigTest, RstmLazyAcquire) {
  StmConfig Config = smallTable();
  Config.RstmEagerAcquire = false;
  runHistoryCheck<Rstm>(Config, 4, 1200 * stressScale(), 50, 5);
}

/// TL2 and TinySTM single-fence commit (STM_SINGLE_FENCE): the stamp is
/// taken *after* write-back while the write locks are still held, and
/// the read path's post-check lock load drops its acquire fence. The
/// two soundness obligations — commit-time validation can never be
/// skipped on the shared stamp, and no reader can straddle the
/// stamp/write-back inversion (its stripes stay locked throughout) —
/// must both hold or this history tears. Gv1 is the base case; gvshard
/// stacks the sharded stamp on top of the elided fence.
TEST(HistoryCheckConfigTest, SingleFenceCommitStaysOpaque) {
  unsigned Salt = 60;
  for (ClockKind Kind : {ClockKind::Gv1, ClockKind::GvShard}) {
    SCOPED_TRACE(clockKindName(Kind));
    StmConfig Config = smallTable();
    Config.SingleFence = true;
    Config.Clock = Kind;
    if (Kind == ClockKind::GvShard)
      Config.ClockShards = 4;
    runHistoryCheck<Tl2>(Config, 4, 1000 * stressScale(), 50, Salt++);
    runHistoryCheck<TinyStm>(Config, 4, 1000 * stressScale(), 50, Salt++);
  }
}

TEST(HistoryCheckConfigTest, RstmVisibleReads) {
  StmConfig Config = smallTable();
  Config.RstmVisibleReads = true;
  // Smaller than the invisible-read cases: every updater must clear
  // every reader's bit through the CM, which on few-core machines makes
  // each conflict orders of magnitude more expensive.
  runHistoryCheck<Rstm>(Config, 2, 400 * stressScale(), 50, 6);
}

//===----------------------------------------------------------------------===//
// Clock-policy write skew: the sequencer histories above order all
// updates through one word, so every updater conflicts on its stripe
// and two committers never run with *disjoint* write sets — yet
// disjoint committers are exactly who may share a timestamp under
// gv4 adoption and gv5 deferral. This test manufactures the classic
// write-skew pair (T0 reads Y writes X, T1 reads X writes Y, yields
// widening the overlap) and asserts the non-serializable outcome never
// commits: any unsound "nothing committed in between" shortcut on a
// shared timestamp lets both transactions miss each other and produce
// X == 1 && Y == 1 from X == Y == 0.
//===----------------------------------------------------------------------===//

class ClockPolicyWriteSkewTest
    : public ::testing::TestWithParam<ClockKind> {};

TEST_P(ClockPolicyWriteSkewTest, DisjointCommittersNeverWriteSkew) {
  struct alignas(64) Cell {
    Word W;
  };
  static Cell X, Y;
  constexpr unsigned Threads = 2;

  for (stm::rt::BackendKind Backend : stm::rt::allBackendKinds()) {
    SCOPED_TRACE(stm::rt::backendName(Backend));
    StmConfig Config = smallTable();
    Config.Backend = Backend;
    Config.Clock = GetParam();
    // Under gvshard the two threads sit on different shards (slot 0 and
    // slot 1), so a skew pair can mint the same stamp from counters on
    // different cache lines — the cross-shard variant of gv5 aliasing.
    if (Config.Clock == ClockKind::GvShard)
      Config.ClockShards = 4;
    StmRuntime::globalInit(Config);
    {
      const unsigned Rounds = 400 * stressScale();
      std::atomic<unsigned> Arrivals{0};
      std::atomic<unsigned> SkewRounds{0};
      auto Barrier = [&Arrivals](unsigned Target) {
        Arrivals.fetch_add(1, std::memory_order_acq_rel);
        while (Arrivals.load(std::memory_order_acquire) < Target)
          std::this_thread::yield();
      };
      runThreads<StmRuntime>(Threads, [&](unsigned Tid, auto &Tx) {
        for (unsigned R = 0; R < Rounds; ++R) {
          // Phase 1: quiescent reset (every transaction of the previous
          // round has committed or aborted at the barrier).
          Barrier(R * 3 * Threads + Threads);
          if (Tid == 0)
            X.W = Y.W = 0;
          Barrier(R * 3 * Threads + 2 * Threads);
          // Phase 2: the skew pair, overlap widened by a yield between
          // the read and the (disjoint) write.
          atomically(Tx, [&](auto &T) {
            if (Tid == 0) {
              Word SeenY = T.load(&Y.W);
              std::this_thread::yield();
              T.store(&X.W, SeenY + 1);
            } else {
              Word SeenX = T.load(&X.W);
              std::this_thread::yield();
              T.store(&Y.W, SeenX + 1);
            }
          });
          Barrier(R * 3 * Threads + 3 * Threads);
          // Phase 3: check. Serializable outcomes are (1,2) and (2,1);
          // (1,1) means both committers missed each other's write.
          if (Tid == 0 && X.W == 1 && Y.W == 1)
            SkewRounds.fetch_add(1, std::memory_order_relaxed);
        }
      });
      EXPECT_EQ(SkewRounds.load(), 0u)
          << stm::rt::backendName(Backend) << "/"
          << clockKindName(GetParam())
          << ": write skew committed — a shared commit timestamp "
          << "skipped validation";
    }
    StmRuntime::globalShutdown();
  }
}

INSTANTIATE_TEST_SUITE_P(AllClocks, ClockPolicyWriteSkewTest,
                         ::testing::ValuesIn(allClockKinds()),
                         [](const ::testing::TestParamInfo<ClockKind> &I) {
                           return clockKindName(I.param);
                         });

/// The checker itself must reject a non-opaque history: synthesize a
/// torn snapshot and make sure it trips.
TEST(HistoryCheckerSelfTest, DetectsTornSnapshot) {
  std::vector<Attempt> History;

  Attempt Update;
  Update.SeqSeen = 0;
  Update.SeqValid = true;
  Update.Committed = true;
  Update.SeqWritten = uniqueValue(0, 0, 0xFE);
  for (unsigned W = 0; W < NumWords; ++W)
    Update.read(W, 0);
  Update.write(0, uniqueValue(0, 0, 0));
  Update.write(1, uniqueValue(0, 0, 1));
  History.push_back(Update);

  // A reader that saw word 0 after the update but word 1 before it:
  // consistent with no serialization point.
  Attempt Torn;
  Torn.SeqSeen = Update.SeqWritten;
  Torn.SeqValid = true;
  Torn.Committed = true;
  Torn.read(0, uniqueValue(0, 0, 0));
  Torn.read(1, 0);
  History.push_back(Torn);

  EXPECT_NONFATAL_FAILURE(checkHistory(History, "synthetic"),
                          "non-opaque snapshot");
}

TEST(HistoryCheckerSelfTest, DetectsDirtyRead) {
  std::vector<Attempt> History;
  Attempt Dirty;
  Dirty.SeqSeen = uniqueValue(7, 3, 0xFE); // nobody committed this
  Dirty.SeqValid = true;
  Dirty.Committed = true;
  History.push_back(Dirty);
  EXPECT_NONFATAL_FAILURE(checkHistory(History, "synthetic"),
                          "dirty read");
}

TEST(HistoryCheckerSelfTest, DetectsLostUpdate) {
  std::vector<Attempt> History;
  for (int I = 0; I < 2; ++I) {
    Attempt A;
    A.SeqSeen = 0; // both serialized after the initial state
    A.SeqValid = true;
    A.Committed = true;
    A.SeqWritten = uniqueValue(I, 0, 0xFE);
    History.push_back(A);
  }
  bool Caught = false;
  // The duplicate-SeqSeen assertion is fatal; run in a scoped trap.
  {
    ::testing::TestPartResultArray Failures;
    ::testing::ScopedFakeTestPartResultReporter Reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &Failures);
    checkHistory(History, "synthetic");
    for (int I = 0; I < Failures.size(); ++I)
      if (std::string(Failures.GetTestPartResult(I).message())
              .find("lost update") != std::string::npos)
        Caught = true;
  }
  EXPECT_TRUE(Caught);
}

/// Undo-log model: a write followed by a readback of the same word must
/// observe the pending in-place value, not the committed state.
TEST(HistoryCheckerSelfTest, DetectsLostOwnWrite) {
  std::vector<Attempt> History;
  Attempt Update;
  Update.SeqSeen = 0;
  Update.SeqValid = true;
  Update.Committed = true;
  Update.SeqWritten = uniqueValue(0, 0, 0xFE);
  Update.write(0, uniqueValue(0, 0, 0));
  Update.read(0, 0); // readback missed the attempt's own pending write
  History.push_back(Update);
  EXPECT_NONFATAL_FAILURE(checkHistory(History, "synthetic"),
                          "lost own in-place write");
}

#ifdef STM_DIAG
/// Toggles a fault-injection knob for the enclosing scope.
struct InjectGuard {
  stm::diag::Inject Knob;
  explicit InjectGuard(stm::diag::Inject K) : Knob(K) {
    stm::diag::setInjected(K, true);
  }
  ~InjectGuard() { stm::diag::setInjected(Knob, false); }
};

/// End to end: resurrect the "rollback releases the orecs without
/// unwinding the undo log" bug and prove the offline checker catches
/// it. An aborted writer's in-place speculative values survive into
/// shared memory, so later attempts read values no committed state
/// contains — surfacing as a dirty read (a sequencer value nobody
/// committed) or an inconsistent snapshot.
TEST(HistoryCheckerSelfTest, CatchesInjectedOrecSkipUndo) {
  InjectGuard Guard(stm::diag::Inject::OrecSkipUndo);
  bool Caught = false;
  {
    ::testing::TestPartResultArray Failures;
    ::testing::ScopedFakeTestPartResultReporter Reporter(
        ::testing::ScopedFakeTestPartResultReporter::INTERCEPT_ALL_THREADS,
        &Failures);
    StmConfig Config = smallTable();
    // Keep every abort a plain rollback: irrevocable escalation would
    // serialize the pathological writers and mask the poison.
    Config.OrecIrrevocableAborts = 0;
    runHistoryCheck<OrecStm>(Config, 4, 1500, /*UpdatePercent=*/50,
                             /*SeedSalt=*/9, /*RequireAborts=*/true);
    for (int I = 0; I < Failures.size(); ++I) {
      std::string Msg = Failures.GetTestPartResult(I).message();
      if (Msg.find("inconsistently") != std::string::npos ||
          Msg.find("dirty read") != std::string::npos ||
          Msg.find("lost update") != std::string::npos)
        Caught = true;
    }
  }
  EXPECT_TRUE(Caught)
      << "undo-log-aware checker missed the injected skip-undo bug";
}

/// End to end for the fence-elision work: resurrect the *unsound*
/// version of the optimization — the one where the data load is allowed
/// to sink below the relaxed post-check — and prove the checker catches
/// it. The injection re-loads the data word after TL2's V1/V2 lock
/// checks with a yield in between, so a concurrent committer's
/// write-back lands between check and load: the read returns a value
/// from a later state than the rest of the snapshot. This is exactly
/// the reorder the seq_cst commit fence plus the always-revalidate rule
/// make impossible in the real single-fence path; the checker flags it
/// as a non-opaque snapshot (or a dirty sequencer read).
TEST(HistoryCheckerSelfTest, CatchesInjectedUnsoundFenceElision) {
  InjectGuard Guard(stm::diag::Inject::Tl2UnsoundFenceElision);
  bool Caught = false;
  {
    ::testing::TestPartResultArray Failures;
    ::testing::ScopedFakeTestPartResultReporter Reporter(
        ::testing::ScopedFakeTestPartResultReporter::INTERCEPT_ALL_THREADS,
        &Failures);
    StmConfig Config = smallTable();
    Config.SingleFence = true;
    runHistoryCheck<Tl2>(Config, 4, 1500, /*UpdatePercent=*/50,
                         /*SeedSalt=*/10);
    for (int I = 0; I < Failures.size(); ++I) {
      std::string Msg = Failures.GetTestPartResult(I).message();
      if (Msg.find("inconsistently") != std::string::npos ||
          Msg.find("dirty read") != std::string::npos ||
          Msg.find("lost update") != std::string::npos)
        Caught = true;
    }
  }
  EXPECT_TRUE(Caught)
      << "opacity checker missed the injected unsound fence elision";
}
#endif // STM_DIAG

} // namespace
