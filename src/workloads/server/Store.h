//===- workloads/server/Store.h - sharded transactional KV store -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The serving workload's data plane: a range-partitioned key-value
// store of transactional red-black trees, plus a small separate
// "auction" table of hot keys. The four request classes exercise the
// contention regimes the paper's figures probe, but composed into one
// mixed service instead of isolated microbenchmarks:
//
//   PointRead   one lookup — short, read-only, extension-friendly;
//   RangeScan   ordered in-range traversal — long invisible read sets,
//               the lazy-vs-eager r/w detection stress;
//   Transfer    two-key read-modify-write that may cross shards — the
//               w/w conflict class where eager detection pays;
//   AuctionBid  read-modify-write on one of a few hot keys — the
//               pathological-contention regime the two-phase CM targets.
//
// Shards partition the key space by range, so scans touch few shards
// and the scrambled-Zipfian client spreads hot point keys across all of
// them. All shards live under the one process-wide STM instance: a
// transfer whose keys straddle a shard boundary is still one atomic
// transaction — sharding here is about allocator/root contention and
// cache locality, not about weakening atomicity.
//
// Transfers conserve the total balance; checkConservation() audits it
// after a run, so a serialization bug in any backend shows up as a
// failed audit instead of a silently wrong benchmark.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SERVER_STORE_H
#define WORKLOADS_SERVER_STORE_H

#include "stm/Stm.h"
#include "workloads/rbtree/RbTree.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace workloads::server {

/// Request classes served by the store (indices into the per-class
/// latency histograms).
enum class OpClass : uint8_t {
  PointRead = 0,
  RangeScan = 1,
  Transfer = 2,
  AuctionBid = 3,
};
inline constexpr unsigned NumOpClasses = 4;

inline const char *opClassName(OpClass Op) {
  switch (Op) {
  case OpClass::PointRead:
    return "point_read";
  case OpClass::RangeScan:
    return "range_scan";
  case OpClass::Transfer:
    return "transfer";
  case OpClass::AuctionBid:
    return "auction_bid";
  }
  return "?";
}

/// Range-partitioned transactional store. Keys live in [0, keySpace());
/// auctions in [0, auctionCount()) in their own table.
class ShardedStore {
public:
  using Tx = stm::rt::TxHandle;
  using Tree = workloads::RbTree<stm::StmRuntime>;

  /// Every key starts with this balance; transfers move slices of it.
  static constexpr uint64_t InitialBalance = 1000;

  /// Multi-process runs allocate the store with `new` *before* forking
  /// workers: the object (whose AuctionTable root is written
  /// transactionally) then lives in the shared segment, and the
  /// fork-inherited shard directory (a private, read-only-after-populate
  /// vector) stays valid by COW. The trees and their nodes are already
  /// segment-resident via RbTree's allocator hooks.
  static void *operator new(std::size_t Bytes) {
    return stm::sharedAlloc(Bytes);
  }
  static void operator delete(void *P) { stm::sharedDispatchFree(P); }

  ShardedStore(unsigned NumShards, uint64_t KeySpace, uint64_t Auctions)
      : KeySpace(KeySpace), Auctions(Auctions),
        KeysPerShard((KeySpace + NumShards - 1) / NumShards),
        Shards(NumShards) {
    assert(NumShards > 0 && KeySpace >= NumShards && "degenerate partition");
    for (auto &S : Shards)
      S = std::make_unique<Tree>();
  }

  uint64_t keySpace() const { return KeySpace; }
  uint64_t auctionCount() const { return Auctions; }
  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }

  /// Shard owning \p Key — the routing function clients use to pick a
  /// worker queue, so requests for one shard serialize through one
  /// worker's batches.
  unsigned shardOf(uint64_t Key) const {
    unsigned S = static_cast<unsigned>(Key / KeysPerShard);
    return S < Shards.size() ? S : static_cast<unsigned>(Shards.size()) - 1;
  }

  /// Seeds every key with InitialBalance and every auction with a zero
  /// bid. Transactional (runs through \p R) but intended for the
  /// single-threaded setup phase; inserts in batches to keep individual
  /// transactions bounded.
  void populate(stm::Runtime &R) {
    constexpr uint64_t ChunkKeys = 256;
    for (uint64_t Base = 0; Base < KeySpace; Base += ChunkKeys) {
      uint64_t End = Base + ChunkKeys < KeySpace ? Base + ChunkKeys : KeySpace;
      stm::atomically(R, [&](Tx &T) {
        for (uint64_t K = Base; K < End; ++K)
          shard(K).insert(T, K, InitialBalance);
      });
    }
    stm::atomically(R, [&](Tx &T) {
      for (uint64_t A = 0; A < Auctions; ++A)
        AuctionTable.insert(T, A, 0);
    });
  }

  /// PointRead: balance of \p Key (0 if absent, which populate rules
  /// out).
  uint64_t pointRead(Tx &T, uint64_t Key) {
    uint64_t Value = 0;
    shard(Key).lookup(T, Key, &Value);
    return Value;
  }

  /// RangeScan: sum of the balances of keys in [Lo, Lo+Len), following
  /// the partition across shard boundaries. Returns the sum (the
  /// "result payload" a real service would serialize).
  uint64_t rangeScan(Tx &T, uint64_t Lo, uint64_t Len) {
    if (Lo >= KeySpace)
      Lo = KeySpace - 1;
    uint64_t Hi = Lo + Len >= KeySpace ? KeySpace - 1 : Lo + Len - 1;
    uint64_t Sum = 0;
    for (unsigned S = shardOf(Lo), Last = shardOf(Hi); S <= Last; ++S)
      Shards[S]->scanRange(T, Lo, Hi,
                           [&](uint64_t, uint64_t V) { Sum += V; });
    return Sum;
  }

  /// Transfer: moves \p Amount from \p Src to \p Dst atomically, even
  /// across shards. Returns false (committing a read-only transaction)
  /// when Src lacks funds, so the total balance is invariant either way.
  bool transfer(Tx &T, uint64_t Src, uint64_t Dst, uint64_t Amount) {
    if (Src == Dst)
      return false;
    uint64_t SrcBal = pointRead(T, Src);
    if (SrcBal < Amount)
      return false;
    uint64_t DstBal = pointRead(T, Dst);
    shard(Src).update(T, Src, SrcBal - Amount);
    shard(Dst).update(T, Dst, DstBal + Amount);
    return true;
  }

  /// AuctionBid: read-modify-write on hot auction \p Auction — installs
  /// \p Bid if it beats the standing bid (monotone maximum). Returns
  /// true when the bid won.
  bool auctionBid(Tx &T, uint64_t Auction, uint64_t Bid) {
    uint64_t Standing = 0;
    AuctionTable.lookup(T, Auction, &Standing);
    if (Bid <= Standing)
      return false;
    AuctionTable.update(T, Auction, Bid);
    return true;
  }

  /// Audits the transfer invariant: the sum of all balances must equal
  /// keySpace() * InitialBalance no matter how many transfers ran.
  /// Scans one shard per transaction to keep read sets sane. Call after
  /// the measured region (quiesced traffic).
  bool checkConservation(stm::Runtime &R) {
    std::vector<uint64_t> ShardSums(Shards.size(), 0);
    for (unsigned S = 0; S < Shards.size(); ++S)
      stm::atomically(R, [&](Tx &T) {
        // Overwrite, never accumulate: an aborted attempt re-runs the
        // body, and only assignment is idempotent under retry.
        uint64_t ShardSum = 0;
        Shards[S]->scanRange(T, 0, KeySpace - 1,
                             [&](uint64_t, uint64_t V) { ShardSum += V; });
        ShardSums[S] = ShardSum;
      });
    uint64_t Sum = 0;
    for (uint64_t V : ShardSums)
      Sum += V;
    return Sum == KeySpace * InitialBalance;
  }

private:
  Tree &shard(uint64_t Key) { return *Shards[shardOf(Key)]; }

  uint64_t KeySpace;
  uint64_t Auctions;
  uint64_t KeysPerShard;
  std::vector<std::unique_ptr<Tree>> Shards;
  Tree AuctionTable;
};

} // namespace workloads::server

#endif // WORKLOADS_SERVER_STORE_H
