//===- stm/core/Validation.h - time-based validation mixin ------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// The time-based validation scheme (Algorithm 1, lines 50-57) was
// hand-rolled in each backend: a transaction remembers the global clock
// value it is known valid at ("valid-ts"), and when a read observes a
// newer version it either aborts (TL2) or tries to *extend* — revalidate
// the whole read set against the current clock and, on success, adopt
// the new clock value as its valid-ts (SwissTM, TinySTM). RSTM's
// commit-counter heuristic is the same shape with a different clock.
//
// TimeValidation is a CRTP mixin holding the valid-ts and implementing
// the begin/extend bookkeeping (stats, ThreadRegistry publication for
// quiescence). The derived descriptor supplies the one genuinely
// algorithm-specific piece: validateReadSet(), the per-entry read-log
// check.
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_VALIDATION_H
#define STM_CORE_VALIDATION_H

#include "stm/core/Clock.h"
#include "support/ThreadRegistry.h"

#include <cstdint>

namespace stm::core {

/// CRTP mixin: valid-ts tracking with counted validation and optional
/// timestamp extension. Derived must provide
///   bool validateReadSet();   // revalidate the entire read log
/// and inherit TxBase (for stats() and threadSlot()).
template <typename Derived> class TimeValidation {
public:
  /// The timestamp this transaction is known valid at.
  uint64_t validTs() const { return ValidTs; }

protected:
  /// Samples \p Clock at transaction begin and publishes the snapshot
  /// for quiescence (Algorithm 1, line 2).
  void beginEpoch(const GlobalClock &Clock) {
    ValidTs = Clock.load();
    repro::ThreadRegistry::publishStart(derived().threadSlot(), ValidTs);
  }

  /// Runs the derived read-set validation, counted.
  bool revalidate() {
    ++derived().stats().Validations;
    return derived().validateReadSet();
  }

  /// Timestamp extension (Algorithm 1, lines 54-57): revalidates against
  /// the current clock and on success adopts it as the new valid-ts.
  /// With \p EnableExtension off (TL2-style behaviour, one of the
  /// ablation knobs) the extension always fails.
  bool extendEpoch(const GlobalClock &Clock, bool EnableExtension) {
    if (!EnableExtension) {
      ++derived().stats().FailedExtensions;
      return false;
    }
    uint64_t Ts = Clock.load();
    if (revalidate()) {
      ValidTs = Ts;
      repro::ThreadRegistry::publishStart(derived().threadSlot(), ValidTs);
      ++derived().stats().Extensions;
      return true;
    }
    ++derived().stats().FailedExtensions;
    return false;
  }

  uint64_t ValidTs = 0;

private:
  Derived &derived() { return static_cast<Derived &>(*this); }
};

} // namespace stm::core

#endif // STM_CORE_VALIDATION_H
