//===- workloads/server/LatencyHistogram.h - HDR-style histogram -*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Log-bucketed latency histogram in the HdrHistogram family, sized for
// nanosecond request latencies in an open-loop serving benchmark. The
// value range is split into power-of-two ranges, each divided into
// 2^SubBits linear sub-buckets, so the relative quantization error is
// bounded by 2^-SubBits (~3% at the default 5 bits) across the whole
// 64-bit range while the table stays a few kilobytes. record() is two
// shifts and an increment — cheap enough for the per-request hot path —
// and histograms merge by bucket-wise addition, so each worker records
// privately and the driver merges after the measured region.
//
// Percentiles interpolate linearly inside the selected bucket, the
// standard HdrHistogram estimate: exact for the width-1 buckets below
// 2^SubBits, bounded by the bucket width above.
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SERVER_LATENCYHISTOGRAM_H
#define WORKLOADS_SERVER_LATENCYHISTOGRAM_H

#include <cstddef>
#include <cstdint>

namespace workloads::server {

class LatencyHistogram {
public:
  /// Linear sub-buckets per power-of-two range: 2^SubBits. 5 bits
  /// bounds relative error at 1/32 ≈ 3%, plenty for p50/p99/p999
  /// reporting, at 32 * 60 buckets * 8 B = 15 KiB per histogram.
  static constexpr unsigned SubBits = 5;
  static constexpr uint64_t SubCount = 1ull << SubBits;
  /// Ranges [2^e, 2^(e+1)) for e in [SubBits, 63] plus the exact
  /// [0, 2^SubBits) prefix.
  static constexpr std::size_t NumBuckets =
      SubCount + (64 - SubBits) * SubCount;

  LatencyHistogram() { reset(); }

  void reset() {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      Counts[I] = 0;
    Total = 0;
    Max = 0;
    Min = ~0ull;
  }

  /// Index of the bucket containing \p Value. Values below 2^SubBits
  /// get width-1 buckets (exact); a value in [2^e, 2^(e+1)) lands in
  /// one of SubCount equal slices of its range.
  static std::size_t bucketIndex(uint64_t Value) {
    if (Value < SubCount)
      return static_cast<std::size_t>(Value);
    unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(Value));
    uint64_t Sub = (Value - (1ull << Msb)) >> (Msb - SubBits);
    return SubCount + static_cast<std::size_t>(Msb - SubBits) * SubCount +
           static_cast<std::size_t>(Sub);
  }

  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLow(std::size_t Index) {
    if (Index < SubCount)
      return Index;
    std::size_t Rel = Index - SubCount;
    unsigned Msb = SubBits + static_cast<unsigned>(Rel / SubCount);
    uint64_t Sub = Rel % SubCount;
    return (1ull << Msb) + (Sub << (Msb - SubBits));
  }

  /// One past the largest value mapping to bucket \p Index (saturates
  /// at the top of the 64-bit range).
  static uint64_t bucketHigh(std::size_t Index) {
    if (Index < SubCount)
      return Index + 1;
    std::size_t Rel = Index - SubCount;
    unsigned Msb = SubBits + static_cast<unsigned>(Rel / SubCount);
    uint64_t Width = 1ull << (Msb - SubBits);
    uint64_t Low = bucketLow(Index);
    return Low + Width < Low ? ~0ull : Low + Width; // overflow at 2^64
  }

  void record(uint64_t Value) {
    ++Counts[bucketIndex(Value)];
    ++Total;
    if (Value > Max)
      Max = Value;
    if (Value < Min)
      Min = Value;
  }

  /// Bucket-wise merge: after this, *this reports the union of both
  /// recorded populations. The cross-thread aggregation primitive.
  void merge(const LatencyHistogram &Other) {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
    Total += Other.Total;
    if (Other.Max > Max)
      Max = Other.Max;
    if (Other.Min < Min)
      Min = Other.Min;
  }

  uint64_t count() const { return Total; }
  uint64_t maxValue() const { return Total == 0 ? 0 : Max; }
  uint64_t minValue() const { return Total == 0 ? 0 : Min; }

  /// Value at quantile \p Q in [0, 1]: the smallest recorded-range
  /// value V such that at least Q of the population is <= V, with
  /// linear interpolation inside the bucket that crosses the rank.
  /// Returns 0 on an empty histogram.
  uint64_t valueAtQuantile(double Q) const {
    if (Total == 0)
      return 0;
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
    // Rank of the target sample, 1-based; Q=0 means the first sample.
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
    if (Rank == 0)
      Rank = 1;
    if (Rank > Total)
      Rank = Total;
    uint64_t Seen = 0;
    for (std::size_t I = 0; I < NumBuckets; ++I) {
      if (Counts[I] == 0)
        continue;
      if (Seen + Counts[I] >= Rank) {
        uint64_t Low = bucketLow(I);
        uint64_t High = bucketHigh(I);
        // Interpolate by the rank's centered position within this
        // bucket: Frac stays in (0, 1), so the estimate stays inside
        // [Low, High) and width-1 buckets report their exact value.
        double Frac = (static_cast<double>(Rank - Seen) - 0.5) /
                      static_cast<double>(Counts[I]);
        uint64_t V =
            Low + static_cast<uint64_t>(Frac * static_cast<double>(High - Low));
        return V > Max ? Max : V;
      }
      Seen += Counts[I];
    }
    return Max; // unreachable when invariants hold
  }

  /// Cross-checks the internal invariants; returns the number of
  /// violations (0 = healthy). The server bench gates its exit code on
  /// this, so a broken recording path fails CI instead of producing
  /// quietly wrong percentiles: total equals the bucket sum, min/max
  /// land in occupied buckets, and p50 <= p99 <= p999 <= max.
  unsigned invariantViolations() const {
    unsigned Violations = 0;
    uint64_t Sum = 0;
    for (std::size_t I = 0; I < NumBuckets; ++I)
      Sum += Counts[I];
    if (Sum != Total)
      ++Violations;
    if (Total > 0) {
      if (Counts[bucketIndex(Max)] == 0)
        ++Violations;
      if (Counts[bucketIndex(Min)] == 0)
        ++Violations;
      uint64_t P50 = valueAtQuantile(0.50);
      uint64_t P99 = valueAtQuantile(0.99);
      uint64_t P999 = valueAtQuantile(0.999);
      if (P50 > P99 || P99 > P999)
        ++Violations;
      if (P999 > Max)
        ++Violations;
    }
    return Violations;
  }

private:
  uint64_t Counts[NumBuckets];
  uint64_t Total;
  uint64_t Max;
  uint64_t Min;
};

} // namespace workloads::server

#endif // WORKLOADS_SERVER_LATENCYHISTOGRAM_H
