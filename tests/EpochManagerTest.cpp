//===- tests/EpochManagerTest.cpp - epoch/limbo machinery tests -----------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Unit tests for the epoch-based descriptor reclamation subsystem
// (stm/EpochManager.h): grace-period advancement, no reclamation while a
// reader is pinned, reclamation once every thread quiesces, opportunistic
// collection under churn, and re-registration of recycled thread slots.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include "stm/EpochManager.h"
#include "support/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using stm::EpochManager;

namespace {

/// Heap object whose destruction bumps a counter, so tests can observe
/// exactly when the EpochManager runs a deleter.
struct Tracked {
  explicit Tracked(std::atomic<unsigned> &Destroyed) : Destroyed(Destroyed) {}
  ~Tracked() { Destroyed.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<unsigned> &Destroyed;
};

/// Claims a registry slot for the duration of a test so the epoch scan
/// includes it; released idle (no transaction published).
struct SlotGuard {
  unsigned Slot = repro::ThreadRegistry::acquireSlot();
  ~SlotGuard() {
    stm::EpochManager::unpin(Slot); // restore quiescence before release
    repro::ThreadRegistry::releaseSlot(Slot);
  }
};

class EpochManagerTest : public ::testing::Test {
protected:
  // Each gtest case runs in its own ctest process, but drain anyway so a
  // manually combined run (./EpochManagerTest) also sees exact counts.
  void SetUp() override { EpochManager::releaseAll(); }
  void TearDown() override { EpochManager::releaseAll(); }
};

TEST_F(EpochManagerTest, QuiescentSystemReclaimsImmediately) {
  std::atomic<unsigned> Destroyed{0};
  EpochManager::retireObject(new Tracked(Destroyed));
  EXPECT_EQ(EpochManager::limboSize(), 1u);
  EXPECT_EQ(Destroyed.load(), 0u) << "retire must not destroy in place";
  EXPECT_EQ(EpochManager::collect(), 1u);
  EXPECT_EQ(Destroyed.load(), 1u);
  EXPECT_EQ(EpochManager::limboSize(), 0u);
}

TEST_F(EpochManagerTest, RetireAdvancesTheGlobalEpoch) {
  std::atomic<unsigned> Destroyed{0};
  uint64_t Before = EpochManager::currentEpoch();
  EpochManager::retireObject(new Tracked(Destroyed));
  EpochManager::retireObject(new Tracked(Destroyed));
  EXPECT_EQ(EpochManager::currentEpoch(), Before + 2);
  EpochManager::collect();
}

TEST_F(EpochManagerTest, PinnedReaderBlocksReclamation) {
  std::atomic<unsigned> Destroyed{0};
  SlotGuard Reader;
  EpochManager::pin(Reader.Slot); // reader enters before the retire
  EpochManager::retireObject(new Tracked(Destroyed));
  EXPECT_EQ(EpochManager::collect(), 0u)
      << "object retired after the pin must survive the reader";
  EXPECT_EQ(Destroyed.load(), 0u);
  EXPECT_EQ(EpochManager::limboSize(), 1u);

  EpochManager::unpin(Reader.Slot);
  EXPECT_EQ(EpochManager::collect(), 1u);
  EXPECT_EQ(Destroyed.load(), 1u);
}

TEST_F(EpochManagerTest, AllPinnedReadersMustQuiesce) {
  std::atomic<unsigned> Destroyed{0};
  SlotGuard A, B;
  EpochManager::pin(A.Slot);
  EpochManager::pin(B.Slot);
  EpochManager::retireObject(new Tracked(Destroyed));

  EpochManager::unpin(A.Slot);
  EXPECT_EQ(EpochManager::collect(), 0u) << "B is still pinned";
  EpochManager::unpin(B.Slot);
  EXPECT_EQ(EpochManager::collect(), 1u);
  EXPECT_EQ(Destroyed.load(), 1u);
}

TEST_F(EpochManagerTest, PinAfterRetireDoesNotBlock) {
  std::atomic<unsigned> Destroyed{0};
  EpochManager::retireObject(new Tracked(Destroyed));
  SlotGuard Late;
  EpochManager::pin(Late.Slot); // pinned past the retire epoch
  EXPECT_GT(EpochManager::pinnedEpoch(Late.Slot),
            EpochManager::currentEpoch() - 1);
  EXPECT_EQ(EpochManager::collect(), 1u)
      << "a transaction started after the retire cannot hold the pointer";
  EXPECT_EQ(Destroyed.load(), 1u);
}

TEST_F(EpochManagerTest, RepinDoesNotResurrectOldGracePeriod) {
  std::atomic<unsigned> Destroyed{0};
  SlotGuard Reader;
  EpochManager::pin(Reader.Slot);
  EpochManager::retireObject(new Tracked(Destroyed));
  // Reader finishes its transaction and starts a fresh one: the new pin
  // is past the retire epoch, so the old entry becomes reclaimable.
  EpochManager::unpin(Reader.Slot);
  EpochManager::pin(Reader.Slot);
  EXPECT_EQ(EpochManager::collect(), 1u);
  EXPECT_EQ(Destroyed.load(), 1u);
}

TEST_F(EpochManagerTest, MinPinnedEpochTracksOldestReader) {
  SlotGuard A, B;
  EXPECT_EQ(EpochManager::minPinnedEpoch(), ~0ull);
  EpochManager::pin(A.Slot);
  uint64_t EpochA = EpochManager::pinnedEpoch(A.Slot);
  std::atomic<unsigned> Destroyed{0};
  EpochManager::retireObject(new Tracked(Destroyed)); // advances epoch
  EpochManager::pin(B.Slot);
  EXPECT_EQ(EpochManager::minPinnedEpoch(), EpochA);
  EpochManager::unpin(A.Slot);
  EXPECT_EQ(EpochManager::minPinnedEpoch(), EpochManager::pinnedEpoch(B.Slot));
  EpochManager::unpin(B.Slot);
  EXPECT_EQ(EpochManager::minPinnedEpoch(), ~0ull);
  EpochManager::collect();
}

TEST_F(EpochManagerTest, SustainedChurnTriggersOpportunisticCollection) {
  std::atomic<unsigned> Destroyed{0};
  // With nothing pinned, the limbo list must stay bounded: once it hits
  // the internal threshold, retire() collects on its own.
  for (unsigned I = 0; I < 200; ++I)
    EpochManager::retireObject(new Tracked(Destroyed));
  EXPECT_GT(Destroyed.load(), 0u)
      << "retire never collected despite 200 parked entries";
  EXPECT_LT(EpochManager::limboSize(), 64u);
  EpochManager::collect();
  EXPECT_EQ(Destroyed.load(), 200u);
}

TEST_F(EpochManagerTest, BlockedHorizonParksEverythingUntilQuiescence) {
  std::atomic<unsigned> Destroyed{0};
  SlotGuard Reader;
  EpochManager::pin(Reader.Slot);
  // Far past the opportunistic-collection trigger: nothing may be freed
  // while the reader holds the horizon (the trigger backs off instead
  // of rescanning on every retire).
  for (unsigned I = 0; I < 200; ++I)
    EpochManager::retireObject(new Tracked(Destroyed));
  EXPECT_EQ(Destroyed.load(), 0u);
  EXPECT_EQ(EpochManager::limboSize(), 200u);
  EpochManager::unpin(Reader.Slot);
  EXPECT_EQ(EpochManager::collect(), 200u);
  EXPECT_EQ(Destroyed.load(), 200u);
}

TEST_F(EpochManagerTest, ReleaseAllIgnoresEpochs) {
  std::atomic<unsigned> Destroyed{0};
  SlotGuard Reader;
  EpochManager::pin(Reader.Slot);
  EpochManager::retireObject(new Tracked(Destroyed));
  // Global shutdown path: frees regardless of pins (caller guarantees
  // no transaction is in flight).
  EXPECT_EQ(EpochManager::releaseAll(), 1u);
  EXPECT_EQ(Destroyed.load(), 1u);
  EpochManager::unpin(Reader.Slot);
}

//===----------------------------------------------------------------------===//
// Integration with ThreadScope and slot recycling
//===----------------------------------------------------------------------===//

TEST_F(EpochManagerTest, ExitedDescriptorsParkInLimboThenFree) {
  stm::StmConfig Config;
  stm::SwissTm::globalInit(Config);
  constexpr unsigned N = 8;
  for (unsigned I = 0; I < N; ++I)
    std::thread([] {
      stm::ThreadScope<stm::SwissTm> Scope;
      stm::atomically(Scope.tx(), [](auto &) {});
    }).join();
  // No transaction is in flight, but the descriptors must have been
  // parked (not destroyed inline) and now be collectable.
  EXPECT_EQ(EpochManager::limboSize(), N);
  EXPECT_EQ(EpochManager::collect(), N);
  EXPECT_EQ(EpochManager::limboSize(), 0u);
  stm::SwissTm::globalShutdown();
}

TEST_F(EpochManagerTest, GlobalShutdownDrainsLimbo) {
  stm::StmConfig Config;
  stm::Tl2::globalInit(Config);
  std::thread([] {
    stm::ThreadScope<stm::Tl2> Scope;
    stm::atomically(Scope.tx(), [](auto &) {});
  }).join();
  EXPECT_EQ(EpochManager::limboSize(), 1u);
  stm::Tl2::globalShutdown();
  EXPECT_EQ(EpochManager::limboSize(), 0u);
}

TEST_F(EpochManagerTest, RecycledSlotRepublishesRstmDescriptor) {
  stm::StmConfig Config;
  stm::Rstm::globalInit(Config);
  unsigned FirstSlot = ~0u;
  stm::rstm::RstmTx *First = nullptr;
  std::thread([&] {
    stm::ThreadScope<stm::Rstm> Scope;
    FirstSlot = Scope.tx().threadSlot();
    First = &Scope.tx();
  }).join();
  ASSERT_NE(First, nullptr);
  // threadShutdown unpublished the parked descriptor from the slot
  // table, so no new reader can reach it while it sits in limbo.
  EXPECT_EQ(stm::Rstm::globals().Descriptors[FirstSlot].load(), nullptr);
  EXPECT_EQ(EpochManager::limboSize(), 1u);

  std::thread([&] {
    stm::ThreadScope<stm::Rstm> Scope;
    // Lowest free slot is recycled for the successor.
    ASSERT_EQ(Scope.tx().threadSlot(), FirstSlot);
    ASSERT_EQ(stm::Rstm::globals().Descriptors[FirstSlot].load(),
              &Scope.tx());
    // Destroying the parked predecessor must not unpublish the
    // successor occupying the recycled slot.
    EXPECT_EQ(EpochManager::collect(), 1u);
    EXPECT_EQ(stm::Rstm::globals().Descriptors[FirstSlot].load(),
              &Scope.tx());
  }).join();
  stm::Rstm::globalShutdown();
}

} // namespace
