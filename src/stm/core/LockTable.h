//===- stm/core/LockTable.h - address-to-lock mapping (Fig. 1) --*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Maps every transactional address to a lock-table entry: the byte
// address is shifted right by the granularity exponent (so a stripe of
// 2^G consecutive bytes shares one entry) and masked by the table size.
// Distinct stripes may collide on one entry ("false conflicts"); the
// paper observes this is harmless in practice, and Figure 13 sweeps G.
//
// Two properties distinguish this from a plain array:
//
//  * every entry sits on its own cache line. Stripes that are adjacent
//    in memory are adjacent in the table, so without padding a writer
//    bumping one stripe's lock word invalidates the line holding its
//    neighbours' lock words in every reader's cache — false sharing on
//    exactly the hottest addresses (the fig5 rbtree root area).
//  * storage comes from an anonymous MAP_NORESERVE mapping (the shared
//    arena's mapPrivate), not value-initializing new[]. The kernel
//    hands out lazily-committed zero pages, so a 2^28-entry table costs
//    address space, not memory, until stripes are touched — and init()
//    is O(1) instead of writing out the whole table. Entry types must
//    therefore be valid in the all-zero-bytes state (their "unlocked"
//    state) — true of every backend's atomic lock words.
//
// In multi-process mode the table does not own its storage at all:
// bindAt() points it into the shm segment's table region (see
// core/SharedArena.h), where peers see the same lock words.
//
// Interleave policy (STM_LOCK_SHARDS): with S > 1 shards the table is
// split into S equal contiguous regions and stripe k is mapped into
// region k mod S — a bijective rotation of the index bits, so no
// entries are lost and S = 1 is the plain identity mapping. Round-robin
// by stripe spreads any hot contiguous working set (the fig5 rbtree
// root area) across regions, and because each region is contiguous,
// first-touch NUMA placement puts a region's pages on the socket whose
// threads fault them in — aligning a stripe's lock word with the clock
// shard of the committers that hammer it (core/Clock.h GvShard).
//
//===----------------------------------------------------------------------===//

#ifndef STM_CORE_LOCKTABLE_H
#define STM_CORE_LOCKTABLE_H

#include "stm/core/SharedArena.h"
#include "support/Platform.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace stm::core {

/// Rounds one per-stripe entry up to a full cache line so adjacent
/// stripes never share a line.
template <typename EntryT> struct alignas(repro::CacheLineSize) PaddedEntry {
  EntryT Entry;
};

/// Fixed-size hash table of lock entries, one instance per STM.
/// \tparam EntryT per-stripe metadata (e.g. SwissTM's read/write lock
/// pair); its all-zero-bytes state must be the "unlocked" state.
template <typename EntryT> class LockTable {
public:
  /// Bounds enforced by init() in every build mode. 2^28 entries is
  /// 16 GiB of (lazily committed) address space; 2^4 is the smallest
  /// table where the masked index still exercises the hash.
  static constexpr unsigned MinSizeLog2 = 4;
  static constexpr unsigned MaxSizeLog2 = 28;
  static constexpr unsigned MinGranularityLog2 = 2;
  static constexpr unsigned MaxGranularityLog2 = 12;
  /// Largest shard count the interleave accepts (power of two ≤ this,
  /// and ≤ table size).
  static constexpr unsigned MaxShards = 256;

  /// (Re)allocates the table. Any previous contents are discarded, so
  /// this must only run while no transaction is live. Out-of-range
  /// parameters abort in all build modes: a table sized by an
  /// uninitialized or corrupted config must not come up, Release build
  /// or not. \p Shards must be a power of two in [1, MaxShards] not
  /// exceeding the table size; 1 (the default) is the identity mapping.
  void init(unsigned SizeLog2, unsigned GranLog2, unsigned Shards = 1) {
    static_assert(std::is_trivially_destructible_v<EntryT>,
                  "entries are freed without running destructors");
    if (SizeLog2 < MinSizeLog2 || SizeLog2 > MaxSizeLog2 ||
        GranLog2 < MinGranularityLog2 || GranLog2 > MaxGranularityLog2) {
      std::fprintf(stderr,
                   "stm: LockTable::init(%u, %u) out of range "
                   "(size log2 %u..%u, granularity log2 %u..%u)\n",
                   SizeLog2, GranLog2, MinSizeLog2, MaxSizeLog2,
                   MinGranularityLog2, MaxGranularityLog2);
      std::abort();
    }
    if (Shards == 0 || (Shards & (Shards - 1)) != 0 || Shards > MaxShards ||
        Shards > (uint64_t(1) << SizeLog2)) {
      std::fprintf(stderr,
                   "stm: LockTable::init shard count %u out of range "
                   "(power of two, 1..%u, at most the table size)\n",
                   Shards, MaxShards);
      std::abort();
    }
    destroy();
    configure(SizeLog2, GranLog2, Shards);
    // One spare entry of slack lets us align the base up to a cache
    // line; the anonymous mapping keeps untouched pages unbacked.
    RawBytes = bytesFor(SizeLog2);
    Raw = SharedArena::mapPrivate(RawBytes);
    if (Raw == nullptr) {
      std::fprintf(stderr, "stm: lock table allocation failed (2^%u)\n",
                   SizeLog2);
      std::abort();
    }
    uintptr_t Base = reinterpret_cast<uintptr_t>(Raw);
    Base = (Base + repro::CacheLineSize - 1) &
           ~uintptr_t(repro::CacheLineSize - 1);
    Entries = reinterpret_cast<PaddedEntry<EntryT> *>(Base);
  }

  /// Points the table at externally owned, already-zeroed (or live)
  /// storage of bytesFor(\p SizeLog2) bytes — the shm segment's table
  /// region. The table never frees bound storage; parameter validation
  /// is init()'s, reached through the same checks on both sides of the
  /// segment via the layout hash.
  void bindAt(void *Mem, unsigned SizeLog2, unsigned GranLog2,
              unsigned Shards = 1) {
    destroy();
    configure(SizeLog2, GranLog2, Shards);
    Entries = static_cast<PaddedEntry<EntryT> *>(Mem);
  }

  /// Bytes a table of 2^\p SizeLog2 entries occupies, including the
  /// alignment-slack entry — what the segment layout reserves.
  static constexpr uint64_t bytesFor(unsigned SizeLog2) {
    return ((uint64_t(1) << SizeLog2) + 1) * sizeof(PaddedEntry<EntryT>);
  }

  void destroy() {
    if (Raw != nullptr)
      SharedArena::unmapPrivate(Raw, RawBytes);
    Raw = nullptr;
    RawBytes = 0;
    Entries = nullptr;
    SizeMask = 0;
    ShardMask = 0;
    ShardShift = 0;
    RegionShift = 0;
  }

  bool isInitialized() const { return Entries != nullptr; }

  /// Number of entries.
  uint64_t size() const { return SizeMask + 1; }

  /// Number of interleave shards (1 = identity mapping).
  unsigned shards() const { return unsigned(ShardMask) + 1; }

  /// Bytes of memory that share one entry.
  uint64_t stripeBytes() const { return uint64_t(1) << GranularityLog2; }

  /// Index computation of Figure 1 plus the shard interleave: shift the
  /// address right by the granularity exponent, mask by table size,
  /// then rotate the stripe's low shard-selecting bits to the top so
  /// stripe k lands in contiguous region k mod shards. The one-shard
  /// default takes an explicit early return rather than relying on the
  /// rotation degenerating to the identity: this runs on every
  /// transactional access, and the predicted-not-taken branch is
  /// cheaper than carrying the dependent shift chain into the entry
  /// address computation.
  uint64_t indexFor(const void *Addr) const {
    uint64_t Stripe =
        (reinterpret_cast<uintptr_t>(Addr) >> GranularityLog2) & SizeMask;
    if (REPRO_UNLIKELY(ShardShift != 0))
      return ((Stripe & ShardMask) << RegionShift) | (Stripe >> ShardShift);
    return Stripe;
  }

  /// Returns the entry covering \p Addr.
  EntryT &entryFor(const void *Addr) {
    assert(Entries && "lock table used before init");
    return Entries[indexFor(Addr)].Entry;
  }

  /// Recovers the stripe index of an entry obtained from entryFor —
  /// read/write logs store entry pointers, and the diag profiler wants
  /// the index back. EntryT sits at offset 0 of its PaddedEntry.
  uint64_t indexOfEntry(const EntryT *Entry) const {
    assert(Entries && "lock table used before init");
    return static_cast<uint64_t>(
        reinterpret_cast<const PaddedEntry<EntryT> *>(Entry) - Entries);
  }

private:
  void configure(unsigned SizeLog2, unsigned GranLog2, unsigned Shards) {
    SizeMask = (uint64_t(1) << SizeLog2) - 1;
    GranularityLog2 = GranLog2;
    ShardMask = Shards - 1;
    ShardShift = 0;
    while ((1u << ShardShift) < Shards)
      ++ShardShift;
    RegionShift = SizeLog2 - ShardShift;
  }

  PaddedEntry<EntryT> *Entries = nullptr;
  void *Raw = nullptr;
  uint64_t RawBytes = 0;
  uint64_t SizeMask = 0;
  uint64_t ShardMask = 0;
  unsigned ShardShift = 0;
  unsigned RegionShift = 0;
  unsigned GranularityLog2 = 4;
};

} // namespace stm::core

namespace stm {
using core::LockTable;
} // namespace stm

#endif // STM_CORE_LOCKTABLE_H
