//===- stm/runtime/StmRuntime.cpp - type-erased STM runtime ---------------===//
//
// Part of the SwissTM reproduction (PLDI 2009). Implements the backend
// registry, the TxHandle cold paths, and the quiescence-based switch
// protocol described in StmRuntime.h.
//
//===----------------------------------------------------------------------===//

#include "stm/runtime/StmRuntime.h"

#include "stm/EpochManager.h"
#include "stm/RetiredPool.h"
#include "stm/core/SharedArena.h"
#include "stm/diag/Hooks.h"
#include "stm/orec/RuntimeOps.h"
#include "stm/rstm/RuntimeOps.h"
#include "stm/swisstm/RuntimeOps.h"
#include "stm/tinystm/RuntimeOps.h"
#include "stm/tl2/RuntimeOps.h"
#include "support/Backoff.h"

#include <cassert>

using namespace stm;
using namespace stm::rt;

static RuntimeGlobals GlobalState;

RuntimeGlobals &stm::rt::runtimeGlobals() { return GlobalState; }

const BackendOps &stm::rt::backendOps(BackendKind Kind) {
  // Registry in BackendKind order. A fifth backend adds its adapter
  // header above and one entry here.
  static const BackendOps *const Registry[NumBackends] = {
      &swiss::runtimeOps(),
      &tl2::runtimeOps(),
      &tiny::runtimeOps(),
      &rstm::runtimeOps(),
      &orec::runtimeOps(),
  };
  return *Registry[static_cast<std::size_t>(Kind)];
}

//===----------------------------------------------------------------------===//
// Switch protocol
//===----------------------------------------------------------------------===//

namespace {

void resetWindow(RuntimeGlobals &G) {
  G.WindowCommits.store(0, std::memory_order_relaxed);
  G.WindowAborts.store(0, std::memory_order_relaxed);
  G.WindowReads.store(0, std::memory_order_relaxed);
  G.WindowWrites.store(0, std::memory_order_relaxed);
}

/// Drains every in-flight transaction and installs \p Target as the
/// backend of the next generation. Caller must not be inside a
/// transaction (it would wait for its own quiescence). Returns false if
/// a concurrent switch holds the gate.
bool performSwitch(RuntimeGlobals &G, BackendKind Target) {
  assert(G.BackendLive[static_cast<std::size_t>(Target)] &&
         "switch target backend not initialized");
  uint32_t Gen = G.CurrentGen.load(std::memory_order_acquire);
  uint32_t Expected = Gen;
  if (!G.TargetGen.compare_exchange_strong(Expected, Gen + 1,
                                           std::memory_order_acq_rel))
    return false; // another switch owns the gate

  // Re-check under the gate: a racing switch may have installed Target
  // already (two threads evaluating the same window reach the same
  // decision). Reopen and skip the redundant drain.
  if (Target == static_cast<BackendKind>(
                    G.ActiveKind.load(std::memory_order_acquire))) {
    G.TargetGen.store(Gen, std::memory_order_release);
    return false;
  }

  // Gate closed: new attempts spin in TxHandle::startDynamic before
  // pinning. Wait until every slot is epoch-quiescent — the grace
  // period after which all transactional memory holds committed values
  // only and no descriptor of the outgoing backend is referenced.
  unsigned Spin = 0;
  while (EpochManager::minPinnedEpoch() != ~0ull) {
    STM_DIAG_HOOK(::stm::diag::NoSlot, Switch, ::stm::diag::NoStripe,
                  static_cast<uint64_t>(Target));
    repro::spinWait(Spin);
  }

  // Quiescent point: retired blocks carry timestamps from the outgoing
  // backend's clock, which the incoming backend's transactions cannot
  // meaningfully compare against. Releasing them here is safe for the
  // same reason global shutdown may: nothing is in flight.
  RetiredPool::instance().releaseAll();

  G.ActiveKind.store(static_cast<unsigned>(Target),
                     std::memory_order_relaxed);
  STM_DIAG_HOOK(::stm::diag::NoSlot, Switch, ::stm::diag::NoStripe,
                static_cast<uint64_t>(Target));
  resetWindow(G);
  G.SwitchCount.fetch_add(1, std::memory_order_relaxed);
  // Reopen the gate; the release pairs with startDynamic's acquire so
  // rebinding threads see the new ActiveKind.
  G.CurrentGen.store(Gen + 1, std::memory_order_release);
  return true;
}

/// The adaptive policy: the paper's two-phase contention-manager
/// escalation generalized to backend selection. Run cheap and timid
/// while conflicts are rare; once the windowed abort rate crosses the
/// escalation threshold, move everyone to SwissTM (eager w/w detection
/// plus the two-phase CM, the configuration the paper shows winning
/// under contention). De-escalate only when the abort rate falls below
/// the lower threshold — the hysteresis gap keeps the switcher from
/// oscillating — picking the cheap backend by write mix: lazy TL2 for
/// read-dominated windows, eager TinySTM for write-heavy ones.
///
/// The ladder's last rung: when even SwissTM's CM cannot tame the
/// window (abort rate past AdaptiveSerializeAbortRate *while already
/// on SwissTM*), escalate to the orec backend, whose irrevocability
/// mode serializes exactly the pathological transaction (M successive
/// aborts take the global token) instead of switching whole backends
/// again.
BackendKind decideBackend(const RuntimeGlobals &G, uint64_t Commits,
                          uint64_t Aborts, uint64_t Writes) {
  BackendKind Current =
      static_cast<BackendKind>(G.ActiveKind.load(std::memory_order_relaxed));
  uint64_t Attempts = Commits + Aborts;
  double AbortRate =
      Attempts == 0 ? 0.0
                    : static_cast<double>(Aborts) / static_cast<double>(Attempts);
  if (AbortRate >= G.Config.AdaptiveSerializeAbortRate &&
      Current == BackendKind::SwissTm)
    return BackendKind::Orec;
  if (AbortRate >= G.Config.AdaptiveHighAbortRate)
    return Current == BackendKind::Orec ? Current : BackendKind::SwissTm;
  if (AbortRate <= G.Config.AdaptiveLowAbortRate) {
    double WritesPerCommit =
        Commits == 0 ? 0.0
                     : static_cast<double>(Writes) / static_cast<double>(Commits);
    return WritesPerCommit < 1.0 ? BackendKind::Tl2 : BackendKind::TinyStm;
  }
  return Current;
}

} // namespace

//===----------------------------------------------------------------------===//
// TxHandle
//===----------------------------------------------------------------------===//

TxHandle::TxHandle(unsigned Slot) : Slot(Slot) {
  RuntimeGlobals &G = runtimeGlobals();
  BoundGen = G.CurrentGen.load(std::memory_order_acquire);
  rebind(static_cast<BackendKind>(
      G.ActiveKind.load(std::memory_order_relaxed)));
  // Any switch racing this constructor is caught by startDynamic's
  // generation check before the first attempt touches shared state.
}

void TxHandle::rebind(BackendKind NewKind) {
  Kind = NewKind;
  CurOps = &backendOps(NewKind);
  std::size_t I = static_cast<std::size_t>(NewKind);
  if (Inner[I] == nullptr)
    Inner[I] = CurOps->CreateTx(Slot, &Env);
  Cur = Inner[I];
}

void TxHandle::startDynamic() {
  RuntimeGlobals &G = runtimeGlobals();
  // Flush and evaluate on the attempt cadence too, not only on commits:
  // in an abort storm commits stall, and the commit-side path would
  // leave the policy blind in exactly the regime escalation exists for.
  // Safe here — this thread is not yet pinned, so a switch it performs
  // cannot wait on itself.
  if (++AttemptsSinceFlush >= FlushInterval) {
    flushWindow();
    evaluatePolicy();
  }
  unsigned Spin = 0;
  while (true) {
    uint32_t Gen = G.CurrentGen.load(std::memory_order_acquire);
    if (G.TargetGen.load(std::memory_order_acquire) != Gen) {
      // Switch in progress: wait outside, unpinned, so the drain ends.
      STM_DIAG_HOOK(Slot, Switch, ::stm::diag::NoStripe, Gen);
      repro::spinWait(Spin);
      continue;
    }
    if (Gen != BoundGen) {
      rebind(static_cast<BackendKind>(
          G.ActiveKind.load(std::memory_order_relaxed)));
      BoundGen = Gen;
    }
    CurOps->OnStart(Cur); // pins the reclamation epoch (seq_cst fence)

    // Recheck after the pin: a switcher whose quiescence scan missed
    // the pin published its gate before that scan, so these loads see
    // it (the pin's fence pairs with the scan's, see EpochManager.h).
    if (G.TargetGen.load(std::memory_order_seq_cst) == Gen &&
        G.CurrentGen.load(std::memory_order_seq_cst) == Gen)
      return;

    // Lost the race: abandon the attempt through the ordinary abort
    // path before its first transactional access. Restart longjmps to
    // the boundary, which re-enters onStart.
    CurOps->Restart(Cur);
  }
}

void TxHandle::flushWindow() {
  repro::TxStats Now = stats();
  RuntimeGlobals &G = runtimeGlobals();
  G.WindowCommits.fetch_add(Now.Commits - Flushed.Commits,
                            std::memory_order_relaxed);
  G.WindowAborts.fetch_add(Now.Aborts - Flushed.Aborts,
                           std::memory_order_relaxed);
  G.WindowReads.fetch_add(Now.Reads - Flushed.Reads,
                          std::memory_order_relaxed);
  G.WindowWrites.fetch_add(Now.Writes - Flushed.Writes,
                           std::memory_order_relaxed);
  Flushed = Now;
  CommitsSinceFlush = 0;
  AttemptsSinceFlush = 0;
}

void TxHandle::afterCommitDynamic() {
  if (++CommitsSinceFlush < FlushInterval)
    return;
  flushWindow();
  evaluatePolicy();
}

/// Runs the adaptive policy on a full window and performs the switch it
/// calls for. Must run outside any transaction (commit tail or
/// pre-start), where a drain cannot wait on the caller.
void TxHandle::evaluatePolicy() {
  RuntimeGlobals &G = runtimeGlobals();
  uint64_t Commits = G.WindowCommits.load(std::memory_order_relaxed);
  uint64_t Aborts = G.WindowAborts.load(std::memory_order_relaxed);
  if (Commits + Aborts < G.Config.AdaptiveWindow)
    return;
  uint64_t Writes = G.WindowWrites.load(std::memory_order_relaxed);
  BackendKind Target = decideBackend(G, Commits, Aborts, Writes);
  if (Target ==
      static_cast<BackendKind>(G.ActiveKind.load(std::memory_order_relaxed))) {
    // Window consumed with no change of regime; start the next one.
    // Concurrent evaluators racing this reset only shorten a window.
    resetWindow(G);
    return;
  }
  if (performSwitch(G, Target)) {
    ++HandleModeSwitches;
  }
}

bool TxHandle::batchBegin() {
  assert(!inTransaction() && "batchBegin inside a transaction");
  if (BatchActive)
    return true; // idempotent: already holding the batch pin
  // Dynamic mode: decline. A batch-held pin spanning a gate wait would
  // deadlock the switch drain (see the header comment); per-transaction
  // pinning keeps the quiescence protocol intact.
  if (runtimeGlobals().Dynamic.load(std::memory_order_relaxed))
    return false;
  EpochManager::pin(Slot);
  CurOps->SetBatchPinned(Cur, true);
  BatchActive = true;
  ++HandleBatches;
  return true;
}

void TxHandle::batchEnd() {
  if (!BatchActive)
    return;
  CurOps->SetBatchPinned(Cur, false);
  repro::ThreadRegistry::publishIdle(Slot);
  EpochManager::unpin(Slot);
  BatchActive = false;
}

repro::TxStats TxHandle::stats() const {
  repro::TxStats Out;
  for (std::size_t I = 0; I < NumBackends; ++I)
    if (Inner[I] != nullptr)
      Out += *backendOps(static_cast<BackendKind>(I)).Stats(Inner[I]);
  Out.ModeSwitches += HandleModeSwitches;
  Out.Batches += HandleBatches;
  return Out;
}

void TxHandle::threadShutdown() {
  batchEnd(); // never park a descriptor with the batch pin still held
  // Flush the window deltas accumulated since the last FlushInterval
  // boundary before retiring the descriptors whose stats back them:
  // dropping the remainder made WindowCommits/WindowAborts undercount
  // under thread churn, silently skewing the adaptive policy's input.
  if (runtimeGlobals().Dynamic.load(std::memory_order_relaxed))
    flushWindow();
  for (std::size_t I = 0; I < NumBackends; ++I) {
    if (Inner[I] != nullptr) {
      backendOps(static_cast<BackendKind>(I)).RetireTx(Inner[I]);
      Inner[I] = nullptr;
    }
  }
  Cur = nullptr;
  CurOps = nullptr;
}

//===----------------------------------------------------------------------===//
// StmRuntime facade
//===----------------------------------------------------------------------===//

const char *StmRuntime::name() {
  RuntimeGlobals &G = runtimeGlobals();
  return G.Config.Adaptive ? "adaptive" : backendName(G.Config.Backend);
}

void StmRuntime::globalInit(const StmConfig &Config) {
  RuntimeGlobals &G = runtimeGlobals();
  G.Config = Config;
  if (Config.SharedSegment[0] != '\0') {
    // Multi-process mode constrains the backend choice. Adaptive would
    // need a cross-process switch barrier (each process's gate only
    // drains its own threads), and rstm's visible-reader words hold
    // descriptor pointers on the read path too — neither fits the
    // slot-handle protocol yet, so refuse loudly instead of corrupting.
    if (Config.Adaptive)
      configFatal("STM_ADAPTIVE", "1",
                  "a fixed backend when STM_SHM_NAME is set");
    if (Config.Backend == BackendKind::Rstm)
      configFatal("STM_BACKEND", "rstm",
                  "swisstm|tl2|tinystm|orec when STM_SHM_NAME is set");
  }
  // Place (or attach) the global-state arena before any backend lays
  // out its clock/table: bindAt/placeShards pull regions from it.
  SharedArena::instance().setup(Config);
  // Adaptive mode needs every backend's globals live before the first
  // switch; fixed mode pays for exactly one.
  if (Config.Adaptive) {
    for (BackendKind K : allBackendKinds()) {
      backendOps(K).GlobalInit(Config);
      G.BackendLive[static_cast<std::size_t>(K)] = true;
    }
  } else {
    backendOps(Config.Backend).GlobalInit(Config);
    G.BackendLive[static_cast<std::size_t>(Config.Backend)] = true;
  }
  G.ActiveKind.store(static_cast<unsigned>(Config.Backend),
                     std::memory_order_relaxed);
  G.CurrentGen.store(0, std::memory_order_relaxed);
  G.TargetGen.store(0, std::memory_order_relaxed);
  G.SwitchCount.store(0, std::memory_order_relaxed);
  resetWindow(G);
  G.Dynamic.store(Config.Adaptive, std::memory_order_release);
}

void StmRuntime::globalShutdown() {
  RuntimeGlobals &G = runtimeGlobals();
  G.Dynamic.store(false, std::memory_order_release);
  for (std::size_t I = 0; I < NumBackends; ++I) {
    if (G.BackendLive[I]) {
      backendOps(static_cast<BackendKind>(I)).GlobalShutdown();
      G.BackendLive[I] = false;
    }
  }
  // After the backends released their table/clock regions; unmaps the
  // segment (shared mode detaches, keeping peers alive).
  SharedArena::instance().teardown();
}

BackendKind StmRuntime::activeBackend() {
  return static_cast<BackendKind>(
      runtimeGlobals().ActiveKind.load(std::memory_order_acquire));
}

uint64_t StmRuntime::switchCount() {
  return runtimeGlobals().SwitchCount.load(std::memory_order_acquire);
}

bool StmRuntime::requestSwitch(BackendKind Target) {
  RuntimeGlobals &G = runtimeGlobals();
  if (!G.Dynamic.load(std::memory_order_acquire))
    return false; // fixed runtime: the gate machinery is off
  if (Target == activeBackend())
    return false;
  return performSwitch(G, Target);
}
