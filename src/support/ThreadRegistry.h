//===- support/ThreadRegistry.h - global thread slot registry ---*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Every transactional thread occupies one global slot. The registry serves
// two purposes:
//   1. it hands out dense thread ids (RSTM's visible-reader bitmaps need
//      one bit per thread), and
//   2. it publishes, per slot, the timestamp at which the slot's current
//      transaction started. The quiescence-based memory reclaimer
//      (stm/TxMemory.h) frees a retired block only once every active
//      transaction started after the block was retired, which makes
//      invisible readers safe against use-after-free.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADREGISTRY_H
#define SUPPORT_THREADREGISTRY_H

#include "support/Padded.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdint>

namespace repro {

/// Sentinel published while a slot has no transaction in flight.
inline constexpr uint64_t IdleTimestamp = ~0ull;

/// Process-wide registry of transactional threads. All members are
/// static; the registry exists for the lifetime of the process and is
/// reset only by tests.
///
/// The slot storage normally lives in the in-image fallback arrays, but
/// the shared arena (stm/core/SharedArena.h) can redirect it into a shm
/// segment so slot ids and activity timestamps are global across a
/// fleet of processes. The indirection costs one relaxed pointer load
/// on the hot publish paths; the pointer only changes inside
/// globalInit/globalShutdown, never while a transaction is in flight.
class ThreadRegistry {
public:
  /// Claims a fresh slot and returns its dense id. Aborts if more than
  /// MaxThreads threads register simultaneously.
  static unsigned acquireSlot();

  /// Returns a previously acquired slot to the free pool. The slot must
  /// be idle (no in-flight transaction).
  static void releaseSlot(unsigned Slot);

  /// Publishes that \p Slot started a transaction whose reads are valid
  /// as of \p StartTs. Called on every transaction (re)start.
  static void publishStart(unsigned Slot, uint64_t StartTs) {
    active()[Slot].value().store(StartTs, std::memory_order_release);
  }

  /// Publishes that \p Slot has no transaction in flight.
  static void publishIdle(unsigned Slot) {
    active()[Slot].value().store(IdleTimestamp, std::memory_order_release);
  }

  /// Returns the smallest start timestamp over all slots that currently
  /// have a transaction in flight, or IdleTimestamp if none do. Memory
  /// retired at timestamp T is reclaimable once minActiveStart() > T.
  static uint64_t minActiveStart();

  /// Bitmask of currently registered slots (bit i set = slot i in use).
  /// Scanned by the reclaimers (stm/TxMemory.h, stm/EpochManager.h) so
  /// they only inspect slots that can hold an in-flight transaction.
  static uint64_t activeMask() {
    return mask().load(std::memory_order_acquire);
  }

  /// Number of slots ever claimed concurrently (high-water mark).
  static unsigned highWaterMark();

  /// Redirects the slot storage to externally placed arrays (a shm
  /// segment). When \p CopyCurrent, the current values are copied into
  /// the new storage first — the segment creator carries its live state
  /// in; an attacher binds the segment's live state untouched. Must only
  /// be called while this process has no transaction in flight.
  static void placeStorage(Padded<std::atomic<uint64_t>> *Active,
                           std::atomic<uint64_t> *Mask, bool CopyCurrent);

  /// Re-points the registry at the in-image fallback arrays
  /// (shared-arena teardown), carrying back only the slots named by
  /// \p KeepMask — the caller knows which slots belong to this process;
  /// remote processes' slots must not survive as phantom local state.
  static void resetStorage(uint64_t KeepMask);

private:
  static Padded<std::atomic<uint64_t>> *active() {
    return ActiveP.load(std::memory_order_relaxed);
  }
  static std::atomic<uint64_t> &mask() {
    return *MaskP.load(std::memory_order_relaxed);
  }

  static Padded<std::atomic<uint64_t>> ActiveSince[MaxThreads];
  static std::atomic<uint64_t> SlotMask; // bit set = slot in use (<=64 slots)
  static std::atomic<Padded<std::atomic<uint64_t>> *> ActiveP;
  static std::atomic<std::atomic<uint64_t> *> MaskP;
};

} // namespace repro

#endif // SUPPORT_THREADREGISTRY_H
