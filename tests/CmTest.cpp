//===- tests/CmTest.cpp - contention-manager behaviour tests ---------------===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Pins down Algorithm 2 and the CM variants: the two-phase promotion at
// the Wn-th write, timestamp retention across restarts (the Greedy
// no-starvation property), timid self-abort, kill-flag mechanics, and
// that every CM still produces correct results under contention.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace stm;
using repro_test::runThreads;

namespace {

StmConfig configWith(CmKind Cm) {
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.Cm = Cm;
  return Config;
}

//===----------------------------------------------------------------------===//
// Two-phase promotion (Algorithm 2)
//===----------------------------------------------------------------------===//

TEST(TwoPhaseCmTest, PromotionHappensAtWnThWrite) {
  StmConfig Config = configWith(CmKind::TwoPhase);
  Config.WnThreshold = 10;
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(64) std::vector<Word> Cells(64, 0);
    atomically(Tx, [&](auto &T) {
      for (unsigned I = 0; I < 9; ++I)
        T.store(&Cells[I * 4], I); // distinct stripes
      EXPECT_EQ(Tx.cmTimestamp(), ~0ull)
          << "still first phase before the Wn-th write";
      T.store(&Cells[9 * 4], 9);
      EXPECT_NE(Tx.cmTimestamp(), ~0ull)
          << "Wn-th write must enter the Greedy phase";
    });
  }
  SwissTm::globalShutdown();
}

TEST(TwoPhaseCmTest, ShortTransactionsNeverTouchGreedyCounter) {
  StmConfig Config = configWith(CmKind::TwoPhase);
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(8) Word Cell = 0;
    for (int I = 0; I < 50; ++I)
      atomically(Tx, [&](auto &T) { T.store(&Cell, I); });
    EXPECT_EQ(swiss::swissGlobals().GreedyTs.load(), 0u)
        << "short transactions must not increment greedy-ts";
  }
  SwissTm::globalShutdown();
}

TEST(TwoPhaseCmTest, RepeatedWritesToSameWordDoNotPromote) {
  StmConfig Config = configWith(CmKind::TwoPhase);
  Config.WnThreshold = 5;
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(8) Word Cell = 0;
    atomically(Tx, [&](auto &T) {
      for (unsigned I = 0; I < 20; ++I)
        T.store(&Cell, I); // same word: one write-log entry
      EXPECT_EQ(Tx.cmTimestamp(), ~0ull);
    });
  }
  SwissTm::globalShutdown();
}

TEST(TwoPhaseCmTest, TimestampKeptAcrossRestart) {
  // cm-start only resets cm-ts on a *fresh* start; a restarted
  // transaction keeps its (older = stronger) timestamp. That is what
  // rules out starvation of long transactions.
  StmConfig Config = configWith(CmKind::TwoPhase);
  Config.WnThreshold = 2;
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(64) Word Cells[16] = {};
    uint64_t FirstTs = 0, RestartTs = 0;
    uint64_t *FirstPtr = &FirstTs, *RestartPtr = &RestartTs;
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, FirstPtr, RestartPtr, RetriedPtr](auto &T) {
      T.store(&Cells[0], 1);
      T.store(&Cells[8], 2); // second write -> promotion
      if (!*RetriedPtr) {
        *FirstPtr = Tx.cmTimestamp();
        *RetriedPtr = true;
        T.restart();
      }
      *RestartPtr = Tx.cmTimestamp();
    });
    EXPECT_NE(FirstTs, ~0ull);
    EXPECT_EQ(FirstTs, RestartTs) << "restart must keep the Greedy ts";
  }
  SwissTm::globalShutdown();
}

TEST(GreedyCmTest, EveryTransactionTakesTimestamp) {
  StmConfig Config = configWith(CmKind::Greedy);
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(8) Word Cell = 0;
    for (int I = 0; I < 7; ++I)
      atomically(Tx, [&](auto &T) { T.store(&Cell, I); });
    EXPECT_EQ(swiss::swissGlobals().GreedyTs.load(), 7u)
        << "plain Greedy pays the shared counter on every tx";
  }
  SwissTm::globalShutdown();
}

TEST(SerializerCmTest, FreshTimestampEveryRestart) {
  StmConfig Config = configWith(CmKind::Serializer);
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(8) Word Cell = 0;
    uint64_t First = 0, Second = 0;
    uint64_t *FirstPtr = &First, *SecondPtr = &Second;
    bool Retried = false;
    bool *RetriedPtr = &Retried;
    atomically(Tx, [&, FirstPtr, SecondPtr, RetriedPtr](auto &T) {
      T.store(&Cell, 1);
      if (!*RetriedPtr) {
        *FirstPtr = Tx.cmTimestamp();
        *RetriedPtr = true;
        T.restart();
      }
      *SecondPtr = Tx.cmTimestamp();
    });
    EXPECT_NE(First, Second)
        << "Serializer renews the timestamp on restart";
  }
  SwissTm::globalShutdown();
}

//===----------------------------------------------------------------------===//
// Kill-flag mechanics
//===----------------------------------------------------------------------===//

TEST(KillFlagTest, KilledTransactionRestartsAndSucceeds) {
  StmConfig Config = configWith(CmKind::TwoPhase);
  SwissTm::globalInit(Config);
  {
    ThreadScope<SwissTm> Scope;
    auto &Tx = Scope.tx();
    alignas(8) Word Cell = 0;
    bool Killed = false;
    bool *KilledPtr = &Killed;
    atomically(Tx, [&, KilledPtr](auto &T) {
      if (!*KilledPtr) {
        *KilledPtr = true;
        Tx.requestKill(); // simulate an attacker's abort(victim)
      }
      T.store(&Cell, T.load(&Cell) + 1);
    });
    EXPECT_EQ(Cell, 1u);
    EXPECT_GE(Tx.stats().Aborts, 1u);
  }
  SwissTm::globalShutdown();
}

//===----------------------------------------------------------------------===//
// All CM variants stay correct under contention (value-parameterized)
//===----------------------------------------------------------------------===//

class SwissCmSweep : public ::testing::TestWithParam<CmKind> {};

TEST_P(SwissCmSweep, ContendedCountersStayExact) {
  SwissTm::globalInit(configWith(GetParam()));
  {
    alignas(8) static Word Counter;
    Counter = 0;
    runThreads<SwissTm>(4, [&](unsigned, auto &Tx) {
      for (int I = 0; I < 1500; ++I)
        atomically(Tx,
                   [&](auto &T) { T.store(&Counter, T.load(&Counter) + 1); });
    });
    EXPECT_EQ(Counter, 4u * 1500u);
  }
  SwissTm::globalShutdown();
}

TEST_P(SwissCmSweep, LongWriterMakesProgressAgainstShortWriters) {
  // A long transaction updates 32 stripes while short transactions
  // hammer two of them. Under every CM the long transaction must
  // eventually commit (bounded test time enforces it).
  SwissTm::globalInit(configWith(GetParam()));
  {
    struct alignas(64) Cell {
      Word V = 0;
    };
    static Cell Cells[32];
    for (auto &C : Cells)
      C.V = 0;
    std::atomic<bool> LongDone{false};
    runThreads<SwissTm>(3, [&](unsigned Id, auto &Tx) {
      if (Id == 0) {
        atomically(Tx, [&](auto &T) {
          for (auto &C : Cells)
            T.store(&C.V, T.load(&C.V) + 1);
        });
        LongDone.store(true);
      } else {
        // Bounded, so the long transaction is guaranteed a quiet tail
        // even under the starvation-prone timid policy.
        repro::Xorshift Rng(repro::testSeed(Id));
        for (int I = 0; I < 100000 && !LongDone.load(); ++I) {
          unsigned C = Rng.nextBounded(2);
          atomically(Tx, [&, C](auto &T) {
            T.store(&Cells[C].V, T.load(&Cells[C].V) + 1);
          });
        }
      }
    });
    EXPECT_TRUE(LongDone.load());
  }
  SwissTm::globalShutdown();
}

INSTANTIATE_TEST_SUITE_P(AllCms, SwissCmSweep,
                         ::testing::Values(CmKind::TwoPhase, CmKind::Timid,
                                           CmKind::Greedy,
                                           CmKind::Serializer,
                                           CmKind::Polka),
                         [](const auto &Info) {
                           return std::string(cmKindName(Info.param)) ==
                                          "two-phase"
                                      ? std::string("TwoPhase")
                                      : std::string(cmKindName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// RSTM variant sweep: all four acquire/visibility combinations stay
// correct under contention.
//===----------------------------------------------------------------------===//

struct RstmVariant {
  bool Eager;
  bool Visible;
  CmKind Cm;
};

class RstmVariantSweep : public ::testing::TestWithParam<RstmVariant> {};

TEST_P(RstmVariantSweep, BankInvariantHolds) {
  RstmVariant V = GetParam();
  StmConfig Config;
  Config.LockTableSizeLog2 = 16;
  Config.RstmEagerAcquire = V.Eager;
  Config.RstmVisibleReads = V.Visible;
  Config.Cm = V.Cm;
  Rstm::globalInit(Config);
  {
    struct alignas(8) Account {
      Word Balance;
    };
    static std::vector<Account> Bank;
    Bank.assign(32, Account{100});
    runThreads<Rstm>(4, [&](unsigned Id, auto &Tx) {
      repro::Xorshift Rng(repro::testSeed(Id * 3 + 1));
      for (int I = 0; I < 800; ++I) {
        unsigned From = Rng.nextBounded(32), To = Rng.nextBounded(32);
        atomically(Tx, [&](auto &T) {
          Word B = T.load(&Bank[From].Balance);
          if (B == 0)
            return;
          T.store(&Bank[From].Balance, B - 1);
          T.store(&Bank[To].Balance, T.load(&Bank[To].Balance) + 1);
        });
      }
    });
    uint64_t Total = 0;
    for (const Account &A : Bank)
      Total += A.Balance;
    EXPECT_EQ(Total, 32u * 100u);
  }
  Rstm::globalShutdown();
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RstmVariantSweep,
    ::testing::Values(RstmVariant{true, false, CmKind::Polka},
                      RstmVariant{true, true, CmKind::Polka},
                      RstmVariant{false, false, CmKind::Polka},
                      RstmVariant{false, true, CmKind::Polka},
                      RstmVariant{true, false, CmKind::Timid},
                      RstmVariant{true, false, CmKind::Greedy},
                      RstmVariant{true, false, CmKind::Serializer},
                      RstmVariant{false, false, CmKind::Timid}),
    [](const auto &Info) {
      std::string Name = Info.param.Eager ? "Eager" : "Lazy";
      Name += Info.param.Visible ? "Visible" : "Invisible";
      Name += cmKindName(Info.param.Cm);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
