//===- stm/EpochManager.h - epoch-based descriptor reclamation --*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Invisible readers dereference other threads' transaction descriptors
// and write-log entries through stripe lock words: SwissTM and TinySTM
// publish a StripeWrite* in the lock, RSTM publishes the descriptor in
// its ownership records and slot table. A descriptor must therefore
// outlive every transaction that could have observed such a pointer,
// even after its owning thread exits. The EpochManager provides that
// guarantee with classic epoch-based reclamation:
//
//   * every transaction pins the current global epoch on begin (one
//     load, one store and one seq_cst fence — the fence is the dominant
//     cost and is load-bearing, see pin()) and quiesces on commit/abort
//     (one release store);
//   * an exiting thread parks its descriptor on a global limbo list
//     instead of destroying it (see ThreadScope), stamped with the
//     current epoch; the retire advances the global epoch;
//   * a limbo entry is destroyed only once no registered slot is still
//     pinned at or below the entry's retire epoch, i.e. every
//     transaction that could have observed the pointer has finished.
//
// The scheme relies on unlink-before-retire: all stripe locks are
// released (and RSTM's slot-table entry cleared) before the descriptor
// is retired, so a transaction pinned after the retire can never reach
// the parked memory, while one pinned before it blocks reclamation.
//
//===----------------------------------------------------------------------===//

#ifndef STM_EPOCHMANAGER_H
#define STM_EPOCHMANAGER_H

#include "support/Padded.h"
#include "support/Platform.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace stm {

/// Process-wide grace-period tracker and limbo list. All members are
/// static; like the ThreadRegistry it lives for the whole process.
class EpochManager {
public:
  /// Epoch published while a slot has no transaction in flight. Slots
  /// are zero-initialized, so an unregistered slot is quiescent.
  static constexpr uint64_t Quiescent = 0;

  /// Publishes that \p Slot entered a transaction at the current global
  /// epoch. Must precede the transaction's first lock-word read. Two
  /// orderings make the protocol sound:
  ///   * the acquire epoch load pairs with retire()'s increment, so a
  ///     pin that reads an epoch past a retire also sees the retiree's
  ///     unlinked lock words (such entries are freed under the pin);
  ///   * the seq_cst fence pairs with the one in minPinnedEpoch(): a
  ///     collector that misses this pin finished its scan before the
  ///     fence, so the transaction's subsequent loads see every unlink
  ///     that preceded that scan and cannot reach the freed memory.
  static void pin(unsigned Slot) {
    epochs()[Slot].value().store(globalEpoch().load(std::memory_order_acquire),
                                 std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Publishes that \p Slot finished its transaction. The release store
  /// is what a collector's scan synchronizes with before running
  /// deleters, closing the happens-before chain from the transaction's
  /// last dereference to the free.
  static void unpin(unsigned Slot) {
    epochs()[Slot].value().store(Quiescent, std::memory_order_release);
  }

  /// The epoch \p Slot is pinned at, or Quiescent.
  static uint64_t pinnedEpoch(unsigned Slot) {
    return epochs()[Slot].value().load(std::memory_order_acquire);
  }

  using Deleter = void (*)(void *);

  /// Parks \p Ptr on the limbo list, stamped with the current epoch, and
  /// advances the global epoch so later pins cannot block this entry's
  /// grace period. \p Del destroys the object once the period passes.
  /// \p Ptr must already be unlinked from all globally visible state.
  static void retire(void *Ptr, Deleter Del);

  /// Type-safe retire: destroys with delete after the grace period.
  template <typename T> static void retireObject(T *Ptr) {
    retire(static_cast<void *>(Ptr),
           [](void *P) { delete static_cast<T *>(P); });
  }

  /// Destroys every limbo entry whose grace period has passed. Returns
  /// the number destroyed. Called opportunistically by retire() once the
  /// limbo list grows past a threshold.
  static std::size_t collect();

  /// Destroys everything in limbo regardless of epochs. Only safe when
  /// no transaction can be in flight (global STM shutdown, tests).
  static std::size_t releaseAll();

  /// Number of entries currently parked in limbo.
  static std::size_t limboSize();

  /// Current value of the global epoch (monotonic; bumped by retire).
  static uint64_t currentEpoch() {
    return globalEpoch().load(std::memory_order_acquire);
  }

  /// Smallest epoch pinned by any registered slot, or ~0ull when every
  /// slot is quiescent. An entry retired at epoch E is reclaimable once
  /// minPinnedEpoch() > E.
  static uint64_t minPinnedEpoch();

  /// Redirects the epoch storage to externally placed words (a shm
  /// segment; see stm/core/SharedArena.h). When \p CopyCurrent, current
  /// values are carried into the new storage first (segment creator);
  /// attachers bind the segment's live state untouched. The limbo list
  /// itself stays process-private — only the grace-period *signal* is
  /// global, so every process's reclaimer waits on every process's
  /// pins.
  static void placeStorage(repro::Padded<std::atomic<uint64_t>> *NewEpochs,
                           std::atomic<uint64_t> *NewGlobal, bool CopyCurrent);

  /// Re-points the storage at the in-image fallbacks (shared-arena
  /// teardown), carrying back the global epoch and the pins of the
  /// slots in \p KeepMask (this process's own; remote slots reset to
  /// Quiescent).
  static void resetStorage(uint64_t KeepMask);

private:
  static repro::Padded<std::atomic<uint64_t>> *epochs() {
    return EpochsP.load(std::memory_order_relaxed);
  }
  static std::atomic<uint64_t> &globalEpoch() {
    return *GlobalEpochP.load(std::memory_order_relaxed);
  }

  /// Starts at 1 so no pin ever publishes the Quiescent value.
  static std::atomic<uint64_t> GlobalEpoch;
  static repro::Padded<std::atomic<uint64_t>> Epochs[repro::MaxThreads];
  static std::atomic<std::atomic<uint64_t> *> GlobalEpochP;
  static std::atomic<repro::Padded<std::atomic<uint64_t>> *> EpochsP;
};

} // namespace stm

#endif // STM_EPOCHMANAGER_H
