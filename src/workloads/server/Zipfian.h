//===- workloads/server/Zipfian.h - skewed key-rank generator ---*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Zipfian-distributed key ranks for the serving workload: rank r is
// drawn with probability proportional to 1/(r+1)^theta, the standard
// stand-in for the few-hot-keys/many-cold-keys access pattern of real
// request traffic (YCSB's workload generator; Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD 1994). The
// rejection-free inversion uses the precomputed harmonic sum zeta(N,
// theta), so next() is O(1); construction is O(N) once per run.
//
// nextRank() returns popularity ranks (0 = hottest). next() scrambles
// the rank with a splitmix64-style mix so hot keys scatter across the
// key space (and therefore across store shards) instead of clustering
// at the low end — YCSB's "scrambled Zipfian".
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SERVER_ZIPFIAN_H
#define WORKLOADS_SERVER_ZIPFIAN_H

#include "support/Random.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace workloads::server {

class Zipfian {
public:
  /// Prepares draws over ranks [0, N). theta in (0, 1): 0.99 is the
  /// YCSB default ("highly skewed"); lower is flatter.
  explicit Zipfian(uint64_t N, double Theta = 0.99,
                   uint64_t Seed = repro::testSeed())
      : N(N), Theta(Theta), Rng(Seed) {
    assert(N > 0 && "empty key space");
    assert(Theta > 0.0 && Theta < 1.0 && "theta must be in (0,1)");
    Zetan = zeta(N, Theta);
    Zeta2 = zeta(2 < N ? 2 : N, Theta);
    Alpha = 1.0 / (1.0 - Theta);
    Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
          (1.0 - Zeta2 / Zetan);
  }

  /// Popularity rank of the next draw: 0 is the hottest, probabilities
  /// decay as 1/(rank+1)^theta.
  uint64_t nextRank() {
    double U = Rng.nextDouble();
    double Uz = U * Zetan;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + std::pow(0.5, Theta))
      return 1;
    uint64_t Rank = static_cast<uint64_t>(
        static_cast<double>(N) * std::pow(Eta * U - Eta + 1.0, Alpha));
    return Rank >= N ? N - 1 : Rank;
  }

  /// Scrambled draw: Zipfian popularity, but the hot ranks are spread
  /// pseudo-randomly over [0, N) so range partitioning doesn't pin all
  /// the heat on one shard. Deterministic given the seed.
  uint64_t next() { return scramble(nextRank()) % N; }

  /// The stationary probability of \p Rank under this distribution —
  /// the oracle the distribution-shape tests compare frequencies
  /// against.
  double rankProbability(uint64_t Rank) const {
    return 1.0 / (std::pow(static_cast<double>(Rank + 1), Theta) * Zetan);
  }

  uint64_t keySpace() const { return N; }

  /// The rank-to-key scatter (exposed so tests can invert hot keys).
  static uint64_t scramble(uint64_t Rank) {
    uint64_t Z = Rank + 0x9e3779b97f4a7c15ull;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  static double zeta(uint64_t Count, double Theta) {
    double Sum = 0.0;
    for (uint64_t I = 0; I < Count; ++I)
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), Theta);
    return Sum;
  }

  uint64_t N;
  double Theta;
  double Zetan;
  double Zeta2;
  double Alpha;
  double Eta;
  repro::Xorshift Rng;
};

} // namespace workloads::server

#endif // WORKLOADS_SERVER_ZIPFIAN_H
