//===- stm/rstm/Rstm.h - RSTM-like baseline ---------------------*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// RSTM (Marathe et al., TRANSACT 2006; version 3) is the paper's
// obstruction-free, object-based baseline. This reimplementation keeps
// the properties the paper's comparisons rest on while using the shared
// stripe-based word API (the paper itself notes RSTM's object API kept
// it out of STAMP; our port removes that gate and we note it in
// EXPERIMENTS.md):
//
//  * four algorithm variants: eager/lazy acquire x visible/invisible
//    reads (StmConfig::RstmEagerAcquire / RstmVisibleReads);
//  * invisible reads validated with the *global commit counter
//    heuristic*: whenever the counter moved since the last check the
//    whole read set is re-validated, so long transactions pay O(read
//    set) repeatedly -- the overhead visible throughout Section 4.
//    The heuristic requires every committer to uniquely advance the
//    counter, so it only applies under the gv1 clock policy; gv4/gv5
//    (StmConfig::Clock) fall back to unconditional revalidation;
//  * visible reads registered in a per-stripe reader bitmap that
//    writers must clear through the contention manager;
//  * pluggable contention managers from core::ContentionManager in
//    AsPolka mode (Polka — RSTM's usual default — Greedy, Serializer
//    and Timid, selected by StmConfig::Cm);
//  * per-stripe ownership records; owners can be aborted (killed) by
//    higher-priority attackers, emulating RSTM's status-word stealing.
//
// Ownership record encoding (Owner word, two tag bits):
//   version << 2             free
//   descriptor | 1           owned (memory still holds the old values)
//   descriptor | 3           owner committing (write-back in progress)
//
//
// INTERNAL HEADER — deprecated as an application include. The public
// surface is stm/Stm.h (stm::Runtime + stm::atomically); select this
// backend at runtime via StmConfig::Backend / STM_BACKEND instead of
// including it directly. Direct includes outside src/stm/ and tests
// of backend internals are scheduled for removal.
//===----------------------------------------------------------------------===//

#ifndef STM_RSTM_RSTM_H
#define STM_RSTM_RSTM_H

#include "stm/Config.h"
#include "stm/RacyAccess.h"
#include "stm/TxBase.h"
#include "stm/WriteMap.h"
#include "stm/core/Clock.h"
#include "stm/core/ContentionManager.h"
#include "stm/core/LockTable.h"
#include "stm/core/Validation.h"
#include "stm/core/VersionedLock.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace stm::rstm {

class RstmTx;

/// Per-stripe ownership record plus visible-reader bitmap.
struct Orec {
  std::atomic<Word> Owner{0};
  std::atomic<uint64_t> Readers{0};
};

/// Orec encoding: two tag bits (see core/VersionedLock.h).
using OrecOps = core::VersionedLockOps<2>;
inline bool orecIsOwned(Word V) { return OrecOps::isLocked(V); }
inline bool orecIsCommitting(Word V) { return (V & 2) != 0; }
inline uint64_t orecVersion(Word V) { return OrecOps::version(V); }
inline Word orecMake(uint64_t Version) { return OrecOps::make(Version); }
inline RstmTx *orecOwner(Word V) { return OrecOps::pointer<RstmTx>(V); }

struct RstmGlobals {
  core::LockTable<Orec> Table;
  GlobalClock CommitCounter; ///< bumped by every update commit
  GlobalClock GreedyTs;
  StmConfig Config;
  /// Registry slot -> descriptor, for reader-bit resolution.
  std::atomic<RstmTx *> Descriptors[repro::MaxThreads] = {};
};

RstmGlobals &rstmGlobals();

/// RSTM-like transaction descriptor.
class RstmTx : public TxBase, public core::TimeValidation<RstmTx> {
public:
  explicit RstmTx(unsigned Slot);
  ~RstmTx();

  void onStart();
  Word load(const Word *Addr);
  void store(Word *Addr, Word Value);
  void commit();
  [[noreturn]] void restart() { rollback(); }

  /// Shadows TxBase::threadShutdown: unpublishes this descriptor from
  /// the slot table before it is retired, so no new reader can pick the
  /// pointer up while it waits out its grace period in limbo. CAS
  /// because a recycled slot may already publish a successor descriptor.
  void threadShutdown() {
    RstmTx *Self = this;
    rstmGlobals().Descriptors[Slot].compare_exchange_strong(
        Self, nullptr, std::memory_order_acq_rel);
    baseShutdown();
  }

  /// Contention-manager state, readable by concurrent attackers.
  const core::ContentionManager<core::TwoPhaseMode::AsPolka> &cm() const {
    return Cm;
  }

  /// Polka priority: number of accesses in the current attempt.
  uint64_t polkaPriority() const { return Cm.priority(); }
  uint64_t cmTimestamp() const { return Cm.timestamp(); }

private:
  friend class core::TimeValidation<RstmTx>;

  struct WriteEntry {
    Word *Addr;
    Word Value;
  };
  struct AcquiredOrec {
    Orec *Rec;
    Word OldValue; ///< orec word before acquisition (free, version<<2)
  };
  struct ReadEntry {
    Orec *Rec;
    Word Seen;
  };

  [[noreturn]] void rollback();
  void checkKill() {
    if (killRequested())
      rollback();
  }

  /// Re-validates the read set iff the global commit counter moved
  /// since the last check (RSTM's heuristic). Aborts on failure.
  void maybeValidate();
  bool validateReadSet();

  /// Acquires \p Rec for writing, resolving owner and visible-reader
  /// conflicts through the contention manager. Aborts (longjmps) if the
  /// manager rules against us.
  void acquireOrec(Orec &Rec);

  /// Waits until all visible readers other than us have left \p Rec,
  /// killing them per the contention manager.
  void resolveVisibleReaders(Orec &Rec);

  core::ContentionManager<core::TwoPhaseMode::AsPolka> Cm;

  std::vector<ReadEntry> ReadLog;
  std::vector<Orec *> VisibleReads;
  std::vector<WriteEntry> WriteLog;
  std::vector<AcquiredOrec> Acquired;
  WriteMap WSetMap;
};

/// STM facade.
class Rstm {
public:
  using Tx = RstmTx;

  static constexpr const char *name() { return "rstm"; }

  static void globalInit(const StmConfig &Config);
  static void globalShutdown();
  static RstmGlobals &globals() { return rstmGlobals(); }
};

} // namespace stm::rstm

namespace stm {
using Rstm = rstm::Rstm;
} // namespace stm

#endif // STM_RSTM_RSTM_H
