//===- workloads/leetm/LeeRouter.h - Lee-TM circuit routing -----*- C++ -*-===//
//
// Part of the SwissTM reproduction (PLDI 2009).
//
// Lee-TM (Ansari et al., ICA3PP 2008): transactional circuit routing
// with Lee's algorithm. Each route is one transaction that (1) expands a
// breadth-first wavefront from source to destination over free cells --
// a large, regular transactional *read* phase -- and then (2) backtracks
// the cheapest path, writing its net id into the grid -- a small
// transactional *write* phase. The grid has two layers so routes can
// cross, as in the original benchmark.
//
// The paper's input boards ("memory" and "main") are replaced by seeded
// generators with the same character: "memory" is a regular bus-like
// board of short parallel routes, "main" a larger board of random
// mixed-length routes (substitution documented in DESIGN.md).
//
// Section 5's "irregular" variant adds a shared object Oc read by every
// transaction and updated by a fraction R of them (Figure 8).
//
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_LEETM_LEEROUTER_H
#define WORKLOADS_LEETM_LEEROUTER_H

#include "stm/Stm.h"
#include "support/Random.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace workloads::lee {

/// A source/destination pair to route.
struct RouteJob {
  unsigned SrcX, SrcY;
  unsigned DstX, DstY;
  uint64_t NetId; ///< 1-based; 0 marks a free grid cell
};

/// Which synthetic board to generate.
enum class Board { Memory, Main };

inline const char *boardName(Board B) {
  return B == Board::Memory ? "memory" : "main";
}

/// Generates the deterministic job list for \p B at a given scale.
/// Scale 1.0 is the repository default (already reduced from the
/// original inputs); smaller values shrink the board for tests.
std::vector<RouteJob> generateBoard(Board B, unsigned &Width,
                                    unsigned &Height, double Scale = 1.0);

/// Transactional Lee router over a Width x Height x 2 grid.
template <typename STM> class LeeRouter {
public:
  using Tx = typename STM::Tx;
  using Word = stm::Word;

  static constexpr unsigned Layers = 2;

  /// Per-thread BFS scratch (not transactional state).
  struct Scratch {
    Scratch(unsigned W, unsigned H)
        : Cost(static_cast<std::size_t>(W) * H * Layers, 0),
          Queue(Cost.size()) {}
    std::vector<uint32_t> Cost;
    std::vector<uint32_t> Queue;
  };

  LeeRouter(unsigned Width, unsigned Height,
            std::vector<RouteJob> Jobs, unsigned IrregularPercent = 0)
      : W(Width), H(Height), JobList(std::move(Jobs)),
        IrregularR(IrregularPercent),
        Grid(static_cast<std::size_t>(Width) * Height * Layers, 0),
        NextJob(0), Oc(0) {}

  /// One worker loop: claims jobs until the list is exhausted. Returns
  /// the number of successfully routed nets.
  unsigned work(Tx &T, unsigned ThreadSeed) {
    repro::Xorshift Rng(ThreadSeed * 40503u + 7);
    Scratch Local(W, H);
    unsigned Routed = 0;
    while (true) {
      std::size_t Idx = NextJob.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= JobList.size())
        break;
      Routed += routeOne(T, JobList[Idx], Local, Rng);
    }
    return Routed;
  }

  /// Routes a single job as one transaction; returns true on success.
  bool routeOne(Tx &T, const RouteJob &Job, Scratch &Local,
                repro::Xorshift &Rng) {
    bool Success = false;
    bool *SuccessPtr = &Success;
    bool UpdateOc = IrregularR != 0 && Rng.nextPercent(IrregularR);
    stm::atomically(T, [&, SuccessPtr](Tx &X) {
      if (IrregularR != 0) {
        // Irregularity of Section 5: every transaction reads Oc; a
        // fraction R also updates it, creating read/write conflicts
        // with all concurrent routing transactions.
        Word V = X.load(&Oc);
        if (UpdateOc)
          X.store(&Oc, V + 1);
      }
      *SuccessPtr = expandAndBacktrack(X, Job, Local);
    });
    return Success;
  }

  //===--------------------------------------------------------------===//
  // Non-transactional validation (quiesced use only)
  //===--------------------------------------------------------------===//

  /// Every successfully routed net must form a connected path of its
  /// own id between its endpoints, and no cell may carry an id that
  /// belongs to no net.
  bool verify(const std::vector<uint64_t> &RoutedNets) const {
    for (uint64_t Net : RoutedNets) {
      const RouteJob *Job = nullptr;
      for (const RouteJob &J : JobList)
        if (J.NetId == Net) {
          Job = &J;
          break;
        }
      if (Job == nullptr)
        return false;
      if (!netConnected(*Job))
        return false;
    }
    return true;
  }

  /// Count of grid cells occupied by \p NetId.
  std::size_t cellsOf(uint64_t NetId) const {
    std::size_t N = 0;
    for (Word C : Grid)
      N += C == NetId;
    return N;
  }

  uint64_t ocValue() const { return Oc; }
  const std::vector<RouteJob> &jobs() const { return JobList; }

private:
  std::size_t cellIndex(unsigned X, unsigned Y, unsigned Z) const {
    return (static_cast<std::size_t>(Z) * H + Y) * W + X;
  }

  /// BFS expansion over free cells followed by backtracking writes.
  /// All grid reads/writes are transactional.
  bool expandAndBacktrack(Tx &T, const RouteJob &Job, Scratch &Local) {
    std::vector<uint32_t> &Cost = Local.Cost;
    std::vector<uint32_t> &Queue = Local.Queue;
    std::fill(Cost.begin(), Cost.end(), 0);

    const std::size_t Src = cellIndex(Job.SrcX, Job.SrcY, 0);
    const std::size_t Dst = cellIndex(Job.DstX, Job.DstY, 0);
    if (Src == Dst)
      return true;
    // Read (and thereby claim in the read set) both endpoints: another
    // net occupying them makes this job unroutable, and the reads make
    // concurrent writes to them a detected conflict rather than silent
    // corruption of a committed route.
    if (T.load(&Grid[Src]) != 0 || T.load(&Grid[Dst]) != 0)
      return false;

    // Wavefront expansion.
    std::size_t Head = 0, Tail = 0;
    Cost[Src] = 1;
    Queue[Tail++] = static_cast<uint32_t>(Src);
    bool Reached = false;
    while (Head < Tail && !Reached) {
      std::size_t Cur = Queue[Head++];
      uint32_t C = Cost[Cur];
      std::size_t Neigh[5];
      unsigned N = neighbors(Cur, Neigh);
      for (unsigned I = 0; I < N; ++I) {
        std::size_t Next = Neigh[I];
        if (Cost[Next] != 0)
          continue;
        if (Next == Dst) {
          Cost[Next] = C + 1;
          Reached = true;
          break;
        }
        Word Occupied = T.load(&Grid[Next]);
        if (Occupied != 0)
          continue; // blocked by another net
        Cost[Next] = C + 1;
        Queue[Tail++] = static_cast<uint32_t>(Next);
      }
    }
    if (!Reached)
      return false;

    // Backtrack from Dst to Src along strictly decreasing cost,
    // claiming cells for this net.
    std::size_t Cur = Dst;
    while (Cur != Src) {
      T.store(&Grid[Cur], Job.NetId);
      std::size_t Neigh[5];
      unsigned N = neighbors(Cur, Neigh);
      std::size_t Step = Cur;
      for (unsigned I = 0; I < N; ++I) {
        if (Cost[Neigh[I]] != 0 && Cost[Neigh[I]] == Cost[Cur] - 1) {
          Step = Neigh[I];
          break;
        }
      }
      if (Step == Cur)
        return false; // should be unreachable: wavefront guarantees a path
      Cur = Step;
    }
    T.store(&Grid[Src], Job.NetId);
    return true;
  }

  unsigned neighbors(std::size_t Cell, std::size_t Out[5]) const {
    std::size_t Plane = static_cast<std::size_t>(W) * H;
    unsigned Z = static_cast<unsigned>(Cell / Plane);
    std::size_t InPlane = Cell % Plane;
    unsigned Y = static_cast<unsigned>(InPlane / W);
    unsigned X = static_cast<unsigned>(InPlane % W);
    unsigned N = 0;
    if (X > 0)
      Out[N++] = Cell - 1;
    if (X + 1 < W)
      Out[N++] = Cell + 1;
    if (Y > 0)
      Out[N++] = Cell - W;
    if (Y + 1 < H)
      Out[N++] = Cell + W;
    Out[N++] = Z == 0 ? Cell + Plane : Cell - Plane; // layer switch
    return N;
  }

  /// Non-transactional connectivity check of one routed net.
  bool netConnected(const RouteJob &Job) const {
    std::vector<uint8_t> Seen(Grid.size(), 0);
    std::vector<std::size_t> Stack;
    std::size_t Src = cellIndex(Job.SrcX, Job.SrcY, 0);
    std::size_t Dst = cellIndex(Job.DstX, Job.DstY, 0);
    if (Grid[Src] != Job.NetId || Grid[Dst] != Job.NetId)
      return false;
    Stack.push_back(Src);
    Seen[Src] = 1;
    while (!Stack.empty()) {
      std::size_t Cur = Stack.back();
      Stack.pop_back();
      if (Cur == Dst)
        return true;
      std::size_t Neigh[5];
      unsigned N = neighbors(Cur, Neigh);
      for (unsigned I = 0; I < N; ++I) {
        std::size_t Next = Neigh[I];
        if (!Seen[Next] && Grid[Next] == Job.NetId) {
          Seen[Next] = 1;
          Stack.push_back(Next);
        }
      }
    }
    return false;
  }

  unsigned W, H;
  std::vector<RouteJob> JobList;
  unsigned IrregularR;
  std::vector<Word> Grid;
  std::atomic<std::size_t> NextJob;
  alignas(64) Word Oc; ///< the Section 5 irregularity hot object
};

} // namespace workloads::lee

#endif // WORKLOADS_LEETM_LEEROUTER_H
